// Ablation: the delay target d of the frequency-setting policy
// (Equation 5).  Sweeping d traces the energy/latency trade-off the power
// manager exposes: looser targets buffer more frames and allow lower
// frequencies.  The delay axis is the "ablation-delay-target" scenario.
#include "bench_common.hpp"

using namespace dvs;

int main() {
  const core::ScenarioSpec& spec = *core::find_scenario("ablation-delay-target");
  bench::print_header(spec.title, spec.paper_ref);
  const core::SweepResult res = bench::run_scenario(spec);

  TextTable t;
  t.set_header({"Target d (s)", "Buffered frames @38 fr/s", "Energy (kJ)",
                "CPU+mem (kJ)", "Measured delay (s)", "Mean f (MHz)"});
  CsvWriter csv{bench::csv_path("ablation_delay_target")};
  csv.write_header({"target_s", "energy_kj", "cpu_mem_kj", "measured_delay_s",
                    "mean_freq_mhz"});
  for (const core::CellResult& c : res.cells) {
    const double d = c.point.delay_target.value();
    t.add_row({TextTable::num(d, 2),
               TextTable::num(
                   queue::Mm1::buffered_frames_at(hertz(38.3), seconds(d)), 1),
               TextTable::num(c.energy_kj.mean, 3),
               TextTable::num(c.cpu_mem_kj.mean, 3),
               TextTable::num(c.delay_s.mean, 3),
               TextTable::num(c.freq_mhz.mean, 1)});
    csv.row(d, c.energy_kj.mean, c.cpu_mem_kj.mean, c.delay_s.mean,
            c.freq_mhz.mean);
  }
  t.print();

  std::printf("\nShape check: energy falls monotonically as the target"
              " loosens (lower sustained\nfrequency) and saturates once the"
              " lowest useful step is reached; measured delay\ntracks the"
              " target from below.  The paper's 0.1-0.15 s choices buy most"
              " of the\nsavings for a barely perceptible buffer.\n");
  return 0;
}
