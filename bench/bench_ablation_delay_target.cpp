// Ablation: the delay target d of the frequency-setting policy
// (Equation 5).  Sweeping d traces the energy/latency trade-off the power
// manager exposes: looser targets buffer more frames and allow lower
// frequencies.
#include "bench_common.hpp"
#include "common/csv.hpp"
#include "common/table.hpp"
#include "queue/mm1.hpp"
#include "workload/clips.hpp"

using namespace dvs;

int main() {
  bench::print_header("Ablation: delay target (Equation 5 constant)",
                      "Simunic et al., DAC'01, Section 3.1 / Tables 3-4"
                      " setup");

  const auto dec = workload::reference_mp3_decoder(bench::cpu().max_frequency());
  Rng rng{1414};
  const auto trace =
      workload::build_mp3_trace(workload::mp3_sequence("ACEFBD"), dec, rng);

  TextTable t;
  t.set_header({"Target d (s)", "Buffered frames @38 fr/s", "Energy (kJ)",
                "CPU+mem (kJ)", "Measured delay (s)", "Mean f (MHz)"});
  CsvWriter csv{bench::csv_path("ablation_delay_target")};
  csv.write_row(std::vector<std::string>{"target_s", "energy_kj",
                                         "cpu_mem_kj", "measured_delay_s",
                                         "mean_freq_mhz"});
  for (double d : {0.05, 0.10, 0.15, 0.25, 0.50, 1.00}) {
    core::RunOptions opts;
    opts.detector = core::DetectorKind::ChangePoint;
    opts.target_delay = seconds(d);
    opts.detector_cfg = &bench::detectors();
    const core::Metrics m = core::run_single_trace(trace, dec, opts);
    t.add_row({TextTable::num(d, 2),
               TextTable::num(queue::Mm1::buffered_frames_at(hertz(38.3), seconds(d)), 1),
               TextTable::num(m.energy_kj(), 3),
               TextTable::num(m.cpu_memory_energy().value() / 1e3, 3),
               TextTable::num(m.mean_frame_delay.value(), 3),
               TextTable::num(m.mean_cpu_frequency.value(), 1)});
    csv.write_row(std::vector<double>{d, m.energy_kj(),
                                      m.cpu_memory_energy().value() / 1e3,
                                      m.mean_frame_delay.value(),
                                      m.mean_cpu_frequency.value()});
  }
  t.print();

  std::printf("\nShape check: energy falls monotonically as the target"
              " loosens (lower sustained\nfrequency) and saturates once the"
              " lowest useful step is reached; measured delay\ntracks the"
              " target from below.  The paper's 0.1-0.15 s choices buy most"
              " of the\nsavings for a barely perceptible buffer.\n");
  return 0;
}
