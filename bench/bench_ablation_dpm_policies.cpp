// Ablation: DPM policy family.  Compares never-sleeping, fixed timeouts,
// the renewal-theory policy, the TISMDP-style constrained policy, and the
// clairvoyant oracle, both analytically (expected energy per idle period)
// and on a simulated session.
#include "bench_common.hpp"

using namespace dvs;

int main() {
  bench::print_header("Ablation: DPM policy family",
                      "Simunic et al., DAC'01, Section 3 (renewal vs TISMDP"
                      " models) + refs [2,3]");

  hw::SmartBadge badge;
  const dpm::DpmCostModel costs = dpm::smartbadge_cost_model(badge);
  const auto idle = std::make_shared<dpm::ParetoIdle>(1.6, seconds(1.5));

  std::printf("idle model: Pareto(shape 1.6, scale 1.5 s), mean %.0f s\n",
              idle->mean().value());
  std::printf("break-even: standby %.2f s, off %.2f s\n\n",
              costs.break_even(costs.options[0]).value(),
              costs.break_even(costs.options[1]).value());

  struct Entry {
    std::string name;
    dpm::DpmPolicyPtr policy;
  };
  std::vector<Entry> entries;
  entries.push_back({"never-sleep", std::make_shared<dpm::NeverSleepPolicy>()});
  entries.push_back({"timeout(1s,10s)",
                     std::make_shared<dpm::FixedTimeoutPolicy>(seconds(1.0),
                                                               seconds(10.0))});
  entries.push_back({"timeout(30s,300s)",
                     std::make_shared<dpm::FixedTimeoutPolicy>(seconds(30.0),
                                                               seconds(300.0))});
  entries.push_back({"renewal", std::make_shared<dpm::RenewalPolicy>(costs, idle)});
  entries.push_back({"tismdp(d<=0.1s)",
                     std::make_shared<dpm::TismdpPolicy>(costs, idle,
                                                         seconds(0.1))});
  entries.push_back({"tismdp(d<=0.5s)",
                     std::make_shared<dpm::TismdpPolicy>(costs, idle,
                                                         seconds(0.5))});
  {
    // Adaptive: learns the distribution from 300 observed idle periods
    // before being evaluated (steady-state behaviour).
    auto adaptive = std::make_shared<dpm::AdaptiveDpmPolicy>(costs);
    Rng warm{909};
    for (int i = 0; i < 300; ++i) adaptive->observe_idle_period(idle->sample(warm));
    entries.push_back({"adaptive (learned)", adaptive});
  }
  entries.push_back({"oracle", std::make_shared<dpm::OraclePolicy>(costs)});

  // Analytic expectation per idle period (oracle evaluated by Monte Carlo).
  TextTable t;
  t.set_header({"Policy", "E[energy]/idle (J)", "E[wakeup delay] (s)",
                "vs never-sleep"});
  const double never = dpm::idle_only_energy(costs, *idle).value();
  Rng rng{606};
  for (const auto& entry : entries) {
    double e;
    double d;
    if (entry.name == "oracle") {
      RunningStats es;
      RunningStats ds;
      for (int i = 0; i < 100000; ++i) {
        const Seconds T = idle->sample(rng);
        const dpm::SleepPlan plan = entry.policy->plan(T, rng);
        if (plan.empty()) {
          es.add(costs.idle_power.value() * 1e-3 * T.value());
          ds.add(0.0);
        } else {
          const auto& opt = plan.steps.back().state == hw::PowerState::Off
                                ? costs.options[1]
                                : costs.options[0];
          es.add(opt.power.value() * 1e-3 * T.value() + opt.wakeup_energy.value());
          ds.add(opt.wakeup_latency.value());
        }
      }
      e = es.mean();
      d = ds.mean();
    } else {
      // Randomized policies: average the evaluation over plan() draws.
      RunningStats es;
      RunningStats ds;
      for (int i = 0; i < 64; ++i) {
        const dpm::SleepPlan plan = entry.policy->plan(std::nullopt, rng);
        const dpm::PlanEvaluation ev = dpm::evaluate_plan(plan, costs, *idle);
        es.add(ev.expected_energy.value());
        ds.add(ev.expected_delay.value());
      }
      e = es.mean();
      d = ds.mean();
    }
    t.add_row({entry.name, TextTable::num(e, 1), TextTable::num(d, 3),
               TextTable::num(never / e, 2) + "x"});
  }
  t.print();

  std::printf("\nShape check: the optimizing policies (renewal, TISMDP)"
              " approach the oracle;\nfixed timeouts are competitive only"
              " when hand-tuned near the break-even times;\nthe TISMDP"
              " constraint trades a bounded wakeup delay for a small energy"
              "\npremium over the unconstrained renewal optimum.\n");

  // ---- simulated-session counterpart ("ablation-dpm-policies" scenario):
  // the same policy family run end-to-end over replicated idle-heavy
  // sessions, DVS pinned at Max so the idle mechanism is isolated.
  const core::ScenarioSpec& spec = *core::find_scenario("ablation-dpm-policies");
  std::printf("\n--- %s ---\n", spec.title.c_str());
  const core::SweepResult res = bench::run_scenario(spec);

  TextTable sim;
  sim.set_header({"Policy", "Energy (kJ)", "Avg power (mW)", "vs none",
                  "Sleeps", "Wakeup delay (s)"});
  const double none_energy = res.cells[0].energy_kj.mean;
  for (const core::CellResult& c : res.cells) {
    sim.add_row({c.point.dpm.name(), bench::cell(c.energy_kj, 2),
                 TextTable::num(c.power_mw.mean, 0),
                 TextTable::num(none_energy / c.energy_kj.mean, 2) + "x",
                 TextTable::num(c.sleeps.mean, 0),
                 TextTable::num(c.wakeup_delay_s.mean, 2)});
  }
  sim.print();

  CsvWriter csv{bench::csv_path("ablation_dpm_policies_cells")};
  res.write_cells_csv(csv);
  return 0;
}
