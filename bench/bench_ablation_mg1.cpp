// Ablation: M/M/1 vs M/G/1 delay inversion in the frequency policy.
//
// The paper: "when general distributions are used, M/M/1 queue model is not
// applicable, so another method of frequency and voltage adjustment is
// needed."  MP3 decode times are nearly deterministic, so the exponential-
// service assumption of Eq. 5 over-provisions; the Pollaczek-Khinchine
// inversion prices the true variability and buys extra energy at the same
// measured delay.
#include "bench_common.hpp"
#include "common/table.hpp"
#include "queue/mg1.hpp"
#include "workload/clips.hpp"
#include "workload/work_model.hpp"

using namespace dvs;

int main() {
  bench::print_header("Ablation: queueing model in the frequency policy",
                      "Simunic et al., DAC'01, Section 3.1 (general-"
                      "distribution caveat)");

  const workload::Mp3Work mp3_work{};
  const workload::MpegWork mpeg_work{};
  std::printf("true service-time cv2: MP3 %.4f (near-deterministic), MPEG %.3f"
              " (GOP-structured)\n\n",
              mp3_work.cv2(), mpeg_work.cv2());

  const auto mp3_dec = workload::reference_mp3_decoder(bench::cpu().max_frequency());
  Rng rng{777};
  const auto trace =
      workload::build_mp3_trace(workload::mp3_sequence("ACEFBD"), mp3_dec, rng);

  TextTable t{"MP3 sequence ACEFBD, change-point detection, target 0.15 s"};
  t.set_header({"Policy model (cv2)", "Required mu @38.3 fr/s", "Energy (kJ)",
                "CPU+mem (kJ)", "Measured delay (s)", "Mean f (MHz)"});
  for (double cv2 : {1.0, 0.25, mp3_work.cv2(), 0.0}) {
    core::RunOptions opts;
    opts.detector = core::DetectorKind::ChangePoint;
    opts.target_delay = seconds(0.15);
    opts.service_cv2 = cv2;
    opts.detector_cfg = &bench::detectors();
    const core::Metrics m = core::run_single_trace(trace, mp3_dec, opts);
    const double mu =
        queue::Mg1::required_service_rate(hertz(38.3), seconds(0.15), cv2).value();
    t.add_row({TextTable::num(cv2, 4), TextTable::num(mu, 1),
               TextTable::num(m.energy_kj(), 3),
               TextTable::num(m.cpu_memory_energy().value() / 1e3, 3),
               TextTable::num(m.mean_frame_delay.value(), 3),
               TextTable::num(m.mean_cpu_frequency.value(), 1)});
  }
  t.print();

  std::printf("\nShape check: assuming exponential service (cv2=1, the"
              " paper's Eq. 5) demands the\nlargest service margin; the"
              " near-deterministic truth (cv2~0.003) runs a slower,\ncheaper"
              " clock at a measured delay still under the target.  The gap"
              " is the price\nof the M/M/1 simplification the paper"
              " acknowledges.\n");
  return 0;
}
