// Ablation: M/M/1 vs M/G/1 delay inversion in the frequency policy.
//
// The paper: "when general distributions are used, M/M/1 queue model is not
// applicable, so another method of frequency and voltage adjustment is
// needed."  MP3 decode times are nearly deterministic, so the exponential-
// service assumption of Eq. 5 over-provisions; the Pollaczek-Khinchine
// inversion prices the true variability and buys extra energy at the same
// measured delay.  The cv2 axis is the "ablation-mg1" scenario.
#include "bench_common.hpp"

using namespace dvs;

int main() {
  const core::ScenarioSpec& spec = *core::find_scenario("ablation-mg1");
  bench::print_header(spec.title, spec.paper_ref);

  const workload::Mp3Work mp3_work{};
  const workload::MpegWork mpeg_work{};
  std::printf("true service-time cv2: MP3 %.4f (near-deterministic), MPEG %.3f"
              " (GOP-structured)\n\n",
              mp3_work.cv2(), mpeg_work.cv2());

  const core::SweepResult res = bench::run_scenario(spec);

  TextTable t{"MP3 sequence ACEFBD, change-point detection, target 0.15 s"};
  t.set_header({"Policy model (cv2)", "Required mu @38.3 fr/s", "Energy (kJ)",
                "CPU+mem (kJ)", "Measured delay (s)", "Mean f (MHz)"});
  for (const core::CellResult& c : res.cells) {
    const double cv2 = c.point.service_cv2;
    const double mu =
        queue::Mg1::required_service_rate(hertz(38.3), seconds(0.15), cv2)
            .value();
    t.add_row({TextTable::num(cv2, 4), TextTable::num(mu, 1),
               TextTable::num(c.energy_kj.mean, 3),
               TextTable::num(c.cpu_mem_kj.mean, 3),
               TextTable::num(c.delay_s.mean, 3),
               TextTable::num(c.freq_mhz.mean, 1)});
  }
  t.print();

  std::printf("\nShape check: assuming exponential service (cv2=1, the"
              " paper's Eq. 5) demands the\nlargest service margin; the"
              " near-deterministic truth (cv2~0.003) runs a slower,\ncheaper"
              " clock at a measured delay still under the target.  The gap"
              " is the price\nof the M/M/1 simplification the paper"
              " acknowledges.\n");
  return 0;
}
