// Ablation: detection confidence.  The paper picks the ln(P_max) threshold
// at the 99.5% quantile of the off-line characterization histogram; this
// bench sweeps the confidence level and shows the false-alarm /
// detection-latency trade-off that motivates that choice.
#include <cmath>

#include "bench_common.hpp"

using namespace dvs;

int main() {
  bench::print_header("Ablation: detection confidence (threshold quantile)",
                      "Simunic et al., DAC'01, Section 3.1 (\"we selected"
                      " 99.5% likelihood\")");

  struct Row {
    double false_per_k = 0.0;
    double latency = -1.0;
    int detected = 0;
    int trials = 0;
  };
  const std::vector<double> confidences = {0.90, 0.99, 0.995, 0.999};
  std::vector<Row> rows(confidences.size());

  // Each confidence level characterizes its own (expensive) threshold
  // table; the levels run in parallel with per-level fixed seeds, so the
  // results are schedule-independent.
  core::parallel_for(confidences.size(), bench::jobs(), [&](std::size_t ci) {
    const double conf = confidences[ci];
    detect::ChangePointConfig cfg;
    cfg.confidence = conf;
    cfg.mc_windows = 4000;  // the 99.9% quantile needs a larger histogram
    const auto table = std::make_shared<const detect::ThresholdTable>(cfg);

    // False-alarm rate under a constant 30 fr/s rate.
    detect::ChangePointDetector steady{table};
    steady.reset(hertz(30.0));
    Rng rng{11000 + static_cast<std::uint64_t>(conf * 1e4)};
    Seconds now{0.0};
    const int n = 30000;
    for (int i = 0; i < n; ++i) {
      const Seconds gap{rng.exponential(30.0)};
      now += gap;
      steady.on_sample(now, gap);
    }
    rows[ci].false_per_k =
        1000.0 * static_cast<double>(steady.changes_detected()) / n;

    // Latency on the Figure 10 step.
    RunningStats latency;
    int detected = 0;
    const int trials = 40;
    for (int trial = 0; trial < trials; ++trial) {
      detect::ChangePointDetector det{table};
      det.reset(hertz(10.0));
      Rng r2{12000 + static_cast<std::uint64_t>(trial)};
      Seconds t2{0.0};
      for (int i = 0; i < 300; ++i) {
        const Seconds gap{r2.exponential(10.0)};
        t2 += gap;
        det.on_sample(t2, gap);
      }
      for (int i = 0; i < 400; ++i) {
        const Seconds gap{r2.exponential(60.0)};
        t2 += gap;
        det.on_sample(t2, gap);
        if (std::abs(det.current_rate().value() - 60.0) < 12.0) {
          latency.add(i + 1);
          ++detected;
          break;
        }
      }
    }
    rows[ci].latency = latency.empty() ? -1.0 : latency.mean();
    rows[ci].detected = detected;
    rows[ci].trials = trials;
  });

  TextTable t;
  t.set_header({"Confidence", "False changes/1k samples", "Detect latency (fr)",
                "Detected"});
  for (std::size_t ci = 0; ci < confidences.size(); ++ci) {
    const Row& r = rows[ci];
    t.add_row({TextTable::num(confidences[ci] * 100.0, 1) + "%",
               TextTable::num(r.false_per_k, 2),
               r.latency < 0.0 ? "-" : TextTable::num(r.latency, 1),
               TextTable::num(100.0 * r.detected / r.trials, 0) + "%"});
  }
  t.print();

  std::printf("\nShape check: lower confidence reacts marginally faster but"
              " fires spuriously under\na steady rate (each false change"
              " flaps the CPU frequency); 99.5%% keeps false\nalarms rare"
              " while detecting real steps promptly — the paper's"
              " operating point.\n");
  return 0;
}
