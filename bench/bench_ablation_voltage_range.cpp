// Ablation: how much of the DVS win is the *voltage* range?
//
// The paper's introduction credits the Transmeta Crusoe with the same
// frequency+voltage principle.  This bench runs the identical MP3 workload
// on three processor models — the stock SA-1100 (wide 0.86-1.65 V range), a
// Crusoe-like part (narrower 1.20-1.60 V ratio), and a frequency-only
// scaler (voltage pinned) — and reports the processing-subsystem energy
// saved by the change-point governor vs pinned-max on each.
#include "bench_common.hpp"
#include "common/table.hpp"
#include "hw/cpu_catalog.hpp"
#include "workload/clips.hpp"

using namespace dvs;

namespace {

struct CpuEntry {
  const char* name;
  hw::Sa1100 cpu;
};

}  // namespace

int main() {
  bench::print_header("Ablation: DVS win vs processor voltage range",
                      "Simunic et al., DAC'01, Section 1 (Crusoe reference)"
                      " — what-if study");

  std::vector<CpuEntry> cpus;
  cpus.push_back({"SA-1100 (0.86-1.65V)", hw::smartbadge_sa1100()});
  cpus.push_back({"Crusoe-like (1.20-1.60V)", hw::crusoe_like()});
  cpus.push_back({"frequency-only (1.65V fixed)", hw::frequency_only_sa1100()});

  TextTable t;
  t.set_header({"Processor", "V ratio^2", "CPU+mem kJ (Max)",
                "CPU+mem kJ (ChangePoint)", "DVS saving", "Mean f (MHz)"});
  for (const CpuEntry& entry : cpus) {
    const auto dec = workload::reference_mp3_decoder(entry.cpu.max_frequency());
    Rng rng{4040};  // same workload statistics for every part
    const auto trace =
        workload::build_mp3_trace(workload::mp3_sequence("ACEFBD"), dec, rng);

    auto run = [&](core::DetectorKind kind) {
      core::RunOptions opts;
      opts.detector = kind;
      opts.target_delay = seconds(0.15);
      opts.detector_cfg = &bench::detectors();
      opts.cpu = &entry.cpu;
      return core::run_single_trace(trace, dec, opts);
    };
    const core::Metrics max = run(core::DetectorKind::Max);
    const core::Metrics cp = run(core::DetectorKind::ChangePoint);

    const double v0 = entry.cpu.voltage_at(0).value();
    const double vt = entry.cpu.voltage_at(entry.cpu.num_steps() - 1).value();
    t.add_row({entry.name, TextTable::num((v0 / vt) * (v0 / vt), 3),
               TextTable::num(max.cpu_memory_energy().value() / 1e3, 3),
               TextTable::num(cp.cpu_memory_energy().value() / 1e3, 3),
               TextTable::num(100.0 * (1.0 - cp.cpu_memory_energy().value() /
                                                 max.cpu_memory_energy().value()),
                              1) + "%",
               TextTable::num(cp.mean_cpu_frequency.value(), 1)});
  }
  t.print();

  std::printf("\nShape check: the DVS saving tracks the square of the"
              " voltage ratio the part\nexposes.  A frequency-only scaler"
              " still saves a little (the CPU idles at a\ncheaper operating"
              " point between frames), but the quadratic voltage term is"
              "\nwhere the paper's energy factor comes from — which is why"
              " the SA-1100 and the\nCrusoe made DVS famous.\n");
  return 0;
}
