// Ablation: how much of the DVS win is the *voltage* range?
//
// The paper's introduction credits the Transmeta Crusoe with the same
// frequency+voltage principle.  This bench runs the identical MP3 workload
// on three processor models — the stock SA-1100 (wide 0.86-1.65 V range), a
// Crusoe-like part (narrower 1.20-1.60 V ratio), and a frequency-only
// scaler (voltage pinned) — and reports the processing-subsystem energy
// saved by the change-point governor vs pinned-max on each.  The cpu x
// detector grid is the "ablation-voltage-range" scenario.
#include "bench_common.hpp"

using namespace dvs;

int main() {
  const core::ScenarioSpec& spec =
      *core::find_scenario("ablation-voltage-range");
  bench::print_header(spec.title, spec.paper_ref);
  const core::SweepResult res = bench::run_scenario(spec);

  static const char* kLabels[] = {"SA-1100 (0.86-1.65V)",
                                  "Crusoe-like (1.20-1.60V)",
                                  "frequency-only (1.65V fixed)"};
  TextTable t;
  t.set_header({"Processor", "V ratio^2", "CPU+mem kJ (Max)",
                "CPU+mem kJ (ChangePoint)", "DVS saving", "Mean f (MHz)"});
  // Per cpu, cells arrive detector-inner in spec order: Max, ChangePoint.
  for (std::size_t c = 0; c < spec.cpus.size(); ++c) {
    const core::CellResult& max = res.cells[c * spec.detectors.size()];
    const core::CellResult& cp = res.cells[c * spec.detectors.size() + 1];
    const hw::Sa1100 part = core::cpu_by_name(spec.cpus[c]);
    const double v0 = part.voltage_at(0).value();
    const double vt = part.voltage_at(part.num_steps() - 1).value();
    t.add_row({kLabels[c], TextTable::num((v0 / vt) * (v0 / vt), 3),
               TextTable::num(max.cpu_mem_kj.mean, 3),
               TextTable::num(cp.cpu_mem_kj.mean, 3),
               TextTable::num(
                   100.0 * (1.0 - cp.cpu_mem_kj.mean / max.cpu_mem_kj.mean),
                   1) + "%",
               TextTable::num(cp.freq_mhz.mean, 1)});
  }
  t.print();

  std::printf("\nShape check: the DVS saving tracks the square of the"
              " voltage ratio the part\nexposes.  A frequency-only scaler"
              " still saves a little (the CPU idles at a\ncheaper operating"
              " point between frames), but the quadratic voltage term is"
              "\nwhere the paper's energy factor comes from — which is why"
              " the SA-1100 and the\nCrusoe made DVS famous.\n");
  return 0;
}
