// Ablation: change-point window size m and check interval k.
//
// The paper: "We found that a window of m [samples] is large enough.
// Larger windows will cause longer execution times, while much shorter
// windows do not contain [a] statistically large enough sample and thus
// give unstable results.  In addition, the change point can be checked
// every k points.  Larger values of k ... mean that the changed rate will
// be detected later, while with very small values the detection is
// quicker, but also causes extra computation."
#include <chrono>
#include <cmath>

#include "bench_common.hpp"

using namespace dvs;

namespace {

struct Outcome {
  double mean_latency = 0.0;     // frames to re-detect 10 -> 60
  double detect_fraction = 0.0;  // trials where the step was detected
  double false_changes = 0.0;    // changes per 1000 samples under constant rate
  double ns_per_sample = 0.0;    // on-line cost
};

Outcome evaluate(const detect::ChangePointConfig& cfg, std::uint64_t seed) {
  const auto table = std::make_shared<const detect::ThresholdTable>(cfg);
  Outcome out;

  // Detection latency over repeated 10 -> 60 steps.
  RunningStats latency;
  int detected = 0;
  const int trials = 40;
  for (int trial = 0; trial < trials; ++trial) {
    detect::ChangePointDetector det{table};
    det.reset(hertz(10.0));
    Rng rng{seed + static_cast<std::uint64_t>(trial)};
    Seconds now{0.0};
    for (int i = 0; i < 300; ++i) {
      const Seconds gap{rng.exponential(10.0)};
      now += gap;
      det.on_sample(now, gap);
    }
    for (int i = 0; i < 400; ++i) {
      const Seconds gap{rng.exponential(60.0)};
      now += gap;
      det.on_sample(now, gap);
      if (std::abs(det.current_rate().value() - 60.0) < 12.0) {
        latency.add(i + 1);
        ++detected;
        break;
      }
    }
  }
  out.detect_fraction = static_cast<double>(detected) / trials;
  out.mean_latency = latency.empty() ? -1.0 : latency.mean();

  // False alarms and execution cost under a constant rate.
  detect::ChangePointDetector det{table};
  det.reset(hertz(30.0));
  Rng rng{seed ^ 0xabcdefULL};
  Seconds now{0.0};
  const int n = 30000;
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < n; ++i) {
    const Seconds gap{rng.exponential(30.0)};
    now += gap;
    det.on_sample(now, gap);
  }
  const auto t1 = std::chrono::steady_clock::now();
  out.false_changes = 1000.0 * static_cast<double>(det.changes_detected()) / n;
  out.ns_per_sample =
      std::chrono::duration<double, std::nano>(t1 - t0).count() / n;
  return out;
}

}  // namespace

int main() {
  bench::print_header("Ablation: detection window m and check interval k",
                      "Simunic et al., DAC'01, Section 3.1 (design-choice"
                      " discussion)");

  // Each grid entry characterizes its own threshold table (the expensive
  // part), so the entries run in parallel; outcomes are deterministic per
  // entry (fixed seeds) and independent of the schedule.
  const std::vector<std::size_t> windows = {30, 50, 100, 200, 400};
  std::vector<Outcome> window_out(windows.size());
  core::parallel_for(windows.size(), bench::jobs(), [&](std::size_t i) {
    detect::ChangePointConfig cfg;
    cfg.window = windows[i];
    cfg.mc_windows = 1500;
    window_out[i] = evaluate(cfg, 7000 + windows[i]);
  });

  TextTable wt{"Window size m (check interval fixed at 10)"};
  wt.set_header({"m", "Detect latency (frames)", "Detected", "False/1k samples",
                 "ns/sample"});
  for (std::size_t i = 0; i < windows.size(); ++i) {
    const Outcome& o = window_out[i];
    wt.add_row({std::to_string(windows[i]), TextTable::num(o.mean_latency, 1),
                TextTable::num(o.detect_fraction * 100.0, 0) + "%",
                TextTable::num(o.false_changes, 2),
                TextTable::num(o.ns_per_sample, 0)});
  }
  wt.print();

  const std::vector<std::size_t> intervals = {2, 5, 10, 25, 50};
  std::vector<Outcome> interval_out(intervals.size());
  core::parallel_for(intervals.size(), bench::jobs(), [&](std::size_t i) {
    detect::ChangePointConfig cfg;
    cfg.check_interval = intervals[i];
    cfg.mc_windows = 1500;
    interval_out[i] = evaluate(cfg, 9000 + intervals[i]);
  });

  TextTable kt{"Check interval k (window fixed at 100)"};
  kt.set_header({"k", "Detect latency (frames)", "Detected", "False/1k samples",
                 "ns/sample"});
  for (std::size_t i = 0; i < intervals.size(); ++i) {
    const Outcome& o = interval_out[i];
    kt.add_row({std::to_string(intervals[i]), TextTable::num(o.mean_latency, 1),
                TextTable::num(o.detect_fraction * 100.0, 0) + "%",
                TextTable::num(o.false_changes, 2),
                TextTable::num(o.ns_per_sample, 0)});
  }
  kt.print();

  std::printf("\nShape check: small m is fast but unreliable/noisy; large m"
              " costs compute with no\nlatency benefit — m=100 is the sweet"
              " spot the paper chose.  Small k detects a few\nframes earlier"
              " at proportionally higher cost; large k delays detection by"
              " ~k/2.\n");
  return 0;
}
