// Shared helpers for the reproduction benches.
//
// Every bench regenerates one table or figure from the paper and prints it
// in the paper's row format (plus a CSV dump for plotting).  Seeds are fixed
// so output is identical run to run; the sweep-backed benches are also
// bit-identical at any --jobs level (core/sweep.hpp determinism contract).
#pragma once

#include <array>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "dvs.hpp"

namespace dvs::bench {

/// One shared SA-1100 instance.
inline const hw::Sa1100& cpu() {
  static const hw::Sa1100 instance;
  return instance;
}

/// Detector configuration shared within a bench process, prepared up front
/// so the change-point threshold table is characterized exactly once.
inline const core::DetectorFactoryConfig& detectors() {
  static const core::DetectorFactoryConfig cfg = [] {
    core::DetectorFactoryConfig c;
    c.prepare();
    return c;
  }();
  return cfg;
}

/// The four algorithm columns of Tables 3 and 4, in paper order.
inline const std::array<core::DetectorKind, 4>& paper_algorithms() {
  static const std::array<core::DetectorKind, 4> kinds = {
      core::DetectorKind::Ideal, core::DetectorKind::ChangePoint,
      core::DetectorKind::ExpAverage, core::DetectorKind::Max};
  return kinds;
}

inline void print_header(const std::string& title, const std::string& paper_ref) {
  std::printf("\n=== %s ===\n", title.c_str());
  std::printf("reproduces: %s\n\n", paper_ref.c_str());
}

/// Parallelism for sweep-backed benches: $DVS_BENCH_JOBS, default all cores.
inline int jobs() {
  if (const char* env = std::getenv("DVS_BENCH_JOBS")) return std::atoi(env);
  return 0;  // resolve_jobs: hardware concurrency
}

/// "mean (sd)" cell — the replicated-table format of Tables 3 and 4.
inline std::string cell(const core::Aggregate& a, int precision) {
  return TextTable::num(a.mean, precision) + " (" +
         TextTable::num(a.stddev, precision) + ")";
}

/// Runs a built-in scenario (core/scenario.hpp registry) and reports the
/// sweep footprint, so every bench shows its parallel execution shape.
inline core::SweepResult run_scenario(const core::ScenarioSpec& spec) {
  core::SweepOptions opts;
  opts.jobs = jobs();
  const core::SweepResult res = core::SweepRunner{opts}.run(spec);
  std::printf("[sweep %s: %zu points, jobs=%d, %.1f s]\n\n", res.scenario.c_str(),
              res.points.size(), res.jobs, res.wall_seconds);
  return res;
}

/// Where benches drop CSV exports ($DVS_CSV_DIR or the current directory).
inline std::string csv_path(const std::string& name) { return dvs::csv_path(name); }

}  // namespace dvs::bench
