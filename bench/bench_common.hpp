// Shared helpers for the reproduction benches.
//
// Every bench regenerates one table or figure from the paper and prints it
// in the paper's row format (plus a CSV dump for plotting).  Seeds are fixed
// so output is identical run to run.
#pragma once

#include <array>
#include <cstdio>
#include <string>

#include "core/experiment.hpp"
#include "workload/trace.hpp"

namespace dvs::bench {

/// One shared SA-1100 instance.
inline const hw::Sa1100& cpu() {
  static const hw::Sa1100 instance;
  return instance;
}

/// Detector configuration shared within a bench process so the change-point
/// threshold table is characterized once.
inline core::DetectorFactoryConfig& detectors() {
  static core::DetectorFactoryConfig cfg;
  return cfg;
}

/// The four algorithm columns of Tables 3 and 4, in paper order.
inline const std::array<core::DetectorKind, 4>& paper_algorithms() {
  static const std::array<core::DetectorKind, 4> kinds = {
      core::DetectorKind::Ideal, core::DetectorKind::ChangePoint,
      core::DetectorKind::ExpAverage, core::DetectorKind::Max};
  return kinds;
}

inline void print_header(const std::string& title, const std::string& paper_ref) {
  std::printf("\n=== %s ===\n", title.c_str());
  std::printf("reproduces: %s\n\n", paper_ref.c_str());
}

/// Where benches drop CSV exports (current directory by default).
inline std::string csv_path(const std::string& name) { return name + ".csv"; }

}  // namespace dvs::bench
