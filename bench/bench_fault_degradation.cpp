// Fault injection & graceful degradation: how each fault in the builtin
// catalogue moves energy, delay, and degradation time, and what the
// watchdog buys back.  Not a paper table — the paper measures a healthy
// badge; this bench characterizes the reproduction's behaviour at the
// edges (overload spikes, flaky hardware, corrupted streams) where the
// plain policy would otherwise let the frame queue run away.
//
// Grid: mp3 sequence A under Change Point and Max, one column block per
// fault spec, 3 replicates.  The `none` block is the healthy baseline the
// other blocks are read against.
#include "bench_common.hpp"

using namespace dvs;

int main() {
  bench::print_header("Fault injection & graceful degradation",
                      "harness extension beyond Simunic et al., DAC'01 "
                      "(healthy-system tables 3-5); watchdog: escalate on "
                      "sustained delay/queue violations, exponential backoff");

  core::ScenarioSpec spec;
  spec.name = "fault-degradation";
  spec.title = "Fault catalogue vs mp3 sequence A";
  spec.workloads = {core::WorkloadSpec::mp3("A")};
  spec.detectors = {core::DetectorKind::ChangePoint, core::DetectorKind::Max};
  const auto catalogue = fault::builtin_faults();
  spec.faults.assign(catalogue.begin(), catalogue.end());
  spec.replicates = 3;
  spec.base_seed = 2001;
  spec.detector_cfg = bench::detectors();

  const core::SweepResult res = bench::run_scenario(spec);

  // Per-cell means for the counters the cell aggregates do not carry.
  const auto point_mean = [&res](std::size_t cell,
                                 auto&& field) -> double {
    double sum = 0.0;
    int n = 0;
    for (const core::PointResult& p : res.points) {
      if (p.point.cell != cell) continue;
      sum += field(p.metrics);
      ++n;
    }
    return n > 0 ? sum / n : 0.0;
  };

  TextTable t;
  t.set_header({"Fault", "Detector", "Energy (kJ)", "Fr. Delay (s)",
                "Max delay (s)", "Dropped", "HW faults", "Escal.", "Recov.",
                "Degraded (s)"});
  for (const core::CellResult& c : res.cells) {
    t.add_row({c.point.faults.name, core::to_string(c.point.detector),
               bench::cell(c.energy_kj, 3), bench::cell(c.delay_s, 3),
               TextTable::num(c.max_delay_s.mean, 2),
               TextTable::num(point_mean(c.point.cell,
                                         [](const core::Metrics& m) {
                                           return static_cast<double>(
                                               m.frames_dropped);
                                         }),
                              0),
               TextTable::num(c.faults_injected.mean, 1),
               TextTable::num(point_mean(c.point.cell,
                                         [](const core::Metrics& m) {
                                           return static_cast<double>(
                                               m.watchdog_escalations);
                                         }),
                              1),
               bench::cell(c.recoveries, 1),
               bench::cell(c.time_degraded_s, 1)});
  }
  t.print();

  CsvWriter csv{bench::csv_path("fault_degradation_cells")};
  res.write_cells_csv(csv);

  std::printf(
      "\nShape check: the `none` rows match the healthy Table 3 column for"
      " sequence A.\nOnly spike10x and chaos genuinely overload the badge"
      " (10x arrivals vs the\ndecoder ceiling): the Change Point watchdog"
      " escalates, rides out the spike at\nthe top step, and recovers once"
      " the backlog drains; Max has no watchdog (it\nalready runs flat-out)"
      " and pays the same delay.  step3x and burst stay within\nthe"
      " policy's own headroom; heavytail trips short episodes that recover"
      "\nimmediately.  freq-stuck surfaces as counted HW faults on the"
      " adaptive\ngovernor's transitions; wakeup-flaky needs a sleeping DPM"
      " policy to bite (the\nDPM axis here is None).\n");
  return 0;
}
