// Figure 10: rate-change detection.  The frame rate steps from 10 fr/s to
// 60 fr/s; the plot compares ideal detection, the change-point algorithm,
// and exponential moving averages with gains 0.03 and 0.05 on the same
// arrival sequence.
#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"

using namespace dvs;

int main() {
  bench::print_header("Figure 10: Rate Change Detection",
                      "Simunic et al., DAC'01, Figure 10 (10 -> 60 fr/s step)");

  constexpr int kPreFrames = 120;   // frames at 10 fr/s
  constexpr int kPostFrames = 180;  // frames at 60 fr/s
  const double step_time = kPreFrames / 10.0;

  // One shared arrival sequence.
  Rng rng{1010};
  std::vector<std::pair<Seconds, Seconds>> samples;  // (time, gap)
  Seconds now{0.0};
  for (int i = 0; i < kPreFrames + kPostFrames; ++i) {
    const double rate = i < kPreFrames ? 10.0 : 60.0;
    const Seconds gap{rng.exponential(rate)};
    now += gap;
    samples.emplace_back(now, gap);
  }

  detect::ChangePointConfig cp_cfg;
  auto change_point = std::make_unique<detect::ChangePointDetector>(cp_cfg);
  change_point->reset(hertz(10.0));
  auto ema03 = std::make_unique<detect::EmaDetector>(0.03);
  ema03->reset(hertz(10.0));
  auto ema05 = std::make_unique<detect::EmaDetector>(0.05);
  ema05->reset(hertz(10.0));
  auto ideal = std::make_unique<detect::IdealDetector>([&](Seconds t) {
    return t.value() < step_time ? hertz(10.0) : hertz(60.0);
  });
  ideal->reset(hertz(10.0));

  CsvWriter csv{bench::csv_path("fig10_detection")};
  csv.write_row(std::vector<std::string>{"frame", "ideal", "change_point",
                                         "ema_g0.03", "ema_g0.05"});
  TextTable t;
  t.set_header({"Frame", "Ideal", "Change Point", "Exp.Ave g=0.03",
                "Exp.Ave g=0.05"});

  int cp_detect_frame = -1;
  std::array<int, 2> ema_detect_frame = {-1, -1};
  for (int i = 0; i < static_cast<int>(samples.size()); ++i) {
    const auto& [at, gap] = samples[static_cast<std::size_t>(i)];
    const double v_ideal = ideal->on_sample(at, gap).value();
    const double v_cp = change_point->on_sample(at, gap).value();
    const double v_e3 = ema03->on_sample(at, gap).value();
    const double v_e5 = ema05->on_sample(at, gap).value();
    csv.write_row(std::vector<double>{static_cast<double>(i), v_ideal, v_cp,
                                      v_e3, v_e5});
    if (i >= kPreFrames) {
      const int since = i - kPreFrames + 1;
      if (cp_detect_frame < 0 && std::abs(v_cp - 60.0) < 10.0) cp_detect_frame = since;
      if (ema_detect_frame[0] < 0 && std::abs(v_e3 - 60.0) < 10.0) ema_detect_frame[0] = since;
      if (ema_detect_frame[1] < 0 && std::abs(v_e5 - 60.0) < 10.0) ema_detect_frame[1] = since;
    }
    if (i % 10 == 0 || (i >= kPreFrames - 2 && i <= kPreFrames + 30 && i % 2 == 0)) {
      t.add_row({std::to_string(i), TextTable::num(v_ideal, 1),
                 TextTable::num(v_cp, 1), TextTable::num(v_e3, 1),
                 TextTable::num(v_e5, 1)});
    }
  }
  t.print();

  std::printf("\nDetection latency after the step at frame %d (within 10 fr/s"
              " of the new rate):\n", kPreFrames);
  std::printf("  change point : %d frames   (paper: within ~10 frames of ideal)\n",
              cp_detect_frame);
  std::printf("  exp.avg 0.03 : %s\n",
              ema_detect_frame[0] < 0 ? "never (within window)"
                                      : (std::to_string(ema_detect_frame[0]) + " frames").c_str());
  std::printf("  exp.avg 0.05 : %s\n",
              ema_detect_frame[1] < 0 ? "never (within window)"
                                      : (std::to_string(ema_detect_frame[1]) + " frames").c_str());
  std::printf("\nShape check: the change-point output is a near-step — it"
              " jumps ~10 frames after\nthe change and settles fast, then"
              " stays piecewise constant; the EMA curves need\n50-100+"
              " frames to approach the new rate and keep oscillating"
              " afterwards, exactly\nthe instability the paper plots.  Full"
              " series: %s\n", bench::csv_path("fig10_detection").c_str());
  return 0;
}
