// Figure 3: frequency vs minimum operating voltage for the SA-1100, plus
// the resulting active power and energy-per-cycle ratio at each step.
#include "bench_common.hpp"

using namespace dvs;

int main() {
  bench::print_header("Figure 3: Frequency vs. Voltage for SA-1100",
                      "Simunic et al., DAC'01, Figure 3");

  const hw::Sa1100& cpu = bench::cpu();
  TextTable t;
  t.set_header({"Step", "Frequency (MHz)", "Min voltage (V)", "Active P (mW)",
                "Energy/cycle vs max"});
  CsvWriter csv{bench::csv_path("fig3_freq_voltage")};
  csv.write_row(std::vector<std::string>{"freq_mhz", "volt", "power_mw",
                                         "energy_per_cycle_ratio"});
  for (std::size_t s = 0; s < cpu.num_steps(); ++s) {
    t.add_row({std::to_string(s), TextTable::num(cpu.frequency_at(s).value(), 2),
               TextTable::num(cpu.voltage_at(s).value(), 3),
               TextTable::num(cpu.active_power_at(s).value(), 1),
               TextTable::num(cpu.energy_per_cycle_ratio(s), 3)});
    csv.write_row(std::vector<double>{cpu.frequency_at(s).value(),
                                      cpu.voltage_at(s).value(),
                                      cpu.active_power_at(s).value(),
                                      cpu.energy_per_cycle_ratio(s)});
  }
  t.print();
  std::printf("\nShape check: voltage rises monotonically 0.86 V -> 1.65 V over"
              " 59.0 -> 221.25 MHz;\nrunning a fixed cycle count at the lowest"
              " step costs %.0f%% of the energy at the top step\n(the quadratic"
              " DVS win).  CSV: %s\n",
              cpu.energy_per_cycle_ratio(0) * 100.0,
              bench::csv_path("fig3_freq_voltage").c_str());
  return 0;
}
