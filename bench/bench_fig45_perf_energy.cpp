// Figures 4 and 5: performance and energy vs CPU frequency, normalized to
// the top step, for MP3 audio (memory-bound, Figure 4) and MPEG video
// (CPU-bound, Figure 5).
//
// Per-frame energy at step s is decode_time(f_s) * P_cpu(f_s) for the
// processor plus the frequency-independent memory term (the memory is busy
// for a fixed number of accesses per frame, not for the stretched decode):
//   E(s) = t(f_s) * P_cpu(f_s) + T_mem * P_mem.
// MP3 decodes from the slow SRAM, MPEG from the fast SDRAM/DRAM.
#include "bench_common.hpp"

using namespace dvs;

namespace {

void emit(const workload::DecoderModel& dec, MilliWatts mem_power,
          const std::string& figure, const std::string& csv_name) {
  const hw::Sa1100& cpu = bench::cpu();
  const std::size_t top = cpu.num_steps() - 1;

  auto frame_energy = [&](std::size_t s) {
    const Seconds t = dec.decode_time(cpu.frequency_at(s));
    return energy(cpu.active_power_at(s), t).value() +
           energy(mem_power, dec.memory_stall()).value();
  };

  TextTable t{figure};
  t.set_header({"Frequency (MHz)", "Performance ratio", "Energy ratio"});
  CsvWriter csv{bench::csv_path(csv_name)};
  csv.write_row(std::vector<std::string>{"freq_mhz", "perf_ratio", "energy_ratio"});
  for (std::size_t s = 0; s < cpu.num_steps(); ++s) {
    const double perf = dec.performance_ratio(cpu.frequency_at(s));
    const double e_ratio = frame_energy(s) / frame_energy(top);
    t.add_row({TextTable::num(cpu.frequency_at(s).value(), 2),
               TextTable::num(perf, 3), TextTable::num(e_ratio, 3)});
    csv.write_row(std::vector<double>{cpu.frequency_at(s).value(), perf, e_ratio});
  }
  t.print();
}

}  // namespace

int main() {
  bench::print_header("Figures 4 & 5: performance and energy vs frequency",
                      "Simunic et al., DAC'01, Figures 4 (MP3) and 5 (MPEG)");

  const auto mp3 = workload::reference_mp3_decoder(bench::cpu().max_frequency());
  const auto mpeg = workload::reference_mpeg_decoder(bench::cpu().max_frequency());
  const MilliWatts sram = hw::smartbadge_spec(hw::BadgeComponentId::Sram).active_power;
  const MilliWatts dram = hw::smartbadge_spec(hw::BadgeComponentId::Dram).active_power;

  emit(mp3, sram, "Figure 4: MP3 audio (decoded from slow SRAM)",
       "fig4_mp3_perf_energy");
  std::printf("\n");
  emit(mpeg, dram, "Figure 5: MPEG video (decoded from fast DRAM)",
       "fig5_mpeg_perf_energy");

  const double mp3_half = mp3.performance_ratio(bench::cpu().max_frequency() * 0.5);
  const double mpeg_half = mpeg.performance_ratio(bench::cpu().max_frequency() * 0.5);
  std::printf(
      "\nShape check: at half the clock, MP3 keeps %.0f%% of its performance"
      " (memory-bound,\nsub-linear — paper: \"speedup is not linear\") while"
      " MPEG keeps %.0f%% (\"almost linear\").\n",
      mp3_half * 100.0, mpeg_half * 100.0);
  return 0;
}
