// Figure 6: MPEG frame interarrival time distribution vs fitted exponential
// CDF.  The paper reports an average fitting error of 8% for measured WLAN
// arrivals; we generate arrivals from the jittered Poisson model and run
// the same fit.
#include <vector>

#include "bench_common.hpp"

using namespace dvs;

int main() {
  bench::print_header("Figure 6: MPEG video arrival time distribution",
                      "Simunic et al., DAC'01, Figure 6 (avg fitting error ~8%)");

  // Arrivals at a typical in-clip rate, jittered by WLAN delivery delays.
  workload::RateSchedule sched;
  sched.append(seconds(0.0), hertz(20.0));
  const workload::ArrivalProcess proc{sched, 0.85};
  Rng rng{606};
  std::vector<double> gaps;
  Seconds t{0.0};
  for (int i = 0; i < 30000; ++i) {
    const Seconds next = proc.next_after(t, rng);
    gaps.push_back((next - t).value());
    t = next;
  }

  const ExponentialFit fit = fit_exponential(gaps);
  const EmpiricalCdf ecdf = empirical_cdf(gaps);

  TextTable table;
  table.set_header({"Interarrival (s)", "Experimental CDF", "Exponential fit"});
  CsvWriter csv{bench::csv_path("fig6_arrival_fit")};
  csv.write_row(std::vector<std::string>{"interarrival_s", "empirical_cdf",
                                         "exponential_cdf"});
  // Sample the CDF at evenly spaced quantiles, like the figure's curve.
  for (double q : {0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.99}) {
    const auto idx = static_cast<std::size_t>(q * static_cast<double>(ecdf.xs.size() - 1));
    const double x = ecdf.xs[idx];
    table.add_row({TextTable::num(x, 4), TextTable::num(ecdf.ps[idx], 3),
                   TextTable::num(exponential_cdf(fit.rate, x), 3)});
    csv.write_row(std::vector<double>{x, ecdf.ps[idx], exponential_cdf(fit.rate, x)});
  }
  table.print();

  std::printf("\nFitted rate: %.2f fr/s (true mean rate 20).\n", fit.rate);
  std::printf("Average fitting error = %.1f%%  (paper: 8%%)\n",
              fit.avg_cdf_error * 100.0);
  std::printf("Kolmogorov-Smirnov statistic = %.3f\n", fit.ks_statistic);
  std::printf("\nShape check: arrivals are approximately exponential — good"
              " enough for the M/M/1\npolicy — but the network jitter leaves a"
              " visible single-digit-percent CDF error,\njust as the paper"
              " measured.\n");
  return 0;
}
