// Figures 7 & 8: the structure of the power manager's decision model.
//
// Figure 7 contrasts the naive 3-state system model with the time-indexed
// model (idle/sleep states split by time since idle entry); Figure 8
// expands the single active state into the family of (f, V) sub-states the
// DVS governor chooses among.  These are model diagrams rather than data
// plots, so this bench *instantiates* them: it prints the (f, V, P) active
// sub-state set of the SmartBadge and the concrete time-indexed policy the
// TISMDP solver computes over the idle bins — i.e. the content the figures
// sketch.
#include "bench_common.hpp"

using namespace dvs;

int main() {
  bench::print_header("Figures 7 & 8: time-indexed model and active-state expansion",
                      "Simunic et al., DAC'01, Figures 7-8 (model structure)");

  // ---- Figure 8: the expanded active state --------------------------------
  const hw::Sa1100& cpu = bench::cpu();
  TextTable active{"Figure 8: active-state (f, V) sub-states"};
  active.set_header({"Sub-state", "f (MHz)", "V (V)", "CPU P (mW)"});
  for (std::size_t s = 0; s < cpu.num_steps(); ++s) {
    active.add_row({"active[f" + std::to_string(s) + "]",
                    TextTable::num(cpu.frequency_at(s).value(), 2),
                    TextTable::num(cpu.voltage_at(s).value(), 3),
                    TextTable::num(cpu.active_power_at(s).value(), 1)});
  }
  active.print();

  // ---- Figure 7: time-indexed idle states and the policy over them --------
  hw::SmartBadge badge;
  const dpm::DpmCostModel costs = dpm::smartbadge_cost_model(badge);
  const auto idle = std::make_shared<dpm::ParetoIdle>(1.8, seconds(8.0));
  const dpm::TismdpSolver solver{costs, idle};
  const dpm::TimeIndexedPolicy policy = solver.solve_unconstrained();

  std::printf("\nFigure 7: time-indexed idle states (Pareto idle, mean %.0f s)\n",
              idle->mean().value());
  TextTable t;
  t.set_header({"Elapsed idle time", "P(still idle)", "Commanded state"});
  // Print the action at a readable subset of boundaries plus every change.
  hw::PowerState prev = hw::PowerState::Active;  // sentinel != first action
  std::size_t printed = 0;
  for (std::size_t i = 0; i < policy.boundaries.size(); ++i) {
    const bool action_change = policy.actions[i] != prev;
    const bool milestone = i % (policy.boundaries.size() / 12 + 1) == 0;
    if (!action_change && !milestone) continue;
    if (++printed > 24) break;
    t.add_row({TextTable::num(policy.boundaries[i].value(), 3) + " s",
               TextTable::num(idle->survival(policy.boundaries[i]), 3),
               std::string(hw::to_string(policy.actions[i]))});
    prev = policy.actions[i];
  }
  t.print();

  const dpm::SleepPlan plan = policy.to_plan();
  std::printf("\ncollapsed plan:");
  for (const auto& step : plan.steps) {
    std::printf("  ->%s @ %.2f s", std::string(hw::to_string(step.state)).c_str(),
                step.after.value());
  }
  std::printf("\nexpected energy %.1f J/idle period, expected wakeup delay"
              " %.3f s\n", policy.expected_energy, policy.expected_delay);

  std::printf("\nShape check: the time index is what makes the policy"
              " non-trivial — the commanded\nstate deepens with elapsed idle"
              " time exactly because the Pareto tail makes long\nidleness"
              " predict longer idleness; a memoryless model would collapse"
              " to a single\nthreshold at t=0.\n");
  return 0;
}
