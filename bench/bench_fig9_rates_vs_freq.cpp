// Figure 9: MPEG frame rates vs CPU frequency — the decode ("CPU") rate
// achievable at each frequency step and the WLAN arrival rate sustainable
// while holding the 0.1 s average buffered-frame delay (about 2 extra
// buffered frames of video).
#include "bench_common.hpp"

using namespace dvs;

int main() {
  bench::print_header("Figure 9: MPEG frame rates vs CPU frequency",
                      "Simunic et al., DAC'01, Figure 9 (football clip, 0.1 s"
                      " delay, ~2 buffered frames)");

  const hw::Sa1100& cpu = bench::cpu();
  const auto dec = workload::reference_mpeg_decoder(cpu.max_frequency());
  const Hertz football_rate = workload::football_clip().decode_rate_at_max;
  const Seconds target = seconds(0.1);
  const policy::FrequencyPolicy pol{cpu, dec.performance_curve(cpu), target};

  TextTable t;
  t.set_header({"CPU freq (MHz)", "CPU rate (fr/s)", "WLAN rate (fr/s)",
                "Buffered frames @ WLAN rate"});
  CsvWriter csv{bench::csv_path("fig9_rates_vs_freq")};
  csv.write_row(std::vector<std::string>{"freq_mhz", "cpu_rate", "wlan_rate",
                                         "buffered_frames"});
  for (std::size_t s = 0; s < cpu.num_steps(); ++s) {
    const double cpu_rate = pol.decode_rate_at(s, football_rate).value();
    const double wlan_rate = pol.sustainable_arrival_rate_at(s, football_rate).value();
    const double buffered = queue::Mm1::buffered_frames_at(hertz(wlan_rate), target);
    t.add_row({TextTable::num(cpu.frequency_at(s).value(), 2),
               TextTable::num(cpu_rate, 1), TextTable::num(wlan_rate, 1),
               TextTable::num(buffered, 2)});
    csv.write_row(std::vector<double>{cpu.frequency_at(s).value(), cpu_rate,
                                      wlan_rate, buffered});
  }
  t.print();

  std::printf("\nShape check: both curves rise with frequency and differ by the"
              " constant 1/d = 10 fr/s\nservice-margin Equation 5 requires; at"
              " the paper's ~20 fr/s arrivals that is ~2 extra\nbuffered"
              " frames.  The curves are the policy's lookup: detect the WLAN"
              " rate, read off\nthe lowest sufficient frequency.\n");
  return 0;
}
