// Microbenchmarks (google-benchmark): throughput of the pieces that run on
// every frame — the simulation kernel, the detectors, and the policy — to
// show the run-time machinery is cheap relative to frame periods (tens of
// milliseconds on the SmartBadge).
#include <benchmark/benchmark.h>

#include <memory>
#include <sstream>

#include "dvs.hpp"

namespace {

using namespace dvs;

void BM_RngExponential(benchmark::State& state) {
  Rng rng{1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.exponential(30.0));
  }
}
BENCHMARK(BM_RngExponential);

void BM_SimulatorScheduleAndRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    for (int i = 0; i < 1000; ++i) {
      sim.schedule_at(seconds(static_cast<double>(i)), [] {});
    }
    sim.run();
    benchmark::DoNotOptimize(sim.executed_count());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SimulatorScheduleAndRun);

void BM_EmaDetectorSample(benchmark::State& state) {
  detect::EmaDetector det{0.03};
  det.reset(hertz(30.0));
  Rng rng{2};
  Seconds now{0.0};
  for (auto _ : state) {
    const Seconds gap{rng.exponential(30.0)};
    now += gap;
    benchmark::DoNotOptimize(det.on_sample(now, gap));
  }
}
BENCHMARK(BM_EmaDetectorSample);

const std::shared_ptr<const detect::ThresholdTable>& micro_table() {
  static const auto table = std::make_shared<const detect::ThresholdTable>([] {
    detect::ChangePointConfig cfg;
    cfg.mc_windows = 500;  // characterization cost is off-line; keep it small here
    return cfg;
  }());
  return table;
}

void BM_ChangePointSample(benchmark::State& state) {
  detect::ChangePointDetector det{micro_table()};
  det.reset(hertz(30.0));
  Rng rng{3};
  Seconds now{0.0};
  for (auto _ : state) {
    const Seconds gap{rng.exponential(30.0)};
    now += gap;
    benchmark::DoNotOptimize(det.on_sample(now, gap));
  }
}
BENCHMARK(BM_ChangePointSample);

void BM_ThresholdCharacterization(benchmark::State& state) {
  for (auto _ : state) {
    detect::ChangePointConfig cfg;
    cfg.mc_windows = static_cast<std::size_t>(state.range(0));
    detect::ThresholdTable table{cfg};
    benchmark::DoNotOptimize(table.scan_margin());
  }
}
BENCHMARK(BM_ThresholdCharacterization)->Arg(500)->Arg(2000)->Unit(benchmark::kMillisecond);

void BM_SimulatorCancelHeavy(benchmark::State& state) {
  // The DPM idiom: re-arm and cancel a far-future sleep on every request.
  // Without lazy compaction the heap grows by one tombstone per iteration.
  for (auto _ : state) {
    sim::Simulator sim;
    sim::EventId pending{};
    for (int i = 0; i < 1000; ++i) {
      if (pending.valid()) sim.cancel(pending);
      pending = sim.schedule_at(seconds(1e6 + i), [] {});
      sim.schedule_at(seconds(static_cast<double>(i)), [] {});
    }
    sim.cancel(pending);
    sim.run();
    benchmark::DoNotOptimize(sim.heap_size());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SimulatorCancelHeavy);

void BM_TraceRecorderNullPath(benchmark::State& state) {
  // The cost an untraced run pays at every instrumentation site: one
  // active() test, no payload construction.
  obs::TraceRecorder rec;
  std::uint64_t frame = 0;
  for (auto _ : state) {
    if (rec.active()) {
      rec.record(1.0, obs::FrameArrival{frame, "mp3", 1});
    }
    benchmark::DoNotOptimize(++frame);
  }
}
BENCHMARK(BM_TraceRecorderNullPath);

void BM_TraceRecorderJsonlSink(benchmark::State& state) {
  std::ostringstream os;
  obs::TraceRecorder rec;
  rec.add_sink(std::make_unique<obs::JsonlSink>(os));
  std::uint64_t frame = 0;
  for (auto _ : state) {
    rec.record(1.0, obs::FrameArrival{frame++, "mp3", 1});
    if (os.tellp() > (1 << 20)) os.str({});  // cap memory growth
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(rec.events_recorded()));
}
BENCHMARK(BM_TraceRecorderJsonlSink);

void BM_FlightRecorderRecord(benchmark::State& state) {
  // The always-on path: one masked ring-slot store per instrumented event.
  obs::FlightRecorder fr(4096);
  double ts = 0.0;
  for (auto _ : state) {
    ts += 1e-3;
    fr.record(ts, obs::FlightEventType::DecodeDone, 0,
              static_cast<float>(ts), 0.0F);
  }
  benchmark::DoNotOptimize(fr.records_stored());
}
BENCHMARK(BM_FlightRecorderRecord);

void BM_FrequencyPolicySelect(benchmark::State& state) {
  const hw::Sa1100 cpu;
  const auto dec = workload::reference_mp3_decoder(cpu.max_frequency());
  const policy::FrequencyPolicy pol{cpu, dec.performance_curve(cpu), seconds(0.1)};
  Rng rng{4};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        pol.select_step(hertz(rng.uniform(9.0, 44.0)), hertz(100.0)));
  }
}
BENCHMARK(BM_FrequencyPolicySelect);

}  // namespace

BENCHMARK_MAIN();
