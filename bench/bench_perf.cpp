// bench_perf: the engine's headline performance numbers.
//
// Emits BENCH_perf.json (path in argv[1], default ./BENCH_perf.json) with
// the metrics the perf-regression harness tracks:
//
//   * scenario.<name>.frames_per_sec       decoded frames per wall second
//   * scenario.<name>.sim_sec_per_wall_sec simulated seconds per wall second
//   * micro.detector_step_ns               one change-point detector sample
//   * micro.governor_step_ns               one governor arrival+complete+apply
//   * engine.policy_dispatch_ns            the same step through the
//                                          policy::Governor interface [budget]
//   * micro.sim_event_ns                   one kernel schedule+execute
//   * micro.sim_cancel_ns                  one kernel schedule+cancel
//   * micro.flight_record_ns               one flight-recorder ring store
//   * engine.flight_overhead_pct           engine run, flight on vs off
//   * micro.sketch_add_ns                  one quantile-sketch insertion
//   * micro.span_record_ns                 one span enter/exit, profiler on
//   * micro.span_null_ns                   one span site, no profiler [budget]
//   * engine.span_overhead_pct             span profiler attached vs bare
//   * engine.metrics_overhead_pct          metrics registry + sketches vs bare
//   * engine.telemetry_overhead_pct        live snapshot feed vs metrics [budget]
//   * engine.fleet_frames_per_s            fleet population throughput, jobs=1
//   * serve.event_log_ns                   one daemon lifecycle event append
//                                          (format + write + per-record
//                                          flush) [budget]
//   * char.threshold_table_s               one cold Monte-Carlo characterization
//
// Rows marked [budget] carry a "budget" field: an absolute ceiling in the
// metric's own unit that compare_bench.py enforces under --strict,
// independent of the baseline (see measure_telemetry for the rationale).
//
// Scenario sweeps run at jobs=1 so the number is per-core engine throughput,
// comparable across machines with different core counts.  Scenario timing
// excludes shared-asset preparation (trace generation, threshold
// characterization) — it is the steady-state event-loop rate.
//
// Compare two runs with scripts/compare_bench.py; the committed baseline
// lives in bench/baselines/BENCH_perf_baseline.json (see docs/PERF.md).
#include "dvs.hpp"

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "serve/event_log.hpp"

using namespace dvs;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct PerfResult {
  std::string name;
  std::string unit;
  double value = 0.0;
  bool higher_is_better = true;
  /// Absolute ceiling for this metric (same unit as value); 0 = none.
  /// compare_bench.py --strict fails when value exceeds it.
  double budget = 0.0;
};

void write_json(const std::string& path, const std::vector<PerfResult>& results) {
  std::ofstream os{path};
  if (!os) {
    std::fprintf(stderr, "bench_perf: cannot open %s\n", path.c_str());
    std::exit(1);
  }
  os << "{\n  \"schema\": \"dvs-bench-perf-v1\",\n  \"results\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const PerfResult& r = results[i];
    char value[64];
    std::snprintf(value, sizeof value, "%.6g", r.value);
    os << "    {\"name\": \"" << r.name << "\", \"unit\": \"" << r.unit
       << "\", \"value\": " << value << ", \"higher_is_better\": "
       << (r.higher_is_better ? "true" : "false");
    if (r.budget > 0.0) {
      char budget[64];
      std::snprintf(budget, sizeof budget, "%.6g", r.budget);
      os << ", \"budget\": " << budget;
    }
    os << "}" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

/// Steady-state sweep throughput for one builtin scenario at jobs=1.
void measure_scenario(const std::string& name, std::vector<PerfResult>& out) {
  const core::ScenarioSpec* spec = core::find_scenario(name);
  if (spec == nullptr) {
    std::fprintf(stderr, "bench_perf: no builtin scenario '%s'\n", name.c_str());
    std::exit(1);
  }
  core::SweepOptions opts;
  opts.jobs = 1;

  // Best-of-N: short sweeps are jitter-prone; the fastest run is the
  // engine's capability, the slower ones are scheduler noise.
  double best_fps = 0.0;
  double best_spw = 0.0;
  std::size_t points = 0;
  double last_wall = 0.0;
  const int reps = spec->num_points() < 16 ? 5 : 2;
  for (int rep = 0; rep < reps; ++rep) {
    const core::SweepResult res = core::SweepRunner{opts}.run(*spec);
    double frames = 0.0;
    double sim_sec = 0.0;
    for (const core::PointResult& p : res.points) {
      frames += static_cast<double>(p.metrics.frames_decoded);
      sim_sec += p.metrics.duration.value();
    }
    points = res.points.size();
    last_wall = res.wall_seconds;
    if (res.wall_seconds > 0.0 && frames / res.wall_seconds > best_fps) {
      best_fps = frames / res.wall_seconds;
      best_spw = sim_sec / res.wall_seconds;
    }
  }
  out.push_back({"scenario." + name + ".frames_per_sec", "frames/s", best_fps,
                 true});
  out.push_back({"scenario." + name + ".sim_sec_per_wall_sec", "sim-s/wall-s",
                 best_spw, true});
  std::printf("%-34s %10.0f frames/s  %8.1f sim-s/wall-s  (%zu points, %.2f s)\n",
              ("scenario." + name).c_str(), best_fps, best_spw, points,
              last_wall);
}

/// One change-point detector sample (including the periodic full detect()).
void measure_detector_step(std::vector<PerfResult>& out) {
  const core::DetectorFactoryConfig& cfg = bench::detectors();
  detect::ChangePointDetector det{cfg.thresholds};
  det.reset(hertz(38.0));
  Rng rng{12345};
  constexpr int kSamples = 400000;
  // Alternate between two rates so detect() exercises the change path too.
  const auto t0 = Clock::now();
  Seconds now{0.0};
  for (int i = 0; i < kSamples; ++i) {
    const double rate = (i / 50000) % 2 == 0 ? 38.0 : 76.0;
    const Seconds gap{rng.exponential(rate)};
    now = now + gap;
    det.on_sample(now, gap);
  }
  const double wall = seconds_since(t0);
  out.push_back({"micro.detector_step_ns", "ns/step", wall / kSamples * 1e9,
                 false});
  std::printf("%-34s %10.1f ns/step\n", "micro.detector_step", wall / kSamples * 1e9);
}

/// One governor step: arrival sample + decode-complete sample + apply.
/// EMA detectors keep the detector cost negligible, so this isolates the
/// policy/governor overhead the engine pays per frame.
void measure_governor_step(std::vector<PerfResult>& out) {
  hw::SmartBadge badge;
  const workload::DecoderModel dec =
      workload::reference_mp3_decoder(badge.cpu().max_frequency());
  policy::FrequencyPolicy fp{badge.cpu(), dec.performance_curve(badge.cpu()),
                             seconds(0.15), 1.0};
  policy::DvsGovernor gov{badge, dec, std::move(fp),
                          std::make_unique<detect::EmaDetector>(0.03),
                          std::make_unique<detect::EmaDetector>(0.03)};
  gov.initialize(core::default_nominal_arrival(workload::MediaType::Mp3Audio),
                 core::default_nominal_service(workload::MediaType::Mp3Audio),
                 Seconds{0.0});
  Rng rng{999};
  constexpr int kFrames = 400000;
  const auto t0 = Clock::now();
  Seconds now{0.0};
  for (int i = 0; i < kFrames; ++i) {
    const Seconds gap{rng.exponential(38.0)};
    now = now + gap;
    gov.on_arrival(now, gap, 1.0);
    gov.on_decode_complete(now, Seconds{0.02}, badge.cpu_frequency(), 0.0,
                           Seconds{0.05});
    gov.apply(now);
  }
  const double wall = seconds_since(t0);
  out.push_back({"micro.governor_step_ns", "ns/frame", wall / kFrames * 1e9,
                 false});
  std::printf("%-34s %10.1f ns/frame\n", "micro.governor_step", wall / kFrames * 1e9);
}

/// The same per-frame step as measure_governor_step, but built by the
/// GovernorFactory and driven through a policy::Governor base pointer —
/// exactly how the engine dispatches since the plugin refactor.  The budget
/// caps the absolute per-frame cost so virtual dispatch plus the factory's
/// type erasure can never quietly dominate the hot path.
void measure_policy_dispatch(std::vector<PerfResult>& out) {
  hw::SmartBadge badge;
  const workload::DecoderModel dec =
      workload::reference_mp3_decoder(badge.cpu().max_frequency());
  policy::GovernorContext ctx{badge, dec, seconds(0.15), 1.0};
  ctx.make_arrival_detector = [] {
    return std::make_unique<detect::EmaDetector>(0.03);
  };
  ctx.make_service_detector = [] {
    return std::make_unique<detect::EmaDetector>(0.03);
  };
  const policy::GovernorPtr owned =
      policy::GovernorFactory::instance().create("paper", ctx);
  policy::Governor* gov = owned.get();
  gov->initialize(core::default_nominal_arrival(workload::MediaType::Mp3Audio),
                  core::default_nominal_service(workload::MediaType::Mp3Audio),
                  Seconds{0.0});
  Rng rng{999};
  constexpr int kFrames = 400000;
  const auto t0 = Clock::now();
  Seconds now{0.0};
  for (int i = 0; i < kFrames; ++i) {
    const Seconds gap{rng.exponential(38.0)};
    now = now + gap;
    gov->on_arrival(now, gap, 1.0);
    gov->on_decode_complete(now, Seconds{0.02}, badge.cpu_frequency(), 0.0,
                            Seconds{0.05});
    gov->apply(now);
  }
  const double wall = seconds_since(t0);
  out.push_back({"engine.policy_dispatch_ns", "ns/frame", wall / kFrames * 1e9,
                 false, 250.0});
  std::printf("%-34s %10.1f ns/frame  (budget 250 ns)\n",
              "engine.policy_dispatch", wall / kFrames * 1e9);
}

/// Kernel schedule+execute throughput with the engine's typical event mix.
void measure_sim_kernel(std::vector<PerfResult>& out) {
  {
    sim::Simulator sim;
    constexpr int kEvents = 2000000;
    int fired = 0;
    const auto t0 = Clock::now();
    // Schedule in windows so the heap stays engine-sized (tens of events).
    for (int batch = 0; batch < kEvents / 20; ++batch) {
      const double base = batch * 1e-3;
      for (int i = 0; i < 20; ++i) {
        sim.schedule_at(Seconds{base + i * 1e-5}, [&fired] { ++fired; });
      }
      sim.run();
    }
    const double wall = seconds_since(t0);
    out.push_back({"micro.sim_event_ns", "ns/event", wall / fired * 1e9, false});
    std::printf("%-34s %10.1f ns/event\n", "micro.sim_event", wall / fired * 1e9);
  }
  {
    // Cancel-heavy: the DPM pattern (schedule a sleep, cancel it on the next
    // arrival).
    sim::Simulator sim;
    constexpr int kEvents = 2000000;
    const auto t0 = Clock::now();
    for (int i = 0; i < kEvents; ++i) {
      const sim::EventId id = sim.schedule_at(Seconds{i + 1e9}, [] {});
      sim.cancel(id);
    }
    const double wall = seconds_since(t0);
    out.push_back({"micro.sim_cancel_ns", "ns/cancel", wall / kEvents * 1e9,
                   false});
    std::printf("%-34s %10.1f ns/cancel\n", "micro.sim_cancel",
                wall / kEvents * 1e9);
  }
}

/// The flight recorder's always-on cost: raw ns per ring store, plus the
/// end-to-end overhead it adds to a real engine run (flight on vs off on
/// the same trace, best-of-N each; the ISSUE budget is <= 5%).
void measure_flight_recorder(std::vector<PerfResult>& out) {
  {
    obs::FlightRecorder fr(4096);
    constexpr int kRecords = 4000000;
    const auto t0 = Clock::now();
    for (int i = 0; i < kRecords; ++i) {
      fr.record(i * 1e-3, obs::FlightEventType::DecodeDone, 0,
                static_cast<float>(i), 0.0F);
    }
    const double wall = seconds_since(t0);
    out.push_back({"micro.flight_record_ns", "ns/record",
                   wall / kRecords * 1e9, false});
    std::printf("%-34s %10.2f ns/record\n", "micro.flight_record",
                wall / kRecords * 1e9);
  }
  {
    const hw::Sa1100 cpu;
    const auto dec = workload::reference_mp3_decoder(cpu.max_frequency());
    Rng rng{77};
    std::string labels;
    for (int i = 0; i < 8; ++i) labels += "ACE";
    const auto trace =
        workload::build_mp3_trace(workload::mp3_sequence(labels), dec, rng);
    const auto one_run = [&](bool flight) {
      core::RunOptions opts;
      opts.detector = core::DetectorKind::ExpAverage;
      opts.flight_recorder = flight;
      const auto t0 = Clock::now();
      core::run_single_trace(trace, dec, opts);
      return seconds_since(t0);
    };
    // Warm caches and clocks, then interleave on/off reps so drift hits
    // both arms equally; best-of each arm is the engine's capability.
    one_run(false);
    one_run(true);
    double off = 1e300;
    double on = 1e300;
    for (int rep = 0; rep < 7; ++rep) {
      off = std::min(off, one_run(false));
      on = std::min(on, one_run(true));
    }
    const double pct = off > 0.0 ? (on - off) / off * 100.0 : 0.0;
    out.push_back({"engine.flight_overhead_pct", "%", pct, false});
    std::printf("%-34s %10.2f %%  (on %.4f s, off %.4f s)\n",
                "engine.flight_overhead", pct, on, off);
  }
}

/// Streaming-telemetry costs.  Two classes of number, mirroring the flight
/// recorder's budget philosophy (always-on cost must be ~free; opt-in
/// analysis cost is tracked but not capped):
///
/// Budgeted (compare_bench.py --strict fails on breach):
///   * micro.span_null_ns — one instrumentation site with NO profiler
///     attached, the price every engine run pays (budget 2 ns: a pointer
///     test must stay a pointer test).
///   * engine.telemetry_overhead_pct — the live snapshot feed in its
///     production configuration (wall-time scrape throttle) on top of a
///     metrics-enabled run (budget 5%, same as the flight recorder).
///
/// Informational (tracked in the trajectory, no absolute cap): raw sketch
/// insert and span record micro numbers, and the end-to-end cost of the
/// opt-in analysis attachments — the metrics registry with its per-frame
/// sketch feeds, and the span profiler when one is attached.  A sim-time
/// snapshot cadence likewise scales with the cadence (the engine simulates
/// thousands of seconds per wall second), so like --trace-jsonl it is an
/// analysis dump, not a budgeted production path.
void measure_telemetry(std::vector<PerfResult>& out) {
  {
    // Sketch insertion in steady state (past the exact->P2 collapse).
    obs::QuantileSketch sk;
    Rng rng{4242};
    constexpr int kAdds = 4000000;
    const auto t0 = Clock::now();
    for (int i = 0; i < kAdds; ++i) sk.add(rng.exponential(10.0));
    const double wall = seconds_since(t0);
    out.push_back({"micro.sketch_add_ns", "ns/add", wall / kAdds * 1e9, false});
    std::printf("%-34s %10.2f ns/add\n", "micro.sketch_add", wall / kAdds * 1e9);
  }
  {
    // One enter/exit pair on a pre-registered node (the per-site cost when
    // a profiler IS attached).
    obs::SpanProfiler prof;
    const int id = prof.node(0, "bench");
    constexpr int kPairs = 4000000;
    const auto t0 = Clock::now();
    for (int i = 0; i < kPairs; ++i) {
      prof.enter(id);
      prof.exit();
    }
    const double wall = seconds_since(t0);
    out.push_back({"micro.span_record_ns", "ns/span", wall / kPairs * 1e9,
                   false});
    std::printf("%-34s %10.2f ns/span\n", "micro.span_record",
                wall / kPairs * 1e9);
  }
  {
    // The same site with no profiler: the always-on null path.
    constexpr int kPairs = 40000000;
    obs::SpanProfiler* null_prof = nullptr;
    const auto t0 = Clock::now();
    for (int i = 0; i < kPairs; ++i) {
      obs::ScopedSpan span{null_prof, 1};
      asm volatile("" ::: "memory");  // keep the loop from folding away
    }
    const double wall = seconds_since(t0);
    out.push_back({"micro.span_null_ns", "ns/site", wall / kPairs * 1e9,
                   false, 2.0});
    std::printf("%-34s %10.2f ns/site  (budget 2 ns)\n", "micro.span_null",
                wall / kPairs * 1e9);
  }
  {
    const hw::Sa1100 cpu;
    const auto dec = workload::reference_mp3_decoder(cpu.max_frequency());
    Rng rng{78};
    std::string labels;
    for (int i = 0; i < 8; ++i) labels += "ACE";
    const auto trace =
        workload::build_mp3_trace(workload::mp3_sequence(labels), dec, rng);
    enum Mode { kBare, kSpans, kMetrics, kLiveFeed, kModes };
    const auto one_run = [&](int mode) {
      core::RunOptions opts;
      opts.detector = core::DetectorKind::ExpAverage;
      obs::SpanProfiler prof;
      obs::MetricsRegistry reg;
      std::ostringstream sink;
      obs::TelemetrySnapshotter tel{&sink};
      if (mode == kSpans) opts.profiler = &prof;
      if (mode == kMetrics || mode == kLiveFeed) opts.metrics = &reg;
      if (mode == kLiveFeed) {
        // Production live feed: sim-time chain at 1 s, delivery throttled
        // to a 100 Hz wall scrape rate.
        tel.set_min_wall_interval(0.01);
        opts.telemetry = &tel;
        opts.telemetry_every = seconds(1.0);
      }
      const auto t0 = Clock::now();
      core::run_single_trace(trace, dec, opts);
      return seconds_since(t0);
    };
    double best[kModes];
    for (int m = 0; m < kModes; ++m) best[m] = one_run(m);  // warm-up rep
    for (int rep = 0; rep < 7; ++rep) {
      for (int m = 0; m < kModes; ++m) best[m] = std::min(best[m], one_run(m));
    }
    const auto pct = [](double on, double off) {
      return off > 0.0 ? (on - off) / off * 100.0 : 0.0;
    };
    const double span_pct = pct(best[kSpans], best[kBare]);
    const double metrics_pct = pct(best[kMetrics], best[kBare]);
    const double feed_pct = pct(best[kLiveFeed], best[kMetrics]);
    out.push_back({"engine.span_overhead_pct", "%", span_pct, false});
    out.push_back({"engine.metrics_overhead_pct", "%", metrics_pct, false});
    out.push_back({"engine.telemetry_overhead_pct", "%", feed_pct, false, 5.0});
    std::printf("%-34s %10.2f %%  (on %.4f s, off %.4f s)\n",
                "engine.span_overhead", span_pct, best[kSpans], best[kBare]);
    std::printf("%-34s %10.2f %%  (on %.4f s, off %.4f s)\n",
                "engine.metrics_overhead", metrics_pct, best[kMetrics],
                best[kBare]);
    std::printf("%-34s %10.2f %%  (on %.4f s, off %.4f s, budget 5%%)\n",
                "engine.telemetry_overhead", feed_pct, best[kLiveFeed],
                best[kMetrics]);
  }
}

/// Fleet population throughput: a slice of the fleet_smoke builtin at
/// jobs=1, end to end (shared-asset preparation included — amortizing prep
/// across the population is part of what the fleet runner is for).  Decoded
/// plus dropped frames per wall second, best-of-N.
void measure_fleet(std::vector<PerfResult>& out) {
  const fleet::FleetSpec* found = fleet::find_fleet("fleet_smoke");
  if (found == nullptr) {
    std::fprintf(stderr, "bench_perf: no builtin fleet 'fleet_smoke'\n");
    std::exit(1);
  }
  fleet::FleetSpec spec = *found;
  spec.num_devices = 1000;
  fleet::FleetOptions opts;
  opts.jobs = 1;
  double best = 0.0;
  std::uint64_t frames = 0;
  double last_wall = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    const fleet::FleetResult res = fleet::FleetRunner{opts}.run(spec);
    frames = res.frames_total;
    last_wall = res.wall_seconds;
    if (res.wall_seconds > 0.0) {
      best = std::max(best,
                      static_cast<double>(frames) / res.wall_seconds);
    }
  }
  out.push_back({"engine.fleet_frames_per_s", "frames/s", best, true});
  std::printf("%-34s %10.0f frames/s  (%zu devices, %.2f s)\n",
              "engine.fleet_frames_per_s", best, spec.num_devices, last_wall);
}

/// One daemon lifecycle event append: format + write + per-record flush.
/// The flush is the point (it is what makes `dvs_sim tail` live and the
/// torn-tail contract crash-provable), so the number is dominated by the
/// flush syscall, not the JSON formatting.  Budget 50 µs/event: lifecycle
/// transitions happen per fold unit at most, and a fold unit is
/// milliseconds of engine work at minimum — the narration must stay
/// invisible next to the work it narrates.
void measure_event_log(std::vector<PerfResult>& out) {
  namespace fs = std::filesystem;
  const std::string path =
      (fs::temp_directory_path() / "bench_event_log.jsonl").string();
  fs::remove(path);
  constexpr int kEvents = 2000;
  double wall = 0.0;
  {
    serve::EventLog log{path};
    const auto t0 = Clock::now();
    for (int i = 0; i < kEvents; ++i) {
      log.checkpoint_flush("bench-job", static_cast<std::size_t>(i), kEvents);
    }
    wall = seconds_since(t0);
  }
  fs::remove(path);
  out.push_back({"serve.event_log_ns", "ns/event", wall / kEvents * 1e9,
                 false, 50000.0});
  std::printf("%-34s %10.1f ns/event  (budget 50000 ns)\n", "serve.event_log",
              wall / kEvents * 1e9);
}

/// One cold Monte-Carlo threshold characterization (Section 3.1) — the cost
/// the shared-asset cache saves on every warm use.
void measure_characterization(std::vector<PerfResult>& out) {
  const auto t0 = Clock::now();
  const detect::ThresholdTable table{detect::ChangePointConfig{}};
  const double wall = seconds_since(t0);
  out.push_back({"char.threshold_table_s", "s", wall, false});
  std::printf("%-34s %10.3f s  (%zu ratios)\n", "char.threshold_table", wall,
              table.entries().size());
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_perf.json";
  bench::print_header("Engine performance (BENCH_perf)",
                      "perf-regression harness, docs/PERF.md");

  std::vector<PerfResult> results;
  measure_characterization(results);
  measure_detector_step(results);
  measure_governor_step(results);
  measure_policy_dispatch(results);
  measure_sim_kernel(results);
  measure_flight_recorder(results);
  measure_telemetry(results);
  measure_fleet(results);
  measure_event_log(results);
  for (const char* s : {"quick", "table3", "table5"}) {
    measure_scenario(s, results);
  }

  write_json(out_path, results);
  std::printf("\nperf json -> %s\n", out_path.c_str());
  return 0;
}
