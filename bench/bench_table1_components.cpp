// Table 1: SmartBadge components — per-state power and wakeup transition
// times, with the Total row.
#include "bench_common.hpp"

using namespace dvs;

int main() {
  bench::print_header("Table 1: SmartBadge components",
                      "Simunic et al., DAC'01, Table 1 (values reconstructed; "
                      "see DESIGN.md)");

  TextTable t;
  t.set_header({"Component", "Active P(mW)", "Idle P(mW)", "Stdby P(mW)",
                "t_sby(ms)", "t_off(ms)"});
  for (const auto& spec : hw::smartbadge_component_specs()) {
    t.add_row({spec.name, TextTable::num(spec.active_power.value(), 1),
               TextTable::num(spec.idle_power.value(), 1),
               TextTable::num(spec.standby_power.value(), 3),
               TextTable::num(spec.wakeup_from_standby.value() * 1e3, 1),
               TextTable::num(spec.wakeup_from_off.value() * 1e3, 1)});
  }
  Seconds worst_sby{0.0};
  Seconds worst_off{0.0};
  for (const auto& spec : hw::smartbadge_component_specs()) {
    worst_sby = std::max(worst_sby, spec.wakeup_from_standby);
    worst_off = std::max(worst_off, spec.wakeup_from_off);
  }
  t.add_row({"Total",
             TextTable::num(hw::smartbadge_total_power(hw::PowerState::Active).value(), 1),
             TextTable::num(hw::smartbadge_total_power(hw::PowerState::Idle).value(), 1),
             TextTable::num(hw::smartbadge_total_power(hw::PowerState::Standby).value(), 3),
             TextTable::num(worst_sby.value() * 1e3, 1),
             TextTable::num(worst_off.value() * 1e3, 1)});
  t.print();

  std::printf("\nShape check: active ~3.5 W as published; standby is ~%.0fx below"
              " idle,\nwhich is the DPM opportunity Table 5 exploits.\n",
              hw::smartbadge_total_power(hw::PowerState::Idle).value() /
                  hw::smartbadge_total_power(hw::PowerState::Standby).value());
  return 0;
}
