// Table 2: the six MP3 audio streams (bit rate, sample rate, decoding rate)
// plus the derived arrival rates and durations used by the Table 3
// sequences.
#include "bench_common.hpp"

using namespace dvs;

int main() {
  bench::print_header("Table 2: MP3 audio streams",
                      "Simunic et al., DAC'01, Table 2 (decode rates at the"
                      " top frequency step)");

  TextTable t;
  t.set_header({"Clip", "Bit rate (Kb/s)", "Sample rate (KHz)",
                "Dec. rate (fr/s)", "Arrival rate (fr/s)", "Duration (s)"});
  double total = 0.0;
  for (const auto& clip : workload::mp3_clip_table()) {
    t.add_row({std::string(1, clip.label), TextTable::num(clip.bit_rate_kbps, 0),
               TextTable::num(clip.sample_rate_khz, 2),
               TextTable::num(clip.decode_rate_at_max.value(), 1),
               TextTable::num(clip.arrival_rate().value(), 1),
               TextTable::num(clip.duration.value(), 0)});
    total += clip.duration.value();
  }
  t.print();
  std::printf("\nTotal audio: %.0f s (paper: 653 s).  Decoding rate falls as bit"
              " and sample rates\nrise; every clip still decodes faster than"
              " real time at the top step, which is the\nDVS slack the"
              " governor converts into lower voltage.\n", total);
  return 0;
}
