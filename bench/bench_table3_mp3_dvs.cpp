// Table 3: MP3 audio DVS — energy and average total frame delay for the
// three six-clip sequences under the four algorithms (Ideal, Change Point,
// Exp. Average, Max).  The delay target is 0.15 s, i.e. ~6 extra buffered
// audio frames at ~40 fr/s arrivals, matching the paper's setup.
//
// Unlike the paper's single measured run, each cell is the mean over five
// independently generated workload seeds, with the standard deviation in
// parentheses.
#include "bench_common.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "workload/clips.hpp"

using namespace dvs;

namespace {

constexpr int kSeeds = 5;

std::string cell(const RunningStats& s, int precision) {
  return TextTable::num(s.mean(), precision) + " (" +
         TextTable::num(s.count() > 1 ? s.stddev() : 0.0, precision) + ")";
}

}  // namespace

int main() {
  bench::print_header("Table 3: MP3 audio DVS",
                      "Simunic et al., DAC'01, Table 3 (sequences ACEFBD,"
                      " BADECF, CEDAFB); mean (sd) over 5 seeds");

  const auto dec = workload::reference_mp3_decoder(bench::cpu().max_frequency());
  const Seconds target = seconds(0.15);
  const auto& algorithms = bench::paper_algorithms();

  TextTable t;
  t.set_header({"MP3 sequence", "Result", "Ideal", "Change Point", "Exp. Ave.",
                "Max"});

  for (const std::string seq : {"ACEFBD", "BADECF", "CEDAFB"}) {
    std::array<RunningStats, 4> energy;
    std::array<RunningStats, 4> subsystem;
    std::array<RunningStats, 4> delay;
    std::array<RunningStats, 4> switches;
    for (int seed = 0; seed < kSeeds; ++seed) {
      Rng rng{static_cast<std::uint64_t>(seq[0]) * 131 + seq[5] +
              static_cast<std::uint64_t>(seed) * 7919};
      const auto trace =
          workload::build_mp3_trace(workload::mp3_sequence(seq), dec, rng);
      for (std::size_t a = 0; a < algorithms.size(); ++a) {
        core::RunOptions opts;
        opts.detector = algorithms[a];
        opts.target_delay = target;
        opts.detector_cfg = &bench::detectors();
        const core::Metrics m = core::run_single_trace(trace, dec, opts);
        energy[a].add(m.energy_kj());
        subsystem[a].add(m.cpu_memory_energy().value() / 1e3);
        delay[a].add(m.mean_frame_delay.value());
        switches[a].add(m.cpu_switches);
      }
    }
    std::vector<std::string> energy_row{seq, "Energy (kJ)"};
    std::vector<std::string> subsystem_row{"", "CPU+mem (kJ)"};
    std::vector<std::string> delay_row{"", "Fr. Delay (s)"};
    std::vector<std::string> switch_row{"", "Freq switches"};
    for (std::size_t a = 0; a < algorithms.size(); ++a) {
      energy_row.push_back(cell(energy[a], 3));
      subsystem_row.push_back(cell(subsystem[a], 3));
      delay_row.push_back(cell(delay[a], 2));
      switch_row.push_back(cell(switches[a], 0));
    }
    t.add_row(energy_row);
    t.add_row(subsystem_row);
    t.add_row(delay_row);
    t.add_row(switch_row);
  }
  t.print();

  std::printf(
      "\nShape check (as in the paper): the change-point column sits within a"
      " few percent\nof Ideal in energy with delay at or near the %.2f s"
      " target; Exp. Ave. pays more\nenergy and/or delay from its"
      " instability (visible in the switch counts); Max\nburns the most"
      " energy with the smallest delay.  The CPU+mem rows isolate the\n"
      "subsystem DVS controls, where the savings factor is largest.\n",
      0.15);
  return 0;
}
