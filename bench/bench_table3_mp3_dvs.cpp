// Table 3: MP3 audio DVS — energy and average total frame delay for the
// three six-clip sequences under the four algorithms (Ideal, Change Point,
// Exp. Average, Max).  The delay target is 0.15 s, i.e. ~6 extra buffered
// audio frames at ~40 fr/s arrivals, matching the paper's setup.
//
// Unlike the paper's single measured run, each cell is the mean over five
// replicate seeds, with the standard deviation in parentheses.  The grid
// itself lives in the scenario registry ("table3"); this bench only formats
// the sweep result into the paper's row layout.
#include "bench_common.hpp"

using namespace dvs;

int main() {
  const core::ScenarioSpec& spec = *core::find_scenario("table3");
  bench::print_header(spec.title,
                      spec.paper_ref + " (sequences ACEFBD, BADECF, CEDAFB);"
                                       " mean (sd) over 5 replicates");
  const core::SweepResult res = bench::run_scenario(spec);

  TextTable t;
  t.set_header({"MP3 sequence", "Result", "Ideal", "Change Point", "Exp. Ave.",
                "Max"});
  const std::size_t algs = spec.detectors.size();
  for (std::size_t w = 0; w < spec.workloads.size(); ++w) {
    // Cells arrive in expansion order: workload outer, detector inner.
    const core::CellResult* row = &res.cells[w * algs];
    std::vector<std::string> energy_row{spec.workloads[w].mp3_labels,
                                        "Energy (kJ)"};
    std::vector<std::string> subsystem_row{"", "CPU+mem (kJ)"};
    std::vector<std::string> delay_row{"", "Fr. Delay (s)"};
    std::vector<std::string> switch_row{"", "Freq switches"};
    for (std::size_t a = 0; a < algs; ++a) {
      energy_row.push_back(bench::cell(row[a].energy_kj, 3));
      subsystem_row.push_back(bench::cell(row[a].cpu_mem_kj, 3));
      delay_row.push_back(bench::cell(row[a].delay_s, 2));
      switch_row.push_back(bench::cell(row[a].switches, 0));
    }
    t.add_row(energy_row);
    t.add_row(subsystem_row);
    t.add_row(delay_row);
    t.add_row(switch_row);
  }
  t.print();

  CsvWriter csv{bench::csv_path("table3_cells")};
  res.write_cells_csv(csv);

  std::printf(
      "\nShape check (as in the paper): the change-point column sits within a"
      " few percent\nof Ideal in energy with delay at or near the %.2f s"
      " target; Exp. Ave. pays more\nenergy and/or delay from its"
      " instability (visible in the switch counts); Max\nburns the most"
      " energy with the smallest delay.  The CPU+mem rows isolate the\n"
      "subsystem DVS controls, where the savings factor is largest.\n",
      0.15);
  return 0;
}
