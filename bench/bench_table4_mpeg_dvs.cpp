// Table 4: MPEG video DVS — energy and average total frame delay for the
// Football (875 s) and Terminator2 (1200 s) clips under the four
// algorithms.  Delay target 0.1 s (~2 extra buffered video frames).
//
// Each cell is the mean over five replicate seeds, with the standard
// deviation in parentheses.  The grid lives in the scenario registry
// ("table4"); this bench formats the sweep result into the paper's layout.
#include "bench_common.hpp"

using namespace dvs;

int main() {
  const core::ScenarioSpec& spec = *core::find_scenario("table4");
  bench::print_header(spec.title,
                      spec.paper_ref + " (arrival rate varies 9-32 fr/s over"
                                       " the WLAN); mean (sd) over 5 replicates");
  const core::SweepResult res = bench::run_scenario(spec);

  TextTable t;
  t.set_header({"MPEG clip", "Result", "Ideal", "Change Point", "Exp. Ave.",
                "Max"});
  const std::size_t algs = spec.detectors.size();
  for (std::size_t w = 0; w < spec.workloads.size(); ++w) {
    const core::CellResult* row = &res.cells[w * algs];
    const workload::MpegClip clip = spec.workloads[w].mpeg_clip == "terminator2"
                                        ? workload::terminator2_clip()
                                        : workload::football_clip();
    const std::string label =
        clip.name + " (" +
        std::to_string(static_cast<int>(clip.duration.value())) + "s)";
    std::vector<std::string> energy_row{label, "Energy (kJ)"};
    std::vector<std::string> subsystem_row{"", "CPU+mem (kJ)"};
    std::vector<std::string> delay_row{"", "Fr. Delay (s)"};
    std::vector<std::string> switch_row{"", "Freq switches"};
    for (std::size_t a = 0; a < algs; ++a) {
      energy_row.push_back(bench::cell(row[a].energy_kj, 3));
      subsystem_row.push_back(bench::cell(row[a].cpu_mem_kj, 3));
      delay_row.push_back(bench::cell(row[a].delay_s, 2));
      switch_row.push_back(bench::cell(row[a].switches, 0));
    }
    t.add_row(energy_row);
    t.add_row(subsystem_row);
    t.add_row(delay_row);
    t.add_row(switch_row);
  }
  t.print();

  CsvWriter csv{bench::csv_path("table4_cells")};
  res.write_cells_csv(csv);

  std::printf(
      "\nShape check: same ordering as Table 3.  Video stresses the detector —"
      " decode work\nvaries by ~3x frame to frame (GOP structure) and the"
      " WLAN rate wanders 9-32 fr/s —\nso the change-point delay lands near"
      " the 0.1 s target (the paper reports 0.11 s),\nwhile Exp. Ave."
      " remains unstable.  The display dominates whole-badge energy for\n"
      "video; the CPU+mem rows show the DVS factor itself.\n");
  return 0;
}
