// Table 4: MPEG video DVS — energy and average total frame delay for the
// Football (875 s) and Terminator2 (1200 s) clips under the four
// algorithms.  Delay target 0.1 s (~2 extra buffered video frames).
//
// Each cell is the mean over five independently generated workload seeds,
// with the standard deviation in parentheses.
#include "bench_common.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "workload/clips.hpp"

using namespace dvs;

namespace {

constexpr int kSeeds = 5;

std::string cell(const RunningStats& s, int precision) {
  return TextTable::num(s.mean(), precision) + " (" +
         TextTable::num(s.count() > 1 ? s.stddev() : 0.0, precision) + ")";
}

}  // namespace

int main() {
  bench::print_header("Table 4: MPEG video DVS",
                      "Simunic et al., DAC'01, Table 4 (arrival rate varies"
                      " 9-32 fr/s over the WLAN); mean (sd) over 5 seeds");

  const auto dec = workload::reference_mpeg_decoder(bench::cpu().max_frequency());
  const Seconds target = seconds(0.1);
  const auto& algorithms = bench::paper_algorithms();

  TextTable t;
  t.set_header({"MPEG clip", "Result", "Ideal", "Change Point", "Exp. Ave.",
                "Max"});

  for (const workload::MpegClip& clip :
       {workload::football_clip(), workload::terminator2_clip()}) {
    std::array<RunningStats, 4> energy;
    std::array<RunningStats, 4> subsystem;
    std::array<RunningStats, 4> delay;
    std::array<RunningStats, 4> switches;
    for (int seed = 0; seed < kSeeds; ++seed) {
      Rng rng{static_cast<std::uint64_t>(clip.duration.value()) +
              static_cast<std::uint64_t>(seed) * 104729};
      const auto trace = workload::build_mpeg_trace(clip, dec, rng);
      for (std::size_t a = 0; a < algorithms.size(); ++a) {
        core::RunOptions opts;
        opts.detector = algorithms[a];
        opts.target_delay = target;
        opts.detector_cfg = &bench::detectors();
        const core::Metrics m = core::run_single_trace(trace, dec, opts);
        energy[a].add(m.energy_kj());
        subsystem[a].add(m.cpu_memory_energy().value() / 1e3);
        delay[a].add(m.mean_frame_delay.value());
        switches[a].add(m.cpu_switches);
      }
    }
    const std::string label =
        clip.name + " (" + std::to_string(static_cast<int>(clip.duration.value())) + "s)";
    std::vector<std::string> energy_row{label, "Energy (kJ)"};
    std::vector<std::string> subsystem_row{"", "CPU+mem (kJ)"};
    std::vector<std::string> delay_row{"", "Fr. Delay (s)"};
    std::vector<std::string> switch_row{"", "Freq switches"};
    for (std::size_t a = 0; a < algorithms.size(); ++a) {
      energy_row.push_back(cell(energy[a], 3));
      subsystem_row.push_back(cell(subsystem[a], 3));
      delay_row.push_back(cell(delay[a], 2));
      switch_row.push_back(cell(switches[a], 0));
    }
    t.add_row(energy_row);
    t.add_row(subsystem_row);
    t.add_row(delay_row);
    t.add_row(switch_row);
  }
  t.print();

  std::printf(
      "\nShape check: same ordering as Table 3.  Video stresses the detector —"
      " decode work\nvaries by ~3x frame to frame (GOP structure) and the"
      " WLAN rate wanders 9-32 fr/s —\nso the change-point delay lands near"
      " the 0.1 s target (the paper reports 0.11 s),\nwhile Exp. Ave."
      " remains unstable.  The display dominates whole-badge energy for\n"
      "video; the CPU+mem rows show the DVS factor itself.\n");
  return 0;
}
