// Table 5: DPM and DVS combined.  A long usage session of audio and video
// clips separated by heavy-tailed idle periods, run under four management
// configurations: None, DVS only, DPM only, and Both.  The paper reports a
// factor-of-three saving for the combination.
//
// The four configurations fall out of the "table5" scenario grid: detector
// axis {Max, ChangePoint} x DPM axis {none, tismdp} enumerates the cells in
// exactly that order.
#include "bench_common.hpp"

using namespace dvs;

int main() {
  const core::ScenarioSpec& spec = *core::find_scenario("table5");
  bench::print_header(spec.title, spec.paper_ref);

  // Print the session shape the sweep will generate (same trace seed scheme
  // as the runner: one session per replicate row).
  {
    core::SessionConfig scfg = spec.workloads[0].session;
    scfg.seed = spec.expand()[0].trace_seed;
    const core::Session session = core::build_session(scfg, bench::cpu());
    std::printf(
        "session: %.0f s total, %.0f s media, %.0f s idle (%.0f%% idle),"
        " %zu items\n",
        session.duration.value(), session.media_time.value(),
        session.idle_time.value(),
        100.0 * session.idle_time.value() / session.duration.value(),
        session.items.size());
  }

  const core::SweepResult res = bench::run_scenario(spec);

  static const char* kNames[] = {"None", "DVS", "DPM", "Both"};
  TextTable t;
  t.set_header({"Algorithm", "Energy (kJ)", "Avg power (mW)", "Factor",
                "Sleeps", "Wakeup delay (s)"});
  const double none_energy = res.cells[0].energy_kj.mean;
  for (std::size_t i = 0; i < res.cells.size(); ++i) {
    const core::CellResult& c = res.cells[i];
    t.add_row({kNames[i], TextTable::num(c.energy_kj.mean, 2),
               TextTable::num(c.power_mw.mean, 0),
               TextTable::num(none_energy / c.energy_kj.mean, 2),
               TextTable::num(c.sleeps.mean, 0),
               TextTable::num(c.wakeup_delay_s.mean, 2)});
  }
  t.print();

  CsvWriter csv{bench::csv_path("table5_cells")};
  res.write_cells_csv(csv);

  std::printf("\nShape check: DVS and DPM each save on their own (active"
              " phases and idle phases\nrespectively), and the combination"
              " lands at the paper's factor of ~3 because the\ntwo"
              " mechanisms are complementary — exactly the paper's"
              " conclusion.  Relative to\nthe paper our DVS-only row saves"
              " less and the DPM-only row more: the"
              " reconstructed\nbadge carries a larger always-on radio/display"
              " share (diluting DVS) and a deeper\nstandby state (boosting"
              " DPM); see EXPERIMENTS.md.\n");
  return 0;
}
