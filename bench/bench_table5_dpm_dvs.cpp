// Table 5: DPM and DVS combined.  A long usage session of audio and video
// clips separated by heavy-tailed idle periods, run under four management
// configurations: None, DVS only, DPM only, and Both.  The paper reports a
// factor-of-three saving for the combination.
#include "bench_common.hpp"
#include "common/table.hpp"
#include "dpm/policy.hpp"

using namespace dvs;

int main() {
  bench::print_header("Table 5: DPM and DVS",
                      "Simunic et al., DAC'01, Table 5 (combined savings"
                      " ~3x)");

  // An idle-heavy day-in-the-life session: full audio clips and short video
  // segments separated by Pareto idle gaps (mean ~3 min) — portable devices
  // spend most of their life waiting for the user.
  core::SessionConfig scfg;
  scfg.cycles = 8;
  scfg.mpeg_segment = seconds(45.0);
  scfg.idle = std::make_shared<dpm::ParetoIdle>(1.8, seconds(70.0));
  scfg.seed = 505;
  const core::Session session = core::build_session(scfg, bench::cpu());
  std::printf("session: %.0f s total, %.0f s media, %.0f s idle (%.0f%% idle),"
              " %zu items\n\n",
              session.duration.value(), session.media_time.value(),
              session.idle_time.value(),
              100.0 * session.idle_time.value() / session.duration.value(),
              session.items.size());

  hw::SmartBadge badge;
  const dpm::DpmCostModel costs = dpm::smartbadge_cost_model(badge);
  auto tismdp = std::make_shared<dpm::TismdpPolicy>(costs, session.idle_model,
                                                    seconds(0.5));

  struct Row {
    const char* name;
    core::DetectorKind detector;
    dpm::DpmPolicyPtr policy;
  };
  const std::vector<Row> rows = {
      {"None", core::DetectorKind::Max, nullptr},
      {"DVS", core::DetectorKind::ChangePoint, nullptr},
      {"DPM", core::DetectorKind::Max, tismdp},
      {"Both", core::DetectorKind::ChangePoint, tismdp},
  };

  TextTable t;
  t.set_header({"Algorithm", "Energy (kJ)", "Avg power (mW)", "Factor",
                "Sleeps", "Wakeup delay (s)"});
  double none_energy = 0.0;
  for (const Row& row : rows) {
    core::RunOptions opts;
    opts.detector = row.detector;
    opts.detector_cfg = &bench::detectors();
    opts.dpm_policy = row.policy;
    const core::Metrics m = core::run_items(session.items, opts);
    if (none_energy == 0.0) none_energy = m.total_energy.value();
    t.add_row({row.name, TextTable::num(m.energy_kj(), 2),
               TextTable::num(m.average_power.value(), 0),
               TextTable::num(none_energy / m.total_energy.value(), 2),
               std::to_string(m.dpm_sleeps),
               TextTable::num(m.dpm_total_wakeup_delay.value(), 2)});
  }
  t.print();

  std::printf("\nShape check: DVS and DPM each save on their own (active"
              " phases and idle phases\nrespectively), and the combination"
              " lands at the paper's factor of ~3 because the\ntwo"
              " mechanisms are complementary — exactly the paper's"
              " conclusion.  Relative to\nthe paper our DVS-only row saves"
              " less and the DPM-only row more: the"
              " reconstructed\nbadge carries a larger always-on radio/display"
              " share (diluting DVS) and a deeper\nstandby state (boosting"
              " DPM); see EXPERIMENTS.md.\n");
  return 0;
}
