// badge_lifetime: turns the Table 5 energy factors into what a user feels —
// hours of battery life for a day-long usage pattern under the four power
// management configurations, through the DC-DC converter and battery
// models.  The four configurations are the same detector x DPM grid the
// "table5" scenario uses, here on a lighter session.
//
//   ./build/examples/badge_lifetime
#include <cstdio>

#include "dvs.hpp"

using namespace dvs;

int main() {
  // A repeating usage hour: a couple of audio clips and a short video,
  // separated by heavy-tailed idle gaps.
  core::SessionConfig scfg;
  scfg.cycles = 4;
  scfg.mpeg_segment = seconds(60.0);
  scfg.idle = std::make_shared<dpm::ParetoIdle>(1.8, seconds(90.0));

  core::ScenarioSpec spec;
  spec.name = "badge-lifetime";
  spec.workloads = {core::WorkloadSpec::usage_session(scfg)};
  spec.detectors = {core::DetectorKind::Max, core::DetectorKind::ChangePoint};
  core::DpmSpec tismdp;
  tismdp.kind = core::DpmKind::Tismdp;
  tismdp.max_delay = seconds(0.5);
  spec.dpm = {core::DpmSpec{}, tismdp};  // cells: None, DVS, DPM, Both
  spec.base_seed = 7;

  const core::SweepResult res = core::SweepRunner{}.run(spec);
  std::printf("usage pattern: %.1f min per cycle block; combined management"
              " cuts average\npower by %.0f%%\n\n",
              res.points[0].metrics.duration.value() / 60.0,
              100.0 * (1.0 - res.cells[3].power_mw.mean /
                                 res.cells[0].power_mw.mean));

  // A compact Li-Ion cell: ~2 Wh usable at the badge's typical draw.
  const hw::Battery battery{kilojoules(7.2), watts(2.0), 1.1};
  const hw::DcDcConverter converter;

  static const char* kNames[] = {"None", "DVS", "DPM", "Both"};
  std::printf("%-6s %14s %16s %14s\n", "config", "avg power mW",
              "battery-side mW", "lifetime h");
  for (std::size_t i = 0; i < res.cells.size(); ++i) {
    const MilliWatts badge_side{res.cells[i].power_mw.mean};
    const MilliWatts battery_side = converter.input_power(badge_side);
    const Seconds life = battery.lifetime(battery_side);
    std::printf("%-6s %14.0f %16.0f %14.1f\n", kNames[i], badge_side.value(),
                battery_side.value(), life.value() / 3600.0);
  }
  std::printf("\nThe combined DVS+DPM manager turns the same battery into"
              " roughly 3x the usage\ntime — the paper's headline result,"
              " expressed in hours.\n");
  return 0;
}
