// badge_lifetime: turns the Table 5 energy factors into what a user feels —
// hours of battery life for a day-long usage pattern under the four power
// management configurations, through the DC-DC converter and battery
// models.
//
//   ./build/examples/badge_lifetime
#include <cstdio>

#include "core/experiment.hpp"
#include "dpm/policy.hpp"
#include "hw/battery.hpp"
#include "hw/dcdc.hpp"

using namespace dvs;

int main() {
  const hw::Sa1100 cpu;

  // A repeating usage hour: a couple of audio clips and a short video,
  // separated by heavy-tailed idle gaps.
  core::SessionConfig scfg;
  scfg.cycles = 4;
  scfg.mpeg_segment = seconds(60.0);
  scfg.idle = std::make_shared<dpm::ParetoIdle>(1.8, seconds(90.0));
  scfg.seed = 7;
  const core::Session session = core::build_session(scfg, cpu);
  std::printf("usage pattern: %.0f min per cycle block, %.0f%% idle\n\n",
              session.duration.value() / 60.0,
              100.0 * session.idle_time.value() / session.duration.value());

  hw::SmartBadge badge;
  const dpm::DpmCostModel costs = dpm::smartbadge_cost_model(badge);
  auto tismdp = std::make_shared<dpm::TismdpPolicy>(costs, session.idle_model,
                                                    seconds(0.5));

  // A compact Li-Ion cell: ~2 Wh usable at the badge's typical draw.
  const hw::Battery battery{kilojoules(7.2), watts(2.0), 1.1};
  const hw::DcDcConverter converter;

  core::DetectorFactoryConfig shared;
  std::printf("%-6s %14s %16s %14s\n", "config", "avg power mW",
              "battery-side mW", "lifetime h");
  struct Row {
    const char* name;
    core::DetectorKind kind;
    dpm::DpmPolicyPtr policy;
  };
  for (const Row& row : {Row{"None", core::DetectorKind::Max, nullptr},
                         Row{"DVS", core::DetectorKind::ChangePoint, nullptr},
                         Row{"DPM", core::DetectorKind::Max, tismdp},
                         Row{"Both", core::DetectorKind::ChangePoint, tismdp}}) {
    core::RunOptions opts;
    opts.detector = row.kind;
    opts.detector_cfg = &shared;
    opts.dpm_policy = row.policy;
    const core::Metrics m = core::run_items(session.items, opts);
    const MilliWatts battery_side = converter.input_power(m.average_power);
    const Seconds life = battery.lifetime(battery_side);
    std::printf("%-6s %14.0f %16.0f %14.1f\n", row.name,
                m.average_power.value(), battery_side.value(),
                life.value() / 3600.0);
  }
  std::printf("\nThe combined DVS+DPM manager turns the same battery into"
              " roughly 3x the usage\ntime — the paper's headline result,"
              " expressed in hours.\n");
  return 0;
}
