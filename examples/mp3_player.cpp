// mp3_player: plays the full six-clip Table 2 corpus in sequence and shows
// how each detector tracks the clip-to-clip rate changes — a narrated
// version of the Table 3 experiment, declared as a one-row ScenarioSpec.
//
//   ./build/examples/mp3_player [sequence]     (default ACEFBD)
#include <cstdio>
#include <string>

#include "dvs.hpp"

using namespace dvs;

int main(int argc, char** argv) {
  const std::string sequence = argc > 1 ? argv[1] : "ACEFBD";

  std::printf("playing MP3 sequence %s (Table 2 clips)\n\n", sequence.c_str());
  std::printf("%-5s %12s %14s %14s %10s\n", "clip", "bitrate", "arrivals",
              "decode@max", "duration");
  Seconds total{0.0};
  for (char label : sequence) {
    const workload::Mp3Clip& clip = workload::mp3_clip(label);
    std::printf("%-5c %8.0f kb/s %9.1f fr/s %9.1f fr/s %8.0f s\n", clip.label,
                clip.bit_rate_kbps, clip.arrival_rate().value(),
                clip.decode_rate_at_max.value(), clip.duration.value());
    total += clip.duration;
  }
  std::printf("total %.0f s\n\n", total.value());

  // Every detector runs the identical generated trace — the scenario's
  // trace-seed scheme, which is also how Table 3 compares algorithms.
  core::ScenarioSpec spec;
  spec.name = "mp3-player";
  spec.workloads = {core::WorkloadSpec::mp3(sequence)};
  spec.detectors = {core::DetectorKind::Ideal, core::DetectorKind::ChangePoint,
                    core::DetectorKind::ExpAverage,
                    core::DetectorKind::SlidingWindow, core::DetectorKind::Max};
  spec.delay_targets = {seconds(0.15)};
  spec.base_seed = 99;
  const core::SweepResult res = core::SweepRunner{}.run(spec);

  std::printf("%-14s %10s %12s %12s %10s %10s\n", "detector", "energy J",
              "cpu+mem J", "delay s", "mean MHz", "switches");
  for (const core::CellResult& c : res.cells) {
    std::printf("%-14s %10.1f %12.1f %12.3f %10.1f %10.0f\n",
                core::to_string(c.point.detector).c_str(),
                c.energy_kj.mean * 1e3, c.cpu_mem_kj.mean * 1e3, c.delay_s.mean,
                c.freq_mhz.mean, c.switches.mean);
  }
  std::printf("\nThe change-point governor matches the oracle's energy within a"
              " few percent while\nkeeping the frame delay near the 0.15 s"
              " target; the moving averages churn the\nfrequency setting"
              " instead.\n");
  return 0;
}
