// mp3_player: plays the full six-clip Table 2 corpus in sequence and shows
// how each detector tracks the clip-to-clip rate changes — a narrated
// version of the Table 3 experiment.
//
//   ./build/examples/mp3_player [sequence]     (default ACEFBD)
#include <cstdio>
#include <string>

#include "core/experiment.hpp"
#include "workload/clips.hpp"
#include "workload/trace.hpp"

using namespace dvs;

int main(int argc, char** argv) {
  const std::string sequence = argc > 1 ? argv[1] : "ACEFBD";

  const hw::Sa1100 cpu;
  const workload::DecoderModel decoder =
      workload::reference_mp3_decoder(cpu.max_frequency());

  std::printf("playing MP3 sequence %s (Table 2 clips)\n\n", sequence.c_str());
  std::printf("%-5s %12s %14s %14s %10s\n", "clip", "bitrate", "arrivals",
              "decode@max", "duration");
  Seconds total{0.0};
  for (char label : sequence) {
    const workload::Mp3Clip& clip = workload::mp3_clip(label);
    std::printf("%-5c %8.0f kb/s %9.1f fr/s %9.1f fr/s %8.0f s\n", clip.label,
                clip.bit_rate_kbps, clip.arrival_rate().value(),
                clip.decode_rate_at_max.value(), clip.duration.value());
    total += clip.duration;
  }
  std::printf("total %.0f s\n\n", total.value());

  Rng rng{99};
  const workload::FrameTrace trace =
      workload::build_mp3_trace(workload::mp3_sequence(sequence), decoder, rng);

  core::DetectorFactoryConfig shared;
  std::printf("%-14s %10s %12s %12s %10s %10s\n", "detector", "energy J",
              "cpu+mem J", "delay s", "mean MHz", "switches");
  for (core::DetectorKind kind :
       {core::DetectorKind::Ideal, core::DetectorKind::ChangePoint,
        core::DetectorKind::ExpAverage, core::DetectorKind::SlidingWindow,
        core::DetectorKind::Max}) {
    core::RunOptions opts;
    opts.detector = kind;
    opts.target_delay = seconds(0.15);
    opts.detector_cfg = &shared;
    const core::Metrics m = core::run_single_trace(trace, decoder, opts);
    std::printf("%-14s %10.1f %12.1f %12.3f %10.1f %10d\n",
                core::to_string(kind).c_str(), m.total_energy.value(),
                m.cpu_memory_energy().value(), m.mean_frame_delay.value(),
                m.mean_cpu_frequency.value(), m.cpu_switches);
  }
  std::printf("\nThe change-point governor matches the oracle's energy within a"
              " few percent while\nkeeping the frame delay near the 0.15 s"
              " target; the moving averages churn the\nfrequency setting"
              " instead.\n");
  return 0;
}
