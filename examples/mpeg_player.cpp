// mpeg_player: decodes the Football clip under the change-point governor
// and prints a timeline of what the power manager is doing — the detected
// WLAN/decode rates and the frequency/voltage it selects as the network
// rate wanders between 9 and 32 fr/s.
//
//   ./build/examples/mpeg_player [--clip football|terminator2] [--seconds N]
#include <cstdio>
#include <cstring>
#include <string>

#include "dvs.hpp"

using namespace dvs;

int main(int argc, char** argv) {
  workload::MpegClip clip = workload::football_clip();
  double limit_s = 300.0;
  for (int i = 1; i < argc - 1; ++i) {
    if (std::strcmp(argv[i], "--clip") == 0 &&
        std::strcmp(argv[i + 1], "terminator2") == 0) {
      clip = workload::terminator2_clip();
    }
    if (std::strcmp(argv[i], "--seconds") == 0) {
      limit_s = std::stod(argv[i + 1]);
    }
  }
  clip.duration = seconds(std::min(limit_s, clip.duration.value()));

  const hw::Sa1100 cpu;
  const workload::DecoderModel decoder =
      workload::reference_mpeg_decoder(cpu.max_frequency());
  Rng rng{2001};
  const workload::FrameTrace trace = workload::build_mpeg_trace(clip, decoder, rng);

  std::printf("%s: %.0f s of MPEG video, %zu frames, decode %.0f fr/s at the"
              " top step\n\n",
              clip.name.c_str(), clip.duration.value(), trace.size(),
              clip.decode_rate_at_max.value());

  // Run the engine manually so we can sample the governor state over time.
  core::EngineConfig cfg;
  cfg.detector = core::DetectorKind::ChangePoint;
  cfg.target_delay = seconds(0.1);
  std::vector<core::PlaybackItem> items;
  items.push_back({trace, decoder,
                   core::default_nominal_arrival(trace.type()),
                   core::default_nominal_service(trace.type()),
                   trace.duration()});
  core::Engine engine{cfg, std::move(items)};
  const core::Metrics m = engine.run();

  // Timeline of the ground truth the governor had to follow.
  std::printf("ground-truth WLAN rate epochs (first 8):\n");
  int shown = 0;
  for (const auto& seg : trace.truth()) {
    if (shown++ >= 8) break;
    std::printf("  t=%5.0f s  arrivals %5.1f fr/s\n", seg.time.value(),
                seg.arrival_rate.value());
  }

  std::printf("\nresult with the change-point governor (0.1 s delay target):\n");
  std::printf("  energy           %8.1f J (whole badge), %0.1f J CPU+memory\n",
              m.total_energy.value(), m.cpu_memory_energy().value());
  std::printf("  mean frame delay %8.3f s   max %.3f s\n",
              m.mean_frame_delay.value(), m.max_frame_delay.value());
  std::printf("  mean frequency   %8.1f MHz  (%d switches)\n",
              m.mean_cpu_frequency.value(), m.cpu_switches);
  std::printf("  frames           %llu arrived, %llu decoded\n",
              static_cast<unsigned long long>(m.frames_arrived),
              static_cast<unsigned long long>(m.frames_decoded));

  core::RunOptions max_opts;
  max_opts.detector = core::DetectorKind::Max;
  max_opts.target_delay = seconds(0.1);
  const core::Metrics mx = core::run_single_trace(trace, decoder, max_opts);
  std::printf("\nvs. pinned maximum frequency: %.1f J (%.1f J CPU+memory) —"
              " the governor saves\n%.0f%% of the processing-subsystem energy"
              " while the video stays real-time.\n",
              mx.total_energy.value(), mx.cpu_memory_energy().value(),
              100.0 * (1.0 - m.cpu_memory_energy().value() /
                                 mx.cpu_memory_energy().value()));
  return 0;
}
