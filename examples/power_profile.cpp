// power_profile: samples the whole-badge power over a mixed usage session
// and renders an ASCII profile, side by side for "no management" and the
// combined DVS+DPM manager — the Table 5 story as a picture.
//
//   ./build/examples/power_profile
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "dvs.hpp"

using namespace dvs;

namespace {

/// Renders samples as rows of a fixed-height column chart (time flows down).
void render(const std::vector<std::pair<double, double>>& samples,
            const std::vector<std::pair<double, double>>& reference,
            double full_scale_mw, int bucket_s) {
  const std::string header =
      "power (0.." + std::to_string(static_cast<int>(full_scale_mw)) + " mW)";
  std::printf("%8s  %-40s %10s %10s\n", "time", header.c_str(), "none", "both");
  std::size_t i = 0;
  std::size_t j = 0;
  for (int t = 0; i < samples.size() || j < reference.size(); t += bucket_s) {
    // Average each series over the bucket.
    double sum_b = 0.0;
    int n_b = 0;
    while (i < samples.size() && samples[i].first < t + bucket_s) {
      sum_b += samples[i].second;
      ++n_b;
      ++i;
    }
    double sum_r = 0.0;
    int n_r = 0;
    while (j < reference.size() && reference[j].first < t + bucket_s) {
      sum_r += reference[j].second;
      ++n_r;
      ++j;
    }
    if (n_b == 0 && n_r == 0) continue;
    const double both = n_b ? sum_b / n_b : 0.0;
    const double none = n_r ? sum_r / n_r : 0.0;
    const int bar_none = static_cast<int>(40.0 * std::min(none / full_scale_mw, 1.0));
    const int bar_both = static_cast<int>(40.0 * std::min(both / full_scale_mw, 1.0));
    std::string bar(40, ' ');
    for (int k = 0; k < bar_none; ++k) bar[static_cast<std::size_t>(k)] = '.';
    for (int k = 0; k < bar_both; ++k) bar[static_cast<std::size_t>(k)] = '#';
    std::printf("%6d s  %-40s %8.0f %8.0f\n", t, bar.c_str(), none, both);
  }
}

}  // namespace

int main() {
  const hw::Sa1100 cpu;
  core::SessionConfig scfg;
  scfg.cycles = 2;
  scfg.mpeg_segment = seconds(45.0);
  scfg.idle = std::make_shared<dpm::ParetoIdle>(1.8, seconds(40.0));
  scfg.seed = 33;
  const core::Session session = core::build_session(scfg, cpu);

  hw::SmartBadge badge;
  const dpm::DpmCostModel costs = dpm::smartbadge_cost_model(badge);

  core::DetectorFactoryConfig shared;
  shared.prepare();  // characterize the threshold table once for both runs
  auto run = [&](core::DetectorKind kind, dpm::DpmPolicyPtr policy) {
    core::RunOptions opts;
    opts.detector = kind;
    opts.detector_cfg = &shared;
    opts.dpm_policy = std::move(policy);
    opts.power_sample_period = seconds(2.0);
    return core::run_items(session.items, opts);
  };

  const core::Metrics none = run(core::DetectorKind::Max, nullptr);
  const core::Metrics both =
      run(core::DetectorKind::ChangePoint,
          std::make_shared<dpm::TismdpPolicy>(costs, session.idle_model,
                                              seconds(0.5)));

  std::printf("session: %.0f s (%.0f media / %.0f idle)\n", session.duration.value(),
              session.media_time.value(), session.idle_time.value());
  std::printf("'.' = no management, '#' = DVS+DPM (overlaid)\n\n");
  render(both.power_trace, none.power_trace, 2500.0, 20);

  std::printf("\naverage power: none %.0f mW, both %.0f mW (%.1fx)\n",
              none.average_power.value(), both.average_power.value(),
              none.average_power.value() / both.average_power.value());
  std::printf("The '#' bars collapse toward zero during idle stretches (DPM"
              " sleeping) and sit\nbelow the '.' bars during playback (DVS"
              " at reduced f/V) — the two halves of the\npaper's combined"
              " saving.\n");
  return 0;
}
