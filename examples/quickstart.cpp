// Quickstart: decode one MP3 clip on the SmartBadge under the change-point
// DVS governor and print the energy/delay outcome against the
// maximum-performance baseline.
//
// The comparison is declared as a two-cell ScenarioSpec and executed by the
// SweepRunner — the same substrate the benches, the CLI, and the tests use.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "dvs.hpp"

using namespace dvs;

int main() {
  // The workload: clip E of Table 2 (128 kb/s, 44.1 kHz MP3), generated as
  // a Poisson frame-arrival trace with ground truth attached.  Both cells
  // share the same generated trace (scenario seed scheme).
  core::ScenarioSpec spec;
  spec.name = "quickstart";
  spec.workloads = {core::WorkloadSpec::mp3("E")};
  spec.detectors = {core::DetectorKind::ChangePoint, core::DetectorKind::Max};
  spec.delay_targets = {seconds(0.1)};
  spec.base_seed = 2024;

  std::printf("clip E: %.0f s of MP3 at %.1f fr/s arrivals\n\n",
              workload::mp3_clip('E').duration.value(),
              workload::mp3_clip('E').arrival_rate().value());

  // Run the same trace under the paper's change-point governor and under
  // the fixed maximum-frequency baseline.
  const core::SweepResult res = core::SweepRunner{}.run(spec);
  for (const core::CellResult& c : res.cells) {
    std::printf("%-13s energy %7.1f J   mean delay %6.3f s   mean f %5.1f MHz"
                "   switches %.0f\n",
                core::to_string(c.point.detector).c_str(),
                c.energy_kj.mean * 1e3, c.delay_s.mean, c.freq_mhz.mean,
                c.switches.mean);
  }
  std::printf("\nLower energy at (approximately) the 0.1 s delay target is the"
              " whole game:\nthe governor tracks the clip's rates and runs the"
              " CPU only as fast as needed.\n");
  return 0;
}
