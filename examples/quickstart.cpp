// Quickstart: decode one MP3 clip on the SmartBadge under the change-point
// DVS governor and print the energy/delay outcome against the
// maximum-performance baseline.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "core/experiment.hpp"
#include "workload/clips.hpp"
#include "workload/trace.hpp"

using namespace dvs;

int main() {
  // The hardware: a SmartBadge's SA-1100 clock/voltage table.
  const hw::Sa1100 cpu;

  // The workload: clip E of Table 2 (128 kb/s, 44.1 kHz MP3), generated as
  // a Poisson frame-arrival trace with ground truth attached.
  const workload::DecoderModel decoder =
      workload::reference_mp3_decoder(cpu.max_frequency());
  Rng rng{2024};
  const std::vector<workload::Mp3Clip> clips = workload::mp3_sequence("E");
  const workload::FrameTrace trace = workload::build_mp3_trace(clips, decoder, rng);

  std::printf("clip E: %zu frames over %.0f s (arrivals %.1f fr/s)\n\n",
              trace.size(), trace.duration().value(),
              workload::mp3_clip('E').arrival_rate().value());

  // Run the same trace under the paper's change-point governor and under
  // the fixed maximum-frequency baseline.
  core::DetectorFactoryConfig shared;  // shares the threshold table
  for (core::DetectorKind kind :
       {core::DetectorKind::ChangePoint, core::DetectorKind::Max}) {
    core::RunOptions opts;
    opts.detector = kind;
    opts.target_delay = seconds(0.1);
    opts.detector_cfg = &shared;
    const core::Metrics m = core::run_single_trace(trace, decoder, opts);
    std::printf("%-13s energy %7.1f J   mean delay %6.3f s   mean f %5.1f MHz   switches %d\n",
                core::to_string(kind).c_str(), m.total_energy.value(),
                m.mean_frame_delay.value(), m.mean_cpu_frequency.value(),
                m.cpu_switches);
  }
  std::printf("\nLower energy at (approximately) the 0.1 s delay target is the"
              " whole game:\nthe governor tracks the clip's rates and runs the"
              " CPU only as fast as needed.\n");
  return 0;
}
