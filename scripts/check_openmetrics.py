#!/usr/bin/env python3
"""Lint an OpenMetrics text exposition (the --metrics-openmetrics output).

Checks the subset of the OpenMetrics 1.0 text format the dvs_sim exporter
emits, strictly enough that a real scraper would ingest it:

  * the exposition ends with exactly one `# EOF` line, nothing after it;
  * every metric family is declared with `# TYPE <name> <counter|gauge|
    summary>` before any of its samples, and declared at most once;
  * metric names match [a-zA-Z_][a-zA-Z0-9_]*;
  * counter samples use the `<family>_total` suffix and are non-negative;
  * summary samples are `<family>{quantile="q"}` with q in [0, 1] plus
    `_count` / `_sum`, quantile values non-decreasing in q;
  * every sample value parses as a number, and every sample belongs to a
    declared family;
  * with --require-prefix, every family name carries the given prefix.

Usage: check_openmetrics.py [--require-prefix dvs_] FILE|-
Exit status: 0 clean, 1 with findings on stderr, 2 usage.
"""

import re
import sys

NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>\S+)(?: (?P<extra>.*))?$")
LABEL_RE = re.compile(r'^(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<val>[^"]*)"$')
VALID_TYPES = ("counter", "gauge", "summary")

# Suffixes a sample may add to its family name, per type.
COUNTER_SUFFIXES = ("_total", "_created")
SUMMARY_SUFFIXES = ("", "_count", "_sum")


def parse_number(token):
    try:
        return float(token)
    except ValueError:
        return None


def lint(lines, require_prefix=""):
    errors = []
    families = {}  # name -> type
    saw_samples = set()
    quantiles = {}  # family -> list of (q, value) in emission order
    eof_at = None

    def err(lineno, msg):
        errors.append(f"line {lineno}: {msg}")

    for i, raw in enumerate(lines, start=1):
        line = raw.rstrip("\n")
        if eof_at is not None:
            err(i, f"content after # EOF (which was on line {eof_at})")
            break
        if line == "# EOF":
            eof_at = i
            continue
        if not line:
            err(i, "blank line (OpenMetrics forbids them)")
            continue
        if line.startswith("#"):
            parts = line.split(" ")
            if len(parts) >= 2 and parts[1] in ("HELP", "UNIT"):
                continue  # legal metadata we don't emit; not an error
            if len(parts) != 4 or parts[1] != "TYPE":
                err(i, f"unparseable comment line: {line!r}")
                continue
            _, _, name, mtype = parts
            if not NAME_RE.match(name):
                err(i, f"bad metric family name {name!r}")
            if mtype not in VALID_TYPES:
                err(i, f"bad metric type {mtype!r} for {name}")
            if name in families:
                err(i, f"duplicate TYPE declaration for {name}")
            if name in saw_samples:
                err(i, f"TYPE for {name} appears after its samples")
            if require_prefix and not name.startswith(require_prefix):
                err(i, f"family {name} missing required prefix "
                       f"{require_prefix!r}")
            families[name] = mtype
            continue

        m = SAMPLE_RE.match(line)
        if not m:
            err(i, f"unparseable sample line: {line!r}")
            continue
        sample = m.group("name")
        value = parse_number(m.group("value"))
        if value is None:
            err(i, f"sample value {m.group('value')!r} is not a number")
            continue
        labels = {}
        if m.group("labels") is not None:
            for item in filter(None, m.group("labels").split(",")):
                lm = LABEL_RE.match(item)
                if not lm:
                    err(i, f"bad label {item!r}")
                    continue
                labels[lm.group("key")] = lm.group("val")

        # Resolve the sample to its declared family.
        family, mtype = None, None
        for suffix in ("", "_total", "_created", "_count", "_sum"):
            if suffix and not sample.endswith(suffix):
                continue
            base = sample[: len(sample) - len(suffix)] if suffix else sample
            if base in families:
                family, mtype = base, families[base]
                break
        if family is None:
            err(i, f"sample {sample} has no preceding TYPE declaration")
            continue
        saw_samples.add(family)
        suffix = sample[len(family):]

        if mtype == "counter":
            if suffix not in COUNTER_SUFFIXES:
                err(i, f"counter {family} sample must use _total, "
                       f"got {sample}")
            if value < 0:
                err(i, f"counter {sample} is negative: {value}")
        elif mtype == "gauge":
            if suffix:
                err(i, f"gauge {family} sample has unexpected suffix "
                       f"{suffix!r}")
        elif mtype == "summary":
            if suffix not in SUMMARY_SUFFIXES:
                err(i, f"summary {family} sample has unexpected suffix "
                       f"{suffix!r}")
            if suffix == "":
                q = parse_number(labels.get("quantile", ""))
                if q is None or not 0.0 <= q <= 1.0:
                    err(i, f"summary {family} quantile label must be a "
                           f"number in [0, 1]: {labels.get('quantile')!r}")
                else:
                    quantiles.setdefault(family, []).append((q, value))
            elif suffix == "_count" and (value < 0 or value != int(value)):
                err(i, f"summary {family}_count must be a non-negative "
                       f"integer: {value}")

    if eof_at is None:
        errors.append("missing terminating # EOF line")
    for family, qs in quantiles.items():
        ordered = sorted(qs)
        values = [v for _, v in ordered]
        if values != sorted(values):
            errors.append(f"summary {family} quantile values are not "
                          f"monotone in q: {ordered}")
    return errors


def main(argv):
    args = argv[1:]
    require_prefix = ""
    if args and args[0] == "--require-prefix":
        if len(args) < 2:
            print("--require-prefix needs a value", file=sys.stderr)
            return 2
        require_prefix = args[1]
        args = args[2:]
    if len(args) != 1:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    if args[0] == "-":
        lines = sys.stdin.readlines()
    else:
        with open(args[0]) as f:
            lines = f.readlines()
    errors = lint(lines, require_prefix)
    for e in errors:
        print(f"check_openmetrics: {e}", file=sys.stderr)
    if errors:
        print(f"check_openmetrics: {len(errors)} problem(s)", file=sys.stderr)
        return 1
    n = sum(1 for l in lines if l.strip() and not l.startswith("#"))
    print(f"check_openmetrics: OK ({n} samples)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
