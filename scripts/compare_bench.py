#!/usr/bin/env python3
"""Compare two BENCH_perf.json files (see bench/bench_perf.cpp, docs/PERF.md).

    python3 scripts/compare_bench.py BASELINE.json CURRENT.json \
        [--tolerance 0.25] [--strict]

Prints a per-metric table with the relative change and flags regressions
beyond the tolerance (default 25%, generous because CI runners jitter).
Exit code is 0 unless --strict is given, in which case any flagged
regression exits 1.  Metrics present in only one file are reported with a
warning but never flagged -- a new bench row (e.g. engine.fleet_frames_per_s)
must not break contributors whose committed baseline predates it, and an
old baseline row must not break a build that no longer emits it.  The one
exception is budget breaches: a result carrying a "budget" field (an
absolute ceiling in the metric's own unit, e.g. the 5% engine overhead
budget for the span profiler) is checked against the CURRENT value
regardless of the baseline, and a breach is flagged even for metrics the
baseline lacks.

Every input problem (missing file, malformed JSON, results without a
name/value) degrades to a warning, never a traceback: the script's job is
to inform, and a perf-compare step must not crash CI or a contributor's
shell over a stale artifact.
"""

import argparse
import json
import sys


def warn(msg):
    print(f"compare_bench: warning: {msg}", file=sys.stderr)


def load(path):
    """Returns {name: result} or None (with a warning) when unusable."""
    try:
        with open(path) as f:
            doc = json.load(f)
    except OSError as e:
        warn(f"cannot read {path}: {e}")
        return None
    except json.JSONDecodeError as e:
        warn(f"{path} is not valid JSON: {e}")
        return None
    if not isinstance(doc, dict) or doc.get("schema") != "dvs-bench-perf-v1":
        warn(f"{path}: unexpected schema "
             f"{doc.get('schema') if isinstance(doc, dict) else type(doc)!r}")
        return None
    results = doc.get("results")
    if not isinstance(results, list):
        warn(f"{path}: no results array")
        return None
    out = {}
    for r in results:
        if not isinstance(r, dict) or "name" not in r or \
                not isinstance(r.get("value"), (int, float)):
            warn(f"{path}: skipping malformed result entry {r!r}")
            continue
        out[r["name"]] = r
    return out


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--tolerance", type=float, default=0.25,
                    help="relative regression allowed before flagging "
                         "(default 0.25 = 25%%)")
    ap.add_argument("--strict", action="store_true",
                    help="exit 1 when any regression exceeds the tolerance")
    args = ap.parse_args()

    base = load(args.baseline)
    cur = load(args.current)
    if cur is None:
        # Nothing to check: no current numbers at all.
        warn("no usable current results; nothing compared")
        sys.exit(1 if args.strict else 0)
    if base is None:
        # Budget checks still apply -- they are absolute, not relative.
        warn("no usable baseline; running budget checks only")
        base = {}

    regressions = []
    breaches = []
    only_in_one = 0
    print(f"{'metric':<42} {'baseline':>12} {'current':>12} {'change':>9}")
    print("-" * 79)
    for name in sorted(set(base) | set(cur)):
        b = base.get(name)
        c = cur.get(name)
        # Budget check: an absolute ceiling on the current value, applied
        # whether or not the baseline knows the metric.
        if c is not None and c.get("budget", 0) > 0 and c["value"] > c["budget"]:
            breaches.append((name, c["value"], c["budget"]))
        if b is None or c is None:
            side = "baseline" if c is None else "current"
            val = (b or c)["value"]
            only_in_one += 1
            print(f"{name:<42} {'(only in ' + side + ')':>26} {val:>12.4g}")
            continue
        bv, cv = b["value"], c["value"]
        if bv == 0:
            print(f"{name:<42} {bv:>12.4g} {cv:>12.4g} {'n/a':>9}")
            continue
        # Normalize so positive = improvement.
        rel = (cv - bv) / bv if c.get("higher_is_better", True) else (bv - cv) / bv
        flag = ""
        if rel < -args.tolerance:
            flag = "  << REGRESSION"
            regressions.append((name, rel))
        print(f"{name:<42} {bv:>12.4g} {cv:>12.4g} {rel:>+8.1%}{flag}")

    if only_in_one:
        warn(f"{only_in_one} metric(s) present in only one file "
             "(regenerate the baseline to compare them; never flagged)")

    failed = False
    if regressions:
        print(f"\n{len(regressions)} metric(s) regressed beyond "
              f"{args.tolerance:.0%}:")
        for name, rel in regressions:
            print(f"  {name}: {rel:+.1%}")
        failed = True
    if breaches:
        print(f"\n{len(breaches)} metric(s) over their absolute budget:")
        for name, val, budget in breaches:
            print(f"  {name}: {val:.4g} > budget {budget:.4g}")
        failed = True
    if failed:
        if args.strict:
            sys.exit(1)
        print("(warn-only: exiting 0; use --strict to fail)")
    else:
        print("\nno regressions beyond tolerance")


if __name__ == "__main__":
    main()
