#!/usr/bin/env python3
"""Compare two BENCH_perf.json files (see bench/bench_perf.cpp, docs/PERF.md).

    python3 scripts/compare_bench.py BASELINE.json CURRENT.json \
        [--tolerance 0.25] [--strict]

Prints a per-metric table with the relative change and flags regressions
beyond the tolerance (default 25%, generous because CI runners jitter).
Exit code is 0 unless --strict is given, in which case any flagged
regression exits 1.  Metrics present in only one file are reported but
never flagged -- except budget breaches: a result carrying a "budget"
field (an absolute ceiling in the metric's own unit, e.g. the 5% engine
overhead budget for the span profiler) is checked against the CURRENT
value regardless of the baseline, and a breach is flagged even for
metrics the baseline lacks.
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != "dvs-bench-perf-v1":
        sys.exit(f"{path}: unexpected schema {doc.get('schema')!r}")
    return {r["name"]: r for r in doc["results"]}


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--tolerance", type=float, default=0.25,
                    help="relative regression allowed before flagging "
                         "(default 0.25 = 25%%)")
    ap.add_argument("--strict", action="store_true",
                    help="exit 1 when any regression exceeds the tolerance")
    args = ap.parse_args()

    base = load(args.baseline)
    cur = load(args.current)

    regressions = []
    breaches = []
    print(f"{'metric':<42} {'baseline':>12} {'current':>12} {'change':>9}")
    print("-" * 79)
    for name in sorted(set(base) | set(cur)):
        b = base.get(name)
        c = cur.get(name)
        # Budget check: an absolute ceiling on the current value, applied
        # whether or not the baseline knows the metric.
        if c is not None and c.get("budget", 0) > 0 and c["value"] > c["budget"]:
            breaches.append((name, c["value"], c["budget"]))
        if b is None or c is None:
            side = "baseline" if c is None else "current"
            val = (b or c)["value"]
            print(f"{name:<42} {'(only in ' + side + ')':>26} {val:>12.4g}")
            continue
        bv, cv = b["value"], c["value"]
        if bv == 0:
            print(f"{name:<42} {bv:>12.4g} {cv:>12.4g} {'n/a':>9}")
            continue
        # Normalize so positive = improvement.
        rel = (cv - bv) / bv if c.get("higher_is_better", True) else (bv - cv) / bv
        flag = ""
        if rel < -args.tolerance:
            flag = "  << REGRESSION"
            regressions.append((name, rel))
        print(f"{name:<42} {bv:>12.4g} {cv:>12.4g} {rel:>+8.1%}{flag}")

    failed = False
    if regressions:
        print(f"\n{len(regressions)} metric(s) regressed beyond "
              f"{args.tolerance:.0%}:")
        for name, rel in regressions:
            print(f"  {name}: {rel:+.1%}")
        failed = True
    if breaches:
        print(f"\n{len(breaches)} metric(s) over their absolute budget:")
        for name, val, budget in breaches:
            print(f"  {name}: {val:.4g} > budget {budget:.4g}")
        failed = True
    if failed:
        if args.strict:
            sys.exit(1)
        print("(warn-only: exiting 0; use --strict to fail)")
    else:
        print("\nno regressions beyond tolerance")


if __name__ == "__main__":
    main()
