#!/usr/bin/env python3
"""Plot the CSV series the bench harnesses export.

Run the benches first (they drop CSVs into the current directory):

    cd build && for b in bench/*; do ./$b; done
    python3 ../scripts/plot_benches.py            # writes PNGs next to the CSVs

Requires matplotlib; degrades to a listing of available CSVs without it.
"""

import csv
import os
import sys

FIGURES = {
    "fig3_freq_voltage.csv": {
        "title": "Figure 3: SA-1100 frequency vs voltage",
        "x": "freq_mhz",
        "series": [("volt", "min voltage (V)")],
        "xlabel": "frequency (MHz)",
    },
    "fig4_mp3_perf_energy.csv": {
        "title": "Figure 4: MP3 performance and energy vs frequency",
        "x": "freq_mhz",
        "series": [("perf_ratio", "performance"), ("energy_ratio", "energy")],
        "xlabel": "frequency (MHz)",
    },
    "fig5_mpeg_perf_energy.csv": {
        "title": "Figure 5: MPEG performance and energy vs frequency",
        "x": "freq_mhz",
        "series": [("perf_ratio", "performance"), ("energy_ratio", "energy")],
        "xlabel": "frequency (MHz)",
    },
    "fig6_arrival_fit.csv": {
        "title": "Figure 6: arrival CDF vs exponential fit",
        "x": "interarrival_s",
        "series": [("empirical_cdf", "experimental"), ("exponential_cdf", "exponential fit")],
        "xlabel": "interarrival time (s)",
    },
    "fig9_rates_vs_freq.csv": {
        "title": "Figure 9: frame rates vs CPU frequency",
        "x": "freq_mhz",
        "series": [("cpu_rate", "CPU rate"), ("wlan_rate", "WLAN rate")],
        "xlabel": "CPU frequency (MHz)",
    },
    "fig10_detection.csv": {
        "title": "Figure 10: rate change detection",
        "x": "frame",
        "series": [
            ("ideal", "ideal"),
            ("change_point", "change point"),
            ("ema_g0.03", "exp. average g=0.03"),
            ("ema_g0.05", "exp. average g=0.05"),
        ],
        "xlabel": "frame number",
    },
    "ablation_delay_target.csv": {
        "title": "Ablation: energy vs delay target",
        "x": "target_s",
        "series": [("energy_kj", "whole badge (kJ)"), ("cpu_mem_kj", "CPU+mem (kJ)")],
        "xlabel": "delay target (s)",
    },
}


def read_csv(path):
    with open(path, newline="") as fh:
        rows = list(csv.DictReader(fh))
    return rows


def main():
    try:
        import matplotlib

        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        print("matplotlib not available; CSVs present:")
        for name in FIGURES:
            print(" ", name, "(found)" if os.path.exists(name) else "(missing)")
        return 1

    made = 0
    for name, spec in FIGURES.items():
        if not os.path.exists(name):
            print(f"skip {name}: not found (run the benches first)")
            continue
        rows = read_csv(name)
        xs = [float(r[spec["x"]]) for r in rows]
        fig, ax = plt.subplots(figsize=(7, 4.5))
        for col, label in spec["series"]:
            ax.plot(xs, [float(r[col]) for r in rows], marker=".", label=label)
        ax.set_title(spec["title"])
        ax.set_xlabel(spec["xlabel"])
        ax.grid(True, alpha=0.3)
        ax.legend()
        out = os.path.splitext(name)[0] + ".png"
        fig.tight_layout()
        fig.savefig(out, dpi=140)
        plt.close(fig)
        print("wrote", out)
        made += 1
    return 0 if made else 1


if __name__ == "__main__":
    sys.exit(main())
