// Lightweight precondition / invariant checking.
//
// DVS_CHECK is always on (these models are not hot enough for checks to
// matter, and a silently wrong power number is worse than a throw).
#pragma once

#include <stdexcept>
#include <string>

namespace dvs::detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file, int line,
                                      const std::string& msg) {
  throw std::logic_error(std::string("check failed: ") + expr + " at " + file + ":" +
                         std::to_string(line) + (msg.empty() ? "" : (": " + msg)));
}

}  // namespace dvs::detail

#define DVS_CHECK(expr)                                                \
  do {                                                                 \
    if (!(expr)) ::dvs::detail::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (false)

#define DVS_CHECK_MSG(expr, msg)                                          \
  do {                                                                    \
    if (!(expr)) ::dvs::detail::check_failed(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)
