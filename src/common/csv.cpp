#include "common/csv.hpp"

#include <cstdlib>
#include <sstream>
#include <stdexcept>

namespace dvs {

CsvWriter::CsvWriter(const std::string& path) : out_(path) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
  // Locale-proof the file stream itself (CSV is a machine format; the
  // global locale must never leak into it).
  out_.imbue(std::locale::classic());
}

std::string CsvWriter::escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string quoted = "\"";
  for (char c : cell) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
}

void CsvWriter::write_row(const std::vector<double>& values) {
  std::ostringstream os;
  os.imbue(std::locale::classic());
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) os << ',';
    os << values[i];
  }
  out_ << os.str() << '\n';
}

std::string csv_path(const std::string& name) {
  const char* dir = std::getenv("DVS_CSV_DIR");
  if (dir != nullptr && *dir != '\0') {
    return std::string(dir) + "/" + name + ".csv";
  }
  return name + ".csv";
}

}  // namespace dvs
