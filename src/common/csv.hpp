// Minimal CSV writer for exporting bench series (figure reproductions) so
// they can be plotted outside the harness.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace dvs {

/// Writes rows of cells to a CSV file, quoting cells that need it.
class CsvWriter {
 public:
  /// Opens (truncates) the file; throws std::runtime_error on failure.
  explicit CsvWriter(const std::string& path);

  void write_row(const std::vector<std::string>& cells);

  /// Convenience for purely numeric rows.
  void write_row(const std::vector<double>& values);

 private:
  static std::string escape(const std::string& cell);

  std::ofstream out_;
};

}  // namespace dvs
