// CSV emission for experiment artifacts (figure/table reproductions, sweep
// results) so they can be plotted outside the harness.  This is the one
// CSV surface in the codebase: benches, the sweep runner, and the CLI all
// write through it, so column formatting stays uniform.
#pragma once

#include <fstream>
#include <locale>
#include <sstream>
#include <string>
#include <type_traits>
#include <vector>

namespace dvs {

/// Writes rows of cells to a CSV file, quoting cells that need it.
class CsvWriter {
 public:
  /// Opens (truncates) the file; throws std::runtime_error on failure.
  explicit CsvWriter(const std::string& path);

  void write_row(const std::vector<std::string>& cells);

  /// Convenience for purely numeric rows.
  void write_row(const std::vector<double>& values);

  /// Semantic alias for the first row.
  void write_header(const std::vector<std::string>& names) { write_row(names); }

  /// Mixed-type row: strings pass through, arithmetic cells format exactly
  /// like write_row(vector<double>) (stream default, 6 significant digits).
  template <typename... Ts>
  void row(const Ts&... cells) {
    write_row(std::vector<std::string>{to_cell(cells)...});
  }

  /// The shared cell formatting (public so tests can pin it down).
  /// Always formats in the classic "C" locale: a process-global de_DE-style
  /// locale would otherwise turn 3.14 into "3,14" and silently corrupt
  /// every CSV cell boundary.
  static std::string to_cell(const std::string& cell) { return cell; }
  static std::string to_cell(const char* cell) { return cell; }
  template <typename T, typename = std::enable_if_t<std::is_arithmetic_v<T>>>
  static std::string to_cell(T value) {
    std::ostringstream os;
    os.imbue(std::locale::classic());
    os << value;
    return os.str();
  }

 private:
  static std::string escape(const std::string& cell);

  std::ofstream out_;
};

/// Where experiment artifacts drop their CSV exports: $DVS_CSV_DIR/<name>.csv
/// when the environment variable is set, ./<name>.csv otherwise.
std::string csv_path(const std::string& name);

}  // namespace dvs
