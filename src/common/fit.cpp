#include "common/fit.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dvs {

double exponential_cdf(double rate, double t) {
  if (t <= 0.0) return 0.0;
  return 1.0 - std::exp(-rate * t);
}

double pareto_cdf(double shape, double scale, double t) {
  if (t <= scale) return 0.0;
  return 1.0 - std::pow(scale / t, shape);
}

EmpiricalCdf empirical_cdf(std::span<const double> sample) {
  if (sample.empty()) throw std::invalid_argument("empirical_cdf: empty sample");
  EmpiricalCdf out;
  out.xs.assign(sample.begin(), sample.end());
  std::sort(out.xs.begin(), out.xs.end());
  out.ps.resize(out.xs.size());
  const double n = static_cast<double>(out.xs.size());
  for (std::size_t i = 0; i < out.xs.size(); ++i) {
    out.ps[i] = (static_cast<double>(i) + 0.5) / n;
  }
  return out;
}

ExponentialFit fit_exponential(std::span<const double> sample) {
  if (sample.empty()) throw std::invalid_argument("fit_exponential: empty sample");
  double sum = 0.0;
  for (double x : sample) {
    if (x <= 0.0) throw std::invalid_argument("fit_exponential: values must be > 0");
    sum += x;
  }
  ExponentialFit fit;
  fit.n = sample.size();
  fit.mean = sum / static_cast<double>(sample.size());
  fit.rate = 1.0 / fit.mean;

  const EmpiricalCdf ecdf = empirical_cdf(sample);
  double err_sum = 0.0;
  double ks = 0.0;
  for (std::size_t i = 0; i < ecdf.xs.size(); ++i) {
    const double diff = std::abs(ecdf.ps[i] - exponential_cdf(fit.rate, ecdf.xs[i]));
    err_sum += diff;
    ks = std::max(ks, diff);
  }
  fit.avg_cdf_error = err_sum / static_cast<double>(ecdf.xs.size());
  fit.ks_statistic = ks;
  return fit;
}

ParetoFit fit_pareto(std::span<const double> sample) {
  if (sample.empty()) throw std::invalid_argument("fit_pareto: empty sample");
  double min_x = sample[0];
  for (double x : sample) {
    if (x <= 0.0) throw std::invalid_argument("fit_pareto: values must be > 0");
    min_x = std::min(min_x, x);
  }
  // Hill / ML estimator for shape with known scale = min sample value.
  double log_sum = 0.0;
  std::size_t n_above = 0;
  for (double x : sample) {
    if (x > min_x) {
      log_sum += std::log(x / min_x);
      ++n_above;
    }
  }
  ParetoFit fit;
  fit.n = sample.size();
  fit.scale = min_x;
  // If every point equals the scale the distribution is degenerate; use a
  // very large shape so the CDF is a near-step at the scale.
  fit.shape = (n_above == 0 || log_sum <= 0.0)
                  ? 1e9
                  : static_cast<double>(n_above) / log_sum;

  const EmpiricalCdf ecdf = empirical_cdf(sample);
  double err_sum = 0.0;
  double ks = 0.0;
  for (std::size_t i = 0; i < ecdf.xs.size(); ++i) {
    const double diff = std::abs(ecdf.ps[i] - pareto_cdf(fit.shape, fit.scale, ecdf.xs[i]));
    err_sum += diff;
    ks = std::max(ks, diff);
  }
  fit.avg_cdf_error = err_sum / static_cast<double>(ecdf.xs.size());
  fit.ks_statistic = ks;
  return fit;
}

}  // namespace dvs
