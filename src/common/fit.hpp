// Distribution fitting and goodness-of-fit measures.
//
// Section 2.2 / Figure 6 of the paper fits an exponential distribution to
// measured MPEG frame interarrival times and reports an "average fitting
// error = 8%".  This module reproduces that methodology: maximum-likelihood
// exponential fit plus the mean absolute deviation between the empirical
// CDF and the fitted CDF, and the Kolmogorov-Smirnov statistic for tests.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace dvs {

/// Result of fitting an exponential distribution to a sample.
struct ExponentialFit {
  double rate = 0.0;            ///< ML estimate: 1 / sample mean.
  double mean = 0.0;            ///< Sample mean.
  double avg_cdf_error = 0.0;   ///< Mean |F_emp(x) - F_fit(x)| over sample points.
  double ks_statistic = 0.0;    ///< sup |F_emp(x) - F_fit(x)|.
  std::size_t n = 0;            ///< Sample size.
};

/// Fits an exponential distribution by maximum likelihood and evaluates the
/// fit quality against the empirical CDF.  Throws std::invalid_argument if
/// the sample is empty or contains non-positive values.
ExponentialFit fit_exponential(std::span<const double> sample);

/// Exponential CDF F(t) = 1 - exp(-rate * t) for t >= 0 (0 for t < 0).
double exponential_cdf(double rate, double t);

/// Pareto CDF F(t) = 1 - (scale/t)^shape for t >= scale (0 below scale).
double pareto_cdf(double shape, double scale, double t);

/// Result of fitting a Pareto distribution (used for idle-period tails in
/// the DPM model; the authors' prior work showed idle times are not
/// exponential).
struct ParetoFit {
  double shape = 0.0;
  double scale = 0.0;           ///< min of the sample.
  double avg_cdf_error = 0.0;
  double ks_statistic = 0.0;
  std::size_t n = 0;
};

/// Fits a Pareto distribution by maximum likelihood (Hill estimator with the
/// sample minimum as scale).  Throws on empty sample or non-positive values.
ParetoFit fit_pareto(std::span<const double> sample);

/// Empirical CDF evaluated at each sorted sample point, using the midpoint
/// convention F_emp(x_(i)) = (i + 0.5) / n.  Returned values are paired with
/// the sorted sample (same index).
struct EmpiricalCdf {
  std::vector<double> xs;   ///< sorted sample
  std::vector<double> ps;   ///< F_emp at each xs[i]
};
EmpiricalCdf empirical_cdf(std::span<const double> sample);

}  // namespace dvs
