#include "common/json.hpp"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace dvs::json {

namespace {

[[noreturn]] void type_error(const char* want, Type got) {
  throw ParseError(std::string("json: expected ") + want + ", got type " +
                   std::to_string(static_cast<int>(got)));
}

}  // namespace

double Value::as_number() const {
  if (type_ != Type::Number) type_error("number", type_);
  return number_;
}

bool Value::as_bool() const {
  if (type_ != Type::Bool) type_error("bool", type_);
  return bool_;
}

const std::string& Value::as_string() const {
  if (type_ != Type::String) type_error("string", type_);
  return string_;
}

const std::vector<ValuePtr>& Value::as_array() const {
  if (type_ != Type::Array) type_error("array", type_);
  return array_;
}

const std::map<std::string, ValuePtr>& Value::as_object() const {
  if (type_ != Type::Object) type_error("object", type_);
  return object_;
}

const Value* Value::find(const std::string& key) const {
  if (type_ != Type::Object) return nullptr;
  const auto it = object_.find(key);
  return it == object_.end() ? nullptr : it->second.get();
}

const Value& Value::at(const std::string& key) const {
  const Value* v = find(key);
  if (v == nullptr) throw ParseError("json: missing member \"" + key + "\"");
  return *v;
}

double Value::number_or(const std::string& key, double fallback) const {
  const Value* v = find(key);
  return v == nullptr ? fallback : v->as_number();
}

std::string Value::string_or(const std::string& key,
                             std::string fallback) const {
  const Value* v = find(key);
  return v == nullptr ? std::move(fallback) : v->as_string();
}

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  ValuePtr parse_document() {
    ValuePtr v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw ParseError("json: " + what + " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    const std::size_t n = std::char_traits<char>::length(lit);
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  ValuePtr parse_value() {
    skip_ws();
    auto v = std::make_shared<Value>();
    switch (peek()) {
      case '{': parse_object(*v); break;
      case '[': parse_array(*v); break;
      case '"':
        v->type_ = Type::String;
        v->string_ = parse_string();
        break;
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        v->type_ = Type::Bool;
        v->bool_ = true;
        break;
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        v->type_ = Type::Bool;
        v->bool_ = false;
        break;
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        break;
      default:
        v->type_ = Type::Number;
        v->number_ = parse_number();
        break;
    }
    return v;
  }

  void parse_object(Value& v) {
    v.type_ = Type::Object;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.object_[std::move(key)] = parse_value();
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return;
    }
  }

  void parse_array(Value& v) {
    v.type_ = Type::Array;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return;
    }
    while (true) {
      v.array_.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          // Only BMP escapes; non-ASCII code points are passed through as
          // '?' — nothing this repo writes uses them.
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          out.push_back(code < 0x80 ? static_cast<char>(code) : '?');
          break;
        }
        default: fail("bad escape character");
      }
    }
  }

  double parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    auto digits = [this] {
      std::size_t n = 0;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
        ++pos_;
        ++n;
      }
      return n;
    };
    if (digits() == 0) fail("bad number");
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (digits() == 0) fail("bad number fraction");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      if (digits() == 0) fail("bad number exponent");
    }
    // strtod round-trips the %.17g doubles our writers emit exactly.
    return std::strtod(text_.c_str() + start, nullptr);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

ValuePtr parse(const std::string& text) { return Parser(text).parse_document(); }

ValuePtr parse_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw ParseError("json: cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  try {
    return parse(buf.str());
  } catch (const ParseError& e) {
    throw ParseError(std::string(e.what()) + " (" + path + ")");
  }
}

}  // namespace dvs::json
