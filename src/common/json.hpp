// Minimal recursive-descent JSON reader for the analyzer tooling (the
// `dvs-sim report` subcommand ingests metrics/ledger JSON written by this
// repo).  Deliberately small: objects, arrays, strings (with the common
// escapes), doubles, bools, null.  No external dependencies — the container
// image is frozen.
//
// This is a *reader*; all JSON writing in the repo stays hand-rolled at the
// emission sites (metrics_registry, attribution, bench_perf) where the
// format lives next to the data.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace dvs::json {

class Value;
using ValuePtr = std::shared_ptr<Value>;

enum class Type : std::uint8_t { Null, Bool, Number, String, Array, Object };

/// Thrown on malformed input, with a byte offset in the message.
class ParseError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Value {
 public:
  Value() = default;

  [[nodiscard]] Type type() const { return type_; }
  [[nodiscard]] bool is_null() const { return type_ == Type::Null; }
  [[nodiscard]] bool is_object() const { return type_ == Type::Object; }
  [[nodiscard]] bool is_array() const { return type_ == Type::Array; }
  [[nodiscard]] bool is_number() const { return type_ == Type::Number; }
  [[nodiscard]] bool is_string() const { return type_ == Type::String; }

  /// Typed accessors; throw ParseError when the type does not match (the
  /// analyzer treats a shape mismatch the same as a syntax error).
  [[nodiscard]] double as_number() const;
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const std::vector<ValuePtr>& as_array() const;
  [[nodiscard]] const std::map<std::string, ValuePtr>& as_object() const;

  /// Object member lookup; null pointer when absent or not an object.
  [[nodiscard]] const Value* find(const std::string& key) const;
  /// Object member that must exist, else ParseError naming the key.
  [[nodiscard]] const Value& at(const std::string& key) const;

  /// Convenience: member `key` as a number/string, or `fallback` when the
  /// member is absent.  Wrong-typed members still throw.
  [[nodiscard]] double number_or(const std::string& key, double fallback) const;
  [[nodiscard]] std::string string_or(const std::string& key,
                                      std::string fallback) const;

 private:
  friend class Parser;
  Type type_ = Type::Null;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<ValuePtr> array_;
  std::map<std::string, ValuePtr> object_;
};

/// Parses one JSON document; trailing non-whitespace is an error.
ValuePtr parse(const std::string& text);

/// Reads and parses a whole file; ParseError mentions the path.
ValuePtr parse_file(const std::string& path);

}  // namespace dvs::json
