#include "common/piecewise_linear.hpp"

#include <algorithm>
#include <stdexcept>

namespace dvs {

PiecewiseLinear::PiecewiseLinear(std::vector<Point> knots) : knots_(std::move(knots)) {
  validate();
}

PiecewiseLinear::PiecewiseLinear(std::initializer_list<Point> knots)
    : knots_(knots) {
  validate();
}

void PiecewiseLinear::validate() const {
  if (knots_.size() < 2) {
    throw std::invalid_argument("PiecewiseLinear: need at least two knots");
  }
  for (std::size_t i = 1; i < knots_.size(); ++i) {
    if (!(knots_[i].first > knots_[i - 1].first)) {
      throw std::invalid_argument("PiecewiseLinear: x must be strictly increasing");
    }
  }
}

double PiecewiseLinear::operator()(double x) const {
  if (knots_.empty()) throw std::logic_error("PiecewiseLinear: empty curve");
  if (x <= knots_.front().first) return knots_.front().second;
  if (x >= knots_.back().first) return knots_.back().second;
  // First knot with knot.x > x.
  const auto it = std::upper_bound(
      knots_.begin(), knots_.end(), x,
      [](double v, const Point& p) { return v < p.first; });
  const Point& hi = *it;
  const Point& lo = *(it - 1);
  const double frac = (x - lo.first) / (hi.first - lo.first);
  return lo.second + frac * (hi.second - lo.second);
}

bool PiecewiseLinear::increasing() const {
  return knots_.back().second >= knots_.front().second;
}

bool PiecewiseLinear::strictly_monotone() const {
  if (knots_.size() < 2) return false;
  const bool inc = knots_[1].second > knots_[0].second;
  for (std::size_t i = 1; i < knots_.size(); ++i) {
    const double dy = knots_[i].second - knots_[i - 1].second;
    if (inc ? dy <= 0.0 : dy >= 0.0) return false;
  }
  return true;
}

double PiecewiseLinear::inverse(double y) const {
  if (!strictly_monotone()) {
    throw std::logic_error("PiecewiseLinear::inverse: curve is not strictly monotone");
  }
  const bool inc = increasing();
  const double y_lo = inc ? knots_.front().second : knots_.back().second;
  const double y_hi = inc ? knots_.back().second : knots_.front().second;
  if (y <= y_lo) return inc ? knots_.front().first : knots_.back().first;
  if (y >= y_hi) return inc ? knots_.back().first : knots_.front().first;

  for (std::size_t i = 1; i < knots_.size(); ++i) {
    const Point& a = knots_[i - 1];
    const Point& b = knots_[i];
    const double seg_lo = std::min(a.second, b.second);
    const double seg_hi = std::max(a.second, b.second);
    if (y >= seg_lo && y <= seg_hi) {
      const double frac = (y - a.second) / (b.second - a.second);
      return a.first + frac * (b.first - a.first);
    }
  }
  // Unreachable for a monotone curve with y in range.
  throw std::logic_error("PiecewiseLinear::inverse: no containing segment");
}

PiecewiseLinear PiecewiseLinear::scaled_y(double s) const {
  std::vector<Point> pts = knots_;
  for (auto& p : pts) p.second *= s;
  return PiecewiseLinear{std::move(pts)};
}

}  // namespace dvs
