// Monotone piecewise-linear curves.
//
// The paper's frequency-setting policy uses "piece-wise linear approximation
// based on the application frequency-performance tradeoff curve (Figures 4
// and 5)" to map a required decoding rate back to a processor frequency, and
// the V(f) curve of Figure 3 to set the voltage.  This class provides both
// forward evaluation and (for strictly monotone curves) inversion.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <utility>
#include <vector>

namespace dvs {

/// Piecewise-linear interpolant over sorted (x, y) knots.
///
/// Out-of-range queries clamp to the end values (the hardware cannot run
/// below its lowest or above its highest frequency, so clamping matches the
/// physical behaviour the policy needs).
class PiecewiseLinear {
 public:
  using Point = std::pair<double, double>;

  PiecewiseLinear() = default;

  /// Knots must be sorted by strictly increasing x; throws otherwise or if
  /// fewer than two knots are given.
  explicit PiecewiseLinear(std::vector<Point> knots);
  PiecewiseLinear(std::initializer_list<Point> knots);

  /// Linear interpolation at x (clamped to [x_front, x_back]).
  [[nodiscard]] double operator()(double x) const;

  /// Inverse evaluation: the x such that f(x) == y.  Requires the curve to
  /// be strictly monotone in y (checked at construction time lazily on the
  /// first inverse call; throws std::logic_error otherwise).  Out-of-range
  /// y clamps to the corresponding end x.
  [[nodiscard]] double inverse(double y) const;

  [[nodiscard]] bool increasing() const;
  [[nodiscard]] bool strictly_monotone() const;

  [[nodiscard]] std::size_t size() const { return knots_.size(); }
  [[nodiscard]] const std::vector<Point>& knots() const { return knots_; }
  [[nodiscard]] double x_min() const { return knots_.front().first; }
  [[nodiscard]] double x_max() const { return knots_.back().first; }
  [[nodiscard]] double y_at_x_min() const { return knots_.front().second; }
  [[nodiscard]] double y_at_x_max() const { return knots_.back().second; }

  /// Returns a new curve with every y multiplied by s.
  [[nodiscard]] PiecewiseLinear scaled_y(double s) const;

 private:
  void validate() const;

  std::vector<Point> knots_;
};

}  // namespace dvs
