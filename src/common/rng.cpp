#include "common/rng.hpp"

#include <cmath>

namespace dvs {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& w : state_) w = splitmix64(s);
  // All-zero state is a fixed point of xoshiro; SplitMix64 cannot produce
  // four zero words from any seed, but guard anyway.
  if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0) {
    state_[0] = 0x9e3779b97f4a7c15ULL;
  }
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  if (n == 0) throw std::domain_error("uniform_index(): n must be > 0");
  // Rejection sampling to remove modulo bias.
  const std::uint64_t limit = ~0ULL - (~0ULL % n);
  std::uint64_t x;
  do {
    x = next_u64();
  } while (x >= limit);
  return x % n;
}

bool Rng::bernoulli(double p) { return uniform() < p; }

double Rng::exponential(double rate_per_unit) {
  if (rate_per_unit <= 0.0) {
    throw std::domain_error("exponential(): rate must be > 0");
  }
  // uniform() is in [0,1); 1-u is in (0,1] so the log is finite.
  return -std::log(1.0 - uniform()) / rate_per_unit;
}

double Rng::pareto(double shape, double scale) {
  if (shape <= 0.0 || scale <= 0.0) {
    throw std::domain_error("pareto(): shape and scale must be > 0");
  }
  return scale / std::pow(1.0 - uniform(), 1.0 / shape);
}

double Rng::weibull(double shape, double scale) {
  if (shape <= 0.0 || scale <= 0.0) {
    throw std::domain_error("weibull(): shape and scale must be > 0");
  }
  return scale * std::pow(-std::log(1.0 - uniform()), 1.0 / shape);
}

double Rng::normal() {
  // Box-Muller; u1 in (0,1] to keep the log finite.
  const double u1 = 1.0 - uniform();
  const double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

double Rng::normal(double mean, double sigma) {
  if (sigma < 0.0) throw std::domain_error("normal(): sigma must be >= 0");
  return mean + sigma * normal();
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

double Rng::uniform_closed(double lo, double hi) {
  return lo + (hi - lo) * uniform();
}

Rng Rng::split() { return Rng{next_u64()}; }

}  // namespace dvs
