// Deterministic random number generation.
//
// Every stochastic component in the library (arrival processes, decoder
// models, Monte-Carlo threshold characterization) draws from an explicit
// Rng instance seeded by the caller, so experiments are reproducible
// bit-for-bit across runs and platforms.  The generator is xoshiro256**,
// seeded through SplitMix64 as its authors recommend.
#pragma once

#include <array>
#include <cstdint>
#include <stdexcept>
#include <vector>

namespace dvs {

/// xoshiro256** pseudo-random generator with distribution helpers.
///
/// Not std::mt19937 because we want identical sequences across standard
/// library implementations, and not std::*_distribution for the same
/// reason: the distribution algorithms here are fixed by this library.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from a single 64-bit seed via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit output.
  std::uint64_t next_u64();

  // UniformRandomBitGenerator interface (usable with <algorithm> shuffles).
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return next_u64(); }

  /// Uniform double in [0, 1).  53-bit resolution.
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n).  Throws if n == 0.
  std::uint64_t uniform_index(std::uint64_t n);

  /// Bernoulli trial with success probability p in [0, 1].
  bool bernoulli(double p);

  /// Exponential variate with the given rate (mean 1/rate).
  /// This is the paper's model for interarrival and service times.
  double exponential(double rate_per_unit);

  /// Pareto variate with shape a > 0 and scale (minimum) m > 0.
  /// Heavy-tailed idle periods — the distribution the authors' DPM work
  /// found to model real idle-time tails, unlike the exponential.
  double pareto(double shape, double scale);

  /// Weibull variate with shape k > 0 and scale s > 0:
  /// s * (-ln(1-U))^(1/k).  Shape 1 is the exponential with mean s; shape
  /// > 1 gives more regular (lower-variance) intervals, shape < 1 burstier.
  double weibull(double shape, double scale);

  /// Standard normal via Box-Muller (no state caching; two uniforms per call).
  double normal();

  /// Normal with given mean and standard deviation (sigma >= 0).
  double normal(double mean, double sigma);

  /// Log-normal: exp(normal(mu, sigma)).
  double lognormal(double mu, double sigma);

  /// Uniform over [lo, hi] inclusive-ish (used for wakeup transition times,
  /// which the paper models as uniformly distributed).
  double uniform_closed(double lo, double hi);

  /// Creates an independent child generator (stream splitting) — deterministic
  /// function of the current state, then advances this generator.
  Rng split();

 private:
  std::array<std::uint64_t, 4> state_{};
};

/// Deterministic 64-bit seed mixer (SplitMix64 finalizer over a golden-ratio
/// combination of a and b): the cross-layer substream discipline.  Layers
/// derive independent streams as mix_seed(parent_seed, stream_id) — the
/// scenario grid (core/scenario.hpp) and stochastic policies
/// (policy/qdpm_governor.hpp) both use this exact function, so sweeps stay
/// bit-identical across platforms and job counts.
inline std::uint64_t mix_seed(std::uint64_t a, std::uint64_t b) {
  std::uint64_t z = a + 0x9e3779b97f4a7c15ULL * (b + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Fisher-Yates shuffle with the library Rng (deterministic given the seed).
template <typename T>
void shuffle(std::vector<T>& v, Rng& rng) {
  if (v.empty()) return;
  for (std::size_t i = v.size() - 1; i > 0; --i) {
    const std::size_t j = static_cast<std::size_t>(rng.uniform_index(i + 1));
    using std::swap;
    swap(v[i], v[j]);
  }
}

}  // namespace dvs
