#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

namespace dvs {

// ---- RunningStats ----------------------------------------------------------

void RunningStats::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
  sum_ += x;
}

double RunningStats::mean() const {
  if (n_ == 0) throw std::logic_error("RunningStats::mean(): no samples");
  return mean_;
}

double RunningStats::variance() const {
  if (n_ < 2) throw std::logic_error("RunningStats::variance(): need >= 2 samples");
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const {
  if (n_ == 0) throw std::logic_error("RunningStats::min(): no samples");
  return min_;
}

double RunningStats::max() const {
  if (n_ == 0) throw std::logic_error("RunningStats::max(): no samples");
  return max_;
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  sum_ += other.sum_;
}

void RunningStats::absorb(std::size_t n, double sum, double min, double max) {
  if (n == 0) return;
  RunningStats other;
  other.n_ = n;
  other.sum_ = sum;
  other.mean_ = sum / static_cast<double>(n);
  other.m2_ = 0.0;  // within-set spread unknown; see header
  other.min_ = min;
  other.max_ = max;
  merge(other);
}

void RunningStats::reset() { *this = RunningStats{}; }

// ---- Histogram --------------------------------------------------------------

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0) {
  if (!(hi > lo)) throw std::invalid_argument("Histogram: hi must be > lo");
  if (bins == 0) throw std::invalid_argument("Histogram: need at least one bin");
}

void Histogram::add(double x) { add(x, 1); }

void Histogram::add(double x, std::size_t weight) {
  total_ += weight;
  if (x < lo_) {
    underflow_ += weight;
    return;
  }
  if (x >= hi_) {
    overflow_ += weight;
    return;
  }
  auto idx = static_cast<std::size_t>((x - lo_) / width_);
  if (idx >= counts_.size()) idx = counts_.size() - 1;  // float edge case at hi
  counts_[idx] += weight;
}

std::size_t Histogram::bin_count(std::size_t i) const {
  if (i >= counts_.size()) throw std::out_of_range("Histogram::bin_count");
  return counts_[i];
}

double Histogram::bin_lo(std::size_t i) const {
  if (i >= counts_.size()) throw std::out_of_range("Histogram::bin_lo");
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::bin_hi(std::size_t i) const { return bin_lo(i) + width_; }

double Histogram::quantile(double q) const {
  if (total_ == 0) throw std::logic_error("Histogram::quantile(): empty");
  if (q < 0.0 || q > 1.0) throw std::domain_error("Histogram::quantile(): q in [0,1]");
  const double target = q * static_cast<double>(total_);
  double cum = static_cast<double>(underflow_);
  if (target <= cum) return lo_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = cum + static_cast<double>(counts_[i]);
    if (target <= next && counts_[i] > 0) {
      const double frac = (target - cum) / static_cast<double>(counts_[i]);
      return bin_lo(i) + frac * width_;
    }
    cum = next;
  }
  return hi_;
}

void Histogram::reset() {
  std::fill(counts_.begin(), counts_.end(), 0);
  underflow_ = overflow_ = total_ = 0;
}

// ---- SampleQuantiles ---------------------------------------------------------

double SampleQuantiles::quantile(double q) const {
  if (xs_.empty()) throw std::logic_error("SampleQuantiles::quantile(): empty");
  if (q < 0.0 || q > 1.0) throw std::domain_error("SampleQuantiles::quantile(): q in [0,1]");
  if (!sorted_) {
    std::sort(xs_.begin(), xs_.end());
    sorted_ = true;
  }
  const double pos = q * static_cast<double>(xs_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, xs_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs_[lo] * (1.0 - frac) + xs_[hi] * frac;
}

// ---- TimeWeightedStats --------------------------------------------------------

void TimeWeightedStats::add(double value, double dt) {
  if (dt < 0.0) throw std::domain_error("TimeWeightedStats::add(): dt must be >= 0");
  if (dt == 0.0) return;
  weighted_sum_ += value * dt;
  total_time_ += dt;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

double TimeWeightedStats::mean() const {
  if (total_time_ <= 0.0) throw std::logic_error("TimeWeightedStats::mean(): no time accumulated");
  return weighted_sum_ / total_time_;
}

double TimeWeightedStats::min() const {
  if (total_time_ <= 0.0) throw std::logic_error("TimeWeightedStats::min(): no time accumulated");
  return min_;
}

double TimeWeightedStats::max() const {
  if (total_time_ <= 0.0) throw std::logic_error("TimeWeightedStats::max(): no time accumulated");
  return max_;
}

}  // namespace dvs
