// Streaming statistics and histograms.
//
// Used by the simulation metrics (mean frame delay, energy accounting
// cross-checks), by the off-line change-point characterization (quantile of
// the log-likelihood-ratio histogram, Section 3.1 of the paper), and by the
// exponential-fit validation of Figure 6.
#pragma once

#include <cstddef>
#include <limits>
#include <stdexcept>
#include <vector>

namespace dvs {

/// Numerically stable running mean / variance / extrema (Welford).
class RunningStats {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] bool empty() const { return n_ == 0; }

  /// Mean of the samples; throws if empty.
  [[nodiscard]] double mean() const;
  /// Unbiased sample variance; throws if fewer than 2 samples.
  [[nodiscard]] double variance() const;
  /// sqrt(variance()).
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double sum() const { return sum_; }

  /// Merges another accumulator into this one (parallel-friendly).
  void merge(const RunningStats& other);

  /// Folds in a summarized sample set known only by its count, sum, and
  /// extrema (e.g. recovered from a serialized artifact that kept no
  /// second moment).  Count/mean/sum/min/max stay exact; the absorbed
  /// set contributes zero within-set variance, so variance() afterwards
  /// is a lower bound.  No-op when n == 0.
  void absorb(std::size_t n, double sum, double min, double max);

  void reset();

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
  double sum_ = 0.0;
};

/// Fixed-range histogram with uniform bins plus underflow/overflow counters.
///
/// The paper's off-line characterization accumulates ln(P_max) values "in a
/// histogram, and then the value ... that gives very high probability that
/// the rate has changed is chosen" — i.e. a quantile query, provided here.
class Histogram {
 public:
  /// Builds a histogram covering [lo, hi) with `bins` uniform bins.
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  void add(double x, std::size_t weight);

  [[nodiscard]] std::size_t total_count() const { return total_; }
  [[nodiscard]] std::size_t bin_count(std::size_t i) const;
  [[nodiscard]] std::size_t underflow() const { return underflow_; }
  [[nodiscard]] std::size_t overflow() const { return overflow_; }
  [[nodiscard]] std::size_t bins() const { return counts_.size(); }
  [[nodiscard]] double lo() const { return lo_; }
  [[nodiscard]] double hi() const { return hi_; }
  [[nodiscard]] double bin_lo(std::size_t i) const;
  [[nodiscard]] double bin_hi(std::size_t i) const;

  /// Value below which fraction q of the mass lies (linear interpolation
  /// within the containing bin).  q in [0, 1]; throws if the histogram is
  /// empty.  Underflow mass counts as lo(), overflow as hi().
  [[nodiscard]] double quantile(double q) const;

  void reset();

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
  std::size_t total_ = 0;
};

/// Exact empirical quantile over a stored sample (for small sample sets
/// such as per-experiment delays).
class SampleQuantiles {
 public:
  void add(double x) { xs_.push_back(x); sorted_ = false; }
  [[nodiscard]] std::size_t count() const { return xs_.size(); }
  /// q in [0,1]; nearest-rank with linear interpolation.  Throws if empty.
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] double median() const { return quantile(0.5); }

 private:
  mutable std::vector<double> xs_;
  mutable bool sorted_ = false;
};

/// Time-weighted average of a piecewise-constant signal, e.g. mean queue
/// length or mean power over simulated time.
class TimeWeightedStats {
 public:
  /// Records that the signal held `value` for duration `dt` (dt >= 0).
  void add(double value, double dt);

  [[nodiscard]] double total_time() const { return total_time_; }
  /// Time-weighted mean; throws if no time has been accumulated.
  [[nodiscard]] double mean() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;

 private:
  double weighted_sum_ = 0.0;
  double total_time_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace dvs
