#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace dvs {

TextTable::TextTable(std::string title) : title_(std::move(title)) {}

void TextTable::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TextTable::add_row(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::string TextTable::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TextTable::str() const {
  // Column widths across header and all rows.
  std::size_t ncols = header_.size();
  for (const auto& r : rows_) ncols = std::max(ncols, r.size());
  std::vector<std::size_t> widths(ncols, 0);
  auto measure = [&](const std::vector<std::string>& r) {
    for (std::size_t i = 0; i < r.size(); ++i) {
      widths[i] = std::max(widths[i], r[i].size());
    }
  };
  measure(header_);
  for (const auto& r : rows_) measure(r);

  auto render_row = [&](const std::vector<std::string>& r, std::ostringstream& os) {
    for (std::size_t i = 0; i < ncols; ++i) {
      const std::string& cell = i < r.size() ? r[i] : std::string{};
      os << "| " << cell << std::string(widths[i] - cell.size(), ' ') << ' ';
    }
    os << "|\n";
  };

  std::ostringstream os;
  if (!title_.empty()) os << title_ << '\n';
  std::size_t rule_len = 1;  // leading '|'
  for (std::size_t w : widths) rule_len += w + 3;
  const std::string rule(rule_len, '-');
  os << rule << '\n';
  if (!header_.empty()) {
    render_row(header_, os);
    os << rule << '\n';
  }
  for (const auto& r : rows_) render_row(r, os);
  os << rule << '\n';
  return os.str();
}

void TextTable::print() const { std::fputs(str().c_str(), stdout); }

}  // namespace dvs
