// ASCII table formatting for the benchmark harnesses.
//
// Every bench binary regenerates one of the paper's tables or figures as
// rows of text; TextTable keeps that output aligned and uniform.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace dvs {

/// Column-aligned text table with an optional title and header row.
class TextTable {
 public:
  explicit TextTable(std::string title = {});

  /// Sets the header row (first row, underlined by a rule).
  void set_header(std::vector<std::string> header);

  /// Appends a row; rows may have fewer cells than the header (padded).
  void add_row(std::vector<std::string> row);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double v, int precision = 3);

  /// Renders the table as a string (trailing newline included).
  [[nodiscard]] std::string str() const;

  /// Renders and writes to stdout.
  void print() const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dvs
