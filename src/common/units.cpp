#include "common/units.hpp"

#include <cstdio>

namespace dvs {
namespace {

std::string fmt(double v, const char* unit) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g %s", v, unit);
  return buf;
}

}  // namespace

std::string to_string(Seconds t) { return fmt(t.value(), "s"); }
std::string to_string(Hertz r) { return fmt(r.value(), "1/s"); }
std::string to_string(MegaHertz f) { return fmt(f.value(), "MHz"); }
std::string to_string(Volts v) { return fmt(v.value(), "V"); }
std::string to_string(MilliWatts p) { return fmt(p.value(), "mW"); }
std::string to_string(Joules e) { return fmt(e.value(), "J"); }

}  // namespace dvs
