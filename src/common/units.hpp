// Strong unit types used throughout the library.
//
// The paper mixes seconds, milliseconds, MHz, volts, milliwatts and
// kilojoules; keeping each quantity in a distinct C++ type catches the
// classic "passed a rate where a period was expected" mistakes at compile
// time.  Each unit is a thin wrapper over double with arithmetic closed
// over the unit, plus a small set of explicit cross-unit operations
// (power x time = energy, 1/time = rate, ...).
#pragma once

#include <cmath>
#include <compare>
#include <stdexcept>
#include <string>

namespace dvs {

/// Generic tagged quantity.  Tag types are empty structs; all behaviour
/// lives here.  Construction from raw double is explicit; use the
/// factory helpers (seconds(), megahertz(), ...) at call sites.
template <typename Tag>
class Quantity {
 public:
  constexpr Quantity() = default;
  constexpr explicit Quantity(double v) : value_(v) {}

  [[nodiscard]] constexpr double value() const { return value_; }

  constexpr Quantity operator+(Quantity o) const { return Quantity{value_ + o.value_}; }
  constexpr Quantity operator-(Quantity o) const { return Quantity{value_ - o.value_}; }
  constexpr Quantity operator-() const { return Quantity{-value_}; }
  constexpr Quantity operator*(double s) const { return Quantity{value_ * s}; }
  constexpr Quantity operator/(double s) const { return Quantity{value_ / s}; }
  /// Ratio of two like quantities is dimensionless.
  constexpr double operator/(Quantity o) const { return value_ / o.value_; }

  constexpr Quantity& operator+=(Quantity o) { value_ += o.value_; return *this; }
  constexpr Quantity& operator-=(Quantity o) { value_ -= o.value_; return *this; }
  constexpr Quantity& operator*=(double s) { value_ *= s; return *this; }
  constexpr Quantity& operator/=(double s) { value_ /= s; return *this; }

  constexpr auto operator<=>(const Quantity&) const = default;

 private:
  double value_ = 0.0;
};

template <typename Tag>
constexpr Quantity<Tag> operator*(double s, Quantity<Tag> q) { return q * s; }

namespace tags {
struct SecondsTag {};
struct HertzTag {};        // events per second (frame rates, service rates)
struct MegaHertzTag {};    // CPU clock
struct VoltsTag {};
struct MilliWattsTag {};
struct JoulesTag {};
}  // namespace tags

using Seconds = Quantity<tags::SecondsTag>;
using Hertz = Quantity<tags::HertzTag>;          // "rate": frames/s, requests/s
using MegaHertz = Quantity<tags::MegaHertzTag>;  // CPU frequency
using Volts = Quantity<tags::VoltsTag>;
using MilliWatts = Quantity<tags::MilliWattsTag>;
using Joules = Quantity<tags::JoulesTag>;

// ---- factory helpers -----------------------------------------------------

constexpr Seconds seconds(double v) { return Seconds{v}; }
constexpr Seconds milliseconds(double v) { return Seconds{v * 1e-3}; }
constexpr Seconds microseconds(double v) { return Seconds{v * 1e-6}; }
constexpr Hertz hertz(double v) { return Hertz{v}; }
constexpr Hertz per_second(double v) { return Hertz{v}; }
constexpr MegaHertz megahertz(double v) { return MegaHertz{v}; }
constexpr Volts volts(double v) { return Volts{v}; }
constexpr MilliWatts milliwatts(double v) { return MilliWatts{v}; }
constexpr MilliWatts watts(double v) { return MilliWatts{v * 1e3}; }
constexpr Joules joules(double v) { return Joules{v}; }
constexpr Joules kilojoules(double v) { return Joules{v * 1e3}; }

// ---- cross-unit operations ------------------------------------------------

/// Energy accumulated by drawing power `p` for duration `t`.
constexpr Joules energy(MilliWatts p, Seconds t) {
  return Joules{p.value() * 1e-3 * t.value()};
}

/// Mean period of a rate; throws on non-positive rate.
inline Seconds period(Hertz rate) {
  if (rate.value() <= 0.0) throw std::domain_error("period(): rate must be > 0");
  return Seconds{1.0 / rate.value()};
}

/// Rate corresponding to a mean period; throws on non-positive period.
inline Hertz rate(Seconds t) {
  if (t.value() <= 0.0) throw std::domain_error("rate(): period must be > 0");
  return Hertz{1.0 / t.value()};
}

/// Events completed in a time span at constant rate (dimensionless count).
constexpr double events_in(Hertz r, Seconds t) { return r.value() * t.value(); }

// ---- formatting helpers ----------------------------------------------------

std::string to_string(Seconds t);
std::string to_string(Hertz r);
std::string to_string(MegaHertz f);
std::string to_string(Volts v);
std::string to_string(MilliWatts p);
std::string to_string(Joules e);

}  // namespace dvs
