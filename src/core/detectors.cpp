#include "core/detectors.hpp"

#include "common/check.hpp"
#include "detect/ema.hpp"
#include "detect/ideal.hpp"
#include "detect/sliding_window.hpp"
#include "detect/table_cache.hpp"

namespace dvs::core {

std::string to_string(DetectorKind kind) {
  switch (kind) {
    case DetectorKind::Ideal: return "Ideal";
    case DetectorKind::ChangePoint: return "Change Point";
    case DetectorKind::ExpAverage: return "Exp. Ave.";
    case DetectorKind::Max: return "Max";
    case DetectorKind::SlidingWindow: return "Sliding Win.";
  }
  return "?";
}

void DetectorFactoryConfig::prepare() {
  if (!thresholds) {
    thresholds = detect::shared_threshold_table(change_point);
  }
}

detect::RateDetectorPtr make_detector(DetectorKind kind,
                                      const DetectorFactoryConfig& cfg,
                                      TruthFn truth) {
  switch (kind) {
    case DetectorKind::Ideal:
      DVS_CHECK_MSG(static_cast<bool>(truth), "make_detector: ideal needs a truth source");
      return std::make_unique<detect::IdealDetector>(std::move(truth));
    case DetectorKind::ChangePoint: {
      auto table = cfg.thresholds
                       ? cfg.thresholds
                       : detect::shared_threshold_table(cfg.change_point);
      return std::make_unique<detect::ChangePointDetector>(std::move(table));
    }
    case DetectorKind::ExpAverage:
      return std::make_unique<detect::EmaDetector>(cfg.ema_gain);
    case DetectorKind::Max:
      return nullptr;
    case DetectorKind::SlidingWindow:
      return std::make_unique<detect::SlidingWindowDetector>(cfg.sliding_window);
  }
  return nullptr;
}

}  // namespace dvs::core
