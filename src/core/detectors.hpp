// Detector selection: the four algorithm columns of Tables 3 and 4 plus the
// extra sliding-window baseline.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "detect/change_point.hpp"
#include "detect/detector.hpp"
#include "detect/threshold_table.hpp"

namespace dvs::core {

enum class DetectorKind {
  Ideal,        ///< oracle: reads the trace ground truth
  ChangePoint,  ///< this paper's algorithm
  ExpAverage,   ///< Equation 6, prior work
  Max,          ///< no detection; CPU pinned at the top step
  SlidingWindow ///< extra baseline for ablations
};

std::string to_string(DetectorKind kind);

/// Everything needed to instantiate any detector kind.
struct DetectorFactoryConfig {
  double ema_gain = 0.03;
  std::size_t sliding_window = 50;
  detect::ChangePointConfig change_point{};
  /// Shared threshold table; built lazily (and cached here) on the first
  /// change-point instantiation.
  std::shared_ptr<const detect::ThresholdTable> thresholds;
};

/// Truth source for the ideal detector (bound to a trace's arrival or
/// service truth).
using TruthFn = std::function<Hertz(Seconds)>;

/// Builds a detector.  `truth` is required for DetectorKind::Ideal and
/// ignored otherwise.  Returns nullptr for DetectorKind::Max (the governor
/// then runs non-adaptive).
detect::RateDetectorPtr make_detector(DetectorKind kind,
                                      DetectorFactoryConfig& cfg, TruthFn truth);

}  // namespace dvs::core
