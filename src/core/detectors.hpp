// Detector selection: the four algorithm columns of Tables 3 and 4 plus the
// extra sliding-window baseline.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "detect/change_point.hpp"
#include "detect/detector.hpp"
#include "detect/threshold_table.hpp"

namespace dvs::core {

enum class DetectorKind {
  Ideal,        ///< oracle: reads the trace ground truth
  ChangePoint,  ///< this paper's algorithm
  ExpAverage,   ///< Equation 6, prior work
  Max,          ///< no detection; CPU pinned at the top step
  SlidingWindow ///< extra baseline for ablations
};

std::string to_string(DetectorKind kind);

/// Everything needed to instantiate any detector kind.
///
/// A prepared config is immutable from the factory's point of view: callers
/// build the ln P_max threshold table once with prepare() and may then share
/// one config (read-only) across any number of concurrent runs.
struct DetectorFactoryConfig {
  double ema_gain = 0.03;
  std::size_t sliding_window = 50;
  detect::ChangePointConfig change_point{};
  /// Shared threshold table; null until prepare() (or a caller) fills it.
  std::shared_ptr<const detect::ThresholdTable> thresholds;

  /// Runs the off-line change-point characterization once and caches the
  /// table.  Idempotent; call before sharing the config across threads.
  void prepare();
  [[nodiscard]] bool prepared() const { return thresholds != nullptr; }
};

/// Truth source for the ideal detector (bound to a trace's arrival or
/// service truth).
using TruthFn = std::function<Hertz(Seconds)>;

/// Builds a detector.  `truth` is required for DetectorKind::Ideal and
/// ignored otherwise.  Returns nullptr for DetectorKind::Max (the governor
/// then runs non-adaptive).  The config is read-only: an unprepared config
/// costs a fresh threshold characterization per change-point detector, so
/// callers instantiating more than one should prepare() first.
detect::RateDetectorPtr make_detector(DetectorKind kind,
                                      const DetectorFactoryConfig& cfg,
                                      TruthFn truth);

}  // namespace dvs::core
