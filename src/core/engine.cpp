#include "core/engine.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "obs/scoped_timer.hpp"
#include "policy/governor_factory.hpp"

namespace dvs::core {

Engine::Engine(EngineConfig cfg, std::vector<PlaybackItem> items)
    : cfg_(std::move(cfg)),
      items_(std::move(items)),
      badge_(cfg_.cpu),
      buffer_(cfg_.buffer_capacity) {
  DVS_CHECK_MSG(!items_.empty(), "Engine: no playback items");
  DVS_CHECK_MSG(cfg_.target_delay.value() > 0.0, "Engine: target delay must be > 0");
  for (std::size_t i = 0; i < items_.size(); ++i) {
    DVS_CHECK_MSG(!items_[i].trace.frames().empty(), "Engine: empty trace item");
    DVS_CHECK_MSG(items_[i].decoder.max_frequency() == badge_.cpu().max_frequency(),
                  "Engine: item decoder parameterized for a different CPU");
    if (i > 0) {
      DVS_CHECK_MSG(items_[i].trace.frames().front().arrival >= items_[i - 1].end,
                    "Engine: overlapping playback items");
    }
  }
  if (!cfg_.dpm_policy) {
    cfg_.dpm_policy = std::make_shared<dpm::NeverSleepPolicy>();
  }
  // Characterize the change-point threshold table once on the engine's own
  // copy, so the per-media governors share it even when the caller passed an
  // unprepared config.  Callers sharing one config across runs (or threads)
  // prepare() it themselves and this is a no-op.
  if (cfg_.detector == DetectorKind::ChangePoint) cfg_.detectors.prepare();
  if (cfg_.flight_recorder) {
    flight_ = std::make_unique<obs::FlightRecorder>(cfg_.flight_capacity);
    if (!cfg_.flight_dump_path.empty()) {
      flight_->set_auto_dump(cfg_.flight_dump_path);
    }
  }
  pm_ = std::make_unique<dpm::PowerManager>(sim_, badge_, cfg_.dpm_policy,
                                            cfg_.seed ^ 0xd9a17ULL);
  pm_->set_observability(cfg_.trace, cfg_.metrics);
  pm_->set_ledger(cfg_.ledger);
  pm_->set_flight(flight_.get());
  if (cfg_.hw_faults.any()) {
    // A dedicated substream of the engine seed, disjoint from the DPM's,
    // so adding hardware faults never perturbs the fault-free draws.
    injector_ =
        std::make_unique<fault::HwFaultInjector>(cfg_.hw_faults,
                                                 cfg_.seed ^ 0xfa017ULL);
    injector_->set_trace(cfg_.trace);
    injector_->set_ledger(cfg_.ledger);
    injector_->set_flight(flight_.get());
    pm_->set_wakeup_fault_hook(
        [this](Seconds now) { return injector_->wakeup_penalty(now); });
  }
  if (cfg_.ledger != nullptr) {
    cfg_.ledger->set_freq_step(badge_.cpu_step());
    std::vector<double> mhz;
    mhz.reserve(badge_.cpu().num_steps());
    for (std::size_t s = 0; s < badge_.cpu().num_steps(); ++s) {
      mhz.push_back(badge_.cpu().frequency_at(s).value());
    }
    cfg_.ledger->set_freq_table(std::move(mhz));
    install_accrual_observers();
  }
  if (cfg_.metrics != nullptr) {
    delay_hist_ = &cfg_.metrics->histogram("frames.delay_s", 0.0, 2.0, 200);
    decode_hist_ = &cfg_.metrics->histogram("frames.decode_s", 0.0, 0.2, 200);
    detect_latency_hist_ =
        &cfg_.metrics->histogram("detector.detection_latency_s", 0.0, 60.0, 120);
    delay_violation_hist_ =
        &cfg_.metrics->histogram("frames.delay_over_target", 0.0, 10.0, 100);
  }
  if (cfg_.profiler != nullptr) {
    // Pre-register the span tree so the hot path is a timestamp plus two
    // stores per handler — no name lookups while the simulation runs.
    profiler_ = cfg_.profiler;
    const int root = profiler_->root();
    span_arrival_ = profiler_->node(root, "arrival");
    span_decode_start_ = profiler_->node(root, "decode_start");
    span_decode_done_ = profiler_->node(root, "decode_done");
    span_governor_ = profiler_->node(span_decode_done_, "governor");
    span_dpm_idle_ = profiler_->node(root, "dpm_idle");
    span_power_sample_ = profiler_->node(root, "power_sample");
    span_telemetry_ = profiler_->node(root, "telemetry_snapshot");
    profiler_->enter(root);
  }
  if (tracing()) install_component_observers();
  if (flight_ != nullptr) {
    // Raw-pointer hook, not the std::function observer: the flight recorder
    // is on by default, and the dispatch cost of a std::function per state
    // change is what pushed the always-on overhead past its budget.
    for (std::size_t i = 0; i < badge_.num_components(); ++i) {
      badge_.component(static_cast<hw::BadgeComponentId>(i))
          .set_flight_recorder(flight_.get(), static_cast<std::uint16_t>(i));
    }
  }
}

void Engine::install_component_observers() {
  for (std::size_t i = 0; i < badge_.num_components(); ++i) {
    badge_.component(static_cast<hw::BadgeComponentId>(i))
        .set_state_observer([this](const hw::Component& c,
                                   hw::PowerState from, hw::PowerState to,
                                   Seconds at) {
          cfg_.trace->record(
              at.value(), obs::ComponentState{c.name(), hw::to_string(from),
                                              hw::to_string(to),
                                              c.current_power().value()});
        });
  }
}

void Engine::install_accrual_observers() {
  // The ledger receives the exact energy deltas the Metrics totals are
  // built from; at observer time the component still describes the interval
  // that elapsed (mutators accrue before changing state), so the charge key
  // is simply its current state — "wake" while a wakeup transition runs.
  for (std::size_t i = 0; i < badge_.num_components(); ++i) {
    badge_.component(static_cast<hw::BadgeComponentId>(i))
        .set_accrual_observer(
            [this](const hw::Component& c, Joules delta, Seconds dt) {
              cfg_.ledger->charge_energy(
                  c.name(),
                  c.transitioning() ? "wake"
                                    : std::string(hw::to_string(c.state())),
                  delta.value(), dt.value());
            });
  }
}

void Engine::wire_governor_observability(policy::Governor& gov) {
  gov.set_trace(cfg_.trace);
  gov.set_ledger(cfg_.ledger);
  gov.set_flight(flight_.get());
  if (!observing() && cfg_.ledger == nullptr) return;
  const auto wire = [this](detect::RateDetector* det, const char* stream) {
    if (det == nullptr) return;
    det->set_decision_observer(
        [this, stream](Seconds at, const detect::DetectorDecisionInfo& info) {
          if (tracing()) {
            cfg_.trace->record(at.value(),
                               obs::DetectorDecision{stream, info.ln_p_max,
                                                     info.threshold,
                                                     info.detected,
                                                     info.rate.value()});
          }
          if (info.detected && cfg_.ledger != nullptr) {
            cfg_.ledger->set_cause(obs::Cause::DetectorChange);
          }
          if (cfg_.metrics == nullptr) return;
          ++cfg_.metrics->counter("detector.decisions");
          if (info.detected) {
            ++cfg_.metrics->counter("detector.changes");
            if (rate_change_at_) {
              detect_latency_hist_->add((at - *rate_change_at_).value());
              rate_change_at_.reset();
            }
          }
        });
  };
  wire(gov.arrival_detector(), "arrival");
  wire(gov.service_detector(), "service");
}

void Engine::record_detector_sample(const policy::Governor& gov,
                                    std::string_view stream, Seconds now,
                                    Seconds interval, Hertz estimate) {
  const std::string name = gov.detector_name();
  cfg_.trace->record(now.value(), obs::DetectorSample{stream, name,
                                                      interval.value(),
                                                      estimate.value()});
}

policy::Governor& Engine::governor_for(workload::MediaType type) {
  policy::Governor* gov = governors_[media_index(type)].get();
  DVS_CHECK_MSG(gov != nullptr, "Engine: no governor for media type");
  return *gov;
}

const workload::DecoderModel& Engine::decoder_for(workload::MediaType type) const {
  for (const auto& item : items_) {
    if (item.trace.type() == type) return item.decoder;
  }
  throw std::logic_error("Engine: no decoder for media type");
}

void Engine::note_frequency(Seconds now) {
  // Closes the segment since the last note at the *current* frequency; call
  // before any frequency change and once at the end of the run.
  DVS_CHECK(now >= last_freq_note_);
  freq_tw_.add(badge_.cpu_frequency().value(), (now - last_freq_note_).value());
  last_freq_note_ = now;
}

void Engine::ensure_media_context(const PlaybackItem& item) {
  const workload::MediaType type = item.trace.type();
  const Seconds now = sim_.now();
  policy::GovernorPtr& slot = governors_[media_index(type)];
  if (slot == nullptr) {
    // Build the governor for this media type through the policy factory.
    policy::GovernorContext ctx{badge_, item.decoder, cfg_.target_delay,
                                cfg_.service_cv2};
    // A per-media substream of the engine seed, disjoint from the DPM's
    // (0xd9a17) and the fault injector's (0xfa017): learning policies draw
    // exploration randomness here without perturbing either.
    ctx.seed = dvs::mix_seed(cfg_.seed ^ 0x9d50ULL, media_index(type));
    if (cfg_.detector != DetectorKind::Max) {
      // The ideal detector reads the ground truth of whichever item is
      // playing at query time.
      ctx.make_arrival_detector = [this] {
        return make_detector(cfg_.detector, cfg_.detectors, [this](Seconds t) {
          const PlaybackItem& cur =
              items_[std::min(active_item_, items_.size() - 1)];
          return cur.trace.true_arrival_rate(t);
        });
      };
      ctx.make_service_detector = [this] {
        return make_detector(cfg_.detector, cfg_.detectors, [this](Seconds t) {
          const PlaybackItem& cur =
              items_[std::min(active_item_, items_.size() - 1)];
          return cur.trace.true_service_rate_at_max(t);
        });
      };
    }
    slot = policy::GovernorFactory::instance().create(cfg_.policy, ctx);
    wire_governor_observability(*slot);
    slot->enable_watchdog(cfg_.watchdog, cfg_.target_delay);
    if (injector_ != nullptr) {
      slot->set_step_filter(
          [this](Seconds at, std::size_t current, std::size_t desired) {
            return injector_->filter_step(at, current, desired);
          });
    }
    note_frequency(now);
    slot->initialize(item.nominal_arrival, item.nominal_service_at_max, now);
    // The detectors start from nominal rates; the gap to the clip's true
    // rates is the change the detector has to find.
    rate_change_at_ = now;
  }
  return;
}

void Engine::schedule_arrival_cursor() {
  if (item_ >= items_.size()) {
    next_arrival_ = std::nullopt;
    return;
  }
  const PlaybackItem& it = items_[item_];
  const workload::TraceFrame& tf = it.trace.frames()[frame_idx_];
  next_arrival_ = tf.arrival;
  sim_.schedule_at(tf.arrival, [this] { handle_arrival(); });
}

void Engine::handle_arrival() {
  const obs::ScopedSpan span{profiler_, span_arrival_};
  const Seconds now = sim_.now();
  const PlaybackItem& item = items_[item_];
  const workload::TraceFrame& tf = item.trace.frames()[frame_idx_];
  ++frames_arrived_;

  // DPM: cancel any pending sleep plan / idle filter; wake if sleeping.
  cancel_arm();
  const Seconds ready = pm_->on_request(now);
  device_ready_ = std::max(device_ready_, ready);

  // Media / governor context.
  const bool item_switch = active_item_ != item_;
  active_item_ = item_;
  ensure_media_context(item);
  policy::Governor& gov = governor_for(item.trace.type());
  if (item_switch && item_ > 0) {
    // New application launch: reseed the adaptive detectors with the app's
    // nominal rates (never the clip's true rates).
    note_frequency(now);
    gov.initialize(item.nominal_arrival, item.nominal_service_at_max, now);
    prev_arrival_.reset();
    rate_change_at_ = now;
  }

  start_wlan_burst(std::max(now, device_ready_));

  const workload::MediaType media = item.trace.type();
  const bool accepted =
      buffer_.push(workload::Frame{tf.id, media, now, tf.work}, now);
  if (tracing()) {
    if (accepted) {
      cfg_.trace->record(now.value(), obs::FrameArrival{tf.id,
                                                        workload::to_string(media),
                                                        buffer_.size()});
    } else {
      cfg_.trace->record(now.value(),
                         obs::FrameDrop{tf.id, workload::to_string(media)});
    }
  }
  if (!accepted && flight_ != nullptr) {
    flight_->record(now.value(), obs::FlightEventType::FrameDrop,
                    static_cast<std::uint16_t>(media_index(media)),
                    static_cast<float>(tf.id), 0.0F);
  }

  // Arrival-rate sample, gated against idle gaps — and against tail drops:
  // a dropped frame is never serviced, so it must not feed the λ estimate
  // the policy provisions for (the served rate is the admitted rate), nor
  // reset the interarrival clock of the admitted stream.
  if (accepted) {
    if (prev_arrival_) {
      const Seconds gap = now - *prev_arrival_;
      if (gap.value() > 0.0 && gap < cfg_.session_gap_threshold) {
        gov.on_arrival(now, gap, static_cast<double>(buffer_.size()));
        if (tracing() && gov.adaptive()) {
          record_detector_sample(gov, "arrival", now, gap,
                                 gov.arrival_estimate());
        }
      }
    }
    prev_arrival_ = now;
  }
  maybe_start_decode(std::max(now, device_ready_));

  // Advance the cursor.
  ++frame_idx_;
  if (frame_idx_ >= item.trace.frames().size()) {
    frame_idx_ = 0;
    ++item_;
  }
  schedule_arrival_cursor();
}

void Engine::start_wlan_burst(Seconds at) {
  wlan_busy_until_ = std::max(wlan_busy_until_, at + cfg_.wlan_rx_time);
  sim_.schedule_at(at, [this] {
    auto& wlan = badge_.component(hw::BadgeComponentId::WlanRf);
    if (wlan.state() == hw::PowerState::Idle && !wlan.transitioning()) {
      wlan.set_state(hw::PowerState::Active, sim_.now());
    }
  });
  sim_.schedule_at(wlan_busy_until_, [this] {
    auto& wlan = badge_.component(hw::BadgeComponentId::WlanRf);
    if (sim_.now() >= wlan_busy_until_ &&
        wlan.state() == hw::PowerState::Active && !wlan.transitioning()) {
      wlan.set_state(hw::PowerState::Idle, sim_.now());
    }
  });
}

void Engine::maybe_start_decode(Seconds at) {
  if (busy_ || decode_start_pending_ || buffer_.empty()) return;
  decode_start_pending_ = true;
  sim_.schedule_at(std::max(at, sim_.now()), [this] { handle_decode_start(); });
}

void Engine::handle_decode_start() {
  const obs::ScopedSpan span{profiler_, span_decode_start_};
  decode_start_pending_ = false;
  if (busy_ || buffer_.empty()) return;
  const Seconds now = sim_.now();
  if (now < device_ready_) {
    maybe_start_decode(device_ready_);
    return;
  }
  badge_.finish_wakeups(now);
  const Seconds pending = badge_.latest_wakeup_completion(now);
  if (pending > now) {
    maybe_start_decode(pending);
    return;
  }

  workload::Frame frame = *buffer_.pop(now);
  busy_ = true;

  policy::Governor& gov = governor_for(frame.type);
  note_frequency(now);
  const Seconds switch_latency = gov.apply(now);
  activate_components(frame.type, now);

  const workload::DecoderModel& dec = decoder_for(frame.type);
  const MegaHertz f = badge_.cpu_frequency();
  const Seconds pure = dec.decode_time(f, frame.work);

  if (tracing()) {
    cfg_.trace->record(now.value(),
                       obs::DecodeStart{frame.id, workload::to_string(frame.type),
                                        f.value(), switch_latency.value()});
  }

  // The memory is busy only for the frequency-independent stall portion of
  // the decode (a fixed number of accesses per frame); slowing the CPU does
  // not stretch memory energy.  Release it early.
  const Seconds mem_busy = dec.memory_stall() * frame.work;
  if (mem_busy < pure) {
    const hw::BadgeComponentId mem = frame.type == workload::MediaType::Mp3Audio
                                         ? hw::BadgeComponentId::Sram
                                         : hw::BadgeComponentId::Dram;
    sim_.schedule_at(now + switch_latency + mem_busy, [this, mem] {
      auto& c = badge_.component(mem);
      if (c.state() == hw::PowerState::Active && !c.transitioning()) {
        c.set_state(hw::PowerState::Idle, sim_.now());
      }
    });
  }

  sim_.schedule_at(now + switch_latency + pure, [this, frame, pure, f] {
    handle_decode_complete(frame, pure, f);
  });
}

void Engine::handle_decode_complete(workload::Frame frame, Seconds pure_decode,
                                    MegaHertz freq) {
  const obs::ScopedSpan span{profiler_, span_decode_done_};
  const Seconds now = sim_.now();
  buffer_.record_departure(frame.arrival, now);
  deactivate_components(frame.type, now);
  busy_ = false;
  const Seconds delay = now - frame.arrival;
  if (delay_hist_ != nullptr) delay_hist_->add(delay.value());
  if (decode_hist_ != nullptr) decode_hist_->add(pure_decode.value());
  if (tracing()) {
    cfg_.trace->record(now.value(),
                       obs::DecodeDone{frame.id, workload::to_string(frame.type),
                                       pure_decode.value(), delay.value(),
                                       buffer_.size()});
  }
  if (delay_violation_hist_ != nullptr) {
    delay_violation_hist_->add(delay.value() / cfg_.target_delay.value());
  }
  if (cfg_.ledger != nullptr) {
    cfg_.ledger->charge_delay(std::string(workload::to_string(frame.type)),
                              delay.value());
  }
  if (flight_ != nullptr) {
    flight_->record(now.value(), obs::FlightEventType::DecodeDone,
                    static_cast<std::uint16_t>(media_index(frame.type)),
                    static_cast<float>(delay.value()),
                    static_cast<float>(buffer_.size()));
  }
  policy::Governor& gov = governor_for(frame.type);
  {
    // Nested span: the governor's detector + policy work inside the
    // decode-completion handler shows up as its own tree node.
    const obs::ScopedSpan gov_span{profiler_, span_governor_};
    gov.on_decode_complete(now, pure_decode, freq,
                           static_cast<double>(buffer_.size()), delay);
  }
  if (tracing() && gov.adaptive()) {
    record_detector_sample(gov, "service", now, pure_decode,
                           gov.service_estimate_at_max());
  }

  if (!buffer_.empty()) {
    maybe_start_decode(now);
    return;
  }
  arm_dpm(now);
}

void Engine::activate_components(workload::MediaType type, Seconds now) {
  badge_.component(hw::BadgeComponentId::Cpu).set_state(hw::PowerState::Active, now);
  if (type == workload::MediaType::Mp3Audio) {
    badge_.component(hw::BadgeComponentId::Sram).set_state(hw::PowerState::Active, now);
  } else {
    badge_.component(hw::BadgeComponentId::Dram).set_state(hw::PowerState::Active, now);
    auto& display = badge_.component(hw::BadgeComponentId::Display);
    if (display.state() != hw::PowerState::Active && !display.transitioning()) {
      display.set_state(hw::PowerState::Active, now);
    }
  }
}

void Engine::deactivate_components(workload::MediaType type, Seconds now) {
  badge_.component(hw::BadgeComponentId::Cpu).set_state(hw::PowerState::Idle, now);
  if (type == workload::MediaType::Mp3Audio) {
    badge_.component(hw::BadgeComponentId::Sram).set_state(hw::PowerState::Idle, now);
  } else {
    badge_.component(hw::BadgeComponentId::Dram).set_state(hw::PowerState::Idle, now);
    // The display stays lit between video frames; it auto-idles at the
    // hardware-idle filter (arm_dpm).
  }
}

void Engine::arm_dpm(Seconds now) {
  cancel_arm();
  arm_event_ = sim_.schedule_at(now + cfg_.dpm_arm_delay, [this] {
    const obs::ScopedSpan span{profiler_, span_dpm_idle_};
    const Seconds t = sim_.now();
    // Playback stopped: the display is no longer being accessed.
    auto& display = badge_.component(hw::BadgeComponentId::Display);
    if (display.state() == hw::PowerState::Active && !display.transitioning()) {
      display.set_state(hw::PowerState::Idle, t);
    }
    std::optional<Seconds> hint;
    if (next_arrival_) hint = *next_arrival_ - t;
    pm_->on_idle_enter(t, hint);
  });
}

void Engine::schedule_power_sample(Seconds at) {
  // The chain stops at the session end so it cannot keep the event loop
  // alive forever.
  if (at > items_.back().end) return;
  sim_.schedule_at(at, [this] {
    const obs::ScopedSpan span{profiler_, span_power_sample_};
    power_trace_.emplace_back(sim_.now().value(), badge_.total_power().value());
    schedule_power_sample(sim_.now() + cfg_.power_sample_period);
  });
}

void Engine::schedule_telemetry_snapshot(Seconds at) {
  // Same chain shape as the power sampler: stops at the session end so it
  // cannot keep the event loop alive.
  if (at > items_.back().end) return;
  sim_.schedule_at(at, [this] {
    const obs::ScopedSpan span{profiler_, span_telemetry_};
    take_telemetry_snapshot(sim_.now());
    schedule_telemetry_snapshot(sim_.now() + cfg_.telemetry_every);
  });
}

void Engine::take_telemetry_snapshot(Seconds now) {
  // The registry fills its counters/gauges only at end of run, so the
  // instantaneous readings a live feed needs ride in the snapshot's
  // "live" object instead of polluting the end-of-run registry.
  static const obs::MetricsRegistry kEmpty;
  const obs::MetricsRegistry& reg =
      cfg_.metrics != nullptr ? *cfg_.metrics : kEmpty;
  obs::TelemetrySnapshotter::Live live;
  live.reserve(8);
  live.emplace_back("sim_time_s", now.value());
  double energy = 0.0;
  for (std::size_t i = 0; i < badge_.num_components(); ++i) {
    energy += badge_.component(static_cast<hw::BadgeComponentId>(i))
                  .energy_consumed(now)
                  .value();
  }
  live.emplace_back("energy_j", energy);
  live.emplace_back("avg_power_mw",
                    now.value() > 0.0 ? energy / now.value() * 1e3 : 0.0);
  live.emplace_back("cpu_mhz", badge_.cpu_frequency().value());
  live.emplace_back("queue_frames", static_cast<double>(buffer_.size()));
  live.emplace_back("frames_arrived", static_cast<double>(frames_arrived_));
  live.emplace_back("frames_decoded",
                    static_cast<double>(buffer_.delay_stats().count()));
  live.emplace_back("frames_dropped", static_cast<double>(buffer_.dropped()));
  cfg_.telemetry->snapshot(now.value(), "engine", reg, live);
}

void Engine::cancel_arm() {
  if (arm_event_.valid()) {
    sim_.cancel(arm_event_);
    arm_event_ = sim::EventId{};
  }
}

Metrics Engine::run() {
  DVS_CHECK_MSG(!ran_, "Engine: run() is single-shot");
  ran_ = true;
  schedule_arrival_cursor();
  if (cfg_.power_sample_period.value() > 0.0) {
    // The sample chain runs to the session end on a fixed period, so the
    // trace size is known up front; reserving it avoids log(n) regrowth
    // copies on long (Table 5) sessions.
    const double expected =
        items_.back().end.value() / cfg_.power_sample_period.value();
    power_trace_.reserve(static_cast<std::size_t>(expected) + 2);
    schedule_power_sample(cfg_.power_sample_period);
  }
  if (cfg_.telemetry != nullptr && cfg_.telemetry->active() &&
      cfg_.telemetry_every.value() > 0.0) {
    schedule_telemetry_snapshot(cfg_.telemetry_every);
  }
  try {
    obs::ScopedTimer timer{cfg_.metrics, "wall.engine_run_s"};
    sim_.run();
  } catch (...) {
    // Abnormal exit: finalize trace sinks so JSONL/Chrome output stays
    // well-formed, and capture the flight-recorder window.  Post-mortem
    // plumbing must never mask the original error.
    try {
      if (cfg_.trace != nullptr) cfg_.trace->flush();
      if (flight_ != nullptr) {
        flight_->trigger(sim_.now().value(), "exception");
      }
    } catch (...) {
    }
    throw;
  }
  const Seconds end = std::max(sim_.now(), items_.back().end);
  Metrics m = collect(end);
  if (cfg_.telemetry != nullptr && cfg_.telemetry->active() &&
      cfg_.telemetry_every.value() > 0.0) {
    // Final snapshot after fill_registry: the last JSONL line carries the
    // complete end-of-run registry, so a feed consumer never needs the
    // separate metrics JSON to close its series.
    take_telemetry_snapshot(end);
  }
  if (profiler_ != nullptr) profiler_->exit();  // the "engine" root span
  return m;
}

Metrics Engine::collect(Seconds end) {
  Metrics m;
  m.duration = end;
  note_frequency(end);
  for (std::size_t i = 0; i < badge_.num_components(); ++i) {
    const auto id = static_cast<hw::BadgeComponentId>(i);
    m.component_energy[i] = badge_.component(id).energy_consumed(end);
    m.total_energy += m.component_energy[i];
  }
  if (end.value() > 0.0) {
    m.average_power = MilliWatts{m.total_energy.value() / end.value() * 1e3};
  }
  m.frames_arrived = frames_arrived_;
  m.frames_admitted = buffer_.total_pushed();
  m.frames_decoded = buffer_.delay_stats().count();
  m.frames_dropped = buffer_.dropped();
  if (!buffer_.delay_stats().empty()) {
    m.mean_frame_delay = Seconds{buffer_.delay_stats().mean()};
    m.max_frame_delay = Seconds{buffer_.delay_stats().max()};
  }
  if (buffer_.occupancy_stats().total_time() > 0.0) {
    m.mean_buffered_frames = buffer_.occupancy_stats().mean();
  }
  m.cpu_switches = badge_.cpu_switch_count();
  if (freq_tw_.total_time() > 0.0) {
    m.mean_cpu_frequency = MegaHertz{freq_tw_.mean()};
  }
  m.dpm_idle_periods = pm_->idle_periods();
  m.dpm_sleeps = pm_->sleeps_commanded();
  m.dpm_wakeups = pm_->wakeups();
  m.dpm_total_wakeup_delay = pm_->total_wakeup_delay();
  if (injector_ != nullptr) m.faults_injected = injector_->faults_injected();
  for (const auto& gov : governors_) {
    if (gov == nullptr) continue;
    const policy::Watchdog* wd = gov->watchdog();
    if (wd == nullptr) continue;
    m.watchdog_escalations += wd->escalations();
    m.watchdog_recoveries += wd->recoveries();
    m.time_in_degraded += wd->time_in_degraded(end);
  }
  m.power_trace = std::move(power_trace_);
  if (cfg_.metrics != nullptr) fill_registry(m);
  return m;
}

void Engine::fill_registry(const Metrics& m) {
  obs::MetricsRegistry& reg = *cfg_.metrics;
  reg.counter("frames_arrived") += m.frames_arrived;
  reg.counter("frames_admitted") += m.frames_admitted;
  reg.counter("frames_decoded") += m.frames_decoded;
  reg.counter("frames_dropped") += m.frames_dropped;
  reg.counter("cpu_switches") += static_cast<std::uint64_t>(m.cpu_switches);
  reg.counter("dpm.idle_periods") +=
      static_cast<std::uint64_t>(m.dpm_idle_periods);
  reg.counter("dpm.sleeps") += static_cast<std::uint64_t>(m.dpm_sleeps);
  reg.counter("dpm.wakeups") += static_cast<std::uint64_t>(m.dpm_wakeups);
  reg.gauge("duration_s") = m.duration.value();
  reg.gauge("energy_j") = m.total_energy.value();
  reg.gauge("avg_power_mw") = m.average_power.value();
  reg.gauge("mean_frame_delay_s") = m.mean_frame_delay.value();
  reg.gauge("mean_cpu_mhz") = m.mean_cpu_frequency.value();
  reg.gauge("dpm.total_wakeup_delay_s") = m.dpm_total_wakeup_delay.value();
  if (m.faults_injected > 0 || m.watchdog_escalations > 0 ||
      m.watchdog_recoveries > 0) {
    reg.counter("faults_injected") += m.faults_injected;
    reg.counter("watchdog.escalations") +=
        static_cast<std::uint64_t>(m.watchdog_escalations);
    reg.counter("recoveries") +=
        static_cast<std::uint64_t>(m.watchdog_recoveries);
    reg.gauge("watchdog.time_in_degraded_s") = m.time_in_degraded.value();
  }

  // Kernel self-profile: how hard the simulator itself worked.
  const sim::SimulatorStats& s = sim_.stats();
  reg.counter("sim.events_scheduled") += s.scheduled;
  reg.counter("sim.events_executed") += s.executed;
  reg.counter("sim.events_cancelled") += s.cancelled;
  reg.counter("sim.tombstones_purged") += s.tombstones_purged;
  reg.counter("sim.heap_compactions") += s.compactions;
  reg.gauge("sim.max_heap_size") = static_cast<double>(s.max_heap_size);
  const double wall = reg.gauge_value("wall.engine_run_s");
  if (wall > 0.0) {
    reg.gauge("wall.events_per_sec") =
        static_cast<double>(s.executed) / wall;
  }
  if (cfg_.trace != nullptr) {
    reg.counter("trace.events_recorded") += cfg_.trace->events_recorded();
  }
  if (flight_ != nullptr) {
    reg.counter("flight.records") += flight_->records_stored();
    if (flight_->triggers() > 0) {
      reg.counter("flight.triggers") += flight_->triggers();
    }
  }
  if (cfg_.telemetry != nullptr && cfg_.telemetry->active()) {
    reg.counter("telemetry.snapshots") += cfg_.telemetry->snapshots_written();
  }
}

}  // namespace dvs::core
