// Full-system simulation: workload -> WLAN -> frame buffer -> decoder, with
// the combined power manager (DVS governor in the active state, DPM policy
// across idle periods) driving the SmartBadge model.
//
// This is the executable version of Figure 1 (workload / queue / device /
// power manager) with the expanded active state of Figure 8: while frames
// flow, the governor picks the (f, V) sub-state; when the queue drains and
// stays empty past a short hardware-idle filter, the DPM policy takes over
// and schedules sleep transitions; the next arrival wakes everything up and
// pays the Table 1 wakeup latencies.
//
// Modelling choices (documented in DESIGN.md):
//  * A decode in progress completes at the frequency it started with; the
//    governor's desired step commits at decode boundaries, paying the
//    ~150 us switch latency as CPU-busy time.
//  * The WLAN is active for a short burst around each frame reception and
//    auto-idles after, like every component ("the idle state is entered
//    immediately by each component ... as soon as that component is not
//    accessed").
//  * MP3 decode touches CPU+SRAM; MPEG decode touches CPU+DRAM and keeps
//    the display lit between frames.  The display auto-idles when playback
//    stops (at the idle filter), independent of the DPM policy.
//  * Arrival-rate samples are gated: a gap larger than
//    `session_gap_threshold` is an idle period, not rate information (the
//    paper models idle-state arrivals separately from the active state).
#pragma once

#include <array>
#include <memory>
#include <optional>
#include <vector>

#include "common/stats.hpp"
#include "core/detectors.hpp"
#include "core/metrics.hpp"
#include "dpm/policy.hpp"
#include "dpm/power_manager.hpp"
#include "fault/hw_faults.hpp"
#include "hw/smartbadge.hpp"
#include "obs/attribution.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/telemetry/snapshotter.hpp"
#include "obs/telemetry/span_profiler.hpp"
#include "obs/trace_recorder.hpp"
#include "policy/governor_base.hpp"
#include "policy/watchdog.hpp"
#include "queue/frame_buffer.hpp"
#include "sim/simulator.hpp"
#include "workload/trace.hpp"

namespace dvs::core {

/// One playback item: a trace (absolute timestamps) and the decoder that
/// services it.  The nominal rates seed adaptive detectors at item start —
/// application-level knowledge (the app and its offline-measured curve),
/// never the clip's actual rates.
struct PlaybackItem {
  workload::FrameTrace trace;
  workload::DecoderModel decoder;
  Hertz nominal_arrival;
  Hertz nominal_service_at_max;
  Seconds end;  ///< absolute end of this item
};

/// Every engine knob shared verbatim between the caller-facing RunOptions
/// and the engine-facing EngineConfig.  The two structs inherit this base,
/// and to_engine_config() copies it in one slice assignment — add a field
/// here and it reaches the engine with no per-field plumbing (the drift
/// that once silently dropped buffer_capacity and wlan_rx_time cannot
/// recur).  Only the CPU model and the detector configuration differ
/// between the layers (pointer-to-shared vs owned value) and stay in the
/// derived structs.
struct EngineSettings {
  DetectorKind detector = DetectorKind::ChangePoint;
  /// Governor policy: a policy::GovernorFactory key ("paper", "max",
  /// "qdpm", ...).  The engine builds one governor per media type through
  /// the factory; "paper" reproduces the paper's controller exactly.
  std::string policy = "paper";
  Seconds target_delay{0.1};
  /// Service-time variability assumed by the frequency policy: 1.0 = the
  /// paper's M/M/1 (Eq. 5); other values use the M/G/1 P-K inversion.
  double service_cv2 = 1.0;
  dpm::DpmPolicyPtr dpm_policy;  ///< null -> NeverSleepPolicy
  Seconds wlan_rx_time{0.002};
  Seconds session_gap_threshold{2.0};
  Seconds dpm_arm_delay{0.5};  ///< hardware-idle filter before the DPM owns the period
  std::size_t buffer_capacity = 0;  ///< 0 = unbounded
  /// > 0: sample the instantaneous whole-badge power on this period into
  /// Metrics::power_trace (for power-profile plots).
  Seconds power_sample_period{0.0};
  std::uint64_t seed = 1;
  /// Graceful-degradation watchdog, armed in every adaptive governor when
  /// enabled (see policy/watchdog.hpp).  Off by default.
  policy::WatchdogConfig watchdog{};
  /// Hardware fault injection (wakeup faults, failed frequency
  /// transitions, stuck rail); the injector draws from a substream of
  /// `seed`.  Empty plan (default) = fault-free hardware.
  fault::HwFaultPlan hw_faults{};
  /// Optional observability: structured trace events fan out to the
  /// recorder's sinks, and run statistics land in the registry.  Both may
  /// be null (the default); an untraced run pays only a pointer test per
  /// instrumentation site.
  obs::TraceRecorder* trace = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
  /// Optional attribution: charges every Joule and every second of frame
  /// delay to a (component, state, frequency step, cause) key; per-key sums
  /// reconcile with the Metrics totals (see obs/attribution.hpp).  One
  /// ledger per run — it is plain single-run state.
  obs::AttributionLedger* ledger = nullptr;
  /// Always-on flight recorder: a fixed ring of compact records costing ~a
  /// store per event, auto-dumped on watchdog escalation, fault injection,
  /// or an exception escaping the run (see obs/flight_recorder.hpp).
  bool flight_recorder = true;
  std::size_t flight_capacity = obs::FlightRecorder::kDefaultCapacity;
  /// Non-empty: arms the auto-dump at this path.
  std::string flight_dump_path;
  /// Optional live telemetry: when both are set, the engine snapshots the
  /// metrics registry (plus instantaneous "live" readings) every
  /// `telemetry_every` sim-seconds into the snapshotter's JSONL sink
  /// (obs/telemetry/snapshotter.hpp).  Most useful together with
  /// `metrics`; without it the snapshots carry only the live readings.
  obs::TelemetrySnapshotter* telemetry = nullptr;
  Seconds telemetry_every{0.0};
  /// Optional self-profiling: hierarchical spans around the engine's event
  /// handlers (obs/telemetry/span_profiler.hpp).  Null (default) costs one
  /// pointer test per handler; the enabled path is budgeted at <= 5% in
  /// bench_perf.  The caller finalizes and writes the profile.
  obs::SpanProfiler* profiler = nullptr;
};

struct EngineConfig : EngineSettings {
  /// The processor model the badge is built around (default: stock
  /// SA-1100; see hw/cpu_catalog.hpp for alternatives).  Item decoders must
  /// be parameterized with this part's max frequency.
  hw::Sa1100 cpu{};
  DetectorFactoryConfig detectors{};
};

class Engine {
 public:
  /// Items must be time-ordered and non-overlapping.
  Engine(EngineConfig cfg, std::vector<PlaybackItem> items);

  /// Runs the whole session and returns the metrics.  Single-shot.
  Metrics run();

  /// Read access for tests.
  [[nodiscard]] const hw::SmartBadge& badge() const { return badge_; }
  [[nodiscard]] const queue::FrameBuffer& buffer() const { return buffer_; }
  [[nodiscard]] const dpm::PowerManager& power_manager() const { return *pm_; }
  /// The governor serving `type`, or null before its first frame arrived.
  /// Interface-typed: callers must not assume a concrete policy.
  [[nodiscard]] const policy::Governor* governor(workload::MediaType type) const {
    return governors_[media_index(type)].get();
  }
  /// The hardware fault injector, or null when the plan is empty.
  [[nodiscard]] const fault::HwFaultInjector* fault_injector() const {
    return injector_.get();
  }
  /// The flight recorder, or null when EngineConfig::flight_recorder is off.
  [[nodiscard]] const obs::FlightRecorder* flight_recorder() const {
    return flight_.get();
  }

 private:
  static constexpr std::size_t kMediaTypes = 2;  ///< Mp3Audio, MpegVideo
  static constexpr std::size_t media_index(workload::MediaType type) {
    return static_cast<std::size_t>(type);
  }

  policy::Governor& governor_for(workload::MediaType type);
  const workload::DecoderModel& decoder_for(workload::MediaType type) const;

  void schedule_arrival_cursor();
  void handle_arrival();
  void ensure_media_context(const PlaybackItem& item);
  void start_wlan_burst(Seconds at);
  void maybe_start_decode(Seconds at);
  void handle_decode_start();
  void handle_decode_complete(workload::Frame frame, Seconds pure_decode,
                              MegaHertz freq);
  void activate_components(workload::MediaType type, Seconds now);
  void deactivate_components(workload::MediaType type, Seconds now);
  void arm_dpm(Seconds now);
  void cancel_arm();
  void schedule_power_sample(Seconds at);
  void schedule_telemetry_snapshot(Seconds at);
  void take_telemetry_snapshot(Seconds now);
  void note_frequency(Seconds now);
  Metrics collect(Seconds end);

  // ---- observability ------------------------------------------------------
  [[nodiscard]] bool tracing() const {
    return cfg_.trace != nullptr && cfg_.trace->active();
  }
  [[nodiscard]] bool observing() const {
    return tracing() || cfg_.metrics != nullptr;
  }
  void install_component_observers();
  void install_accrual_observers();
  void wire_governor_observability(policy::Governor& gov);
  void record_detector_sample(const policy::Governor& gov,
                              std::string_view stream, Seconds now,
                              Seconds interval, Hertz estimate);
  void fill_registry(const Metrics& m);

  EngineConfig cfg_;
  std::vector<PlaybackItem> items_;

  hw::SmartBadge badge_;
  sim::Simulator sim_;
  queue::FrameBuffer buffer_;
  std::unique_ptr<obs::FlightRecorder> flight_;
  std::unique_ptr<dpm::PowerManager> pm_;
  std::unique_ptr<fault::HwFaultInjector> injector_;
  // Indexed by media_index(): governor_for() on the per-frame path is an
  // array load, not a tree walk.  Null until that media type's first frame.
  // Interface-typed so any factory-registered policy can serve.
  std::array<policy::GovernorPtr, kMediaTypes> governors_;

  // Arrival cursor.
  std::size_t item_ = 0;
  std::size_t frame_idx_ = 0;
  std::optional<Seconds> next_arrival_;
  std::optional<Seconds> prev_arrival_;
  std::size_t active_item_ = SIZE_MAX;

  // Decode state.
  bool busy_ = false;
  bool decode_start_pending_ = false;

  // Device readiness after DPM wakeups.
  Seconds device_ready_{0.0};

  // WLAN burst bookkeeping.
  Seconds wlan_busy_until_{0.0};

  // DPM arming.
  sim::EventId arm_event_{};

  // Frequency tracking for metrics.
  TimeWeightedStats freq_tw_;
  Seconds last_freq_note_{0.0};

  std::uint64_t frames_arrived_ = 0;
  std::vector<std::pair<double, double>> power_trace_;
  bool ran_ = false;

  // Observability state (null when metrics are off).
  obs::HistogramMetric* delay_hist_ = nullptr;
  obs::HistogramMetric* decode_hist_ = nullptr;
  obs::HistogramMetric* detect_latency_hist_ = nullptr;
  /// Frame delay as a multiple of the target — the degradation fingerprint
  /// (mass above 1.0 = delay-target violations).
  obs::HistogramMetric* delay_violation_hist_ = nullptr;
  /// Time of the last workload rate change (item start / item switch) not
  /// yet acknowledged by a detector — feeds the detection-latency histogram.
  std::optional<Seconds> rate_change_at_;

  // Self-profiling span tree (ids valid only when profiler_ != nullptr;
  // every use is guarded by the null test in ScopedSpan).
  obs::SpanProfiler* profiler_ = nullptr;
  int span_arrival_ = 0;
  int span_decode_start_ = 0;
  int span_decode_done_ = 0;
  int span_governor_ = 0;
  int span_dpm_idle_ = 0;
  int span_power_sample_ = 0;
  int span_telemetry_ = 0;
};

}  // namespace dvs::core
