#include "core/experiment.hpp"

#include <utility>

#include "common/check.hpp"

namespace dvs::core {

Hertz default_nominal_arrival(workload::MediaType type) {
  // Typical stream rates an application would assume before measuring:
  // 44.1 kHz MP3 (38.3 fr/s), PAL video (25 fr/s).
  return type == workload::MediaType::Mp3Audio ? hertz(38.3) : hertz(25.0);
}

Hertz default_nominal_service(workload::MediaType type) {
  return type == workload::MediaType::Mp3Audio ? hertz(workload::kMp3ReferenceRate)
                                               : hertz(workload::kMpegReferenceRate);
}

EngineConfig to_engine_config(const RunOptions& opts) {
  EngineConfig cfg;
  // The shared knobs travel as one slice; only the two pointer fields need
  // resolving to the engine's owned values.
  static_cast<EngineSettings&>(cfg) = static_cast<const EngineSettings&>(opts);
  if (opts.detector_cfg != nullptr) cfg.detectors = *opts.detector_cfg;
  if (opts.cpu != nullptr) cfg.cpu = *opts.cpu;
  return cfg;
}

Metrics run_single_trace(const workload::FrameTrace& trace,
                         const workload::DecoderModel& decoder,
                         const RunOptions& opts) {
  std::vector<PlaybackItem> items;
  items.push_back(PlaybackItem{trace, decoder,
                               default_nominal_arrival(trace.type()),
                               default_nominal_service(trace.type()),
                               trace.duration()});
  return run_items(std::move(items), opts);
}

Metrics run_items(std::vector<PlaybackItem> items, const RunOptions& opts) {
  Engine engine{to_engine_config(opts), std::move(items)};
  return engine.run();
}

dpm::IdleDistributionPtr default_idle_distribution() {
  return std::make_shared<dpm::ParetoIdle>(1.8, seconds(8.0));
}

Session build_session(const SessionConfig& cfg, const hw::Sa1100& cpu) {
  DVS_CHECK_MSG(cfg.cycles > 0, "build_session: need at least one cycle");
  DVS_CHECK_MSG(!cfg.mp3_labels.empty(), "build_session: empty clip rotation");

  Session session;
  session.idle_model = cfg.idle ? cfg.idle : default_idle_distribution();
  Rng rng{cfg.seed};

  const workload::DecoderModel mp3_dec =
      workload::reference_mp3_decoder(cpu.max_frequency());
  const workload::DecoderModel mpeg_dec =
      workload::reference_mpeg_decoder(cpu.max_frequency());

  Seconds t{0.0};
  for (int c = 0; c < cfg.cycles; ++c) {
    // One audio clip.
    {
      const char label =
          cfg.mp3_labels[static_cast<std::size_t>(c) % cfg.mp3_labels.size()];
      const workload::Mp3Clip clip = workload::mp3_clip(label);
      const std::vector<workload::Mp3Clip> seq{clip};
      workload::FrameTrace trace =
          workload::build_mp3_trace(seq, mp3_dec, rng, cfg.trace_opts).shifted(t);
      const Seconds end = t + clip.duration;
      session.media_time += clip.duration;
      session.items.push_back(PlaybackItem{
          std::move(trace), mp3_dec,
          default_nominal_arrival(workload::MediaType::Mp3Audio),
          default_nominal_service(workload::MediaType::Mp3Audio), end});
      t = end;
    }
    // Idle gap.
    {
      const Seconds gap = session.idle_model->sample(rng);
      session.idle_time += gap;
      t += gap;
    }
    // One video segment (alternating source clips, truncated).
    {
      workload::MpegClip clip =
          (c % 2 == 0) ? workload::football_clip() : workload::terminator2_clip();
      clip.duration = cfg.mpeg_segment;
      workload::FrameTrace trace =
          workload::build_mpeg_trace(clip, mpeg_dec, rng, {}, cfg.trace_opts)
              .shifted(t);
      const Seconds end = t + clip.duration;
      session.media_time += clip.duration;
      session.items.push_back(PlaybackItem{
          std::move(trace), mpeg_dec,
          default_nominal_arrival(workload::MediaType::MpegVideo),
          default_nominal_service(workload::MediaType::MpegVideo), end});
      t = end;
    }
    // Trailing idle gap after the video.
    {
      const Seconds gap = session.idle_model->sample(rng);
      session.idle_time += gap;
      t += gap;
    }
  }
  session.duration = t;
  return session;
}

}  // namespace dvs::core
