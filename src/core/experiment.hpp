// Experiment runners: thin, reusable wrappers around the Engine that the
// bench harnesses, tests and examples share.
//
// Tables 3 and 4 compare detectors on identical workloads, so the callers
// generate a FrameTrace once per seed and run it through run_single_trace
// for each DetectorKind.  Table 5 builds a whole usage session (audio and
// video clips separated by heavy-tailed idle periods) and runs it under the
// four management configurations.
#pragma once

#include <string>
#include <vector>

#include "core/engine.hpp"
#include "core/metrics.hpp"
#include "dpm/idle_model.hpp"
#include "workload/clips.hpp"
#include "workload/trace.hpp"

namespace dvs::core {

/// Options for a single run.  Maps 1:1 onto EngineConfig (see
/// to_engine_config); every field the engine honours is settable here, so
/// nothing is silently dropped between the two layers.
struct RunOptions {
  DetectorKind detector = DetectorKind::ChangePoint;
  /// Governor policy, a policy::GovernorFactory key ("paper", "max",
  /// "qdpm", ...); see EngineConfig::policy.
  std::string policy = "paper";
  Seconds target_delay{0.1};
  /// Queueing model the policy inverts: 1.0 = M/M/1 (paper), else M/G/1.
  double service_cv2 = 1.0;
  dpm::DpmPolicyPtr dpm_policy;  ///< null = never sleep (pure-DVS experiments)
  std::uint64_t seed = 1;
  /// Shared detector configuration; lets callers reuse one change-point
  /// threshold table across many runs.  May be null (a default is used).
  /// Read-only: prepare() it once before sharing (also across threads).
  const DetectorFactoryConfig* detector_cfg = nullptr;
  Seconds dpm_arm_delay{0.5};
  Seconds session_gap_threshold{2.0};
  /// WLAN active burst around each frame reception.
  Seconds wlan_rx_time{0.002};
  /// Frame buffer bound; 0 = unbounded.
  std::size_t buffer_capacity = 0;
  /// > 0: fill Metrics::power_trace with whole-badge power samples.
  Seconds power_sample_period{0.0};
  /// Graceful-degradation watchdog (off unless watchdog.enabled).
  policy::WatchdogConfig watchdog{};
  /// Hardware fault injection plan (empty = fault-free hardware).
  fault::HwFaultPlan hw_faults{};
  /// Non-null: build the badge around this processor model instead of the
  /// stock SA-1100 (hw/cpu_catalog.hpp).  Decoders in the items must use
  /// its max frequency.
  const hw::Sa1100* cpu = nullptr;
  /// Optional observability (see EngineConfig::trace / metrics).
  obs::TraceRecorder* trace = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
  /// Optional energy/delay attribution (see EngineConfig::ledger).
  obs::AttributionLedger* ledger = nullptr;
  /// Always-on flight recorder (see EngineConfig::flight_recorder).
  bool flight_recorder = true;
  std::size_t flight_capacity = obs::FlightRecorder::kDefaultCapacity;
  std::string flight_dump_path;
  /// Live telemetry snapshots (see EngineConfig::telemetry).
  obs::TelemetrySnapshotter* telemetry = nullptr;
  Seconds telemetry_every{0.0};
  /// Hierarchical self-profiling spans (see EngineConfig::profiler).
  obs::SpanProfiler* profiler = nullptr;
};

/// The exact EngineConfig a RunOptions resolves to — the single translation
/// point between the two layers (round-trip-tested so the structs cannot
/// drift apart again).
EngineConfig to_engine_config(const RunOptions& opts);

/// Default nominal (seed) rates per media type: application-level knowledge
/// only, never the clip's actual rates.
Hertz default_nominal_arrival(workload::MediaType type);
Hertz default_nominal_service(workload::MediaType type);

/// Runs one trace through the engine with a matching reference decoder.
Metrics run_single_trace(const workload::FrameTrace& trace,
                         const workload::DecoderModel& decoder,
                         const RunOptions& opts);

/// Runs a pre-built item list (sessions).
Metrics run_items(std::vector<PlaybackItem> items, const RunOptions& opts);

// ---- Table 5 sessions -----------------------------------------------------------

struct SessionConfig {
  int cycles = 6;                     ///< audio-clip + video-segment pairs
  std::string mp3_labels = "ACEFBD";  ///< rotates one clip per cycle
  Seconds mpeg_segment{120.0};        ///< truncated video segment length
  dpm::IdleDistributionPtr idle;      ///< gap distribution (default Pareto)
  workload::TraceOptions trace_opts{};
  std::uint64_t seed = 42;
};

struct Session {
  std::vector<PlaybackItem> items;
  Seconds duration{0.0};
  Seconds media_time{0.0};
  Seconds idle_time{0.0};
  dvs::dpm::IdleDistributionPtr idle_model;
};

/// Default heavy-tailed idle gaps (Pareto shape 1.8, scale 8 s).
dpm::IdleDistributionPtr default_idle_distribution();

/// Builds a usage session: alternating MP3 clips and MPEG segments with
/// idle gaps between items.
Session build_session(const SessionConfig& cfg, const hw::Sa1100& cpu);

}  // namespace dvs::core
