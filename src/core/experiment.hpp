// Experiment runners: thin, reusable wrappers around the Engine that the
// bench harnesses, tests and examples share.
//
// Tables 3 and 4 compare detectors on identical workloads, so the callers
// generate a FrameTrace once per seed and run it through run_single_trace
// for each DetectorKind.  Table 5 builds a whole usage session (audio and
// video clips separated by heavy-tailed idle periods) and runs it under the
// four management configurations.
#pragma once

#include <string>
#include <vector>

#include "core/engine.hpp"
#include "core/metrics.hpp"
#include "dpm/idle_model.hpp"
#include "workload/clips.hpp"
#include "workload/trace.hpp"

namespace dvs::core {

/// Options for a single run.  Inherits every shared engine knob from
/// EngineSettings (see core/engine.hpp) and adds only the two fields whose
/// ownership differs from EngineConfig: callers hand the runner *shared*
/// detector configuration and CPU models by pointer (one threshold table /
/// one badge blueprint reused across thousands of runs), while the engine
/// owns its copies by value.
struct RunOptions : EngineSettings {
  /// Shared detector configuration; lets callers reuse one change-point
  /// threshold table across many runs.  May be null (a default is used).
  /// Read-only: prepare() it once before sharing (also across threads).
  const DetectorFactoryConfig* detector_cfg = nullptr;
  /// Non-null: build the badge around this processor model instead of the
  /// stock SA-1100 (hw/cpu_catalog.hpp).  Decoders in the items must use
  /// its max frequency.
  const hw::Sa1100* cpu = nullptr;
};

/// The exact EngineConfig a RunOptions resolves to — the single translation
/// point between the two layers.  The shared EngineSettings slice is copied
/// wholesale; only the two pointer fields are resolved to values, so a new
/// engine knob cannot be dropped in translation (round-trip-tested anyway).
EngineConfig to_engine_config(const RunOptions& opts);

/// Default nominal (seed) rates per media type: application-level knowledge
/// only, never the clip's actual rates.
Hertz default_nominal_arrival(workload::MediaType type);
Hertz default_nominal_service(workload::MediaType type);

/// Runs one trace through the engine with a matching reference decoder.
Metrics run_single_trace(const workload::FrameTrace& trace,
                         const workload::DecoderModel& decoder,
                         const RunOptions& opts);

/// Runs a pre-built item list (sessions).
Metrics run_items(std::vector<PlaybackItem> items, const RunOptions& opts);

// ---- Table 5 sessions -----------------------------------------------------------

struct SessionConfig {
  int cycles = 6;                     ///< audio-clip + video-segment pairs
  std::string mp3_labels = "ACEFBD";  ///< rotates one clip per cycle
  Seconds mpeg_segment{120.0};        ///< truncated video segment length
  dpm::IdleDistributionPtr idle;      ///< gap distribution (default Pareto)
  workload::TraceOptions trace_opts{};
  std::uint64_t seed = 42;
};

struct Session {
  std::vector<PlaybackItem> items;
  Seconds duration{0.0};
  Seconds media_time{0.0};
  Seconds idle_time{0.0};
  dvs::dpm::IdleDistributionPtr idle_model;
};

/// Default heavy-tailed idle gaps (Pareto shape 1.8, scale 8 s).
dpm::IdleDistributionPtr default_idle_distribution();

/// Builds a usage session: alternating MP3 clips and MPEG segments with
/// idle gaps between items.
Session build_session(const SessionConfig& cfg, const hw::Sa1100& cpu);

}  // namespace dvs::core
