// Result metrics for one simulated run — the numbers the paper's tables
// report (energy in kJ, average total frame delay in seconds) plus the
// supporting detail used by the benches and tests.
#pragma once

#include <array>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/units.hpp"
#include "hw/smartbadge_data.hpp"

namespace dvs::core {

struct Metrics {
  Seconds duration{0.0};
  Joules total_energy{0.0};
  std::array<Joules, hw::kNumBadgeComponents> component_energy{};
  MilliWatts average_power{0.0};

  std::uint64_t frames_arrived = 0;
  std::uint64_t frames_admitted = 0;  ///< arrived minus tail-dropped
  std::uint64_t frames_decoded = 0;
  std::uint64_t frames_dropped = 0;

  Seconds mean_frame_delay{0.0};  ///< the paper's "Fr. Delay" column
  Seconds max_frame_delay{0.0};
  double mean_buffered_frames = 0.0;

  int cpu_switches = 0;
  MegaHertz mean_cpu_frequency{0.0};  ///< time-weighted over the whole run

  int dpm_idle_periods = 0;
  int dpm_sleeps = 0;
  int dpm_wakeups = 0;
  Seconds dpm_total_wakeup_delay{0.0};

  // Fault-injection / graceful degradation (zero on fault-free runs).
  std::uint64_t faults_injected = 0;     ///< hardware faults that fired
  int watchdog_escalations = 0;
  int watchdog_recoveries = 0;
  Seconds time_in_degraded{0.0};

  /// (time s, whole-badge power mW) samples; filled only when
  /// EngineConfig::power_sample_period > 0.
  std::vector<std::pair<double, double>> power_trace;

  /// Energy in kilojoules, as the paper's tables print it.
  [[nodiscard]] double energy_kj() const { return total_energy.value() / 1e3; }

  /// Joules per frame actually serviced — an overload run must not look
  /// cheaper per frame just because frames were tail-dropped, so the
  /// denominator is decoded (serviced) frames, never offered ones.
  [[nodiscard]] double energy_per_decoded_frame() const {
    return frames_decoded == 0
               ? 0.0
               : total_energy.value() / static_cast<double>(frames_decoded);
  }

  /// Energy of the SA-1100 alone (active + idle + sleep states) — the
  /// quantity the offline-optimal voltage-schedule oracle lower-bounds, so
  /// competitive ratios compare like against like.
  [[nodiscard]] Joules cpu_energy() const {
    return component_energy[static_cast<std::size_t>(hw::BadgeComponentId::Cpu)];
  }

  /// Energy of the processing subsystem (SA-1100 + FLASH + SRAM + DRAM) —
  /// the part DVS acts on directly; radio and display are reported in the
  /// whole-badge total.
  [[nodiscard]] Joules cpu_memory_energy() const {
    return component_energy[static_cast<std::size_t>(hw::BadgeComponentId::Cpu)] +
           component_energy[static_cast<std::size_t>(hw::BadgeComponentId::Flash)] +
           component_energy[static_cast<std::size_t>(hw::BadgeComponentId::Sram)] +
           component_energy[static_cast<std::size_t>(hw::BadgeComponentId::Dram)];
  }
};

}  // namespace dvs::core
