#include "core/scenario.hpp"

#include <cstdio>
#include <stdexcept>
#include <utility>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "dpm/adaptive.hpp"
#include "dpm/tismdp_solver.hpp"
#include "hw/cpu_catalog.hpp"
#include "workload/work_model.hpp"

namespace dvs::core {

std::uint64_t mix_seed(std::uint64_t a, std::uint64_t b) {
  // The shared SplitMix64-finalizer mixer; kept here as a named symbol so
  // existing core callers keep linking against core::mix_seed.
  return ::dvs::mix_seed(a, b);
}

namespace {

std::string num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", v);
  return buf;
}

}  // namespace

// ---- workload axis --------------------------------------------------------------

std::string WorkloadSpec::name() const {
  switch (kind) {
    case WorkloadKind::Mp3Sequence:
      return "mp3:" + mp3_labels;
    case WorkloadKind::MpegClip:
      return mpeg_limit.value() > 0.0
                 ? "mpeg:" + mpeg_clip + "@" + num(mpeg_limit.value()) + "s"
                 : "mpeg:" + mpeg_clip;
    case WorkloadKind::Session:
      return "session:" + std::to_string(session.cycles) + "x" +
             num(session.mpeg_segment.value()) + "s";
  }
  return "?";
}

Seconds WorkloadSpec::default_delay_target() const {
  // Table 3 uses 0.15 s for audio, Table 4/5 0.1 s for video and sessions.
  return kind == WorkloadKind::Mp3Sequence ? seconds(0.15) : seconds(0.1);
}

WorkloadSpec WorkloadSpec::mp3(std::string labels) {
  WorkloadSpec w;
  w.kind = WorkloadKind::Mp3Sequence;
  w.mp3_labels = std::move(labels);
  return w;
}

WorkloadSpec WorkloadSpec::mpeg(std::string clip, Seconds limit) {
  WorkloadSpec w;
  w.kind = WorkloadKind::MpegClip;
  w.mpeg_clip = std::move(clip);
  w.mpeg_limit = limit;
  return w;
}

WorkloadSpec WorkloadSpec::usage_session(SessionConfig cfg) {
  WorkloadSpec w;
  w.kind = WorkloadKind::Session;
  w.session = std::move(cfg);
  return w;
}

// ---- DPM axis -------------------------------------------------------------------

std::string to_string(DpmKind kind) {
  switch (kind) {
    case DpmKind::None: return "none";
    case DpmKind::Timeout: return "timeout";
    case DpmKind::Renewal: return "renewal";
    case DpmKind::Tismdp: return "tismdp";
    case DpmKind::SolverTismdp: return "tismdp-dp";
    case DpmKind::Adaptive: return "adaptive";
    case DpmKind::Oracle: return "oracle";
  }
  return "?";
}

std::optional<DpmKind> dpm_kind_from_string(std::string_view name) {
  if (name == "none") return DpmKind::None;
  if (name == "timeout") return DpmKind::Timeout;
  if (name == "renewal") return DpmKind::Renewal;
  if (name == "tismdp") return DpmKind::Tismdp;
  if (name == "tismdp-dp") return DpmKind::SolverTismdp;
  if (name == "adaptive") return DpmKind::Adaptive;
  if (name == "oracle") return DpmKind::Oracle;
  return std::nullopt;
}

std::string DpmSpec::name() const {
  switch (kind) {
    case DpmKind::Timeout:
      return "timeout(" + num(timeout_standby.value()) + "s," +
             num(timeout_off.value()) + "s)";
    case DpmKind::Tismdp:
    case DpmKind::SolverTismdp:
    case DpmKind::Adaptive:
      return to_string(kind) + "(" + num(max_delay.value()) + "s)";
    default:
      return to_string(kind);
  }
}

dpm::DpmPolicyPtr make_dpm_policy(const DpmSpec& spec,
                                  const dpm::DpmCostModel& costs,
                                  const dpm::IdleDistributionPtr& idle) {
  switch (spec.kind) {
    case DpmKind::None:
      return nullptr;
    case DpmKind::Timeout:
      return std::make_shared<dpm::FixedTimeoutPolicy>(spec.timeout_standby,
                                                       spec.timeout_off);
    case DpmKind::Renewal:
      return std::make_shared<dpm::RenewalPolicy>(costs, idle);
    case DpmKind::Tismdp:
      return std::make_shared<dpm::TismdpPolicy>(costs, idle, spec.max_delay);
    case DpmKind::SolverTismdp:
      return std::make_shared<dpm::SolverTismdpPolicy>(costs, idle,
                                                       spec.max_delay);
    case DpmKind::Adaptive: {
      dpm::AdaptiveDpmConfig acfg;
      acfg.max_expected_delay = spec.max_delay;
      return std::make_shared<dpm::AdaptiveDpmPolicy>(costs, acfg);
    }
    case DpmKind::Oracle:
      return std::make_shared<dpm::OraclePolicy>(costs);
  }
  return nullptr;
}

// ---- the grid -------------------------------------------------------------------

std::string RunPoint::label() const {
  std::string l = workload.name() + "/" + core::to_string(detector) + "/" +
                  dpm.name() + "/r" + std::to_string(replicate);
  if (policy != "paper") l += "/p:" + policy;
  if (!faults.none()) l += "/f:" + faults.name;
  return l;
}

std::size_t ScenarioSpec::num_cells() const {
  return workloads.size() * cpus.size() * policies.size() *
         service_cv2s.size() * delay_targets.size() * faults.size() *
         dpm.size() * detectors.size();
}

std::size_t ScenarioSpec::num_points() const {
  return num_cells() * static_cast<std::size_t>(replicates);
}

std::vector<RunPoint> ScenarioSpec::expand() const {
  DVS_CHECK_MSG(!workloads.empty(), "ScenarioSpec: no workloads");
  DVS_CHECK_MSG(!detectors.empty(), "ScenarioSpec: no detectors");
  DVS_CHECK_MSG(!dpm.empty(), "ScenarioSpec: no dpm axis");
  DVS_CHECK_MSG(!cpus.empty(), "ScenarioSpec: no cpus");
  DVS_CHECK_MSG(!delay_targets.empty(), "ScenarioSpec: no delay targets");
  DVS_CHECK_MSG(!service_cv2s.empty(), "ScenarioSpec: no cv2 axis");
  DVS_CHECK_MSG(!faults.empty(), "ScenarioSpec: no fault axis");
  DVS_CHECK_MSG(!policies.empty(), "ScenarioSpec: no policy axis");
  DVS_CHECK_MSG(replicates > 0, "ScenarioSpec: replicates must be >= 1");

  std::vector<RunPoint> points;
  points.reserve(num_points());
  std::size_t cell = 0;
  for (std::size_t w = 0; w < workloads.size(); ++w) {
    for (std::size_t c = 0; c < cpus.size(); ++c) {
      for (std::size_t pol = 0; pol < policies.size(); ++pol) {
        for (double cv2 : service_cv2s) {
          for (Seconds delay : delay_targets) {
            for (std::size_t f = 0; f < faults.size(); ++f) {
              for (const DpmSpec& d : dpm) {
                for (DetectorKind det : detectors) {
                  for (int r = 0; r < replicates; ++r) {
                    RunPoint p;
                    p.index = points.size();
                    p.cell = cell;
                    p.replicate = r;
                    p.workload_idx = w;
                    p.cpu_idx = c;
                    p.fault_idx = f;
                    p.policy_idx = pol;
                    p.workload = workloads[w];
                    p.detector = det;
                    p.dpm = d;
                    p.faults = faults[f];
                    p.cpu = cpus[c];
                    p.policy = policies[pol];
                    p.delay_target = delay.value() > 0.0
                                         ? delay
                                         : workloads[w].default_delay_target();
                    p.service_cv2 = cv2;
                    // Trace seed: shared by every algorithm of the same
                    // (cpu, workload, replicate) row — policies included —
                    // so everything competes on identical traces; disjoint
                    // from the engine substreams via the low bit.
                    const std::uint64_t row =
                        ((c * 4096 + w) << 20) | static_cast<std::uint64_t>(r);
                    p.trace_seed = mix_seed(base_seed, row << 1);
                    p.engine_seed = mix_seed(base_seed, (p.index << 1) | 1);
                    // Fault substream: a function of the trace seed and the
                    // fault index only, so detectors still compete on the
                    // same perturbed trace within a row.
                    p.fault_seed = mix_seed(p.trace_seed, f + 1);
                    points.push_back(std::move(p));
                  }
                  ++cell;
                }
              }
            }
          }
        }
      }
    }
  }
  return points;
}

hw::Sa1100 cpu_by_name(std::string_view name) {
  if (name == "sa1100") return hw::smartbadge_sa1100();
  if (name == "crusoe" || name == "crusoe-like") return hw::crusoe_like();
  if (name == "frequency-only") return hw::frequency_only_sa1100();
  throw std::invalid_argument("cpu_by_name: unknown cpu '" + std::string(name) +
                              "' (try sa1100, crusoe, frequency-only)");
}

// ---- built-in registry ----------------------------------------------------------

namespace {

std::vector<ScenarioSpec> make_builtins() {
  std::vector<ScenarioSpec> specs;

  {
    ScenarioSpec s;
    s.name = "table3";
    s.title = "Table 3: MP3 audio DVS";
    s.paper_ref = "Simunic et al., DAC'01, Table 3";
    s.workloads = {WorkloadSpec::mp3("ACEFBD"), WorkloadSpec::mp3("BADECF"),
                   WorkloadSpec::mp3("CEDAFB")};
    s.detectors = {DetectorKind::Ideal, DetectorKind::ChangePoint,
                   DetectorKind::ExpAverage, DetectorKind::Max};
    s.delay_targets = {seconds(0.15)};
    s.replicates = 5;
    s.base_seed = 3;
    specs.push_back(std::move(s));
  }
  {
    ScenarioSpec s;
    s.name = "table4";
    s.title = "Table 4: MPEG video DVS";
    s.paper_ref = "Simunic et al., DAC'01, Table 4";
    s.workloads = {WorkloadSpec::mpeg("football"),
                   WorkloadSpec::mpeg("terminator2")};
    s.detectors = {DetectorKind::Ideal, DetectorKind::ChangePoint,
                   DetectorKind::ExpAverage, DetectorKind::Max};
    s.delay_targets = {seconds(0.1)};
    s.replicates = 5;
    s.base_seed = 4;
    specs.push_back(std::move(s));
  }
  {
    // The four management configurations fall out of the grid: with the
    // detector axis {Max, ChangePoint} and the DPM axis {none, tismdp},
    // cells enumerate None, DVS, DPM, Both in that order.
    ScenarioSpec s;
    s.name = "table5";
    s.title = "Table 5: DPM and DVS";
    s.paper_ref = "Simunic et al., DAC'01, Table 5 (combined savings ~3x)";
    SessionConfig scfg;
    scfg.cycles = 8;
    scfg.mpeg_segment = seconds(45.0);
    scfg.idle = std::make_shared<dpm::ParetoIdle>(1.8, seconds(70.0));
    s.workloads = {WorkloadSpec::usage_session(scfg)};
    s.detectors = {DetectorKind::Max, DetectorKind::ChangePoint};
    DpmSpec tismdp;
    tismdp.kind = DpmKind::Tismdp;
    tismdp.max_delay = seconds(0.5);
    s.dpm = {DpmSpec{}, tismdp};
    s.base_seed = 505;
    specs.push_back(std::move(s));
  }
  {
    ScenarioSpec s;
    s.name = "ablation-delay-target";
    s.title = "Ablation: delay target (Equation 5 constant)";
    s.paper_ref = "Simunic et al., DAC'01, Section 3.1 / Tables 3-4 setup";
    s.workloads = {WorkloadSpec::mp3("ACEFBD")};
    s.delay_targets = {seconds(0.05), seconds(0.10), seconds(0.15),
                       seconds(0.25), seconds(0.50), seconds(1.00)};
    s.base_seed = 1414;
    specs.push_back(std::move(s));
  }
  {
    ScenarioSpec s;
    s.name = "ablation-mg1";
    s.title = "Ablation: queueing model in the frequency policy";
    s.paper_ref = "Simunic et al., DAC'01, Section 3.1 (general-distribution"
                  " caveat)";
    s.workloads = {WorkloadSpec::mp3("ACEFBD")};
    s.delay_targets = {seconds(0.15)};
    s.service_cv2s = {1.0, 0.25, workload::Mp3Work{}.cv2(), 0.0};
    s.base_seed = 777;
    specs.push_back(std::move(s));
  }
  {
    ScenarioSpec s;
    s.name = "ablation-voltage-range";
    s.title = "Ablation: DVS win vs processor voltage range";
    s.paper_ref = "Simunic et al., DAC'01, Section 1 (Crusoe reference) —"
                  " what-if study";
    s.workloads = {WorkloadSpec::mp3("ACEFBD")};
    s.detectors = {DetectorKind::Max, DetectorKind::ChangePoint};
    s.cpus = {"sa1100", "crusoe", "frequency-only"};
    s.delay_targets = {seconds(0.15)};
    s.base_seed = 4040;
    specs.push_back(std::move(s));
  }
  {
    // Simulated-session counterpart of the analytic DPM-policy table: every
    // policy family across replicated idle-heavy sessions, DVS held at Max
    // so the idle mechanism is isolated.
    ScenarioSpec s;
    s.name = "ablation-dpm-policies";
    s.title = "Ablation: DPM policy family on a simulated session";
    s.paper_ref = "Simunic et al., DAC'01, Section 3 (renewal vs TISMDP"
                  " models) + refs [2,3]";
    SessionConfig scfg;
    scfg.cycles = 4;
    scfg.mpeg_segment = seconds(30.0);
    scfg.idle = std::make_shared<dpm::ParetoIdle>(1.8, seconds(60.0));
    s.workloads = {WorkloadSpec::usage_session(scfg)};
    s.detectors = {DetectorKind::Max};
    DpmSpec t1;
    t1.kind = DpmKind::Timeout;
    t1.timeout_standby = seconds(1.0);
    t1.timeout_off = seconds(10.0);
    DpmSpec t2;
    t2.kind = DpmKind::Timeout;
    t2.timeout_standby = seconds(30.0);
    t2.timeout_off = seconds(300.0);
    DpmSpec renewal;
    renewal.kind = DpmKind::Renewal;
    DpmSpec tismdp_tight;
    tismdp_tight.kind = DpmKind::Tismdp;
    tismdp_tight.max_delay = seconds(0.1);
    DpmSpec tismdp;
    tismdp.kind = DpmKind::Tismdp;
    tismdp.max_delay = seconds(0.5);
    DpmSpec adaptive;
    adaptive.kind = DpmKind::Adaptive;
    adaptive.max_delay = seconds(0.5);
    DpmSpec oracle;
    oracle.kind = DpmKind::Oracle;
    s.dpm = {DpmSpec{}, t1, t2, renewal, tismdp_tight, tismdp, adaptive, oracle};
    s.replicates = 2;
    s.base_seed = 606;
    specs.push_back(std::move(s));
  }
  {
    // ROADMAP item 2: every registered governor policy on the same trace
    // grid, with the offline-optimal oracle solved per trace so each cell
    // carries a competitive-ratio column.  Short clips keep the O(n^2)
    // oracle solve and the CI smoke cheap.
    ScenarioSpec s;
    s.name = "policy_shootout";
    s.title = "Policy shootout: paper vs Q-DPM vs max, offline-optimal oracle";
    s.paper_ref = "ROADMAP item 2; Li/Yao/Yuan optimal schedules + Q-DPM"
                  " (PAPERS.md)";
    s.workloads = {WorkloadSpec::mp3("A"),
                   WorkloadSpec::mpeg("football", seconds(45.0))};
    s.policies = {"paper", "qdpm", "max"};
    s.detectors = {DetectorKind::ChangePoint};
    s.replicates = 3;
    s.base_seed = 9090;
    s.oracle = true;
    s.detector_cfg.change_point.mc_windows = 500;
    specs.push_back(std::move(s));
  }
  {
    // Small smoke scenario for CLI / CI: one short audio clip, governor vs
    // pinned-max, two replicates.
    ScenarioSpec s;
    s.name = "quick";
    s.title = "Quick smoke sweep: clip A, change-point vs max";
    s.paper_ref = "Simunic et al., DAC'01, Tables 2/3 setup (reduced)";
    s.workloads = {WorkloadSpec::mp3("A")};
    s.detectors = {DetectorKind::ChangePoint, DetectorKind::Max};
    s.replicates = 2;
    s.base_seed = 7;
    s.detector_cfg.change_point.mc_windows = 500;
    specs.push_back(std::move(s));
  }
  return specs;
}

}  // namespace

std::span<const ScenarioSpec> builtin_scenarios() {
  static const std::vector<ScenarioSpec> specs = make_builtins();
  return specs;
}

const ScenarioSpec* find_scenario(std::string_view name) {
  for (const ScenarioSpec& s : builtin_scenarios()) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

}  // namespace dvs::core
