// Declarative experiment scenarios: the shape shared by every paper
// artifact (Tables 2-5, Figures 4-10, the ablations) is "run the Engine
// over a grid of detector x DPM policy x CPU x delay target x workload,
// replicated over seeds".  A ScenarioSpec states that grid once; expand()
// turns it into independent RunPoints that the SweepRunner (core/sweep.hpp)
// executes serially or in parallel with bit-identical results.
//
// Axis semantics follow the paper's methodology:
//  * Detectors within one (workload, cpu, replicate) cell row share the
//    same generated trace — Tables 3/4 compare algorithms "on the same
//    inputs" — so the trace seed depends only on those three indices.
//  * Every point gets its own engine seed (hash of base_seed and the point
//    index), an independent substream for randomized DPM policies.
//  * DPM policies are stateful (adaptive ones learn); a spec therefore
//    carries a declarative DpmSpec per axis value and each point
//    instantiates a fresh policy object.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/detectors.hpp"
#include "core/experiment.hpp"
#include "dpm/cost_model.hpp"
#include "dpm/idle_model.hpp"
#include "dpm/policy.hpp"
#include "fault/fault_spec.hpp"

namespace dvs::core {

/// Deterministic 64-bit seed mixer (SplitMix64 finalizer over a ^ f(b)):
/// the per-point RNG substream scheme, stable across platforms and runs.
/// Delegates to dvs::mix_seed (common/rng.hpp), the shared implementation
/// also used by policies that need substreams below the core layer.
std::uint64_t mix_seed(std::uint64_t a, std::uint64_t b);

// ---- workload axis --------------------------------------------------------------

enum class WorkloadKind {
  Mp3Sequence,  ///< Table 2 clip labels played back to back (Table 3 setup)
  MpegClip,     ///< one video clip, optionally truncated (Table 4 setup)
  Session       ///< mixed audio/video/idle usage session (Table 5 setup)
};

struct WorkloadSpec {
  WorkloadKind kind = WorkloadKind::Mp3Sequence;
  std::string mp3_labels = "ACEFBD";   ///< Mp3Sequence: Table 2 labels
  std::string mpeg_clip = "football";  ///< MpegClip: football | terminator2
  Seconds mpeg_limit{0.0};             ///< MpegClip: > 0 truncates the clip
  SessionConfig session{};             ///< Session (seed overridden per point)

  /// Cell label, e.g. "mp3:ACEFBD", "mpeg:football@45s", "session:8x45s".
  [[nodiscard]] std::string name() const;
  /// Default delay target for this workload's media (0.15 s audio, 0.1 s
  /// video/session), the paper's Tables 3/4 setup.
  [[nodiscard]] Seconds default_delay_target() const;

  static WorkloadSpec mp3(std::string labels);
  static WorkloadSpec mpeg(std::string clip, Seconds limit = Seconds{0.0});
  static WorkloadSpec usage_session(SessionConfig cfg);
};

// ---- DPM axis -------------------------------------------------------------------

enum class DpmKind { None, Timeout, Renewal, Tismdp, SolverTismdp, Adaptive, Oracle };

std::string to_string(DpmKind kind);
/// Parses the CLI spelling ("none", "timeout", "renewal", "tismdp",
/// "tismdp-dp", "adaptive", "oracle"); nullopt for unknown names.
std::optional<DpmKind> dpm_kind_from_string(std::string_view name);

struct DpmSpec {
  DpmKind kind = DpmKind::None;
  Seconds max_delay{0.5};        ///< TISMDP / adaptive expected-delay bound
  Seconds timeout_standby{2.0};  ///< Timeout: standby after this idle time
  Seconds timeout_off{30.0};     ///< Timeout: off after this idle time

  [[nodiscard]] std::string name() const;
};

/// Instantiates a fresh policy for one run.  Policies are stateful, so
/// concurrent runs must never share instances — each RunPoint calls this.
/// Returns null for DpmKind::None (engine then never sleeps).
dpm::DpmPolicyPtr make_dpm_policy(const DpmSpec& spec,
                                  const dpm::DpmCostModel& costs,
                                  const dpm::IdleDistributionPtr& idle);

// ---- the grid -------------------------------------------------------------------

/// One fully-resolved grid cell x replicate: everything needed to execute
/// the run, independent of every other point.
struct RunPoint {
  std::size_t index = 0;  ///< position in expansion order
  std::size_t cell = 0;   ///< cell id; replicates of one cell share it
  int replicate = 0;

  std::size_t workload_idx = 0;  ///< index into ScenarioSpec::workloads
  std::size_t cpu_idx = 0;       ///< index into ScenarioSpec::cpus
  std::size_t fault_idx = 0;     ///< index into ScenarioSpec::faults
  std::size_t policy_idx = 0;    ///< index into ScenarioSpec::policies
  WorkloadSpec workload;
  DetectorKind detector = DetectorKind::ChangePoint;
  DpmSpec dpm;
  fault::FaultSpec faults;
  std::string cpu;
  /// Governor policy (policy::GovernorFactory key, e.g. "paper", "qdpm").
  std::string policy = "paper";
  Seconds delay_target{0.1};
  double service_cv2 = 1.0;

  /// Workload generation seed: mix(base_seed, cpu/workload/replicate) —
  /// shared by every detector/DPM/delay/cv2 combination of the same row so
  /// algorithms compete on identical traces.
  std::uint64_t trace_seed = 0;
  /// Engine seed: mix(base_seed, point index) — an independent substream
  /// per point for randomized policies and wakeup-time draws.
  std::uint64_t engine_seed = 0;
  /// Fault-transform seed: mix(trace_seed, fault index) — shared by every
  /// detector of the same row and fault (algorithms still compete on
  /// identical perturbed traces), distinct per fault spec.
  std::uint64_t fault_seed = 0;

  /// Human label, e.g. "mp3:ACEFBD/Change Point/tismdp(0.5s)/r0".
  [[nodiscard]] std::string label() const;
};

/// A declarative sweep: the cross product of the axes below, replicated.
/// Empty axes get the documented defaults on expand().
struct ScenarioSpec {
  std::string name;       ///< registry key, e.g. "table5"
  std::string title;      ///< printed header
  std::string paper_ref;  ///< which artifact this reproduces

  std::vector<WorkloadSpec> workloads;
  std::vector<DetectorKind> detectors{DetectorKind::ChangePoint};
  std::vector<DpmSpec> dpm{DpmSpec{}};
  /// Fault axis; the default single "none" spec leaves the grid exactly as
  /// it was before faults existed (same cells, seeds and results).
  std::vector<fault::FaultSpec> faults{fault::FaultSpec{}};
  std::vector<std::string> cpus{"sa1100"};  ///< hw/cpu_catalog names
  /// Governor policy axis (policy::GovernorFactory keys); the default
  /// single "paper" entry leaves the grid exactly as it was before the axis
  /// existed (same cells, seeds and results).  Policies of one row share
  /// the trace seed, so they compete on identical inputs.
  std::vector<std::string> policies{"paper"};
  /// Delay targets; a 0 entry means the workload's per-media default.
  std::vector<Seconds> delay_targets{Seconds{0.0}};
  std::vector<double> service_cv2s{1.0};
  int replicates = 1;
  std::uint64_t base_seed = 1;

  /// When true the sweep also solves the offline-optimal voltage schedule
  /// (policy::OptimalOracle, O(n^2) in the trace length) once per workload
  /// asset and reports each point's competitive ratio: measured CPU energy
  /// over the oracle's discrete-step lower bound.
  bool oracle = false;

  /// Shared detector configuration (the sweep prepares its own copy once;
  /// the spec itself stays immutable during a run).
  DetectorFactoryConfig detector_cfg{};

  [[nodiscard]] std::size_t num_cells() const;
  [[nodiscard]] std::size_t num_points() const;

  /// Expands the grid in deterministic order: workload (outer) -> cpu ->
  /// policy -> cv2 -> delay -> fault -> dpm -> detector -> replicate
  /// (inner).
  [[nodiscard]] std::vector<RunPoint> expand() const;
};

/// Resolves a catalog CPU by name: "sa1100", "crusoe", "frequency-only".
/// Throws std::invalid_argument for unknown names.
hw::Sa1100 cpu_by_name(std::string_view name);

// ---- built-in registry ----------------------------------------------------------

/// The paper's table/ablation sweeps as ready-to-run specs ("table3",
/// "table4", "table5", "ablation-delay-target", "ablation-mg1",
/// "ablation-voltage-range", "ablation-dpm-policies", "quick").
std::span<const ScenarioSpec> builtin_scenarios();

/// Lookup by name; nullptr when absent.
const ScenarioSpec* find_scenario(std::string_view name);

}  // namespace dvs::core
