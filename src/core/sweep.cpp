#include "core/sweep.hpp"

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <exception>
#include <fstream>
#include <iostream>
#include <map>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <utility>

#include "common/check.hpp"
#include "fault/trace_transforms.hpp"
#include "hw/smartbadge.hpp"
#include "policy/optimal_oracle.hpp"
#include "workload/clips.hpp"
#include "workload/trace.hpp"

namespace dvs::core {

int resolve_jobs(int jobs) {
  if (jobs > 0) return jobs;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

void parallel_for(std::size_t n, int jobs,
                  const std::function<void(std::size_t)>& fn) {
  const std::size_t workers =
      std::min(static_cast<std::size_t>(resolve_jobs(jobs)), n);
  if (n == 0) return;
  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  // Each worker owns a contiguous index range and pops from its front; an
  // idle worker steals from the *back* of the victim with the most work
  // left.  Units are whole simulations, so stealing one index at a time is
  // granular enough.
  struct Range {
    std::mutex m;
    std::size_t begin = 0;
    std::size_t end = 0;
  };
  std::vector<Range> ranges(workers);
  const std::size_t chunk = n / workers;
  const std::size_t extra = n % workers;
  std::size_t at = 0;
  for (std::size_t w = 0; w < workers; ++w) {
    ranges[w].begin = at;
    at += chunk + (w < extra ? 1 : 0);
    ranges[w].end = at;
  }

  std::atomic<bool> stop{false};
  std::exception_ptr first_error;
  std::mutex error_m;

  auto worker = [&](std::size_t self) {
    for (;;) {
      if (stop.load(std::memory_order_relaxed)) return;
      std::size_t i = n;  // sentinel: nothing claimed yet
      {
        std::lock_guard<std::mutex> lk(ranges[self].m);
        if (ranges[self].begin < ranges[self].end) i = ranges[self].begin++;
      }
      if (i == n) {
        std::size_t victim = workers;
        std::size_t most = 0;
        for (std::size_t v = 0; v < workers; ++v) {
          if (v == self) continue;
          std::lock_guard<std::mutex> lk(ranges[v].m);
          const std::size_t left = ranges[v].end - ranges[v].begin;
          if (left > most) {
            most = left;
            victim = v;
          }
        }
        if (victim == workers) return;  // everything drained
        {
          std::lock_guard<std::mutex> lk(ranges[victim].m);
          if (ranges[victim].begin < ranges[victim].end) {
            i = --ranges[victim].end;
          }
        }
        if (i == n) continue;  // lost the race; rescan
      }
      try {
        fn(i);
      } catch (...) {
        {
          std::lock_guard<std::mutex> lk(error_m);
          if (!first_error) first_error = std::current_exception();
        }
        stop.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(workers - 1);
  for (std::size_t w = 1; w < workers; ++w) threads.emplace_back(worker, w);
  worker(0);
  for (std::thread& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

double t95_quantile(std::size_t df) {
  // Two-sided 95% (upper 97.5%) Student-t critical values, df = 1..30.
  static constexpr double kTable[30] = {
      12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
      2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
      2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042};
  if (df == 0) return 0.0;
  if (df <= 30) return kTable[df - 1];
  return 1.960;
}

Aggregate aggregate(const RunningStats& s) {
  Aggregate a;
  a.n = s.count();
  if (a.n == 0) return a;
  a.mean = s.mean();
  if (a.n >= 2) {
    a.stddev = s.stddev();
    a.ci95_half =
        t95_quantile(a.n - 1) * a.stddev / std::sqrt(static_cast<double>(a.n));
  }
  return a;
}

CpuAsset build_cpu_asset(const std::string& name) {
  CpuAsset a{cpu_by_name(name), {}};
  const hw::SmartBadge badge{a.cpu};
  a.costs = dpm::smartbadge_cost_model(badge);
  return a;
}

WorkloadAsset build_workload_asset(const WorkloadSpec& w,
                                   const hw::Sa1100& cpu,
                                   std::uint64_t trace_seed,
                                   const fault::FaultSpec& faults,
                                   std::uint64_t fault_seed) {
  WorkloadAsset asset;
  // Workload fault transforms run here, once per shared asset: every
  // detector/DPM combination of the same row and fault spec sees the exact
  // same perturbed trace (the Tables-3/4 "same inputs" contract survives
  // fault injection).  One Rng walks the items in order — deterministic
  // because the item list itself is deterministic in trace_seed.
  Rng fault_rng{fault_seed};
  const auto perturb = [&](workload::FrameTrace trace) {
    if (faults.trace_faults.empty()) return trace;
    return fault::apply_faults(trace, faults.trace_faults, fault_rng);
  };
  switch (w.kind) {
    case WorkloadKind::Mp3Sequence: {
      const workload::DecoderModel dec =
          workload::reference_mp3_decoder(cpu.max_frequency());
      Rng rng{trace_seed};
      workload::FrameTrace trace = perturb(
          workload::build_mp3_trace(workload::mp3_sequence(w.mp3_labels), dec,
                                    rng));
      const Seconds end = trace.duration();
      auto items = std::make_shared<std::vector<PlaybackItem>>();
      items->push_back(PlaybackItem{
          std::move(trace), dec,
          default_nominal_arrival(workload::MediaType::Mp3Audio),
          default_nominal_service(workload::MediaType::Mp3Audio), end});
      asset.items = std::move(items);
      asset.idle = default_idle_distribution();
      break;
    }
    case WorkloadKind::MpegClip: {
      const workload::DecoderModel dec =
          workload::reference_mpeg_decoder(cpu.max_frequency());
      workload::MpegClip clip = w.mpeg_clip == "terminator2"
                                    ? workload::terminator2_clip()
                                    : workload::football_clip();
      if (w.mpeg_clip != "football" && w.mpeg_clip != "terminator2") {
        throw std::invalid_argument("WorkloadSpec: unknown mpeg clip '" +
                                    w.mpeg_clip + "'");
      }
      if (w.mpeg_limit.value() > 0.0) {
        clip.duration =
            seconds(std::min(w.mpeg_limit.value(), clip.duration.value()));
      }
      Rng rng{trace_seed};
      workload::FrameTrace trace =
          perturb(workload::build_mpeg_trace(clip, dec, rng));
      const Seconds end = trace.duration();
      auto items = std::make_shared<std::vector<PlaybackItem>>();
      items->push_back(PlaybackItem{
          std::move(trace), dec,
          default_nominal_arrival(workload::MediaType::MpegVideo),
          default_nominal_service(workload::MediaType::MpegVideo), end});
      asset.items = std::move(items);
      asset.idle = default_idle_distribution();
      break;
    }
    case WorkloadKind::Session: {
      SessionConfig cfg = w.session;
      cfg.seed = trace_seed;
      Session session = build_session(cfg, cpu);
      if (!faults.trace_faults.empty()) {
        for (PlaybackItem& item : session.items) {
          // Per-item perturbation; the item's scheduled end is preserved so
          // the session timeline (idle gaps included) stays intact.
          item.trace = perturb(std::move(item.trace));
        }
      }
      asset.items = std::make_shared<const std::vector<PlaybackItem>>(
          std::move(session.items));
      asset.idle = session.idle_model;
      break;
    }
  }
  return asset;
}

RunOptions assemble_run_options(const RunAssembly& a, const CpuAsset& cpu,
                                const dpm::IdleDistributionPtr& idle,
                                const DetectorFactoryConfig& detector_cfg) {
  RunOptions opts;
  opts.detector = a.detector;
  opts.policy = a.policy;
  opts.target_delay = a.delay_target;
  opts.service_cv2 = a.service_cv2;
  opts.detector_cfg = &detector_cfg;
  opts.dpm_policy = make_dpm_policy(a.dpm, cpu.costs, idle);
  opts.seed = a.engine_seed;
  opts.cpu = &cpu.cpu;
  if (a.faults != nullptr) {
    opts.watchdog = a.faults->watchdog;
    opts.hw_faults = a.faults->hw;
  }
  return opts;
}

RunOptions assemble_run_options(const RunPoint& p, const CpuAsset& cpu,
                                const dpm::IdleDistributionPtr& idle,
                                const DetectorFactoryConfig& detector_cfg) {
  RunAssembly a;
  a.detector = p.detector;
  a.policy = p.policy;
  a.delay_target = p.delay_target;
  a.service_cv2 = p.service_cv2;
  a.dpm = p.dpm;
  a.engine_seed = p.engine_seed;
  a.faults = &p.faults;
  return assemble_run_options(a, cpu, idle, detector_cfg);
}

const CellResult* SweepResult::find_cell(
    const std::function<bool(const CellResult&)>& pred) const {
  for (const CellResult& c : cells) {
    if (pred(c)) return &c;
  }
  return nullptr;
}

SweepResult SweepRunner::run(const ScenarioSpec& spec) const {
  SweepResult out;
  out.scenario = spec.name;
  out.jobs = resolve_jobs(opts_.jobs);

  std::vector<RunPoint> points = spec.expand();

  // ---- shared immutable assets, built once ------------------------------
  DetectorFactoryConfig detector_cfg = spec.detector_cfg;
  for (DetectorKind d : spec.detectors) {
    if (d == DetectorKind::ChangePoint) {
      detector_cfg.prepare();
      break;
    }
  }

  std::vector<CpuAsset> cpu_assets;
  cpu_assets.reserve(spec.cpus.size());
  for (const std::string& name : spec.cpus) {
    cpu_assets.push_back(build_cpu_asset(name));
  }

  const auto asset_key = [&](const RunPoint& p) {
    return ((p.cpu_idx * spec.workloads.size() + p.workload_idx) *
                static_cast<std::size_t>(spec.replicates) +
            static_cast<std::size_t>(p.replicate)) *
               spec.faults.size() +
           p.fault_idx;
  };
  std::unordered_map<std::size_t, WorkloadAsset> workload_assets;
  for (const RunPoint& p : points) {
    const std::size_t key = asset_key(p);
    if (workload_assets.find(key) == workload_assets.end()) {
      workload_assets.emplace(
          key, build_workload_asset(p.workload, cpu_assets[p.cpu_idx].cpu,
                                    p.trace_seed, p.faults, p.fault_seed));
    }
  }

  // ---- offline-optimal oracle, solved serially before dispatch ----------
  // One taut-string solve per (workload asset, delay target): every policy
  // and detector on the same trace divides by the same lower bound, and
  // because the solve happens here — never on a worker — the ratios are
  // byte-identical at any --jobs.
  std::map<std::pair<std::size_t, double>, double> oracle_energy;
  if (spec.oracle) {
    for (const RunPoint& p : points) {
      const auto key = std::make_pair(asset_key(p), p.delay_target.value());
      if (oracle_energy.find(key) != oracle_energy.end()) continue;
      const WorkloadAsset& asset = workload_assets.at(key.first);
      std::vector<policy::OracleJob> jobs;
      for (const PlaybackItem& item : *asset.items) {
        policy::OptimalOracle::append_jobs(item.trace, item.decoder,
                                           p.delay_target, jobs);
      }
      const policy::OptimalOracle oracle{cpu_assets[p.cpu_idx].cpu};
      oracle_energy.emplace(
          key, oracle.solve(std::move(jobs)).discrete_energy.value());
    }
  }

  // ---- execute ----------------------------------------------------------
  std::vector<Metrics> metrics(points.size());
  // Per-point registries: each worker writes only its own slot, and the
  // serial fold afterwards walks expansion order, so quantile collection
  // keeps the bit-identical-at-any---jobs contract.
  const bool collect = opts_.collect_quantiles || opts_.metrics != nullptr;
  std::vector<std::unique_ptr<obs::MetricsRegistry>> point_regs;
  if (collect) {
    point_regs.resize(points.size());
    for (auto& r : point_regs) r = std::make_unique<obs::MetricsRegistry>();
  }
  std::mutex progress_m;
  const auto t0 = std::chrono::steady_clock::now();

  // Live telemetry: one JSONL object per finished point, shared lock with
  // on_point.  Pure side-channel — nothing here feeds back into results.
  std::ofstream heartbeat_file;
  std::ostream* heartbeat = nullptr;
  if (!opts_.heartbeat_path.empty()) {
    if (opts_.heartbeat_path == "-") {
      heartbeat = &std::cerr;
    } else {
      heartbeat_file.open(opts_.heartbeat_path);
      DVS_CHECK_MSG(static_cast<bool>(heartbeat_file),
                    "SweepRunner: cannot open heartbeat path " +
                        opts_.heartbeat_path);
      heartbeat = &heartbeat_file;
    }
  }
  // Restored points count as already done: the heartbeat's done/total keeps
  // reaching the total on a resumed run, and ETA reflects remaining work.
  std::size_t restored_count = 0;
  const auto restored_point = [&](std::size_t index) -> const RestoredPoint* {
    if (opts_.restored == nullptr) return nullptr;
    const auto it = opts_.restored->find(index);
    return it == opts_.restored->end() ? nullptr : &it->second;
  };
  for (const RunPoint& p : points) {
    if (restored_point(p.index) != nullptr) ++restored_count;
  }
  std::size_t hb_done = restored_count;
  std::size_t tel_done = restored_count;
  RunningStats hb_energy_kj, hb_delay_s;
  // Optional trace context: serve jobs stamp their id on every record.
  const std::string hb_job = opts_.heartbeat_job.empty()
                                 ? std::string{}
                                 : "\"job\":\"" + opts_.heartbeat_job + "\",";
  const auto write_heartbeat = [&](const RunPoint& p, const Metrics& m) {
    ++hb_done;
    hb_energy_kj.add(m.energy_kj());
    hb_delay_s.add(m.mean_frame_delay.value());
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    const double eta =
        elapsed / static_cast<double>(hb_done) *
        static_cast<double>(points.size() - hb_done);
    char buf[512];
    std::snprintf(
        buf, sizeof buf,
        "\"scenario\":\"%s\",\"done\":%zu,\"total\":%zu,"
        "\"elapsed_s\":%.3f,\"eta_s\":%.3f,\"point\":%zu,\"cell\":%zu,"
        "\"replicate\":%d,\"energy_kj\":%.9g,\"mean_delay_s\":%.9g,"
        "\"running_mean_energy_kj\":%.9g,\"running_mean_delay_s\":%.9g}",
        spec.name.c_str(), hb_done, points.size(), elapsed, eta, p.index,
        p.cell, p.replicate, m.energy_kj(), m.mean_frame_delay.value(),
        hb_energy_kj.mean(), hb_delay_s.mean());
    *heartbeat << '{' << hb_job << buf << '\n' << std::flush;
  };

  parallel_for(points.size(), out.jobs, [&](std::size_t i) {
    const RunPoint& p = points[i];
    if (const RestoredPoint* rp = restored_point(p.index)) {
      // Checkpointed on a previous run: its metrics re-enter the collection
      // pass below verbatim; the sketch re-enters the cell fold.  No engine
      // run, no progress callbacks — it was announced when it first ran.
      metrics[i] = rp->metrics;
      return;
    }
    const CpuAsset& cpu = cpu_assets[p.cpu_idx];
    const WorkloadAsset& asset = workload_assets.at(asset_key(p));

    RunOptions opts = assemble_run_options(p, cpu, asset.idle, detector_cfg);
    if (collect) opts.metrics = point_regs[i].get();
    if (opts_.configure_run) opts_.configure_run(p, opts);
    metrics[i] = run_items(*asset.items, opts);

    const bool telemetry_on =
        opts_.telemetry != nullptr && opts_.telemetry->active();
    if (opts_.on_point || opts_.on_point_checkpoint || heartbeat != nullptr ||
        telemetry_on) {
      std::lock_guard<std::mutex> lk(progress_m);
      if (opts_.on_point) opts_.on_point(PointResult{p, metrics[i]});
      if (opts_.on_point_checkpoint) {
        static const obs::QuantileSketch kNoSketch;
        const obs::HistogramMetric* h =
            collect ? point_regs[i]->find_histogram("frames.delay_s") : nullptr;
        opts_.on_point_checkpoint(p, metrics[i],
                                  h != nullptr ? h->sketch() : kNoSketch);
      }
      if (heartbeat != nullptr) write_heartbeat(p, metrics[i]);
      if (telemetry_on) {
        // One snapshot per finished point, wall-clock timestamps,
        // completion order: the sweep's live feed mirrors the heartbeat
        // contract (telemetry only, never feeds results).
        static const obs::MetricsRegistry kEmpty;
        ++tel_done;
        const double elapsed = std::chrono::duration<double>(
                                   std::chrono::steady_clock::now() - t0)
                                   .count();
        opts_.telemetry->snapshot(
            elapsed, "sweep",
            collect ? *point_regs[i] : kEmpty,
            {{"done", static_cast<double>(tel_done)},
             {"total", static_cast<double>(points.size())},
             {"point", static_cast<double>(p.index)},
             {"cell", static_cast<double>(p.cell)},
             {"replicate", static_cast<double>(p.replicate)},
             {"energy_kj", metrics[i].energy_kj()},
             {"mean_delay_s", metrics[i].mean_frame_delay.value()}});
      }
    }
  });
  out.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  // ---- collect in expansion order, aggregate per cell -------------------
  out.points.reserve(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    PointResult pr{std::move(points[i]), std::move(metrics[i])};
    if (spec.oracle) {
      const auto it = oracle_energy.find(
          std::make_pair(asset_key(pr.point), pr.point.delay_target.value()));
      if (it != oracle_energy.end() && it->second > 0.0) {
        pr.competitive_ratio = pr.metrics.cpu_energy().value() / it->second;
      }
    }
    out.points.push_back(std::move(pr));
  }

  std::size_t i = 0;
  while (i < out.points.size()) {
    const std::size_t cell = out.points[i].point.cell;
    CellResult c;
    c.point = out.points[i].point;
    RunningStats energy, cpu_mem, delay, max_delay, freq, switches, sleeps,
        wakeup, power, faults, recoveries, degraded, cratio;
    for (; i < out.points.size() && out.points[i].point.cell == cell; ++i) {
      const Metrics& m = out.points[i].metrics;
      if (const RestoredPoint* rp = restored_point(out.points[i].point.index);
          rp != nullptr && !rp->delay_sketch.empty()) {
        // A restored point's sketch merges at exactly the position its
        // fresh counterpart would have — the text format round-trips the
        // sketch state bit-exactly, so the merged cell sketch (and the CSV
        // percentiles below) match an uninterrupted run byte-for-byte.
        c.delay_sketch.merge(rp->delay_sketch);
      } else if (collect) {
        // Merge the replicate's frame-delay sketch into the cell's
        // population sketch — the same place the Student-t CI reduction
        // runs, so the cells CSV reports honest population percentiles
        // instead of a mean of per-run quantiles.
        const obs::HistogramMetric* h =
            point_regs[i]->find_histogram("frames.delay_s");
        if (h != nullptr) c.delay_sketch.merge(h->sketch());
      }
      energy.add(m.energy_kj());
      cpu_mem.add(m.cpu_memory_energy().value() / 1e3);
      delay.add(m.mean_frame_delay.value());
      max_delay.add(m.max_frame_delay.value());
      freq.add(m.mean_cpu_frequency.value());
      switches.add(m.cpu_switches);
      sleeps.add(m.dpm_sleeps);
      wakeup.add(m.dpm_total_wakeup_delay.value());
      power.add(m.average_power.value());
      faults.add(static_cast<double>(m.faults_injected));
      recoveries.add(m.watchdog_recoveries);
      degraded.add(m.time_in_degraded.value());
      cratio.add(out.points[i].competitive_ratio);
    }
    c.energy_kj = aggregate(energy);
    c.cpu_mem_kj = aggregate(cpu_mem);
    c.delay_s = aggregate(delay);
    c.max_delay_s = aggregate(max_delay);
    c.freq_mhz = aggregate(freq);
    c.switches = aggregate(switches);
    c.sleeps = aggregate(sleeps);
    c.wakeup_delay_s = aggregate(wakeup);
    c.power_mw = aggregate(power);
    c.faults_injected = aggregate(faults);
    c.recoveries = aggregate(recoveries);
    c.time_degraded_s = aggregate(degraded);
    c.competitive_ratio = aggregate(cratio);
    if (!c.delay_sketch.empty()) {
      c.delay_p50 = c.delay_sketch.quantile(0.5);
      c.delay_p90 = c.delay_sketch.quantile(0.9);
      c.delay_p99 = c.delay_sketch.quantile(0.99);
    }
    out.cells.push_back(std::move(c));
  }

  // ---- summary observability -------------------------------------------
  if (opts_.metrics != nullptr) {
    obs::MetricsRegistry& reg = *opts_.metrics;
    // Fold every point's registry in, in expansion order: counters add,
    // histograms and their quantile sketches merge, gauges are skipped
    // (obs/metrics_registry.hpp) — the summary's frames.delay_s percentiles
    // describe the whole population across workers and replicates.
    for (const auto& pr : point_regs) reg.merge_from(*pr);
    reg.counter("sweep.points") += out.points.size();
    reg.counter("sweep.cells") += out.cells.size();
    reg.gauge("sweep.jobs") = out.jobs;
    reg.gauge("sweep.wall_seconds") = out.wall_seconds;
    auto& energy_hist = reg.histogram("sweep.point_energy_kj", 0.0, 50.0, 100);
    auto& delay_hist = reg.histogram("sweep.point_delay_s", 0.0, 2.0, 100);
    std::uint64_t total_faults = 0;
    std::uint64_t total_recoveries = 0;
    double total_degraded = 0.0;
    for (const PointResult& p : out.points) {
      energy_hist.add(p.metrics.energy_kj());
      delay_hist.add(p.metrics.mean_frame_delay.value());
      total_faults += p.metrics.faults_injected;
      total_recoveries +=
          static_cast<std::uint64_t>(p.metrics.watchdog_recoveries);
      total_degraded += p.metrics.time_in_degraded.value();
    }
    if (total_faults != 0 || total_recoveries != 0 || total_degraded > 0.0) {
      reg.counter("sweep.faults_injected") += total_faults;
      reg.counter("sweep.recoveries") += total_recoveries;
      reg.gauge("sweep.time_in_degraded_s") = total_degraded;
    }
  }
  return out;
}

// ---- consolidated CSV ----------------------------------------------------------

void SweepResult::write_points_csv(CsvWriter& csv) const {
  csv.write_header({"scenario", "point", "cell", "replicate", "workload",
                    "detector", "policy", "dpm", "faults", "cpu",
                    "delay_target_s", "service_cv2", "trace_seed",
                    "engine_seed", "energy_kj", "cpu_mem_kj", "delay_s",
                    "max_delay_s", "freq_mhz", "switches", "sleeps",
                    "wakeup_delay_s", "power_mw", "frames", "frames_admitted",
                    "frames_dropped", "duration_s", "faults_injected",
                    "escalations", "recoveries", "time_degraded_s",
                    "competitive_ratio"});
  for (const PointResult& p : points) {
    const Metrics& m = p.metrics;
    csv.row(scenario, p.point.index, p.point.cell, p.point.replicate,
            p.point.workload.name(), to_string(p.point.detector),
            p.point.policy, p.point.dpm.name(), p.point.faults.name,
            p.point.cpu, p.point.delay_target.value(), p.point.service_cv2,
            p.point.trace_seed, p.point.engine_seed, m.energy_kj(),
            m.cpu_memory_energy().value() / 1e3, m.mean_frame_delay.value(),
            m.max_frame_delay.value(), m.mean_cpu_frequency.value(),
            m.cpu_switches, m.dpm_sleeps, m.dpm_total_wakeup_delay.value(),
            m.average_power.value(), m.frames_decoded, m.frames_admitted,
            m.frames_dropped, m.duration.value(), m.faults_injected,
            m.watchdog_escalations, m.watchdog_recoveries,
            m.time_in_degraded.value(), p.competitive_ratio);
  }
}

void SweepResult::write_cells_csv(CsvWriter& csv) const {
  csv.write_header(
      {"scenario", "cell", "workload", "detector", "policy", "dpm", "faults",
       "cpu", "delay_target_s", "service_cv2", "replicates", "energy_kj_mean",
       "energy_kj_sd", "energy_kj_ci95", "cpu_mem_kj_mean", "cpu_mem_kj_sd",
       "cpu_mem_kj_ci95", "delay_s_mean", "delay_s_sd", "delay_s_ci95",
       "freq_mhz_mean", "freq_mhz_sd", "freq_mhz_ci95", "switches_mean",
       "sleeps_mean", "wakeup_delay_s_mean", "power_mw_mean",
       "faults_injected_mean", "recoveries_mean", "time_degraded_s_mean",
       "delay_p50", "delay_p90", "delay_p99", "competitive_ratio"});
  for (const CellResult& c : cells) {
    csv.row(scenario, c.point.cell, c.point.workload.name(),
            to_string(c.point.detector), c.point.policy, c.point.dpm.name(),
            c.point.faults.name, c.point.cpu, c.point.delay_target.value(),
            c.point.service_cv2, c.energy_kj.n, c.energy_kj.mean,
            c.energy_kj.stddev, c.energy_kj.ci95_half, c.cpu_mem_kj.mean,
            c.cpu_mem_kj.stddev, c.cpu_mem_kj.ci95_half, c.delay_s.mean,
            c.delay_s.stddev, c.delay_s.ci95_half, c.freq_mhz.mean,
            c.freq_mhz.stddev, c.freq_mhz.ci95_half, c.switches.mean,
            c.sleeps.mean, c.wakeup_delay_s.mean, c.power_mw.mean,
            c.faults_injected.mean, c.recoveries.mean,
            c.time_degraded_s.mean, c.delay_p50, c.delay_p90, c.delay_p99,
            c.competitive_ratio.mean);
  }
}

}  // namespace dvs::core
