// SweepRunner: executes a ScenarioSpec's RunPoints on a work-stealing
// thread pool with results that are bit-identical to serial execution.
//
// Determinism contract: every point is an independent simulation — its own
// Engine, its own RNG substreams (RunPoint::trace_seed / engine_seed), a
// fresh DPM policy instance — writing only to its own result slot, so the
// execution schedule cannot influence any number.  Shared state is built
// once before dispatch and is immutable during the run: the prepared
// change-point threshold table (DetectorFactoryConfig::prepare) and the
// per-(cpu, workload, replicate, fault) frame traces / sessions (workload
// fault transforms run once at asset-build time from RunPoint::fault_seed).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/csv.hpp"
#include "common/stats.hpp"
#include "core/metrics.hpp"
#include "core/scenario.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/telemetry/snapshotter.hpp"

namespace dvs::core {

/// Resolves a --jobs value: 0 means hardware concurrency, floor 1.
int resolve_jobs(int jobs);

/// Runs fn(i) for every i in [0, n) on `jobs` threads.  Work is split into
/// per-worker ranges; idle workers steal from the back of the busiest
/// victim's remainder.  jobs <= 1 (after resolution) runs inline.  The
/// first exception thrown by fn is rethrown after all workers stop.
void parallel_for(std::size_t n, int jobs,
                  const std::function<void(std::size_t)>& fn);

/// Replicate aggregate for one metric column: mean, sample stddev, and the
/// half-width of the Student-t 95% confidence interval (0 when n < 2).
struct Aggregate {
  std::size_t n = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double ci95_half = 0.0;
};

/// Two-sided 97.5% Student-t quantile for `df` degrees of freedom (normal
/// approximation past df = 30) — the CI multiplier used by aggregate().
double t95_quantile(std::size_t df);

Aggregate aggregate(const RunningStats& s);

/// Per-CPU shared asset: the resolved part and its DPM cost model.  Built
/// once before dispatch; immutable while workers run.
struct CpuAsset {
  hw::Sa1100 cpu;
  dpm::DpmCostModel costs;
};

/// Resolves a CPU catalog name into a CpuAsset (throws on unknown names,
/// same contract as cpu_by_name).
CpuAsset build_cpu_asset(const std::string& name);

/// Per-(cpu, workload, trace seed, fault) shared asset, built once before
/// dispatch and read-only afterwards.  The item list is behind a
/// shared_ptr so thousands of concurrent runs (sweep points, fleet
/// devices) can play the same prepared trace without copying it.
struct WorkloadAsset {
  std::shared_ptr<const std::vector<PlaybackItem>> items;
  dpm::IdleDistributionPtr idle;
};

/// Builds the prepared trace(s) + idle model for one workload row.  Fault
/// transforms run here, once per asset: every consumer of the same
/// (trace_seed, fault_seed) pair sees the exact same perturbed trace — the
/// Tables-3/4 "same inputs" contract survives fault injection, and the
/// fleet runner's shared-asset reuse inherits it.
WorkloadAsset build_workload_asset(const WorkloadSpec& w,
                                   const hw::Sa1100& cpu,
                                   std::uint64_t trace_seed,
                                   const fault::FaultSpec& faults,
                                   std::uint64_t fault_seed);

/// Scenario-level knobs that every execution surface (cmd_run, the sweep
/// pool, the fleet shards, serve jobs) resolves into RunOptions the same
/// way — the single construction path shared by all layers, so call sites
/// never hand-assemble RunOptions field-by-field again.
struct RunAssembly {
  DetectorKind detector = DetectorKind::ChangePoint;
  std::string policy = "paper";
  Seconds delay_target{0.1};
  double service_cv2 = 1.0;
  DpmSpec dpm{};
  std::uint64_t engine_seed = 1;
  /// Null = fault-free run; non-null supplies the watchdog + hardware plan
  /// (workload-side trace transforms are applied at asset-build time).
  const fault::FaultSpec* faults = nullptr;
};

/// Resolves scenario-level parameters + shared assets into engine-ready
/// RunOptions: builds the DPM policy against this CPU's cost model and the
/// workload's idle distribution, wires the shared detector configuration
/// and CPU model by pointer, and copies the fault plan when present.  The
/// returned options alias `cpu` and `detector_cfg` — both must outlive the
/// run (they always do: shared assets are built before dispatch).
RunOptions assemble_run_options(const RunAssembly& a, const CpuAsset& cpu,
                                const dpm::IdleDistributionPtr& idle,
                                const DetectorFactoryConfig& detector_cfg);

/// RunPoint convenience: a sweep point's expansion coordinates are already
/// a RunAssembly.
RunOptions assemble_run_options(const RunPoint& p, const CpuAsset& cpu,
                                const dpm::IdleDistributionPtr& idle,
                                const DetectorFactoryConfig& detector_cfg);

/// One checkpointed point, ready to re-enter a resumed sweep's folds in
/// place of executing it (see SweepOptions::restored).
struct RestoredPoint {
  Metrics metrics;
  /// The point's frames.delay_s sketch at checkpoint time; empty when the
  /// original run did not collect quantiles.
  obs::QuantileSketch delay_sketch;
};

/// One executed point, in expansion order.
struct PointResult {
  RunPoint point;
  Metrics metrics;
  /// Measured CPU energy over the offline-optimal oracle's discrete-step
  /// lower bound for this point's trace and delay target (>= 1 for any
  /// policy that honors the target; 0 when ScenarioSpec::oracle is off).
  double competitive_ratio = 0.0;
};

/// One grid cell with its replicates reduced.
struct CellResult {
  RunPoint point;  ///< replicate-0 point: the cell's coordinates
  Aggregate energy_kj;
  Aggregate cpu_mem_kj;
  Aggregate delay_s;
  Aggregate max_delay_s;
  Aggregate freq_mhz;
  Aggregate switches;
  Aggregate sleeps;
  Aggregate wakeup_delay_s;
  Aggregate power_mw;
  // Fault-injection / degradation aggregates (all-zero on fault-free cells).
  Aggregate faults_injected;
  Aggregate recoveries;
  Aggregate time_degraded_s;
  /// Competitive-ratio aggregate (all-zero unless ScenarioSpec::oracle).
  Aggregate competitive_ratio;
  /// Population frame-delay distribution: the per-point quantile sketches
  /// of every replicate merged in expansion order (empty unless quantile
  /// collection ran — see SweepOptions::collect_quantiles).  The p50/p90/
  /// p99 fields are the merged sketch's quantiles, 0 when not collected.
  obs::QuantileSketch delay_sketch;
  double delay_p50 = 0.0;
  double delay_p90 = 0.0;
  double delay_p99 = 0.0;
};

struct SweepResult {
  std::string scenario;
  int jobs = 1;
  double wall_seconds = 0.0;
  std::vector<PointResult> points;  ///< expansion order
  std::vector<CellResult> cells;    ///< cell order

  /// First cell matching the predicate; nullptr when none does.
  [[nodiscard]] const CellResult* find_cell(
      const std::function<bool(const CellResult&)>& pred) const;

  /// Consolidated CSV emission — the one writer all sweeps share.
  void write_points_csv(CsvWriter& csv) const;
  void write_cells_csv(CsvWriter& csv) const;
};

struct SweepOptions {
  int jobs = 1;  ///< 0 = hardware concurrency
  /// Summary sink, fed serially after the run (the registry itself is not
  /// thread-safe, so per-run engine hooks stay off during a sweep).  When
  /// set, every point gets a private registry on its worker and the
  /// per-point registries are folded in serially, in expansion order
  /// (counters add, histograms + sketches merge, gauges skipped) — so the
  /// summary sees the population frame-delay distribution, not just the
  /// sweep.* roll-ups, and the result is byte-identical at any --jobs.
  obs::MetricsRegistry* metrics = nullptr;
  /// Collect per-point quantile sketches (CellResult::delay_sketch and the
  /// cells-CSV delay percentile columns) even without a summary registry.
  /// Implied by `metrics`.  Off by default: it attaches a metrics registry
  /// to every engine run, which costs histogram updates on the hot path.
  bool collect_quantiles = false;
  /// Live telemetry: one snapshot per finished point (wall-clock `t`,
  /// completion order — same contract as the heartbeat: telemetry only,
  /// never feeds results).  Snapshots carry the finished point's own
  /// registry when quantile collection is on.
  obs::TelemetrySnapshotter* telemetry = nullptr;
  /// Progress callback, serialized, in completion (not expansion) order.
  std::function<void(const PointResult&)> on_point;
  /// Per-point RunOptions hook, called on the worker thread after the
  /// standard fields are filled and before the engine runs.  Must be
  /// thread-safe (points run concurrently); must not change fields that
  /// feed the simulation result if bit-identity across --jobs matters —
  /// it exists for observability attachments (ledgers, flight-dump paths).
  std::function<void(const RunPoint&, RunOptions&)> configure_run;
  /// Non-empty: live progress heartbeat as JSONL, one object per finished
  /// point (done/total, elapsed, ETA, running aggregates).  "-" = stderr.
  /// Written under the same lock as on_point; telemetry only — it never
  /// influences results.
  std::string heartbeat_path;
  /// Non-empty: every heartbeat record leads with a `"job":"<id>"` member —
  /// the serve daemon's trace context, linking a heartbeat line back to the
  /// job (and its checkpoint/event records) that produced it.  Empty (the
  /// default) emits the records unchanged.
  std::string heartbeat_job;
  /// Checkpoint/restore (the serve daemon's hooks; plain sweeps leave both
  /// unset).  Points whose RunPoint::index appears in `restored` are not
  /// executed: their checkpointed metrics and delay sketch enter the folds
  /// exactly where a fresh run's would, so a resumed sweep's CSVs are
  /// byte-identical to an uninterrupted one (the sketch text format
  /// round-trips doubles bit-exactly).  Restored points are counted as
  /// already done by the heartbeat and produce no progress callbacks.
  const std::map<std::size_t, RestoredPoint>* restored = nullptr;
  /// Called under the progress lock after every *executed* point, with the
  /// point's metrics and its frame-delay sketch (empty unless quantile
  /// collection is on) — everything a checkpoint record needs to make the
  /// point restorable.  Serialized; completion order.
  std::function<void(const RunPoint&, const Metrics&,
                     const obs::QuantileSketch&)>
      on_point_checkpoint;
};

class SweepRunner {
 public:
  explicit SweepRunner(SweepOptions opts = {}) : opts_(std::move(opts)) {}

  /// Expands, prepares shared assets, executes every point, aggregates.
  SweepResult run(const ScenarioSpec& spec) const;

 private:
  SweepOptions opts_;
};

}  // namespace dvs::core
