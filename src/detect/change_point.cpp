#include "detect/change_point.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.hpp"

namespace dvs::detect {

ChangePointDetector::ChangePointDetector(
    std::shared_ptr<const ThresholdTable> thresholds)
    : thresholds_(std::move(thresholds)),
      window_(thresholds_ != nullptr ? thresholds_->config().window : 1) {
  DVS_CHECK_MSG(thresholds_ != nullptr, "ChangePointDetector: null threshold table");
}

ChangePointDetector::ChangePointDetector(const ChangePointConfig& cfg)
    : ChangePointDetector(std::make_shared<const ThresholdTable>(cfg)) {}

void ChangePointDetector::reset(Hertz initial) {
  window_.clear();
  samples_since_check_ = 0;
  settling_ = 0;
  rate_ = initial;
  warmed_up_ = initial.value() > 0.0;
  changes_ = 0;
  change_times_.clear();
}

Hertz ChangePointDetector::on_sample(Seconds now, Seconds interval) {
  DVS_CHECK_MSG(interval.value() > 0.0, "ChangePointDetector: non-positive interval");
  const ChangePointConfig& cfg = thresholds_->config();

  window_.push(interval.value());
  if (settling_ < cfg.window) ++settling_;

  if (!warmed_up_) {
    // No prior estimate: bootstrap the rate from the first min_tail samples.
    if (window_.size() >= cfg.min_tail) {
      double sum = 0.0;
      for (std::size_t j = 0; j < window_.size(); ++j) sum += window_.at(j);
      rate_ = Hertz{static_cast<double>(window_.size()) / sum};
      warmed_up_ = true;
    }
    return rate_;
  }

  // Just after a declared change the rate estimate came from a short tail
  // and is noisy; keep refining it from the accumulating post-change
  // samples until a full window's worth has been seen, then freeze.  The
  // detector's defining property (Fig. 10) is that its output is piecewise
  // constant — settling briefly after each change and never drifting in
  // between (the 3% deadband keeps the settling monotone-ish rather than
  // jittery).
  if (settling_ < cfg.window) {
    const std::size_t n = std::min(settling_, window_.size());
    double sum = 0.0;
    for (std::size_t j = window_.size() - n; j < window_.size(); ++j) {
      sum += window_.at(j);
    }
    if (n >= cfg.min_tail && sum > 0.0) {
      const double refined = static_cast<double>(n) / sum;
      if (std::abs(refined - rate_.value()) > 0.03 * rate_.value()) {
        rate_ = Hertz{refined};
      }
    }
  }

  ++samples_since_check_;
  // The ML-ratio test is calibrated (ThresholdTable) on full windows of m
  // samples; evaluating it on a part-filled window — at stream start or
  // while refilling after a declared change/reset — compares an
  // unlike-sized statistic against that threshold and misfires on short
  // traces.  Hold the decision rule until the window holds m samples.
  if (samples_since_check_ >= cfg.check_interval &&
      window_.size() >= cfg.window) {
    samples_since_check_ = 0;
    detect(now);
  }
  return rate_;
}

bool ChangePointDetector::detect(Seconds now) {
  const ChangePointConfig& cfg = thresholds_->config();
  const double lambda_o = rate_.value();
  DVS_CHECK_MSG(lambda_o > 0.0, "ChangePointDetector: no current rate");

  // One backward pass accumulates the normalized suffix sum (lambda_o * x_j
  // is Exp(1) under the null) and records it at every candidate change
  // position.  Each ratio then needs only the candidates — ~m/check_interval
  // evaluations instead of rescanning all m samples per ratio.  The
  // accumulation multiplies and adds in the same order as the reference
  // max_log_likelihood_ratio, so the statistics are bit-identical to
  // evaluating it on the normalized window.
  const std::size_t m = window_.size();
  const std::size_t step = std::max<std::size_t>(cfg.check_interval, 1);
  cand_sum_.clear();
  cand_len_.clear();
  cand_pos_.clear();
  double tail_sum = 0.0;
  for (std::size_t j = m; j-- > 0;) {
    tail_sum += window_.at(j) * lambda_o;
    const std::size_t tail_len = m - j;
    if (tail_len < cfg.min_tail) continue;
    if (j % step != 0) continue;
    cand_sum_.push_back(tail_sum);
    cand_len_.push_back(tail_len);
    cand_pos_.push_back(j);
  }

  // Scan every candidate ratio; require the best margin to clear the
  // scan-level calibration (see ThresholdTable::scan_margin).
  double best_margin = -std::numeric_limits<double>::infinity();
  double best_stat = -std::numeric_limits<double>::infinity();
  double best_threshold = 0.0;
  double best_ratio = 1.0;
  std::size_t best_k = 0;
  for (double r : thresholds_->ratios()) {
    const double log_r = std::log(r);
    double stat = -std::numeric_limits<double>::infinity();
    std::size_t k = 0;
    // Candidates are stored in scan (descending-position) order with a
    // strict improvement test, matching the reference scan's tie-break:
    // among equal statistics the latest change position wins.
    for (std::size_t c = 0; c < cand_sum_.size(); ++c) {
      const double lnp = static_cast<double>(cand_len_[c]) * log_r -
                         (r - 1.0) * cand_sum_[c];
      if (lnp > stat) {
        stat = lnp;
        k = cand_pos_[c];
      }
    }
    const double threshold = thresholds_->threshold_for_ratio(r);
    const double margin = stat - threshold;
    if (margin > best_margin) {
      best_margin = margin;
      best_stat = stat;
      best_threshold = threshold;
      best_ratio = r;
      best_k = k;
    }
  }
  const bool found = best_margin > thresholds_->scan_margin();
  if (!found) {
    if (has_decision_observer()) {
      notify_decision(now, DetectorDecisionInfo{
                               best_stat,
                               best_threshold + thresholds_->scan_margin(),
                               false, rate_});
    }
    return false;
  }

  // Change declared: re-estimate the rate from the post-change tail by
  // maximum likelihood and drop the pre-change samples.
  double raw_tail = 0.0;
  std::size_t tail_len = 0;
  for (std::size_t j = best_k; j < m; ++j) {
    raw_tail += window_.at(j);
    ++tail_len;
  }
  DVS_CHECK(tail_len >= cfg.min_tail && raw_tail > 0.0);
  rate_ = Hertz{static_cast<double>(tail_len) / raw_tail};
  window_.drop_front(best_k);
  settling_ = window_.size();
  ++changes_;
  change_times_.push_back(now);
  (void)best_ratio;
  if (has_decision_observer()) {
    notify_decision(now, DetectorDecisionInfo{
                             best_stat,
                             best_threshold + thresholds_->scan_margin(),
                             true, rate_});
  }
  return true;
}

}  // namespace dvs::detect
