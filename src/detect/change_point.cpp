#include "detect/change_point.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.hpp"

namespace dvs::detect {
namespace {

/// Like max_log_likelihood_ratio but also reports the best change position
/// (index of the first post-change sample).
double max_llr_with_argmax(const std::vector<double>& z, double ratio,
                           const ChangePointConfig& cfg, std::size_t& best_k) {
  const std::size_t m = z.size();
  const double log_r = std::log(ratio);
  double best = -std::numeric_limits<double>::infinity();
  best_k = 0;
  double tail_sum = 0.0;
  for (std::size_t j = m; j-- > 0;) {
    tail_sum += z[j];
    const std::size_t tail_len = m - j;
    if (tail_len < cfg.min_tail) continue;
    if (j % std::max<std::size_t>(cfg.check_interval, 1) != 0) continue;
    const double lnp =
        static_cast<double>(tail_len) * log_r - (ratio - 1.0) * tail_sum;
    if (lnp > best) {
      best = lnp;
      best_k = j;
    }
  }
  return best;
}

}  // namespace

ChangePointDetector::ChangePointDetector(
    std::shared_ptr<const ThresholdTable> thresholds)
    : thresholds_(std::move(thresholds)) {
  DVS_CHECK_MSG(thresholds_ != nullptr, "ChangePointDetector: null threshold table");
}

ChangePointDetector::ChangePointDetector(const ChangePointConfig& cfg)
    : ChangePointDetector(std::make_shared<const ThresholdTable>(cfg)) {}

void ChangePointDetector::reset(Hertz initial) {
  window_.clear();
  samples_since_check_ = 0;
  settling_ = 0;
  rate_ = initial;
  warmed_up_ = initial.value() > 0.0;
  changes_ = 0;
  change_times_.clear();
}

Hertz ChangePointDetector::on_sample(Seconds now, Seconds interval) {
  DVS_CHECK_MSG(interval.value() > 0.0, "ChangePointDetector: non-positive interval");
  const ChangePointConfig& cfg = thresholds_->config();

  window_.push_back(interval.value());
  if (window_.size() > cfg.window) window_.pop_front();
  if (settling_ < cfg.window) ++settling_;

  if (!warmed_up_) {
    // No prior estimate: bootstrap the rate from the first min_tail samples.
    if (window_.size() >= cfg.min_tail) {
      double sum = 0.0;
      for (double x : window_) sum += x;
      rate_ = Hertz{static_cast<double>(window_.size()) / sum};
      warmed_up_ = true;
    }
    return rate_;
  }

  // Just after a declared change the rate estimate came from a short tail
  // and is noisy; keep refining it from the accumulating post-change
  // samples until a full window's worth has been seen, then freeze.  The
  // detector's defining property (Fig. 10) is that its output is piecewise
  // constant — settling briefly after each change and never drifting in
  // between (the 3% deadband keeps the settling monotone-ish rather than
  // jittery).
  if (settling_ < cfg.window) {
    const std::size_t n = std::min(settling_, window_.size());
    double sum = 0.0;
    for (std::size_t j = window_.size() - n; j < window_.size(); ++j) {
      sum += window_[j];
    }
    if (n >= cfg.min_tail && sum > 0.0) {
      const double refined = static_cast<double>(n) / sum;
      if (std::abs(refined - rate_.value()) > 0.03 * rate_.value()) {
        rate_ = Hertz{refined};
      }
    }
  }

  ++samples_since_check_;
  // The ML-ratio test is calibrated (ThresholdTable) on full windows of m
  // samples; evaluating it on a part-filled window — at stream start or
  // while refilling after a declared change/reset — compares an
  // unlike-sized statistic against that threshold and misfires on short
  // traces.  Hold the decision rule until the window holds m samples.
  if (samples_since_check_ >= cfg.check_interval &&
      window_.size() >= cfg.window) {
    samples_since_check_ = 0;
    detect(now);
  }
  return rate_;
}

bool ChangePointDetector::detect(Seconds now) {
  const ChangePointConfig& cfg = thresholds_->config();
  const double lambda_o = rate_.value();
  DVS_CHECK_MSG(lambda_o > 0.0, "ChangePointDetector: no current rate");

  // Normalize so the window is Exp(1) under the null hypothesis; the
  // statistic then depends only on the candidate ratio.
  std::vector<double> z(window_.begin(), window_.end());
  for (double& x : z) x *= lambda_o;

  // Scan every candidate ratio; require the best margin to clear the
  // scan-level calibration (see ThresholdTable::scan_margin).
  double best_margin = -std::numeric_limits<double>::infinity();
  double best_stat = -std::numeric_limits<double>::infinity();
  double best_threshold = 0.0;
  double best_ratio = 1.0;
  std::size_t best_k = 0;
  for (double r : thresholds_->ratios()) {
    std::size_t k = 0;
    const double stat = max_llr_with_argmax(z, r, cfg, k);
    const double threshold = thresholds_->threshold_for_ratio(r);
    const double margin = stat - threshold;
    if (margin > best_margin) {
      best_margin = margin;
      best_stat = stat;
      best_threshold = threshold;
      best_ratio = r;
      best_k = k;
    }
  }
  const bool found = best_margin > thresholds_->scan_margin();
  if (!found) {
    if (has_decision_observer()) {
      notify_decision(now, DetectorDecisionInfo{
                               best_stat,
                               best_threshold + thresholds_->scan_margin(),
                               false, rate_});
    }
    return false;
  }

  // Change declared: re-estimate the rate from the post-change tail by
  // maximum likelihood and drop the pre-change samples.
  double tail_sum = 0.0;
  std::size_t tail_len = 0;
  for (std::size_t j = best_k; j < window_.size(); ++j) {
    tail_sum += window_[j];
    ++tail_len;
  }
  DVS_CHECK(tail_len >= cfg.min_tail && tail_sum > 0.0);
  rate_ = Hertz{static_cast<double>(tail_len) / tail_sum};
  window_.erase(window_.begin(),
                window_.begin() + static_cast<std::ptrdiff_t>(best_k));
  settling_ = window_.size();
  ++changes_;
  change_times_.push_back(now);
  (void)best_ratio;
  if (has_decision_observer()) {
    notify_decision(now, DetectorDecisionInfo{
                             best_stat,
                             best_threshold + thresholds_->scan_margin(),
                             true, rate_});
  }
  return true;
}

}  // namespace dvs::detect
