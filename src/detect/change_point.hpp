// On-line change-point detection (Section 3.1, Equations 3-4).
//
// The detector keeps a sliding window of the last m interval samples.
// Every `check_interval` samples it evaluates, for each candidate new rate
// lambda_n in a geometric rate set, the maximum-likelihood ratio
//
//   ln P_max = max_k [ (m-k) ln(lambda_n/lambda_o)
//                      - (lambda_n - lambda_o) sum_{j>k} x_j ]
//
// against the threshold characterized off-line for that rate ratio
// (ThresholdTable).  When the threshold is exceeded there is >= 99.5%
// likelihood the rate changed: the estimate moves to the maximum-likelihood
// rate of the post-change tail, and the pre-change samples are discarded.
//
// "Only the sum of interarrival (or decoding) times needs to be updated
// upon every arrival" — the suffix-sum evaluation in
// max_log_likelihood_ratio is exactly that computation.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "detect/detector.hpp"
#include "detect/threshold_table.hpp"

namespace dvs::detect {

class ChangePointDetector final : public RateDetector {
 public:
  /// `thresholds` may be shared across detectors with identical config.
  explicit ChangePointDetector(std::shared_ptr<const ThresholdTable> thresholds);

  /// Convenience: builds (and owns) a threshold table for `cfg`.
  explicit ChangePointDetector(const ChangePointConfig& cfg);

  Hertz on_sample(Seconds now, Seconds interval) override;
  [[nodiscard]] Hertz current_rate() const override { return rate_; }
  void reset(Hertz initial) override;
  [[nodiscard]] std::string name() const override { return "change-point"; }

  [[nodiscard]] const ChangePointConfig& config() const {
    return thresholds_->config();
  }

  /// Number of change points declared since construction/reset.
  [[nodiscard]] std::uint64_t changes_detected() const { return changes_; }

  /// Times (sample timestamps) at which changes were declared.
  [[nodiscard]] const std::vector<Seconds>& change_times() const {
    return change_times_;
  }

 private:
  /// Fixed-capacity ring over the last m raw interval samples: push is
  /// allocation-free, dropping the pre-change prefix is O(1), and the
  /// element type stays contiguous enough for the scan below.
  class Window {
   public:
    explicit Window(std::size_t capacity)
        : buf_(capacity > 0 ? capacity : 1) {}

    [[nodiscard]] std::size_t size() const { return count_; }
    [[nodiscard]] std::size_t capacity() const { return buf_.size(); }
    [[nodiscard]] double at(std::size_t i) const { return buf_[wrap(head_ + i)]; }

    /// Appends, evicting the oldest sample when full.
    void push(double x) {
      if (count_ < buf_.size()) {
        buf_[wrap(head_ + count_)] = x;
        ++count_;
      } else {
        buf_[head_] = x;
        head_ = wrap(head_ + 1);
      }
    }

    /// Drops the first `k` samples (k <= size()).
    void drop_front(std::size_t k) {
      head_ = wrap(head_ + k);
      count_ -= k;
    }

    void clear() {
      head_ = 0;
      count_ = 0;
    }

   private:
    [[nodiscard]] std::size_t wrap(std::size_t i) const {
      return i >= buf_.size() ? i - buf_.size() : i;
    }
    std::vector<double> buf_;
    std::size_t head_ = 0;
    std::size_t count_ = 0;
  };

  /// Runs the likelihood test over the current window; returns true and
  /// updates rate_ when a change is declared.
  bool detect(Seconds now);

  std::shared_ptr<const ThresholdTable> thresholds_;
  Window window_;                     ///< last m raw interval samples
  std::size_t samples_since_check_ = 0;
  // Scratch reused across detect() calls (no steady-state allocation):
  // normalized suffix sums, tail lengths, and window positions of the
  // candidate change points, in scan (descending-position) order.
  std::vector<double> cand_sum_;
  std::vector<std::size_t> cand_len_;
  std::vector<std::size_t> cand_pos_;
  /// Post-change samples seen so far; the estimate refines while this is
  /// below the window size and freezes afterwards (piecewise-constant
  /// output between change points).
  std::size_t settling_ = 0;
  Hertz rate_{0.0};
  bool warmed_up_ = false;
  std::uint64_t changes_ = 0;
  std::vector<Seconds> change_times_;
};

}  // namespace dvs::detect
