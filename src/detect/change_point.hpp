// On-line change-point detection (Section 3.1, Equations 3-4).
//
// The detector keeps a sliding window of the last m interval samples.
// Every `check_interval` samples it evaluates, for each candidate new rate
// lambda_n in a geometric rate set, the maximum-likelihood ratio
//
//   ln P_max = max_k [ (m-k) ln(lambda_n/lambda_o)
//                      - (lambda_n - lambda_o) sum_{j>k} x_j ]
//
// against the threshold characterized off-line for that rate ratio
// (ThresholdTable).  When the threshold is exceeded there is >= 99.5%
// likelihood the rate changed: the estimate moves to the maximum-likelihood
// rate of the post-change tail, and the pre-change samples are discarded.
//
// "Only the sum of interarrival (or decoding) times needs to be updated
// upon every arrival" — the suffix-sum evaluation in
// max_log_likelihood_ratio is exactly that computation.
#pragma once

#include <deque>
#include <memory>
#include <vector>

#include "detect/detector.hpp"
#include "detect/threshold_table.hpp"

namespace dvs::detect {

class ChangePointDetector final : public RateDetector {
 public:
  /// `thresholds` may be shared across detectors with identical config.
  explicit ChangePointDetector(std::shared_ptr<const ThresholdTable> thresholds);

  /// Convenience: builds (and owns) a threshold table for `cfg`.
  explicit ChangePointDetector(const ChangePointConfig& cfg);

  Hertz on_sample(Seconds now, Seconds interval) override;
  [[nodiscard]] Hertz current_rate() const override { return rate_; }
  void reset(Hertz initial) override;
  [[nodiscard]] std::string name() const override { return "change-point"; }

  [[nodiscard]] const ChangePointConfig& config() const {
    return thresholds_->config();
  }

  /// Number of change points declared since construction/reset.
  [[nodiscard]] std::uint64_t changes_detected() const { return changes_; }

  /// Times (sample timestamps) at which changes were declared.
  [[nodiscard]] const std::vector<Seconds>& change_times() const {
    return change_times_;
  }

 private:
  /// Runs the likelihood test over the current window; returns true and
  /// updates rate_ when a change is declared.
  bool detect(Seconds now);

  std::shared_ptr<const ThresholdTable> thresholds_;
  std::deque<double> window_;         ///< last m raw interval samples
  std::size_t samples_since_check_ = 0;
  /// Post-change samples seen so far; the estimate refines while this is
  /// below the window size and freezes afterwards (piecewise-constant
  /// output between change points).
  std::size_t settling_ = 0;
  Hertz rate_{0.0};
  bool warmed_up_ = false;
  std::uint64_t changes_ = 0;
  std::vector<Seconds> change_times_;
};

}  // namespace dvs::detect
