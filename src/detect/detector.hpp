// Rate-detector interface.
//
// A detector watches a stream of interval samples — frame interarrival
// times for the arrival-rate detector, decode times normalized to the top
// frequency for the service-rate detector — and maintains an estimate of
// the generating rate.  The four implementations are the four columns of
// Tables 3 and 4: ideal (oracle), change-point (this paper), exponential
// moving average (prior work), and, implicitly, "max" which uses no
// detector at all.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "common/units.hpp"

namespace dvs::detect {

/// One evaluation of a detector's decision rule (for change-point: the
/// likelihood test of Section 3.1).  Reported to an optional observer so
/// the observability layer can trace ln P_max and the verdict without the
/// detector knowing about sinks.
struct DetectorDecisionInfo {
  double ln_p_max = 0.0;   ///< best test statistic over the candidate set
  double threshold = 0.0;  ///< level it had to clear (incl. scan margin)
  bool detected = false;   ///< verdict
  Hertz rate{0.0};         ///< estimate after the check
};

class RateDetector {
 public:
  virtual ~RateDetector() = default;

  /// Feeds one interval sample observed at absolute time `now` (the sample
  /// is the gap that just ended at `now`).  Returns the updated estimate.
  virtual Hertz on_sample(Seconds now, Seconds interval) = 0;

  /// Current rate estimate without feeding a sample.
  [[nodiscard]] virtual Hertz current_rate() const = 0;

  /// Clears state and seeds the estimate.
  virtual void reset(Hertz initial) = 0;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Installs an observer called on every decision-rule evaluation.
  /// Detectors without an explicit decision rule (EMA, sliding window)
  /// never call it.
  using DecisionObserver =
      std::function<void(Seconds now, const DetectorDecisionInfo&)>;
  void set_decision_observer(DecisionObserver observer) {
    observer_ = std::move(observer);
  }

 protected:
  [[nodiscard]] bool has_decision_observer() const {
    return static_cast<bool>(observer_);
  }
  void notify_decision(Seconds now, const DetectorDecisionInfo& info) const {
    if (observer_) observer_(now, info);
  }

 private:
  DecisionObserver observer_;
};

using RateDetectorPtr = std::unique_ptr<RateDetector>;

}  // namespace dvs::detect
