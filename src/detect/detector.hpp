// Rate-detector interface.
//
// A detector watches a stream of interval samples — frame interarrival
// times for the arrival-rate detector, decode times normalized to the top
// frequency for the service-rate detector — and maintains an estimate of
// the generating rate.  The four implementations are the four columns of
// Tables 3 and 4: ideal (oracle), change-point (this paper), exponential
// moving average (prior work), and, implicitly, "max" which uses no
// detector at all.
#pragma once

#include <memory>
#include <string>

#include "common/units.hpp"

namespace dvs::detect {

class RateDetector {
 public:
  virtual ~RateDetector() = default;

  /// Feeds one interval sample observed at absolute time `now` (the sample
  /// is the gap that just ended at `now`).  Returns the updated estimate.
  virtual Hertz on_sample(Seconds now, Seconds interval) = 0;

  /// Current rate estimate without feeding a sample.
  [[nodiscard]] virtual Hertz current_rate() const = 0;

  /// Clears state and seeds the estimate.
  virtual void reset(Hertz initial) = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

using RateDetectorPtr = std::unique_ptr<RateDetector>;

}  // namespace dvs::detect
