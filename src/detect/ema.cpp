#include "detect/ema.hpp"

#include "common/check.hpp"

namespace dvs::detect {

EmaDetector::EmaDetector(double gain) : gain_(gain) {
  DVS_CHECK_MSG(gain > 0.0 && gain <= 1.0, "EmaDetector: gain must be in (0,1]");
}

Hertz EmaDetector::on_sample(Seconds /*now*/, Seconds interval) {
  DVS_CHECK_MSG(interval.value() > 0.0, "EmaDetector: non-positive interval");
  if (smoothed_interval_ <= 0.0) {
    smoothed_interval_ = interval.value();
  } else {
    smoothed_interval_ =
        (1.0 - gain_) * smoothed_interval_ + gain_ * interval.value();
  }
  return current_rate();
}

Hertz EmaDetector::current_rate() const {
  return smoothed_interval_ > 0.0 ? Hertz{1.0 / smoothed_interval_} : Hertz{0.0};
}

void EmaDetector::reset(Hertz initial) {
  smoothed_interval_ = initial.value() > 0.0 ? 1.0 / initial.value() : 0.0;
}

std::string EmaDetector::name() const {
  return "ema(g=" + std::to_string(gain_).substr(0, 4) + ")";
}

}  // namespace dvs::detect
