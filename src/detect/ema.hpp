// Exponential-moving-average rate estimator (Equation 6 of the paper):
//
//   Rate_new_ave = (1 - g) * Rate_old_ave + g * Rate_cur
//
// the comparison baseline "used in previous work" [Pering et al.].  The
// smoothing runs in the interval domain — the current measurement is the
// latest interarrival gap and the rate estimate is the inverse of the
// smoothed gap.  (Smoothing the raw instantaneous rate 1/x directly cannot
// reproduce the published Figure 10: for exponential gaps 1/x has no finite
// mean, so that average converges to a clamp-dependent value several times
// the true rate.  The figure's slow convergence *toward* the true rate
// implies interval-domain averaging.)
//
// Even in this form the estimator is the paper's cautionary tale: it lags a
// step change by ~1/gain samples and keeps oscillating afterwards, which
// the tables translate into extra frequency switches and delay.
#pragma once

#include "detect/detector.hpp"

namespace dvs::detect {

class EmaDetector final : public RateDetector {
 public:
  /// gain in (0, 1]; the paper plots g = 0.03 and g = 0.05.
  explicit EmaDetector(double gain);

  Hertz on_sample(Seconds now, Seconds interval) override;
  [[nodiscard]] Hertz current_rate() const override;
  void reset(Hertz initial) override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] double gain() const { return gain_; }

 private:
  double gain_;
  double smoothed_interval_ = 0.0;  ///< 0 = unseeded
};

}  // namespace dvs::detect
