// Ideal (oracle) detection: "assumes knowledge of the future; thus the
// system detects the change in rate exactly when the change occurs."
// The oracle reads the ground truth recorded in the FrameTrace.
#pragma once

#include <functional>
#include <utility>

#include "detect/detector.hpp"

namespace dvs::detect {

class IdealDetector final : public RateDetector {
 public:
  using Truth = std::function<Hertz(Seconds)>;

  explicit IdealDetector(Truth truth) : truth_(std::move(truth)) {}

  Hertz on_sample(Seconds now, Seconds /*interval*/) override {
    last_ = truth_(now);
    return last_;
  }

  [[nodiscard]] Hertz current_rate() const override { return last_; }

  void reset(Hertz initial) override { last_ = initial; }

  [[nodiscard]] std::string name() const override { return "ideal"; }

 private:
  Truth truth_;
  Hertz last_{0.0};
};

}  // namespace dvs::detect
