#include "detect/page_hinkley.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace dvs::detect {

PageHinkleyDetector::PageHinkleyDetector(double delta, double threshold,
                                         std::size_t warmup)
    : delta_(delta), threshold_(threshold), warmup_(warmup) {
  DVS_CHECK_MSG(delta_ >= 0.0, "PageHinkleyDetector: delta must be >= 0");
  DVS_CHECK_MSG(threshold_ > 0.0, "PageHinkleyDetector: threshold must be > 0");
  DVS_CHECK_MSG(warmup_ >= 2, "PageHinkleyDetector: warmup must be >= 2");
}

void PageHinkleyDetector::restart() {
  // Keep reporting the previous regime's mean while the new one warms up.
  n_ = 0;
  warm_sum_ = 0.0;
  cum_up_ = min_up_ = 0.0;
  cum_dn_ = max_dn_ = 0.0;
}

void PageHinkleyDetector::reset(Hertz initial) {
  restart();
  changes_ = 0;
  if (initial.value() > 0.0) {
    mean_ = 1.0 / initial.value();
    n_ = warmup_;  // treat the seed as an established regime
  } else {
    mean_ = 0.0;
  }
}

Hertz PageHinkleyDetector::current_rate() const {
  return mean_ > 0.0 ? Hertz{1.0 / mean_} : Hertz{0.0};
}

Hertz PageHinkleyDetector::on_sample(Seconds /*now*/, Seconds interval) {
  DVS_CHECK_MSG(interval.value() > 0.0, "PageHinkleyDetector: non-positive interval");
  const double x = interval.value();

  if (n_ < warmup_) {
    // (Re)estimating the regime mean; the previous estimate keeps serving
    // queries until the new one is ready.
    warm_sum_ += x;
    ++n_;
    if (n_ >= warmup_) {
      mean_ = warm_sum_ / static_cast<double>(warmup_);
      warm_sum_ = 0.0;
    }
    return current_rate();
  }

  // Normalized deviation from the regime mean.
  const double dev = x / mean_ - 1.0;
  // Mean increase (intervals getting longer -> rate dropping).
  cum_up_ += dev - delta_;
  min_up_ = std::min(min_up_, cum_up_);
  // Mean decrease.
  cum_dn_ += dev + delta_;
  max_dn_ = std::max(max_dn_, cum_dn_);

  const bool up = cum_up_ - min_up_ > threshold_;
  const bool down = max_dn_ - cum_dn_ > threshold_;
  if (up || down) {
    ++changes_;
    restart();
  }
  return current_rate();
}

}  // namespace dvs::detect
