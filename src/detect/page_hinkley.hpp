// Page-Hinkley mean-shift detector — a distribution-free baseline.
//
// Classic sequential analysis: accumulate the deviation of each interval
// from the running mean (with a tolerance delta); when the accumulated
// drift exceeds a threshold in either direction, declare a change, reset
// the accumulators and re-estimate the mean from scratch.  No likelihood
// model, no off-line characterization — the price is hand-tuned (delta,
// threshold) parameters and a normalization problem the likelihood-ratio
// detector does not have: the "right" threshold scales with the unknown
// mean, which this implementation handles by working on *normalized*
// deviations (x / mean - 1).
#pragma once

#include "detect/detector.hpp"

namespace dvs::detect {

class PageHinkleyDetector final : public RateDetector {
 public:
  /// delta: drift tolerance (fraction of the mean, e.g. 0.1);
  /// threshold: accumulated normalized drift that triggers (e.g. 12);
  /// warmup: samples used to (re)estimate the mean after a change.
  PageHinkleyDetector(double delta = 0.1, double threshold = 12.0,
                      std::size_t warmup = 10);

  Hertz on_sample(Seconds now, Seconds interval) override;
  [[nodiscard]] Hertz current_rate() const override;
  void reset(Hertz initial) override;
  [[nodiscard]] std::string name() const override { return "page-hinkley"; }

  [[nodiscard]] std::uint64_t changes_detected() const { return changes_; }

 private:
  void restart();

  double delta_;
  double threshold_;
  std::size_t warmup_;

  double mean_ = 0.0;          ///< current mean-interval estimate (0 = none)
  std::size_t n_ = 0;          ///< samples into the current regime
  double warm_sum_ = 0.0;
  double cum_up_ = 0.0;        ///< Page-Hinkley statistic for mean increase
  double min_up_ = 0.0;
  double cum_dn_ = 0.0;        ///< and for mean decrease
  double max_dn_ = 0.0;
  std::uint64_t changes_ = 0;
};

}  // namespace dvs::detect
