#include "detect/sliding_window.hpp"

#include "common/check.hpp"

namespace dvs::detect {

SlidingWindowDetector::SlidingWindowDetector(std::size_t window) : window_(window) {
  DVS_CHECK_MSG(window_ > 0, "SlidingWindowDetector: window must be > 0");
}

Hertz SlidingWindowDetector::on_sample(Seconds /*now*/, Seconds interval) {
  DVS_CHECK_MSG(interval.value() > 0.0, "SlidingWindowDetector: non-positive interval");
  samples_.push_back(interval.value());
  sum_ += interval.value();
  if (samples_.size() > window_) {
    sum_ -= samples_.front();
    samples_.pop_front();
  }
  // With a seeded prior, a part-filled window is worse information than the
  // seed (a couple of samples can swing the mean wildly at stream start or
  // right after a reset); keep the prior until a full window accumulated.
  // Unseeded, the running mean is all there is — use it from sample one.
  if (sum_ > 0.0 && (!seeded_ || samples_.size() >= window_)) {
    estimate_ = Hertz{static_cast<double>(samples_.size()) / sum_};
  }
  return estimate_;
}

void SlidingWindowDetector::reset(Hertz initial) {
  samples_.clear();
  sum_ = 0.0;
  estimate_ = initial;
  seeded_ = initial.value() > 0.0;
}

std::string SlidingWindowDetector::name() const {
  return "sliding-window(" + std::to_string(window_) + ")";
}

}  // namespace dvs::detect
