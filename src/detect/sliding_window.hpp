// Naive sliding-window mean-rate estimator: rate = n / sum of the last n
// intervals.  Not one of the paper's four algorithms; included as an extra
// baseline for the ablation benches (it is smoother than the EMA but lags a
// change by a full window).
#pragma once

#include <deque>

#include "detect/detector.hpp"

namespace dvs::detect {

class SlidingWindowDetector final : public RateDetector {
 public:
  explicit SlidingWindowDetector(std::size_t window = 50);

  Hertz on_sample(Seconds now, Seconds interval) override;
  [[nodiscard]] Hertz current_rate() const override { return estimate_; }
  void reset(Hertz initial) override;
  [[nodiscard]] std::string name() const override;

 private:
  std::size_t window_;
  std::deque<double> samples_;
  double sum_ = 0.0;
  Hertz estimate_{0.0};
  bool seeded_ = false;  ///< reset() gave a prior; hold it until the window fills
};

}  // namespace dvs::detect
