#include "detect/table_cache.hpp"

#include <bit>
#include <cstdio>
#include <mutex>
#include <string>
#include <unordered_map>

namespace dvs::detect {

namespace {

// Keys use the exact bit pattern of every field: two configs share a table
// only when the characterization they describe is bit-for-bit the same.
void append_u64(std::string& key, std::uint64_t v) {
  char buf[20];
  std::snprintf(buf, sizeof buf, "%016llx.",
                static_cast<unsigned long long>(v));
  key += buf;
}

void append_double(std::string& key, double v) {
  append_u64(key, std::bit_cast<std::uint64_t>(v));
}

std::string config_key(const ChangePointConfig& cfg) {
  std::string key;
  key.reserve(10 * 17);
  append_u64(key, cfg.window);
  append_u64(key, cfg.check_interval);
  append_u64(key, cfg.min_tail);
  append_double(key, cfg.confidence);
  append_double(key, cfg.grid_step);
  append_u64(key, cfg.grid_points);
  append_u64(key, cfg.mc_windows);
  append_u64(key, cfg.mc_seed);
  return key;
}

// Each entry owns a once_flag so concurrent first use of one config
// characterizes exactly once while other configs build in parallel.  The
// registry mutex is held only for map lookups, never during the (slow)
// Monte-Carlo characterization.
struct Entry {
  std::once_flag once;
  std::shared_ptr<const ThresholdTable> table;
};

struct Cache {
  std::mutex mu;
  std::unordered_map<std::string, std::shared_ptr<Entry>> entries;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
};

Cache& cache() {
  static Cache c;  // leaked-on-exit by design: destructor order is unsafe
  return c;
}

}  // namespace

std::shared_ptr<const ThresholdTable> shared_threshold_table(
    const ChangePointConfig& cfg) {
  Cache& c = cache();
  std::shared_ptr<Entry> entry;
  {
    std::lock_guard<std::mutex> lock{c.mu};
    std::shared_ptr<Entry>& slot = c.entries[config_key(cfg)];
    if (!slot) {
      slot = std::make_shared<Entry>();
      ++c.misses;
    } else {
      ++c.hits;
    }
    entry = slot;
  }
  std::call_once(entry->once, [&] {
    entry->table = std::make_shared<const ThresholdTable>(cfg);
  });
  return entry->table;
}

TableCacheStats threshold_table_cache_stats() {
  Cache& c = cache();
  std::lock_guard<std::mutex> lock{c.mu};
  return {c.hits, c.misses, c.entries.size()};
}

void clear_threshold_table_cache() {
  Cache& c = cache();
  std::lock_guard<std::mutex> lock{c.mu};
  c.entries.clear();
  c.hits = 0;
  c.misses = 0;
}

}  // namespace dvs::detect
