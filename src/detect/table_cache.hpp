// Process-wide cache of Monte-Carlo threshold characterizations.
//
// A ThresholdTable costs ~0.1 s to build (3000 windows x ~20 ratios per
// ChangePointConfig) and is immutable once built, so every consumer with
// the same config can share one instance.  Before this cache, only
// SweepRunner avoided recharacterizing; tests, examples, benches, and
// single-run CLI invocations each paid the full cost — sometimes several
// times per process.
//
// Keyed by ChangePointConfig *value*.  Concurrent first use of the same
// config characterizes exactly once (other threads wait on it); distinct
// configs characterize in parallel.  Entries live for the process —
// tables are a few hundred bytes, and the config space touched by one
// process is tiny.
#pragma once

#include <cstdint>
#include <memory>

#include "detect/threshold_table.hpp"

namespace dvs::detect {

/// Counters for the cache tests and for sizing intuition; `entries` is the
/// number of distinct configs characterized so far.
struct TableCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::size_t entries = 0;
};

/// The shared table for `cfg`, characterizing it on first use.
/// Thread-safe; deterministic (characterization depends only on cfg).
std::shared_ptr<const ThresholdTable> shared_threshold_table(
    const ChangePointConfig& cfg = {});

[[nodiscard]] TableCacheStats threshold_table_cache_stats();

/// Drops every cached table (outstanding shared_ptrs stay valid) and
/// zeroes the stats.  For tests that need a cold cache.
void clear_threshold_table_cache();

}  // namespace dvs::detect
