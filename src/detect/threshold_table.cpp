#include "detect/threshold_table.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.hpp"
#include "common/stats.hpp"

namespace dvs::detect {

double max_log_likelihood_ratio(const std::vector<double>& normalized_window,
                                double ratio, const ChangePointConfig& cfg) {
  DVS_CHECK_MSG(ratio > 0.0, "max_log_likelihood_ratio: ratio must be > 0");
  const std::size_t m = normalized_window.size();
  if (m < cfg.min_tail) return -std::numeric_limits<double>::infinity();

  // Suffix sums: tail_sum(k) = sum_{j >= k} x_j.
  // ln P(k) = (m - k) ln r - (r - 1) * tail_sum(k); maximize over candidate k.
  const double log_r = std::log(ratio);
  double best = -std::numeric_limits<double>::infinity();
  double tail_sum = 0.0;
  // Walk k from m-1 down to 0, accumulating the suffix sum; evaluate at
  // candidate positions (multiples of check_interval, tail >= min_tail).
  for (std::size_t j = m; j-- > 0;) {
    tail_sum += normalized_window[j];
    const std::size_t k = j;           // change after sample k (0-based)
    const std::size_t tail_len = m - k;
    if (tail_len < cfg.min_tail) continue;
    if (k % std::max<std::size_t>(cfg.check_interval, 1) != 0) continue;
    const double lnp = static_cast<double>(tail_len) * log_r - (ratio - 1.0) * tail_sum;
    best = std::max(best, lnp);
  }
  return best;
}

ThresholdTable::ThresholdTable(const ChangePointConfig& cfg) : cfg_(cfg) {
  DVS_CHECK_MSG(cfg.window >= 2 * cfg.min_tail, "ThresholdTable: window too small");
  DVS_CHECK_MSG(cfg.confidence > 0.5 && cfg.confidence < 1.0,
                "ThresholdTable: confidence must be in (0.5, 1)");
  DVS_CHECK_MSG(cfg.grid_step > 1.0, "ThresholdTable: grid step must be > 1");
  DVS_CHECK_MSG(cfg.grid_points >= 1, "ThresholdTable: need at least one grid point");
  DVS_CHECK_MSG(cfg.mc_windows >= 200, "ThresholdTable: too few Monte-Carlo windows");

  // Ratios: descending reciprocals then ascending powers, kept sorted.
  std::vector<double> ratios;
  for (std::size_t j = cfg.grid_points; j >= 1; --j) {
    ratios.push_back(std::pow(cfg.grid_step, -static_cast<double>(j)));
  }
  for (std::size_t j = 1; j <= cfg.grid_points; ++j) {
    ratios.push_back(std::pow(cfg.grid_step, static_cast<double>(j)));
  }

  ratios_ = ratios;

  Rng rng{cfg.mc_seed};
  std::vector<double> window(cfg.window);
  entries_.reserve(ratios.size());
  for (double r : ratios) {
    // Null hypothesis: all samples at the old rate, normalized to Exp(1).
    SampleQuantiles stat;
    for (std::size_t w = 0; w < cfg.mc_windows; ++w) {
      for (auto& x : window) x = rng.exponential(1.0);
      stat.add(max_log_likelihood_ratio(window, r, cfg_));
    }
    entries_.emplace_back(r, stat.quantile(cfg.confidence));
  }

  // Second stage: the on-line detector scans the whole ratio grid at every
  // check, so calibrate the maximum per-ratio margin under the null.
  SampleQuantiles margins;
  for (std::size_t w = 0; w < cfg.mc_windows; ++w) {
    for (auto& x : window) x = rng.exponential(1.0);
    double best = -std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < ratios_.size(); ++i) {
      best = std::max(best, max_log_likelihood_ratio(window, ratios_[i], cfg_) -
                                entries_[i].second);
    }
    margins.add(best);
  }
  scan_margin_ = std::max(0.0, margins.quantile(cfg.confidence));
}

double ThresholdTable::threshold_for_ratio(double r) const {
  DVS_CHECK_MSG(r > 0.0, "ThresholdTable: ratio must be > 0");
  const double lr = std::log(r);
  // entries_ are sorted by ratio; interpolate thresholds in log-ratio space.
  if (lr <= std::log(entries_.front().first)) return entries_.front().second;
  if (lr >= std::log(entries_.back().first)) return entries_.back().second;
  for (std::size_t i = 1; i < entries_.size(); ++i) {
    const double lo = std::log(entries_[i - 1].first);
    const double hi = std::log(entries_[i].first);
    if (lr <= hi) {
      const double frac = (lr - lo) / (hi - lo);
      return entries_[i - 1].second +
             frac * (entries_[i].second - entries_[i - 1].second);
    }
  }
  return entries_.back().second;
}

}  // namespace dvs::detect
