// Off-line characterization of the change-point detection threshold
// (Section 3.1): "Off-line characterization is done using stochastic
// simulation of a set of possible rates to obtain the value of ln P_max
// that is sufficient to detect the change in rate.  The results are
// accumulated in a histogram, and then the value of maximum likelihood
// ratio that gives very high probability that the rate has changed is
// chosen for every pair of rates under consideration.  In our work we
// selected 99.5% likelihood."
//
// Implementation note: the statistic is scale-invariant.  For a window of
// m samples x_j ~ Exp(lambda_o) and a candidate change lambda_o -> lambda_n
// with ratio r = lambda_n/lambda_o,
//
//   ln P_max(k) = (m-k) ln r - (r-1) * sum_{j>k} (lambda_o x_j),
//
// and lambda_o * x_j ~ Exp(1).  The null distribution therefore depends
// only on (m, r, candidate-k set), so one Monte-Carlo pass per *ratio*
// covers every rate pair with that ratio; thresholds for intermediate
// ratios interpolate in log-ratio space.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace dvs::detect {

/// Parameters shared by the threshold characterization and the on-line
/// detector (they must agree, or the false-positive calibration is wrong).
struct ChangePointConfig {
  std::size_t window = 100;        ///< m: samples kept for detection
  std::size_t check_interval = 10; ///< detection cadence and k granularity
  std::size_t min_tail = 5;        ///< smallest post-change tail considered
  double confidence = 0.995;       ///< paper: 99.5% likelihood
  /// Ratio grid for characterization: r = grid_step^j, j = 1..grid_points
  /// (and reciprocals for rate decreases).
  double grid_step = 1.25;
  std::size_t grid_points = 10;    ///< covers ratios up to ~9.3x each way
  std::size_t mc_windows = 3000;   ///< Monte-Carlo windows per ratio
  std::uint64_t mc_seed = 0x5eedu;

  /// Value equality: configs that compare equal produce bit-identical
  /// tables, which is what the process-wide cache (detect/table_cache.hpp)
  /// keys on.
  friend bool operator==(const ChangePointConfig&,
                         const ChangePointConfig&) = default;
};

/// The maximum of ln P over candidate change positions for one window of
/// normalized samples (lambda_o * x_j) against ratio r.  Candidate change
/// positions run over multiples of `check_interval` leaving at least
/// `min_tail` samples after the change.  Shared by characterization and the
/// on-line detector.
double max_log_likelihood_ratio(const std::vector<double>& normalized_window,
                                double ratio, const ChangePointConfig& cfg);

/// Table of detection thresholds indexed by rate ratio.
class ThresholdTable {
 public:
  /// Runs the Monte-Carlo characterization (deterministic given cfg).
  explicit ThresholdTable(const ChangePointConfig& cfg);

  /// Threshold for an arbitrary ratio r (> 0, != 1): interpolated in
  /// log-ratio space and clamped to the characterized range.
  [[nodiscard]] double threshold_for_ratio(double r) const;

  /// Scan-level margin: the on-line detector evaluates *every* grid ratio
  /// each check, so requiring stat > threshold per ratio alone would
  /// multiply the false-positive rate by the grid size.  This is the
  /// `confidence` quantile of max_r (stat(r) - threshold(r)) under the
  /// null; a change is declared only when the best margin exceeds it.
  [[nodiscard]] double scan_margin() const { return scan_margin_; }

  /// All candidate ratios the detector scans (grid powers and reciprocals).
  [[nodiscard]] const std::vector<double>& ratios() const { return ratios_; }

  /// The characterized (ratio, threshold) pairs, ascending by ratio.
  [[nodiscard]] const std::vector<std::pair<double, double>>& entries() const {
    return entries_;
  }

  [[nodiscard]] const ChangePointConfig& config() const { return cfg_; }

 private:
  ChangePointConfig cfg_;
  std::vector<std::pair<double, double>> entries_;  ///< (ratio, threshold)
  std::vector<double> ratios_;
  double scan_margin_ = 0.0;
};

}  // namespace dvs::detect
