#include "detect/weibull_change_point.hpp"

#include <cmath>

#include "common/check.hpp"

namespace dvs::detect {

WeibullChangePointDetector::WeibullChangePointDetector(
    double shape, std::shared_ptr<const ThresholdTable> thresholds)
    : shape_(shape),
      gamma_factor_(std::tgamma(1.0 + 1.0 / shape)),
      inner_(std::move(thresholds)) {
  DVS_CHECK_MSG(shape_ > 0.0, "WeibullChangePointDetector: shape must be > 0");
}

WeibullChangePointDetector::WeibullChangePointDetector(
    double shape, const ChangePointConfig& cfg)
    : WeibullChangePointDetector(shape,
                                 std::make_shared<const ThresholdTable>(cfg)) {}

double WeibullChangePointDetector::to_transformed_rate(double frame_rate) const {
  // frame rate r = 1/E[X] = a / Gamma(1 + 1/k)  =>  a = r * Gamma(1 + 1/k);
  // the transformed samples X^k are Exp(a^k).
  const double a = frame_rate * gamma_factor_;
  return std::pow(a, shape_);
}

double WeibullChangePointDetector::to_frame_rate(double transformed_rate) const {
  const double a = std::pow(transformed_rate, 1.0 / shape_);
  return a / gamma_factor_;
}

Hertz WeibullChangePointDetector::on_sample(Seconds now, Seconds interval) {
  DVS_CHECK_MSG(interval.value() > 0.0,
                "WeibullChangePointDetector: non-positive interval");
  const double transformed = std::pow(interval.value(), shape_);
  const Hertz inner_rate = inner_.on_sample(now, Seconds{transformed});
  return Hertz{to_frame_rate(inner_rate.value())};
}

Hertz WeibullChangePointDetector::current_rate() const {
  const double inner_rate = inner_.current_rate().value();
  if (inner_rate <= 0.0) return Hertz{0.0};
  return Hertz{to_frame_rate(inner_rate)};
}

void WeibullChangePointDetector::reset(Hertz initial) {
  if (initial.value() <= 0.0) {
    inner_.reset(Hertz{0.0});
    return;
  }
  inner_.reset(Hertz{to_transformed_rate(initial.value())});
}

std::string WeibullChangePointDetector::name() const {
  return "weibull-change-point(k=" + std::to_string(shape_).substr(0, 3) + ")";
}

}  // namespace dvs::detect
