// Change-point detection for Weibull intervals.
//
// The paper notes that "the same change point detection algorithm can be
// used for any type of distribution."  For a Weibull with *known shape k*
// there is an exact reduction to the exponential machinery: if
// X ~ Weibull(k, rate a) then X^k ~ Exp(a^k).  This detector raises every
// interval sample to the k-th power, runs the exponential change-point
// detector (same window, same off-line thresholds — the transformed samples
// really are exponential), and converts the detected scale back into a
// frame rate through the Weibull mean E[X] = Gamma(1 + 1/k) / a.
//
// Shape 1 degenerates to the plain detector; shape ~2-3 models the more
// regular interarrival processes of paced senders, where the plain
// exponential detector is mis-calibrated (its Monte-Carlo thresholds assume
// the wrong null distribution).
#pragma once

#include <memory>

#include "detect/change_point.hpp"
#include "detect/detector.hpp"

namespace dvs::detect {

class WeibullChangePointDetector final : public RateDetector {
 public:
  /// `shape` must be > 0; thresholds may be shared with plain detectors
  /// (the transformed samples are exponential, so the same characterization
  /// applies).
  WeibullChangePointDetector(double shape,
                             std::shared_ptr<const ThresholdTable> thresholds);
  WeibullChangePointDetector(double shape, const ChangePointConfig& cfg);

  Hertz on_sample(Seconds now, Seconds interval) override;
  [[nodiscard]] Hertz current_rate() const override;
  void reset(Hertz initial) override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] double shape() const { return shape_; }
  [[nodiscard]] std::uint64_t changes_detected() const {
    return inner_.changes_detected();
  }

 private:
  /// frame rate (1/E[X]) -> transformed exponential rate a^k.
  [[nodiscard]] double to_transformed_rate(double frame_rate) const;
  /// transformed exponential rate a^k -> frame rate.
  [[nodiscard]] double to_frame_rate(double transformed_rate) const;

  double shape_;
  double gamma_factor_;  ///< Gamma(1 + 1/k)
  ChangePointDetector inner_;
};

}  // namespace dvs::detect
