#include "dpm/adaptive.hpp"

#include <utility>

#include "common/check.hpp"
#include "common/fit.hpp"

namespace dvs::dpm {

AdaptiveDpmPolicy::AdaptiveDpmPolicy(DpmCostModel costs, AdaptiveDpmConfig cfg)
    : costs_(std::move(costs)), cfg_(cfg) {
  DVS_CHECK_MSG(cfg_.min_observations >= 5, "AdaptiveDpmPolicy: too few observations");
  DVS_CHECK_MSG(cfg_.refit_every >= 1, "AdaptiveDpmPolicy: bad refit cadence");
  DVS_CHECK_MSG(cfg_.max_history >= cfg_.min_observations,
                "AdaptiveDpmPolicy: history smaller than warmup");
  DVS_CHECK_MSG(cfg_.fallback_off > cfg_.fallback_standby,
                "AdaptiveDpmPolicy: fallback timeouts out of order");
  fallback_.steps.push_back({cfg_.fallback_standby, hw::PowerState::Standby});
  fallback_.steps.push_back({cfg_.fallback_off, hw::PowerState::Off});
  fallback_.validate();
}

void AdaptiveDpmPolicy::observe_idle_period(Seconds duration) {
  if (duration.value() <= 0.0) return;  // instant re-request carries no info
  history_.push_back(duration.value());
  if (history_.size() > cfg_.max_history) {
    history_.erase(history_.begin());
  }
  ++since_refit_;
  if (history_.size() >= cfg_.min_observations &&
      (fitted_ == nullptr || since_refit_ >= cfg_.refit_every)) {
    refit();
    since_refit_ = 0;
  }
}

void AdaptiveDpmPolicy::refit() {
  // Fit both families the authors' measurements discriminated between and
  // keep the better CDF fit.  A Pareto fit with shape <= 1 has no finite
  // mean (the plan evaluator needs one), so it only qualifies above a
  // small margin.
  const ExponentialFit expo = fit_exponential(history_);
  const ParetoFit pareto = fit_pareto(history_);
  if (pareto.shape > 1.05 && pareto.avg_cdf_error < expo.avg_cdf_error) {
    fitted_ = std::make_shared<ParetoIdle>(pareto.shape, Seconds{pareto.scale});
  } else {
    fitted_ = std::make_shared<ExponentialIdle>(Seconds{expo.mean});
  }

  // Re-optimize with the same constrained search TismdpPolicy runs.
  const TismdpPolicy solved{costs_, fitted_, cfg_.max_expected_delay};
  primary_ = solved.primary_plan();
  secondary_ = solved.secondary_plan();
  mix_p_ = solved.mix_probability();
}

SleepPlan AdaptiveDpmPolicy::plan(std::optional<Seconds>, Rng& rng) {
  if (fitted_ == nullptr) return fallback_;
  return rng.bernoulli(mix_p_) ? primary_ : secondary_;
}

}  // namespace dvs::dpm
