// Adaptive DPM: learn the idle-period distribution online.
//
// The paper's stochastic policies (renewal, TISMDP) assume the idle-period
// distribution is known — the authors measured it offline on the real
// workload.  A deployed power manager has to *learn* it: this policy
// collects the durations of completed idle periods, periodically fits both
// an exponential and a Pareto model (the two families the authors'
// measurements discriminated between), keeps whichever fits better by
// average CDF error, and re-optimizes its sleep plan against the fitted
// distribution with the same constrained plan search TismdpPolicy uses.
//
// Until enough idle periods have been observed it falls back to a
// conservative fixed timeout (sleeping late costs bounded energy; sleeping
// eagerly on a wrong model costs wakeup storms).
#pragma once

#include <memory>
#include <vector>

#include "dpm/policy.hpp"

namespace dvs::dpm {

struct AdaptiveDpmConfig {
  std::size_t min_observations = 20;   ///< before this: fallback timeout
  std::size_t refit_every = 10;        ///< re-fit/re-optimize cadence
  std::size_t max_history = 500;       ///< sliding window of idle durations
  Seconds fallback_standby{5.0};
  Seconds fallback_off{60.0};
  Seconds max_expected_delay{0.5};     ///< constraint for the plan search
};

class AdaptiveDpmPolicy final : public DpmPolicy {
 public:
  AdaptiveDpmPolicy(DpmCostModel costs, AdaptiveDpmConfig cfg = {});

  /// Call when an idle period completes, with its measured duration.  The
  /// PowerManager engine does this automatically when the policy is
  /// installed through it; standalone users call it directly.
  void observe_idle_period(Seconds duration);

  void on_idle_period_end(Seconds duration) override {
    observe_idle_period(duration);
  }

  SleepPlan plan(std::optional<Seconds>, Rng& rng) override;
  [[nodiscard]] std::string name() const override { return "adaptive"; }

  /// Introspection for tests and benches.
  [[nodiscard]] std::size_t observations() const { return history_.size(); }
  [[nodiscard]] bool learned() const { return fitted_ != nullptr; }
  [[nodiscard]] const IdleDistribution* fitted_distribution() const {
    return fitted_.get();
  }
  [[nodiscard]] const SleepPlan& current_primary_plan() const { return primary_; }
  [[nodiscard]] double mix_probability() const { return mix_p_; }

 private:
  void refit();

  DpmCostModel costs_;
  AdaptiveDpmConfig cfg_;
  std::vector<double> history_;   ///< completed idle durations (seconds)
  std::size_t since_refit_ = 0;
  IdleDistributionPtr fitted_;
  SleepPlan fallback_;
  SleepPlan primary_;
  SleepPlan secondary_;
  double mix_p_ = 1.0;
};

}  // namespace dvs::dpm
