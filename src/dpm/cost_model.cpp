#include "dpm/cost_model.hpp"

#include <algorithm>
#include <limits>

#include "common/check.hpp"
#include "hw/smartbadge_data.hpp"

namespace dvs::dpm {

Seconds DpmCostModel::break_even(const SleepOption& opt) const {
  const double saved = idle_power.value() - opt.power.value();
  if (saved <= 0.0) return Seconds{std::numeric_limits<double>::infinity()};
  return Seconds{opt.wakeup_energy.value() / (saved * 1e-3)};
}

DpmCostModel smartbadge_cost_model(const hw::SmartBadge& badge) {
  DpmCostModel model;
  MilliWatts idle{0.0};
  MilliWatts active{0.0};
  MilliWatts standby{0.0};
  MilliWatts off{0.0};
  Seconds worst_sby{0.0};
  Seconds worst_off{0.0};
  for (std::size_t i = 0; i < badge.num_components(); ++i) {
    const auto id = static_cast<hw::BadgeComponentId>(i);
    const hw::ComponentSpec& spec = badge.component(id).spec();
    idle += spec.idle_power;
    active += spec.active_power;
    standby += spec.standby_power;
    off += spec.off_power;
    worst_sby = std::max(worst_sby, spec.wakeup_from_standby);
    worst_off = std::max(worst_off, spec.wakeup_from_off);
  }
  model.idle_power = idle;
  model.active_power = active;
  model.options.push_back({hw::PowerState::Standby, standby, worst_sby,
                           energy(active, worst_sby)});
  model.options.push_back(
      {hw::PowerState::Off, off, worst_off, energy(active, worst_off)});
  DVS_CHECK_MSG(model.options[0].power >= model.options[1].power,
                "smartbadge_cost_model: off should not draw more than standby");
  return model;
}

}  // namespace dvs::dpm
