// Whole-device cost model consumed by the DPM policies.
//
// Policies reason about aggregate badge power per power state (the "Total"
// row of Table 1) plus the wakeup latency and wakeup energy of each sleep
// state.  Wakeup latency is the slowest component's transition time (the
// badge is usable only when everything is back), and wakeup energy charges
// active power for that latency — matching the Component model.
#pragma once

#include <string>
#include <vector>

#include "common/units.hpp"
#include "hw/power_state.hpp"
#include "hw/smartbadge.hpp"

namespace dvs::dpm {

/// One commandable sleep state with its costs.
struct SleepOption {
  hw::PowerState state;
  MilliWatts power;        ///< badge power while resident in the state
  Seconds wakeup_latency;  ///< worst-case component wakeup
  Joules wakeup_energy;    ///< energy burned waking up

  [[nodiscard]] std::string name() const { return std::string(hw::to_string(state)); }
};

/// Aggregate costs for the device the policy manages.
struct DpmCostModel {
  MilliWatts idle_power;    ///< power while idle and undisturbed
  MilliWatts active_power;  ///< power while servicing (used for wakeup energy)
  std::vector<SleepOption> options;  ///< ordered shallow -> deep

  /// Break-even time of a sleep option: the idle-period length above which
  /// sleeping immediately beats staying idle.  Derived from
  ///   P_idle * T  >  P_s * T + E_wake
  /// => T_be = E_wake / (P_idle - P_s).  Infinite when the state saves
  /// nothing.
  [[nodiscard]] Seconds break_even(const SleepOption& opt) const;
};

/// Builds the cost model for a SmartBadge (Table 1 aggregates).
DpmCostModel smartbadge_cost_model(const hw::SmartBadge& badge);

}  // namespace dvs::dpm
