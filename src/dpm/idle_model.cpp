#include "dpm/idle_model.hpp"

#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdio>

#include "common/check.hpp"

namespace dvs::dpm {

namespace {

// Cache keys embed parameter bit patterns, not decimal renderings, so two
// distributions share solves only when they are numerically identical.
std::string param_bits(const char* tag, double a, double b) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%s(%016llx,%016llx)", tag,
                static_cast<unsigned long long>(std::bit_cast<std::uint64_t>(a)),
                static_cast<unsigned long long>(std::bit_cast<std::uint64_t>(b)));
  return buf;
}

}  // namespace

// ---- ExponentialIdle --------------------------------------------------------

ExponentialIdle::ExponentialIdle(Seconds mean) : rate_(1.0 / mean.value()) {
  DVS_CHECK_MSG(mean.value() > 0.0, "ExponentialIdle: mean must be > 0");
}

double ExponentialIdle::survival(Seconds t) const {
  if (t.value() <= 0.0) return 1.0;
  return std::exp(-rate_ * t.value());
}

Seconds ExponentialIdle::mean_excess(Seconds t) const {
  // Memoryless: E[(T-t)^+] = S(t) * mean.
  return Seconds{survival(t) / rate_};
}

Seconds ExponentialIdle::mean_truncated(Seconds t) const {
  if (t.value() <= 0.0) return Seconds{0.0};
  return Seconds{(1.0 - std::exp(-rate_ * t.value())) / rate_};
}

Seconds ExponentialIdle::sample(Rng& rng) const {
  return Seconds{rng.exponential(rate_)};
}

std::string ExponentialIdle::cache_key() const {
  return param_bits("exp", rate_, 0.0);
}

// ---- ParetoIdle -------------------------------------------------------------

ParetoIdle::ParetoIdle(double shape, Seconds scale) : shape_(shape), scale_(scale) {
  DVS_CHECK_MSG(shape > 1.0, "ParetoIdle: shape must be > 1 for a finite mean");
  DVS_CHECK_MSG(scale.value() > 0.0, "ParetoIdle: scale must be > 0");
}

double ParetoIdle::survival(Seconds t) const {
  if (t.value() <= scale_.value()) return 1.0;
  return std::pow(scale_.value() / t.value(), shape_);
}

Seconds ParetoIdle::mean() const {
  return Seconds{shape_ * scale_.value() / (shape_ - 1.0)};
}

Seconds ParetoIdle::mean_excess(Seconds t) const {
  // E[(T-t)^+] = integral_t^inf S(u) du.
  const double m = scale_.value();
  const double a = shape_;
  if (t.value() <= m) {
    // Full region below the scale plus the tail from the scale.
    return Seconds{(m - t.value()) + m / (a - 1.0)};
  }
  // integral_t^inf (m/u)^a du = t * S(t) / (a - 1).
  return Seconds{t.value() * survival(t) / (a - 1.0)};
}

Seconds ParetoIdle::mean_truncated(Seconds t) const {
  if (t.value() <= 0.0) return Seconds{0.0};
  // E[min(T,t)] = E[T] - E[(T-t)^+].
  return mean() - mean_excess(t);
}

Seconds ParetoIdle::sample(Rng& rng) const {
  return Seconds{rng.pareto(shape_, scale_.value())};
}

std::string ParetoIdle::cache_key() const {
  return param_bits("pareto", shape_, scale_.value());
}

}  // namespace dvs::dpm
