// Idle-period models.
//
// The authors' DPM line of work (refs [2, 3] of the paper) established that
// real idle periods are *not* exponential — the tail is heavy, and policies
// must account for the time already spent idle.  Both distributions are
// provided: exponential (the classic but wrong assumption) and Pareto (the
// heavy-tailed model their measurements supported).  Policies consume this
// interface analytically — survival, truncated means — and the session
// generator samples from it.
#pragma once

#include <memory>
#include <string>

#include "common/rng.hpp"
#include "common/units.hpp"

namespace dvs::dpm {

/// Distribution of the length of one idle period.
class IdleDistribution {
 public:
  virtual ~IdleDistribution() = default;

  /// P(T > t).
  [[nodiscard]] virtual double survival(Seconds t) const = 0;
  /// E[T].
  [[nodiscard]] virtual Seconds mean() const = 0;
  /// E[(T - t)^+] — expected residual idle time beyond t.
  [[nodiscard]] virtual Seconds mean_excess(Seconds t) const = 0;
  /// E[min(T, t)] — expected idle time spent before t (or the whole period).
  [[nodiscard]] virtual Seconds mean_truncated(Seconds t) const = 0;

  [[nodiscard]] virtual Seconds sample(Rng& rng) const = 0;
  [[nodiscard]] virtual std::string name() const = 0;

  /// Value identity for the process-wide solve cache (dpm/solve_cache.hpp):
  /// two distributions with the same non-empty key must be analytically
  /// interchangeable (identical survival/mean/mean_excess/mean_truncated).
  /// The default opts out — an empty key means solves against this
  /// distribution are never cached, which is always correct.
  [[nodiscard]] virtual std::string cache_key() const { return {}; }

  /// Conditional mean residual life E[T - t | T > t] = mean_excess(t)/S(t).
  /// For heavy tails this *grows* with t — the longer the system has been
  /// idle, the longer it should expect to stay idle, which is exactly the
  /// information the time-indexed (TISMDP) policies exploit and memoryless
  /// models throw away.
  [[nodiscard]] Seconds mean_residual(Seconds t) const {
    const double s = survival(t);
    if (s <= 0.0) return Seconds{0.0};
    return Seconds{mean_excess(t).value() / s};
  }
};

using IdleDistributionPtr = std::shared_ptr<const IdleDistribution>;

/// Exponential idle periods with the given mean.
class ExponentialIdle final : public IdleDistribution {
 public:
  explicit ExponentialIdle(Seconds mean);

  [[nodiscard]] double survival(Seconds t) const override;
  [[nodiscard]] Seconds mean() const override { return Seconds{1.0 / rate_}; }
  [[nodiscard]] Seconds mean_excess(Seconds t) const override;
  [[nodiscard]] Seconds mean_truncated(Seconds t) const override;
  [[nodiscard]] Seconds sample(Rng& rng) const override;
  [[nodiscard]] std::string name() const override { return "exponential"; }
  [[nodiscard]] std::string cache_key() const override;

 private:
  double rate_;
};

/// Pareto idle periods: survival (scale/t)^shape for t >= scale.
/// Requires shape > 1 so the mean exists.
class ParetoIdle final : public IdleDistribution {
 public:
  ParetoIdle(double shape, Seconds scale);

  [[nodiscard]] double survival(Seconds t) const override;
  [[nodiscard]] Seconds mean() const override;
  [[nodiscard]] Seconds mean_excess(Seconds t) const override;
  [[nodiscard]] Seconds mean_truncated(Seconds t) const override;
  [[nodiscard]] Seconds sample(Rng& rng) const override;
  [[nodiscard]] std::string name() const override { return "pareto"; }
  [[nodiscard]] std::string cache_key() const override;

  [[nodiscard]] double shape() const { return shape_; }
  [[nodiscard]] Seconds scale() const { return scale_; }

 private:
  double shape_;
  Seconds scale_;
};

}  // namespace dvs::dpm
