#include "dpm/policy.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "common/check.hpp"
#include "dpm/solve_cache.hpp"

namespace dvs::dpm {

void SleepPlan::validate() const {
  for (std::size_t i = 0; i < steps.size(); ++i) {
    DVS_CHECK_MSG(steps[i].after.value() >= 0.0, "SleepPlan: negative timeout");
    DVS_CHECK_MSG(hw::is_sleep_state(steps[i].state),
                  "SleepPlan: step targets a non-sleep state");
    if (i > 0) {
      DVS_CHECK_MSG(steps[i].after > steps[i - 1].after,
                    "SleepPlan: timeouts must be strictly increasing");
      DVS_CHECK_MSG(hw::deeper_than(steps[i].state, steps[i - 1].state),
                    "SleepPlan: steps must deepen");
    }
  }
}

namespace {

const SleepOption& option_for(const DpmCostModel& costs, hw::PowerState s) {
  for (const auto& opt : costs.options) {
    if (opt.state == s) return opt;
  }
  throw std::logic_error("DpmCostModel: no option for state " +
                         std::string(hw::to_string(s)));
}

}  // namespace

PlanEvaluation evaluate_plan(const SleepPlan& plan, const DpmCostModel& costs,
                             const IdleDistribution& idle) {
  plan.validate();
  PlanEvaluation out;
  if (plan.empty()) {
    out.expected_energy = energy(costs.idle_power, idle.mean());
    return out;
  }

  // Residency energy, segment by segment.
  double e = 0.0;  // joules
  // Idle segment [0, tau_1).
  e += costs.idle_power.value() * 1e-3 * idle.mean_truncated(plan.steps[0].after).value();
  // Sleep segments.
  for (std::size_t i = 0; i < plan.steps.size(); ++i) {
    const SleepOption& opt = option_for(costs, plan.steps[i].state);
    const Seconds seg_start = plan.steps[i].after;
    const bool last = i + 1 == plan.steps.size();
    const double resident =
        last ? idle.mean_excess(seg_start).value()
             : (idle.mean_truncated(plan.steps[i + 1].after) -
                idle.mean_truncated(seg_start))
                   .value();
    e += opt.power.value() * 1e-3 * resident;

    // Wakeup cost and delay, weighted by P(the period ends in this segment).
    const double p_this = last ? idle.survival(seg_start)
                               : idle.survival(seg_start) -
                                     idle.survival(plan.steps[i + 1].after);
    e += p_this * opt.wakeup_energy.value();
    out.expected_delay += opt.wakeup_latency * p_this;
  }
  out.expected_energy = Joules{e};
  out.sleep_probability = idle.survival(plan.steps[0].after);
  return out;
}

Joules idle_only_energy(const DpmCostModel& costs, const IdleDistribution& idle) {
  return energy(costs.idle_power, idle.mean());
}

// ---- FixedTimeoutPolicy -------------------------------------------------------

FixedTimeoutPolicy::FixedTimeoutPolicy(Seconds standby_timeout, Seconds off_timeout) {
  const double inf = std::numeric_limits<double>::infinity();
  if (standby_timeout.value() < inf) {
    plan_.steps.push_back({standby_timeout, hw::PowerState::Standby});
  }
  if (off_timeout.value() < inf) {
    DVS_CHECK_MSG(plan_.empty() || off_timeout > standby_timeout,
                  "FixedTimeoutPolicy: off timeout must exceed standby timeout");
    plan_.steps.push_back({off_timeout, hw::PowerState::Off});
  }
  plan_.validate();
}

SleepPlan FixedTimeoutPolicy::plan(std::optional<Seconds>, Rng&) { return plan_; }

std::string FixedTimeoutPolicy::name() const { return "timeout"; }

// ---- OraclePolicy --------------------------------------------------------------

OraclePolicy::OraclePolicy(DpmCostModel costs) : costs_(std::move(costs)) {}

SleepPlan OraclePolicy::plan(std::optional<Seconds> oracle_idle_length, Rng&) {
  if (!oracle_idle_length.has_value()) {
    // No future request exists (end of session): the idle period is
    // unbounded, so the deepest (lowest-power) state wins outright.
    SleepPlan plan;
    const SleepOption* deepest = nullptr;
    for (const auto& opt : costs_.options) {
      if (deepest == nullptr || opt.power < deepest->power) deepest = &opt;
    }
    if (deepest != nullptr) plan.steps.push_back({Seconds{0.0}, deepest->state});
    return plan;
  }
  const double t = oracle_idle_length->value();
  // Stay idle: P_idle * T.  Sleep into s now: P_s * T + E_wake(s).
  double best_cost = costs_.idle_power.value() * 1e-3 * t;
  const SleepOption* best = nullptr;
  for (const auto& opt : costs_.options) {
    const double cost = opt.power.value() * 1e-3 * t + opt.wakeup_energy.value();
    if (cost < best_cost) {
      best_cost = cost;
      best = &opt;
    }
  }
  SleepPlan plan;
  if (best != nullptr) plan.steps.push_back({Seconds{0.0}, best->state});
  return plan;
}

// ---- candidate enumeration -------------------------------------------------------

std::vector<Seconds> timeout_grid(Seconds horizon, std::size_t points_per_decade) {
  DVS_CHECK_MSG(horizon.value() > 0.01, "timeout_grid: horizon too small");
  DVS_CHECK_MSG(points_per_decade >= 2, "timeout_grid: too few points");
  std::vector<Seconds> grid;
  grid.push_back(Seconds{0.0});
  const double step = std::pow(10.0, 1.0 / static_cast<double>(points_per_decade));
  for (double t = 0.01; t <= horizon.value() * (1.0 + 1e-12); t *= step) {
    grid.push_back(Seconds{t});
  }
  return grid;
}

std::vector<SleepPlan> candidate_plans(const DpmCostModel& costs, Seconds horizon) {
  const std::vector<Seconds> grid = timeout_grid(horizon);
  std::vector<SleepPlan> plans;
  plans.push_back({});  // never sleep
  for (const auto& opt : costs.options) {
    for (Seconds tau : grid) {
      SleepPlan p;
      p.steps.push_back({tau, opt.state});
      plans.push_back(std::move(p));
    }
  }
  // Chained standby-then-off plans.
  if (costs.options.size() >= 2) {
    const auto& shallow = costs.options.front();
    const auto& deep = costs.options.back();
    if (hw::deeper_than(deep.state, shallow.state)) {
      for (Seconds t1 : grid) {
        for (Seconds t2 : grid) {
          if (t2 <= t1) continue;
          SleepPlan p;
          p.steps.push_back({t1, shallow.state});
          p.steps.push_back({t2, deep.state});
          plans.push_back(std::move(p));
        }
      }
    }
  }
  return plans;
}

// ---- RenewalPolicy ---------------------------------------------------------------

RenewalPolicy::RenewalPolicy(DpmCostModel costs, IdleDistributionPtr idle) {
  DVS_CHECK_MSG(idle != nullptr, "RenewalPolicy: null idle distribution");
  // Renewal formulation: one decision state, single sleep transition per
  // cycle; minimize expected energy per renewal cycle divided by expected
  // cycle length.  The cycle is idle period + wakeup (the active part is
  // policy-independent, so it drops out of the argmin).
  double best = std::numeric_limits<double>::infinity();
  const Seconds horizon = std::max(Seconds{60.0}, idle->mean() * 10.0);
  for (const SleepPlan& p : candidate_plans(costs, horizon)) {
    if (p.steps.size() > 1) continue;  // single decision in the renewal model
    const PlanEvaluation ev = evaluate_plan(p, costs, *idle);
    const double cycle = idle->mean().value() + ev.expected_delay.value();
    const double rate = ev.expected_energy.value() / cycle;
    if (rate < best) {
      best = rate;
      plan_ = p;
    }
  }
}

// ---- TismdpPolicy -----------------------------------------------------------------

TismdpPolicy::TismdpPolicy(DpmCostModel costs, IdleDistributionPtr idle,
                           Seconds max_expected_delay) {
  DVS_CHECK_MSG(idle != nullptr, "TismdpPolicy: null idle distribution");
  DVS_CHECK_MSG(max_expected_delay.value() >= 0.0,
                "TismdpPolicy: negative delay constraint");
  // The plan search lives in solve_tismdp_mix (dpm/solve_cache.cpp) and is
  // memoized process-wide: identical (costs, idle, constraint) inputs —
  // every replicate of a sweep cell, repeated tests — solve once.
  const std::shared_ptr<const TismdpMixSolution> sol =
      cached_tismdp_mix(costs, idle, max_expected_delay);
  primary_ = sol->primary;
  secondary_ = sol->secondary;
  mix_p_ = sol->mix_p;
}

SleepPlan TismdpPolicy::plan(std::optional<Seconds>, Rng& rng) {
  return rng.bernoulli(mix_p_) ? primary_ : secondary_;
}

}  // namespace dvs::dpm
