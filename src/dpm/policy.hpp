// DPM policies: when, after entering idle, to command sleep states.
//
// "Once the decoding is completed, the system enters idle state.  At this
// point the power manager observes the time spent in the idle state, and
// depending on the policy obtained using either renewal theory or TISMDP
// model, it decides when to transition into one of the sleep states."
//
// A policy's output is a SleepPlan: a schedule of (time-since-idle-entry,
// target state) steps, deepening over time — the time-indexed structure of
// Figure 7.  Policies are evaluated analytically against an idle-period
// distribution (evaluate_plan) and executed by the PowerManager engine.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "dpm/cost_model.hpp"
#include "dpm/idle_model.hpp"

namespace dvs::dpm {

/// One step of a plan: `after` seconds into the idle period, command
/// `state`.
struct SleepStep {
  Seconds after;
  hw::PowerState state;
};

/// A schedule of deepening sleep steps (possibly empty = stay idle).
struct SleepPlan {
  std::vector<SleepStep> steps;

  [[nodiscard]] bool empty() const { return steps.empty(); }
  /// Validates ordering (ascending times, deepening states); throws on
  /// violation.
  void validate() const;
};

/// Analytic evaluation of a plan against an idle-period distribution.
struct PlanEvaluation {
  Joules expected_energy{0.0};   ///< per idle period, including wakeup energy
  Seconds expected_delay{0.0};   ///< expected wakeup latency per idle period
  double sleep_probability = 0.0;  ///< P(any sleep step fires before the period ends)
};
PlanEvaluation evaluate_plan(const SleepPlan& plan, const DpmCostModel& costs,
                             const IdleDistribution& idle);

/// Expected energy of *not* sleeping at all (baseline for savings).
Joules idle_only_energy(const DpmCostModel& costs, const IdleDistribution& idle);

// ---- policy interface ---------------------------------------------------------

class DpmPolicy {
 public:
  virtual ~DpmPolicy() = default;

  /// Produces the plan for one idle period.  `oracle_idle_length` is the
  /// true upcoming idle length; only the oracle policy reads it.  `rng`
  /// resolves randomized policies.
  virtual SleepPlan plan(std::optional<Seconds> oracle_idle_length, Rng& rng) = 0;

  /// Feedback hook: the idle period that this policy last planned for has
  /// ended after `duration`.  Called by the PowerManager engine; adaptive
  /// policies learn from it, everything else ignores it.
  virtual void on_idle_period_end(Seconds duration) { (void)duration; }

  [[nodiscard]] virtual std::string name() const = 0;
};

using DpmPolicyPtr = std::shared_ptr<DpmPolicy>;

/// Never sleeps — the "no DPM" rows of Table 5.
class NeverSleepPolicy final : public DpmPolicy {
 public:
  SleepPlan plan(std::optional<Seconds>, Rng&) override { return {}; }
  [[nodiscard]] std::string name() const override { return "none"; }
};

/// Classic fixed timeouts: standby after t_sby, off after t_off (either may
/// be disabled by passing an infinite timeout).
class FixedTimeoutPolicy final : public DpmPolicy {
 public:
  FixedTimeoutPolicy(Seconds standby_timeout, Seconds off_timeout);

  SleepPlan plan(std::optional<Seconds>, Rng&) override;
  [[nodiscard]] std::string name() const override;

 private:
  SleepPlan plan_;
};

/// Oracle: knows the idle length, sleeps immediately into the state that
/// minimizes the period's energy (never worse than any causal policy).
class OraclePolicy final : public DpmPolicy {
 public:
  explicit OraclePolicy(DpmCostModel costs);

  SleepPlan plan(std::optional<Seconds> oracle_idle_length, Rng&) override;
  [[nodiscard]] std::string name() const override { return "oracle"; }

 private:
  DpmCostModel costs_;
};

/// Renewal-theory policy [ref 2 of the paper]: a single decision on idle
/// entry; minimizes expected energy per renewal cycle over single-state
/// timeout plans, with no performance constraint.
class RenewalPolicy final : public DpmPolicy {
 public:
  RenewalPolicy(DpmCostModel costs, IdleDistributionPtr idle);

  SleepPlan plan(std::optional<Seconds>, Rng&) override { return plan_; }
  [[nodiscard]] std::string name() const override { return "renewal"; }

  [[nodiscard]] const SleepPlan& chosen_plan() const { return plan_; }

 private:
  SleepPlan plan_;
};

/// TISMDP-style policy [ref 3]: time-indexed idle states, decisions allowed
/// at any index, optimized against the idle distribution *subject to a
/// performance constraint* (expected wakeup delay per idle period).  The
/// optimum over this class is a randomized mix of two deepening-timeout
/// plans; plan() samples the mix.
class TismdpPolicy final : public DpmPolicy {
 public:
  /// max_expected_delay: performance constraint per idle period.
  TismdpPolicy(DpmCostModel costs, IdleDistributionPtr idle,
               Seconds max_expected_delay);

  SleepPlan plan(std::optional<Seconds>, Rng& rng) override;
  [[nodiscard]] std::string name() const override { return "tismdp"; }

  [[nodiscard]] const SleepPlan& primary_plan() const { return primary_; }
  [[nodiscard]] const SleepPlan& secondary_plan() const { return secondary_; }
  /// Probability of using the primary plan.
  [[nodiscard]] double mix_probability() const { return mix_p_; }

 private:
  SleepPlan primary_;
  SleepPlan secondary_;
  double mix_p_ = 1.0;
};

/// Candidate timeout grid used by the optimizing policies (geometric from
/// 10 ms to `horizon`, plus 0).  Exposed for the ablation benches.
std::vector<Seconds> timeout_grid(Seconds horizon, std::size_t points_per_decade = 8);

/// Enumerates candidate plans over the grid: single-state plans for every
/// option/timeout, plus chained standby-then-off plans.
std::vector<SleepPlan> candidate_plans(const DpmCostModel& costs, Seconds horizon);

}  // namespace dvs::dpm
