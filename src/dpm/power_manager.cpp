#include "dpm/power_manager.hpp"

#include <utility>

#include "common/check.hpp"

namespace dvs::dpm {

PowerManager::PowerManager(sim::Simulator& sim, hw::SmartBadge& badge,
                           DpmPolicyPtr policy, std::uint64_t seed)
    : sim_(&sim), badge_(&badge), policy_(std::move(policy)), rng_(seed) {
  DVS_CHECK_MSG(policy_ != nullptr, "PowerManager: null policy");
}

void PowerManager::set_observability(obs::TraceRecorder* trace,
                                     obs::MetricsRegistry* metrics) {
  trace_ = trace;
  idle_hist_ = metrics == nullptr
                   ? nullptr
                   : &metrics->histogram("dpm.idle_period_s", 0.0, 120.0, 240);
}

void PowerManager::cancel_pending() {
  for (sim::EventId id : pending_) sim_->cancel(id);
  pending_.clear();
}

void PowerManager::on_idle_enter(Seconds now,
                                 std::optional<Seconds> idle_length_hint) {
  DVS_CHECK_MSG(!asleep(), "PowerManager: idle entry while asleep");
  ++idle_periods_;
  idle_started_at_ = now;
  if (tracing()) {
    trace_->record(now.value(), obs::DpmIdleEnter{
                                    idle_length_hint ? idle_length_hint->value()
                                                     : -1.0});
  }
  if (flight_ != nullptr) {
    flight_->record(now.value(), obs::FlightEventType::DpmIdleEnter, 0,
                    static_cast<float>(idle_length_hint
                                           ? idle_length_hint->value()
                                           : -1.0),
                    0.0F);
  }
  SleepPlan plan = policy_->plan(idle_length_hint, rng_);
  plan.validate();
  for (const SleepStep& step : plan.steps) {
    const hw::PowerState target = step.state;
    pending_.push_back(sim_->schedule_at(now + step.after, [this, target] {
      // Deepening while idle is instantaneous in the component model.
      // set_all accrues the pre-sleep interval first, so switching the
      // ledger cause afterwards charges only the slept time to the DPM.
      badge_->set_all(target, sim_->now());
      depth_ = target;
      ++sleeps_;
      if (tracing()) {
        trace_->record(sim_->now().value(),
                       obs::DpmSleepCommand{hw::to_string(target)});
      }
      if (ledger_ != nullptr) ledger_->set_cause(obs::Cause::DpmSleep);
      if (flight_ != nullptr) {
        flight_->record(sim_->now().value(), obs::FlightEventType::DpmSleep,
                        static_cast<std::uint16_t>(target), 0.0F, 0.0F);
      }
    }));
  }
}

Seconds PowerManager::on_request(Seconds now) {
  cancel_pending();
  Seconds idle_length{0.0};
  if (idle_started_at_.has_value()) {
    // Feedback for adaptive policies: the idle period just ended.
    idle_length = now - *idle_started_at_;
    policy_->on_idle_period_end(idle_length);
    if (idle_hist_ != nullptr) idle_hist_->add(idle_length.value());
    idle_started_at_.reset();
  }
  if (!asleep()) return now;

  // Wake every component back to idle; the decode path will activate what
  // it needs.  The badge reports the slowest wakeup.  The set_all accrual
  // closes the slept interval under the DpmSleep cause; the wakeup
  // transition that follows is charged to DpmWakeup.
  const hw::PowerState was = depth_;
  badge_->set_all(hw::PowerState::Idle, now);
  if (ledger_ != nullptr) ledger_->set_cause(obs::Cause::DpmWakeup);
  Seconds ready = badge_->latest_wakeup_completion(now);
  if (wakeup_fault_hook_) ready += wakeup_fault_hook_(now);
  const Seconds delay = ready - now;
  total_wakeup_delay_ += delay;
  ++wakeups_;
  depth_ = hw::PowerState::Idle;
  if (tracing()) {
    trace_->record(now.value(), obs::DpmWakeup{hw::to_string(was), delay.value(),
                                               idle_length.value()});
  }
  if (flight_ != nullptr) {
    flight_->record(now.value(), obs::FlightEventType::DpmWakeup,
                    static_cast<std::uint16_t>(was),
                    static_cast<float>(delay.value()),
                    static_cast<float>(idle_length.value()));
  }
  if (ready > now) {
    sim_->schedule_at(ready, [this] { badge_->finish_wakeups(sim_->now()); });
  } else {
    badge_->finish_wakeups(now);
  }
  return ready;
}

}  // namespace dvs::dpm
