// The DPM execution engine.
//
// Bridges a DpmPolicy to the simulated hardware: on idle entry it asks the
// policy for a sleep plan and schedules the commanded transitions; on the
// next request it cancels what has not fired yet, wakes the badge, and
// reports when the device is usable again.  The wakeup latency it reports
// is exactly the performance penalty the TISMDP constraint bounds.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "dpm/policy.hpp"
#include "hw/smartbadge.hpp"
#include "obs/attribution.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/trace_recorder.hpp"
#include "sim/simulator.hpp"

namespace dvs::dpm {

class PowerManager {
 public:
  PowerManager(sim::Simulator& sim, hw::SmartBadge& badge, DpmPolicyPtr policy,
               std::uint64_t seed);

  /// The system has drained its queue and gone idle.  `idle_length_hint` is
  /// the true upcoming idle length when the caller knows it (trace-driven
  /// simulation); only the oracle policy consumes it.
  void on_idle_enter(Seconds now, std::optional<Seconds> idle_length_hint);

  /// A request arrived.  Cancels pending sleep steps, wakes the badge if it
  /// was sleeping, and returns the time at which the device can serve.
  Seconds on_request(Seconds now);

  [[nodiscard]] bool asleep() const { return depth_ != hw::PowerState::Idle; }
  [[nodiscard]] hw::PowerState depth() const { return depth_; }

  // ---- statistics -----------------------------------------------------------
  [[nodiscard]] int idle_periods() const { return idle_periods_; }
  [[nodiscard]] int sleeps_commanded() const { return sleeps_; }
  [[nodiscard]] int wakeups() const { return wakeups_; }
  [[nodiscard]] Seconds total_wakeup_delay() const { return total_wakeup_delay_; }

  [[nodiscard]] const DpmPolicy& policy() const { return *policy_; }

  /// Attaches observability: trace events for idle-enter / sleep / wakeup,
  /// and an idle-period-length histogram in the registry.  Either pointer
  /// may be null.
  void set_observability(obs::TraceRecorder* trace, obs::MetricsRegistry* metrics);

  /// Attaches the attribution ledger: sleep commands and wakeups switch its
  /// cause, so the energy of a slept interval (and of the wakeup
  /// transition that ends it) is charged to the DPM decision.  May be null.
  void set_ledger(obs::AttributionLedger* ledger) { ledger_ = ledger; }

  /// Attaches the flight recorder (idle-enter / sleep / wakeup records).
  /// May be null.
  void set_flight(obs::FlightRecorder* flight) { flight_ = flight; }

  /// Fault-injection hook: called once per wakeup with the current time,
  /// returns extra wakeup latency (a delayed or failed-and-retried standby
  /// exit).  The extra delay counts toward total_wakeup_delay() like any
  /// real wakeup cost.  Null (default) = fault-free hardware.
  using WakeupFaultHook = std::function<Seconds(Seconds)>;
  void set_wakeup_fault_hook(WakeupFaultHook hook) {
    wakeup_fault_hook_ = std::move(hook);
  }

 private:
  void cancel_pending();
  [[nodiscard]] bool tracing() const {
    return trace_ != nullptr && trace_->active();
  }

  sim::Simulator* sim_;
  hw::SmartBadge* badge_;
  DpmPolicyPtr policy_;
  Rng rng_;
  obs::TraceRecorder* trace_ = nullptr;
  obs::AttributionLedger* ledger_ = nullptr;
  obs::FlightRecorder* flight_ = nullptr;
  WakeupFaultHook wakeup_fault_hook_;
  obs::HistogramMetric* idle_hist_ = nullptr;
  hw::PowerState depth_ = hw::PowerState::Idle;  ///< deepest commanded state
  std::optional<Seconds> idle_started_at_;       ///< open idle period, if any
  std::vector<sim::EventId> pending_;
  int idle_periods_ = 0;
  int sleeps_ = 0;
  int wakeups_ = 0;
  Seconds total_wakeup_delay_{0.0};
};

}  // namespace dvs::dpm
