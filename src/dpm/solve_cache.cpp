#include "dpm/solve_cache.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <limits>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

#include "common/check.hpp"

namespace dvs::dpm {

// ---- the direct plan search (moved from TismdpPolicy's constructor) -----------

TismdpMixSolution solve_tismdp_mix(const DpmCostModel& costs,
                                   const IdleDistribution& idle,
                                   Seconds max_expected_delay) {
  const Seconds horizon = std::max(Seconds{60.0}, idle.mean() * 10.0);

  // Optimize expected energy subject to E[delay] <= constraint over the
  // time-indexed plan class.  Track the best feasible plan and the best
  // unconstrained plan; when the unconstrained optimum is infeasible the
  // TISMDP optimum randomizes between the two so the constraint binds with
  // equality (the standard structure of constrained-MDP optima).
  double best_feasible = std::numeric_limits<double>::infinity();
  double best_any = std::numeric_limits<double>::infinity();
  SleepPlan feasible;
  SleepPlan any;
  PlanEvaluation feasible_ev;
  PlanEvaluation any_ev;
  for (const SleepPlan& p : candidate_plans(costs, horizon)) {
    const PlanEvaluation ev = evaluate_plan(p, costs, idle);
    if (ev.expected_energy.value() < best_any) {
      best_any = ev.expected_energy.value();
      any = p;
      any_ev = ev;
    }
    if (ev.expected_delay <= max_expected_delay &&
        ev.expected_energy.value() < best_feasible) {
      best_feasible = ev.expected_energy.value();
      feasible = p;
      feasible_ev = ev;
    }
  }

  TismdpMixSolution out;
  if (any_ev.expected_delay <= max_expected_delay) {
    // Unconstrained optimum already feasible: deterministic policy.
    out.primary = any;
    out.secondary = std::move(any);
    out.mix_p = 1.0;
    return out;
  }
  DVS_CHECK_MSG(std::isfinite(best_feasible),
                "TismdpPolicy: no feasible plan (constraint too tight)");
  out.primary = std::move(feasible);  // meets the constraint
  out.secondary = std::move(any);     // cheaper but too slow
  // Mix p * feasible + (1-p) * any so the expected delay equals the bound.
  const double d_f = feasible_ev.expected_delay.value();
  const double d_a = any_ev.expected_delay.value();
  if (d_a > d_f) {
    out.mix_p = std::clamp(
        (d_a - max_expected_delay.value()) / (d_a - d_f), 0.0, 1.0);
  } else {
    out.mix_p = 1.0;
  }
  return out;
}

// ---- key construction ---------------------------------------------------------

namespace {

// Keys use the exact bit pattern of every double: two solves share a
// result only when their inputs are bit-for-bit identical.
void append_u64(std::string& key, std::uint64_t v) {
  char buf[20];
  std::snprintf(buf, sizeof buf, "%016llx.",
                static_cast<unsigned long long>(v));
  key += buf;
}

void append_double(std::string& key, double v) {
  append_u64(key, std::bit_cast<std::uint64_t>(v));
}

void append_costs(std::string& key, const DpmCostModel& costs) {
  append_double(key, costs.idle_power.value());
  append_double(key, costs.active_power.value());
  append_u64(key, costs.options.size());
  for (const SleepOption& opt : costs.options) {
    append_u64(key, static_cast<std::uint64_t>(opt.state));
    append_double(key, opt.power.value());
    append_double(key, opt.wakeup_latency.value());
    append_double(key, opt.wakeup_energy.value());
  }
}

// `kind` separates the mix-search and DP-solver namespaces so their keys
// can never collide.
std::string solve_key(char kind, const DpmCostModel& costs,
                      const std::string& idle_key, Seconds max_delay) {
  std::string key;
  key.reserve(32 + 4 * 17 * (2 + costs.options.size()) + idle_key.size());
  key += kind;
  key += '.';
  append_costs(key, costs);
  append_double(key, max_delay.value());
  key += idle_key;
  return key;
}

template <typename T>
struct Entry {
  std::once_flag once;
  std::shared_ptr<const T> value;
};

// One registry per cached value type; both report into the same stats so
// the tests (and users) see a single solve-cache picture.
struct Stats {
  std::mutex mu;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
};

Stats& stats() {
  static Stats s;
  return s;
}

template <typename T>
struct Registry {
  std::mutex mu;
  std::unordered_map<std::string, std::shared_ptr<Entry<T>>> entries;
};

template <typename T>
Registry<T>& registry() {
  static Registry<T> r;  // leaked-on-exit by design
  return r;
}

void count(bool hit) {
  Stats& s = stats();
  std::lock_guard<std::mutex> lock{s.mu};
  ++(hit ? s.hits : s.misses);
}

template <typename T, typename Solve>
std::shared_ptr<const T> memoized(const std::string& key, Solve&& solve) {
  Registry<T>& reg = registry<T>();
  std::shared_ptr<Entry<T>> entry;
  bool hit = false;
  {
    std::lock_guard<std::mutex> lock{reg.mu};
    std::shared_ptr<Entry<T>>& slot = reg.entries[key];
    if (!slot) {
      slot = std::make_shared<Entry<T>>();
    } else {
      hit = true;
    }
    entry = slot;
  }
  count(hit);
  std::call_once(entry->once, [&] {
    entry->value = std::make_shared<const T>(solve());
  });
  return entry->value;
}

}  // namespace

// ---- public cached entry points -----------------------------------------------

std::shared_ptr<const TismdpMixSolution> cached_tismdp_mix(
    const DpmCostModel& costs, const IdleDistributionPtr& idle,
    Seconds max_expected_delay) {
  DVS_CHECK_MSG(idle != nullptr, "cached_tismdp_mix: null idle distribution");
  const std::string idle_key = idle->cache_key();
  if (idle_key.empty()) {
    count(false);
    return std::make_shared<const TismdpMixSolution>(
        solve_tismdp_mix(costs, *idle, max_expected_delay));
  }
  return memoized<TismdpMixSolution>(
      solve_key('m', costs, idle_key, max_expected_delay),
      [&] { return solve_tismdp_mix(costs, *idle, max_expected_delay); });
}

std::shared_ptr<const TismdpSolver::ConstrainedSolution>
cached_tismdp_solution(const DpmCostModel& costs,
                       const IdleDistributionPtr& idle,
                       Seconds max_expected_delay,
                       const TismdpSolverConfig& cfg) {
  DVS_CHECK_MSG(idle != nullptr,
                "cached_tismdp_solution: null idle distribution");
  const std::string idle_key = idle->cache_key();
  const auto solve = [&] {
    return TismdpSolver{costs, idle, cfg}.solve(max_expected_delay);
  };
  if (idle_key.empty()) {
    count(false);
    return std::make_shared<const TismdpSolver::ConstrainedSolution>(solve());
  }
  std::string key = solve_key('d', costs, idle_key, max_expected_delay);
  append_u64(key, cfg.bins);
  append_double(key, cfg.bin_min.value());
  append_double(key, cfg.horizon.value());
  append_u64(key, cfg.bisect_iters);
  return memoized<TismdpSolver::ConstrainedSolution>(key, solve);
}

SolveCacheStats tismdp_solve_cache_stats() {
  SolveCacheStats out;
  {
    Stats& s = stats();
    std::lock_guard<std::mutex> lock{s.mu};
    out.hits = s.hits;
    out.misses = s.misses;
  }
  {
    auto& r = registry<TismdpMixSolution>();
    std::lock_guard<std::mutex> lock{r.mu};
    out.entries += r.entries.size();
  }
  {
    auto& r = registry<TismdpSolver::ConstrainedSolution>();
    std::lock_guard<std::mutex> lock{r.mu};
    out.entries += r.entries.size();
  }
  return out;
}

void clear_tismdp_solve_cache() {
  {
    auto& r = registry<TismdpMixSolution>();
    std::lock_guard<std::mutex> lock{r.mu};
    r.entries.clear();
  }
  {
    auto& r = registry<TismdpSolver::ConstrainedSolution>();
    std::lock_guard<std::mutex> lock{r.mu};
    r.entries.clear();
  }
  Stats& s = stats();
  std::lock_guard<std::mutex> lock{s.mu};
  s.hits = 0;
  s.misses = 0;
}

}  // namespace dvs::dpm
