// Process-wide cache of TISMDP policy solves.
//
// Both TISMDP implementations pay a construction-time optimization — the
// direct plan search (TismdpPolicy: evaluate_plan over every candidate
// plan) and the DP solver (SolverTismdpPolicy: backward induction plus a
// Lagrangian bisection).  The solve depends only on the cost model, the
// idle distribution, and the delay constraint, all of which repeat across
// sweep points, replicates, and processes' worth of tests — so the result
// is memoized by value.
//
// The idle distribution is polymorphic, so identity comes from
// IdleDistribution::cache_key(): distributions returning the same
// non-empty key are interchangeable for solving.  An empty key opts out —
// that distribution's solves always run fresh (correct for any downstream
// subclass that doesn't implement the key).
#pragma once

#include <cstdint>
#include <memory>

#include "common/units.hpp"
#include "dpm/cost_model.hpp"
#include "dpm/idle_model.hpp"
#include "dpm/policy.hpp"
#include "dpm/tismdp_solver.hpp"

namespace dvs::dpm {

/// Result of the direct TISMDP plan search: the randomized mix of two
/// deepening-timeout plans that TismdpPolicy serves.
struct TismdpMixSolution {
  SleepPlan primary;    ///< meets the delay constraint
  SleepPlan secondary;  ///< cheaper but slower (== primary when feasible)
  double mix_p = 1.0;   ///< probability of serving the primary plan
};

/// The direct plan search itself (uncached).  Throws when no candidate
/// plan meets the constraint.
TismdpMixSolution solve_tismdp_mix(const DpmCostModel& costs,
                                   const IdleDistribution& idle,
                                   Seconds max_expected_delay);

/// Memoized solve_tismdp_mix.  Falls back to a fresh (uncached) solve when
/// `idle->cache_key()` is empty.  Thread-safe; concurrent first use of one
/// key solves exactly once.
std::shared_ptr<const TismdpMixSolution> cached_tismdp_mix(
    const DpmCostModel& costs, const IdleDistributionPtr& idle,
    Seconds max_expected_delay);

/// Memoized TismdpSolver{costs, idle, cfg}.solve(max_expected_delay), with
/// the same key discipline as cached_tismdp_mix.
std::shared_ptr<const TismdpSolver::ConstrainedSolution>
cached_tismdp_solution(const DpmCostModel& costs,
                       const IdleDistributionPtr& idle,
                       Seconds max_expected_delay,
                       const TismdpSolverConfig& cfg = {});

/// Counters across both solve caches (mix + DP).  `entries` counts
/// distinct keys; uncacheable (empty-key) solves count as misses.
struct SolveCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::size_t entries = 0;
};

[[nodiscard]] SolveCacheStats tismdp_solve_cache_stats();

/// Drops every cached solve (outstanding shared_ptrs stay valid) and
/// zeroes the stats.  For tests that need a cold cache.
void clear_tismdp_solve_cache();

}  // namespace dvs::dpm
