#include "dpm/tismdp_solver.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <memory>

#include "common/check.hpp"
#include "dpm/solve_cache.hpp"

namespace dvs::dpm {
namespace {

/// The controllable states, shallow to deep.  Index into value tables.
constexpr std::array<hw::PowerState, 3> kStates = {
    hw::PowerState::Idle, hw::PowerState::Standby, hw::PowerState::Off};

std::size_t state_index(hw::PowerState s) {
  for (std::size_t i = 0; i < kStates.size(); ++i) {
    if (kStates[i] == s) return i;
  }
  throw std::logic_error("TismdpSolver: unexpected state");
}

}  // namespace

SleepPlan TimeIndexedPolicy::to_plan() const {
  SleepPlan plan;
  bool have_standby = false;
  bool have_off = false;
  for (std::size_t i = 0; i < actions.size(); ++i) {
    if (actions[i] == hw::PowerState::Standby && !have_standby && !have_off) {
      plan.steps.push_back({boundaries[i], hw::PowerState::Standby});
      have_standby = true;
    } else if (actions[i] == hw::PowerState::Off && !have_off) {
      plan.steps.push_back({boundaries[i], hw::PowerState::Off});
      have_off = true;
    }
  }
  plan.validate();
  return plan;
}

TismdpSolver::TismdpSolver(DpmCostModel costs, IdleDistributionPtr idle,
                           TismdpSolverConfig cfg)
    : costs_(std::move(costs)), idle_(std::move(idle)), cfg_(cfg) {
  DVS_CHECK_MSG(idle_ != nullptr, "TismdpSolver: null idle distribution");
  DVS_CHECK_MSG(cfg_.bins >= 8, "TismdpSolver: too few bins");
  DVS_CHECK_MSG(cfg_.bin_min.value() > 0.0, "TismdpSolver: bin_min must be > 0");

  Seconds horizon = cfg_.horizon;
  if (horizon.value() <= 0.0) {
    horizon = std::max(Seconds{60.0}, idle_->mean() * 10.0);
  }
  DVS_CHECK_MSG(horizon > cfg_.bin_min, "TismdpSolver: horizon below bin_min");

  // Geometric boundaries from bin_min to horizon, starting at 0.
  bounds_.push_back(Seconds{0.0});
  const double ratio = std::pow(horizon.value() / cfg_.bin_min.value(),
                                1.0 / static_cast<double>(cfg_.bins - 1));
  double b = cfg_.bin_min.value();
  for (std::size_t i = 0; i < cfg_.bins; ++i) {
    bounds_.push_back(Seconds{b});
    b *= ratio;
  }
}

TimeIndexedPolicy TismdpSolver::solve_lagrangian(double lambda) const {
  DVS_CHECK_MSG(lambda >= 0.0, "TismdpSolver: negative Lagrange multiplier");
  const std::size_t n = bounds_.size();  // boundaries b_0 .. b_{n-1}

  // Per-state wakeup penalty charged when the period ends in that state.
  std::array<double, 3> wake_energy{};
  std::array<double, 3> wake_delay{};
  std::array<double, 3> power{};  // mW
  power[0] = costs_.idle_power.value();
  wake_energy[0] = 0.0;
  wake_delay[0] = 0.0;
  for (const auto& opt : costs_.options) {
    const std::size_t i = state_index(opt.state);
    power[i] = opt.power.value();
    wake_energy[i] = opt.wakeup_energy.value();
    wake_delay[i] = opt.wakeup_latency.value();
  }

  // Value function per (boundary, state): expected Lagrangian cost of the
  // remainder of the idle period, conditional on T > boundary, when the
  // device sits in `state` from the boundary on (before the next decision).
  // We also track the un-mixed energy and delay components for reporting.
  struct V {
    double cost = 0.0;
    double energy = 0.0;
    double delay = 0.0;
  };
  std::vector<std::array<V, 3>> value(n);
  std::vector<std::array<std::size_t, 3>> best_action(n);  // chosen state idx

  // Terminal boundary: the device stays in its state until the period ends.
  {
    const Seconds t = bounds_[n - 1];
    const double s_t = idle_->survival(t);
    const double resid =
        s_t > 0.0 ? idle_->mean_excess(t).value() / s_t : 0.0;
    for (std::size_t q = 0; q < 3; ++q) {
      V v;
      v.energy = power[q] * 1e-3 * resid + wake_energy[q];
      v.delay = wake_delay[q];
      v.cost = v.energy + lambda * v.delay;
      value[n - 1][q] = v;
      best_action[n - 1][q] = q;
    }
  }

  // Backward induction.  At boundary i (period still alive), the manager
  // may deepen to any state q' >= q; the device then draws P_q' over the
  // bin, pays the wakeup penalty if the period ends inside the bin, and
  // otherwise continues at boundary i+1 in state q'.
  for (std::size_t i = n - 1; i-- > 0;) {
    const Seconds a = bounds_[i];
    const Seconds b = bounds_[i + 1];
    const double s_a = idle_->survival(a);
    const double s_b = idle_->survival(b);
    const double cond_survive = s_a > 0.0 ? s_b / s_a : 0.0;
    const double end_in_bin = 1.0 - cond_survive;
    // E[min(T,b) - a | T > a] = (excess(a) - excess(b)) / S(a).
    const double resid_bin =
        s_a > 0.0
            ? (idle_->mean_excess(a).value() - idle_->mean_excess(b).value()) / s_a
            : 0.0;

    for (std::size_t q = 0; q < 3; ++q) {
      V best;
      best.cost = std::numeric_limits<double>::infinity();
      std::size_t best_q = q;
      for (std::size_t q2 = q; q2 < 3; ++q2) {
        V v;
        v.energy = power[q2] * 1e-3 * resid_bin +
                   end_in_bin * wake_energy[q2] +
                   cond_survive * value[i + 1][q2].energy;
        v.delay = end_in_bin * wake_delay[q2] +
                  cond_survive * value[i + 1][q2].delay;
        v.cost = v.energy + lambda * v.delay;
        if (v.cost < best.cost) {
          best = v;
          best_q = q2;
        }
      }
      value[i][q] = best;
      best_action[i][q] = best_q;
    }
  }

  // Forward pass: extract the action trajectory starting idle at t=0.
  TimeIndexedPolicy policy;
  policy.boundaries.assign(bounds_.begin(), bounds_.end() - 1);
  policy.actions.resize(policy.boundaries.size());
  std::size_t q = 0;
  for (std::size_t i = 0; i < policy.boundaries.size(); ++i) {
    q = best_action[i][q];
    policy.actions[i] = kStates[q];
  }
  policy.expected_energy = value[0][0].energy;
  policy.expected_delay = value[0][0].delay;
  return policy;
}

TimeIndexedPolicy TismdpSolver::solve_unconstrained() const {
  return solve_lagrangian(0.0);
}

double TismdpSolver::ConstrainedSolution::mixed_energy() const {
  return p_meets_bound * meets_bound.expected_energy +
         (1.0 - p_meets_bound) * cheaper.expected_energy;
}

double TismdpSolver::ConstrainedSolution::mixed_delay() const {
  return p_meets_bound * meets_bound.expected_delay +
         (1.0 - p_meets_bound) * cheaper.expected_delay;
}

TismdpSolver::ConstrainedSolution TismdpSolver::solve(
    Seconds max_expected_delay) const {
  DVS_CHECK_MSG(max_expected_delay.value() >= 0.0,
                "TismdpSolver: negative delay bound");
  ConstrainedSolution out;
  const TimeIndexedPolicy unconstrained = solve_unconstrained();
  if (unconstrained.expected_delay <= max_expected_delay.value() + 1e-12) {
    out.meets_bound = unconstrained;
    out.cheaper = unconstrained;
    out.p_meets_bound = 1.0;
    return out;
  }

  // Bisect the Lagrange multiplier: higher lambda penalizes delay harder.
  double lo = 0.0;                 // delay too high
  double hi = 1.0;                 // find an upper bracket
  TimeIndexedPolicy hi_policy = solve_lagrangian(hi);
  int guard = 0;
  while (hi_policy.expected_delay > max_expected_delay.value() && guard++ < 60) {
    hi *= 4.0;
    hi_policy = solve_lagrangian(hi);
  }
  DVS_CHECK_MSG(hi_policy.expected_delay <= max_expected_delay.value(),
                "TismdpSolver: constraint unattainable");
  TimeIndexedPolicy lo_policy = unconstrained;
  for (std::size_t it = 0; it < cfg_.bisect_iters; ++it) {
    const double mid = 0.5 * (lo + hi);
    TimeIndexedPolicy mid_policy = solve_lagrangian(mid);
    if (mid_policy.expected_delay <= max_expected_delay.value()) {
      hi = mid;
      hi_policy = std::move(mid_policy);
    } else {
      lo = mid;
      lo_policy = std::move(mid_policy);
    }
  }

  out.meets_bound = hi_policy;
  out.cheaper = lo_policy;
  const double d_hi = hi_policy.expected_delay;
  const double d_lo = lo_policy.expected_delay;
  out.p_meets_bound =
      d_lo > d_hi
          ? std::clamp((d_lo - max_expected_delay.value()) / (d_lo - d_hi), 0.0, 1.0)
          : 1.0;
  return out;
}

SolverTismdpPolicy::SolverTismdpPolicy(DpmCostModel costs,
                                       IdleDistributionPtr idle,
                                       Seconds max_expected_delay,
                                       TismdpSolverConfig cfg)
    : solution_(*cached_tismdp_solution(costs, idle, max_expected_delay, cfg)),
      plan_meets_(solution_.meets_bound.to_plan()),
      plan_cheaper_(solution_.cheaper.to_plan()) {}

SleepPlan SolverTismdpPolicy::plan(std::optional<Seconds>, Rng& rng) {
  return rng.bernoulli(solution_.p_meets_bound) ? plan_meets_ : plan_cheaper_;
}

}  // namespace dvs::dpm
