// Discretized time-indexed semi-Markov decision process solver.
//
// This is the reference-grade version of the TISMDP model of the paper's
// ref [3]: the idle period is discretized into bins (Figure 7's
// time-indexed states); in each bin, conditional on the period still
// running, the power manager may keep the current state or deepen it
// (idle -> standby -> off).  Backward induction over (bin, power-state)
// yields the exact optimal time-indexed policy for the discretization;
// a performance constraint (expected wakeup delay per idle period) is
// handled by a Lagrangian sweep with bisection, whose optimum randomizes
// between the two policies bracketing the constraint — the same structure
// TismdpPolicy's direct plan search produces, so the two implementations
// cross-validate each other (see tests/dpm/tismdp_solver_test.cpp).
#pragma once

#include <vector>

#include "dpm/cost_model.hpp"
#include "dpm/idle_model.hpp"
#include "dpm/policy.hpp"

namespace dvs::dpm {

struct TismdpSolverConfig {
  std::size_t bins = 160;      ///< time bins over (0, horizon], geometric
  Seconds bin_min{0.01};       ///< first bin boundary
  Seconds horizon{0.0};        ///< 0 = auto (10x the idle mean, >= 60 s)
  std::size_t bisect_iters = 40;
};

/// A time-indexed policy: the deepest state commanded at each bin boundary
/// (monotone by construction of the DP's reachable states).
struct TimeIndexedPolicy {
  std::vector<Seconds> boundaries;        ///< bin boundaries, ascending
  std::vector<hw::PowerState> actions;    ///< state held from boundary i on
  double expected_energy = 0.0;           ///< J per idle period
  double expected_delay = 0.0;            ///< s per idle period

  /// Collapses to an executable SleepPlan (first standby bin, first off bin).
  [[nodiscard]] SleepPlan to_plan() const;
};

class TismdpSolver {
 public:
  TismdpSolver(DpmCostModel costs, IdleDistributionPtr idle,
               TismdpSolverConfig cfg = {});

  /// Energy-optimal time-indexed policy, no performance constraint.
  [[nodiscard]] TimeIndexedPolicy solve_unconstrained() const;

  /// Optimal policy for the Lagrangian cost E + lambda * delay.
  [[nodiscard]] TimeIndexedPolicy solve_lagrangian(double lambda) const;

  struct ConstrainedSolution {
    TimeIndexedPolicy meets_bound;   ///< feasible component
    TimeIndexedPolicy cheaper;       ///< infeasible (or equal) component
    double p_meets_bound = 1.0;      ///< mixture probability
    [[nodiscard]] double mixed_energy() const;
    [[nodiscard]] double mixed_delay() const;
  };

  /// Minimizes expected energy subject to E[wakeup delay] <= bound.
  [[nodiscard]] ConstrainedSolution solve(Seconds max_expected_delay) const;

  [[nodiscard]] const std::vector<Seconds>& boundaries() const { return bounds_; }

 private:
  DpmCostModel costs_;
  IdleDistributionPtr idle_;
  TismdpSolverConfig cfg_;
  std::vector<Seconds> bounds_;  ///< 0 = b_0 < b_1 < ... < b_N (horizon)
};

/// DpmPolicy adapter over the DP solver: solves once at construction and
/// serves the (possibly randomized) optimal plan at run time.  Drop-in
/// replacement for TismdpPolicy wherever a DpmPolicyPtr is expected.
class SolverTismdpPolicy final : public DpmPolicy {
 public:
  SolverTismdpPolicy(DpmCostModel costs, IdleDistributionPtr idle,
                     Seconds max_expected_delay, TismdpSolverConfig cfg = {});

  SleepPlan plan(std::optional<Seconds>, Rng& rng) override;
  [[nodiscard]] std::string name() const override { return "tismdp-dp"; }

  [[nodiscard]] const TismdpSolver::ConstrainedSolution& solution() const {
    return solution_;
  }

 private:
  TismdpSolver::ConstrainedSolution solution_;
  SleepPlan plan_meets_;
  SleepPlan plan_cheaper_;
};

}  // namespace dvs::dpm
