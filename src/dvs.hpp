// Public umbrella header: the stable surface of the DVS/DPM engine.
//
// External artifacts — examples, benches, downstream tools — include only
// this header.  Everything re-exported here is the supported API:
//
//   * single runs:      core::RunOptions, core::run_single_trace,
//                       core::run_items, core::Metrics
//   * experiment grids: core::ScenarioSpec, core::SweepRunner,
//                       core::builtin_scenarios / find_scenario
//   * fleet populations: fleet::FleetSpec, fleet::FleetRunner,
//                       fleet::builtin_fleets / find_fleet
//   * fault injection:  fault::FaultSpec, fault::builtin_faults
//   * shared assets:    detect::shared_threshold_table,
//                       dpm::cached_tismdp_solution (process-wide caches)
//   * observability:    obs::MetricsRegistry, obs::TraceRecorder, sinks,
//                       telemetry (obs::QuantileSketch,
//                       obs::TelemetrySnapshotter, obs::SpanProfiler,
//                       obs::write_openmetrics)
//   * workloads:        workload clip tables, trace builders, decoders
//   * hardware models:  hw::SmartBadge, hw::Sa1100, battery / DC-DC
//   * building blocks:  sim::Simulator, the queue models, detectors, the
//                       DPM policies and TISMDP solver, common utilities
//
// Internal headers under src/ may move, split, or change freely between
// releases; code that includes only "dvs.hpp" keeps compiling.
#pragma once

// Common utilities (units, RNG, stats, fitting, CSV/table output).
#include "common/csv.hpp"
#include "common/fit.hpp"
#include "common/piecewise_linear.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/units.hpp"

// Simulation kernel.
#include "sim/simulator.hpp"

// Observability.
#include "obs/attribution.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/sinks.hpp"
#include "obs/telemetry/openmetrics.hpp"
#include "obs/telemetry/quantile_sketch.hpp"
#include "obs/telemetry/snapshotter.hpp"
#include "obs/telemetry/span_profiler.hpp"
#include "obs/trace_recorder.hpp"

// Hardware models.
#include "hw/battery.hpp"
#include "hw/cpu_catalog.hpp"
#include "hw/dcdc.hpp"
#include "hw/sa1100.hpp"
#include "hw/smartbadge.hpp"
#include "hw/smartbadge_data.hpp"

// Workloads.
#include "workload/arrival.hpp"
#include "workload/clips.hpp"
#include "workload/decoder_model.hpp"
#include "workload/media.hpp"
#include "workload/trace.hpp"
#include "workload/trace_io.hpp"
#include "workload/work_model.hpp"

// Queueing models.
#include "queue/frame_buffer.hpp"
#include "queue/mg1.hpp"
#include "queue/mm1.hpp"

// Rate detectors.
#include "detect/change_point.hpp"
#include "detect/ema.hpp"
#include "detect/ideal.hpp"
#include "detect/sliding_window.hpp"
#include "detect/table_cache.hpp"
#include "detect/threshold_table.hpp"

// DVS policy layer.
#include "policy/frequency_policy.hpp"
#include "policy/governor.hpp"
#include "policy/governor_base.hpp"
#include "policy/governor_factory.hpp"
#include "policy/optimal_oracle.hpp"
#include "policy/qdpm_governor.hpp"
#include "policy/watchdog.hpp"

// DPM policy layer.
#include "dpm/adaptive.hpp"
#include "dpm/cost_model.hpp"
#include "dpm/idle_model.hpp"
#include "dpm/policy.hpp"
#include "dpm/power_manager.hpp"
#include "dpm/solve_cache.hpp"
#include "dpm/tismdp_solver.hpp"

// Fault injection.
#include "fault/fault_spec.hpp"
#include "fault/hw_faults.hpp"
#include "fault/trace_transforms.hpp"

// Engine, experiments, scenarios, sweeps.
#include "core/detectors.hpp"
#include "core/engine.hpp"
#include "core/experiment.hpp"
#include "core/metrics.hpp"
#include "core/scenario.hpp"
#include "core/sweep.hpp"

// Fleet-scale device populations.
#include "fleet/fleet_runner.hpp"
#include "fleet/fleet_spec.hpp"
