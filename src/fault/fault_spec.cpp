#include "fault/fault_spec.hpp"

#include <stdexcept>

namespace dvs::fault {

namespace {

policy::WatchdogConfig guarded() {
  policy::WatchdogConfig w;
  w.enabled = true;
  return w;
}

std::vector<FaultSpec> make_builtins() {
  std::vector<FaultSpec> specs;

  specs.push_back(FaultSpec{});  // "none"

  {
    FaultSpec s;
    s.name = "spike10x";
    s.description = "10x arrival-rate spike for 30 s, watchdog armed";
    s.trace_faults = {RateSpike{Seconds{20.0}, Seconds{30.0}, 10.0}};
    s.watchdog = guarded();
    specs.push_back(std::move(s));
  }
  {
    FaultSpec s;
    s.name = "step3x";
    s.description = "permanent 3x arrival-rate step at 30 s";
    s.trace_faults = {RateStep{Seconds{30.0}, 3.0}};
    s.watchdog = guarded();
    specs.push_back(std::move(s));
  }
  {
    FaultSpec s;
    s.name = "burst";
    s.description = "bursty arrivals: 60% coalesced, bursts up to 8 frames";
    s.trace_faults = {BurstArrivals{Seconds{0.0}, Seconds{1e9}, 0.6, 8}};
    s.watchdog = guarded();
    specs.push_back(std::move(s));
  }
  {
    FaultSpec s;
    s.name = "heavytail";
    s.description = "heavy-tailed decode work (mean-one Pareto, shape 1.5)";
    s.trace_faults = {HeavyTailWork{Seconds{0.0}, Seconds{1e9}, 1.5}};
    s.watchdog = guarded();
    specs.push_back(std::move(s));
  }
  {
    FaultSpec s;
    s.name = "corrupt";
    s.description = "2% of frames corrupted to 8x decode work";
    s.trace_faults = {CorruptWork{0.02, 8.0}};
    s.watchdog = guarded();
    specs.push_back(std::move(s));
  }
  {
    FaultSpec s;
    s.name = "truncate";
    s.description = "stream dies 45 s into each item";
    s.trace_faults = {TruncateTrace{Seconds{45.0}}};
    s.watchdog = guarded();
    specs.push_back(std::move(s));
  }
  {
    FaultSpec s;
    s.name = "wakeup-flaky";
    s.description = "30% failed wakeups (+250 ms retry), 50% slow (+50 ms)";
    s.hw.wakeup_fail_prob = 0.3;
    s.hw.wakeup_retry_delay = Seconds{0.25};
    s.hw.wakeup_delay_prob = 0.5;
    s.hw.wakeup_extra_delay = Seconds{0.05};
    s.watchdog = guarded();
    specs.push_back(std::move(s));
  }
  {
    FaultSpec s;
    s.name = "freq-stuck";
    s.description = "20% failed frequency transitions; rail stuck 30-50 s";
    s.hw.freq_fail_prob = 0.2;
    s.hw.rail_stuck_at = Seconds{30.0};
    s.hw.rail_stuck_duration = Seconds{20.0};
    s.watchdog = guarded();
    specs.push_back(std::move(s));
  }
  {
    FaultSpec s;
    s.name = "chaos";
    s.description = "rate spike + heavy tails + flaky wakeups + failing DVS";
    s.trace_faults = {RateSpike{Seconds{20.0}, Seconds{30.0}, 10.0},
                      HeavyTailWork{Seconds{0.0}, Seconds{1e9}, 1.6}};
    s.hw.wakeup_fail_prob = 0.2;
    s.hw.freq_fail_prob = 0.1;
    s.watchdog = guarded();
    specs.push_back(std::move(s));
  }
  return specs;
}

}  // namespace

std::span<const FaultSpec> builtin_faults() {
  static const std::vector<FaultSpec> specs = make_builtins();
  return specs;
}

const FaultSpec* find_fault(std::string_view name) {
  for (const FaultSpec& s : builtin_faults()) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

std::vector<FaultSpec> parse_fault_list(std::string_view csv) {
  std::vector<FaultSpec> out;
  std::size_t pos = 0;
  while (pos <= csv.size()) {
    const std::size_t comma = csv.find(',', pos);
    const std::string_view name =
        csv.substr(pos, comma == std::string_view::npos ? csv.size() - pos
                                                        : comma - pos);
    if (!name.empty()) {
      const FaultSpec* spec = find_fault(name);
      if (spec == nullptr) {
        throw std::invalid_argument("unknown fault spec: " + std::string(name));
      }
      out.push_back(*spec);
    }
    if (comma == std::string_view::npos) break;
    pos = comma + 1;
  }
  if (out.empty()) throw std::invalid_argument("empty fault list");
  return out;
}

}  // namespace dvs::fault
