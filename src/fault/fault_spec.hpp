// Declarative fault specifications: named bundles of workload
// perturbations, hardware faults, and the watchdog configuration that
// should guard against them.
//
// A FaultSpec is the unit the scenario grid expands over (ScenarioSpec
// gains a `faults` axis) and the unit the CLI names (`--faults spike10x`).
// The default spec, "none", is the identity: no transforms, no hardware
// faults, watchdog disarmed — a scenario that never mentions faults runs
// exactly as before, point for point and seed for seed.
#pragma once

#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "fault/hw_faults.hpp"
#include "fault/trace_transforms.hpp"
#include "policy/watchdog.hpp"

namespace dvs::fault {

struct FaultSpec {
  std::string name = "none";
  std::string description = "no faults (baseline)";
  /// Applied left-to-right to every playback item's trace.
  std::vector<TraceFault> trace_faults;
  /// Injected at the engine / power-manager boundary.
  HwFaultPlan hw;
  /// Graceful-degradation guard armed in every adaptive governor.
  policy::WatchdogConfig watchdog;

  /// True for the identity spec (watchdog state aside).
  [[nodiscard]] bool none() const { return trace_faults.empty() && !hw.any(); }
};

/// The built-in fault catalogue (first entry is "none").
std::span<const FaultSpec> builtin_faults();

/// Looks up a built-in spec by name; null when unknown.
const FaultSpec* find_fault(std::string_view name);

/// Parses a comma-separated list of built-in names ("none,spike10x,...").
/// Throws std::invalid_argument on an unknown name or empty list.
std::vector<FaultSpec> parse_fault_list(std::string_view csv);

}  // namespace dvs::fault
