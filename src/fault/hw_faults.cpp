#include "fault/hw_faults.hpp"

#include "common/check.hpp"
#include "obs/event.hpp"

namespace dvs::fault {

HwFaultInjector::HwFaultInjector(const HwFaultPlan& plan, std::uint64_t seed)
    : plan_(plan), rng_(seed) {
  DVS_CHECK_MSG(plan_.wakeup_delay_prob >= 0.0 && plan_.wakeup_delay_prob <= 1.0 &&
                    plan_.wakeup_fail_prob >= 0.0 && plan_.wakeup_fail_prob <= 1.0 &&
                    plan_.freq_fail_prob >= 0.0 && plan_.freq_fail_prob <= 1.0,
                "HwFaultPlan: probabilities out of range");
  DVS_CHECK_MSG(plan_.wakeup_extra_delay.value() >= 0.0 &&
                    plan_.wakeup_retry_delay.value() >= 0.0 &&
                    plan_.rail_stuck_duration.value() >= 0.0,
                "HwFaultPlan: delays must be non-negative");
}

void HwFaultInjector::record(Seconds now, std::string_view kind,
                             double magnitude) {
  if (trace_ != nullptr && trace_->active()) {
    trace_->record(now.value(), obs::FaultInjected{kind, magnitude});
  }
  if (ledger_ != nullptr) ledger_->set_cause(obs::Cause::Fault);
  if (flight_ != nullptr) {
    // Stable fault-kind codes for the compact record (docs/OBSERVABILITY.md).
    std::uint16_t code = 0;
    if (kind == "wakeup_fail") code = 1;
    else if (kind == "freq_fail") code = 2;
    else if (kind == "rail_stuck") code = 3;
    flight_->record(now.value(), obs::FlightEventType::FaultInjected, code,
                    static_cast<float>(magnitude), 0.0F);
    flight_->trigger(now.value(), "fault-injected");
  }
}

Seconds HwFaultInjector::wakeup_penalty(Seconds now) {
  Seconds penalty{0.0};
  if (plan_.wakeup_fail_prob > 0.0 && rng_.bernoulli(plan_.wakeup_fail_prob)) {
    penalty += plan_.wakeup_retry_delay;
    ++wakeup_faults_;
    record(now, "wakeup_fail", plan_.wakeup_retry_delay.value());
  }
  if (plan_.wakeup_delay_prob > 0.0 && rng_.bernoulli(plan_.wakeup_delay_prob)) {
    penalty += plan_.wakeup_extra_delay;
    ++wakeup_faults_;
    record(now, "wakeup_delay", plan_.wakeup_extra_delay.value());
  }
  return penalty;
}

std::size_t HwFaultInjector::filter_step(Seconds now, std::size_t current,
                                         std::size_t desired) {
  if (desired == current) return desired;
  if (plan_.rail_stuck_at.value() >= 0.0 && now >= plan_.rail_stuck_at &&
      now < plan_.rail_stuck_at + plan_.rail_stuck_duration) {
    ++rail_faults_;
    record(now, "rail_stuck", static_cast<double>(desired));
    return current;
  }
  if (plan_.freq_fail_prob > 0.0 && rng_.bernoulli(plan_.freq_fail_prob)) {
    ++freq_faults_;
    record(now, "freq_fail", static_cast<double>(desired));
    return current;
  }
  return desired;
}

}  // namespace dvs::fault
