// Hardware fault injection at the engine / power-manager boundary.
//
// Three fault classes from the SmartBadge's failure modes:
//  * wakeup faults — a standby exit is slower than the Table 1 latency
//    (wakeup_delay) or fails outright and must be retried (wakeup_fail);
//    both surface as extra delay added to the badge's wakeup completion.
//  * frequency-transition failures — a commanded (f, V) step does not take
//    and the CPU stays clamped at the previous step for this boundary.
//  * stuck voltage rail — during a time window no frequency transition is
//    possible at all (the regulator ignores the governor).
//
// The injector is owned by the Engine and consulted through narrow hooks
// (the governor's step filter, the power manager's wakeup hook), so the
// policy/dpm layers stay ignorant of the fault machinery.  All draws come
// from a dedicated substream of the engine seed; a given (plan, seed) pair
// replays the identical fault sequence, which is what keeps fault sweeps
// bit-identical across --jobs.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "obs/attribution.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/trace_recorder.hpp"

namespace dvs::fault {

struct HwFaultPlan {
  /// Per-wakeup probability of a slow exit, and the extra latency it costs.
  double wakeup_delay_prob = 0.0;
  Seconds wakeup_extra_delay{0.05};
  /// Per-wakeup probability of a failed exit needing a retry cycle.
  double wakeup_fail_prob = 0.0;
  Seconds wakeup_retry_delay{0.25};
  /// Per-commit probability that a frequency transition does not take.
  double freq_fail_prob = 0.0;
  /// Window during which the voltage rail is stuck (no transitions at
  /// all).  `rail_stuck_at < 0` disables the window.
  Seconds rail_stuck_at{-1.0};
  Seconds rail_stuck_duration{0.0};

  [[nodiscard]] bool any() const {
    return wakeup_delay_prob > 0.0 || wakeup_fail_prob > 0.0 ||
           freq_fail_prob > 0.0 || rail_stuck_at.value() >= 0.0;
  }
};

class HwFaultInjector {
 public:
  HwFaultInjector(const HwFaultPlan& plan, std::uint64_t seed);

  /// Optional tracing: each fired fault records a FaultInjected event.
  void set_trace(obs::TraceRecorder* trace) { trace_ = trace; }

  /// Optional attribution: each fired fault switches the ledger cause to
  /// Fault (the time that follows is the fault's bill).  May be null.
  void set_ledger(obs::AttributionLedger* ledger) { ledger_ = ledger; }

  /// Optional flight recorder: fired faults land in the ring and trigger a
  /// post-mortem dump.  May be null.
  void set_flight(obs::FlightRecorder* flight) { flight_ = flight; }

  /// Extra wakeup latency for the standby exit happening at `now`
  /// (zero when no fault fires).  Called once per wakeup.
  Seconds wakeup_penalty(Seconds now);

  /// Step the hardware actually takes when the governor commits
  /// `desired` while at `current` (== `current` when the transition
  /// fails).  Called once per attempted transition.
  std::size_t filter_step(Seconds now, std::size_t current,
                          std::size_t desired);

  [[nodiscard]] std::uint64_t faults_injected() const {
    return wakeup_faults_ + freq_faults_ + rail_faults_;
  }
  [[nodiscard]] std::uint64_t wakeup_faults() const { return wakeup_faults_; }
  [[nodiscard]] std::uint64_t freq_faults() const { return freq_faults_; }
  [[nodiscard]] std::uint64_t rail_faults() const { return rail_faults_; }

 private:
  void record(Seconds now, std::string_view kind, double magnitude);

  HwFaultPlan plan_;
  Rng rng_;
  obs::TraceRecorder* trace_ = nullptr;
  obs::AttributionLedger* ledger_ = nullptr;
  obs::FlightRecorder* flight_ = nullptr;
  std::uint64_t wakeup_faults_ = 0;
  std::uint64_t freq_faults_ = 0;
  std::uint64_t rail_faults_ = 0;
};

}  // namespace dvs::fault
