#include "fault/trace_transforms.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/check.hpp"

namespace dvs::fault {

namespace {

using workload::FrameTrace;
using workload::RateTruth;
using workload::TraceFrame;

/// Trace-relative time zero: the first ground-truth segment start (0 for a
/// freshly built trace, the splice offset for a shifted session item).
Seconds trace_origin(const FrameTrace& t) { return t.truth().front().time; }

Seconds trace_end(const FrameTrace& t) {
  return trace_origin(t) + t.duration();
}

std::vector<TraceFrame> copy_frames(const FrameTrace& t) {
  return {t.frames().begin(), t.frames().end()};
}

std::vector<RateTruth> copy_truth(const FrameTrace& t) {
  return {t.truth().begin(), t.truth().end()};
}

void renumber(std::vector<TraceFrame>& frames) {
  for (std::size_t i = 0; i < frames.size(); ++i) frames[i].id = i;
}

/// Multiplies the ground-truth arrival rate by `factor` over [t0, t1),
/// splitting segments at the window edges so rates outside stay exact.
std::vector<RateTruth> scale_arrival_truth(std::vector<RateTruth> truth,
                                           Seconds t0, Seconds t1,
                                           double factor) {
  std::vector<RateTruth> out;
  out.reserve(truth.size() + 2);
  for (std::size_t i = 0; i < truth.size(); ++i) {
    const RateTruth& seg = truth[i];
    const Seconds seg_end =
        i + 1 < truth.size() ? truth[i + 1].time : Seconds{1e18};
    const Seconds lo = std::max(seg.time, t0);
    const Seconds hi = std::min(seg_end, t1);
    if (lo >= hi) {  // no overlap with the window
      out.push_back(seg);
      continue;
    }
    if (seg.time < lo) out.push_back(seg);  // prefix at the original rate
    out.push_back(RateTruth{lo, seg.arrival_rate * factor,
                            seg.service_rate_at_max});
    if (hi < seg_end) {
      out.push_back(RateTruth{hi, seg.arrival_rate, seg.service_rate_at_max});
    }
  }
  return out;
}

/// Shared mechanics of RateSpike and RateStep: inserts `factor - 1` extra
/// frames per original frame inside [t0, t1), uniformly placed.
FrameTrace inflate_rate(const FrameTrace& t, Seconds t0, Seconds t1,
                        double factor, Rng& rng) {
  DVS_CHECK_MSG(factor >= 1.0, "rate fault: factor must be >= 1");
  t1 = std::min(t1, trace_end(t));
  std::vector<TraceFrame> frames = copy_frames(t);
  const double extra_mean = factor - 1.0;
  const double whole = std::floor(extra_mean);
  const double frac = extra_mean - whole;
  std::vector<TraceFrame> extras;
  for (const TraceFrame& f : t.frames()) {
    if (f.arrival < t0 || f.arrival >= t1) continue;
    const int n = static_cast<int>(whole) + (rng.bernoulli(frac) ? 1 : 0);
    for (int k = 0; k < n; ++k) {
      extras.push_back(TraceFrame{0,
                                  Seconds{rng.uniform(t0.value(), t1.value())},
                                  f.work * rng.uniform(0.9, 1.1)});
    }
  }
  if (extras.empty()) return FrameTrace{t.type(), std::move(frames),
                                        copy_truth(t), t.duration()};
  frames.insert(frames.end(), extras.begin(), extras.end());
  std::stable_sort(frames.begin(), frames.end(),
                   [](const TraceFrame& a, const TraceFrame& b) {
                     return a.arrival < b.arrival;
                   });
  renumber(frames);
  return FrameTrace{t.type(), std::move(frames),
                    scale_arrival_truth(copy_truth(t), t0, t1, factor),
                    t.duration()};
}

struct ApplyVisitor {
  const FrameTrace& t;
  Rng& rng;

  FrameTrace operator()(const RateSpike& f) const {
    DVS_CHECK_MSG(f.duration.value() > 0.0, "RateSpike: duration must be > 0");
    const Seconds t0 = trace_origin(t) + f.start;
    return inflate_rate(t, t0, t0 + f.duration, f.factor, rng);
  }

  FrameTrace operator()(const RateStep& f) const {
    const Seconds t0 = trace_origin(t) + f.at;
    return inflate_rate(t, t0, trace_end(t), f.factor, rng);
  }

  FrameTrace operator()(const BurstArrivals& f) const {
    DVS_CHECK_MSG(f.coalesce_prob >= 0.0 && f.coalesce_prob <= 1.0,
                  "BurstArrivals: probability out of range");
    DVS_CHECK_MSG(f.max_burst >= 1, "BurstArrivals: max_burst must be >= 1");
    const Seconds t0 = trace_origin(t) + f.start;
    const Seconds t1 = t0 + f.duration;
    std::vector<TraceFrame> frames = copy_frames(t);
    Seconds anchor{0.0};
    int burst = 0;
    for (TraceFrame& fr : frames) {
      if (fr.arrival < t0 || fr.arrival >= t1) {
        burst = 0;
        continue;
      }
      if (burst >= 1 && burst < f.max_burst && rng.bernoulli(f.coalesce_prob)) {
        fr.arrival = anchor;  // rides the previous burst (coincident arrival)
        ++burst;
      } else {
        anchor = fr.arrival;
        burst = 1;
      }
    }
    return FrameTrace{t.type(), std::move(frames), copy_truth(t), t.duration()};
  }

  FrameTrace operator()(const HeavyTailWork& f) const {
    DVS_CHECK_MSG(f.shape > 1.0, "HeavyTailWork: shape must be > 1");
    const Seconds t0 = trace_origin(t) + f.start;
    const Seconds t1 = t0 + f.duration;
    // Pareto(shape, scale) has mean shape*scale/(shape-1); this scale makes
    // the multiplier mean-one so only the tail changes, not the load.
    const double scale = (f.shape - 1.0) / f.shape;
    std::vector<TraceFrame> frames = copy_frames(t);
    for (TraceFrame& fr : frames) {
      if (fr.arrival < t0 || fr.arrival >= t1) continue;
      fr.work *= rng.pareto(f.shape, scale);
    }
    return FrameTrace{t.type(), std::move(frames), copy_truth(t), t.duration()};
  }

  FrameTrace operator()(const TruncateTrace& f) const {
    DVS_CHECK_MSG(f.at.value() > 0.0, "TruncateTrace: cut must be > 0");
    if (f.at >= t.duration()) {  // cut lands past the end: no-op
      return FrameTrace{t.type(), copy_frames(t), copy_truth(t), t.duration()};
    }
    const Seconds cutoff = trace_origin(t) + f.at;
    std::vector<TraceFrame> frames;
    for (const TraceFrame& fr : t.frames()) {
      if (fr.arrival < cutoff) frames.push_back(fr);
    }
    DVS_CHECK_MSG(!frames.empty(), "TruncateTrace: cut leaves no frames");
    std::vector<RateTruth> truth;
    for (const RateTruth& seg : t.truth()) {
      if (seg.time < cutoff || truth.empty()) truth.push_back(seg);
    }
    renumber(frames);
    return FrameTrace{t.type(), std::move(frames), std::move(truth), f.at};
  }

  FrameTrace operator()(const CorruptWork& f) const {
    DVS_CHECK_MSG(f.prob >= 0.0 && f.prob <= 1.0,
                  "CorruptWork: probability out of range");
    DVS_CHECK_MSG(f.factor > 0.0, "CorruptWork: factor must be > 0");
    std::vector<TraceFrame> frames = copy_frames(t);
    for (TraceFrame& fr : frames) {
      if (rng.bernoulli(f.prob)) fr.work *= f.factor;
    }
    return FrameTrace{t.type(), std::move(frames), copy_truth(t), t.duration()};
  }
};

struct KindVisitor {
  std::string_view operator()(const RateSpike&) const { return "rate_spike"; }
  std::string_view operator()(const RateStep&) const { return "rate_step"; }
  std::string_view operator()(const BurstArrivals&) const {
    return "burst_arrivals";
  }
  std::string_view operator()(const HeavyTailWork&) const {
    return "heavy_tail_work";
  }
  std::string_view operator()(const TruncateTrace&) const {
    return "truncate_trace";
  }
  std::string_view operator()(const CorruptWork&) const { return "corrupt_work"; }
};

}  // namespace

std::string_view fault_kind(const TraceFault& fault) {
  return std::visit(KindVisitor{}, fault);
}

workload::FrameTrace apply_fault(const workload::FrameTrace& trace,
                                 const TraceFault& fault, Rng& rng) {
  return std::visit(ApplyVisitor{trace, rng}, fault);
}

workload::FrameTrace apply_faults(const workload::FrameTrace& trace,
                                  std::span<const TraceFault> faults,
                                  Rng& rng) {
  if (faults.empty()) return trace;
  FrameTrace out = apply_fault(trace, faults.front(), rng);
  for (std::size_t i = 1; i < faults.size(); ++i) {
    out = apply_fault(out, faults[i], rng);
  }
  return out;
}

workload::FrameTrace apply_faults(const workload::FrameTrace& trace,
                                  std::span<const TraceFault> faults,
                                  std::uint64_t seed) {
  Rng rng{seed};
  return apply_faults(trace, faults, rng);
}

}  // namespace dvs::fault
