// Workload perturbations: composable, deterministic transforms over a
// generated FrameTrace.
//
// The paper evaluates change-point DVS on well-behaved jittered-Poisson
// traces; these transforms deliberately break those assumptions — rate
// spikes and steps the detectors must chase, bursty (coalesced) arrivals
// that destroy the exponential interarrival model, heavy-tailed decode
// work, truncated and corrupted streams — so the governor's
// graceful-degradation path can be exercised and scored.
//
// Transforms are pure functions of (trace, fault, rng): the input trace is
// immutable and a new FrameTrace is returned, with the ground-truth rate
// segments rewritten to match the perturbed stream (so the ideal detector
// and detection-latency scoring stay honest).  A fault's time window is
// expressed relative to the trace's own start, which makes the same
// FaultSpec meaningful for both fresh traces and session items spliced at
// arbitrary offsets.  Determinism: all randomness flows through the caller's
// Rng, seeded from the scenario's fault substream.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <variant>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "workload/trace.hpp"

namespace dvs::fault {

/// Multiplies the arrival rate by `factor` (>= 1) inside a window by
/// inserting extra frames; ground-truth arrival segments scale to match.
struct RateSpike {
  Seconds start{20.0};
  Seconds duration{30.0};
  double factor = 10.0;
};

/// Permanent rate step at `at` (a spike that never ends).
struct RateStep {
  Seconds at{30.0};
  double factor = 3.0;
};

/// Coalesces arrivals into back-to-back bursts: each frame in the window
/// lands on the previous burst anchor's timestamp with `coalesce_prob`
/// (bursts capped at `max_burst` frames).  The mean rate is preserved; the
/// interarrival distribution is not remotely exponential any more.
struct BurstArrivals {
  Seconds start{0.0};
  Seconds duration{1e9};
  double coalesce_prob = 0.5;
  int max_burst = 8;
};

/// Multiplies per-frame decode work by a mean-one Pareto(shape) draw, so
/// the mean service rate is unchanged but the tail is heavy (shape > 1;
/// smaller = heavier).
struct HeavyTailWork {
  Seconds start{0.0};
  Seconds duration{1e9};
  double shape = 1.5;
};

/// Cuts the trace off `at` seconds after its start (stream died mid-clip).
struct TruncateTrace {
  Seconds at{60.0};
};

/// With probability `prob` per frame, multiplies its decode work by
/// `factor` (corrupted frames that take pathologically long to decode).
struct CorruptWork {
  double prob = 0.02;
  double factor = 8.0;
};

using TraceFault = std::variant<RateSpike, RateStep, BurstArrivals,
                                HeavyTailWork, TruncateTrace, CorruptWork>;

/// Stable snake_case name of the fault type ("rate_spike", ...).
std::string_view fault_kind(const TraceFault& fault);

/// Applies one fault; all randomness comes from `rng`.
workload::FrameTrace apply_fault(const workload::FrameTrace& trace,
                                 const TraceFault& fault, Rng& rng);

/// Applies a fault list left-to-right through one shared `rng` (so a
/// multi-item session consumes one deterministic substream in item order).
workload::FrameTrace apply_faults(const workload::FrameTrace& trace,
                                  std::span<const TraceFault> faults, Rng& rng);

/// Convenience: seeds a fresh Rng and applies the list.
workload::FrameTrace apply_faults(const workload::FrameTrace& trace,
                                  std::span<const TraceFault> faults,
                                  std::uint64_t seed);

}  // namespace dvs::fault
