#include "fleet/fleet_runner.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <mutex>
#include <utility>

#include "common/check.hpp"
#include "core/sweep.hpp"
#include "fault/fault_spec.hpp"

namespace dvs::fleet {

void FleetGroupResult::fold(const FleetGroupResult& other) {
  devices += other.devices;
  wave_devices += other.wave_devices;
  energy_j += other.energy_j;
  frames_decoded += other.frames_decoded;
  frames_dropped += other.frames_dropped;
  faults_injected += other.faults_injected;
  sum_mean_delay_s += other.sum_mean_delay_s;
  delay_sketch.merge(other.delay_sketch);
  energy_sketch.merge(other.energy_sketch);
  dropped_sketch.merge(other.dropped_sketch);
}

namespace {

double quantile_or_zero(const obs::QuantileSketch& s, double q) {
  return s.empty() ? 0.0 : s.quantile(q);
}

void write_group_row(CsvWriter& csv, const FleetGroupResult& g) {
  const double n = g.devices == 0 ? 1.0 : static_cast<double>(g.devices);
  csv.row(g.workload, g.policy, g.devices, g.wave_devices, g.energy_j,
          g.energy_j / n, g.frames_decoded, g.frames_dropped,
          g.faults_injected, g.sum_mean_delay_s / n,
          quantile_or_zero(g.delay_sketch, 0.5),
          quantile_or_zero(g.delay_sketch, 0.9),
          quantile_or_zero(g.delay_sketch, 0.99),
          quantile_or_zero(g.energy_sketch, 0.5),
          quantile_or_zero(g.energy_sketch, 0.99),
          quantile_or_zero(g.dropped_sketch, 0.99));
}

}  // namespace

void FleetResult::write_csv(CsvWriter& csv) const {
  csv.write_header({"workload", "policy", "devices", "wave_devices",
                    "energy_j", "joules_per_device", "frames_decoded",
                    "frames_dropped", "faults_injected", "mean_delay_s",
                    "delay_p50_s", "delay_p90_s", "delay_p99_s",
                    "energy_p50_j", "energy_p99_j", "dropped_p99"});
  for (const FleetGroupResult& g : groups) write_group_row(csv, g);
  write_group_row(csv, total);
}

FleetResult FleetRunner::run(const FleetSpec& spec) const {
  spec.validate();

  FleetResult out;
  out.fleet = spec.name;
  out.jobs = core::resolve_jobs(opts_.jobs);
  const auto t0 = std::chrono::steady_clock::now();

  // ---- shared immutable assets, built once ------------------------------
  core::DetectorFactoryConfig detector_cfg = spec.detector_cfg;
  if (spec.detector == core::DetectorKind::ChangePoint) detector_cfg.prepare();

  const core::CpuAsset cpu = core::build_cpu_asset(spec.cpu);

  const fault::FaultSpec* wave_fault =
      spec.wave.fraction > 0.0 ? fault::find_fault(spec.wave.fault) : nullptr;

  // assets[workload][variant][0] = base, [1] = wave-perturbed (same trace
  // seed: the wave hits the same content, delivered badly).
  const std::size_t W = spec.workloads.size();
  const std::size_t P = spec.policies.size();
  const std::size_t V = spec.trace_variants;
  std::vector<core::WorkloadAsset> assets(W * V * 2);
  std::vector<Seconds> delay_targets(W);
  for (std::size_t w = 0; w < W; ++w) {
    const core::WorkloadSpec& ws = spec.workloads[w].workload;
    delay_targets[w] = spec.delay_target.value() > 0.0
                           ? spec.delay_target
                           : ws.default_delay_target();
    for (std::size_t v = 0; v < V; ++v) {
      const std::uint64_t trace_seed = fleet_trace_seed(spec, w, v);
      assets[(w * V + v) * 2] = core::build_workload_asset(
          ws, cpu.cpu, trace_seed, fault::FaultSpec{}, 0);
      if (wave_fault != nullptr) {
        assets[(w * V + v) * 2 + 1] = core::build_workload_asset(
            ws, cpu.cpu, trace_seed, *wave_fault,
            fleet_fault_seed(spec, w, v));
      }
    }
  }

  // ---- population accumulators ------------------------------------------
  const std::size_t shard_size = std::max<std::size_t>(1, opts_.shard_size);
  const std::size_t num_shards =
      (spec.num_devices + shard_size - 1) / shard_size;

  std::vector<FleetShardPartial> partials(num_shards);

  // Restored shards are folded as-is and skipped by the pool; they seed the
  // progress counters so a resumed run's heartbeat still reaches the total.
  const auto restored_shard = [&](std::size_t shard) -> const FleetShardPartial* {
    if (opts_.restored == nullptr) return nullptr;
    const auto it = opts_.restored->find(shard);
    return it == opts_.restored->end() ? nullptr : &it->second;
  };
  std::size_t restored_devices = 0;
  std::size_t restored_shards = 0;
  double restored_energy_j = 0.0;
  for (std::size_t shard = 0; shard < num_shards; ++shard) {
    const FleetShardPartial* rp = restored_shard(shard);
    if (rp == nullptr) continue;
    partials[shard] = *rp;
    ++restored_shards;
    for (const FleetGroupResult& g : rp->groups) {
      restored_devices += g.devices;
      restored_energy_j += g.energy_j;
    }
  }

  // ---- progress side-channel (heartbeat + telemetry) --------------------
  std::mutex progress_m;
  std::ofstream heartbeat_file;
  std::ostream* heartbeat = nullptr;
  if (!opts_.heartbeat_path.empty()) {
    if (opts_.heartbeat_path == "-") {
      heartbeat = &std::cerr;
    } else {
      heartbeat_file.open(opts_.heartbeat_path);
      DVS_CHECK_MSG(static_cast<bool>(heartbeat_file),
                    "FleetRunner: cannot open heartbeat path " +
                        opts_.heartbeat_path);
      heartbeat = &heartbeat_file;
    }
  }
  // Running progress counters, shared by both side channels (guarded by
  // progress_m; completion order, like every progress surface here).
  std::size_t done_devices = restored_devices;
  std::size_t done_shards = restored_shards;
  double done_energy_j = restored_energy_j;
  // One flushed record per finished shard: a tailing monitor must see each
  // record as soon as the shard lands (same contract the sweep heartbeat
  // pins in its tests).
  // Optional trace context: serve jobs stamp their id on every record.
  const std::string hb_job = opts_.heartbeat_job.empty()
                                 ? std::string{}
                                 : "\"job\":\"" + opts_.heartbeat_job + "\",";
  const auto write_heartbeat = [&](std::size_t shard, std::size_t shard_devices,
                                   double shard_energy, double elapsed) {
    const double eta =
        done_devices == 0
            ? 0.0
            : elapsed * static_cast<double>(spec.num_devices - done_devices) /
                  static_cast<double>(done_devices);
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "\"fleet\":\"%s\",\"done\":%zu,\"total\":%zu,\"elapsed_s\":%.3f,"
        "\"eta_s\":%.3f,\"shard\":%zu,\"shards_done\":%zu,\"devices\":%zu,"
        "\"energy_j\":%.9g,\"running_fleet_energy_j\":%.9g}",
        spec.name.c_str(), done_devices, spec.num_devices, elapsed, eta,
        shard, done_shards, shard_devices, shard_energy, done_energy_j);
    *heartbeat << '{' << hb_job << buf << '\n' << std::flush;
  };

  // ---- execute ----------------------------------------------------------
  core::parallel_for(num_shards, out.jobs, [&](std::size_t shard) {
    if (restored_shard(shard) != nullptr) return;  // folded verbatim below
    FleetShardPartial& part = partials[shard];
    part.groups.resize(W * P);
    const std::uint64_t begin =
        static_cast<std::uint64_t>(shard) * shard_size;
    const std::uint64_t end = std::min<std::uint64_t>(
        begin + shard_size, spec.num_devices);
    for (std::uint64_t id = begin; id < end; ++id) {
      const DevicePlan plan = device_plan(spec, id);
      const bool faulted = plan.in_wave && wave_fault != nullptr;
      const core::WorkloadAsset& asset =
          assets[(plan.workload_idx * V + plan.variant) * 2 + (faulted ? 1 : 0)];

      core::RunAssembly a;
      a.detector = spec.detector;
      a.policy = spec.policies[plan.policy_idx].policy;
      a.delay_target = delay_targets[plan.workload_idx];
      a.service_cv2 = spec.service_cv2;
      a.dpm = spec.dpm;
      a.engine_seed = plan.engine_seed;
      if (faulted) a.faults = wave_fault;
      core::RunOptions opts =
          core::assemble_run_options(a, cpu, asset.idle, detector_cfg);
      // Throughput path: no per-device flight recorder ring — a fleet run
      // is aggregate-only, and the allocation would dominate small devices.
      opts.flight_recorder = false;

      core::Metrics m;
      if (plan.rate_scale != 1.0) {
        // Per-device rate jitter: re-time this device's copy of the shared
        // trace.  The asset itself stays untouched (and shared).
        std::vector<core::PlaybackItem> items;
        items.reserve(asset.items->size());
        for (const core::PlaybackItem& item : *asset.items) {
          items.push_back(core::PlaybackItem{
              item.trace.rate_scaled(plan.rate_scale), item.decoder,
              hertz(item.nominal_arrival.value() * plan.rate_scale),
              item.nominal_service_at_max,
              seconds(item.end.value() / plan.rate_scale)});
        }
        m = core::run_items(std::move(items), opts);
      } else {
        m = core::run_items(*asset.items, opts);
      }

      FleetGroupResult& g = part.groups[plan.workload_idx * P + plan.policy_idx];
      ++g.devices;
      if (faulted) ++g.wave_devices;
      g.energy_j += m.total_energy.value();
      g.frames_decoded += m.frames_decoded;
      g.frames_dropped += m.frames_dropped;
      g.faults_injected += m.faults_injected;
      g.sum_mean_delay_s += m.mean_frame_delay.value();
      g.delay_sketch.add(m.mean_frame_delay.value());
      g.energy_sketch.add(m.total_energy.value());
      g.dropped_sketch.add(static_cast<double>(m.frames_dropped));
      part.frames_total += m.frames_decoded + m.frames_dropped;
    }

    const bool telemetry_on =
        opts_.telemetry != nullptr && opts_.telemetry->active();
    if (heartbeat != nullptr || telemetry_on || opts_.on_shard) {
      std::size_t shard_devices = 0;
      double shard_energy = 0.0;
      for (const FleetGroupResult& g : part.groups) {
        shard_devices += g.devices;
        shard_energy += g.energy_j;
      }
      std::lock_guard<std::mutex> lk(progress_m);
      if (opts_.on_shard) opts_.on_shard(shard, part);
      done_devices += shard_devices;
      ++done_shards;
      done_energy_j += shard_energy;
      const double elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      if (heartbeat != nullptr) {
        write_heartbeat(shard, shard_devices, shard_energy, elapsed);
      }
      if (telemetry_on) {
        static const obs::MetricsRegistry kEmpty;
        opts_.telemetry->snapshot(
            elapsed, "fleet", kEmpty,
            {{"done", static_cast<double>(done_devices)},
             {"total", static_cast<double>(spec.num_devices)},
             {"shard", static_cast<double>(shard)},
             {"devices", static_cast<double>(shard_devices)},
             {"energy_j", shard_energy},
             {"running_fleet_energy_j", done_energy_j}});
      }
    }
  });

  // ---- fold serially, shard-index order ---------------------------------
  out.devices = spec.num_devices;
  out.groups.resize(W * P);
  for (std::size_t w = 0; w < W; ++w) {
    for (std::size_t p = 0; p < P; ++p) {
      FleetGroupResult& g = out.groups[w * P + p];
      g.workload = spec.workloads[w].workload.name();
      g.policy = spec.policies[p].policy;
    }
  }
  for (const FleetShardPartial& part : partials) {
    out.frames_total += part.frames_total;
    for (std::size_t i = 0; i < part.groups.size(); ++i) {
      out.groups[i].fold(part.groups[i]);
    }
  }
  out.total.workload = "all";
  out.total.policy = "all";
  for (const FleetGroupResult& g : out.groups) out.total.fold(g);

  out.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return out;
}

}  // namespace dvs::fleet
