// FleetRunner: executes a FleetSpec's device population on the sweep's
// work-stealing pool with results that are bit-identical at any --jobs.
//
// Determinism contract (the sweep's, restated for devices): every device
// is an independent simulation — its plan is pure arithmetic on
// mix_seed(fleet_seed, device_id) substreams (fleet_spec.hpp), its engine
// gets a fresh DPM policy and its own engine seed — and devices are
// partitioned into fixed-size shards whose boundaries depend only on the
// spec, never on the thread count.  Workers accumulate per-shard partials
// by walking their shard in device-id order; after the pool drains, the
// partials fold into the population results serially in shard-index
// order.  Quantile sketches therefore always merge in the same order with
// the same operands, so the fleet CSV is byte-identical at any --jobs.
//
// Shared immutable assets, built once before dispatch: the prepared
// change-point threshold table and one WorkloadAsset per (workload entry,
// trace variant, {base, wave-perturbed}) — a million devices play a few
// dozen traces, with per-device rate jitter re-timing each device's copy.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/csv.hpp"
#include "core/metrics.hpp"
#include "fleet/fleet_spec.hpp"
#include "obs/telemetry/quantile_sketch.hpp"
#include "obs/telemetry/snapshotter.hpp"

namespace dvs::fleet {

/// Population roll-up for one (workload entry, policy) slice.  Sums are
/// plain serial accumulations in device-id order; the sketches hold one
/// sample per device (its mean frame delay / total energy / dropped
/// frames), so their quantiles are over-devices percentiles, the numbers
/// a fleet operator actually pages on.
struct FleetGroupResult {
  std::string workload;  ///< WorkloadSpec::name() of the slice
  std::string policy;    ///< governor key of the slice
  std::size_t devices = 0;
  std::size_t wave_devices = 0;
  double energy_j = 0.0;  ///< total Joules across the slice's devices
  std::uint64_t frames_decoded = 0;
  std::uint64_t frames_dropped = 0;
  std::uint64_t faults_injected = 0;
  double sum_mean_delay_s = 0.0;  ///< for the slice's mean-of-means
  obs::QuantileSketch delay_sketch;    ///< per-device mean frame delay (s)
  obs::QuantileSketch energy_sketch;   ///< per-device total energy (J)
  obs::QuantileSketch dropped_sketch;  ///< per-device dropped frames

  /// Folds `other` (sums add, sketches merge) — callers must fold in a
  /// deterministic order for byte-identical quantiles.
  void fold(const FleetGroupResult& other);
};

/// One shard's accumulated partial: the complete fold-unit of a fleet run.
/// A checkpointed shard partial re-enters the serial shard-order fold
/// exactly where the freshly-computed one would, so a restored run's CSV
/// is byte-identical to an uninterrupted one (see FleetOptions::restored).
struct FleetShardPartial {
  /// Workload-major x policy grid, same layout as FleetResult::groups but
  /// without the name fields (those are filled once, at final fold time).
  std::vector<FleetGroupResult> groups;
  std::uint64_t frames_total = 0;
};

struct FleetResult {
  std::string fleet;
  int jobs = 1;
  double wall_seconds = 0.0;
  std::size_t devices = 0;
  std::uint64_t frames_total = 0;  ///< decoded + dropped, fleet-wide
  /// Workload-major x policy grid, every slice present (possibly empty).
  std::vector<FleetGroupResult> groups;
  /// Fleet-wide roll-up: groups folded in group order.
  FleetGroupResult total;

  /// Consolidated CSV emission: one row per slice plus an "all/all" total
  /// row.  Deliberately excludes jobs and wall time — the CSV must be
  /// byte-identical at any --jobs, and those are the two values that
  /// legitimately differ.
  void write_csv(CsvWriter& csv) const;
};

struct FleetOptions {
  int jobs = 1;  ///< 0 = hardware concurrency
  /// Devices per shard: the unit of work stealing, heartbeat granularity,
  /// and partial-fold order.  Result bytes are independent of this value
  /// only through the sums; sketch fold order follows shard order, so it
  /// is part of the spec of a reproducible run (keep the default unless
  /// measuring scheduling).
  std::size_t shard_size = 1024;
  /// Non-empty: live progress heartbeat as JSONL, one flushed object per
  /// finished shard (devices done/total, elapsed, ETA, running fleet
  /// Joules).  "-" = stderr.  Telemetry only — never influences results.
  std::string heartbeat_path;
  /// Non-empty: every heartbeat record leads with a `"job":"<id>"` member
  /// (the serve daemon's trace context).  Empty = records unchanged.
  std::string heartbeat_job;
  /// Live telemetry: one snapshot per finished shard (same contract as
  /// the heartbeat).
  obs::TelemetrySnapshotter* telemetry = nullptr;
  /// Checkpoint/restore (the serve daemon's hooks; plain fleet runs leave
  /// both unset).  Shards whose index appears in `restored` are not
  /// simulated: their checkpointed partials take their place in the serial
  /// shard-order fold, and they count as already done in the heartbeat.
  const std::map<std::size_t, FleetShardPartial>* restored = nullptr;
  /// Called under the progress lock after every *executed* shard with its
  /// finished partial — everything a checkpoint record needs to make the
  /// shard restorable.  Serialized; completion order.
  std::function<void(std::size_t, const FleetShardPartial&)> on_shard;
};

class FleetRunner {
 public:
  explicit FleetRunner(FleetOptions opts = {}) : opts_(std::move(opts)) {}

  /// Validates, prepares shared assets, simulates every device, folds.
  FleetResult run(const FleetSpec& spec) const;

 private:
  FleetOptions opts_;
};

}  // namespace dvs::fleet
