#include "fleet/fleet_spec.hpp"

#include <stdexcept>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "fault/fault_spec.hpp"
#include "policy/governor_factory.hpp"

namespace dvs::fleet {

namespace {

// Substream tags: one per per-device draw, so adding a draw never shifts
// the others (the sweep's seed-mixing stability argument, per device).
constexpr std::uint64_t kWorkloadTag = 0xf1ee70001ULL;
constexpr std::uint64_t kVariantTag = 0xf1ee70002ULL;
constexpr std::uint64_t kPolicyTag = 0xf1ee70003ULL;
constexpr std::uint64_t kWaveTag = 0xf1ee70004ULL;
constexpr std::uint64_t kJitterTag = 0xf1ee70005ULL;
constexpr std::uint64_t kEngineTag = 0xf1ee70006ULL;
// Trace substreams hang off the fleet seed, not any device seed.
constexpr std::uint64_t kTraceTag = 0xf1ee7000aULL;
constexpr std::uint64_t kFaultTag = 0xf1ee7000bULL;

/// Uniform double in [0, 1) from one tagged substream draw (the standard
/// 53-bit mantissa construction over the mixed 64-bit value).
double tagged_uniform(std::uint64_t device_seed, std::uint64_t tag) {
  return static_cast<double>(mix_seed(device_seed, tag) >> 11) * 0x1.0p-53;
}

/// Weighted pick: u in [0, 1) against the normalized cumulative weights.
template <typename Shares>
std::size_t weighted_pick(const Shares& shares, double total, double u) {
  double acc = 0.0;
  for (std::size_t i = 0; i < shares.size(); ++i) {
    acc += shares[i].weight / total;
    if (u < acc) return i;
  }
  return shares.size() - 1;  // float round-off on the last boundary
}

template <typename Shares>
double total_weight(const Shares& shares) {
  double total = 0.0;
  for (const auto& s : shares) total += s.weight;
  return total;
}

}  // namespace

void FleetSpec::validate() const {
  if (num_devices == 0) {
    throw std::invalid_argument("FleetSpec: num_devices must be > 0");
  }
  if (workloads.empty()) {
    throw std::invalid_argument("FleetSpec: at least one workload share");
  }
  if (policies.empty()) {
    throw std::invalid_argument("FleetSpec: at least one policy share");
  }
  for (const WorkloadShare& w : workloads) {
    if (!(w.weight > 0.0)) {
      throw std::invalid_argument("FleetSpec: workload weights must be > 0");
    }
  }
  for (const PolicyShare& p : policies) {
    if (!(p.weight > 0.0)) {
      throw std::invalid_argument("FleetSpec: policy weights must be > 0");
    }
    if (!policy::GovernorFactory::instance().has(p.policy)) {
      throw std::invalid_argument("FleetSpec: unknown governor policy '" +
                                  p.policy + "'");
    }
  }
  if (trace_variants == 0) {
    throw std::invalid_argument("FleetSpec: trace_variants must be > 0");
  }
  if (rate_jitter < 0.0 || rate_jitter >= 1.0) {
    throw std::invalid_argument("FleetSpec: rate_jitter must be in [0, 1)");
  }
  if (wave.fraction < 0.0 || wave.fraction > 1.0) {
    throw std::invalid_argument("FleetSpec: wave fraction must be in [0, 1]");
  }
  if (wave.fraction > 0.0 && fault::find_fault(wave.fault) == nullptr) {
    throw std::invalid_argument("FleetSpec: unknown wave fault '" + wave.fault +
                                "'");
  }
}

DevicePlan device_plan(const FleetSpec& spec, std::uint64_t device_id) {
  const std::uint64_t device_seed = mix_seed(spec.fleet_seed, device_id);
  DevicePlan plan;
  plan.workload_idx =
      weighted_pick(spec.workloads, total_weight(spec.workloads),
                    tagged_uniform(device_seed, kWorkloadTag));
  plan.variant = static_cast<std::size_t>(
      mix_seed(device_seed, kVariantTag) % spec.trace_variants);
  plan.policy_idx = weighted_pick(spec.policies, total_weight(spec.policies),
                                  tagged_uniform(device_seed, kPolicyTag));
  plan.in_wave = spec.wave.fraction > 0.0 && !spec.wave.fault.empty() &&
                 tagged_uniform(device_seed, kWaveTag) < spec.wave.fraction;
  plan.rate_scale =
      spec.rate_jitter == 0.0
          ? 1.0
          : 1.0 + spec.rate_jitter *
                      (2.0 * tagged_uniform(device_seed, kJitterTag) - 1.0);
  plan.engine_seed = mix_seed(device_seed, kEngineTag);
  return plan;
}

std::uint64_t fleet_trace_seed(const FleetSpec& spec, std::size_t workload_idx,
                               std::size_t variant) {
  return mix_seed(mix_seed(spec.fleet_seed, kTraceTag),
                  workload_idx * spec.trace_variants + variant);
}

std::uint64_t fleet_fault_seed(const FleetSpec& spec, std::size_t workload_idx,
                               std::size_t variant) {
  return mix_seed(fleet_trace_seed(spec, workload_idx, variant), kFaultTag);
}

namespace {

std::vector<FleetSpec> make_builtin_fleets() {
  std::vector<FleetSpec> fleets;

  {
    // CI-sized population: short clips so 10k devices finish in seconds,
    // but every fleet mechanism exercised — mixed media, a three-way
    // policy split, rate jitter, and a spike wave hitting a tenth of the
    // devices.
    FleetSpec s;
    s.name = "fleet_smoke";
    s.title = "Fleet smoke: 10k mixed devices, 10% rate-spike wave";
    s.description =
        "10k devices, mp3+short-mpeg mix, paper/qdpm/max split, "
        "10% spike10x wave";
    s.num_devices = 10000;
    s.fleet_seed = 2001;
    s.workloads = {
        {core::WorkloadSpec::mpeg("football", seconds(12.0)), 3.0},
        {core::WorkloadSpec::mpeg("terminator2", seconds(12.0)), 1.0},
        {core::WorkloadSpec::mp3("A"), 1.0},
    };
    s.policies = {{"paper", 0.7}, {"qdpm", 0.2}, {"max", 0.1}};
    s.dpm.kind = core::DpmKind::Tismdp;
    s.trace_variants = 8;
    s.rate_jitter = 0.1;
    s.wave = {"spike10x", 0.1};
    // The sweep "quick" scenario's lighter threshold table: the fleet CI
    // step must not spend its budget on Monte-Carlo threshold prep.
    s.detector_cfg.change_point.mc_windows = 500;
    fleets.push_back(std::move(s));
  }

  {
    // Deployment-scale population: 100k devices, longer media, a chaos
    // wave on 5% — the config behind the EXPERIMENTS.md fleet table.
    FleetSpec s;
    s.name = "fleet_city";
    s.title = "Fleet city: 100k devices, chaos wave on 5%";
    s.description =
        "100k devices, full mp3 sequence + 60s mpeg, paper/qdpm split, "
        "5% chaos wave";
    s.num_devices = 100000;
    s.fleet_seed = 2002;
    s.workloads = {
        {core::WorkloadSpec::mp3("ACE"), 1.0},
        {core::WorkloadSpec::mpeg("football", seconds(60.0)), 2.0},
    };
    s.policies = {{"paper", 0.8}, {"qdpm", 0.2}};
    s.dpm.kind = core::DpmKind::Tismdp;
    s.trace_variants = 16;
    s.rate_jitter = 0.15;
    s.wave = {"chaos", 0.05};
    s.detector_cfg.change_point.mc_windows = 500;
    fleets.push_back(std::move(s));
  }

  return fleets;
}

}  // namespace

std::span<const FleetSpec> builtin_fleets() {
  static const std::vector<FleetSpec> fleets = make_builtin_fleets();
  return fleets;
}

const FleetSpec* find_fleet(std::string_view name) {
  for (const FleetSpec& s : builtin_fleets()) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

}  // namespace dvs::fleet
