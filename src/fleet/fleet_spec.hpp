// Declarative fleet populations: "run N devices, each an independent
// core::Engine, drawn from this policy/workload mix" stated once, expanded
// deterministically per device.
//
// The paper models ONE SmartBadge.  A deployment has thousands; what an
// operator tunes against is the population — p99 frame delay over devices,
// total fleet energy, how a rate spike hitting a tenth of the fleet moves
// the tail.  A FleetSpec captures that population declaratively, and the
// per-device expansion below is pure arithmetic on RNG substreams so any
// device's configuration can be recomputed in isolation, on any shard, on
// any thread, and always comes out the same.
//
// Seed discipline (the sweep's substream scheme, one level deeper):
//   device_seed = mix_seed(fleet_seed, device_id)
// and every per-device draw (workload pick, trace variant, policy pick,
// fault-wave membership, rate jitter, engine seed) is a tagged substream of
// device_seed.  Traces are NOT per-device: devices map onto a small pool of
// prepared trace variants (trace_variants per workload entry) so a million
// devices share a few dozen immutable FrameTraces — the asset-reuse trick
// that makes fleet scale affordable — while rate jitter still gives every
// device its own timeline.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/scenario.hpp"

namespace dvs::fleet {

/// One governor-policy slice of the population (policy::GovernorFactory
/// key + relative weight; weights need not sum to 1).
struct PolicyShare {
  std::string policy = "paper";
  double weight = 1.0;
};

/// One workload slice of the population.
struct WorkloadShare {
  core::WorkloadSpec workload;
  double weight = 1.0;
};

/// A fault wave hitting a random fixed fraction of the fleet: affected
/// devices play the fault-perturbed variant of their trace and run under
/// the fault's hardware plan / watchdog config.  `fault` is a builtin
/// fault::FaultSpec name ("spike10x", "chaos", ...); empty = no wave.
struct FaultWave {
  std::string fault;
  double fraction = 0.0;  ///< fraction of devices in the wave, [0, 1]
};

struct FleetSpec {
  std::string name;         ///< registry key, e.g. "fleet_smoke"
  std::string title;        ///< printed header
  std::string description;  ///< one-liner for `dvs_sim list fleets`

  std::size_t num_devices = 10000;
  std::uint64_t fleet_seed = 1;

  std::vector<WorkloadShare> workloads;  ///< must be non-empty
  std::vector<PolicyShare> policies{{"paper", 1.0}};

  core::DetectorKind detector = core::DetectorKind::ChangePoint;
  core::DpmSpec dpm{};
  /// 0 = each device uses its workload's per-media default target.
  Seconds delay_target{0.0};
  double service_cv2 = 1.0;

  /// Prepared traces per workload entry; devices hash onto one of these.
  std::size_t trace_variants = 8;
  /// Per-device arrival-rate scale drawn uniformly from
  /// [1 - rate_jitter, 1 + rate_jitter]; 0 = every device at nominal rate.
  double rate_jitter = 0.0;
  FaultWave wave{};

  std::string cpu = "sa1100";  ///< hw/cpu_catalog name
  core::DetectorFactoryConfig detector_cfg{};

  /// Throws std::invalid_argument on an inconsistent spec (no workloads,
  /// non-positive weights, unknown wave fault, jitter outside [0, 1), ...).
  void validate() const;
};

/// Everything device-specific, computed purely from (spec, device_id) —
/// no shared state, no iteration order, so shard boundaries and thread
/// schedules cannot influence any device's run.
struct DevicePlan {
  std::size_t workload_idx = 0;  ///< index into FleetSpec::workloads
  std::size_t variant = 0;       ///< trace variant within the workload
  std::size_t policy_idx = 0;    ///< index into FleetSpec::policies
  bool in_wave = false;
  double rate_scale = 1.0;
  std::uint64_t engine_seed = 0;
};

DevicePlan device_plan(const FleetSpec& spec, std::uint64_t device_id);

/// Workload-generation seed for one (workload entry, variant) asset —
/// independent of device count, so growing the fleet never regenerates
/// traces.
std::uint64_t fleet_trace_seed(const FleetSpec& spec, std::size_t workload_idx,
                               std::size_t variant);
/// Fault-transform seed for the wave-perturbed flavour of the same asset.
std::uint64_t fleet_fault_seed(const FleetSpec& spec, std::size_t workload_idx,
                               std::size_t variant);

/// Ready-to-run fleet specs ("fleet_smoke", "fleet_city").
std::span<const FleetSpec> builtin_fleets();

/// Lookup by name; nullptr when absent.
const FleetSpec* find_fleet(std::string_view name);

}  // namespace dvs::fleet
