#include "hw/battery.hpp"

#include <cmath>

namespace dvs::hw {

Battery::Battery(Joules nominal_energy, MilliWatts rated_power, double peukert)
    : nominal_(nominal_energy), rated_power_(rated_power), peukert_(peukert) {
  DVS_CHECK_MSG(nominal_.value() > 0.0, "Battery: non-positive capacity");
  DVS_CHECK_MSG(rated_power_.value() > 0.0, "Battery: non-positive rated power");
  DVS_CHECK_MSG(peukert_ >= 1.0, "Battery: Peukert exponent must be >= 1");
}

Joules Battery::effective_capacity(MilliWatts draw) const {
  DVS_CHECK_MSG(draw.value() >= 0.0, "Battery: negative draw");
  if (draw.value() <= rated_power_.value()) return nominal_;
  // Above rated power the deliverable energy shrinks as (rated/draw)^(k-1).
  const double ratio = rated_power_.value() / draw.value();
  return nominal_ * std::pow(ratio, peukert_ - 1.0);
}

Seconds Battery::lifetime(MilliWatts draw) const {
  DVS_CHECK_MSG(draw.value() > 0.0, "Battery: lifetime needs positive draw");
  const Joules cap = effective_capacity(draw);
  return Seconds{cap.value() / (draw.value() * 1e-3)};
}

}  // namespace dvs::hw
