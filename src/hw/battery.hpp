// Battery model for lifetime estimation (examples/badge_lifetime).
//
// A rated-capacity cell with Peukert-style derating: sustained draw above
// the rated current yields less than nominal capacity.  Good enough to turn
// "factor of three energy savings" (Table 5) into "hours of badge
// lifetime", which is the quantity the paper's introduction motivates.
#pragma once

#include "common/check.hpp"
#include "common/units.hpp"

namespace dvs::hw {

class Battery {
 public:
  /// nominal_energy: full-charge energy at the rated discharge power.
  /// rated_power: discharge power at which nominal energy is delivered.
  /// peukert: exponent >= 1; 1.0 disables derating.
  Battery(Joules nominal_energy, MilliWatts rated_power, double peukert = 1.1);

  /// Effective deliverable energy at a constant discharge power.
  [[nodiscard]] Joules effective_capacity(MilliWatts draw) const;

  /// Lifetime at a constant average draw; throws on non-positive draw.
  [[nodiscard]] Seconds lifetime(MilliWatts draw) const;

  [[nodiscard]] Joules nominal_energy() const { return nominal_; }
  [[nodiscard]] MilliWatts rated_power() const { return rated_power_; }

 private:
  Joules nominal_;
  MilliWatts rated_power_;
  double peukert_;
};

}  // namespace dvs::hw
