#include "hw/component.hpp"

#include <utility>

#include "obs/flight_recorder.hpp"

namespace dvs::hw {

Component::Component(ComponentSpec spec) : spec_(std::move(spec)) {
  DVS_CHECK_MSG(spec_.active_power.value() >= 0.0, spec_.name + ": negative active power");
  DVS_CHECK_MSG(spec_.idle_power.value() >= 0.0, spec_.name + ": negative idle power");
  DVS_CHECK_MSG(spec_.standby_power.value() >= 0.0, spec_.name + ": negative standby power");
  DVS_CHECK_MSG(spec_.off_power.value() >= 0.0, spec_.name + ": negative off power");
  DVS_CHECK_MSG(spec_.wakeup_from_standby.value() >= 0.0, spec_.name + ": negative t_sby");
  DVS_CHECK_MSG(spec_.wakeup_from_off.value() >= 0.0, spec_.name + ": negative t_off");
}

MilliWatts Component::power_in(PowerState s) const {
  switch (s) {
    case PowerState::Active: return spec_.active_power;
    case PowerState::Idle: return spec_.idle_power;
    case PowerState::Standby: return spec_.standby_power;
    case PowerState::Off: return spec_.off_power;
  }
  return MilliWatts{0.0};
}

Seconds Component::wakeup_latency_from(PowerState s) const {
  switch (s) {
    case PowerState::Standby: return spec_.wakeup_from_standby;
    case PowerState::Off: return spec_.wakeup_from_off;
    default: return Seconds{0.0};
  }
}

MilliWatts Component::current_power() const {
  // A waking component runs its logic at full tilt until usable.
  return transitioning_ ? spec_.active_power : power_in(state_);
}

void Component::accrue(Seconds now) {
  DVS_CHECK_MSG(now >= last_accrual_, spec_.name + ": time moved backwards");
  const Seconds dt = now - last_accrual_;
  // Skipping the empty interval is bit-identical (x + 0.0 == x) and keeps
  // the observer quiet on the frequent same-timestamp accruals.
  if (dt.value() <= 0.0) return;
  const Joules delta = energy(current_power(), dt);
  energy_ += delta;
  last_accrual_ = now;
  if (accrual_observer_) accrual_observer_(*this, delta, dt);
}

Seconds Component::set_state(PowerState s, Seconds now) {
  accrue(now);
  DVS_CHECK_MSG(!transitioning_, spec_.name + ": state change during wakeup");
  if (s == state_) return Seconds{0.0};

  const bool waking = is_sleep_state(state_) && !is_sleep_state(s);
  const PowerState from = state_;
  state_ = s;
  if (is_sleep_state(s)) ++sleep_transitions_;
  if (!waking) {
    notify_state_change(from, s, now);
    return Seconds{0.0};
  }

  const Seconds latency = wakeup_latency_from(from);
  if (latency.value() > 0.0) {
    transitioning_ = true;
    wakeup_done_ = now + latency;
    ++wakeups_;
  }
  notify_state_change(from, s, now);
  return latency;
}

void Component::notify_state_change(PowerState from, PowerState to,
                                    Seconds now) {
  if (flight_ != nullptr) {
    flight_->record(now.value(), obs::FlightEventType::ComponentState,
                    static_cast<std::uint16_t>(
                        (static_cast<unsigned>(flight_index_) << 8) |
                        static_cast<unsigned>(to)),
                    static_cast<float>(current_power().value()), 0.0F);
  }
  if (observer_) observer_(*this, from, to, now);
}

void Component::finish_wakeup(Seconds now) {
  if (!transitioning_) return;
  DVS_CHECK_MSG(now >= wakeup_done_, spec_.name + ": wakeup finished early");
  accrue(now);
  transitioning_ = false;
}

void Component::set_active_power(MilliWatts p, Seconds now) {
  DVS_CHECK_MSG(p.value() >= 0.0, spec_.name + ": negative active power");
  accrue(now);
  spec_.active_power = p;
}

void Component::set_idle_power(MilliWatts p, Seconds now) {
  DVS_CHECK_MSG(p.value() >= 0.0, spec_.name + ": negative idle power");
  accrue(now);
  spec_.idle_power = p;
}

Joules Component::energy_consumed(Seconds now) {
  accrue(now);
  return energy_;
}

}  // namespace dvs::hw
