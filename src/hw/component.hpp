// Power-state machine with energy accounting for one hardware component.
//
// Models exactly what the DPM framework observes: per-state power draw, a
// wakeup latency when leaving standby/off, and an energy integral over
// simulated time.  Shutdown (active/idle -> standby/off) is modelled as
// instantaneous — the paper only reports wakeup transition times (t_sby,
// t_off, Table 1) — while wakeups occupy the component at *active* power for
// the whole transition, the standard pessimistic assumption in the authors'
// DPM work (transitions are expensive; that is what makes the policy
// decision non-trivial).
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "common/check.hpp"
#include "common/units.hpp"
#include "hw/power_state.hpp"

namespace dvs::obs {
class FlightRecorder;
}  // namespace dvs::obs

namespace dvs::hw {

/// Static description of a component's power behaviour (one row of Table 1).
struct ComponentSpec {
  std::string name;
  MilliWatts active_power;
  MilliWatts idle_power;
  MilliWatts standby_power;
  MilliWatts off_power{0.0};   ///< Usually 0; kept explicit for completeness.
  Seconds wakeup_from_standby; ///< t_sby in Table 1.
  Seconds wakeup_from_off;     ///< t_off in Table 1.
};

/// A component instance with a current state and an energy integral.
///
/// Time never flows backwards: every mutator takes the current simulation
/// time and checks monotonicity.  Energy is integrated lazily — callers need
/// not tick the component; any query or state change first accrues energy up
/// to the given time.
class Component {
 public:
  explicit Component(ComponentSpec spec);

  [[nodiscard]] const ComponentSpec& spec() const { return spec_; }
  [[nodiscard]] const std::string& name() const { return spec_.name; }

  /// Power drawn while resident in state `s` (not transitioning).
  [[nodiscard]] MilliWatts power_in(PowerState s) const;

  /// Wakeup latency when leaving `s` for active.  Zero from active/idle.
  [[nodiscard]] Seconds wakeup_latency_from(PowerState s) const;

  [[nodiscard]] PowerState state() const { return state_; }
  [[nodiscard]] bool transitioning() const { return transitioning_; }

  /// Instantaneous power right now (transitioning components draw active
  /// power).
  [[nodiscard]] MilliWatts current_power() const;

  /// Moves to `s` at time `now`.
  ///
  /// Going deeper (toward off) or sideways is instantaneous.  Going from
  /// standby/off to active/idle starts a wakeup: the component draws active
  /// power immediately, and `wakeup_complete_at()` reports when it becomes
  /// usable.  Returns the wakeup latency paid (zero when none).
  Seconds set_state(PowerState s, Seconds now);

  /// Completes a pending wakeup; must be called at or after
  /// wakeup_complete_at().  No-op when not transitioning.
  void finish_wakeup(Seconds now);

  /// Re-points the active-state power draw, accruing energy first.  Used by
  /// the DVS governor: the CPU's active power is a function of the current
  /// frequency/voltage setting.
  void set_active_power(MilliWatts p, Seconds now);

  /// Re-points the idle-state power draw, accruing energy first.  The
  /// SA-1100's idle mode keeps the clock running, so its idle power also
  /// scales with the DVS operating point.
  void set_idle_power(MilliWatts p, Seconds now);

  [[nodiscard]] Seconds wakeup_complete_at() const { return wakeup_done_; }

  /// Integrates energy up to `now` (idempotent; monotone time required).
  void accrue(Seconds now);

  /// Total energy consumed since construction (after accruing to `now`).
  Joules energy_consumed(Seconds now);

  /// Energy total at the last accrual point, without advancing time.
  [[nodiscard]] Joules energy_so_far() const { return energy_; }

  /// Number of commanded sleep transitions (for policy statistics).
  [[nodiscard]] int sleep_transition_count() const { return sleep_transitions_; }
  /// Number of wakeups started.
  [[nodiscard]] int wakeup_count() const { return wakeups_; }

  /// Observer called after every actual state change (not on same-state
  /// commands).  Null by default; the observability layer installs one to
  /// build per-component power-state timelines.
  using StateObserver =
      std::function<void(const Component&, PowerState from, PowerState to,
                         Seconds now)>;
  void set_state_observer(StateObserver observer) {
    observer_ = std::move(observer);
  }

  /// Observer called from accrue() with the exact energy delta just added
  /// to the integral, whenever a non-empty interval elapses.  At call time
  /// state()/transitioning() still describe the interval that elapsed (all
  /// mutators accrue *before* changing state), so attribution layers can
  /// read them directly.  Null by default; an unobserved component pays one
  /// pointer test per accrual.
  using AccrualObserver =
      std::function<void(const Component&, Joules delta, Seconds dt)>;
  void set_accrual_observer(AccrualObserver observer) {
    accrual_observer_ = std::move(observer);
  }

  /// Always-on flight-recorder hook: a raw pointer, not a std::function —
  /// the ring store must stay a few ns so the recorder can run on every
  /// state change of every run.  `index` tags records as
  /// code=(index<<8)|state.  Null disables (the default).
  void set_flight_recorder(obs::FlightRecorder* recorder, std::uint16_t index) {
    flight_ = recorder;
    flight_index_ = index;
  }

 private:
  void notify_state_change(PowerState from, PowerState to, Seconds now);

  ComponentSpec spec_;
  PowerState state_ = PowerState::Idle;
  bool transitioning_ = false;
  Seconds wakeup_done_{0.0};
  Seconds last_accrual_{0.0};
  Joules energy_{0.0};
  int sleep_transitions_ = 0;
  int wakeups_ = 0;
  StateObserver observer_;
  AccrualObserver accrual_observer_;
  obs::FlightRecorder* flight_ = nullptr;
  std::uint16_t flight_index_ = 0;
};

}  // namespace dvs::hw
