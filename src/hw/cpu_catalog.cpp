#include "hw/cpu_catalog.hpp"

namespace dvs::hw {

Sa1100 smartbadge_sa1100() { return Sa1100{}; }

Sa1100 crusoe_like() {
  std::vector<FrequencyStep> steps;
  // 300 -> 667 MHz in 12 steps; voltage 1.20 -> 1.60 V, mildly super-linear.
  for (int i = 0; i < 12; ++i) {
    const double f = 300.0 + (667.0 - 300.0) * i / 11.0;
    const double fn = static_cast<double>(i) / 11.0;
    const double v = 1.20 + 0.32 * fn + 0.08 * fn * fn;
    steps.push_back({megahertz(f), volts(v)});
  }
  return Sa1100{std::move(steps), milliwatts(1500.0), microseconds(300.0)};
}

Sa1100 frequency_only_sa1100() {
  const Sa1100 stock;
  std::vector<FrequencyStep> steps;
  for (const auto& s : stock.steps()) {
    steps.push_back({s.frequency, stock.steps().back().min_voltage});
  }
  return Sa1100{std::move(steps), milliwatts(400.0),
                stock.frequency_switch_latency()};
}

}  // namespace dvs::hw
