// A small catalog of DVS-capable processor models beyond the stock
// SA-1100, for what-if studies.  The paper's introduction points at
// Transmeta's Crusoe as the commercial embodiment of frequency+voltage
// setting ("this principle is exploited by the recently announced
// Transmeta's Crusoe processor"); the catalog lets the benches quantify how
// much of the DVS win comes from the *voltage range* a part exposes.
#pragma once

#include "hw/sa1100.hpp"

namespace dvs::hw {

/// The stock SmartBadge part (same as Sa1100's default constructor):
/// 59.0-221.25 MHz, 0.86-1.65 V, 400 mW at the top step.
Sa1100 smartbadge_sa1100();

/// A Crusoe-like part (TM5400 class): 300-667 MHz in ~33 MHz steps,
/// 1.20-1.60 V, ~1.5 W at the top step.  Wider absolute frequency range but
/// a narrower voltage ratio than the SA-1100.
Sa1100 crusoe_like();

/// A frequency-only scaler: the SA-1100 clock ladder with the voltage
/// pinned at the top value — what DVS would be worth on a part without
/// voltage setting (energy per cycle is then constant; only the race-to-
/// idle trade remains).
Sa1100 frequency_only_sa1100();

}  // namespace dvs::hw
