#include "hw/dcdc.hpp"

namespace dvs::hw {

DcDcConverter::DcDcConverter()
    : efficiency_(PiecewiseLinear{{0.0, 0.40},
                                  {50.0, 0.60},
                                  {200.0, 0.78},
                                  {500.0, 0.85},
                                  {1500.0, 0.90},
                                  {4000.0, 0.90}}) {}

DcDcConverter::DcDcConverter(PiecewiseLinear efficiency_vs_load_mw)
    : efficiency_(std::move(efficiency_vs_load_mw)) {
  for (const auto& [x, y] : efficiency_.knots()) {
    DVS_CHECK_MSG(x >= 0.0, "DcDcConverter: negative load knot");
    DVS_CHECK_MSG(y > 0.0 && y <= 1.0, "DcDcConverter: efficiency must be in (0,1]");
  }
}

double DcDcConverter::efficiency_at(MilliWatts load) const {
  DVS_CHECK_MSG(load.value() >= 0.0, "DcDcConverter: negative load");
  return efficiency_(load.value());
}

MilliWatts DcDcConverter::input_power(MilliWatts load) const {
  if (load.value() == 0.0) return MilliWatts{0.0};
  return MilliWatts{load.value() / efficiency_at(load)};
}

MilliWatts DcDcConverter::loss(MilliWatts load) const {
  return input_power(load) - load;
}

}  // namespace dvs::hw
