// DC-DC converter model.
//
// The SmartBadge is "powered by the batteries through a DC-DC converter";
// converter loss matters because DPM pushes the badge into very light loads
// where switching-converter efficiency collapses.  Efficiency is modelled as
// a piecewise-linear function of output power — a standard buck-converter
// curve: poor below ~5% load, flat ~90% near rated load.
#pragma once

#include "common/check.hpp"
#include "common/piecewise_linear.hpp"
#include "common/units.hpp"

namespace dvs::hw {

class DcDcConverter {
 public:
  /// Default converter rated for the ~3.5 W badge.
  DcDcConverter();

  /// Custom efficiency curve: (output power mW, efficiency in (0,1]) knots.
  explicit DcDcConverter(PiecewiseLinear efficiency_vs_load_mw);

  /// Efficiency at a given output (load) power.
  [[nodiscard]] double efficiency_at(MilliWatts load) const;

  /// Battery-side draw needed to deliver `load` at the output.
  [[nodiscard]] MilliWatts input_power(MilliWatts load) const;

  /// Power burned in the converter itself.
  [[nodiscard]] MilliWatts loss(MilliWatts load) const;

 private:
  PiecewiseLinear efficiency_;
};

}  // namespace dvs::hw
