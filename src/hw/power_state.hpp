// Component power states.
//
// "All components have four main power states: active, idle, standby and
// off." (paper, Section 1).  Idle is entered autonomously by hardware when a
// component is not accessed; standby and off transitions are commanded by
// the power manager and pay a wakeup latency on the way back (Table 1).
#pragma once

#include <array>
#include <string_view>

namespace dvs::hw {

enum class PowerState { Active, Idle, Standby, Off };

inline constexpr std::array<PowerState, 4> kAllPowerStates = {
    PowerState::Active, PowerState::Idle, PowerState::Standby, PowerState::Off};

constexpr std::string_view to_string(PowerState s) {
  switch (s) {
    case PowerState::Active: return "active";
    case PowerState::Idle: return "idle";
    case PowerState::Standby: return "standby";
    case PowerState::Off: return "off";
  }
  return "?";
}

/// True for the states the power manager may command as sleep targets.
constexpr bool is_sleep_state(PowerState s) {
  return s == PowerState::Standby || s == PowerState::Off;
}

/// Deeper state == lower power.  Active < Idle < Standby < Off.
constexpr bool deeper_than(PowerState a, PowerState b) {
  return static_cast<int>(a) > static_cast<int>(b);
}

}  // namespace dvs::hw
