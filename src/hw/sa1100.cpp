#include "hw/sa1100.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

namespace dvs::hw {
namespace {

/// Reconstructed Figure 3: 12 clock steps of 14.75 MHz.  The voltage curve
/// is mildly super-linear in frequency (as in the printed figure): a linear
/// term plus a small quadratic correction, snapped to sensible values.
std::vector<FrequencyStep> default_steps() {
  std::vector<FrequencyStep> steps;
  steps.reserve(12);
  for (int i = 0; i < 12; ++i) {
    const double f = 59.0 + 14.75 * i;  // 59.0 ... 221.2(5) MHz
    const double fn = (f - 59.0) / (221.25 - 59.0);
    const double v = 0.86 + 0.59 * fn + 0.20 * fn * fn;  // 0.86 V ... 1.65 V
    steps.push_back({megahertz(f), volts(v)});
  }
  return steps;
}

}  // namespace

Sa1100::Sa1100()
    : Sa1100(default_steps(), milliwatts(400.0), microseconds(150.0)) {}

Sa1100::Sa1100(std::vector<FrequencyStep> steps, MilliWatts active_power_at_max,
               Seconds frequency_switch_latency)
    : steps_(std::move(steps)),
      active_power_at_max_(active_power_at_max),
      switch_latency_(frequency_switch_latency) {
  validate();
}

void Sa1100::validate() const {
  DVS_CHECK_MSG(!steps_.empty(), "Sa1100: empty frequency table");
  DVS_CHECK_MSG(active_power_at_max_.value() > 0.0, "Sa1100: non-positive max power");
  DVS_CHECK_MSG(switch_latency_.value() >= 0.0, "Sa1100: negative switch latency");
  for (std::size_t i = 0; i < steps_.size(); ++i) {
    DVS_CHECK_MSG(steps_[i].frequency.value() > 0.0, "Sa1100: non-positive frequency");
    DVS_CHECK_MSG(steps_[i].min_voltage.value() > 0.0, "Sa1100: non-positive voltage");
    if (i > 0) {
      DVS_CHECK_MSG(steps_[i].frequency > steps_[i - 1].frequency,
                    "Sa1100: frequencies must be strictly increasing");
      DVS_CHECK_MSG(steps_[i].min_voltage >= steps_[i - 1].min_voltage,
                    "Sa1100: voltage must be non-decreasing with frequency");
    }
  }
}

Volts Sa1100::voltage_at(std::size_t step) const {
  DVS_CHECK_MSG(step < steps_.size(), "Sa1100: step out of range");
  return steps_[step].min_voltage;
}

MegaHertz Sa1100::frequency_at(std::size_t step) const {
  DVS_CHECK_MSG(step < steps_.size(), "Sa1100: step out of range");
  return steps_[step].frequency;
}

Volts Sa1100::min_voltage_for(MegaHertz f) const {
  if (steps_.size() == 1) return steps_.front().min_voltage;
  std::vector<PiecewiseLinear::Point> pts;
  pts.reserve(steps_.size());
  for (const auto& s : steps_) pts.emplace_back(s.frequency.value(), s.min_voltage.value());
  return volts(PiecewiseLinear{std::move(pts)}(f.value()));
}

MilliWatts Sa1100::active_power(MegaHertz f, Volts v) const {
  const MegaHertz f_max = max_frequency();
  const Volts v_max = steps_.back().min_voltage;
  const double ratio = (v.value() / v_max.value()) * (v.value() / v_max.value()) *
                       (f.value() / f_max.value());
  return active_power_at_max_ * ratio;
}

MilliWatts Sa1100::active_power_at(std::size_t step) const {
  return active_power(frequency_at(step), voltage_at(step));
}

std::size_t Sa1100::step_at_or_above(MegaHertz f) const {
  for (std::size_t i = 0; i < steps_.size(); ++i) {
    if (steps_[i].frequency >= f) return i;
  }
  return steps_.size() - 1;
}

std::size_t Sa1100::step_at_or_below(MegaHertz f) const {
  for (std::size_t i = steps_.size(); i-- > 0;) {
    if (steps_[i].frequency <= f) return i;
  }
  return 0;
}

double Sa1100::energy_per_cycle_ratio(std::size_t step) const {
  const Volts v = voltage_at(step);
  const Volts v_max = steps_.back().min_voltage;
  return (v.value() / v_max.value()) * (v.value() / v_max.value());
}

}  // namespace dvs::hw
