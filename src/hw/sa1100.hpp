// StrongARM SA-1100 processor model.
//
// The SA-1100 on the SmartBadge "can be configured at run-time by a simple
// write to a hardware register to execute at one of [several] different
// frequencies" with, for each frequency, a minimum operating voltage
// (Figure 3 of the paper).  The clock generator steps in multiples of
// 14.75 MHz from 59.0 to 221.2 MHz.  Switching between two frequency
// settings takes ~150 us — negligible against frame decode times, which is
// what makes intra-task DVS viable.
//
// Active power scales as P = P_max * (V/V_max)^2 * (f/f_max) (switching
// power, CV^2f); the idle/standby/off powers come from Table 1 and do not
// depend on the frequency setting.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/check.hpp"
#include "common/piecewise_linear.hpp"
#include "common/units.hpp"

namespace dvs::hw {

/// One row of the frequency/voltage table (Figure 3).
struct FrequencyStep {
  MegaHertz frequency;
  Volts min_voltage;
};

/// SA-1100 clock/voltage subsystem: discrete frequency steps, the minimum
/// voltage for each, and the active-power model.
class Sa1100 {
 public:
  /// Builds the default SmartBadge SA-1100: 12 steps of 14.75 MHz from
  /// 59.0 MHz to 221.2 MHz, voltages 0.86 V to 1.65 V (reconstruction of
  /// Figure 3; the printed figure spans ~0.8-1.65 V over that range).
  Sa1100();

  /// Custom table (sorted ascending, at least one step) and max active power.
  Sa1100(std::vector<FrequencyStep> steps, MilliWatts active_power_at_max,
         Seconds frequency_switch_latency);

  [[nodiscard]] std::span<const FrequencyStep> steps() const { return steps_; }
  [[nodiscard]] std::size_t num_steps() const { return steps_.size(); }

  [[nodiscard]] MegaHertz min_frequency() const { return steps_.front().frequency; }
  [[nodiscard]] MegaHertz max_frequency() const { return steps_.back().frequency; }

  /// Minimum voltage required at frequency step i.
  [[nodiscard]] Volts voltage_at(std::size_t step) const;
  [[nodiscard]] MegaHertz frequency_at(std::size_t step) const;

  /// Minimum voltage for an arbitrary frequency (piecewise-linear on the
  /// table, clamped to the table range) — Figure 3 as a curve.
  [[nodiscard]] Volts min_voltage_for(MegaHertz f) const;

  /// Active power at frequency step i running at its minimum voltage.
  [[nodiscard]] MilliWatts active_power_at(std::size_t step) const;

  /// Active power at an arbitrary (frequency, voltage) pair.
  [[nodiscard]] MilliWatts active_power(MegaHertz f, Volts v) const;

  /// Index of the lowest step whose frequency is >= f; clamps to the top
  /// step when f exceeds the table.
  [[nodiscard]] std::size_t step_at_or_above(MegaHertz f) const;

  /// Index of the highest step whose frequency is <= f; clamps to step 0.
  [[nodiscard]] std::size_t step_at_or_below(MegaHertz f) const;

  /// Time to retune the PLL between any two frequency settings.
  [[nodiscard]] Seconds frequency_switch_latency() const { return switch_latency_; }

  /// Energy-per-cycle ratio relative to the top step: (V/Vmax)^2.  The DVS
  /// win in one number: running a fixed cycle count at step i costs this
  /// fraction of the energy of running it at max frequency/voltage.
  [[nodiscard]] double energy_per_cycle_ratio(std::size_t step) const;

 private:
  void validate() const;

  std::vector<FrequencyStep> steps_;
  MilliWatts active_power_at_max_;
  Seconds switch_latency_;
};

}  // namespace dvs::hw
