#include "hw/smartbadge.hpp"

#include <algorithm>

namespace dvs::hw {
namespace {

std::array<Component, kNumBadgeComponents> build_components() {
  const auto specs = smartbadge_component_specs();
  return {Component{specs[0]}, Component{specs[1]}, Component{specs[2]},
          Component{specs[3]}, Component{specs[4]}, Component{specs[5]}};
}

}  // namespace

SmartBadge::SmartBadge() : SmartBadge(Sa1100{}) {}

SmartBadge::SmartBadge(Sa1100 cpu)
    : cpu_(std::move(cpu)),
      components_(build_components()),
      cpu_step_(cpu_.num_steps() - 1),
      cpu_idle_power_at_max_(smartbadge_spec(BadgeComponentId::Cpu).idle_power) {
  // The CPU component's active power must always reflect the current step;
  // for the stock SA-1100 the Table 1 value already corresponds to the top
  // step, but custom parts (cpu_catalog) need the re-point.
  component(BadgeComponentId::Cpu).set_active_power(cpu_.active_power_at(cpu_step_),
                                                    Seconds{0.0});
}

MilliWatts SmartBadge::cpu_idle_power_at(std::size_t step) const {
  // Idle mode keeps the clock running: power scales as V^2 * f like the
  // active mode, relative to the Table 1 value measured at the top step.
  const double ratio = cpu_.energy_per_cycle_ratio(step) *
                       (cpu_.frequency_at(step) / cpu_.max_frequency());
  return cpu_idle_power_at_max_ * ratio;
}

Component& SmartBadge::component(BadgeComponentId id) {
  return components_[static_cast<std::size_t>(id)];
}

const Component& SmartBadge::component(BadgeComponentId id) const {
  return components_[static_cast<std::size_t>(id)];
}

Seconds SmartBadge::set_state(BadgeComponentId id, PowerState s, Seconds now) {
  return component(id).set_state(s, now);
}

Seconds SmartBadge::set_all(PowerState s, Seconds now) {
  Seconds worst{0.0};
  for (auto& c : components_) {
    worst = std::max(worst, c.set_state(s, now));
  }
  return worst;
}

void SmartBadge::finish_wakeups(Seconds now) {
  for (auto& c : components_) {
    if (c.transitioning() && c.wakeup_complete_at() <= now) {
      c.finish_wakeup(now);
    }
  }
}

Seconds SmartBadge::latest_wakeup_completion(Seconds now) const {
  Seconds latest = now;
  for (const auto& c : components_) {
    if (c.transitioning()) latest = std::max(latest, c.wakeup_complete_at());
  }
  return latest;
}

Seconds SmartBadge::set_cpu_step(std::size_t step, Seconds now) {
  DVS_CHECK_MSG(step < cpu_.num_steps(), "SmartBadge: cpu step out of range");
  if (step == cpu_step_) return Seconds{0.0};
  cpu_step_ = step;
  component(BadgeComponentId::Cpu).set_active_power(cpu_.active_power_at(step), now);
  component(BadgeComponentId::Cpu).set_idle_power(cpu_idle_power_at(step), now);
  ++cpu_switches_;
  return cpu_.frequency_switch_latency();
}

MilliWatts SmartBadge::total_power() const {
  MilliWatts total{0.0};
  for (const auto& c : components_) total += c.current_power();
  return total;
}

Joules SmartBadge::total_energy(Seconds now) {
  Joules total{0.0};
  for (auto& c : components_) total += c.energy_consumed(now);
  return total;
}

}  // namespace dvs::hw
