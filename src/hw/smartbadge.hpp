// The SmartBadge device: six components (Table 1) plus the SA-1100
// frequency/voltage subsystem, with whole-device energy accounting.
//
// The badge exposes exactly the control surface the paper's power manager
// has: per-component power-state commands (DPM) and the CPU frequency step
// (DVS).  Changing the frequency step re-points the CPU component's active
// power to the new (f, V) operating point and pays the ~150 us PLL retune
// latency.
#pragma once

#include <array>
#include <cstddef>

#include "hw/component.hpp"
#include "hw/sa1100.hpp"
#include "hw/smartbadge_data.hpp"

namespace dvs::hw {

class SmartBadge {
 public:
  /// Builds the Table 1 badge with the CPU parked at the top frequency step
  /// and all components idle.
  SmartBadge();

  /// Same badge around a custom DVS-capable processor (see
  /// hw/cpu_catalog.hpp); the CPU component's Table 1 active power is
  /// re-pointed to the custom part's top-step power.
  explicit SmartBadge(Sa1100 cpu);

  // ---- components ----------------------------------------------------------

  [[nodiscard]] Component& component(BadgeComponentId id);
  [[nodiscard]] const Component& component(BadgeComponentId id) const;
  [[nodiscard]] std::size_t num_components() const { return components_.size(); }

  /// Commands one component into a state (see Component::set_state for the
  /// wakeup-latency contract).  Changing the CPU component into Active keeps
  /// its power consistent with the current frequency step.
  Seconds set_state(BadgeComponentId id, PowerState s, Seconds now);

  /// Commands every component into `s`; returns the worst wakeup latency.
  Seconds set_all(PowerState s, Seconds now);

  /// Completes any pending wakeups whose deadline has passed.
  void finish_wakeups(Seconds now);

  /// Longest pending wakeup completion time (now if none pending).
  [[nodiscard]] Seconds latest_wakeup_completion(Seconds now) const;

  // ---- DVS ------------------------------------------------------------------

  [[nodiscard]] const Sa1100& cpu() const { return cpu_; }
  [[nodiscard]] std::size_t cpu_step() const { return cpu_step_; }
  [[nodiscard]] MegaHertz cpu_frequency() const { return cpu_.frequency_at(cpu_step_); }
  [[nodiscard]] Volts cpu_voltage() const { return cpu_.voltage_at(cpu_step_); }

  /// Selects a frequency/voltage step.  Returns the switch latency paid
  /// (zero when the step is unchanged).  Number of switches is tracked for
  /// overhead accounting.  Both the active and the idle power of the CPU
  /// component follow the step (the SA-1100's idle mode keeps the clock
  /// running, so idle power scales with V^2 f too).
  Seconds set_cpu_step(std::size_t step, Seconds now);

  /// CPU idle-mode power at a given step.
  [[nodiscard]] MilliWatts cpu_idle_power_at(std::size_t step) const;

  [[nodiscard]] int cpu_switch_count() const { return cpu_switches_; }

  // ---- accounting -------------------------------------------------------------

  /// Instantaneous whole-badge power.
  [[nodiscard]] MilliWatts total_power() const;

  /// Whole-badge energy consumed since construction, accrued to `now`.
  Joules total_energy(Seconds now);

 private:
  Sa1100 cpu_;
  std::array<Component, kNumBadgeComponents> components_;
  std::size_t cpu_step_;
  MilliWatts cpu_idle_power_at_max_;
  int cpu_switches_ = 0;
};

}  // namespace dvs::hw
