#include "hw/smartbadge_data.hpp"

#include <array>

namespace dvs::hw {
namespace {

const std::array<ComponentSpec, kNumBadgeComponents>& specs() {
  static const std::array<ComponentSpec, kNumBadgeComponents> table = {{
      // name        active            idle              standby            off              t_sby              t_off
      {"Display", milliwatts(1000.0), milliwatts(300.0), milliwatts(30.0), milliwatts(0.0), milliseconds(100.0), milliseconds(240.0)},
      {"WLAN RF", milliwatts(1500.0), milliwatts(180.0), milliwatts(30.0), milliwatts(0.0), milliseconds(40.0), milliseconds(400.0)},
      {"SA-1100", milliwatts(400.0), milliwatts(170.0), milliwatts(0.1), milliwatts(0.0), milliseconds(10.0), milliseconds(35.0)},
      {"FLASH", milliwatts(75.0), milliwatts(5.0), milliwatts(0.023), milliwatts(0.0), milliseconds(0.6), milliseconds(160.0)},
      {"SRAM", milliwatts(115.0), milliwatts(17.0), milliwatts(0.13), milliwatts(0.0), milliseconds(5.0), milliseconds(100.0)},
      {"DRAM", milliwatts(400.0), milliwatts(10.0), milliwatts(4.0), milliwatts(0.0), milliseconds(4.0), milliseconds(90.0)},
  }};
  return table;
}

}  // namespace

std::span<const ComponentSpec> smartbadge_component_specs() { return specs(); }

const ComponentSpec& smartbadge_spec(BadgeComponentId id) {
  return specs()[static_cast<std::size_t>(id)];
}

MilliWatts smartbadge_total_power(PowerState s) {
  MilliWatts total{0.0};
  for (const auto& spec : specs()) {
    switch (s) {
      case PowerState::Active: total += spec.active_power; break;
      case PowerState::Idle: total += spec.idle_power; break;
      case PowerState::Standby: total += spec.standby_power; break;
      case PowerState::Off: total += spec.off_power; break;
    }
  }
  return total;
}

}  // namespace dvs::hw
