// Table 1 of the paper: SmartBadge components, per-state power and wakeup
// transition times.
//
// The scanned source text of the paper corrupts the numeric cells of
// Table 1, so the values below are reconstructed from the authors'
// companion publications on the same hardware (Simunic, Benini, De Micheli,
// ISLPED 2000 "Efficient Design of Portable Wireless Devices" and
// MobiCom 2000 "Dynamic Power Management for Portable Systems") and from
// component datasheets of the era.  The relative magnitudes — display and
// WLAN dominate when active, the SA-1100 is ~400 mW active, memories are
// cheap to keep up but expensive to wake — are what drive every policy
// decision, and the ~3.5 W whole-badge active total matches the published
// system.  Idle values model the hardware's automatic low-power behaviour
// when a component is not being accessed: the WLAN in 802.11 power-save
// doze between frame deliveries, the display holding a static frame with
// the backlight dimmed.
#pragma once

#include <span>

#include "hw/component.hpp"

namespace dvs::hw {

/// Identifiers for the six SmartBadge components, in Table 1 order.
enum class BadgeComponentId { Display, WlanRf, Cpu, Flash, Sram, Dram };

inline constexpr std::size_t kNumBadgeComponents = 6;

/// Table 1 rows (reconstructed; see file comment).
std::span<const ComponentSpec> smartbadge_component_specs();

/// Spec for one component.
const ComponentSpec& smartbadge_spec(BadgeComponentId id);

/// Whole-badge power with every component resident in state `s`
/// (the "Total" row of Table 1).
MilliWatts smartbadge_total_power(PowerState s);

}  // namespace dvs::hw
