#include "obs/attribution.hpp"

#include <cstdio>

namespace dvs::obs {

const char* to_string(Cause cause) {
  switch (cause) {
    case Cause::Nominal: return "nominal";
    case Cause::DetectorChange: return "detector-change";
    case Cause::WatchdogEscalate: return "watchdog-escalate";
    case Cause::WatchdogRecover: return "watchdog-recover";
    case Cause::DpmSleep: return "dpm-sleep";
    case Cause::DpmWakeup: return "dpm-wakeup";
    case Cause::Fault: return "fault";
  }
  return "unknown";
}

void AttributionLedger::charge_energy(const std::string& component,
                                      const std::string& state,
                                      double energy_j, double dt_s) {
  EnergyCell& cell = energy_[EnergyKey{component, state, freq_step_,
                                       static_cast<std::uint8_t>(cause_)}];
  cell.energy_j += energy_j;
  cell.time_s += dt_s;
  total_energy_ += energy_j;
}

void AttributionLedger::charge_delay(const std::string& media, double delay_s) {
  DelayCell& cell = delay_[DelayKey{media, freq_step_,
                                    static_cast<std::uint8_t>(cause_)}];
  cell.delay_s += delay_s;
  ++cell.frames;
  total_delay_ += delay_s;
  ++total_frames_;
}

std::vector<EnergyEntry> AttributionLedger::energy_entries() const {
  std::vector<EnergyEntry> out;
  out.reserve(energy_.size());
  for (const auto& [key, cell] : energy_) {
    out.push_back(EnergyEntry{key.component, key.state, key.freq_step,
                              static_cast<Cause>(key.cause), cell.energy_j,
                              cell.time_s});
  }
  return out;
}

std::vector<DelayEntry> AttributionLedger::delay_entries() const {
  std::vector<DelayEntry> out;
  out.reserve(delay_.size());
  for (const auto& [key, cell] : delay_) {
    out.push_back(DelayEntry{key.media, key.freq_step,
                             static_cast<Cause>(key.cause), cell.delay_s,
                             cell.frames});
  }
  return out;
}

std::vector<double> AttributionLedger::energy_by_cause() const {
  std::vector<double> by_cause(kNumCauses, 0.0);
  for (const auto& [key, cell] : energy_) by_cause[key.cause] += cell.energy_j;
  return by_cause;
}

namespace {

// Full round-trip precision: the JSON is the reconciliation surface, so the
// serialized sums must re-parse to the exact doubles the run produced.
std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

}  // namespace

void AttributionLedger::write_json(std::ostream& os) const {
  os << "{\n  \"schema\": \"dvs-ledger-v1\",\n";
  os << "  \"totals\": {\"energy_j\": " << fmt(total_energy_)
     << ", \"delay_s\": " << fmt(total_delay_)
     << ", \"frames\": " << total_frames_ << "},\n";
  if (!freq_mhz_.empty()) {
    os << "  \"freq_mhz\": [";
    for (std::size_t i = 0; i < freq_mhz_.size(); ++i) {
      os << (i ? ", " : "") << fmt(freq_mhz_[i]);
    }
    os << "],\n";
  }
  os << "  \"energy\": [\n";
  std::size_t i = 0;
  for (const auto& [key, cell] : energy_) {
    os << "    {\"component\": \"" << key.component << "\", \"state\": \""
       << key.state << "\", \"freq_step\": " << key.freq_step
       << ", \"cause\": \"" << to_string(static_cast<Cause>(key.cause))
       << "\", \"energy_j\": " << fmt(cell.energy_j)
       << ", \"time_s\": " << fmt(cell.time_s) << "}"
       << (++i < energy_.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"delay\": [\n";
  i = 0;
  for (const auto& [key, cell] : delay_) {
    os << "    {\"media\": \"" << key.media
       << "\", \"freq_step\": " << key.freq_step << ", \"cause\": \""
       << to_string(static_cast<Cause>(key.cause))
       << "\", \"delay_s\": " << fmt(cell.delay_s)
       << ", \"frames\": " << cell.frames << "}"
       << (++i < delay_.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

}  // namespace dvs::obs
