// AttributionLedger: charges every Joule and every second of frame delay
// to a (component, power state, frequency step, cause) key.
//
// The existing Metrics struct reports energy and delay as opaque totals;
// the ledger decomposes them by *why* the system was in the state that
// consumed them.  "Cause" is the most recent policy decision class when the
// interval elapsed: a detector change-point, a watchdog escalation or
// recovery, a DPM sleep/wakeup transition, an injected fault — or Nominal
// when no decision has intervened since the run (or the last media switch)
// started.
//
// Feeding happens at the hardware layer's energy-accrual points (see
// hw::Component::set_accrual_observer): the ledger receives the *identical*
// double-precision energy deltas that the Metrics totals are built from, so
// per-key sums reconcile with Metrics::total_energy to ~1e-15 relative —
// the 1e-9 contract in the reconciliation test has three orders of margin.
// Delay is charged once per decoded frame at the decode-done boundary with
// the same value the frame-delay RunningStats receives.
//
// The ledger is plain single-run state (no locks); in a parallel sweep each
// point attaches its own instance (SweepOptions::configure_run).
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace dvs::obs {

/// The policy-decision class an interval of time (and its energy/delay) is
/// charged to.  Updated by hooks in the governor, power manager, and fault
/// injector; every interval belongs to the most recent decision.
enum class Cause : std::uint8_t {
  Nominal = 0,       ///< no policy decision since the run/item started
  DetectorChange,    ///< a detector declared a workload change-point
  WatchdogEscalate,  ///< the watchdog clamped the governor to the top step
  WatchdogRecover,   ///< the watchdog handed control back to the policy
  DpmSleep,          ///< the DPM commanded a sleep transition
  DpmWakeup,         ///< a request woke the badge from a sleep state
  Fault,             ///< an injected hardware fault fired
};
constexpr std::size_t kNumCauses = 7;

/// Stable kebab-case name ("nominal", "detector-change", ...).
const char* to_string(Cause cause);

/// One row of the energy ledger.
struct EnergyEntry {
  std::string component;
  std::string state;  ///< "active"/"idle"/"standby"/"off"/"wake"
  std::size_t freq_step = 0;
  Cause cause = Cause::Nominal;
  double energy_j = 0.0;
  double time_s = 0.0;
};

/// One row of the delay ledger.
struct DelayEntry {
  std::string media;
  std::size_t freq_step = 0;
  Cause cause = Cause::Nominal;
  double delay_s = 0.0;
  std::uint64_t frames = 0;
};

class AttributionLedger {
 public:
  // ---- feeding (engine-internal) -----------------------------------------
  /// The cause every subsequent charge is attributed to.
  void set_cause(Cause cause) { cause_ = cause; }
  [[nodiscard]] Cause cause() const { return cause_; }

  /// The CPU frequency-step regime; callers update it *after* a commit so
  /// the interval accrued inside the commit still charges the old step.
  void set_freq_step(std::size_t step) { freq_step_ = step; }
  [[nodiscard]] std::size_t freq_step() const { return freq_step_; }

  /// Optional: the CPU's step -> MHz table, echoed into the JSON so reports
  /// can label steps with physical frequencies.
  void set_freq_table(std::vector<double> mhz) { freq_mhz_ = std::move(mhz); }

  /// Charges `energy_j` consumed over `dt_s` while `component` sat in
  /// `state` ("wake" for a wakeup transition) under the current cause/step.
  void charge_energy(const std::string& component, const std::string& state,
                     double energy_j, double dt_s);

  /// Charges one decoded frame's total delay under the current cause/step.
  void charge_delay(const std::string& media, double delay_s);

  // ---- reading ------------------------------------------------------------
  [[nodiscard]] double total_energy_j() const { return total_energy_; }
  [[nodiscard]] double total_delay_s() const { return total_delay_; }
  [[nodiscard]] std::uint64_t total_frames() const { return total_frames_; }

  /// Rows in deterministic (map) key order.
  [[nodiscard]] std::vector<EnergyEntry> energy_entries() const;
  [[nodiscard]] std::vector<DelayEntry> delay_entries() const;

  /// Energy rollup by cause alone (index = static_cast<size_t>(Cause)).
  [[nodiscard]] std::vector<double> energy_by_cause() const;

  [[nodiscard]] bool empty() const {
    return energy_.empty() && delay_.empty();
  }

  /// {"schema":"dvs-ledger-v1","totals":{...},"energy":[...],"delay":[...]}
  void write_json(std::ostream& os) const;

 private:
  struct EnergyKey {
    std::string component;
    std::string state;
    std::size_t freq_step;
    std::uint8_t cause;
    bool operator<(const EnergyKey& o) const {
      if (component != o.component) return component < o.component;
      if (state != o.state) return state < o.state;
      if (freq_step != o.freq_step) return freq_step < o.freq_step;
      return cause < o.cause;
    }
  };
  struct EnergyCell {
    double energy_j = 0.0;
    double time_s = 0.0;
  };
  struct DelayKey {
    std::string media;
    std::size_t freq_step;
    std::uint8_t cause;
    bool operator<(const DelayKey& o) const {
      if (media != o.media) return media < o.media;
      if (freq_step != o.freq_step) return freq_step < o.freq_step;
      return cause < o.cause;
    }
  };
  struct DelayCell {
    double delay_s = 0.0;
    std::uint64_t frames = 0;
  };

  Cause cause_ = Cause::Nominal;
  std::size_t freq_step_ = 0;
  std::vector<double> freq_mhz_;
  std::map<EnergyKey, EnergyCell> energy_;
  std::map<DelayKey, DelayCell> delay_;
  double total_energy_ = 0.0;
  double total_delay_ = 0.0;
  std::uint64_t total_frames_ = 0;
};

}  // namespace dvs::obs
