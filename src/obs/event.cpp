#include "obs/event.hpp"

namespace dvs::obs {

namespace {

struct TypeNameVisitor {
  std::string_view operator()(const FrameArrival&) const { return "frame_arrival"; }
  std::string_view operator()(const FrameDrop&) const { return "frame_drop"; }
  std::string_view operator()(const DecodeStart&) const { return "decode_start"; }
  std::string_view operator()(const DecodeDone&) const { return "decode_done"; }
  std::string_view operator()(const DetectorSample&) const { return "detector_sample"; }
  std::string_view operator()(const DetectorDecision&) const {
    return "detector_decision";
  }
  std::string_view operator()(const FreqCommit&) const { return "freq_commit"; }
  std::string_view operator()(const DpmIdleEnter&) const { return "dpm_idle_enter"; }
  std::string_view operator()(const DpmSleepCommand&) const { return "dpm_sleep"; }
  std::string_view operator()(const DpmWakeup&) const { return "dpm_wakeup"; }
  std::string_view operator()(const ComponentState&) const {
    return "component_state";
  }
  std::string_view operator()(const FaultInjected&) const { return "fault_injected"; }
  std::string_view operator()(const WatchdogEscalate&) const {
    return "watchdog_escalate";
  }
  std::string_view operator()(const WatchdogRecover&) const {
    return "watchdog_recover";
  }
};

}  // namespace

std::string_view type_name(const Payload& payload) {
  return std::visit(TypeNameVisitor{}, payload);
}

}  // namespace dvs::obs
