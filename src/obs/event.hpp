// Structured trace events for the observability layer.
//
// Every decision the engine makes — frame lifecycle, detector verdicts,
// governor (f, V) commits, DPM transitions, component power-state changes —
// is describable as one of these typed payloads stamped with the simulation
// time.  Sinks (obs/sinks.hpp) consume events synchronously at record time,
// so the string_view fields only need to outlive the record() call.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <variant>

namespace dvs::obs {

/// A frame was received from the WLAN and pushed into the frame buffer.
struct FrameArrival {
  std::uint64_t frame_id = 0;
  std::string_view media;     ///< "mp3" / "mpeg"
  std::size_t queue_len = 0;  ///< buffer occupancy after the push
};

/// A frame was rejected by a bounded frame buffer (tail drop).
struct FrameDrop {
  std::uint64_t frame_id = 0;
  std::string_view media;
};

/// The decoder picked up a frame.
struct DecodeStart {
  std::uint64_t frame_id = 0;
  std::string_view media;
  double freq_mhz = 0.0;          ///< CPU frequency the decode runs at
  double switch_latency_s = 0.0;  ///< PLL retune paid at this boundary
};

/// A decode finished and the frame departed.
struct DecodeDone {
  std::uint64_t frame_id = 0;
  std::string_view media;
  double decode_s = 0.0;      ///< pure decode duration
  double delay_s = 0.0;       ///< total (queue + decode) frame delay
  std::size_t queue_len = 0;  ///< buffer occupancy after the departure
};

/// A detector consumed one interval sample.
struct DetectorSample {
  std::string_view stream;    ///< "arrival" or "service"
  std::string_view detector;  ///< detector name, e.g. "change-point"
  double interval_s = 0.0;    ///< the raw interval fed in
  double rate_hz = 0.0;       ///< estimate after the sample
};

/// A change-point detector evaluated its likelihood test.
struct DetectorDecision {
  std::string_view stream;  ///< "arrival" or "service"
  double ln_p_max = 0.0;    ///< best log-likelihood-ratio statistic
  double threshold = 0.0;   ///< level it had to clear (incl. scan margin)
  bool detected = false;    ///< verdict
  double rate_hz = 0.0;     ///< estimate after the check
};

/// The governor committed a frequency/voltage step to the hardware.
struct FreqCommit {
  std::size_t step = 0;
  double freq_mhz = 0.0;
  double voltage_v = 0.0;
  double switch_latency_s = 0.0;
};

/// The DPM took ownership of an idle period.
struct DpmIdleEnter {
  double hint_s = -1.0;  ///< oracle idle-length hint; < 0 = none
};

/// The DPM commanded the badge into a sleep state.
struct DpmSleepCommand {
  std::string_view state;  ///< "standby" or "off"
};

/// A request ended a sleep; the badge is waking up.
struct DpmWakeup {
  std::string_view from_state;
  double latency_s = 0.0;      ///< wakeup delay paid
  double idle_length_s = 0.0;  ///< length of the idle period that just ended
};

/// One hardware component changed power state.
struct ComponentState {
  std::string_view component;
  std::string_view from;
  std::string_view to;
  double power_mw = 0.0;  ///< power drawn in (or while transitioning to) `to`
};

/// A hardware fault fired (fault-injection runs only).
struct FaultInjected {
  std::string_view kind;   ///< "wakeup_fail", "wakeup_delay", "freq_fail", "rail_stuck"
  double magnitude = 0.0;  ///< fault-specific size (extra delay s, blocked step, ...)
};

/// The governor's watchdog declared sustained overload and escalated.
struct WatchdogEscalate {
  double delay_s = 0.0;     ///< frame delay that tripped the threshold
  double queue_len = 0.0;   ///< buffered frames at escalation time
  double backoff_s = 0.0;   ///< backoff until the next allowed escalation
};

/// The watchdog observed a sustained return to target and left degraded mode.
struct WatchdogRecover {
  double time_degraded_s = 0.0;  ///< length of the degraded episode that ended
};

using Payload = std::variant<FrameArrival, FrameDrop, DecodeStart, DecodeDone,
                             DetectorSample, DetectorDecision, FreqCommit,
                             DpmIdleEnter, DpmSleepCommand, DpmWakeup,
                             ComponentState, FaultInjected, WatchdogEscalate,
                             WatchdogRecover>;

struct Event {
  double ts = 0.0;  ///< simulation time, seconds
  Payload payload;
};

/// Stable snake_case name of the payload type ("frame_arrival", ...).
std::string_view type_name(const Payload& payload);

}  // namespace dvs::obs
