#include "obs/flight_recorder.hpp"

#include <cstdio>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace dvs::obs {

namespace {

constexpr std::string_view kTypeNames[] = {
    "decode_done",  "frame_drop",        "freq_commit",
    "dpm_idle",     "dpm_sleep",         "dpm_wakeup",
    "component",    "watchdog_escalate", "watchdog_recover",
    "fault",        "trigger",
};
constexpr std::size_t kNumTypes = sizeof kTypeNames / sizeof kTypeNames[0];

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

std::string_view to_string(FlightEventType type) {
  const auto i = static_cast<std::size_t>(type);
  return i < kNumTypes ? kTypeNames[i] : std::string_view{"?"};
}

bool flight_type_from_string(std::string_view name, FlightEventType& out) {
  for (std::size_t i = 0; i < kNumTypes; ++i) {
    if (kTypeNames[i] == name) {
      out = static_cast<FlightEventType>(i);
      return true;
    }
  }
  return false;
}

FlightRecorder::FlightRecorder(std::size_t capacity)
    : ring_(round_up_pow2(capacity == 0 ? 1 : capacity)),
      mask_(ring_.size() - 1) {}

void FlightRecorder::trigger(double ts, std::string_view reason) {
  record(ts, FlightEventType::Trigger,
         static_cast<std::uint16_t>(triggers_ < 0xffff ? triggers_ : 0xffff),
         0.0F, 0.0F);
  ++triggers_;
  if (first_reason_.empty()) first_reason_ = std::string(reason);
  if (!dumped_ && !auto_dump_path_.empty()) {
    dump_to_file(auto_dump_path_, reason);
  }
}

std::vector<FlightRecord> FlightRecorder::snapshot() const {
  std::vector<FlightRecord> out;
  const std::uint64_t n = head_ < ring_.size() ? head_ : ring_.size();
  out.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = head_ - n; i < head_; ++i) {
    out.push_back(ring_[static_cast<std::size_t>(i) & mask_]);
  }
  return out;
}

void FlightRecorder::dump(std::ostream& os, std::string_view reason) const {
  os << "# dvs-flight-recorder-v1\n";
  os << "# reason: " << reason << "\n";
  os << "# recorded: " << head_ << "\n";
  os << "# capacity: " << ring_.size() << "\n";
  char line[160];
  for (const FlightRecord& r : snapshot()) {
    std::snprintf(line, sizeof line, "%.9f\t%s\t%u\t%.9g\t%.9g\n", r.ts,
                  std::string(to_string(static_cast<FlightEventType>(r.type)))
                      .c_str(),
                  static_cast<unsigned>(r.code), static_cast<double>(r.a),
                  static_cast<double>(r.b));
    os << line;
  }
}

bool FlightRecorder::dump_to_file(const std::string& path,
                                  std::string_view reason) {
  std::ofstream os{path};
  if (!os) return false;
  dump(os, reason);
  dumped_ = true;
  return true;
}

FlightDump parse_flight_dump(std::istream& is) {
  FlightDump out;
  std::string line;
  if (!std::getline(is, line) || line != "# dvs-flight-recorder-v1") {
    throw std::runtime_error("flight dump: missing dvs-flight-recorder-v1 header");
  }
  const auto header_value = [&](const std::string& l) {
    const std::size_t colon = l.find(": ");
    return colon == std::string::npos ? std::string{} : l.substr(colon + 2);
  };
  std::size_t lineno = 1;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty()) continue;
    if (line[0] == '#') {
      if (line.rfind("# reason:", 0) == 0) out.reason = header_value(line);
      if (line.rfind("# recorded:", 0) == 0) {
        out.recorded = std::stoull(header_value(line));
      }
      if (line.rfind("# capacity:", 0) == 0) {
        out.capacity = std::stoull(header_value(line));
      }
      continue;
    }
    std::istringstream cells{line};
    std::string ts_s;
    std::string type_s;
    std::string code_s;
    std::string a_s;
    std::string b_s;
    if (!std::getline(cells, ts_s, '\t') || !std::getline(cells, type_s, '\t') ||
        !std::getline(cells, code_s, '\t') || !std::getline(cells, a_s, '\t') ||
        !std::getline(cells, b_s)) {
      throw std::runtime_error("flight dump: malformed record at line " +
                               std::to_string(lineno));
    }
    FlightEventType type{};
    if (!flight_type_from_string(type_s, type)) {
      throw std::runtime_error("flight dump: unknown event type '" + type_s +
                               "' at line " + std::to_string(lineno));
    }
    FlightRecord r;
    try {
      r.ts = std::stod(ts_s);
      r.code = static_cast<std::uint16_t>(std::stoul(code_s));
      r.a = std::stof(a_s);
      r.b = std::stof(b_s);
    } catch (const std::exception&) {
      throw std::runtime_error("flight dump: bad number at line " +
                               std::to_string(lineno));
    }
    r.type = static_cast<std::uint16_t>(type);
    out.records.push_back(r);
  }
  return out;
}

}  // namespace dvs::obs
