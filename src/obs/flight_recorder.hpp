// FlightRecorder: an always-on ring buffer of compact trace records.
//
// Full JSONL tracing costs string formatting per event and is opt-in; the
// flight recorder is the opposite trade — it is cheap enough to leave on in
// every run (~a 24-byte store plus an index increment per event, no
// allocation, no formatting) and only pays serialization when something
// goes wrong.  The engine triggers a dump on watchdog escalation, fault
// injection, or an exception escaping the simulation loop, so the last
// `capacity` decisions before the anomaly are always available post-mortem
// ("dvs_sim report --flight-dump <file>" renders them as a timeline).
//
// Records are fixed-size PODs; the (type, code, a, b) payload encoding per
// event type is documented in docs/OBSERVABILITY.md and decoded by
// parse_flight_dump / the report subcommand.  Dumps are a small text format
// (one record per line) rather than raw memory so they survive toolchain
// and endianness changes.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace dvs::obs {

/// Compact event vocabulary of the flight recorder — the subset of the
/// structured trace (obs/event.hpp) that matters for post-mortems.
enum class FlightEventType : std::uint16_t {
  DecodeDone = 0,     ///< code=media, a=delay_s, b=queue_len
  FrameDrop,          ///< code=media, a=frame_id
  FreqCommit,         ///< code=step, a=freq_mhz, b=switch_latency_s
  DpmIdleEnter,       ///< a=idle_hint_s (<0 = none)
  DpmSleep,           ///< code=power state entered
  DpmWakeup,          ///< code=state left, a=latency_s, b=idle_length_s
  ComponentState,     ///< code=(component_idx<<8)|state, a=power_mw
  WatchdogEscalate,   ///< a=delay_s, b=queue_len
  WatchdogRecover,    ///< a=time_degraded_s
  FaultInjected,      ///< code=fault kind, a=magnitude
  Trigger,            ///< code=trigger reason ordinal (dump marker)
};

/// Stable snake_case name ("decode_done", ...); "?" for unknown values.
std::string_view to_string(FlightEventType type);
/// Inverse of to_string; returns false when `name` is not a known type.
bool flight_type_from_string(std::string_view name, FlightEventType& out);

/// One ring slot.  16 bytes of payload + the timestamp.
struct FlightRecord {
  double ts = 0.0;
  std::uint16_t type = 0;
  std::uint16_t code = 0;
  float a = 0.0F;
  float b = 0.0F;
};

/// A parsed dump (see parse_flight_dump).
struct FlightDump {
  std::string reason;
  std::uint64_t recorded = 0;  ///< total records stored over the run
  std::size_t capacity = 0;
  std::vector<FlightRecord> records;  ///< oldest first
};

class FlightRecorder {
 public:
  /// `capacity` is rounded up to a power of two (masked indexing keeps
  /// record() branch-free); the ring is allocated once, here.
  explicit FlightRecorder(std::size_t capacity = kDefaultCapacity);

  static constexpr std::size_t kDefaultCapacity = 4096;

  /// The hot path: one slot store and an increment.
  void record(double ts, FlightEventType type, std::uint16_t code, float a,
              float b) {
    FlightRecord& r = ring_[static_cast<std::size_t>(head_) & mask_];
    r.ts = ts;
    r.type = static_cast<std::uint16_t>(type);
    r.code = code;
    r.a = a;
    r.b = b;
    ++head_;
  }

  /// Marks an anomaly: records a Trigger event and, when an auto-dump path
  /// is set, writes the dump on the *first* trigger (so the file captures
  /// the window leading into the first anomaly, not the last).
  void trigger(double ts, std::string_view reason);

  /// Dump destination armed by the engine; empty disables auto-dumping.
  void set_auto_dump(std::string path) { auto_dump_path_ = std::move(path); }
  [[nodiscard]] const std::string& auto_dump_path() const {
    return auto_dump_path_;
  }

  [[nodiscard]] std::uint64_t records_stored() const { return head_; }
  [[nodiscard]] std::size_t capacity() const { return mask_ + 1; }
  [[nodiscard]] std::uint64_t triggers() const { return triggers_; }
  [[nodiscard]] const std::string& first_trigger_reason() const {
    return first_reason_;
  }
  [[nodiscard]] bool dumped() const { return dumped_; }

  /// The ring's live contents, oldest record first.
  [[nodiscard]] std::vector<FlightRecord> snapshot() const;

  /// Serializes the ring (see docs/OBSERVABILITY.md for the format).
  void dump(std::ostream& os, std::string_view reason) const;

  /// dump() to `path`; returns false (and stays quiet) when the file cannot
  /// be opened — a post-mortem helper must not take the run down with it.
  bool dump_to_file(const std::string& path, std::string_view reason);

 private:
  std::vector<FlightRecord> ring_;
  std::size_t mask_ = 0;
  std::uint64_t head_ = 0;
  std::uint64_t triggers_ = 0;
  std::string first_reason_;
  std::string auto_dump_path_;
  bool dumped_ = false;
};

/// Parses a dump written by FlightRecorder::dump.  Throws std::runtime_error
/// on a malformed header or record line.
FlightDump parse_flight_dump(std::istream& is);

}  // namespace dvs::obs
