#include "obs/metrics_registry.hpp"

#include <cstdio>
#include <stdexcept>

namespace dvs::obs {

namespace {

std::string fmt_num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

}  // namespace

void HistogramMetric::merge(const HistogramMetric& other) {
  if (hist_.lo() != other.hist_.lo() || hist_.hi() != other.hist_.hi() ||
      hist_.bins() != other.hist_.bins()) {
    throw std::invalid_argument(
        "HistogramMetric::merge: incompatible histogram shapes");
  }
  for (std::size_t i = 0; i < other.hist_.bins(); ++i) {
    if (other.hist_.bin_count(i) > 0) {
      hist_.add(other.hist_.bin_lo(i), other.hist_.bin_count(i));
    }
  }
  // Clamped mass merges as clamped mass (bin_lo of an end bin would lie).
  if (other.hist_.underflow() > 0) {
    hist_.add(other.hist_.lo() - 1.0, other.hist_.underflow());
  }
  if (other.hist_.overflow() > 0) {
    hist_.add(other.hist_.hi(), other.hist_.overflow());
  }
  stats_.merge(other.stats_);
  sketch_.merge(other.sketch_);
}

void HistogramMetric::absorb_sketch(const QuantileSketch& s, double sum) {
  if (s.empty()) return;
  stats_.absorb(s.count(), sum, s.min(), s.max());
  sketch_.merge(s);
}

HistogramMetric& MetricsRegistry::histogram(const std::string& name, double lo,
                                            double hi, std::size_t bins) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(name, HistogramMetric{lo, hi, bins}).first;
  }
  return it->second;
}

std::uint64_t MetricsRegistry::counter_value(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

double MetricsRegistry::gauge_value(const std::string& name) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

const HistogramMetric* MetricsRegistry::find_histogram(
    const std::string& name) const {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

void MetricsRegistry::merge_from(const MetricsRegistry& other) {
  for (const auto& [name, value] : other.counters_) counters_[name] += value;
  for (const auto& [name, h] : other.histograms_) {
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
      it = histograms_
               .emplace(name, HistogramMetric{h.histogram().lo(),
                                              h.histogram().hi(),
                                              h.histogram().bins()})
               .first;
    }
    it->second.merge(h);
  }
  // Gauges deliberately skipped (see header).
}

std::vector<std::pair<std::string, double>> MetricsRegistry::clamped_histograms(
    double threshold) const {
  std::vector<std::pair<std::string, double>> out;
  for (const auto& [name, h] : histograms_) {
    if (h.count() == 0) continue;
    const double frac =
        static_cast<double>(h.clamped()) / static_cast<double>(h.count());
    if (frac > threshold) out.emplace_back(name, frac);
  }
  return out;
}

void MetricsRegistry::write_json(std::ostream& os) const {
  os << "{\n  \"schema\": \"dvs-metrics-v1\",\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters_) {
    os << (first ? "\n" : ",\n") << "    \"" << name << "\": " << value;
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges_) {
    os << (first ? "\n" : ",\n") << "    \"" << name << "\": " << fmt_num(value);
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    os << (first ? "\n" : ",\n") << "    \"" << name
       << "\": {\"count\": " << h.count();
    if (h.count() > 0) {
      os << ", \"mean\": " << fmt_num(h.stats().mean())
         << ", \"min\": " << fmt_num(h.stats().min())
         << ", \"max\": " << fmt_num(h.stats().max())
         << ", \"p50\": " << fmt_num(h.sketch().quantile(0.5))
         << ", \"p90\": " << fmt_num(h.sketch().quantile(0.9))
         << ", \"p99\": " << fmt_num(h.sketch().quantile(0.99))
         << ", \"underflow\": " << h.histogram().underflow()
         << ", \"overflow\": " << h.histogram().overflow();
    }
    os << "}";
    first = false;
  }
  os << (first ? "" : "\n  ") << "}\n}\n";
}

}  // namespace dvs::obs
