#include "obs/metrics_registry.hpp"

#include <cstdio>

namespace dvs::obs {

namespace {

std::string fmt_num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

}  // namespace

HistogramMetric& MetricsRegistry::histogram(const std::string& name, double lo,
                                            double hi, std::size_t bins) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(name, HistogramMetric{lo, hi, bins}).first;
  }
  return it->second;
}

std::uint64_t MetricsRegistry::counter_value(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

double MetricsRegistry::gauge_value(const std::string& name) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

const HistogramMetric* MetricsRegistry::find_histogram(
    const std::string& name) const {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

void MetricsRegistry::write_json(std::ostream& os) const {
  os << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters_) {
    os << (first ? "\n" : ",\n") << "    \"" << name << "\": " << value;
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges_) {
    os << (first ? "\n" : ",\n") << "    \"" << name << "\": " << fmt_num(value);
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    os << (first ? "\n" : ",\n") << "    \"" << name
       << "\": {\"count\": " << h.count();
    if (h.count() > 0) {
      os << ", \"mean\": " << fmt_num(h.stats().mean())
         << ", \"min\": " << fmt_num(h.stats().min())
         << ", \"max\": " << fmt_num(h.stats().max())
         << ", \"p50\": " << fmt_num(h.histogram().quantile(0.5))
         << ", \"p90\": " << fmt_num(h.histogram().quantile(0.9))
         << ", \"p99\": " << fmt_num(h.histogram().quantile(0.99));
    }
    os << "}";
    first = false;
  }
  os << (first ? "" : "\n  ") << "}\n}\n";
}

}  // namespace dvs::obs
