// MetricsRegistry: named counters, gauges, and histograms for one run.
//
// Counters are monotone event tallies, gauges hold the latest value of a
// measurement (or an accumulated wall-clock total), and histograms combine
// common/stats.hpp::Histogram (binned, for quantiles) with RunningStats
// (exact mean/min/max).  The registry serializes to a single JSON object —
// the payload behind `dvs_sim --metrics-json`.
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <string>

#include "common/stats.hpp"

namespace dvs::obs {

/// A histogram plus exact moments of the same sample stream.
class HistogramMetric {
 public:
  HistogramMetric(double lo, double hi, std::size_t bins) : hist_(lo, hi, bins) {}

  void add(double x) {
    hist_.add(x);
    stats_.add(x);
  }

  [[nodiscard]] const Histogram& histogram() const { return hist_; }
  [[nodiscard]] const RunningStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t count() const { return stats_.count(); }

 private:
  Histogram hist_;
  RunningStats stats_;
};

class MetricsRegistry {
 public:
  /// Get-or-create; returned references stay valid for the registry's
  /// lifetime (node-based map).
  std::uint64_t& counter(const std::string& name) { return counters_[name]; }
  double& gauge(const std::string& name) { return gauges_[name]; }
  HistogramMetric& histogram(const std::string& name, double lo, double hi,
                             std::size_t bins);

  /// Read-only lookups (0 / nullptr when absent) for tests and reports.
  [[nodiscard]] std::uint64_t counter_value(const std::string& name) const;
  [[nodiscard]] double gauge_value(const std::string& name) const;
  [[nodiscard]] const HistogramMetric* find_histogram(
      const std::string& name) const;

  [[nodiscard]] bool empty() const {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }

  /// {"counters":{...},"gauges":{...},"histograms":{name:{count,mean,min,
  /// max,p50,p90,p99}}}
  void write_json(std::ostream& os) const;

 private:
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, HistogramMetric> histograms_;
};

}  // namespace dvs::obs
