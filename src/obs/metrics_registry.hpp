// MetricsRegistry: named counters, gauges, and histograms for one run.
//
// Counters are monotone event tallies, gauges hold the latest value of a
// measurement (or an accumulated wall-clock total), and histograms combine
// common/stats.hpp::Histogram (binned, for shape/report plots) with
// RunningStats (exact mean/min/max) and a mergeable QuantileSketch
// (streaming p50/p90/p99 with no range clamping — the percentile source of
// truth since the telemetry pillar landed).  The registry serializes to a
// single JSON object — the payload behind `dvs_sim --metrics-json` — and
// to the OpenMetrics text format (obs/telemetry/openmetrics.hpp).
//
// Registries merge (merge_from): counters add, histogram metrics fold
// their bins, moments, and sketches together; gauges are skipped — a
// gauge is a point-in-time reading whose sum or last-writer value would
// both lie, and every derivable aggregate already lives in the histograms.
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "obs/telemetry/quantile_sketch.hpp"

namespace dvs::obs {

/// A histogram, exact moments, and a quantile sketch of one sample stream.
class HistogramMetric {
 public:
  HistogramMetric(double lo, double hi, std::size_t bins) : hist_(lo, hi, bins) {}

  void add(double x) {
    hist_.add(x);
    stats_.add(x);
    sketch_.add(x);
  }

  [[nodiscard]] const Histogram& histogram() const { return hist_; }
  [[nodiscard]] const RunningStats& stats() const { return stats_; }
  [[nodiscard]] const QuantileSketch& sketch() const { return sketch_; }
  [[nodiscard]] std::size_t count() const { return stats_.count(); }
  /// Samples the binned histogram clamped into its end bins (the sketch
  /// and moments always see the true values).
  [[nodiscard]] std::size_t clamped() const {
    return hist_.underflow() + hist_.overflow();
  }

  /// Folds another metric of the same shape (lo/hi/bins) into this one.
  void merge(const HistogramMetric& other);

  /// Folds in a bare sketch plus its sample sum — the form in which delay
  /// distributions come back from serialized job artifacts, which carry a
  /// dvs-sketch-v1 text and a sum but no binned histogram.  The sketch
  /// merge and count/sum/min/max stay exact; the binned histogram is left
  /// untouched (percentiles already come from the sketch).  No-op when
  /// the sketch is empty.
  void absorb_sketch(const QuantileSketch& s, double sum);

 private:
  Histogram hist_;
  RunningStats stats_;
  QuantileSketch sketch_;
};

class MetricsRegistry {
 public:
  /// Get-or-create; returned references stay valid for the registry's
  /// lifetime (node-based map).
  std::uint64_t& counter(const std::string& name) { return counters_[name]; }
  double& gauge(const std::string& name) { return gauges_[name]; }
  HistogramMetric& histogram(const std::string& name, double lo, double hi,
                             std::size_t bins);

  /// Read-only lookups (0 / nullptr when absent) for tests and reports.
  [[nodiscard]] std::uint64_t counter_value(const std::string& name) const;
  [[nodiscard]] double gauge_value(const std::string& name) const;
  [[nodiscard]] const HistogramMetric* find_histogram(
      const std::string& name) const;

  /// Ordered iteration for exporters (telemetry snapshots, OpenMetrics).
  [[nodiscard]] const std::map<std::string, std::uint64_t>& counters() const {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, double>& gauges() const {
    return gauges_;
  }
  [[nodiscard]] const std::map<std::string, HistogramMetric>& histograms()
      const {
    return histograms_;
  }

  [[nodiscard]] bool empty() const {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }

  /// Folds another registry in: counters add, histograms merge (created
  /// here with the other's shape when absent), gauges are skipped (see
  /// file header).
  void merge_from(const MetricsRegistry& other);

  /// Histograms whose binned copy clamped more than `threshold` of their
  /// samples into the end bins, as (name, clamped fraction) pairs — the
  /// basis of the CLI's "histogram range too narrow" warning.
  [[nodiscard]] std::vector<std::pair<std::string, double>> clamped_histograms(
      double threshold) const;

  /// {"counters":{...},"gauges":{...},"histograms":{name:{count,mean,min,
  /// max,p50,p90,p99,underflow,overflow}}} — percentiles come from the
  /// quantile sketch, not the binned histogram.
  void write_json(std::ostream& os) const;

 private:
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, HistogramMetric> histograms_;
};

}  // namespace dvs::obs
