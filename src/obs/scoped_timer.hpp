// ScopedTimer: wall-clock self-profiling of the simulator.
//
// Accumulates the scope's elapsed wall time (seconds) into a named gauge,
// so repeated scopes sum — e.g. "wall.engine_run_s" across a whole run.
// This measures the *simulator's* speed, not simulated time; the engine
// derives events-per-second from it.
#pragma once

#include <chrono>
#include <string>
#include <utility>

#include "obs/metrics_registry.hpp"

namespace dvs::obs {

class ScopedTimer {
 public:
  /// `registry` may be null — the timer is then a no-op.
  ScopedTimer(MetricsRegistry* registry, std::string gauge_name)
      : registry_(registry),
        name_(std::move(gauge_name)),
        start_(std::chrono::steady_clock::now()) {}

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() {
    if (registry_ == nullptr) return;
    registry_->gauge(name_) += elapsed_seconds();
  }

  [[nodiscard]] double elapsed_seconds() const {
    const auto dt = std::chrono::steady_clock::now() - start_;
    return std::chrono::duration<double>(dt).count();
  }

 private:
  MetricsRegistry* registry_;
  std::string name_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace dvs::obs
