#include "obs/sinks.hpp"

#include <cstdio>
#include <stdexcept>

namespace dvs::obs {

namespace {

// Fixed Chrome-trace lanes; per-component lanes are assigned from 16 up.
constexpr int kFramesLane = 0;
constexpr int kDecoderLane = 1;
constexpr int kGovernorLane = 2;
constexpr int kDetectorLane = 3;
constexpr int kDpmLane = 4;

std::string fmt_num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Builds the {"k":v,...} field list of one JSONL line.
class JsonFields {
 public:
  JsonFields& num(std::string_view key, double v) {
    return raw(key, fmt_num(v));
  }
  JsonFields& num(std::string_view key, std::uint64_t v) {
    return raw(key, std::to_string(v));
  }
  JsonFields& boolean(std::string_view key, bool v) {
    return raw(key, v ? "true" : "false");
  }
  JsonFields& str(std::string_view key, std::string_view v) {
    return raw(key, "\"" + json_escape(v) + "\"");
  }
  [[nodiscard]] const std::string& body() const { return body_; }

 private:
  JsonFields& raw(std::string_view key, const std::string& value) {
    body_ += ",\"";
    body_ += key;
    body_ += "\":";
    body_ += value;
    return *this;
  }
  std::string body_;
};

struct JsonlVisitor {
  JsonFields& f;
  void operator()(const FrameArrival& p) const {
    f.num("frame", p.frame_id).str("media", p.media).num("queue", p.queue_len);
  }
  void operator()(const FrameDrop& p) const {
    f.num("frame", p.frame_id).str("media", p.media);
  }
  void operator()(const DecodeStart& p) const {
    f.num("frame", p.frame_id)
        .str("media", p.media)
        .num("freq_mhz", p.freq_mhz)
        .num("switch_latency_s", p.switch_latency_s);
  }
  void operator()(const DecodeDone& p) const {
    f.num("frame", p.frame_id)
        .str("media", p.media)
        .num("decode_s", p.decode_s)
        .num("delay_s", p.delay_s)
        .num("queue", p.queue_len);
  }
  void operator()(const DetectorSample& p) const {
    f.str("stream", p.stream)
        .str("detector", p.detector)
        .num("interval_s", p.interval_s)
        .num("rate_hz", p.rate_hz);
  }
  void operator()(const DetectorDecision& p) const {
    f.str("stream", p.stream)
        .num("ln_p_max", p.ln_p_max)
        .num("threshold", p.threshold)
        .boolean("detected", p.detected)
        .num("rate_hz", p.rate_hz);
  }
  void operator()(const FreqCommit& p) const {
    f.num("step", p.step)
        .num("freq_mhz", p.freq_mhz)
        .num("voltage_v", p.voltage_v)
        .num("switch_latency_s", p.switch_latency_s);
  }
  void operator()(const DpmIdleEnter& p) const {
    if (p.hint_s >= 0.0) f.num("hint_s", p.hint_s);
  }
  void operator()(const DpmSleepCommand& p) const { f.str("state", p.state); }
  void operator()(const DpmWakeup& p) const {
    f.str("from", p.from_state)
        .num("latency_s", p.latency_s)
        .num("idle_s", p.idle_length_s);
  }
  void operator()(const ComponentState& p) const {
    f.str("component", p.component)
        .str("from", p.from)
        .str("to", p.to)
        .num("power_mw", p.power_mw);
  }
  void operator()(const FaultInjected& p) const {
    f.str("kind", p.kind).num("magnitude", p.magnitude);
  }
  void operator()(const WatchdogEscalate& p) const {
    f.num("delay_s", p.delay_s)
        .num("queue", p.queue_len)
        .num("backoff_s", p.backoff_s);
  }
  void operator()(const WatchdogRecover& p) const {
    f.num("degraded_s", p.time_degraded_s);
  }
};

/// Generic (label, id, a, b, c) projection for the CSV timeline.
struct CsvRow {
  std::string label;
  std::uint64_t id = 0;
  double a = 0.0, b = 0.0, c = 0.0;
};

struct CsvVisitor {
  CsvRow operator()(const FrameArrival& p) const {
    return {std::string(p.media), p.frame_id,
            static_cast<double>(p.queue_len), 0.0, 0.0};
  }
  CsvRow operator()(const FrameDrop& p) const {
    return {std::string(p.media), p.frame_id, 0.0, 0.0, 0.0};
  }
  CsvRow operator()(const DecodeStart& p) const {
    return {std::string(p.media), p.frame_id, p.freq_mhz, p.switch_latency_s, 0.0};
  }
  CsvRow operator()(const DecodeDone& p) const {
    return {std::string(p.media), p.frame_id, p.decode_s, p.delay_s,
            static_cast<double>(p.queue_len)};
  }
  CsvRow operator()(const DetectorSample& p) const {
    return {std::string(p.stream), 0, p.interval_s, p.rate_hz, 0.0};
  }
  CsvRow operator()(const DetectorDecision& p) const {
    return {std::string(p.stream), p.detected ? 1u : 0u, p.ln_p_max, p.threshold,
            p.rate_hz};
  }
  CsvRow operator()(const FreqCommit& p) const {
    return {"cpu", p.step, p.freq_mhz, p.voltage_v, p.switch_latency_s};
  }
  CsvRow operator()(const DpmIdleEnter& p) const {
    return {"dpm", 0, p.hint_s, 0.0, 0.0};
  }
  CsvRow operator()(const DpmSleepCommand& p) const {
    return {std::string(p.state), 0, 0.0, 0.0, 0.0};
  }
  CsvRow operator()(const DpmWakeup& p) const {
    return {std::string(p.from_state), 0, p.latency_s, p.idle_length_s, 0.0};
  }
  CsvRow operator()(const ComponentState& p) const {
    return {std::string(p.component) + ":" + std::string(p.to), 0, p.power_mw,
            0.0, 0.0};
  }
  CsvRow operator()(const FaultInjected& p) const {
    return {std::string(p.kind), 0, p.magnitude, 0.0, 0.0};
  }
  CsvRow operator()(const WatchdogEscalate& p) const {
    return {"watchdog", 0, p.delay_s, p.queue_len, p.backoff_s};
  }
  CsvRow operator()(const WatchdogRecover& p) const {
    return {"watchdog", 0, p.time_degraded_s, 0.0, 0.0};
  }
};

}  // namespace

StreamSinkBase::StreamSinkBase(const std::string& path)
    : owned_(std::make_unique<std::ofstream>(path)), os_(owned_.get()) {
  if (!*owned_) {
    throw std::runtime_error("obs: cannot open trace output file: " + path);
  }
}

void JsonlSink::on_event(const Event& event) {
  JsonFields f;
  std::visit(JsonlVisitor{f}, event.payload);
  out() << "{\"ts\":" << fmt_num(event.ts) << ",\"type\":\""
        << type_name(event.payload) << "\"" << f.body() << "}\n";
}

void CsvTimelineSink::header_once() {
  if (wrote_header_) return;
  wrote_header_ = true;
  out() << "ts,type,label,id,a,b,c\n";
}

void CsvTimelineSink::on_event(const Event& event) {
  header_once();
  const CsvRow row = std::visit(CsvVisitor{}, event.payload);
  out() << fmt_num(event.ts) << ',' << type_name(event.payload) << ','
        << row.label << ',' << row.id << ',' << fmt_num(row.a) << ','
        << fmt_num(row.b) << ',' << fmt_num(row.c) << "\n";
}

int ChromeTraceSink::lane_for(const std::string& name) {
  auto it = lanes_.find(name);
  if (it != lanes_.end()) return it->second;
  const int lane = next_lane_++;
  lanes_.emplace(name, lane);
  emit(last_ts_us_, 'M', lane, "thread_name",
       "{\"name\":\"" + json_escape(name) + "\"}");
  return lane;
}

void ChromeTraceSink::emit(double ts_us, char ph, int tid,
                           const std::string& name,
                           const std::string& args_json) {
  if (finished_) return;
  if (!started_) {
    started_ = true;
    first_ = true;
    out() << "[\n";
    // Name the fixed lanes up front.
    const std::pair<int, const char*> fixed[] = {{kFramesLane, "frames"},
                                                 {kDecoderLane, "decoder"},
                                                 {kGovernorLane, "governor"},
                                                 {kDetectorLane, "detector"},
                                                 {kDpmLane, "dpm"}};
    for (const auto& [lane, lane_name] : fixed) {
      emit(ts_us, 'M', lane, "thread_name",
           std::string("{\"name\":\"") + lane_name + "\"}");
    }
  }
  if (!first_) out() << ",\n";
  first_ = false;
  last_ts_us_ = ts_us;
  out() << "{\"name\":\"" << json_escape(name) << "\",\"ph\":\"" << ph
        << "\",\"ts\":" << fmt_num(ts_us) << ",\"pid\":1,\"tid\":" << tid;
  if (!args_json.empty()) out() << ",\"args\":" << args_json;
  out() << "}";
}

void ChromeTraceSink::counter(double ts_us, const std::string& name,
                              double value) {
  emit(ts_us, 'C', kGovernorLane, name, "{\"value\":" + fmt_num(value) + "}");
}

void ChromeTraceSink::on_event(const Event& event) {
  if (finished_) return;
  const double us = event.ts * 1e6;

  struct Visitor {
    ChromeTraceSink& sink;
    double us;
    void operator()(const FrameArrival& p) {
      sink.emit(us, 'i', kFramesLane, "frame_arrival",
                "{\"frame\":" + std::to_string(p.frame_id) + "}");
      sink.counter(us, "queue_len", static_cast<double>(p.queue_len));
    }
    void operator()(const FrameDrop& p) {
      sink.emit(us, 'i', kFramesLane, "frame_drop",
                "{\"frame\":" + std::to_string(p.frame_id) + "}");
    }
    void operator()(const DecodeStart& p) {
      if (sink.decode_open_) sink.emit(us, 'E', kDecoderLane, "decode", "");
      sink.decode_open_ = true;
      sink.emit(us, 'B', kDecoderLane, "decode",
                "{\"frame\":" + std::to_string(p.frame_id) +
                    ",\"freq_mhz\":" + fmt_num(p.freq_mhz) + "}");
    }
    void operator()(const DecodeDone& p) {
      if (sink.decode_open_) {
        sink.decode_open_ = false;
        sink.emit(us, 'E', kDecoderLane, "decode",
                  "{\"delay_s\":" + fmt_num(p.delay_s) + "}");
      }
      sink.counter(us, "queue_len", static_cast<double>(p.queue_len));
    }
    void operator()(const DetectorSample& p) {
      sink.counter(us, "rate_hz:" + std::string(p.stream), p.rate_hz);
    }
    void operator()(const DetectorDecision& p) {
      if (!p.detected) return;  // non-detections would swamp the lane
      sink.emit(us, 'i', kDetectorLane,
                "rate_change:" + std::string(p.stream),
                "{\"ln_p_max\":" + fmt_num(p.ln_p_max) +
                    ",\"rate_hz\":" + fmt_num(p.rate_hz) + "}");
    }
    void operator()(const FreqCommit& p) {
      sink.counter(us, "cpu_mhz", p.freq_mhz);
      sink.emit(us, 'i', kGovernorLane, "freq_commit",
                "{\"step\":" + std::to_string(p.step) +
                    ",\"freq_mhz\":" + fmt_num(p.freq_mhz) +
                    ",\"voltage_v\":" + fmt_num(p.voltage_v) + "}");
    }
    void operator()(const DpmIdleEnter& p) {
      sink.emit(us, 'i', kDpmLane, "idle_enter",
                p.hint_s >= 0.0 ? "{\"hint_s\":" + fmt_num(p.hint_s) + "}"
                                : std::string());
    }
    void operator()(const DpmSleepCommand& p) {
      sink.emit(us, 'i', kDpmLane, "sleep:" + std::string(p.state), "");
    }
    void operator()(const DpmWakeup& p) {
      sink.emit(us, 'i', kDpmLane, "wakeup",
                "{\"from\":\"" + json_escape(p.from_state) +
                    "\",\"latency_s\":" + fmt_num(p.latency_s) + "}");
    }
    void operator()(const ComponentState& p) {
      const std::string comp(p.component);
      const int lane = sink.lane_for(comp);
      auto open = sink.open_span_.find(comp);
      if (open != sink.open_span_.end()) {
        sink.emit(us, 'E', lane, open->second, "");
      }
      sink.open_span_[comp] = std::string(p.to);
      sink.emit(us, 'B', lane, std::string(p.to),
                "{\"power_mw\":" + fmt_num(p.power_mw) + "}");
    }
    void operator()(const FaultInjected& p) {
      sink.emit(us, 'i', kGovernorLane, "fault:" + std::string(p.kind),
                "{\"magnitude\":" + fmt_num(p.magnitude) + "}");
    }
    void operator()(const WatchdogEscalate& p) {
      sink.emit(us, 'i', kGovernorLane, "watchdog_escalate",
                "{\"delay_s\":" + fmt_num(p.delay_s) +
                    ",\"queue\":" + fmt_num(p.queue_len) + "}");
    }
    void operator()(const WatchdogRecover& p) {
      sink.emit(us, 'i', kGovernorLane, "watchdog_recover",
                "{\"degraded_s\":" + fmt_num(p.time_degraded_s) + "}");
    }
  };
  std::visit(Visitor{*this, us}, event.payload);
}

void ChromeTraceSink::flush() {
  if (finished_) return;
  if (started_) {
    // Close the open power-state spans and the JSON array.
    for (const auto& [comp, state] : open_span_) {
      emit(last_ts_us_, 'E', lane_for(comp), state, "");
    }
    open_span_.clear();
    if (decode_open_) {
      decode_open_ = false;
      emit(last_ts_us_, 'E', kDecoderLane, "decode", "");
    }
    out() << "\n]\n";
  } else {
    out() << "[]\n";
  }
  finished_ = true;
  out().flush();
}

}  // namespace dvs::obs
