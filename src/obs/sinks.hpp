// Trace sinks: JSONL, CSV timeline, and Chrome trace-event JSON.
//
// JSONL: one self-describing JSON object per line — the format to grep or
// load into pandas.  CSV: a flat timeline with generic payload columns (see
// docs/OBSERVABILITY.md for the per-type column mapping).  Chrome trace:
// the trace-event JSON array understood by Perfetto / chrome://tracing,
// with one lane per hardware component showing its power-state spans plus
// counter tracks for CPU frequency, queue length, and rate estimates.
#pragma once

#include <fstream>
#include <functional>
#include <map>
#include <memory>
#include <ostream>
#include <string>

#include "obs/trace_recorder.hpp"

namespace dvs::obs {

/// Shared stream plumbing: either owns an ofstream opened on `path` or
/// borrows a caller-owned ostream (tests).
class StreamSinkBase : public TraceSink {
 protected:
  explicit StreamSinkBase(const std::string& path);
  explicit StreamSinkBase(std::ostream& os) : os_(&os) {}
  [[nodiscard]] std::ostream& out() { return *os_; }

 private:
  std::unique_ptr<std::ofstream> owned_;
  std::ostream* os_;
};

/// One JSON object per event per line.
class JsonlSink final : public StreamSinkBase {
 public:
  explicit JsonlSink(const std::string& path) : StreamSinkBase(path) {}
  explicit JsonlSink(std::ostream& os) : StreamSinkBase(os) {}
  void on_event(const Event& event) override;
  void flush() override { out().flush(); }
};

/// Flat CSV timeline: ts,type,label,id,a,b,c.
class CsvTimelineSink final : public StreamSinkBase {
 public:
  explicit CsvTimelineSink(const std::string& path) : StreamSinkBase(path) {}
  explicit CsvTimelineSink(std::ostream& os) : StreamSinkBase(os) {}
  void on_event(const Event& event) override;
  void flush() override { out().flush(); }

 private:
  void header_once();
  bool wrote_header_ = false;
};

/// Chrome trace-event JSON (the "JSON array format").  flush() finalizes
/// the array; events recorded after flush are dropped.
class ChromeTraceSink final : public StreamSinkBase {
 public:
  explicit ChromeTraceSink(const std::string& path) : StreamSinkBase(path) {}
  explicit ChromeTraceSink(std::ostream& os) : StreamSinkBase(os) {}
  ~ChromeTraceSink() override { flush(); }
  void on_event(const Event& event) override;
  void flush() override;

 private:
  int lane_for(const std::string& name);
  void emit(double ts_us, char ph, int tid, const std::string& name,
            const std::string& args_json);
  void counter(double ts_us, const std::string& name, double value);

  bool started_ = false;
  bool finished_ = false;
  bool first_ = false;
  double last_ts_us_ = 0.0;
  int next_lane_ = 16;  // component lanes; fixed lanes live below 16
  std::map<std::string, int> lanes_;
  std::map<std::string, std::string> open_span_;  ///< component -> state
  bool decode_open_ = false;
};

/// Forwards every event to a std::function — in-process consumers (metrics
/// taps, tests) without a serialization format.
class CallbackSink final : public TraceSink {
 public:
  using Fn = std::function<void(const Event&)>;
  explicit CallbackSink(Fn fn) : fn_(std::move(fn)) {}
  void on_event(const Event& event) override { fn_(event); }

 private:
  Fn fn_;
};

}  // namespace dvs::obs
