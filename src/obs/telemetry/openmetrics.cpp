#include "obs/telemetry/openmetrics.hpp"

#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>

namespace dvs::obs {

namespace {

std::string fmt_num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

}  // namespace

std::string openmetrics_name(const std::string& name) {
  std::string out = "dvs_";
  for (char c : name) {
    const bool ok = (std::isalnum(static_cast<unsigned char>(c)) != 0) || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

void write_openmetrics(const MetricsRegistry& reg, std::ostream& os) {
  for (const auto& [name, value] : reg.counters()) {
    const std::string n = openmetrics_name(name);
    os << "# TYPE " << n << " counter\n";
    os << n << "_total " << value << "\n";
  }
  for (const auto& [name, value] : reg.gauges()) {
    const std::string n = openmetrics_name(name);
    os << "# TYPE " << n << " gauge\n";
    os << n << " " << fmt_num(value) << "\n";
  }
  for (const auto& [name, h] : reg.histograms()) {
    const std::string n = openmetrics_name(name);
    os << "# TYPE " << n << " summary\n";
    if (h.count() > 0) {
      os << n << "{quantile=\"0.5\"} " << fmt_num(h.sketch().quantile(0.5))
         << "\n";
      os << n << "{quantile=\"0.9\"} " << fmt_num(h.sketch().quantile(0.9))
         << "\n";
      os << n << "{quantile=\"0.99\"} " << fmt_num(h.sketch().quantile(0.99))
         << "\n";
    }
    os << n << "_count " << h.count() << "\n";
    os << n << "_sum " << fmt_num(h.count() > 0 ? h.stats().sum() : 0.0)
       << "\n";
    // Binned-histogram clamping, visible to scrapers as its own counter.
    const std::string cn = n + "_clamped";
    os << "# TYPE " << cn << " counter\n";
    os << cn << "_total " << h.clamped() << "\n";
  }
  os << "# EOF\n";
}

void write_openmetrics_atomic(const MetricsRegistry& reg,
                              const std::string& path) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::trunc);
    if (!os) {
      throw std::runtime_error("write_openmetrics_atomic: cannot open " + tmp);
    }
    write_openmetrics(reg, os);
    os.flush();
    if (!os) {
      throw std::runtime_error("write_openmetrics_atomic: write failed: " +
                               tmp);
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    throw std::runtime_error("write_openmetrics_atomic: rename to " + path +
                             ": " + ec.message());
  }
}

}  // namespace dvs::obs
