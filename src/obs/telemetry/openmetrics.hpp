// OpenMetrics text exporter: renders a MetricsRegistry in the
// OpenMetrics / Prometheus exposition format so external scrapers and CI
// linters consume runs unmodified (`dvs_sim ... --metrics-openmetrics`).
//
// Naming is stable and mechanical (docs/OBSERVABILITY.md "OpenMetrics
// naming"): every metric gets the `dvs_` prefix, dots and other
// non-[a-zA-Z0-9_] characters become underscores.  Counters render as
// counter families (sample name `<family>_total`), gauges as gauges, and
// histogram metrics as summaries: `{quantile="0.5|0.9|0.99"}` samples from
// the quantile sketch plus `_count` / `_sum` from the exact moments, and a
// companion `<family>_clamped_total` counter exposing binned-histogram
// underflow + overflow.  Output ends with the mandatory `# EOF` marker and
// is validated in CI by scripts/check_openmetrics.py.
#pragma once

#include <ostream>
#include <string>

#include "obs/metrics_registry.hpp"

namespace dvs::obs {

/// "frames.delay_s" -> "dvs_frames_delay_s".
std::string openmetrics_name(const std::string& name);

void write_openmetrics(const MetricsRegistry& reg, std::ostream& os);

/// Renders to `path + ".tmp"` and renames over `path`, so a concurrent
/// scraper always reads a complete exposition (the serve daemon rewrites
/// its `metrics.om` while Prometheus-style collectors poll it).  Throws
/// std::runtime_error when the temp file cannot be written or renamed.
void write_openmetrics_atomic(const MetricsRegistry& reg,
                              const std::string& path);

}  // namespace dvs::obs
