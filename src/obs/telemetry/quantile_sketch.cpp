#include "obs/telemetry/quantile_sketch.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>

namespace dvs::obs {

namespace {

/// %.17g: the shortest printf format that round-trips every finite double.
std::string fmt17(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

double parse_double(const std::string& tok, const char* what) {
  char* end = nullptr;
  const double v = std::strtod(tok.c_str(), &end);
  if (end == nullptr || *end != '\0' || tok.empty()) {
    throw std::runtime_error(std::string("QuantileSketch: bad ") + what +
                             " '" + tok + "'");
  }
  return v;
}

/// Linear interpolation of sorted samples at rank q (SampleQuantiles rule).
double sorted_quantile(const std::vector<double>& xs, double q) {
  const double pos = q * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

/// Weighted quantile over (value, weight) points sorted by value: linear
/// interpolation on the cumulative-weight midpoint curve, so a weight-1
/// point set reproduces sorted_quantile exactly in the limit.
double weighted_quantile(const std::vector<std::pair<double, double>>& pts,
                         double total_weight, double q) {
  const double target = q * total_weight;
  double cum = 0.0;
  double prev_mid = 0.0;
  double prev_val = pts.front().first;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    const double mid = cum + pts[i].second * 0.5;
    if (target <= mid) {
      if (i == 0 || mid == prev_mid) return pts[i].first;
      const double frac = (target - prev_mid) / (mid - prev_mid);
      return prev_val + frac * (pts[i].first - prev_val);
    }
    prev_mid = mid;
    prev_val = pts[i].first;
    cum += pts[i].second;
  }
  return pts.back().first;
}

}  // namespace

const std::array<double, QuantileSketch::kMarkers>&
QuantileSketch::marker_probs() {
  // Extended-P² layout for targets {0.5, 0.9, 0.99}: endpoints, the targets,
  // and the midpoints between neighbouring targets (Raatikainen 1987).
  static const std::array<double, kMarkers> kProbs = {
      0.0, 0.25, 0.5, 0.7, 0.9, 0.945, 0.99, 0.995, 1.0};
  return kProbs;
}

QuantileSketch::QuantileSketch(std::size_t exact_capacity)
    : capacity_(std::max<std::size_t>(exact_capacity, kMarkers)) {}

void QuantileSketch::reset() { *this = QuantileSketch{capacity_}; }

void QuantileSketch::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  if (exact_) {
    samples_.push_back(x);
    if (samples_.size() > capacity_) collapse_to_p2();
    return;
  }
  p2_add(x);
}

double QuantileSketch::min() const {
  if (count_ == 0) throw std::logic_error("QuantileSketch::min(): empty");
  return min_;
}

double QuantileSketch::max() const {
  if (count_ == 0) throw std::logic_error("QuantileSketch::max(): empty");
  return max_;
}

void QuantileSketch::collapse_to_p2() {
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  const auto& probs = marker_probs();
  const auto n = static_cast<double>(sorted.size());
  for (std::size_t i = 0; i < kMarkers; ++i) {
    q_[i] = sorted_quantile(sorted, probs[i]);
    d_[i] = 1.0 + probs[i] * (n - 1.0);
    n_[i] = std::round(d_[i]);
  }
  fix_marker_positions(n);
  exact_ = false;
  samples_.clear();
  samples_.shrink_to_fit();
}

void QuantileSketch::fix_marker_positions(double n) {
  // Positions must stay strictly increasing (the parabolic update divides
  // by neighbour gaps) and end exactly at rank n.  Rounding can collide
  // neighbours when n is small; push up, pin the end, then push back down —
  // n >= kMarkers + 1 whenever this runs, so there is always room.
  for (std::size_t i = 1; i < kMarkers; ++i) {
    n_[i] = std::max(n_[i], n_[i - 1] + 1.0);
  }
  n_[kMarkers - 1] = n;
  for (std::size_t i = kMarkers - 1; i-- > 0;) {
    n_[i] = std::min(n_[i], n_[i + 1] - 1.0);
  }
}

void QuantileSketch::p2_add(double x) {
  const auto& probs = marker_probs();
  // Locate the containing cell, extending the extreme markers if needed.
  std::size_t k = 0;
  if (x < q_[0]) {
    q_[0] = x;
    k = 0;
  } else if (x >= q_[kMarkers - 1]) {
    q_[kMarkers - 1] = x;
    k = kMarkers - 2;
  } else {
    while (k + 1 < kMarkers - 1 && x >= q_[k + 1]) ++k;
  }
  for (std::size_t i = k + 1; i < kMarkers; ++i) n_[i] += 1.0;
  for (std::size_t i = 0; i < kMarkers; ++i) d_[i] += probs[i];

  // Nudge the interior markers toward their desired positions with the P²
  // parabolic formula, falling back to linear when the parabola would break
  // monotonicity.
  for (std::size_t i = 1; i + 1 < kMarkers; ++i) {
    const double delta = d_[i] - n_[i];
    if ((delta >= 1.0 && n_[i + 1] - n_[i] > 1.0) ||
        (delta <= -1.0 && n_[i - 1] - n_[i] < -1.0)) {
      const double s = delta >= 1.0 ? 1.0 : -1.0;
      const double np = n_[i + 1];
      const double nm = n_[i - 1];
      const double nc = n_[i];
      double qn = q_[i] + s / (np - nm) *
                              ((nc - nm + s) * (q_[i + 1] - q_[i]) / (np - nc) +
                               (np - nc - s) * (q_[i] - q_[i - 1]) / (nc - nm));
      if (qn <= q_[i - 1] || qn >= q_[i + 1]) {
        // Linear fallback toward the neighbour in the step direction.
        const std::size_t j = delta >= 1.0 ? i + 1 : i - 1;
        qn = q_[i] + s * (q_[j] - q_[i]) / (n_[j] - nc);
      }
      q_[i] = qn;
      n_[i] = nc + s;
    }
  }
}

double QuantileSketch::quantile(double q) const {
  if (count_ == 0) throw std::logic_error("QuantileSketch::quantile(): empty");
  if (q < 0.0 || q > 1.0) {
    throw std::domain_error("QuantileSketch::quantile(): q in [0,1]");
  }
  if (count_ == 1) return min_;
  if (exact_) {
    std::vector<double> sorted = samples_;
    std::sort(sorted.begin(), sorted.end());
    return sorted_quantile(sorted, q);
  }
  return p2_quantile(q);
}

double QuantileSketch::p2_quantile(double q) const {
  // Piecewise-linear interpolation over the (rank, height) marker curve.
  const double n = static_cast<double>(count_);
  const double target = 1.0 + q * (n - 1.0);
  if (target <= n_[0]) return q_[0];
  for (std::size_t i = 1; i < kMarkers; ++i) {
    if (target <= n_[i]) {
      const double span = n_[i] - n_[i - 1];
      if (span <= 0.0) return q_[i];
      const double frac = (target - n_[i - 1]) / span;
      return q_[i - 1] + frac * (q_[i] - q_[i - 1]);
    }
  }
  return q_[kMarkers - 1];
}

void QuantileSketch::extract_weighted(
    std::vector<std::pair<double, double>>* out) const {
  if (count_ == 0) return;
  if (exact_) {
    for (double v : samples_) out->emplace_back(v, 1.0);
    return;
  }
  // Resample the estimated inverse CDF at kMergeResolution evenly spaced
  // ranks; each point carries an equal share of the true count.
  const double w =
      static_cast<double>(count_) / static_cast<double>(kMergeResolution);
  for (std::size_t j = 0; j < kMergeResolution; ++j) {
    const double p = (static_cast<double>(j) + 0.5) /
                     static_cast<double>(kMergeResolution);
    out->emplace_back(p2_quantile(p), w);
  }
}

void QuantileSketch::init_markers_from_weighted(
    const std::vector<std::pair<double, double>>& pts, std::size_t n) {
  const auto& probs = marker_probs();
  double total = 0.0;
  for (const auto& p : pts) total += p.second;
  const auto nd = static_cast<double>(n);
  for (std::size_t i = 0; i < kMarkers; ++i) {
    q_[i] = weighted_quantile(pts, total, probs[i]);
    d_[i] = 1.0 + probs[i] * (nd - 1.0);
    n_[i] = std::round(d_[i]);
  }
  q_[0] = min_;
  q_[kMarkers - 1] = max_;
  for (std::size_t i = 1; i < kMarkers; ++i) {
    q_[i] = std::max(q_[i], q_[i - 1]);  // monotone heights
  }
  fix_marker_positions(nd);
  exact_ = false;
  samples_.clear();
  samples_.shrink_to_fit();
}

void QuantileSketch::merge(const QuantileSketch& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    const std::size_t cap = capacity_;
    *this = other;
    capacity_ = std::max(cap, other.capacity_);
    return;
  }
  const double mn = std::min(min_, other.min_);
  const double mx = std::max(max_, other.max_);
  if (exact_ && other.exact_ && samples_.size() + other.samples_.size() <=
                                    std::max(capacity_, other.capacity_)) {
    samples_.insert(samples_.end(), other.samples_.begin(),
                    other.samples_.end());
    count_ += other.count_;
    min_ = mn;
    max_ = mx;
    capacity_ = std::max(capacity_, other.capacity_);
    return;
  }
  std::vector<std::pair<double, double>> pts;
  pts.reserve((exact_ ? samples_.size() : kMergeResolution) +
              (other.exact_ ? other.samples_.size() : kMergeResolution));
  extract_weighted(&pts);
  other.extract_weighted(&pts);
  std::sort(pts.begin(), pts.end());
  const std::size_t n = count_ + other.count_;
  min_ = mn;
  max_ = mx;
  init_markers_from_weighted(pts, n);
  count_ = n;
  capacity_ = std::max(capacity_, other.capacity_);
}

void QuantileSketch::write_text(std::ostream& os) const {
  os << "dvs-sketch-v1 mode=" << (exact_ ? "exact" : "p2")
     << " cap=" << capacity_ << " count=" << count_ << " min=" << fmt17(min_)
     << " max=" << fmt17(max_) << "\n";
  if (exact_) {
    os << samples_.size() << "\n";
    for (double v : samples_) os << fmt17(v) << "\n";
    return;
  }
  os << kMarkers << "\n";
  for (std::size_t i = 0; i < kMarkers; ++i) {
    os << fmt17(q_[i]) << " " << fmt17(n_[i]) << " " << fmt17(d_[i]) << "\n";
  }
}

QuantileSketch QuantileSketch::read_text(std::istream& is) {
  std::string magic;
  std::string mode_tok;
  std::string cap_tok;
  std::string count_tok;
  std::string min_tok;
  std::string max_tok;
  if (!(is >> magic >> mode_tok >> cap_tok >> count_tok >> min_tok >>
        max_tok) ||
      magic != "dvs-sketch-v1") {
    throw std::runtime_error("QuantileSketch: bad header (want dvs-sketch-v1)");
  }
  const auto field = [](std::string tok, const char* key) {
    const std::string prefix = std::string(key) + "=";
    if (tok.rfind(prefix, 0) != 0) {
      throw std::runtime_error("QuantileSketch: expected " + prefix +
                               "... got '" + tok + "'");
    }
    return tok.substr(prefix.size());
  };
  const std::string mode = field(mode_tok, "mode");
  if (mode != "exact" && mode != "p2") {
    throw std::runtime_error("QuantileSketch: unknown mode '" + mode + "'");
  }
  QuantileSketch s{static_cast<std::size_t>(
      std::strtoull(field(cap_tok, "cap").c_str(), nullptr, 10))};
  s.count_ = static_cast<std::size_t>(
      std::strtoull(field(count_tok, "count").c_str(), nullptr, 10));
  s.min_ = parse_double(field(min_tok, "min"), "min");
  s.max_ = parse_double(field(max_tok, "max"), "max");
  std::size_t rows = 0;
  if (!(is >> rows)) throw std::runtime_error("QuantileSketch: missing row count");
  if (mode == "exact") {
    s.exact_ = true;
    if (rows != s.count_) {
      throw std::runtime_error("QuantileSketch: exact row/count mismatch");
    }
    s.samples_.reserve(rows);
    for (std::size_t i = 0; i < rows; ++i) {
      std::string tok;
      if (!(is >> tok)) throw std::runtime_error("QuantileSketch: truncated samples");
      s.samples_.push_back(parse_double(tok, "sample"));
    }
    return s;
  }
  s.exact_ = false;
  if (rows != kMarkers) {
    throw std::runtime_error("QuantileSketch: p2 sketch needs 9 markers");
  }
  for (std::size_t i = 0; i < kMarkers; ++i) {
    std::string qt;
    std::string nt;
    std::string dt;
    if (!(is >> qt >> nt >> dt)) {
      throw std::runtime_error("QuantileSketch: truncated markers");
    }
    s.q_[i] = parse_double(qt, "marker height");
    s.n_[i] = parse_double(nt, "marker position");
    s.d_[i] = parse_double(dt, "marker desired position");
  }
  return s;
}

}  // namespace dvs::obs
