// QuantileSketch: a mergeable streaming quantile estimator with fixed
// worst-case memory.
//
// Small streams are kept exactly (a plain sample buffer, quantiles by
// sort + interpolate, identical to common/stats.hpp::SampleQuantiles); once
// the stream outgrows the buffer the sketch collapses it into an extended
// P² estimator (Jain & Chlamtac 1985; Raatikainen 1987): nine markers whose
// heights chase the {min, 0.25, 0.5, 0.7, 0.9, 0.945, 0.99, 0.995, max}
// rank curve with parabolic adjustments, so p50/p90/p99 queries cost O(1)
// space no matter how many samples flow through.  This replaces the
// fixed-bin Histogram interpolation for the metrics-JSON percentiles: no
// a-priori range, no clamping, and observed rank error well under 0.02 on
// the workloads we run (docs/OBSERVABILITY.md "Sketch accuracy").
//
// Sketches merge: SweepRunner combines the per-point sketches of a cell's
// replicates (and of its workers) into one population sketch.  Merging two
// exact sketches that still fit the buffer is itself exact; otherwise both
// sides are resampled along their inverse CDFs into weighted points and the
// markers are rebuilt at the combined ranks.  Merge results depend only on
// the operand values, never on thread schedule, which is what keeps
// jobs=1 vs jobs=N sweep output byte-identical.
//
// Serialization is a pinned, versioned text format (`dvs-sketch-v1`,
// %.17g doubles) that round-trips bit-exactly — the contract that lets
// workers ship sketches across process boundaries later (ROADMAP item 5).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <vector>

namespace dvs::obs {

class QuantileSketch {
 public:
  /// Samples kept exactly before collapsing into P² markers.
  static constexpr std::size_t kDefaultExactCapacity = 1024;
  /// Extended-P² marker count for targets {0.5, 0.9, 0.99} (2k + 3).
  static constexpr std::size_t kMarkers = 9;
  /// Inverse-CDF resample resolution used when merging estimated sketches.
  static constexpr std::size_t kMergeResolution = 128;

  explicit QuantileSketch(std::size_t exact_capacity = kDefaultExactCapacity);

  void add(double x);

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] bool empty() const { return count_ == 0; }
  /// True while the sketch still stores every sample verbatim.
  [[nodiscard]] bool exact() const { return exact_; }
  [[nodiscard]] std::size_t exact_capacity() const { return capacity_; }
  /// Exact extrema of the whole stream (kept in both modes); throw if empty.
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;

  /// Value at rank q in [0, 1].  Exact mode: sort + linear interpolation.
  /// P² mode: piecewise-linear interpolation over the marker rank curve.
  /// Throws std::logic_error if empty, std::domain_error if q is out of
  /// range.
  [[nodiscard]] double quantile(double q) const;

  /// Folds `other` into this sketch.  Exact + exact stays exact when the
  /// union fits the buffer; anything else rebuilds the P² markers from the
  /// weighted union of both inverse CDFs.  Deterministic in the operand
  /// values alone.
  void merge(const QuantileSketch& other);

  /// Pinned text serialization (`dvs-sketch-v1 ...`), %.17g doubles; the
  /// read_text(write_text(s)) round trip is bit-stable.
  void write_text(std::ostream& os) const;
  /// Parses write_text output; throws std::runtime_error on malformed input.
  static QuantileSketch read_text(std::istream& is);

  void reset();

 private:
  /// Target rank of each marker (extended-P² layout for p50/p90/p99).
  static const std::array<double, kMarkers>& marker_probs();

  void collapse_to_p2();
  void fix_marker_positions(double n);
  void p2_add(double x);
  [[nodiscard]] double p2_quantile(double q) const;
  /// Rebuilds the marker state from value/weight pairs sorted by value.
  void init_markers_from_weighted(
      const std::vector<std::pair<double, double>>& pts, std::size_t n);
  /// Appends this sketch's distribution as (value, weight) points.
  void extract_weighted(std::vector<std::pair<double, double>>* out) const;

  std::size_t capacity_;
  bool exact_ = true;
  std::size_t count_ = 0;
  double min_ = 0.0;
  double max_ = 0.0;

  /// Exact mode: the samples, in insertion order.
  std::vector<double> samples_;

  // P² mode: marker heights, integer marker positions (1-based ranks), and
  // desired (fractional) positions.
  std::array<double, kMarkers> q_{};
  std::array<double, kMarkers> n_{};
  std::array<double, kMarkers> d_{};
};

}  // namespace dvs::obs
