#include "obs/telemetry/snapshotter.hpp"

#include <cstdio>

namespace dvs::obs {

namespace {

std::string fmt_num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

}  // namespace

bool TelemetrySnapshotter::open(const std::string& path) {
  file_.open(path);
  if (!file_) return false;
  os_ = &file_;
  return true;
}

void TelemetrySnapshotter::snapshot(double t, const std::string& source,
                                    const MetricsRegistry& reg,
                                    const Live& live) {
  if (os_ == nullptr) return;
  if (written_ > 0 && min_interval_ > 0.0 && t - last_t_ < min_interval_) {
    return;
  }
  if (min_wall_ > 0.0) {
    const auto now = std::chrono::steady_clock::now();
    if (written_ > 0 &&
        std::chrono::duration<double>(now - last_wall_).count() < min_wall_) {
      return;
    }
    last_wall_ = now;
  }
  last_t_ = t;
  ++written_;

  std::ostream& os = *os_;
  os << "{\"t\": " << fmt_num(t) << ", \"source\": \"" << source << "\"";
  if (!live.empty()) {
    os << ", \"live\": {";
    bool first = true;
    for (const auto& [name, value] : live) {
      os << (first ? "" : ", ") << "\"" << name << "\": " << fmt_num(value);
      first = false;
    }
    os << "}";
  }
  os << ", \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : reg.counters()) {
    os << (first ? "" : ", ") << "\"" << name << "\": " << value;
    first = false;
  }
  os << "}, \"gauges\": {";
  first = true;
  for (const auto& [name, value] : reg.gauges()) {
    os << (first ? "" : ", ") << "\"" << name << "\": " << fmt_num(value);
    first = false;
  }
  os << "}, \"quantiles\": {";
  first = true;
  for (const auto& [name, h] : reg.histograms()) {
    if (h.count() == 0) continue;
    os << (first ? "" : ", ") << "\"" << name
       << "\": {\"count\": " << h.count()
       << ", \"mean\": " << fmt_num(h.stats().mean())
       << ", \"p50\": " << fmt_num(h.sketch().quantile(0.5))
       << ", \"p90\": " << fmt_num(h.sketch().quantile(0.9))
       << ", \"p99\": " << fmt_num(h.sketch().quantile(0.99)) << "}";
    first = false;
  }
  os << "}}\n";
  os.flush();
}

}  // namespace dvs::obs
