// TelemetrySnapshotter: periodic MetricsRegistry samples as append-only
// JSONL — a live metric feed for long runs, instead of end-of-run totals.
//
// Each snapshot is one self-contained JSON object:
//
//   {"t": <seconds>, "source": "engine",
//    "live": {"sim_time_s": ..., "energy_j": ..., ...},
//    "counters": {...}, "gauges": {...},
//    "quantiles": {"frames.delay_s": {"count": n, "p50": ..., "p90": ...,
//                  "p99": ..., "mean": ...}, ...}}
//
// `t` is whatever clock the caller samples on: the engine snapshots on a
// sim-time cadence (EngineConfig::telemetry_every), the sweep runner on
// wall time as points finish.  `live` carries caller-provided
// instantaneous readings that are not (yet) registry entries — the engine
// fills counters/gauges only at end of run, so mid-run feeds need them.
// min_interval() throttles in `t` units; set_min_wall_interval() throttles
// on real wall time regardless of `t` — the live-feed mode for scrape-rate
// consumers, and the configuration the bench_perf 5% overhead budget is
// measured in (a sim-time cadence on a simulator running thousands of
// times faster than real time is an analysis dump, not a live feed; its
// cost scales with the cadence, like --trace-jsonl).  0 (default)
// disables either throttle.  Schema documented in docs/OBSERVABILITY.md.
#pragma once

#include <chrono>
#include <fstream>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics_registry.hpp"

namespace dvs::obs {

class TelemetrySnapshotter {
 public:
  /// Named value pairs for the snapshot's "live" object.
  using Live = std::vector<std::pair<std::string, double>>;

  TelemetrySnapshotter() = default;
  /// Writes to `os` (not owned); `os` must outlive the snapshotter.
  explicit TelemetrySnapshotter(std::ostream* os) : os_(os) {}

  /// Opens `path` for appending snapshots; returns false (and stays
  /// inactive) when the file cannot be opened.
  bool open(const std::string& path);

  [[nodiscard]] bool active() const { return os_ != nullptr; }
  [[nodiscard]] std::size_t snapshots_written() const { return written_; }

  /// Snapshots closer together than this (in `t` units) are dropped.
  void set_min_interval(double seconds) { min_interval_ = seconds; }

  /// Snapshots closer together than this in *wall* time are dropped,
  /// whatever clock `t` runs on (the scrape-rate live-feed throttle).
  void set_min_wall_interval(double seconds) { min_wall_ = seconds; }

  /// Appends one snapshot line; no-op when inactive or throttled.
  void snapshot(double t, const std::string& source,
                const MetricsRegistry& reg, const Live& live = {});

 private:
  std::ofstream file_;
  std::ostream* os_ = nullptr;
  double min_interval_ = 0.0;
  double last_t_ = 0.0;
  double min_wall_ = 0.0;
  std::chrono::steady_clock::time_point last_wall_{};
  std::size_t written_ = 0;
};

}  // namespace dvs::obs
