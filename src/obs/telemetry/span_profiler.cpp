#include "obs/telemetry/span_profiler.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <stdexcept>

namespace dvs::obs {

SpanProfiler::SpanProfiler()
    : calib_ticks_(now_ticks()),
      calib_wall_(std::chrono::steady_clock::now()) {
  nodes_.push_back(Node{"engine", -1, 0, 0, 0});
}

int SpanProfiler::node(int parent, const std::string& name) {
  if (parent < 0 || static_cast<std::size_t>(parent) >= nodes_.size()) {
    throw std::out_of_range("SpanProfiler::node: bad parent id");
  }
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].parent == parent && nodes_[i].name == name) {
      return static_cast<int>(i);
    }
  }
  nodes_.push_back(Node{name, parent, 0, 0, 0});
  return static_cast<int>(nodes_.size() - 1);
}

void SpanProfiler::finalize() {
  while (depth_ > 0) exit();
  if (finalized_) return;
  finalized_ = true;

  // Calibrate ticks -> seconds against the wall clock that ran alongside.
  const std::uint64_t dt_ticks = now_ticks() - calib_ticks_;
  const double dt_wall = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - calib_wall_)
                             .count();
  seconds_per_tick_ =
      dt_ticks > 0 ? dt_wall / static_cast<double>(dt_ticks) : 0.0;

  for (Node& n : nodes_) n.self_ticks = n.ticks;
  for (const Node& n : nodes_) {
    if (n.parent < 0) continue;
    Node& p = nodes_[static_cast<std::size_t>(n.parent)];
    p.self_ticks -= std::min(p.self_ticks, n.ticks);
  }
}

double SpanProfiler::node_total_s(int id) const {
  return static_cast<double>(nodes_.at(static_cast<std::size_t>(id)).ticks) *
         seconds_per_tick_;
}

double SpanProfiler::node_self_s(int id) const {
  return static_cast<double>(
             nodes_.at(static_cast<std::size_t>(id)).self_ticks) *
         seconds_per_tick_;
}

std::string SpanProfiler::stack_of(int id) const {
  const Node& n = nodes_.at(static_cast<std::size_t>(id));
  if (n.parent < 0) return n.name;
  return stack_of(n.parent) + ";" + n.name;
}

void SpanProfiler::write_collapsed(std::ostream& os) const {
  // One line per node with its *self* time in integer microseconds — the
  // collapsed-stack convention (each stack's value excludes its children,
  // which appear on their own lines).
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    if (n.calls == 0 && n.parent >= 0) continue;  // registered but never hit
    const double self_us =
        static_cast<double>(n.self_ticks) * seconds_per_tick_ * 1e6;
    os << stack_of(static_cast<int>(i)) << " "
       << static_cast<std::uint64_t>(std::llround(self_us)) << "\n";
  }
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    if (n.calls == 0 && n.parent >= 0) continue;
    os << "# calls " << stack_of(static_cast<int>(i)) << " " << n.calls
       << "\n";
  }
}

}  // namespace dvs::obs
