// SpanProfiler: nested hierarchical wall-time spans for the simulator's
// own hot path — the structured successor of ScopedTimer's single gauge.
//
// Each node of the span tree carries total ticks, call count, and (after
// finalize) self time = total − children.  Instrumented code pre-registers
// its tree nodes once (`node(parent, name)`) and then pays only a
// timestamp + two stores per enter/exit; an engine without a profiler pays
// a single pointer test per site, the same null-sink fast path the trace
// recorder and flight recorder use (docs/PERF.md).
//
// Timestamps are raw TSC reads on x86-64 (calibrated against
// steady_clock between start() and finalize()) and steady_clock elsewhere:
// the ~30 ns budget per frame (5% of the engine hot path) rules out two
// syscall-backed clock reads per handler.
//
// finalize() freezes the tree; write_collapsed() emits the standard
// collapsed-stack flamegraph format ("root;child;leaf <self_us>"), one
// line per node, followed by "# calls <stack> <n>" comment lines that
// `dvs_sim report --self-profile` uses to rebuild call counts (external
// flamegraph tools skip unparseable lines).
#pragma once

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#if defined(__x86_64__) || defined(_M_X64)
#include <x86intrin.h>
#define DVS_SPAN_TSC 1
#endif

namespace dvs::obs {

class SpanProfiler {
 public:
  struct Node {
    std::string name;
    int parent = -1;          ///< -1 only for the root
    std::uint64_t ticks = 0;  ///< total (inclusive) ticks
    std::uint64_t calls = 0;
    std::uint64_t self_ticks = 0;  ///< filled by finalize()
  };

  static constexpr std::size_t kMaxDepth = 64;

  SpanProfiler();

  /// Get-or-create a child of `parent` (node ids are dense ints; the root
  /// is node 0, named "engine").  Registration is not on the hot path.
  int node(int parent, const std::string& name);
  [[nodiscard]] int root() const { return 0; }

  /// Hot path: O(1), no allocation, no branch beyond the depth guard.
  void enter(int id) {
    if (depth_ >= kMaxDepth) return;
    stack_[depth_].id = id;
    stack_[depth_].t0 = now_ticks();
    ++depth_;
  }
  void exit() {
    if (depth_ == 0) return;
    --depth_;
    Node& n = nodes_[static_cast<std::size_t>(stack_[depth_].id)];
    n.ticks += now_ticks() - stack_[depth_].t0;
    ++n.calls;
  }

  /// Closes any open spans, computes self times, and calibrates the
  /// tick -> seconds scale.  Idempotent; required before the accessors
  /// below report seconds.
  void finalize();

  [[nodiscard]] const std::vector<Node>& nodes() const { return nodes_; }
  [[nodiscard]] double seconds_per_tick() const { return seconds_per_tick_; }
  [[nodiscard]] double node_total_s(int id) const;
  [[nodiscard]] double node_self_s(int id) const;
  /// Dotted path from the root, ';'-separated ("engine;arrival").
  [[nodiscard]] std::string stack_of(int id) const;

  /// Collapsed-stack flamegraph emission (see file header).
  void write_collapsed(std::ostream& os) const;

  static std::uint64_t now_ticks() {
#ifdef DVS_SPAN_TSC
    return __rdtsc();
#else
    return static_cast<std::uint64_t>(
        std::chrono::steady_clock::now().time_since_epoch().count());
#endif
  }

 private:
  struct Frame {
    int id = 0;
    std::uint64_t t0 = 0;
  };

  std::vector<Node> nodes_;
  Frame stack_[kMaxDepth];
  std::size_t depth_ = 0;
  bool finalized_ = false;
  double seconds_per_tick_ = 0.0;
  std::uint64_t calib_ticks_;
  std::chrono::steady_clock::time_point calib_wall_;
};

/// RAII span; a null profiler makes it a no-op (the fast path).
class ScopedSpan {
 public:
  ScopedSpan(SpanProfiler* p, int id) : p_(p) {
    if (p_ != nullptr) p_->enter(id);
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ~ScopedSpan() {
    if (p_ != nullptr) p_->exit();
  }

 private:
  SpanProfiler* p_;
};

}  // namespace dvs::obs
