// TraceRecorder: fan-out of structured events to pluggable sinks.
//
// The recorder is the single object instrumented code talks to.  With no
// sinks attached, active() is false and instrumentation sites skip payload
// construction entirely — an untraced run pays one pointer test per
// potential event, nothing more.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "obs/event.hpp"

namespace dvs::obs {

/// Consumes events at record time.  Implementations must not retain the
/// event (string_view fields point at caller-owned storage).
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void on_event(const Event& event) = 0;
  /// Finalizes output (closes JSON arrays, flushes buffers).  Idempotent.
  virtual void flush() {}
};

class TraceRecorder {
 public:
  TraceRecorder() = default;
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  TraceSink& add_sink(std::unique_ptr<TraceSink> sink) {
    sinks_.push_back(std::move(sink));
    return *sinks_.back();
  }

  /// True when at least one sink is attached.  Instrumentation sites gate
  /// on this before building payloads (the null-sink fast path).
  [[nodiscard]] bool active() const { return !sinks_.empty(); }

  void record(double ts, Payload payload) {
    if (!active()) return;
    const Event event{ts, std::move(payload)};
    ++recorded_;
    for (const auto& sink : sinks_) sink->on_event(event);
  }

  void flush() {
    for (const auto& sink : sinks_) sink->flush();
  }

  [[nodiscard]] std::uint64_t events_recorded() const { return recorded_; }

 private:
  std::vector<std::unique_ptr<TraceSink>> sinks_;
  std::uint64_t recorded_ = 0;
};

}  // namespace dvs::obs
