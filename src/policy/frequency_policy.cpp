#include "policy/frequency_policy.hpp"

#include <utility>

#include "common/check.hpp"
#include "queue/mg1.hpp"
#include "queue/mm1.hpp"

namespace dvs::policy {

FrequencyPolicy::FrequencyPolicy(const hw::Sa1100& cpu,
                                 PiecewiseLinear performance_curve,
                                 Seconds target_delay, double service_cv2)
    : cpu_(&cpu),
      curve_(std::move(performance_curve)),
      target_delay_(target_delay),
      service_cv2_(service_cv2) {
  DVS_CHECK_MSG(target_delay_.value() > 0.0, "FrequencyPolicy: target delay must be > 0");
  DVS_CHECK_MSG(service_cv2_ >= 0.0, "FrequencyPolicy: cv2 must be >= 0");
  DVS_CHECK_MSG(curve_.strictly_monotone() && curve_.increasing(),
                "FrequencyPolicy: performance curve must be strictly increasing");
}

std::size_t FrequencyPolicy::select_step(Hertz arrival_rate,
                                         Hertz service_rate_at_max,
                                         double buffered_frames) const {
  const std::size_t top = cpu_->num_steps() - 1;
  if (arrival_rate.value() <= 0.0 || service_rate_at_max.value() <= 0.0) return top;

  Hertz required =
      service_cv2_ == 1.0
          ? queue::Mm1::required_service_rate(arrival_rate, target_delay_)
          : queue::Mg1::required_service_rate(arrival_rate, target_delay_,
                                              service_cv2_);
  // Queue feedback: backlog above the steady-state occupancy must drain
  // within ~10 target-delays, so persistent service-estimate error shows up
  // as a bounded, self-correcting frequency bump instead of unbounded delay.
  const double steady_occupancy =
      arrival_rate.value() * target_delay_.value() + 1.0;
  const double excess = buffered_frames - steady_occupancy;
  if (excess > 0.0) {
    required += Hertz{excess / (10.0 * target_delay_.value())};
  }
  const double required_ratio = required.value() / service_rate_at_max.value();
  if (required_ratio >= 1.0) return top;  // saturated: run flat out

  for (std::size_t s = 0; s <= top; ++s) {
    const double perf = curve_(cpu_->frequency_at(s).value());
    // Relative epsilon: a step whose performance matches the requirement to
    // within rounding is sufficient.
    if (perf >= required_ratio * (1.0 - 1e-9)) return s;
  }
  return top;
}

Hertz FrequencyPolicy::decode_rate_at(std::size_t step,
                                      Hertz service_rate_at_max) const {
  DVS_CHECK_MSG(service_rate_at_max.value() > 0.0,
                "FrequencyPolicy: non-positive service rate");
  const double perf = curve_(cpu_->frequency_at(step).value());
  return Hertz{perf * service_rate_at_max.value()};
}

Hertz FrequencyPolicy::sustainable_arrival_rate_at(
    std::size_t step, Hertz service_rate_at_max) const {
  // Invert lambda_D = lambda_U + 1/d at this step's decode rate.
  const Hertz decode = decode_rate_at(step, service_rate_at_max);
  const double lambda_u = decode.value() - 1.0 / target_delay_.value();
  return Hertz{lambda_u > 0.0 ? lambda_u : 0.0};
}

}  // namespace dvs::policy
