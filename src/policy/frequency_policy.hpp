// Frequency/voltage setting policy (Section 3.1, Equation 5).
//
// "Policy is implemented using M/M/1 queue results to ensure constant
// average delay experienced by buffered frames ... when either interarrival
// rate or the servicing rate change, the frame delay is evaluated and the
// new frequency and voltage are selected that will keep the frame delay
// constant."
//
// Given the estimated arrival rate lambda_U and the estimated service rate
// at the top frequency step lambda_Dmax, the required service rate is
// lambda_D = lambda_U + 1/d (inverse of Eq. 5); dividing by lambda_Dmax
// gives the required performance ratio, which the application's
// frequency-performance curve (Figures 4/5) maps back to the lowest
// sufficient frequency step.  The voltage follows the V(f) table (Fig. 3)
// automatically — hw::SmartBadge couples them.
#pragma once

#include "common/piecewise_linear.hpp"
#include "common/units.hpp"
#include "hw/sa1100.hpp"

namespace dvs::policy {

class FrequencyPolicy {
 public:
  /// performance_curve: (frequency MHz -> performance ratio in (0,1]),
  /// monotone increasing, typically DecoderModel::performance_curve().
  ///
  /// service_cv2 selects the queueing model used to invert the delay
  /// target: 1.0 (default) is the paper's M/M/1 (Eq. 5); other values use
  /// the M/G/1 Pollaczek-Khinchine delay, the "other method of frequency
  /// and voltage adjustment" the paper calls for under general service
  /// distributions.  MP3 decode is nearly deterministic (cv2 ~ 0.003), so
  /// the M/G/1 inversion demands less service margin and saves more energy
  /// at the same measured delay.
  FrequencyPolicy(const hw::Sa1100& cpu, PiecewiseLinear performance_curve,
                  Seconds target_delay, double service_cv2 = 1.0);

  /// Lowest frequency step meeting the delay target for the given rate
  /// estimates.  Saturates at the top step when even maximum performance
  /// cannot meet the target (the paper's video clips hit this at arrival
  /// peaks).  Non-positive service estimates also return the top step (a
  /// safe default before the detectors warm up).
  ///
  /// `buffered_frames` is the current queue length, the third observable
  /// the paper's power manager watches ("the number of jobs in the queue").
  /// Backlog beyond the target's steady-state occupancy (lambda_U * d) adds
  /// drain capacity to the required service rate, so undetected sub-grid
  /// rate drift cannot grow the queue without bound.
  [[nodiscard]] std::size_t select_step(Hertz arrival_rate,
                                        Hertz service_rate_at_max,
                                        double buffered_frames = 0.0) const;

  /// The decode rate achieved at step `s` when the application decodes at
  /// `service_rate_at_max` on the top step (the "CPU rate" curve of
  /// Figure 9).
  [[nodiscard]] Hertz decode_rate_at(std::size_t step,
                                     Hertz service_rate_at_max) const;

  /// The arrival rate sustainable at step `s` while holding the delay
  /// target (the inverse reading of Figure 9: WLAN rate vs CPU frequency).
  [[nodiscard]] Hertz sustainable_arrival_rate_at(std::size_t step,
                                                  Hertz service_rate_at_max) const;

  [[nodiscard]] Seconds target_delay() const { return target_delay_; }
  [[nodiscard]] double service_cv2() const { return service_cv2_; }
  [[nodiscard]] const hw::Sa1100& cpu() const { return *cpu_; }
  [[nodiscard]] const PiecewiseLinear& performance_curve() const { return curve_; }

 private:
  const hw::Sa1100* cpu_;
  PiecewiseLinear curve_;
  Seconds target_delay_;
  double service_cv2_;
};

}  // namespace dvs::policy
