#include "policy/governor.hpp"

#include <utility>

#include "common/check.hpp"

namespace dvs::policy {

DvsGovernor::DvsGovernor(hw::SmartBadge& badge,
                         const workload::DecoderModel& decoder,
                         FrequencyPolicy policy,
                         detect::RateDetectorPtr arrival_detector,
                         detect::RateDetectorPtr service_detector)
    : DvsGovernor(badge, decoder, std::move(policy), std::move(arrival_detector),
                  std::move(service_detector), /*adaptive=*/true) {
  DVS_CHECK_MSG(arrival_detector_ && service_detector_,
                "DvsGovernor: adaptive governor needs both detectors");
}

DvsGovernor::DvsGovernor(hw::SmartBadge& badge,
                         const workload::DecoderModel& decoder,
                         FrequencyPolicy policy,
                         detect::RateDetectorPtr arrival_detector,
                         detect::RateDetectorPtr service_detector, bool adaptive)
    : Governor(badge),
      decoder_(&decoder),
      policy_(std::move(policy)),
      arrival_detector_(std::move(arrival_detector)),
      service_detector_(std::move(service_detector)) {
  (void)adaptive;
}

std::unique_ptr<DvsGovernor> DvsGovernor::max_performance(
    hw::SmartBadge& badge, const workload::DecoderModel& decoder,
    FrequencyPolicy policy) {
  // Private ctor: make_unique cannot reach it.
  return std::unique_ptr<DvsGovernor>(new DvsGovernor(
      badge, decoder, std::move(policy), nullptr, nullptr, /*adaptive=*/false));
}

Seconds DvsGovernor::initialize(Hertz arrival_rate, Hertz service_rate_at_max,
                                Seconds now) {
  if (adaptive()) {
    arrival_detector_->reset(arrival_rate);
    service_detector_->reset(service_rate_at_max);
    recompute();
  } else {
    set_desired_step(badge().cpu().num_steps() - 1);
  }
  return apply(now);
}

void DvsGovernor::on_arrival(Seconds now, Seconds interarrival,
                             double buffered_frames) {
  if (!adaptive()) return;
  last_queue_len_ = buffered_frames;
  if (interarrival.value() <= 0.0) return;  // coincident arrivals carry no rate info
  arrival_detector_->on_sample(now, interarrival);
  recompute();
}

void DvsGovernor::on_decode_complete(Seconds now, Seconds decode_time,
                                     MegaHertz during, double buffered_frames,
                                     Seconds frame_delay) {
  if (!adaptive()) return;
  last_queue_len_ = buffered_frames;
  const Seconds normalized = decoder_->normalize_to_max(decode_time, during);
  if (normalized.value() > 0.0) {
    service_detector_->on_sample(now, normalized);
  }
  if (watchdog_ && frame_delay.value() >= 0.0) {
    switch (watchdog_->on_frame(now, frame_delay, buffered_frames)) {
      case WatchdogAction::kEscalate:
        // The pre-fault history in the detector windows is what made the
        // estimates stale; flush it and re-seed from the current estimates
        // so post-fault samples dominate quickly.
        arrival_detector_->reset(arrival_detector_->current_rate());
        service_detector_->reset(service_detector_->current_rate());
        degraded_ = true;
        if (trace() != nullptr && trace()->active()) {
          trace()->record(now.value(),
                          obs::WatchdogEscalate{
                              frame_delay.value(), buffered_frames,
                              watchdog_->current_backoff().value()});
        }
        if (ledger() != nullptr) {
          ledger()->set_cause(obs::Cause::WatchdogEscalate);
        }
        if (flight() != nullptr) {
          flight()->record(now.value(), obs::FlightEventType::WatchdogEscalate,
                           0, static_cast<float>(frame_delay.value()),
                           static_cast<float>(buffered_frames));
          flight()->trigger(now.value(), "watchdog-escalate");
        }
        break;
      case WatchdogAction::kRecover:
        degraded_ = false;
        if (trace() != nullptr && trace()->active()) {
          trace()->record(now.value(),
                          obs::WatchdogRecover{
                              watchdog_->last_episode_length().value()});
        }
        if (ledger() != nullptr) {
          ledger()->set_cause(obs::Cause::WatchdogRecover);
        }
        if (flight() != nullptr) {
          flight()->record(
              now.value(), obs::FlightEventType::WatchdogRecover, 0,
              static_cast<float>(watchdog_->last_episode_length().value()),
              0.0F);
        }
        break;
      case WatchdogAction::kNone:
        break;
    }
  }
  recompute();
}

void DvsGovernor::enable_watchdog(const WatchdogConfig& cfg,
                                  Seconds target_delay) {
  if (!adaptive() || !cfg.enabled) return;
  watchdog_ = std::make_unique<Watchdog>(cfg, target_delay);
}

void DvsGovernor::recompute() {
  std::size_t step = policy_.select_step(arrival_detector_->current_rate(),
                                         service_detector_->current_rate(),
                                         last_queue_len_);
  if (degraded_) step = badge().cpu().num_steps() - 1;
  set_desired_step(step);
}

Hertz DvsGovernor::arrival_estimate() const {
  return adaptive() ? arrival_detector_->current_rate() : Hertz{0.0};
}

Hertz DvsGovernor::service_estimate_at_max() const {
  return adaptive() ? service_detector_->current_rate() : Hertz{0.0};
}

std::string DvsGovernor::detector_name() const {
  return adaptive() ? arrival_detector_->name() : "max";
}

}  // namespace dvs::policy
