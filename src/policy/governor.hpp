// The DVS governor: detectors + frequency policy, producing a desired CPU
// step.
//
// This is the run-time half of the paper's power manager while the system
// is active: "the PM checks if the rate of incoming or decoding frames has
// changed, and then adjusts the CPU frequency and voltage accordingly."
//
// The governor owns two detectors — one on frame interarrival times, one on
// decode times normalized to the top frequency step — and recomputes the
// desired step whenever either estimate moves.  The system simulation
// applies the desired step at decode boundaries (a decode in progress
// finishes at the frequency it started with), paying the hardware's switch
// latency through apply().
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "detect/detector.hpp"
#include "hw/smartbadge.hpp"
#include "obs/attribution.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/trace_recorder.hpp"
#include "policy/frequency_policy.hpp"
#include "policy/watchdog.hpp"
#include "workload/decoder_model.hpp"

namespace dvs::policy {

class DvsGovernor {
 public:
  /// An adaptive governor.  Both detectors must be non-null.
  DvsGovernor(hw::SmartBadge& badge, const workload::DecoderModel& decoder,
              FrequencyPolicy policy, detect::RateDetectorPtr arrival_detector,
              detect::RateDetectorPtr service_detector);

  /// The "Max" baseline: pins the CPU at the top step and ignores samples.
  static std::unique_ptr<DvsGovernor> max_performance(
      hw::SmartBadge& badge, const workload::DecoderModel& decoder,
      FrequencyPolicy policy);

  /// Seeds both detectors (e.g. with the first clip's nominal rates),
  /// recomputes the desired step, and applies it immediately (callers
  /// initialize while the device is idle, where an immediate switch is
  /// safe).  Returns the switch latency paid.
  Seconds initialize(Hertz arrival_rate, Hertz service_rate_at_max, Seconds now);

  /// Frame arrived at `now`, `interarrival` after the previous one;
  /// `buffered_frames` is the queue length after the push.
  void on_arrival(Seconds now, Seconds interarrival, double buffered_frames = 0.0);

  /// A frame finished decoding at `now`; `decode_time` is the pure decode
  /// duration, `during` the frequency it ran at, and `buffered_frames` the
  /// queue length after the departure.  `frame_delay` is the frame's total
  /// (queue + decode) delay and feeds the watchdog; pass a negative value
  /// when unknown (the watchdog then skips the frame).
  void on_decode_complete(Seconds now, Seconds decode_time, MegaHertz during,
                          double buffered_frames = 0.0,
                          Seconds frame_delay = Seconds{-1.0});

  /// Step the policy currently wants.
  [[nodiscard]] std::size_t desired_step() const { return desired_step_; }

  /// Commits the desired step to the hardware (called at decode
  /// boundaries).  Returns the switch latency paid (zero if unchanged).
  Seconds apply(Seconds now);

  [[nodiscard]] bool adaptive() const { return arrival_detector_ != nullptr; }
  [[nodiscard]] Hertz arrival_estimate() const;
  [[nodiscard]] Hertz service_estimate_at_max() const;
  [[nodiscard]] const FrequencyPolicy& policy() const { return policy_; }
  [[nodiscard]] const workload::DecoderModel& decoder() const { return *decoder_; }
  [[nodiscard]] std::string detector_name() const;

  /// Number of committed frequency switches.
  [[nodiscard]] int retune_count() const { return retunes_; }

  /// Attaches a trace recorder; apply() then emits a FreqCommit event for
  /// every committed switch.  May be null (tracing off).
  void set_trace(obs::TraceRecorder* trace) { trace_ = trace; }

  /// Attaches the attribution ledger: watchdog escalations/recoveries
  /// switch its cause, and committed steps update its frequency-step regime
  /// (after the commit, so the switch interval charges the old step).  May
  /// be null.
  void set_ledger(obs::AttributionLedger* ledger) { ledger_ = ledger; }

  /// Attaches the flight recorder: frequency commits and watchdog actions
  /// land in the ring, and an escalation triggers a dump.  May be null.
  void set_flight(obs::FlightRecorder* flight) { flight_ = flight; }

  /// Arms the graceful-degradation watchdog (adaptive governors only; a
  /// no-op for Max, which already runs at the top step).  While degraded
  /// the governor clamps the desired step to maximum and has reset its
  /// detectors; recovery hands control back to the frequency policy.
  void enable_watchdog(const WatchdogConfig& cfg, Seconds target_delay);

  /// Watchdog state, or null when not armed.
  [[nodiscard]] const Watchdog* watchdog() const { return watchdog_.get(); }

  /// True while the watchdog holds the governor at the top step.
  [[nodiscard]] bool degraded() const { return degraded_; }

  /// Installs a hardware-fault filter consulted by apply(): it receives
  /// (now, current step, desired step) and returns the step the hardware
  /// will actually take (e.g. the current one when a frequency transition
  /// fails).  Null clears the filter.
  using StepFilter =
      std::function<std::size_t(Seconds, std::size_t, std::size_t)>;
  void set_step_filter(StepFilter filter) { step_filter_ = std::move(filter); }

  /// Detector access for observability wiring (null for the Max governor).
  [[nodiscard]] detect::RateDetector* arrival_detector() {
    return arrival_detector_.get();
  }
  [[nodiscard]] detect::RateDetector* service_detector() {
    return service_detector_.get();
  }

 private:
  DvsGovernor(hw::SmartBadge& badge, const workload::DecoderModel& decoder,
              FrequencyPolicy policy, detect::RateDetectorPtr arrival_detector,
              detect::RateDetectorPtr service_detector, bool adaptive);

  void recompute();

  hw::SmartBadge* badge_;
  const workload::DecoderModel* decoder_;
  FrequencyPolicy policy_;
  detect::RateDetectorPtr arrival_detector_;
  detect::RateDetectorPtr service_detector_;
  std::size_t desired_step_;
  double last_queue_len_ = 0.0;
  int retunes_ = 0;
  obs::TraceRecorder* trace_ = nullptr;
  obs::AttributionLedger* ledger_ = nullptr;
  obs::FlightRecorder* flight_ = nullptr;
  std::unique_ptr<Watchdog> watchdog_;
  bool degraded_ = false;
  StepFilter step_filter_;
};

}  // namespace dvs::policy
