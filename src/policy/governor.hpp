// The paper's DVS governor: detectors + frequency policy, producing a
// desired CPU step through the policy::Governor interface.
//
// This is the run-time half of the paper's power manager while the system
// is active: "the PM checks if the rate of incoming or decoding frames has
// changed, and then adjusts the CPU frequency and voltage accordingly."
//
// The governor owns two detectors — one on frame interarrival times, one on
// decode times normalized to the top frequency step — and recomputes the
// desired step whenever either estimate moves.  The system simulation
// applies the desired step at decode boundaries (a decode in progress
// finishes at the frequency it started with), paying the hardware's switch
// latency through the base class's apply().
//
// Registered with the GovernorFactory as "paper" (adaptive) and "max" (the
// pinned top-step baseline built by max_performance()).
#pragma once

#include <memory>
#include <string>

#include "detect/detector.hpp"
#include "hw/smartbadge.hpp"
#include "policy/frequency_policy.hpp"
#include "policy/governor_base.hpp"
#include "policy/watchdog.hpp"
#include "workload/decoder_model.hpp"

namespace dvs::policy {

class DvsGovernor : public Governor {
 public:
  /// An adaptive governor.  Both detectors must be non-null.
  DvsGovernor(hw::SmartBadge& badge, const workload::DecoderModel& decoder,
              FrequencyPolicy policy, detect::RateDetectorPtr arrival_detector,
              detect::RateDetectorPtr service_detector);

  /// The "Max" baseline: pins the CPU at the top step and ignores samples.
  static std::unique_ptr<DvsGovernor> max_performance(
      hw::SmartBadge& badge, const workload::DecoderModel& decoder,
      FrequencyPolicy policy);

  Seconds initialize(Hertz arrival_rate, Hertz service_rate_at_max,
                     Seconds now) override;
  void on_arrival(Seconds now, Seconds interarrival,
                  double buffered_frames = 0.0) override;
  void on_decode_complete(Seconds now, Seconds decode_time, MegaHertz during,
                          double buffered_frames = 0.0,
                          Seconds frame_delay = Seconds{-1.0}) override;

  [[nodiscard]] bool adaptive() const override {
    return arrival_detector_ != nullptr;
  }
  [[nodiscard]] Hertz arrival_estimate() const override;
  [[nodiscard]] Hertz service_estimate_at_max() const override;
  [[nodiscard]] const FrequencyPolicy& policy() const { return policy_; }
  [[nodiscard]] const workload::DecoderModel& decoder() const { return *decoder_; }
  [[nodiscard]] std::string detector_name() const override;

  /// Arms the graceful-degradation watchdog (adaptive governors only; a
  /// no-op for Max, which already runs at the top step).  While degraded
  /// the governor clamps the desired step to maximum and has reset its
  /// detectors; recovery hands control back to the frequency policy.
  void enable_watchdog(const WatchdogConfig& cfg, Seconds target_delay) override;

  /// Watchdog state, or null when not armed.
  [[nodiscard]] const Watchdog* watchdog() const override {
    return watchdog_.get();
  }

  /// True while the watchdog holds the governor at the top step.
  [[nodiscard]] bool degraded() const override { return degraded_; }

  /// Detector access for observability wiring (null for the Max governor).
  [[nodiscard]] detect::RateDetector* arrival_detector() override {
    return arrival_detector_.get();
  }
  [[nodiscard]] detect::RateDetector* service_detector() override {
    return service_detector_.get();
  }

 private:
  DvsGovernor(hw::SmartBadge& badge, const workload::DecoderModel& decoder,
              FrequencyPolicy policy, detect::RateDetectorPtr arrival_detector,
              detect::RateDetectorPtr service_detector, bool adaptive);

  void recompute();

  const workload::DecoderModel* decoder_;
  FrequencyPolicy policy_;
  detect::RateDetectorPtr arrival_detector_;
  detect::RateDetectorPtr service_detector_;
  double last_queue_len_ = 0.0;
  std::unique_ptr<Watchdog> watchdog_;
  bool degraded_ = false;
};

}  // namespace dvs::policy
