#include "policy/governor_base.hpp"

namespace dvs::policy {

Seconds Governor::apply(Seconds now) {
  std::size_t target = desired_step_;
  if (step_filter_ && target != badge_->cpu_step()) {
    target = step_filter_(now, badge_->cpu_step(), target);
  }
  if (target == badge_->cpu_step()) return Seconds{0.0};
  ++retunes_;
  const Seconds latency = badge_->set_cpu_step(target, now);
  if (trace_ != nullptr && trace_->active()) {
    trace_->record(now.value(),
                   obs::FreqCommit{badge_->cpu_step(),
                                   badge_->cpu_frequency().value(),
                                   badge_->cpu_voltage().value(),
                                   latency.value()});
  }
  if (flight_ != nullptr) {
    flight_->record(now.value(), obs::FlightEventType::FreqCommit,
                    static_cast<std::uint16_t>(badge_->cpu_step()),
                    static_cast<float>(badge_->cpu_frequency().value()),
                    static_cast<float>(latency.value()));
  }
  // After the commit: the accrual inside set_cpu_step closed the interval
  // at the *old* step; everything from here on runs at the new one.
  if (ledger_ != nullptr) ledger_->set_freq_step(badge_->cpu_step());
  return latency;
}

}  // namespace dvs::policy
