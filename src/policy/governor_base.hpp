// The abstract governor interface: the run-time half of the power manager
// while the system is active, factored so any policy — the paper's
// detector-driven controller, a learned policy, a pinned baseline — can
// drive the engine through the same five entry points:
//
//   initialize / on_arrival / on_decode_complete / desired_step / apply
//
// The base class owns everything that is policy-invariant: the hardware
// handle, the committed-step bookkeeping, and the observability attach
// points (trace recorder, attribution ledger, flight recorder, hardware
// step filter).  apply() is the single commit path — every implementation
// pays the same switch latency, emits the same FreqCommit events, and
// updates the ledger's frequency regime the same way, so the attribution /
// flight-recorder / telemetry hooks keep working for any policy.
//
// Concrete policies are constructed through the string-keyed
// GovernorFactory (policy/governor_factory.hpp), never by the engine
// naming a concrete type.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "detect/detector.hpp"
#include "hw/smartbadge.hpp"
#include "obs/attribution.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/trace_recorder.hpp"
#include "policy/watchdog.hpp"

namespace dvs::policy {

class Governor {
 public:
  explicit Governor(hw::SmartBadge& badge)
      : badge_(&badge), desired_step_(badge.cpu().num_steps() - 1) {}
  virtual ~Governor() = default;
  Governor(const Governor&) = delete;
  Governor& operator=(const Governor&) = delete;

  /// Seeds the policy's estimates (e.g. with the first clip's nominal
  /// rates), recomputes the desired step, and applies it immediately
  /// (callers initialize while the device is idle, where an immediate
  /// switch is safe).  Returns the switch latency paid.
  virtual Seconds initialize(Hertz arrival_rate, Hertz service_rate_at_max,
                             Seconds now) = 0;

  /// Frame arrived at `now`, `interarrival` after the previous one;
  /// `buffered_frames` is the queue length after the push.
  virtual void on_arrival(Seconds now, Seconds interarrival,
                          double buffered_frames = 0.0) = 0;

  /// A frame finished decoding at `now`; `decode_time` is the pure decode
  /// duration, `during` the frequency it ran at, and `buffered_frames` the
  /// queue length after the departure.  `frame_delay` is the frame's total
  /// (queue + decode) delay; pass a negative value when unknown.
  virtual void on_decode_complete(Seconds now, Seconds decode_time,
                                  MegaHertz during,
                                  double buffered_frames = 0.0,
                                  Seconds frame_delay = Seconds{-1.0}) = 0;

  /// Step the policy currently wants.
  [[nodiscard]] std::size_t desired_step() const { return desired_step_; }

  /// Commits the desired step to the hardware (called at decode
  /// boundaries).  Returns the switch latency paid (zero if unchanged).
  /// Shared across all policies: this is the one place steps are committed,
  /// faults are filtered, and FreqCommit observability is emitted.
  Seconds apply(Seconds now);

  /// True when the policy adapts to observed samples (false for pinned
  /// baselines, which the engine need not feed detector truth).
  [[nodiscard]] virtual bool adaptive() const = 0;
  [[nodiscard]] virtual Hertz arrival_estimate() const = 0;
  [[nodiscard]] virtual Hertz service_estimate_at_max() const = 0;
  /// Short name of the rate estimator driving the policy ("change-point",
  /// "max", "qdpm", ...) for traces and reports.
  [[nodiscard]] virtual std::string detector_name() const = 0;

  /// Number of committed frequency switches.
  [[nodiscard]] int retune_count() const { return retunes_; }

  /// Attaches a trace recorder; apply() then emits a FreqCommit event for
  /// every committed switch.  May be null (tracing off).
  void set_trace(obs::TraceRecorder* trace) { trace_ = trace; }

  /// Attaches the attribution ledger: committed steps update its
  /// frequency-step regime (after the commit, so the switch interval
  /// charges the old step).  May be null.
  void set_ledger(obs::AttributionLedger* ledger) { ledger_ = ledger; }

  /// Attaches the flight recorder: frequency commits land in the ring.
  /// May be null.
  void set_flight(obs::FlightRecorder* flight) { flight_ = flight; }

  /// Arms the graceful-degradation watchdog.  Policies without a
  /// degradation story ignore it.
  virtual void enable_watchdog(const WatchdogConfig& cfg,
                               Seconds target_delay) {
    (void)cfg;
    (void)target_delay;
  }

  /// Watchdog state, or null when not armed / not supported.
  [[nodiscard]] virtual const Watchdog* watchdog() const { return nullptr; }

  /// True while a watchdog holds the policy at the top step.
  [[nodiscard]] virtual bool degraded() const { return false; }

  /// Installs a hardware-fault filter consulted by apply(): it receives
  /// (now, current step, desired step) and returns the step the hardware
  /// will actually take (e.g. the current one when a frequency transition
  /// fails).  Null clears the filter.
  using StepFilter =
      std::function<std::size_t(Seconds, std::size_t, std::size_t)>;
  void set_step_filter(StepFilter filter) { step_filter_ = std::move(filter); }

  /// Detector access for observability wiring.  Null for policies that do
  /// not run detect::RateDetector instances (pinned baselines, learned
  /// policies with internal estimators) — callers must handle null.
  [[nodiscard]] virtual detect::RateDetector* arrival_detector() {
    return nullptr;
  }
  [[nodiscard]] virtual detect::RateDetector* service_detector() {
    return nullptr;
  }

 protected:
  [[nodiscard]] hw::SmartBadge& badge() { return *badge_; }
  [[nodiscard]] const hw::SmartBadge& badge() const { return *badge_; }
  void set_desired_step(std::size_t step) { desired_step_ = step; }
  [[nodiscard]] obs::TraceRecorder* trace() const { return trace_; }
  [[nodiscard]] obs::AttributionLedger* ledger() const { return ledger_; }
  [[nodiscard]] obs::FlightRecorder* flight() const { return flight_; }

 private:
  hw::SmartBadge* badge_;
  std::size_t desired_step_;
  int retunes_ = 0;
  obs::TraceRecorder* trace_ = nullptr;
  obs::AttributionLedger* ledger_ = nullptr;
  obs::FlightRecorder* flight_ = nullptr;
  StepFilter step_filter_;
};

using GovernorPtr = std::unique_ptr<Governor>;

}  // namespace dvs::policy
