#include "policy/governor_factory.hpp"

#include <stdexcept>
#include <utility>

#include "policy/governor.hpp"
#include "policy/qdpm_governor.hpp"

namespace dvs::policy {

namespace {

GovernorPtr build_paper(const GovernorContext& ctx) {
  if (!ctx.make_arrival_detector || !ctx.make_service_detector) {
    // No detector axis: degenerate to the pinned baseline, matching the
    // engine's historical behavior for the Max detector kind.
    return DvsGovernor::max_performance(ctx.badge, ctx.decoder,
                                        ctx.make_frequency_policy());
  }
  // Build in declaration order — deterministic even if a detector factory
  // ever consumes shared state.
  detect::RateDetectorPtr arrival = ctx.make_arrival_detector();
  detect::RateDetectorPtr service = ctx.make_service_detector();
  if (!arrival || !service) {
    return DvsGovernor::max_performance(ctx.badge, ctx.decoder,
                                        ctx.make_frequency_policy());
  }
  return std::make_unique<DvsGovernor>(ctx.badge, ctx.decoder,
                                       ctx.make_frequency_policy(),
                                       std::move(arrival), std::move(service));
}

GovernorPtr build_max(const GovernorContext& ctx) {
  return DvsGovernor::max_performance(ctx.badge, ctx.decoder,
                                      ctx.make_frequency_policy());
}

GovernorPtr build_qdpm(const GovernorContext& ctx) {
  return std::make_unique<QdpmGovernor>(ctx.badge, ctx.decoder,
                                        ctx.target_delay, ctx.seed);
}

}  // namespace

GovernorFactory::GovernorFactory() {
  register_policy("paper",
                  "the paper's detector-driven DVS governor (M/M/1 or M/G/1"
                  " delay inversion, Eq. 5)",
                  build_paper);
  register_policy("max",
                  "pin the CPU at the top frequency step (no DVS baseline)",
                  build_max);
  register_policy("qdpm",
                  "tabular Q-learning DVS: load/queue state, per-step"
                  " actions, energy-delay reward (Q-DPM lineage)",
                  build_qdpm);
}

GovernorFactory& GovernorFactory::instance() {
  static GovernorFactory factory;
  return factory;
}

void GovernorFactory::register_policy(std::string name, std::string description,
                                      Builder builder) {
  auto [it, inserted] = map_.insert_or_assign(
      name, Registration{std::move(description), std::move(builder)});
  if (inserted) order_.push_back(std::move(name));
}

bool GovernorFactory::has(std::string_view name) const {
  return map_.find(std::string(name)) != map_.end();
}

GovernorPtr GovernorFactory::create(std::string_view name,
                                    const GovernorContext& ctx) const {
  const auto it = map_.find(std::string(name));
  if (it == map_.end()) {
    std::string known;
    for (const std::string& n : order_) {
      if (!known.empty()) known += ", ";
      known += n;
    }
    throw std::invalid_argument("GovernorFactory: unknown policy '" +
                                std::string(name) + "' (registered: " + known +
                                ")");
  }
  return it->second.builder(ctx);
}

std::vector<GovernorFactory::Entry> GovernorFactory::entries() const {
  std::vector<Entry> out;
  out.reserve(order_.size());
  for (const std::string& n : order_) {
    out.push_back(Entry{n, map_.at(n).description});
  }
  return out;
}

}  // namespace dvs::policy
