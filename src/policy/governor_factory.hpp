// String-keyed governor construction: the registry behind `--policy` and
// the scenario grid's policy axis.
//
// The engine never names a concrete governor type.  It fills a
// GovernorContext — the hardware handle, the decoder model, the delay
// target, optional detector builders, and a deterministic seed substream —
// and asks the factory for a policy by name.  Builtins:
//
//   "paper"  the paper's detector-driven DVS governor (DvsGovernor); falls
//            back to the pinned top-step baseline when the caller supplies
//            no detector builders (the engine's "max" detector axis)
//   "max"    the pinned top-step baseline, always
//   "qdpm"   tabular Q-learning DVS (QdpmGovernor)
//
// Registration is open: tests or future policies call register_policy()
// with their own builder.  Registration is not thread-safe; register
// before spawning sweep workers (the builtins are registered on first
// instance() use).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/units.hpp"
#include "detect/detector.hpp"
#include "hw/smartbadge.hpp"
#include "policy/frequency_policy.hpp"
#include "policy/governor_base.hpp"
#include "workload/decoder_model.hpp"

namespace dvs::policy {

/// Everything a governor builder may need, filled by the caller per media
/// context.  Detector builders are thunks so the policy layer never sees
/// the engine's DetectorKind axis; they are null when the caller wants a
/// detector-free baseline (builders must tolerate that).
struct GovernorContext {
  hw::SmartBadge& badge;
  const workload::DecoderModel& decoder;
  Seconds target_delay{0.1};
  double service_cv2 = 1.0;
  /// Build a fresh interarrival-rate / decode-rate detector; either may be
  /// null (no detector axis, e.g. the engine's Max kind).
  std::function<detect::RateDetectorPtr()> make_arrival_detector{};
  std::function<detect::RateDetectorPtr()> make_service_detector{};
  /// Deterministic substream for stochastic policies (Q-DPM exploration).
  std::uint64_t seed = 0;

  [[nodiscard]] FrequencyPolicy make_frequency_policy() const {
    return FrequencyPolicy{badge.cpu(),
                           decoder.performance_curve(badge.cpu()),
                           target_delay, service_cv2};
  }
};

class GovernorFactory {
 public:
  using Builder = std::function<GovernorPtr(const GovernorContext&)>;

  struct Entry {
    std::string name;
    std::string description;
  };

  /// The process-wide registry, builtins pre-registered.
  static GovernorFactory& instance();

  /// Registers (or replaces) a named policy.  Not thread-safe; call before
  /// concurrent create() use.
  void register_policy(std::string name, std::string description,
                       Builder builder);

  [[nodiscard]] bool has(std::string_view name) const;

  /// Builds the named policy.  Throws std::invalid_argument for unknown
  /// names, listing the registered ones.
  [[nodiscard]] GovernorPtr create(std::string_view name,
                                   const GovernorContext& ctx) const;

  /// Registered policies in registration order (builtins first) — the
  /// `dvs_sim list policies` listing.
  [[nodiscard]] std::vector<Entry> entries() const;

 private:
  GovernorFactory();

  struct Registration {
    std::string description;
    Builder builder;
  };
  std::vector<std::string> order_;
  std::unordered_map<std::string, Registration> map_;
};

}  // namespace dvs::policy
