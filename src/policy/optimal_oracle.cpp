#include "policy/optimal_oracle.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/check.hpp"

namespace dvs::policy {

namespace {

/// A staircase corner in cumulative-work coordinates.
struct Corner {
  double t = 0.0;
  double w = 0.0;
};

constexpr double kEps = 1e-12;

}  // namespace

void OptimalOracle::append_jobs(const workload::FrameTrace& trace,
                                const workload::DecoderModel& decoder,
                                Seconds target_delay,
                                std::vector<OracleJob>& out) {
  const double mcycles_per_mean_frame = decoder.cpu_megacycles();
  for (const workload::TraceFrame& f : trace.frames()) {
    OracleJob j;
    j.arrival = f.arrival;
    j.deadline = f.arrival + target_delay;
    j.megacycles = f.work * mcycles_per_mean_frame;
    out.push_back(j);
  }
}

OracleSchedule OptimalOracle::solve(std::vector<OracleJob> jobs) const {
  OracleSchedule out;
  jobs.erase(std::remove_if(jobs.begin(), jobs.end(),
                            [](const OracleJob& j) {
                              return j.megacycles <= 0.0;
                            }),
             jobs.end());
  if (jobs.empty()) return out;
  for (const OracleJob& j : jobs) {
    DVS_CHECK_MSG(j.deadline.value() > j.arrival.value(),
                  "OptimalOracle: every deadline must follow its arrival");
  }

  // Demand floor A(t): cumulative work whose deadline has passed.  One
  // corner per distinct deadline, carrying the cumulative sum through it.
  std::vector<std::pair<double, double>> by_deadline;
  by_deadline.reserve(jobs.size());
  for (const OracleJob& j : jobs) {
    by_deadline.emplace_back(j.deadline.value(), j.megacycles);
  }
  std::sort(by_deadline.begin(), by_deadline.end());
  std::vector<Corner> floor_c;
  floor_c.reserve(by_deadline.size());
  double acc = 0.0;
  for (const auto& [t, mc] : by_deadline) {
    acc += mc;
    if (!floor_c.empty() && floor_c.back().t == t) {
      floor_c.back().w = acc;
    } else {
      floor_c.push_back(Corner{t, acc});
    }
  }
  const double total = acc;

  // Arrival ceiling F(t): cumulative work released so far.  The binding
  // corner sits just *before* each jump: at arrival time t the path may be
  // at most the work arrived strictly earlier.
  std::vector<std::pair<double, double>> by_arrival;
  by_arrival.reserve(jobs.size());
  for (const OracleJob& j : jobs) {
    by_arrival.emplace_back(j.arrival.value(), j.megacycles);
  }
  std::sort(by_arrival.begin(), by_arrival.end());
  std::vector<Corner> ceil_c;
  ceil_c.reserve(by_arrival.size());
  acc = 0.0;
  for (const auto& [t, mc] : by_arrival) {
    if (!ceil_c.empty() && ceil_c.back().t == t) {
      // same jump instant: the pre-jump ceiling is unchanged
    } else {
      ceil_c.push_back(Corner{t, acc});
    }
    acc += mc;
  }

  // Taut string walk: from each confirmed anchor, scan remaining corners
  // in time order tracking the steepest floor requirement and the
  // shallowest ceiling limit.  The first conflict confirms the next path
  // vertex; no conflict means the steepest floor corner is next.
  double t0 = by_arrival.front().first;
  double w0 = 0.0;
  std::vector<Corner> anchors{{t0, w0}};
  std::size_t floor_from = 0;
  std::size_t ceil_from = 0;
  constexpr std::size_t npos = std::numeric_limits<std::size_t>::max();
  while (w0 < total - kEps) {
    while (floor_from < floor_c.size() &&
           (floor_c[floor_from].t <= t0 || floor_c[floor_from].w <= w0 + kEps)) {
      ++floor_from;
    }
    while (ceil_from < ceil_c.size() && ceil_c[ceil_from].t <= t0) {
      ++ceil_from;
    }
    double best_low = -std::numeric_limits<double>::infinity();
    std::size_t best_low_i = npos;
    double best_up = std::numeric_limits<double>::infinity();
    std::size_t best_up_i = npos;
    std::size_t next = npos;  // confirmed anchor: index into floor_c/ceil_c
    bool next_is_floor = true;
    std::size_t i = floor_from;
    std::size_t j = ceil_from;
    while (i < floor_c.size() || j < ceil_c.size()) {
      const bool take_floor =
          j >= ceil_c.size() ||
          (i < floor_c.size() && floor_c[i].t <= ceil_c[j].t);
      if (take_floor) {
        if (floor_c[i].w > w0 + kEps) {
          const double s = (floor_c[i].w - w0) / (floor_c[i].t - t0);
          if (s > best_up) {
            next = best_up_i;
            next_is_floor = false;
            break;
          }
          if (s >= best_low) {  // >= : ties advance to the later corner
            best_low = s;
            best_low_i = i;
          }
        }
        ++i;
      } else {
        const double s = (ceil_c[j].w - w0) / (ceil_c[j].t - t0);
        if (s < best_low) {
          next = best_low_i;
          next_is_floor = true;
          break;
        }
        if (s <= best_up) {
          best_up = s;
          best_up_i = j;
        }
        ++j;
      }
    }
    if (next == npos) {
      // Conflict-free: the string heads for the steepest outstanding
      // demand corner (classic YDS critical interval).
      DVS_CHECK_MSG(best_low_i != npos, "OptimalOracle: no demand ahead");
      next = best_low_i;
      next_is_floor = true;
    }
    const Corner& c = next_is_floor ? floor_c[next] : ceil_c[next];
    DVS_CHECK_MSG(c.t > t0, "OptimalOracle: non-advancing anchor");
    t0 = c.t;
    w0 = c.w;
    anchors.push_back(c);
  }

  // Segments, snapping and energy.
  out.segments.reserve(anchors.size() - 1);
  for (std::size_t k = 0; k + 1 < anchors.size(); ++k) {
    const double dt = anchors[k + 1].t - anchors[k].t;
    const double dw = anchors[k + 1].w - anchors[k].w;
    if (dt <= kEps) continue;
    OracleSegment seg;
    seg.begin = Seconds{anchors[k].t};
    seg.end = Seconds{anchors[k + 1].t};
    seg.speed = dw / dt;
    if (dw > kEps) {
      const MegaHertz f{seg.speed};
      out.continuous_energy +=
          energy(cpu_.active_power(f, cpu_.min_voltage_for(f)), Seconds{dt});
      seg.step = cpu_.step_at_or_above(f);
      const double f_step = cpu_.frequency_at(seg.step).value();
      // At the (>=) discrete speed the same cycles take dw/f_step seconds;
      // the remainder of the segment is idle and charged to the policy
      // being scored, not to the bound.
      out.discrete_energy +=
          energy(cpu_.active_power_at(seg.step), Seconds{dw / f_step});
      out.busy_time += Seconds{dt};
      out.total_megacycles += dw;
    }
    out.segments.push_back(seg);
  }
  return out;
}

}  // namespace dvs::policy
