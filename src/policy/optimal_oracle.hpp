// Offline-optimal voltage scheduling: the YDS lineage (Yao/Demers/Shenker;
// Li/Yao/Yuan's O(n^2) continuous-schedule computation, PAPERS.md).
//
// Given the full trace post-hoc — every frame's arrival time, cycle demand
// and deadline (arrival + delay target) — the minimum-energy continuous
// speed schedule is the *taut string* threaded between two staircases of
// cumulative work: the demand floor A(t) (work whose deadline has passed)
// and the arrival ceiling F(t) (work that has arrived).  Convexity of
// power in speed makes the shortest admissible cumulative-work path the
// cheapest one; its slope is the optimal speed.  The solver walks the
// corridor anchor-by-anchor (each anchor scan is linear in the remaining
// corners: O(n^2) worst case), then snaps each constant-speed segment UP
// to the processor's discrete frequency/voltage table to produce a
// realizable per-run lower-bound energy.
//
// SweepRunner solves this once per workload asset (serially, before
// dispatch) and reports each policy's competitive ratio: measured CPU
// energy over the oracle's discrete-step energy.  An online policy that
// honors the delay target cannot beat the oracle, so ratios land >= 1; a
// ratio near 1 means the policy is extracting nearly all the DVS headroom
// the trace offers.
#pragma once

#include <cstddef>
#include <vector>

#include "common/units.hpp"
#include "hw/sa1100.hpp"
#include "workload/decoder_model.hpp"
#include "workload/trace.hpp"

namespace dvs::policy {

/// One piece of offline work: `megacycles` of CPU demand released at
/// `arrival` and due by `deadline`.
struct OracleJob {
  Seconds arrival{0.0};
  Seconds deadline{0.0};
  double megacycles = 0.0;
};

/// A constant-speed stretch of the optimal schedule.  Speed is in
/// megacycles/s (numerically MHz); zero-speed segments are idle gaps.
struct OracleSegment {
  Seconds begin{0.0};
  Seconds end{0.0};
  double speed = 0.0;
  std::size_t step = 0;  ///< discrete step covering `speed` (0 when idle)
};

struct OracleSchedule {
  std::vector<OracleSegment> segments;
  /// Energy of the continuous schedule at each segment's exact speed and
  /// minimum feasible voltage — the unconstrained lower bound.
  Joules continuous_energy{0.0};
  /// Energy after snapping each segment up to the discrete step table —
  /// the realizable lower bound the competitive ratio divides by.
  Joules discrete_energy{0.0};
  Seconds busy_time{0.0};
  double total_megacycles = 0.0;
};

class OptimalOracle {
 public:
  explicit OptimalOracle(hw::Sa1100 cpu) : cpu_(std::move(cpu)) {}

  /// Solves the minimum-energy schedule.  Jobs need not be sorted; jobs
  /// with non-positive cycle demand are dropped.  Every deadline must be
  /// strictly after its arrival.  An empty job list yields an empty
  /// schedule with zero energy.
  [[nodiscard]] OracleSchedule solve(std::vector<OracleJob> jobs) const;

  /// Frames of one trace as oracle jobs: cycle demand is the frame's work
  /// multiplier times the decoder's per-mean-frame CPU megacycles, the
  /// deadline is arrival + target_delay.  Appends to `out` so a session's
  /// items can accumulate into one problem.
  static void append_jobs(const workload::FrameTrace& trace,
                          const workload::DecoderModel& decoder,
                          Seconds target_delay, std::vector<OracleJob>& out);

  [[nodiscard]] const hw::Sa1100& cpu() const { return cpu_; }

 private:
  hw::Sa1100 cpu_;
};

}  // namespace dvs::policy
