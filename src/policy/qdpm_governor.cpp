#include "policy/qdpm_governor.hpp"

#include <algorithm>
#include <cmath>

namespace dvs::policy {

namespace {
// Substream tag separating Q-DPM exploration draws from every other
// consumer of the run seed (dpm policies, fault injector, wakeup draws).
constexpr std::uint64_t kQdpmStream = 0x71d9aULL;
// Utilization above which everything maps to the top load bin; >1 keeps
// resolution around the saturation knee instead of clipping at rho = 1.
constexpr double kMaxLoad = 1.25;
// Cap on the per-frame delay penalty so one pathological frame cannot
// blow up the Q-values.
constexpr double kMaxPenalty = 10.0;
}  // namespace

QdpmGovernor::QdpmGovernor(hw::SmartBadge& badge,
                           const workload::DecoderModel& decoder,
                           Seconds target_delay, std::uint64_t seed, Config cfg)
    : Governor(badge),
      decoder_(&decoder),
      cfg_(cfg),
      target_delay_(target_delay),
      rng_(mix_seed(seed, kQdpmStream)),
      num_actions_(badge.cpu().num_steps()),
      q_(cfg.load_bins * cfg.queue_bins * badge.cpu().num_steps(), 0.0),
      epsilon_(cfg.epsilon0) {}

QdpmGovernor::QdpmGovernor(hw::SmartBadge& badge,
                           const workload::DecoderModel& decoder,
                           Seconds target_delay, std::uint64_t seed)
    : QdpmGovernor(badge, decoder, target_delay, seed, Config{}) {}

std::size_t QdpmGovernor::state_of(double buffered_frames) const {
  double rho = kMaxLoad;
  if (service_rate_max_ > 0.0) {
    rho = std::min(kMaxLoad, arrival_rate_ / service_rate_max_);
  }
  std::size_t load = static_cast<std::size_t>(
      rho / kMaxLoad * static_cast<double>(cfg_.load_bins));
  load = std::min(load, cfg_.load_bins - 1);
  const std::size_t queue = std::min(
      static_cast<std::size_t>(std::max(0.0, buffered_frames)),
      cfg_.queue_bins - 1);
  return load * cfg_.queue_bins + queue;
}

std::size_t QdpmGovernor::greedy_action(std::size_t state) const {
  // Scan from the top step down so an untrained (all-zero) table plays it
  // safe at maximum performance; the energy term then teaches it to relax.
  std::size_t best = num_actions_ - 1;
  double best_q = q_[state * num_actions_ + best];
  for (std::size_t a = num_actions_ - 1; a-- > 0;) {
    const double qa = q_[state * num_actions_ + a];
    if (qa > best_q) {
      best_q = qa;
      best = a;
    }
  }
  return best;
}

void QdpmGovernor::decide(std::size_t state) {
  std::size_t action;
  if (state % cfg_.queue_bins == cfg_.queue_bins - 1) {
    // Saturation backstop: with the queue bin pegged, exploration must not
    // pick a slow step — a single slow decode under overload digs a backlog
    // the learner then pays for across many frames.  Pin the top step; the
    // Q-update still credits it, so "run flat out when saturated" is also
    // what the table converges to.  No epsilon decay here: a backstop frame
    // is not an eps-greedy decision, and a sustained overload burst must
    // not anneal exploration to the floor before learning ever happens.
    action = num_actions_ - 1;
  } else {
    if (rng_.uniform() < epsilon_) {
      action = static_cast<std::size_t>(rng_.uniform_index(num_actions_));
    } else {
      action = greedy_action(state);
    }
    epsilon_ = std::max(cfg_.epsilon_min, epsilon_ * cfg_.epsilon_decay);
  }
  prev_state_ = state;
  prev_action_ = action;
  has_prev_ = true;
  ++decisions_;
  set_desired_step(action);
}

Seconds QdpmGovernor::initialize(Hertz arrival_rate, Hertz service_rate_at_max,
                                 Seconds now) {
  arrival_rate_ = std::max(0.0, arrival_rate.value());
  service_rate_max_ = std::max(0.0, service_rate_at_max.value());
  // Keep the learned table and epsilon across item switches — the point of
  // a learner is to carry experience — but restart the decision chain so
  // the first post-switch reward is not credited to a stale state.
  has_prev_ = false;
  set_desired_step(greedy_action(state_of(0.0)));
  return apply(now);
}

void QdpmGovernor::on_arrival(Seconds now, Seconds interarrival,
                              double buffered_frames) {
  (void)now;
  (void)buffered_frames;
  if (interarrival.value() <= 0.0) return;
  const double sample = 1.0 / interarrival.value();
  arrival_rate_ += cfg_.ema_gain * (sample - arrival_rate_);
}

void QdpmGovernor::on_decode_complete(Seconds now, Seconds decode_time,
                                      MegaHertz during, double buffered_frames,
                                      Seconds frame_delay) {
  (void)now;
  const Seconds normalized = decoder_->normalize_to_max(decode_time, during);
  if (normalized.value() > 0.0) {
    const double sample = 1.0 / normalized.value();
    service_rate_max_ += cfg_.ema_gain * (sample - service_rate_max_);
  }
  const std::size_t state = state_of(buffered_frames);
  if (has_prev_) {
    // Reward the decision that governed this frame: cheap steps are good,
    // delay-target overruns are not.
    double penalty = 0.0;
    if (frame_delay.value() >= 0.0 && target_delay_.value() > 0.0) {
      penalty = cfg_.delay_penalty *
                std::max(0.0, frame_delay.value() / target_delay_.value() - 1.0);
      penalty = std::min(penalty, kMaxPenalty);
    }
    const double reward =
        -badge().cpu().energy_per_cycle_ratio(prev_action_) - penalty;
    double& q = q_[prev_state_ * num_actions_ + prev_action_];
    const double best_next = q_[state * num_actions_ + greedy_action(state)];
    q += cfg_.alpha * (reward + cfg_.gamma * best_next - q);
  }
  decide(state);
}

}  // namespace dvs::policy
