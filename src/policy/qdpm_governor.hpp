// Q-DPM: a model-free tabular Q-learning DVS policy.
//
// Where the paper's governor inverts a queueing formula, this policy
// learns the frequency-step choice online (Q-DPM lineage, PAPERS.md): the
// state is (quantized utilization at the top step, quantized queue
// length), the actions are the CPU's frequency steps, and the reward
// trades the step's energy-per-cycle ratio (V/Vmax)^2 against delay-target
// violations.  It needs no TISMDP solve, no detector characterization, and
// no queueing model — which is exactly what makes it a good stress of the
// policy::Governor interface: the engine wiring must not assume detectors
// exist.
//
// Exploration draws come from a dedicated Rng seeded through the shared
// mix_seed substream discipline, so runs are bit-reproducible and
// jobs-count invariant.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "hw/smartbadge.hpp"
#include "policy/governor_base.hpp"
#include "workload/decoder_model.hpp"

namespace dvs::policy {

class QdpmGovernor final : public Governor {
 public:
  struct Config {
    double alpha = 0.15;          ///< Q-learning rate
    double gamma = 0.9;           ///< discount factor
    double epsilon0 = 0.2;        ///< initial exploration probability
    double epsilon_min = 0.02;    ///< exploration floor
    double epsilon_decay = 0.998; ///< multiplicative decay per decision
    double delay_penalty = 4.0;   ///< reward weight on delay/target overrun
    double ema_gain = 0.05;       ///< internal arrival/service estimators
    std::size_t load_bins = 8;    ///< utilization quantization
    std::size_t queue_bins = 5;   ///< queue-length quantization
  };

  QdpmGovernor(hw::SmartBadge& badge, const workload::DecoderModel& decoder,
               Seconds target_delay, std::uint64_t seed, Config cfg);
  /// Default-Config overload (a default argument would need the nested
  /// aggregate complete before the enclosing class is).
  QdpmGovernor(hw::SmartBadge& badge, const workload::DecoderModel& decoder,
               Seconds target_delay, std::uint64_t seed);

  Seconds initialize(Hertz arrival_rate, Hertz service_rate_at_max,
                     Seconds now) override;
  void on_arrival(Seconds now, Seconds interarrival,
                  double buffered_frames = 0.0) override;
  void on_decode_complete(Seconds now, Seconds decode_time, MegaHertz during,
                          double buffered_frames = 0.0,
                          Seconds frame_delay = Seconds{-1.0}) override;

  [[nodiscard]] bool adaptive() const override { return true; }
  [[nodiscard]] Hertz arrival_estimate() const override {
    return Hertz{arrival_rate_};
  }
  [[nodiscard]] Hertz service_estimate_at_max() const override {
    return Hertz{service_rate_max_};
  }
  [[nodiscard]] std::string detector_name() const override { return "qdpm"; }

  /// Test access: current exploration probability and Q-table shape.
  [[nodiscard]] double epsilon() const { return epsilon_; }
  [[nodiscard]] std::size_t num_states() const {
    return cfg_.load_bins * cfg_.queue_bins;
  }
  [[nodiscard]] std::size_t num_actions() const { return num_actions_; }
  [[nodiscard]] double q_value(std::size_t state, std::size_t action) const {
    return q_[state * num_actions_ + action];
  }
  [[nodiscard]] std::uint64_t decisions() const { return decisions_; }

 private:
  [[nodiscard]] std::size_t state_of(double buffered_frames) const;
  [[nodiscard]] std::size_t greedy_action(std::size_t state) const;
  void decide(std::size_t state);

  const workload::DecoderModel* decoder_;
  Config cfg_;
  Seconds target_delay_;
  Rng rng_;
  std::size_t num_actions_;
  std::vector<double> q_;  ///< row-major [state][action]
  double arrival_rate_ = 0.0;      ///< EMA, frames/s
  double service_rate_max_ = 0.0;  ///< EMA, frames/s at the top step
  double epsilon_;
  std::size_t prev_state_ = 0;
  std::size_t prev_action_ = 0;
  bool has_prev_ = false;
  std::uint64_t decisions_ = 0;
};

}  // namespace dvs::policy
