#include "policy/watchdog.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace dvs::policy {

Watchdog::Watchdog(const WatchdogConfig& cfg, Seconds target_delay)
    : cfg_(cfg), target_delay_(target_delay), backoff_(cfg.initial_backoff) {
  DVS_CHECK_MSG(target_delay_.value() > 0.0, "Watchdog: target delay must be > 0");
  DVS_CHECK_MSG(cfg_.delay_violation_factor >= 1.0,
                "Watchdog: violation factor must be >= 1");
  DVS_CHECK_MSG(cfg_.violation_threshold > 0 && cfg_.recovery_hold > 0,
                "Watchdog: thresholds must be positive");
  DVS_CHECK_MSG(cfg_.backoff_multiplier >= 1.0 &&
                    cfg_.initial_backoff.value() > 0.0 &&
                    cfg_.max_backoff >= cfg_.initial_backoff,
                "Watchdog: malformed backoff schedule");
}

void Watchdog::escalate(Seconds now) {
  ++escalations_;
  next_allowed_ = now + backoff_;
  backoff_ = std::min(Seconds{backoff_.value() * cfg_.backoff_multiplier},
                      cfg_.max_backoff);
  consecutive_violations_ = 0;
  consecutive_healthy_ = 0;
}

WatchdogAction Watchdog::on_frame(Seconds now, Seconds delay, double queue_len) {
  const bool violation = delay.value() > cfg_.delay_violation_factor *
                                             target_delay_.value() ||
                         queue_len >= cfg_.queue_threshold;
  if (!degraded_) {
    consecutive_violations_ = violation ? consecutive_violations_ + 1 : 0;
    if (consecutive_violations_ >= cfg_.violation_threshold &&
        now >= next_allowed_) {
      degraded_ = true;
      degraded_since_ = now;
      escalate(now);
      return WatchdogAction::kEscalate;
    }
    return WatchdogAction::kNone;
  }

  // Degraded: count a frame as healthy only when it is fully back at target,
  // not merely under the (laxer) violation line.
  const bool healthy =
      delay <= target_delay_ && queue_len < cfg_.queue_threshold;
  consecutive_healthy_ = healthy ? consecutive_healthy_ + 1 : 0;
  if (consecutive_healthy_ >= cfg_.recovery_hold) {
    degraded_ = false;
    last_episode_ = now - degraded_since_;
    accumulated_degraded_ = accumulated_degraded_ + last_episode_;
    backoff_ = cfg_.initial_backoff;  // clean recovery: forgive the history
    consecutive_healthy_ = 0;
    consecutive_violations_ = 0;
    ++recoveries_;
    return WatchdogAction::kRecover;
  }
  // Still diverging after the backoff window even at max frequency: the
  // detectors may have re-learned a stale rate — reset them again.
  if (violation && now >= next_allowed_) {
    escalate(now);
    return WatchdogAction::kEscalate;
  }
  return WatchdogAction::kNone;
}

Seconds Watchdog::time_in_degraded(Seconds now) const {
  Seconds total = accumulated_degraded_;
  if (degraded_ && now > degraded_since_) total = total + (now - degraded_since_);
  return total;
}

}  // namespace dvs::policy
