// Graceful-degradation watchdog for the DVS governor.
//
// The change-point governor tracks the workload it *admits*; under a fault
// (10x rate spike, heavy-tailed decode times, a stuck rail) its estimates
// can lag far enough behind reality that the queue grows without bound and
// every frame blows through the delay target.  The watchdog is the safety
// net: it watches per-frame delay and queue occupancy, and after a sustained
// run of violations declares the system *degraded* — the governor then
// resets its detectors (flushing stale pre-fault state) and escalates to the
// top frequency step until the watchdog observes a sustained return to
// target.  Repeated escalations inside one overload episode are spaced by an
// exponential backoff so a workload the hardware genuinely cannot serve does
// not thrash the detectors.
//
// The watchdog is deliberately deterministic and RNG-free: identical
// (now, delay, queue) call sequences produce identical escalation times,
// which is what lets fault sweeps keep the bit-identical-across-jobs
// guarantee.
#pragma once

#include "common/units.hpp"

namespace dvs::policy {

struct WatchdogConfig {
  bool enabled = false;
  /// A frame violates when its delay exceeds `delay_violation_factor *
  /// target_delay`, or when the queue holds at least `queue_threshold`
  /// frames (sustained buffer growth without waiting for the delays to
  /// materialize).
  double delay_violation_factor = 2.0;
  double queue_threshold = 64.0;
  /// Consecutive violating frames before the watchdog escalates.
  int violation_threshold = 8;
  /// Consecutive healthy frames (delay at/below target, queue below the
  /// threshold) before a degraded episode is declared recovered.
  int recovery_hold = 32;
  /// Exponential backoff between escalations: first at `initial_backoff`,
  /// doubling (x `backoff_multiplier`) up to `max_backoff`.  A clean
  /// recovery resets the backoff to its initial value.
  Seconds initial_backoff{2.0};
  double backoff_multiplier = 2.0;
  Seconds max_backoff{60.0};
};

enum class WatchdogAction {
  kNone,
  kEscalate,  ///< reset detectors + clamp to max frequency
  kRecover,   ///< leave degraded mode, resume policy control
};

class Watchdog {
 public:
  Watchdog(const WatchdogConfig& cfg, Seconds target_delay);

  /// Feed one completed frame.  `delay` is the frame's total (queue +
  /// decode) delay, `queue_len` the buffer occupancy after its departure.
  WatchdogAction on_frame(Seconds now, Seconds delay, double queue_len);

  [[nodiscard]] bool degraded() const { return degraded_; }
  [[nodiscard]] int escalations() const { return escalations_; }
  [[nodiscard]] int recoveries() const { return recoveries_; }
  /// Backoff that will gate the *next* escalation.
  [[nodiscard]] Seconds current_backoff() const { return backoff_; }
  /// Total time spent degraded, including the still-open episode at `now`.
  [[nodiscard]] Seconds time_in_degraded(Seconds now) const;
  /// Length of the episode that just closed (valid right after kRecover).
  [[nodiscard]] Seconds last_episode_length() const { return last_episode_; }

 private:
  void escalate(Seconds now);

  WatchdogConfig cfg_;
  Seconds target_delay_;
  bool degraded_ = false;
  int consecutive_violations_ = 0;
  int consecutive_healthy_ = 0;
  int escalations_ = 0;
  int recoveries_ = 0;
  Seconds backoff_;
  Seconds next_allowed_{0.0};  ///< earliest time the next escalation may fire
  Seconds degraded_since_{0.0};
  Seconds accumulated_degraded_{0.0};
  Seconds last_episode_{0.0};
};

}  // namespace dvs::policy
