#include "queue/frame_buffer.hpp"

namespace dvs::queue {

FrameBuffer::FrameBuffer(std::size_t capacity) : capacity_(capacity) {}

void FrameBuffer::accrue_occupancy(Seconds now) {
  DVS_CHECK_MSG(now >= last_change_, "FrameBuffer: time moved backwards");
  occupancy_stats_.add(static_cast<double>(frames_.size()),
                       (now - last_change_).value());
  last_change_ = now;
}

bool FrameBuffer::push(const workload::Frame& f, Seconds now) {
  accrue_occupancy(now);
  if (capacity_ != 0 && frames_.size() >= capacity_) {
    ++dropped_;
    return false;
  }
  frames_.push_back(f);
  ++pushed_;
  return true;
}

std::optional<workload::Frame> FrameBuffer::pop(Seconds now) {
  accrue_occupancy(now);
  if (frames_.empty()) return std::nullopt;
  workload::Frame f = frames_.front();
  frames_.pop_front();
  return f;
}

Seconds FrameBuffer::head_arrival() const {
  DVS_CHECK_MSG(!frames_.empty(), "FrameBuffer: head of empty buffer");
  return frames_.front().arrival;
}

void FrameBuffer::record_departure(Seconds arrival, Seconds departure) {
  DVS_CHECK_MSG(departure >= arrival, "FrameBuffer: departure precedes arrival");
  delay_stats_.add((departure - arrival).value());
}

}  // namespace dvs::queue
