// The frame buffer (queue) between the WLAN and the decoder.
//
// "Portable devices normally have a buffer for storing requests that have
// not been serviced yet ... our queue model contains only the number of
// frames waiting service" (Section 2.3).  The buffer is FIFO; each frame
// remembers its arrival time so the *total* delay (waiting + decoding) can
// be measured at departure — the quantity Equation 5 keeps constant.
#pragma once

#include <deque>
#include <optional>

#include "common/check.hpp"
#include "common/stats.hpp"
#include "common/units.hpp"
#include "workload/media.hpp"

namespace dvs::queue {

class FrameBuffer {
 public:
  /// capacity 0 = unbounded.  A bounded buffer drops the *newest* frame on
  /// overflow (tail drop) and counts it.
  explicit FrameBuffer(std::size_t capacity = 0);

  /// Enqueues a frame; returns false (and counts a drop) when full.
  bool push(const workload::Frame& f, Seconds now);

  /// Dequeues the oldest frame; empty optional when the buffer is empty.
  std::optional<workload::Frame> pop(Seconds now);

  [[nodiscard]] bool empty() const { return frames_.empty(); }
  [[nodiscard]] std::size_t size() const { return frames_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t dropped() const { return dropped_; }
  [[nodiscard]] std::uint64_t total_pushed() const { return pushed_; }

  /// Arrival time of the head frame (throws if empty).
  [[nodiscard]] Seconds head_arrival() const;

  /// Records the departure of a frame that arrived at `arrival`; feeds the
  /// delay statistics.  Called by the system when decode completes.
  void record_departure(Seconds arrival, Seconds departure);

  /// Total-delay statistics over all departed frames.
  [[nodiscard]] const RunningStats& delay_stats() const { return delay_stats_; }

  /// Time-weighted queue-occupancy statistics (updated on push/pop).
  [[nodiscard]] const TimeWeightedStats& occupancy_stats() const {
    return occupancy_stats_;
  }

 private:
  void accrue_occupancy(Seconds now);

  std::size_t capacity_;
  std::deque<workload::Frame> frames_;
  std::size_t dropped_ = 0;
  std::uint64_t pushed_ = 0;
  RunningStats delay_stats_;
  TimeWeightedStats occupancy_stats_;
  Seconds last_change_{0.0};
};

}  // namespace dvs::queue
