#include "queue/mg1.hpp"

#include <cmath>
#include <stdexcept>

namespace dvs::queue {

Mg1::Mg1(Hertz arrival_rate, Hertz service_rate, double service_cv2)
    : lambda_(arrival_rate), mu_(service_rate), cv2_(service_cv2) {
  if (lambda_.value() <= 0.0 || mu_.value() <= 0.0) {
    throw std::domain_error("Mg1: rates must be > 0");
  }
  if (cv2_ < 0.0) throw std::domain_error("Mg1: cv2 must be >= 0");
}

double Mg1::utilization() const { return lambda_.value() / mu_.value(); }

bool Mg1::stable() const { return lambda_ < mu_; }

void Mg1::require_stable() const {
  if (!stable()) throw std::domain_error("Mg1: unstable (arrival >= service rate)");
}

Seconds Mg1::mean_waiting_time() const {
  require_stable();
  const double rho = utilization();
  return Seconds{rho * (1.0 + cv2_) / (2.0 * mu_.value() * (1.0 - rho))};
}

Seconds Mg1::mean_total_delay() const {
  require_stable();
  return Seconds{1.0 / mu_.value()} + mean_waiting_time();
}

double Mg1::mean_frames_in_system() const {
  require_stable();
  return lambda_.value() * mean_total_delay().value();
}

Hertz Mg1::required_service_rate(Hertz arrival_rate, Seconds target_delay,
                                 double service_cv2) {
  if (arrival_rate.value() <= 0.0) {
    throw std::domain_error("Mg1: arrival rate must be > 0");
  }
  if (target_delay.value() <= 0.0) {
    throw std::domain_error("Mg1: target delay must be > 0");
  }
  if (service_cv2 < 0.0) throw std::domain_error("Mg1: cv2 must be >= 0");

  // delay d = 1/mu + a*lambda / (mu (mu - lambda)),  a = (1 + cv2)/2
  // =>  d mu^2 - (d lambda + 1) mu + lambda (1 - a) = 0.
  const double d = target_delay.value();
  const double lambda = arrival_rate.value();
  const double a = 0.5 * (1.0 + service_cv2);
  const double b = d * lambda + 1.0;
  const double disc = b * b - 4.0 * d * lambda * (1.0 - a);
  // 1 - a <= 1/2, so the discriminant is >= b^2 - 2 d lambda > 0 whenever
  // a >= 1/2... guard anyway for large cv2 arithmetic.
  if (disc < 0.0) throw std::logic_error("Mg1: negative discriminant");
  const double mu = (b + std::sqrt(disc)) / (2.0 * d);
  return Hertz{mu};
}

}  // namespace dvs::queue
