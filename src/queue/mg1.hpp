// Analytic M/G/1 queue results (Pollaczek-Khinchine).
//
// The paper flags the limits of its own policy: "when general distributions
// are used, [the] M/M/1 queue model is not applicable, so another method of
// frequency and voltage adjustment is needed."  This module provides that
// method.  Real decode times are far from exponential — MP3 frames are
// nearly deterministic (squared coefficient of variation cv2 ~ 0.0025) and
// MPEG frames are GOP-structured — and the P-K formula prices that
// variability exactly:
//
//   W_q = rho (1 + cv2) / (2 mu (1 - rho)),    delay = 1/mu + W_q.
//
// For cv2 = 1 this reduces to the M/M/1 results of Eq. 5; for deterministic
// service (cv2 = 0) the required rate is noticeably lower, which the
// cv2-aware frequency policy converts into extra energy savings.
#pragma once

#include "common/units.hpp"

namespace dvs::queue {

class Mg1 {
 public:
  /// service_cv2: squared coefficient of variation of the service time
  /// (Var[S]/E[S]^2); 0 = deterministic, 1 = exponential.
  Mg1(Hertz arrival_rate, Hertz service_rate, double service_cv2);

  [[nodiscard]] Hertz arrival_rate() const { return lambda_; }
  [[nodiscard]] Hertz service_rate() const { return mu_; }
  [[nodiscard]] double service_cv2() const { return cv2_; }

  [[nodiscard]] double utilization() const;
  [[nodiscard]] bool stable() const;

  /// Mean waiting time (excluding service), P-K formula.
  [[nodiscard]] Seconds mean_waiting_time() const;

  /// Mean total delay (waiting + service).
  [[nodiscard]] Seconds mean_total_delay() const;

  /// Mean number in system (Little's law on the total delay).
  [[nodiscard]] double mean_frames_in_system() const;

  /// Inverse of the P-K delay: the service rate mu holding the mean total
  /// delay at `target` given arrival rate lambda and service variability
  /// cv2.  Closed form (positive root of the P-K quadratic); reduces to
  /// Mm1::required_service_rate at cv2 = 1.
  static Hertz required_service_rate(Hertz arrival_rate, Seconds target_delay,
                                     double service_cv2);

 private:
  void require_stable() const;

  Hertz lambda_;
  Hertz mu_;
  double cv2_;
};

}  // namespace dvs::queue
