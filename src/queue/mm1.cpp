#include "queue/mm1.hpp"

#include <cmath>
#include <stdexcept>

namespace dvs::queue {

Mm1::Mm1(Hertz arrival_rate, Hertz service_rate)
    : lambda_u_(arrival_rate), lambda_d_(service_rate) {
  if (lambda_u_.value() <= 0.0 || lambda_d_.value() <= 0.0) {
    throw std::domain_error("Mm1: rates must be > 0");
  }
}

double Mm1::utilization() const { return lambda_u_.value() / lambda_d_.value(); }

bool Mm1::stable() const { return lambda_u_ < lambda_d_; }

void Mm1::require_stable() const {
  if (!stable()) throw std::domain_error("Mm1: unstable (arrival >= service rate)");
}

Seconds Mm1::mean_total_delay() const {
  require_stable();
  return Seconds{1.0 / (lambda_d_.value() - lambda_u_.value())};
}

Seconds Mm1::mean_waiting_time() const {
  require_stable();
  return Seconds{utilization() / (lambda_d_.value() - lambda_u_.value())};
}

double Mm1::mean_frames_in_system() const {
  require_stable();
  return lambda_u_.value() / (lambda_d_.value() - lambda_u_.value());
}

double Mm1::mean_frames_waiting() const {
  require_stable();
  const double rho = utilization();
  return rho * rho / (1.0 - rho);
}

double Mm1::prob_n_in_system(unsigned n) const {
  require_stable();
  const double rho = utilization();
  return (1.0 - rho) * std::pow(rho, static_cast<double>(n));
}

Hertz Mm1::required_service_rate(Hertz arrival_rate, Seconds target_delay) {
  if (arrival_rate.value() <= 0.0) {
    throw std::domain_error("Mm1: arrival rate must be > 0");
  }
  if (target_delay.value() <= 0.0) {
    throw std::domain_error("Mm1: target delay must be > 0");
  }
  return Hertz{arrival_rate.value() + 1.0 / target_delay.value()};
}

double Mm1::buffered_frames_at(Hertz arrival_rate, Seconds target_delay) {
  return arrival_rate.value() * target_delay.value();
}

}  // namespace dvs::queue
