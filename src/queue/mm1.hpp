// Analytic M/M/1 queue results (Section 2.3 / Equation 5).
//
// "In the active state, where the exponential distribution is used to
// describe frame arrivals and service times, the behavior of the system can
// be modeled using [an] M/M/1 queue model."  The policy uses the mean
// total-delay formula; the tests use the rest to validate the simulator
// against theory.
#pragma once

#include "common/units.hpp"

namespace dvs::queue {

/// Stationary M/M/1 quantities for arrival rate lambda_u and service rate
/// lambda_d.  All accessors require stability (lambda_u < lambda_d) and
/// throw std::domain_error otherwise.
class Mm1 {
 public:
  Mm1(Hertz arrival_rate, Hertz service_rate);

  [[nodiscard]] Hertz arrival_rate() const { return lambda_u_; }
  [[nodiscard]] Hertz service_rate() const { return lambda_d_; }

  /// Utilization rho = lambda_u / lambda_d (valid for any positive rates).
  [[nodiscard]] double utilization() const;

  [[nodiscard]] bool stable() const;

  /// Equation 5: mean total frame delay (waiting + service)
  ///   d = (1/lambda_d) / (1 - lambda_u/lambda_d) = 1 / (lambda_d - lambda_u).
  [[nodiscard]] Seconds mean_total_delay() const;

  /// Mean waiting time only (excluding service): rho / (lambda_d - lambda_u).
  [[nodiscard]] Seconds mean_waiting_time() const;

  /// Mean number of frames in the system: lambda_u / (lambda_d - lambda_u).
  [[nodiscard]] double mean_frames_in_system() const;

  /// Mean number waiting (excluding the one in service): rho^2 / (1 - rho).
  [[nodiscard]] double mean_frames_waiting() const;

  /// P(n frames in system) = (1 - rho) rho^n.
  [[nodiscard]] double prob_n_in_system(unsigned n) const;

  /// Inverse of Equation 5: the service rate required to hold the mean
  /// total delay at `target` given the arrival rate:
  ///   lambda_d = lambda_u + 1/target.
  static Hertz required_service_rate(Hertz arrival_rate, Seconds target_delay);

  /// Mean extra frames buffered at the target delay (what the paper quotes
  /// as "0.1 s total frame delay corresponding to ~2 extra frames of
  /// video"): lambda_u * target_delay by Little's law.
  static double buffered_frames_at(Hertz arrival_rate, Seconds target_delay);

 private:
  void require_stable() const;

  Hertz lambda_u_;
  Hertz lambda_d_;
};

}  // namespace dvs::queue
