#include "serve/checkpoint.hpp"

#include <cstdio>
#include <filesystem>
#include <sstream>
#include <stdexcept>

#include "common/json.hpp"

namespace dvs::serve {
namespace {

std::string fmt17(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

/// Empty sketches serialize as "" (write_text would emit non-finite
/// min/max); everything else embeds the pinned dvs-sketch-v1 text.
std::string sketch_text(const obs::QuantileSketch& s) {
  if (s.empty()) return {};
  std::ostringstream os;
  s.write_text(os);
  return os.str();
}

obs::QuantileSketch sketch_from_text(const std::string& text) {
  if (text.empty()) return obs::QuantileSketch{};
  std::istringstream is(text);
  return obs::QuantileSketch::read_text(is);
}

void write_metrics(std::ostream& os, const core::Metrics& m) {
  os << "{\"duration\": " << fmt17(m.duration.value())
     << ", \"total_energy\": " << fmt17(m.total_energy.value())
     << ", \"component_energy\": [";
  for (std::size_t i = 0; i < m.component_energy.size(); ++i) {
    if (i != 0) os << ", ";
    os << fmt17(m.component_energy[i].value());
  }
  os << "], \"average_power\": " << fmt17(m.average_power.value())
     << ", \"frames_arrived\": " << m.frames_arrived
     << ", \"frames_admitted\": " << m.frames_admitted
     << ", \"frames_decoded\": " << m.frames_decoded
     << ", \"frames_dropped\": " << m.frames_dropped
     << ", \"mean_frame_delay\": " << fmt17(m.mean_frame_delay.value())
     << ", \"max_frame_delay\": " << fmt17(m.max_frame_delay.value())
     << ", \"mean_buffered_frames\": " << fmt17(m.mean_buffered_frames)
     << ", \"cpu_switches\": " << m.cpu_switches
     << ", \"mean_cpu_frequency\": " << fmt17(m.mean_cpu_frequency.value())
     << ", \"dpm_idle_periods\": " << m.dpm_idle_periods
     << ", \"dpm_sleeps\": " << m.dpm_sleeps
     << ", \"dpm_wakeups\": " << m.dpm_wakeups
     << ", \"dpm_total_wakeup_delay\": "
     << fmt17(m.dpm_total_wakeup_delay.value())
     << ", \"faults_injected\": " << m.faults_injected
     << ", \"watchdog_escalations\": " << m.watchdog_escalations
     << ", \"watchdog_recoveries\": " << m.watchdog_recoveries
     << ", \"time_in_degraded\": " << fmt17(m.time_in_degraded.value()) << "}";
}

core::Metrics read_metrics(const json::Value& v) {
  core::Metrics m;
  m.duration = Seconds{v.number_or("duration", 0.0)};
  m.total_energy = Joules{v.number_or("total_energy", 0.0)};
  if (const json::Value* comp = v.find("component_energy"); comp != nullptr) {
    const auto& arr = comp->as_array();
    for (std::size_t i = 0; i < arr.size() && i < m.component_energy.size();
         ++i) {
      m.component_energy[i] = Joules{arr[i]->as_number()};
    }
  }
  m.average_power = MilliWatts{v.number_or("average_power", 0.0)};
  m.frames_arrived = static_cast<std::uint64_t>(v.number_or("frames_arrived", 0));
  m.frames_admitted =
      static_cast<std::uint64_t>(v.number_or("frames_admitted", 0));
  m.frames_decoded = static_cast<std::uint64_t>(v.number_or("frames_decoded", 0));
  m.frames_dropped = static_cast<std::uint64_t>(v.number_or("frames_dropped", 0));
  m.mean_frame_delay = Seconds{v.number_or("mean_frame_delay", 0.0)};
  m.max_frame_delay = Seconds{v.number_or("max_frame_delay", 0.0)};
  m.mean_buffered_frames = v.number_or("mean_buffered_frames", 0.0);
  m.cpu_switches = static_cast<int>(v.number_or("cpu_switches", 0));
  m.mean_cpu_frequency = MegaHertz{v.number_or("mean_cpu_frequency", 0.0)};
  m.dpm_idle_periods = static_cast<int>(v.number_or("dpm_idle_periods", 0));
  m.dpm_sleeps = static_cast<int>(v.number_or("dpm_sleeps", 0));
  m.dpm_wakeups = static_cast<int>(v.number_or("dpm_wakeups", 0));
  m.dpm_total_wakeup_delay =
      Seconds{v.number_or("dpm_total_wakeup_delay", 0.0)};
  m.faults_injected =
      static_cast<std::uint64_t>(v.number_or("faults_injected", 0));
  m.watchdog_escalations =
      static_cast<int>(v.number_or("watchdog_escalations", 0));
  m.watchdog_recoveries =
      static_cast<int>(v.number_or("watchdog_recoveries", 0));
  m.time_in_degraded = Seconds{v.number_or("time_in_degraded", 0.0)};
  return m;
}

fleet::FleetGroupResult read_group(const json::Value& v) {
  fleet::FleetGroupResult g;
  g.devices = static_cast<std::size_t>(v.number_or("devices", 0));
  g.wave_devices = static_cast<std::size_t>(v.number_or("wave_devices", 0));
  g.energy_j = v.number_or("energy_j", 0.0);
  g.frames_decoded = static_cast<std::uint64_t>(v.number_or("frames_decoded", 0));
  g.frames_dropped = static_cast<std::uint64_t>(v.number_or("frames_dropped", 0));
  g.faults_injected =
      static_cast<std::uint64_t>(v.number_or("faults_injected", 0));
  g.sum_mean_delay_s = v.number_or("sum_mean_delay_s", 0.0);
  g.delay_sketch = sketch_from_text(v.string_or("delay_sketch", ""));
  g.energy_sketch = sketch_from_text(v.string_or("energy_sketch", ""));
  g.dropped_sketch = sketch_from_text(v.string_or("dropped_sketch", ""));
  return g;
}

}  // namespace

CheckpointWriter::CheckpointWriter(const std::string& path,
                                   const std::string& job_id,
                                   const std::string& kind,
                                   std::size_t flush_every)
    : flush_every_(flush_every == 0 ? 1 : flush_every) {
  std::error_code ec;
  const bool fresh = !std::filesystem::exists(path, ec) ||
                     std::filesystem::file_size(path, ec) == 0;
  out_.open(path, std::ios::app);
  if (!out_) {
    throw std::runtime_error("CheckpointWriter: cannot open " + path);
  }
  if (fresh) {
    out_ << "{\"schema\": \"" << kCheckpointSchema << "\", \"job\": \""
         << escape(job_id) << "\", \"kind\": \"" << kind << "\"}\n";
    out_.flush();
  }
}

bool CheckpointWriter::append_point(std::size_t index,
                                    const core::Metrics& metrics,
                                    const obs::QuantileSketch& delay_sketch) {
  out_ << "{\"point\": " << index << ", \"metrics\": ";
  write_metrics(out_, metrics);
  out_ << ", \"delay_sketch\": \"" << escape(sketch_text(delay_sketch))
       << "\"}\n";
  return record_done();
}

bool CheckpointWriter::append_shard(std::size_t shard,
                                    const fleet::FleetShardPartial& part) {
  out_ << "{\"shard\": " << shard << ", \"frames_total\": " << part.frames_total
       << ", \"groups\": [";
  for (std::size_t i = 0; i < part.groups.size(); ++i) {
    const fleet::FleetGroupResult& g = part.groups[i];
    if (i != 0) out_ << ", ";
    out_ << "{\"devices\": " << g.devices
         << ", \"wave_devices\": " << g.wave_devices
         << ", \"energy_j\": " << fmt17(g.energy_j)
         << ", \"frames_decoded\": " << g.frames_decoded
         << ", \"frames_dropped\": " << g.frames_dropped
         << ", \"faults_injected\": " << g.faults_injected
         << ", \"sum_mean_delay_s\": " << fmt17(g.sum_mean_delay_s)
         << ", \"delay_sketch\": \"" << escape(sketch_text(g.delay_sketch))
         << "\", \"energy_sketch\": \"" << escape(sketch_text(g.energy_sketch))
         << "\", \"dropped_sketch\": \""
         << escape(sketch_text(g.dropped_sketch)) << "\"}";
  }
  out_ << "]}\n";
  return record_done();
}

bool CheckpointWriter::record_done() {
  if (++pending_ >= flush_every_) {
    flush();
    return true;
  }
  return false;
}

void CheckpointWriter::flush() {
  out_.flush();
  pending_ = 0;
}

CheckpointData load_checkpoint(const std::string& path) {
  CheckpointData data;
  std::ifstream in(path);
  if (!in) return data;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    json::ValuePtr doc;
    try {
      doc = json::parse(line);
    } catch (const json::ParseError&) {
      break;  // torn tail after a SIGKILL: keep the intact prefix
    }
    if (const json::Value* schema = doc->find("schema"); schema != nullptr) {
      if (!schema->is_string() || schema->as_string() != kCheckpointSchema) {
        throw std::runtime_error("checkpoint " + path +
                                 ": header schema is not \"" +
                                 std::string(kCheckpointSchema) + "\"");
      }
      data.job_id = doc->string_or("job", "");
      data.kind = doc->string_or("kind", "");
      continue;
    }
    try {
      if (const json::Value* point = doc->find("point"); point != nullptr) {
        core::RestoredPoint rp;
        rp.metrics = read_metrics(doc->at("metrics"));
        rp.delay_sketch = sketch_from_text(doc->string_or("delay_sketch", ""));
        data.points[static_cast<std::size_t>(point->as_number())] =
            std::move(rp);
        continue;
      }
      if (const json::Value* shard = doc->find("shard"); shard != nullptr) {
        fleet::FleetShardPartial part;
        part.frames_total =
            static_cast<std::uint64_t>(doc->number_or("frames_total", 0));
        for (const json::ValuePtr& g : doc->at("groups").as_array()) {
          part.groups.push_back(read_group(*g));
        }
        data.shards[static_cast<std::size_t>(shard->as_number())] =
            std::move(part);
        continue;
      }
    } catch (const std::runtime_error&) {
      break;  // shape-torn record or torn sketch text: stop at the prefix
    }
  }
  return data;
}

}  // namespace dvs::serve
