// Durable job progress (`dvs-checkpoint-v1`): an append-only JSONL file
// next to a running job, one record per completed fold-unit (sweep point /
// fleet shard).  The format exists for exactly one property: a daemon
// killed at any instant restarts, loads the intact prefix of this file,
// skips the recorded units, and emits CSVs byte-identical to an
// uninterrupted run.
//
// Line 1 (header):
//   {"schema": "dvs-checkpoint-v1", "job": "<id>", "kind": "sweep|fleet"}
// Sweep record, one per completed RunPoint:
//   {"point": 17, "metrics": {...all Metrics scalars, %.17g...},
//    "delay_sketch": "dvs-sketch-v1 ..."}
// Fleet record, one per completed shard:
//   {"shard": 3, "frames_total": 12345, "groups": [{"devices": ..,
//    "wave_devices": .., "energy_j": .., "frames_decoded": ..,
//    "frames_dropped": .., "faults_injected": .., "sum_mean_delay_s": ..,
//    "delay_sketch": "...", "energy_sketch": "...", "dropped_sketch": ".."}]}
//
// Doubles are %.17g (round-trip exact); sketches embed their own pinned
// dvs-sketch-v1 text (bit-stable round trip), so a restored unit re-enters
// the serial fold with the very same operand bytes.  A SIGKILL can tear
// the buffered tail of the file — the loader keeps every line up to the
// first unparsable one and discards the rest, which merely re-executes the
// torn units.  Appending to an existing file on resume is supported (the
// header is written only when the file starts empty).
#pragma once

#include <cstddef>
#include <fstream>
#include <map>
#include <string>

#include "core/sweep.hpp"
#include "fleet/fleet_runner.hpp"

namespace dvs::serve {

inline constexpr const char* kCheckpointSchema = "dvs-checkpoint-v1";

class CheckpointWriter {
 public:
  /// Opens `path` for append; writes the header when the file is new.
  /// `flush_every` = completed units per durability flush (>= 1).
  CheckpointWriter(const std::string& path, const std::string& job_id,
                   const std::string& kind, std::size_t flush_every);

  /// Both appends return true when this record hit a durability flush
  /// (every `flush_every` records) — the signal the daemon's event log
  /// uses to distinguish a checkpoint_flush from an in-memory append.
  bool append_point(std::size_t index, const core::Metrics& metrics,
                    const obs::QuantileSketch& delay_sketch);
  bool append_shard(std::size_t shard, const fleet::FleetShardPartial& part);
  void flush();

 private:
  bool record_done();

  std::ofstream out_;
  std::size_t flush_every_ = 1;
  std::size_t pending_ = 0;
};

/// Everything an interrupted job left behind.  `points` / `shards` slot
/// directly into SweepOptions::restored / FleetOptions::restored.
struct CheckpointData {
  std::string job_id;
  std::string kind;
  std::map<std::size_t, core::RestoredPoint> points;
  std::map<std::size_t, fleet::FleetShardPartial> shards;

  [[nodiscard]] bool empty() const { return points.empty() && shards.empty(); }
};

/// Loads a checkpoint file; a missing file yields empty data, a torn
/// trailing line ends the load at the last intact record.  Throws
/// std::runtime_error when the header names a different schema.
CheckpointData load_checkpoint(const std::string& path);

}  // namespace dvs::serve
