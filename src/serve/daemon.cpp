#include "serve/daemon.hpp"

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "serve/job_runner.hpp"
#include "serve/job_spec.hpp"

namespace dvs::serve {
namespace {

namespace fs = std::filesystem;

volatile std::sig_atomic_t g_stop = 0;

void handle_stop(int) { g_stop = 1; }

/// .json entries of `dir` (stems only), lexicographically sorted; dotfiles
/// and foreign extensions are invisible to the queue.
std::vector<std::string> job_stems(const fs::path& dir) {
  std::vector<std::string> stems;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    const fs::path& p = entry.path();
    if (p.extension() != ".json") continue;
    const std::string stem = p.stem().string();
    if (stem.empty() || stem.front() == '.') continue;
    stems.push_back(stem);
  }
  std::sort(stems.begin(), stems.end());
  return stems;
}

void write_error_file(const fs::path& path, const std::string& what) {
  std::ofstream os(path);
  os << what << "\n";
}

/// Best-effort move that survives a pre-existing destination (a re-dropped
/// job name): the old entry is removed first.
void replace_rename(const fs::path& from, const fs::path& to) {
  std::error_code ec;
  fs::remove_all(to, ec);
  fs::rename(from, to);
}

struct DaemonPaths {
  fs::path queue, running, done, failed, checkpoints;
};

/// Executes the job file running/<stem>.json to its terminal directory.
void process_job(const DaemonPaths& dp, const std::string& stem,
                 const DaemonOptions& opts) {
  const fs::path job_file = dp.running / (stem + ".json");
  const fs::path out_dir = dp.running / (stem + ".out");
  const fs::path ckpt = dp.checkpoints / (stem + ".ckpt.jsonl");
  try {
    const JobSpec spec = JobSpec::parse_file(job_file.string());
    JobPaths paths;
    paths.output_dir = out_dir.string();
    // Run-kind jobs have no fold units to restore; sweep/fleet checkpoint.
    if (spec.kind != JobKind::Run) paths.checkpoint_path = ckpt.string();
    std::printf("serve: job %s (%s) started\n", spec.id.c_str(),
                to_string(spec.kind).c_str());
    std::fflush(stdout);
    const JobOutcome outcome = run_job(spec, paths, opts.jobs);
    replace_rename(out_dir, dp.done / (stem + ".out"));
    replace_rename(job_file, dp.done / (stem + ".json"));
    std::printf("serve: job %s done (%zu units executed, %zu restored)\n",
                spec.id.c_str(), outcome.executed_units,
                outcome.restored_units);
    std::fflush(stdout);
  } catch (const std::exception& e) {
    std::error_code ec;
    fs::remove(ckpt, ec);  // a failed job must not poison a future re-drop
    write_error_file(dp.failed / (stem + ".error.txt"), e.what());
    if (fs::exists(out_dir, ec)) {
      replace_rename(out_dir, dp.failed / (stem + ".out"));
    }
    replace_rename(job_file, dp.failed / (stem + ".json"));
    std::printf("serve: job %s failed: %s\n", stem.c_str(), e.what());
    std::fflush(stdout);
  }
}

}  // namespace

int run_daemon(const DaemonOptions& opts) {
  DaemonPaths dp;
  const fs::path root = opts.root;
  dp.queue = root / "queue";
  dp.running = root / "running";
  dp.done = root / "done";
  dp.failed = root / "failed";
  dp.checkpoints = root / "checkpoints";
  try {
    for (const fs::path* d :
         {&dp.queue, &dp.running, &dp.done, &dp.failed, &dp.checkpoints}) {
      fs::create_directories(*d);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "dvs_sim serve: cannot prepare %s: %s\n",
                 opts.root.c_str(), e.what());
    return 2;
  }

  std::signal(SIGTERM, handle_stop);
  std::signal(SIGINT, handle_stop);

  std::printf("serve: watching %s (jobs=%d, poll=%dms%s)\n",
              dp.queue.string().c_str(), opts.jobs, opts.poll_ms,
              opts.drain ? ", drain" : "");
  std::fflush(stdout);

  std::size_t processed = 0;
  const auto budget_left = [&] {
    return opts.max_jobs == 0 || processed < opts.max_jobs;
  };

  // Crash recovery: a previous daemon's running/ jobs come first — their
  // checkpoints are freshest and their artifacts are already half-built.
  for (const std::string& stem : job_stems(dp.running)) {
    if (g_stop != 0 || !budget_left()) break;
    std::printf("serve: recovering interrupted job %s\n", stem.c_str());
    std::fflush(stdout);
    process_job(dp, stem, opts);
    ++processed;
  }

  while (g_stop == 0 && budget_left()) {
    const std::vector<std::string> stems = job_stems(dp.queue);
    if (stems.empty()) {
      if (opts.drain) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(opts.poll_ms));
      continue;
    }
    for (const std::string& stem : stems) {
      if (g_stop != 0 || !budget_left()) break;
      // Claim by atomic rename; losing a race (ENOENT) just means another
      // process took it — irrelevant today, cheap insurance tomorrow.
      std::error_code ec;
      fs::rename(dp.queue / (stem + ".json"), dp.running / (stem + ".json"),
                 ec);
      if (ec) continue;
      process_job(dp, stem, opts);
      ++processed;
    }
  }

  std::printf("serve: exiting after %zu job%s\n", processed,
              processed == 1 ? "" : "s");
  std::fflush(stdout);
  return 0;
}

}  // namespace dvs::serve
