#include "serve/daemon.hpp"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "obs/telemetry/openmetrics.hpp"
#include "serve/event_log.hpp"
#include "serve/job_runner.hpp"
#include "serve/job_spec.hpp"
#include "serve/status.hpp"

namespace dvs::serve {
namespace {

namespace fs = std::filesystem;

volatile std::sig_atomic_t g_stop = 0;

void handle_stop(int) { g_stop = 1; }

double now_unix() {
  const auto now = std::chrono::system_clock::now().time_since_epoch();
  return std::chrono::duration<double>(now).count();
}

/// .json entries of `dir` (stems only), lexicographically sorted; dotfiles
/// and foreign extensions are invisible to the queue.
std::vector<std::string> job_stems(const fs::path& dir) {
  std::vector<std::string> stems;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    const fs::path& p = entry.path();
    if (p.extension() != ".json") continue;
    const std::string stem = p.stem().string();
    if (stem.empty() || stem.front() == '.') continue;
    stems.push_back(stem);
  }
  std::sort(stems.begin(), stems.end());
  return stems;
}

void write_error_file(const fs::path& path, const std::string& what) {
  std::ofstream os(path);
  os << what << "\n";
}

/// Best-effort move that survives a pre-existing destination (a re-dropped
/// job name): the old entry is removed first.
void replace_rename(const fs::path& from, const fs::path& to) {
  std::error_code ec;
  fs::remove_all(to, ec);
  fs::rename(from, to);
}

/// True when `dir` exists and contains at least one regular file — the
/// "did any flight dumps actually land" test.
bool has_files(const fs::path& dir) {
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (entry.is_regular_file()) return true;
  }
  return false;
}

struct DaemonPaths {
  fs::path queue, running, done, failed, checkpoints;
};

/// The daemon's observable surface: the lifecycle event log, the atomic
/// status.json snapshot, and the cross-job metrics.om scrape file.  All
/// three are pure side channels — nothing here feeds back into job
/// results.
class DaemonTelemetry {
 public:
  DaemonTelemetry(const std::string& root, const DaemonPaths& dp)
      : root_(root),
        dp_(dp),
        events_(root + "/events.jsonl"),
        started_unix_(now_unix()),
        t0_(std::chrono::steady_clock::now()) {}

  EventLog& events() { return events_; }

  void daemon_started() {
    events_.daemon_start(static_cast<int>(::getpid()));
    write_status("running");
    refresh_metrics();
  }

  void daemon_stopped(std::size_t processed) {
    events_.daemon_stop(processed);
    refresh_metrics();
    write_status("stopped");
  }

  /// Registers the active job (claimed or recovered) and snapshots.
  void job_started(const std::string& id, const std::string& kind,
                   bool recovered) {
    events_.job_claimed(id, recovered);
    active_ = JobStatus{};
    active_.id = id;
    active_.kind = kind;
    active_.state = "running";
    has_active_ = true;
    job_t0_ = std::chrono::steady_clock::now();
    write_status("running");
  }

  /// Per-fold-unit progress: updates the active row (ETA from the unit
  /// completion rate), snapshots, and logs a checkpoint_flush event when
  /// this unit's checkpoint record was made durable.
  void job_progress(const JobProgress& p) {
    if (!has_active_) return;
    active_.units_done = p.units_done;
    active_.units_total = p.units_total;
    active_.elapsed_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      job_t0_)
            .count();
    active_.eta_s =
        p.units_done == 0
            ? -1.0
            : active_.elapsed_s / static_cast<double>(p.units_done) *
                  static_cast<double>(p.units_total - p.units_done);
    if (p.flushed) {
      events_.checkpoint_flush(active_.id, p.units_done, p.units_total);
    }
    write_status("running");
  }

  void job_finished(const std::string& id, const std::string& kind,
                    const JobOutcome& outcome) {
    events_.job_finished(id, kind, outcome.executed_units,
                         outcome.restored_units);
    ++jobs_done_;
    has_active_ = false;
    refresh_metrics();
    write_status("running");
  }

  void job_failed(const std::string& id, const std::string& error,
                  const std::string& flight_dir) {
    events_.job_failed(id, error, flight_dir);
    ++jobs_failed_;
    has_active_ = false;
    refresh_metrics();
    write_status("running");
  }

 private:
  void write_status(const std::string& state) {
    ServeStatus s;
    s.pid = static_cast<int>(::getpid());
    s.state = state;
    s.started_unix = started_unix_;
    s.updated_unix = now_unix();
    s.uptime_s = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - t0_)
                     .count();
    s.last_seq = events_.last_seq();
    s.jobs_done = jobs_done_;
    s.jobs_failed = jobs_failed_;
    s.table_cache = detect::threshold_table_cache_stats();
    s.solve_cache = dpm::tismdp_solve_cache_stats();
    const std::vector<std::string> queued = job_stems(dp_.queue);
    s.queue_depth = queued.size();
    if (has_active_) s.jobs.push_back(active_);
    for (const std::string& stem : queued) {
      JobStatus j;
      j.id = stem;
      j.state = "queued";
      s.jobs.push_back(std::move(j));
    }
    try {
      write_status_atomic(s, root_ + "/status.json");
    } catch (const std::exception& e) {
      std::fprintf(stderr, "serve: status write failed: %s\n", e.what());
    }
  }

  void refresh_metrics() {
    try {
      obs::write_openmetrics_atomic(collect_daemon_metrics(root_),
                                    root_ + "/metrics.om");
    } catch (const std::exception& e) {
      std::fprintf(stderr, "serve: metrics write failed: %s\n", e.what());
    }
  }

  std::string root_;
  const DaemonPaths& dp_;
  EventLog events_;
  double started_unix_;
  std::chrono::steady_clock::time_point t0_;
  std::chrono::steady_clock::time_point job_t0_;
  std::size_t jobs_done_ = 0;
  std::size_t jobs_failed_ = 0;
  JobStatus active_;
  bool has_active_ = false;
};

/// Executes the job file running/<stem>.json to its terminal directory.
void process_job(const DaemonPaths& dp, const std::string& stem,
                 const DaemonOptions& opts, DaemonTelemetry& tel,
                 bool recovered) {
  const fs::path job_file = dp.running / (stem + ".json");
  const fs::path out_dir = dp.running / (stem + ".out");
  const fs::path ckpt = dp.checkpoints / (stem + ".ckpt.jsonl");
  std::string job_id = stem;
  std::string kind;
  try {
    const JobSpec spec = JobSpec::parse_file(job_file.string());
    job_id = spec.id;
    kind = to_string(spec.kind);
    tel.job_started(job_id, kind, recovered);
    JobPaths paths;
    paths.output_dir = out_dir.string();
    // Run-kind jobs have no fold units to restore; sweep/fleet checkpoint.
    if (spec.kind != JobKind::Run) paths.checkpoint_path = ckpt.string();
    paths.on_progress = [&tel](const JobProgress& p) { tel.job_progress(p); };
    std::printf("serve: job %s (%s) started\n", spec.id.c_str(),
                to_string(spec.kind).c_str());
    std::fflush(stdout);
    const JobOutcome outcome = run_job(spec, paths, opts.jobs);
    replace_rename(out_dir, dp.done / (stem + ".out"));
    replace_rename(job_file, dp.done / (stem + ".json"));
    tel.job_finished(job_id, kind, outcome);
    std::printf("serve: job %s done (%zu units executed, %zu restored)\n",
                spec.id.c_str(), outcome.executed_units,
                outcome.restored_units);
    std::fflush(stdout);
  } catch (const std::exception& e) {
    std::error_code ec;
    fs::remove(ckpt, ec);  // a failed job must not poison a future re-drop
    // Move the half-built artifacts first so the error file can point at
    // the flight dumps where they will actually live.
    std::string flight_note;
    if (fs::exists(out_dir, ec)) {
      replace_rename(out_dir, dp.failed / (stem + ".out"));
      const fs::path flight = dp.failed / (stem + ".out") / "flight";
      if (has_files(flight)) flight_note = flight.string();
    }
    std::string error_text = e.what();
    if (!flight_note.empty()) {
      error_text += "\nflight dumps: " + flight_note;
    }
    write_error_file(dp.failed / (stem + ".error.txt"), error_text);
    replace_rename(job_file, dp.failed / (stem + ".json"));
    tel.job_failed(job_id, e.what(), flight_note);
    std::printf("serve: job %s failed: %s\n", stem.c_str(), e.what());
    std::fflush(stdout);
  }
}

}  // namespace

int run_daemon(const DaemonOptions& opts) {
  DaemonPaths dp;
  const fs::path root = opts.root;
  dp.queue = root / "queue";
  dp.running = root / "running";
  dp.done = root / "done";
  dp.failed = root / "failed";
  dp.checkpoints = root / "checkpoints";
  try {
    for (const fs::path* d :
         {&dp.queue, &dp.running, &dp.done, &dp.failed, &dp.checkpoints}) {
      fs::create_directories(*d);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "dvs_sim serve: cannot prepare %s: %s\n",
                 opts.root.c_str(), e.what());
    return 2;
  }

  std::signal(SIGTERM, handle_stop);
  std::signal(SIGINT, handle_stop);

  DaemonTelemetry tel(opts.root, dp);
  tel.daemon_started();

  std::printf("serve: watching %s (jobs=%d, poll=%dms%s)\n",
              dp.queue.string().c_str(), opts.jobs, opts.poll_ms,
              opts.drain ? ", drain" : "");
  std::fflush(stdout);

  std::size_t processed = 0;
  const auto budget_left = [&] {
    return opts.max_jobs == 0 || processed < opts.max_jobs;
  };

  // Crash recovery: a previous daemon's running/ jobs come first — their
  // checkpoints are freshest and their artifacts are already half-built.
  for (const std::string& stem : job_stems(dp.running)) {
    if (g_stop != 0 || !budget_left()) break;
    std::printf("serve: recovering interrupted job %s\n", stem.c_str());
    std::fflush(stdout);
    process_job(dp, stem, opts, tel, /*recovered=*/true);
    ++processed;
  }

  while (g_stop == 0 && budget_left()) {
    const std::vector<std::string> stems = job_stems(dp.queue);
    if (stems.empty()) {
      if (opts.drain) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(opts.poll_ms));
      continue;
    }
    for (const std::string& stem : stems) {
      if (g_stop != 0 || !budget_left()) break;
      // Claim by atomic rename; losing a race (ENOENT) just means another
      // process took it — irrelevant today, cheap insurance tomorrow.
      std::error_code ec;
      fs::rename(dp.queue / (stem + ".json"), dp.running / (stem + ".json"),
                 ec);
      if (ec) continue;
      process_job(dp, stem, opts, tel, /*recovered=*/false);
      ++processed;
    }
  }

  tel.daemon_stopped(processed);
  std::printf("serve: exiting after %zu job%s\n", processed,
              processed == 1 ? "" : "s");
  std::fflush(stdout);
  return 0;
}

}  // namespace dvs::serve
