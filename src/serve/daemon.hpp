// The `dvs_sim serve` daemon: a file-drop job queue over one directory
// tree.  Filesystem rename is the only coordination primitive — atomic on
// one filesystem, observable with `ls`, and recoverable after a SIGKILL by
// looking at which directory a job file sits in.
//
//   <root>/queue/<name>.json     waiting jobs; enqueue = atomic rename in
//   <root>/running/<name>.json   the job currently being executed
//   <root>/running/<name>.out/   its artifacts while in flight
//   <root>/done/<name>.json      completed jobs (+ <name>.out/ artifacts)
//   <root>/failed/<name>.json    rejected/crashed jobs (+ <name>.error.txt)
//   <root>/checkpoints/<name>.ckpt.jsonl   durable progress of running jobs
//   <root>/events.jsonl          lifecycle event log (dvs-events-v1),
//                                flushed per record, monotone seq numbers
//   <root>/status.json           atomically-replaced snapshot
//                                (dvs-serve-status-v1): pid/uptime, per-job
//                                progress + ETA, cache warmth
//   <root>/metrics.om            OpenMetrics scrape file folding every
//                                done/<name>.out/job_summary.json in sorted
//                                stem order (byte-identical regardless of
//                                completion order)
//
// Observe a live daemon with `dvs_sim status <root>` and
// `dvs_sim tail <root>` (docs/SERVING.md "Observing a live daemon").
//
// Claim order is lexicographic file-name order (drop "000-", "001-"
// prefixes to sequence work).  Dotfiles and non-.json entries are ignored,
// so `mv tmp queue/job.json` plus editors' swap files are both safe.
//
// Crash recovery: on startup any job still in running/ is re-executed
// first, restoring from its checkpoint — completed sweep points / fleet
// shards are skipped and the final CSVs are byte-identical to an
// uninterrupted run.  SIGTERM/SIGINT finish the current job, then exit;
// SIGKILL is the crash path recovery exists for.
#pragma once

#include <cstddef>
#include <string>

namespace dvs::serve {

struct DaemonOptions {
  std::string root;  ///< queue root; subdirectories are created as needed
  int jobs = 0;      ///< worker threads per job when the job says 0 (0 = hw)
  int poll_ms = 200;  ///< queue scan interval while idle
  /// Exit once queue/ and running/ are both empty (batch mode; also the CI
  /// smoke mode).  false = keep serving until a signal.
  bool drain = false;
  std::size_t max_jobs = 0;  ///< stop after N jobs (0 = unlimited)
};

/// Runs the daemon loop; returns a process exit code (0 = clean shutdown,
/// 2 = unusable root directory).  Installs SIGTERM/SIGINT handlers for
/// graceful shutdown (restores nothing: the process exits afterwards).
int run_daemon(const DaemonOptions& opts);

}  // namespace dvs::serve
