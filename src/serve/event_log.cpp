#include "serve/event_log.hpp"

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <stdexcept>

#include "common/json.hpp"

namespace dvs::serve {
namespace {

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

double now_unix() {
  const auto now = std::chrono::system_clock::now().time_since_epoch();
  return std::chrono::duration<double>(now).count();
}

std::string fmt_ts(double ts) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", ts);
  return buf;
}

}  // namespace

EventLog::EventLog(const std::string& path) {
  // A SIGKILL mid-append leaves a torn final line with no newline; an
  // append-mode reopen would glue the next record onto that fragment and
  // render the glued line unparsable — hiding every later event from
  // readers.  Truncate back to the last complete line first (the WAL
  // recovery discipline): the torn record was never durable, and its
  // transition is re-narrated by the recovery events that follow.
  std::error_code ec;
  if (std::filesystem::exists(path, ec)) {
    std::ifstream in(path, std::ios::binary);
    std::string content{std::istreambuf_iterator<char>(in),
                        std::istreambuf_iterator<char>()};
    if (!content.empty() && content.back() != '\n') {
      const std::size_t nl = content.rfind('\n');
      std::filesystem::resize_file(
          path, nl == std::string::npos ? 0 : nl + 1, ec);
    }
  }
  // Resume the sequence counter from the intact prefix so seq stays
  // monotone across daemon restarts (and past a SIGKILL-torn tail).
  for (const ServeEvent& ev : load_events(path)) seq_ = ev.seq;
  const bool fresh = !std::filesystem::exists(path, ec) ||
                     std::filesystem::file_size(path, ec) == 0;
  out_.open(path, std::ios::app);
  if (!out_) {
    throw std::runtime_error("EventLog: cannot open " + path);
  }
  if (fresh) {
    out_ << "{\"schema\": \"" << kEventsSchema << "\"}\n";
    out_.flush();
  }
}

void EventLog::append(const std::string& type, const std::string& job,
                      const std::string& fields) {
  out_ << "{\"seq\": " << ++seq_ << ", \"ts\": " << fmt_ts(now_unix())
       << ", \"event\": \"" << type << "\"";
  if (!job.empty()) out_ << ", \"job\": \"" << escape(job) << "\"";
  if (!fields.empty()) out_ << ", " << fields;
  out_ << "}\n";
  out_.flush();
}

void EventLog::daemon_start(int pid) {
  append("daemon_start", "", "\"pid\": " + std::to_string(pid));
}

void EventLog::daemon_stop(std::size_t jobs_processed) {
  append("daemon_stop", "",
         "\"jobs_processed\": " + std::to_string(jobs_processed));
}

void EventLog::job_claimed(const std::string& job, bool recovered) {
  append(recovered ? "job_recovered" : "job_claimed", job, "");
}

void EventLog::checkpoint_flush(const std::string& job, std::size_t units_done,
                                std::size_t units_total) {
  append("checkpoint_flush", job,
         "\"units_done\": " + std::to_string(units_done) +
             ", \"units_total\": " + std::to_string(units_total));
}

void EventLog::job_finished(const std::string& job, const std::string& kind,
                            std::size_t executed, std::size_t restored) {
  append("job_finished", job,
         "\"kind\": \"" + kind + "\", \"executed\": " +
             std::to_string(executed) +
             ", \"restored\": " + std::to_string(restored));
}

void EventLog::job_failed(const std::string& job, const std::string& error,
                          const std::string& flight_dir) {
  std::string fields = "\"error\": \"" + escape(error) + "\"";
  if (!flight_dir.empty()) {
    fields += ", \"flight_dir\": \"" + escape(flight_dir) + "\"";
  }
  append("job_failed", job, fields);
}

std::vector<ServeEvent> load_events(const std::string& path) {
  std::vector<ServeEvent> events;
  std::ifstream in(path);
  if (!in) return events;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    json::ValuePtr doc;
    try {
      doc = json::parse(line);
    } catch (const json::ParseError&) {
      break;  // torn tail after a SIGKILL: keep the intact prefix
    }
    if (const json::Value* schema = doc->find("schema"); schema != nullptr) {
      if (!schema->is_string() || schema->as_string() != kEventsSchema) {
        throw std::runtime_error("event log " + path +
                                 ": header schema is not \"" +
                                 std::string(kEventsSchema) + "\"");
      }
      continue;
    }
    try {
      ServeEvent ev;
      ev.seq = static_cast<std::uint64_t>(doc->number_or("seq", 0));
      ev.ts = doc->number_or("ts", 0.0);
      ev.type = doc->string_or("event", "");
      ev.job = doc->string_or("job", "");
      ev.kind = doc->string_or("kind", "");
      ev.error = doc->string_or("error", "");
      ev.flight_dir = doc->string_or("flight_dir", "");
      ev.units_done = static_cast<std::size_t>(doc->number_or("units_done", 0));
      ev.units_total =
          static_cast<std::size_t>(doc->number_or("units_total", 0));
      ev.executed = static_cast<std::size_t>(doc->number_or("executed", 0));
      ev.restored = static_cast<std::size_t>(doc->number_or("restored", 0));
      ev.pid = static_cast<int>(doc->number_or("pid", 0));
      ev.jobs_processed =
          static_cast<std::size_t>(doc->number_or("jobs_processed", 0));
      if (ev.type.empty() || ev.seq == 0) break;  // shape-torn record
      events.push_back(std::move(ev));
    } catch (const std::runtime_error&) {
      break;  // shape-torn record: stop at the prefix
    }
  }
  return events;
}

}  // namespace dvs::serve
