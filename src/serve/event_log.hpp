// Daemon lifecycle event log (`dvs-events-v1`): an append-only JSONL file
// at `<root>/events.jsonl`, one flushed record per lifecycle transition —
// daemon start/stop, job claimed/recovered, checkpoint flushed, job
// finished/failed.  The file is the daemon's durable narration: `dvs_sim
// tail` follows it live, `dvs_sim report --serve-root` renders it as a
// timeline, and after a SIGKILL the intact prefix plus the next daemon's
// recovery events reconstruct the full job history.
//
// Line 1 (header, written once when the file starts empty):
//   {"schema": "dvs-events-v1"}
// Every subsequent line is one event:
//   {"seq": 12, "ts": 1754650000.123456, "event": "job_claimed",
//    "job": "nightly-fleet", ...event-specific fields...}
//
// `seq` is monotone across daemon restarts: a new writer resumes from the
// last intact record's sequence number, so an observer can order events
// from several daemon lifetimes and detect the torn tail a SIGKILL leaves
// (the loader keeps every line up to the first unparsable one, the same
// contract as dvs-checkpoint-v1).  `ts` is a wall-clock unix timestamp in
// seconds — events are for operators, unlike the simulation's own
// deterministic artifacts.  Every append flushes, so `tail -f` and
// `dvs_sim tail` see a record the moment the transition happens.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

namespace dvs::serve {

inline constexpr const char* kEventsSchema = "dvs-events-v1";

/// One parsed lifecycle event.  Fields not carried by the event's type
/// keep their zero/empty defaults.
struct ServeEvent {
  std::uint64_t seq = 0;
  double ts = 0.0;  ///< unix seconds, wall clock
  std::string type;
  std::string job;
  std::string kind;         ///< job_finished: run|sweep|fleet
  std::string error;        ///< job_failed: exception text
  std::string flight_dir;   ///< job_failed: flight-dump dir, when any exist
  std::size_t units_done = 0;   ///< checkpoint_flush
  std::size_t units_total = 0;  ///< checkpoint_flush
  std::size_t executed = 0;     ///< job_finished
  std::size_t restored = 0;     ///< job_finished
  int pid = 0;                  ///< daemon_start
  std::size_t jobs_processed = 0;  ///< daemon_stop
};

/// Appends lifecycle events to `<root>/events.jsonl`, one flushed JSONL
/// record per call.  Construction truncates a SIGKILL-torn trailing line
/// back to the last complete record (WAL recovery — appending after the
/// fragment would corrupt the next line), then loads the intact prefix to
/// resume the sequence counter.
class EventLog {
 public:
  /// Opens `path` for append; writes the schema header when the file is
  /// new.  Throws std::runtime_error when the file cannot be opened.
  explicit EventLog(const std::string& path);

  void daemon_start(int pid);
  void daemon_stop(std::size_t jobs_processed);
  /// `recovered` = the job was found in running/ after a crash rather
  /// than claimed from the queue (event type "job_recovered").
  void job_claimed(const std::string& job, bool recovered = false);
  void checkpoint_flush(const std::string& job, std::size_t units_done,
                        std::size_t units_total);
  void job_finished(const std::string& job, const std::string& kind,
                    std::size_t executed, std::size_t restored);
  void job_failed(const std::string& job, const std::string& error,
                  const std::string& flight_dir);

  /// Sequence number of the most recently appended (or recovered) record;
  /// 0 when the log is empty.
  [[nodiscard]] std::uint64_t last_seq() const { return seq_; }

 private:
  /// Writes one record with the common prefix plus `fields` (pre-rendered
  /// JSON members, e.g. `"pid": 42`), then flushes.
  void append(const std::string& type, const std::string& job,
              const std::string& fields);

  std::ofstream out_;
  std::uint64_t seq_ = 0;
};

/// Loads an event log; a missing file yields an empty vector, a torn
/// trailing line ends the load at the last intact record (the checkpoint
/// contract).  Throws std::runtime_error when the header names a
/// different schema.
std::vector<ServeEvent> load_events(const std::string& path);

}  // namespace dvs::serve
