#include "serve/job_runner.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <memory>
#include <optional>
#include <stdexcept>
#include <vector>

#include <chrono>

#include "common/csv.hpp"
#include "core/sweep.hpp"
#include "fault/trace_transforms.hpp"
#include "fleet/fleet_runner.hpp"
#include "serve/checkpoint.hpp"
#include "serve/status.hpp"
#include "workload/clips.hpp"
#include "workload/trace.hpp"

namespace dvs::serve {
namespace {

namespace fs = std::filesystem;

/// Optional checkpointing: writer + restored state live together so the
/// restore map outlives the runner call.
struct CheckpointSession {
  CheckpointData restored;
  std::optional<CheckpointWriter> writer;
};

CheckpointSession open_checkpoint(const JobSpec& spec,
                                  const std::string& path) {
  CheckpointSession s;
  if (path.empty()) return s;
  s.restored = load_checkpoint(path);
  if (!s.restored.empty() && s.restored.kind != to_string(spec.kind)) {
    throw std::runtime_error("checkpoint " + path + " is for a " +
                             s.restored.kind + " job, not " +
                             to_string(spec.kind));
  }
  s.writer.emplace(path, spec.id, to_string(spec.kind), spec.checkpoint_every);
  return s;
}

JobOutcome run_sweep_job(const JobSpec& spec, const JobPaths& paths,
                         int jobs) {
  core::ScenarioSpec scenario = *spec.spec_scenario();
  if (spec.sweep.replicates > 0) scenario.replicates = spec.sweep.replicates;
  if (spec.seed_set) scenario.base_seed = spec.seed;
  if (!spec.sweep.faults.empty()) {
    scenario.faults = fault::parse_fault_list(spec.sweep.faults);
  }
  if (!spec.sweep.policy.empty()) scenario.policies = {spec.sweep.policy};

  CheckpointSession ckpt = open_checkpoint(spec, paths.checkpoint_path);
  const std::size_t total = scenario.num_points();

  core::SweepOptions sopts;
  sopts.jobs = jobs;
  // Always collect quantiles: the cells CSV must carry the same percentile
  // columns whether the job ran straight through or resumed from a
  // checkpoint, and restored sketches can only merge into collected ones.
  sopts.collect_quantiles = true;
  sopts.heartbeat_path = paths.output_dir + "/heartbeat.jsonl";
  sopts.heartbeat_job = spec.id;
  // Anomaly auto-dumps land with the job's other artifacts, not the
  // daemon's CWD; the point/replicate in the name is the trace context
  // back to the checkpoint record.
  const std::string flight_dir = paths.output_dir + "/flight";
  fs::create_directories(flight_dir);
  const std::string scenario_name = scenario.name;
  sopts.configure_run = [flight_dir, scenario_name](const core::RunPoint& p,
                                                    core::RunOptions& ropts) {
    ropts.flight_dump_path = flight_dir + "/" + scenario_name + "_point" +
                             std::to_string(p.index) + "_rep" +
                             std::to_string(p.replicate) + ".flight.txt";
  };
  if (!ckpt.restored.points.empty()) sopts.restored = &ckpt.restored.points;
  if (ckpt.writer || paths.on_progress) {
    CheckpointWriter* w = ckpt.writer ? &*ckpt.writer : nullptr;
    std::size_t done = ckpt.restored.points.size();
    sopts.on_point_checkpoint = [w, &paths, total, done](
                                    const core::RunPoint& p,
                                    const core::Metrics& m,
                                    const obs::QuantileSketch& sketch) mutable {
      const bool flushed = w != nullptr && w->append_point(p.index, m, sketch);
      if (paths.on_progress) paths.on_progress({++done, total, flushed});
    };
  }

  const core::SweepResult res = core::SweepRunner{sopts}.run(scenario);
  if (ckpt.writer) ckpt.writer->flush();

  CsvWriter cells{paths.output_dir + "/sweep_cells.csv"};
  res.write_cells_csv(cells);
  CsvWriter points{paths.output_dir + "/sweep_points.csv"};
  res.write_points_csv(points);

  JobOutcome out;
  out.restored_units = ckpt.restored.points.size();
  out.executed_units = res.points.size() - out.restored_units;

  JobSummary summary;
  summary.job_id = spec.id;
  summary.kind = to_string(spec.kind);
  summary.units_total = total;
  summary.executed = out.executed_units;
  summary.restored = out.restored_units;
  for (const core::PointResult& p : res.points) {
    summary.frames_decoded += p.metrics.frames_decoded;
    summary.frames_dropped += p.metrics.frames_dropped;
    summary.energy_j += p.metrics.total_energy.value();
    summary.frame_delay_sum_s += p.metrics.mean_frame_delay.value() *
                                 static_cast<double>(p.metrics.frames_decoded);
  }
  // Cell order — the same pinned fold the cells CSV uses, so the summary
  // sketch is byte-stable at any --jobs and across restarts.
  for (const core::CellResult& c : res.cells) {
    summary.frame_delay_sketch.merge(c.delay_sketch);
  }
  summary.elapsed_s = res.wall_seconds;
  write_job_summary(summary, paths.output_dir + "/job_summary.json");
  return out;
}

JobOutcome run_fleet_job(const JobSpec& spec, const JobPaths& paths,
                         int jobs) {
  dvs::fleet::FleetSpec fspec = *spec.spec_fleet();
  if (spec.fleet.devices > 0) fspec.num_devices = spec.fleet.devices;
  if (spec.seed_set) fspec.fleet_seed = spec.seed;

  CheckpointSession ckpt = open_checkpoint(spec, paths.checkpoint_path);

  dvs::fleet::FleetOptions fopts;
  fopts.jobs = jobs;
  if (spec.fleet.shard_size > 0) fopts.shard_size = spec.fleet.shard_size;
  fopts.heartbeat_path = paths.output_dir + "/heartbeat.jsonl";
  fopts.heartbeat_job = spec.id;
  const std::size_t shards =
      (fspec.num_devices + fopts.shard_size - 1) / fopts.shard_size;
  if (!ckpt.restored.shards.empty()) fopts.restored = &ckpt.restored.shards;
  if (ckpt.writer || paths.on_progress) {
    CheckpointWriter* w = ckpt.writer ? &*ckpt.writer : nullptr;
    std::size_t done = ckpt.restored.shards.size();
    fopts.on_shard = [w, &paths, shards, done](
                         std::size_t shard,
                         const dvs::fleet::FleetShardPartial& part) mutable {
      const bool flushed = w != nullptr && w->append_shard(shard, part);
      if (paths.on_progress) paths.on_progress({++done, shards, flushed});
    };
  }

  const dvs::fleet::FleetResult res = dvs::fleet::FleetRunner{fopts}.run(fspec);
  if (ckpt.writer) ckpt.writer->flush();

  CsvWriter csv{paths.output_dir + "/fleet.csv"};
  res.write_csv(csv);

  JobOutcome out;
  out.restored_units = ckpt.restored.shards.size();
  out.executed_units = shards - std::min(shards, out.restored_units);

  JobSummary summary;
  summary.job_id = spec.id;
  summary.kind = to_string(spec.kind);
  summary.units_total = shards;
  summary.executed = out.executed_units;
  summary.restored = out.restored_units;
  summary.frames_decoded = res.total.frames_decoded;
  summary.frames_dropped = res.total.frames_dropped;
  summary.energy_j = res.total.energy_j;
  // Over-devices distribution (one sample per device's mean delay) — the
  // fleet-wide fold, already pinned in shard order by the runner.
  summary.device_delay_sketch = res.total.delay_sketch;
  summary.device_delay_sum_s = res.total.sum_mean_delay_s;
  summary.elapsed_s = res.wall_seconds;
  write_job_summary(summary, paths.output_dir + "/job_summary.json");
  return out;
}

JobOutcome run_run_job(const JobSpec& spec, const JobPaths& paths, int jobs) {
  (void)jobs;  // a single engine run is inherently serial
  const auto t0 = std::chrono::steady_clock::now();
  // Observability attachments: a private registry harvests the frame-delay
  // sketch for job_summary.json, and the flight recorder's auto-dump is
  // routed next to the job's other artifacts.  Neither feeds the results.
  obs::MetricsRegistry reg;
  const std::string flight_dir = paths.output_dir + "/flight";
  fs::create_directories(flight_dir);
  const RunJob& r = spec.run;
  const core::CpuAsset cpu_asset = core::build_cpu_asset("sa1100");
  const hw::Sa1100& cpu = cpu_asset.cpu;
  const std::uint64_t seed = spec.seed_set ? spec.seed : 1;

  core::DetectorFactoryConfig detector_cfg;
  core::RunAssembly assembly;
  assembly.detector = resolve_detector(r.detector);
  if (assembly.detector == core::DetectorKind::ChangePoint) {
    detector_cfg.prepare();
  }
  if (!r.policy.empty()) assembly.policy = r.policy;
  assembly.service_cv2 = r.cv2;
  assembly.dpm.kind = *core::dpm_kind_from_string(r.dpm);
  assembly.dpm.max_delay = seconds(r.dpm_delay);
  assembly.engine_seed = seed;

  std::vector<fault::TraceFault> trace_faults;
  std::vector<fault::FaultSpec> fault_specs;
  if (!r.faults.empty()) {
    fault_specs = fault::parse_fault_list(r.faults);
    for (const fault::FaultSpec& f : fault_specs) {
      trace_faults.insert(trace_faults.end(), f.trace_faults.begin(),
                          f.trace_faults.end());
    }
    assembly.faults = &fault_specs.front();
  }
  Rng fault_rng{core::mix_seed(seed, 0xfa)};

  core::Metrics m;
  if (r.session) {
    core::SessionConfig scfg;
    scfg.cycles = r.cycles;
    scfg.seed = seed;
    if (r.seconds > 0.0) scfg.mpeg_segment = seconds(r.seconds);
    core::Session session = core::build_session(scfg, cpu);
    if (!trace_faults.empty()) {
      for (core::PlaybackItem& item : session.items) {
        item.trace = fault::apply_faults(item.trace, trace_faults, fault_rng);
      }
    }
    assembly.delay_target = seconds(r.delay > 0.0 ? r.delay : 0.1);
    core::RunOptions opts = core::assemble_run_options(
        assembly, cpu_asset, session.idle_model, detector_cfg);
    opts.metrics = &reg;
    opts.flight_dump_path = flight_dir + "/run.flight.txt";
    m = core::run_items(session.items, opts);
  } else {
    std::optional<workload::FrameTrace> trace;
    std::optional<workload::DecoderModel> decoder;
    if (r.media == "mp3") {
      decoder = workload::reference_mp3_decoder(cpu.max_frequency());
      Rng rng{seed};
      trace = workload::build_mp3_trace(workload::mp3_sequence(r.sequence),
                                        *decoder, rng);
    } else {
      decoder = workload::reference_mpeg_decoder(cpu.max_frequency());
      workload::MpegClip clip = r.clip == "terminator2"
                                    ? workload::terminator2_clip()
                                    : workload::football_clip();
      if (r.seconds > 0.0) {
        clip.duration = seconds(std::min(r.seconds, clip.duration.value()));
      }
      Rng rng{seed};
      trace = workload::build_mpeg_trace(clip, *decoder, rng);
    }
    if (!trace_faults.empty()) {
      trace = fault::apply_faults(*trace, trace_faults, fault_rng);
    }
    const auto idle = core::default_idle_distribution();
    const bool audio = trace->type() == workload::MediaType::Mp3Audio;
    assembly.delay_target =
        seconds(r.delay > 0.0 ? r.delay : (audio ? 0.15 : 0.1));
    core::RunOptions opts =
        core::assemble_run_options(assembly, cpu_asset, idle, detector_cfg);
    opts.metrics = &reg;
    opts.flight_dump_path = flight_dir + "/run.flight.txt";
    m = core::run_single_trace(*trace, *decoder, opts);
  }

  // The run's machine artifact: a one-row CSV with the table-level numbers
  // (%.17g comes only from checkpoints; this is a report, not a fold input).
  CsvWriter csv{paths.output_dir + "/run.csv"};
  csv.write_row(std::vector<std::string>{
      "duration_s", "energy_j", "avg_power_mw", "frames_decoded",
      "frames_dropped", "mean_delay_s", "max_delay_s", "cpu_switches",
      "dpm_sleeps"});
  csv.write_row(std::vector<double>{
      m.duration.value(), m.total_energy.value(), m.average_power.value(),
      static_cast<double>(m.frames_decoded),
      static_cast<double>(m.frames_dropped), m.mean_frame_delay.value(),
      m.max_frame_delay.value(), static_cast<double>(m.cpu_switches),
      static_cast<double>(m.dpm_sleeps)});

  JobOutcome out;
  out.executed_units = 1;

  JobSummary summary;
  summary.job_id = spec.id;
  summary.kind = to_string(spec.kind);
  summary.units_total = 1;
  summary.executed = 1;
  summary.frames_decoded = m.frames_decoded;
  summary.frames_dropped = m.frames_dropped;
  summary.energy_j = m.total_energy.value();
  if (const obs::HistogramMetric* h = reg.find_histogram("frames.delay_s")) {
    summary.frame_delay_sketch = h->sketch();
    summary.frame_delay_sum_s = h->count() > 0 ? h->stats().sum() : 0.0;
  }
  summary.elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  write_job_summary(summary, paths.output_dir + "/job_summary.json");
  if (paths.on_progress) paths.on_progress({1, 1, false});
  return out;
}

}  // namespace

JobOutcome run_job(const JobSpec& spec, const JobPaths& paths,
                   int default_jobs) {
  spec.validate();
  fs::create_directories(paths.output_dir);
  const int jobs = spec.jobs > 0 ? spec.jobs : default_jobs;

  JobOutcome out;
  switch (spec.kind) {
    case JobKind::Run: out = run_run_job(spec, paths, jobs); break;
    case JobKind::Sweep: out = run_sweep_job(spec, paths, jobs); break;
    case JobKind::Fleet: out = run_fleet_job(spec, paths, jobs); break;
  }
  // Success: the checkpoint has served its purpose; a finished job must
  // never be "resumed".
  if (!paths.checkpoint_path.empty()) {
    std::error_code ec;
    fs::remove(paths.checkpoint_path, ec);
  }
  return out;
}

}  // namespace dvs::serve
