// JobRunner: executes one validated JobSpec to completion inside the
// daemon's process.  The runner is the serve-side twin of the run/sweep/
// fleet subcommands — same assemble_run_options construction path, same
// runners, same CSV writers — plus the two things only a daemon needs:
// checkpoint emission while running and checkpoint restore on entry.
//
// Process-wide warm state is deliberate: the change-point threshold table
// (detect::shared_threshold_table) and TISMDP solutions (dpm solve cache)
// are keyed caches that persist across run_job calls, so the second job of
// a back-to-back pair recomputes neither (asserted by tests/serve).
#pragma once

#include <cstddef>
#include <functional>
#include <string>

#include "serve/job_spec.hpp"

namespace dvs::serve {

/// One completed fold-unit's progress notification (sweep point / fleet
/// shard / the whole run for run-kind jobs).
struct JobProgress {
  std::size_t units_done = 0;   ///< restored + executed so far
  std::size_t units_total = 0;  ///< total fold-units of this job
  /// True when this unit's checkpoint record hit a durability flush — the
  /// daemon turns exactly these into checkpoint_flush events.
  bool flushed = false;
};

struct JobPaths {
  /// Directory that receives every artifact of this job (CSVs, heartbeat
  /// JSONL, flight dumps, job_summary.json).  Created if missing.
  std::string output_dir;
  /// Checkpoint JSONL path; empty disables checkpoint/restore (run-kind
  /// jobs never checkpoint — a single engine run is the atomic unit).
  std::string checkpoint_path;
  /// Progress callback, fired serially per completed fold-unit (completion
  /// order, under the runner's progress lock) — the daemon's live
  /// status.json feed.  May be empty.
  std::function<void(const JobProgress&)> on_progress;
};

struct JobOutcome {
  /// Fold-units (sweep points / fleet shards / 1 for run) restored from the
  /// checkpoint instead of executed.
  std::size_t restored_units = 0;
  /// Fold-units actually executed this call.
  std::size_t executed_units = 0;
};

/// Runs the job start to finish; throws on invalid specs and I/O failures
/// (the daemon maps exceptions to failed/).  `default_jobs` supplies the
/// worker-thread count when the spec's own `jobs` is 0.
JobOutcome run_job(const JobSpec& spec, const JobPaths& paths,
                   int default_jobs);

}  // namespace dvs::serve
