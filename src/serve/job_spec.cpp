#include "serve/job_spec.hpp"

#include <fstream>
#include <ostream>
#include <set>
#include <sstream>
#include <stdexcept>

#include "core/scenario.hpp"
#include "fault/fault_spec.hpp"
#include "fleet/fleet_spec.hpp"
#include "policy/governor_factory.hpp"

namespace dvs::serve {
namespace {

[[noreturn]] void bad(const std::string& what) {
  throw std::invalid_argument("dvs-job-v1: " + what);
}

/// Rejects members outside `allowed` so a typo'd knob ("replicate") fails
/// the job instead of silently running the default.
void check_keys(const json::Value& obj, const char* where,
                const std::set<std::string>& allowed) {
  for (const auto& [key, value] : obj.as_object()) {
    (void)value;
    if (allowed.count(key) == 0) {
      bad(std::string("unknown key \"") + key + "\" in " + where);
    }
  }
}

double number_field(const json::Value& obj, const std::string& key,
                    double fallback) {
  return obj.number_or(key, fallback);
}

bool bool_field(const json::Value& obj, const std::string& key, bool fallback) {
  const json::Value* v = obj.find(key);
  return v == nullptr ? fallback : v->as_bool();
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace

core::DetectorKind resolve_detector(const std::string& name) {
  if (name == "ideal") return core::DetectorKind::Ideal;
  if (name == "change-point" || name == "cp") return core::DetectorKind::ChangePoint;
  if (name == "ema" || name == "exp-average") return core::DetectorKind::ExpAverage;
  if (name == "max") return core::DetectorKind::Max;
  if (name == "sliding-window") return core::DetectorKind::SlidingWindow;
  bad("unknown detector \"" + name + "\"");
}

std::string to_string(JobKind kind) {
  switch (kind) {
    case JobKind::Run: return "run";
    case JobKind::Sweep: return "sweep";
    case JobKind::Fleet: return "fleet";
  }
  return "?";
}

JobSpec JobSpec::parse(const json::Value& doc, const std::string& fallback_id) {
  if (!doc.is_object()) bad("document is not a JSON object");
  const std::string schema = doc.string_or("schema", "");
  if (schema != kJobSchema) {
    bad("schema is \"" + schema + "\", expected \"" + kJobSchema + "\"");
  }
  check_keys(doc, "job", {"schema", "id", "kind", "seed", "jobs",
                          "checkpoint_every", "run", "sweep", "fleet"});

  JobSpec spec;
  spec.id = doc.string_or("id", fallback_id);
  if (spec.id.empty()) bad("job has no \"id\" and no usable file stem");

  const std::string kind = doc.string_or("kind", "");
  if (kind == "run") spec.kind = JobKind::Run;
  else if (kind == "sweep") spec.kind = JobKind::Sweep;
  else if (kind == "fleet") spec.kind = JobKind::Fleet;
  else bad("\"kind\" must be run|sweep|fleet, got \"" + kind + "\"");

  if (const json::Value* seed = doc.find("seed"); seed != nullptr) {
    spec.seed = static_cast<std::uint64_t>(seed->as_number());
    spec.seed_set = true;
  }
  spec.jobs = static_cast<int>(number_field(doc, "jobs", 0));
  if (spec.jobs < 0) bad("\"jobs\" must be >= 0");
  spec.checkpoint_every =
      static_cast<std::size_t>(number_field(doc, "checkpoint_every", 1));
  if (spec.checkpoint_every == 0) spec.checkpoint_every = 1;

  for (const char* section : {"run", "sweep", "fleet"}) {
    if (doc.find(section) != nullptr && section != kind) {
      bad(std::string("section \"") + section + "\" present but kind is \"" +
          kind + "\"");
    }
  }

  switch (spec.kind) {
    case JobKind::Run: {
      if (const json::Value* r = doc.find("run"); r != nullptr) {
        check_keys(*r, "run section",
                   {"media", "sequence", "clip", "seconds", "session", "cycles",
                    "detector", "policy", "dpm", "dpm_delay", "delay", "cv2",
                    "faults"});
        spec.run.media = r->string_or("media", spec.run.media);
        spec.run.sequence = r->string_or("sequence", spec.run.sequence);
        spec.run.clip = r->string_or("clip", spec.run.clip);
        spec.run.seconds = number_field(*r, "seconds", spec.run.seconds);
        spec.run.session = bool_field(*r, "session", spec.run.session);
        spec.run.cycles =
            static_cast<int>(number_field(*r, "cycles", spec.run.cycles));
        spec.run.detector = r->string_or("detector", spec.run.detector);
        spec.run.policy = r->string_or("policy", spec.run.policy);
        spec.run.dpm = r->string_or("dpm", spec.run.dpm);
        spec.run.dpm_delay = number_field(*r, "dpm_delay", spec.run.dpm_delay);
        spec.run.delay = number_field(*r, "delay", spec.run.delay);
        spec.run.cv2 = number_field(*r, "cv2", spec.run.cv2);
        spec.run.faults = r->string_or("faults", spec.run.faults);
      }
      break;
    }
    case JobKind::Sweep: {
      const json::Value* s = doc.find("sweep");
      if (s == nullptr) bad("kind \"sweep\" requires a \"sweep\" section");
      check_keys(*s, "sweep section",
                 {"scenario", "replicates", "faults", "policy"});
      spec.sweep.scenario = s->string_or("scenario", "");
      spec.sweep.replicates =
          static_cast<int>(number_field(*s, "replicates", 0));
      spec.sweep.faults = s->string_or("faults", "");
      spec.sweep.policy = s->string_or("policy", "");
      break;
    }
    case JobKind::Fleet: {
      const json::Value* f = doc.find("fleet");
      if (f == nullptr) bad("kind \"fleet\" requires a \"fleet\" section");
      check_keys(*f, "fleet section", {"name", "devices", "shard_size"});
      spec.fleet.name = f->string_or("name", "");
      spec.fleet.devices =
          static_cast<std::size_t>(number_field(*f, "devices", 0));
      spec.fleet.shard_size =
          static_cast<std::size_t>(number_field(*f, "shard_size", 0));
      break;
    }
  }

  spec.validate();
  return spec;
}

JobSpec JobSpec::parse_text(const std::string& text,
                            const std::string& fallback_id) {
  return parse(*json::parse(text), fallback_id);
}

JobSpec JobSpec::parse_file(const std::string& path) {
  std::string stem = path;
  if (const auto slash = stem.find_last_of('/'); slash != std::string::npos) {
    stem = stem.substr(slash + 1);
  }
  if (const auto dot = stem.find_last_of('.'); dot != std::string::npos) {
    stem = stem.substr(0, dot);
  }
  return parse(*json::parse_file(path), stem);
}

void JobSpec::validate() const {
  auto check_policy = [](const std::string& name) {
    if (name.empty()) return;
    if (!policy::GovernorFactory::instance().has(name)) {
      bad("unknown policy \"" + name + "\"");
    }
  };
  switch (kind) {
    case JobKind::Run: {
      if (run.media != "mp3" && run.media != "mpeg") {
        bad("\"media\" must be mp3|mpeg, got \"" + run.media + "\"");
      }
      if (run.cycles <= 0) bad("\"cycles\" must be > 0");
      (void)resolve_detector(run.detector);
      check_policy(run.policy);
      if (!core::dpm_kind_from_string(run.dpm)) {
        bad("unknown dpm policy \"" + run.dpm + "\"");
      }
      // throws on unknown names (empty = fault-free, not an error)
      if (!run.faults.empty()) fault::parse_fault_list(run.faults);
      break;
    }
    case JobKind::Sweep: {
      if (spec_scenario() == nullptr) {
        bad("unknown scenario \"" + sweep.scenario + "\"");
      }
      if (sweep.replicates < 0) bad("\"replicates\" must be >= 0");
      check_policy(sweep.policy);
      if (!sweep.faults.empty()) fault::parse_fault_list(sweep.faults);
      break;
    }
    case JobKind::Fleet: {
      if (spec_fleet() == nullptr) {
        bad("unknown fleet \"" + fleet.name + "\"");
      }
      break;
    }
  }
}

const core::ScenarioSpec* JobSpec::spec_scenario() const {
  return core::find_scenario(sweep.scenario);
}

const dvs::fleet::FleetSpec* JobSpec::spec_fleet() const {
  return dvs::fleet::find_fleet(fleet.name);
}

void JobSpec::write_json(std::ostream& os) const {
  std::ostringstream body;
  body << "{\n"
       << "  \"schema\": \"" << kJobSchema << "\",\n"
       << "  \"id\": \"" << json_escape(id) << "\",\n"
       << "  \"kind\": \"" << to_string(kind) << "\",\n";
  if (seed_set) body << "  \"seed\": " << seed << ",\n";
  body << "  \"jobs\": " << jobs << ",\n"
       << "  \"checkpoint_every\": " << checkpoint_every << ",\n";
  switch (kind) {
    case JobKind::Run:
      body << "  \"run\": {\n"
           << "    \"media\": \"" << json_escape(run.media) << "\",\n"
           << "    \"sequence\": \"" << json_escape(run.sequence) << "\",\n"
           << "    \"clip\": \"" << json_escape(run.clip) << "\",\n"
           << "    \"seconds\": " << run.seconds << ",\n"
           << "    \"session\": " << (run.session ? "true" : "false") << ",\n"
           << "    \"cycles\": " << run.cycles << ",\n"
           << "    \"detector\": \"" << json_escape(run.detector) << "\",\n"
           << "    \"policy\": \"" << json_escape(run.policy) << "\",\n"
           << "    \"dpm\": \"" << json_escape(run.dpm) << "\",\n"
           << "    \"dpm_delay\": " << run.dpm_delay << ",\n"
           << "    \"delay\": " << run.delay << ",\n"
           << "    \"cv2\": " << run.cv2 << ",\n"
           << "    \"faults\": \"" << json_escape(run.faults) << "\"\n"
           << "  }\n";
      break;
    case JobKind::Sweep:
      body << "  \"sweep\": {\n"
           << "    \"scenario\": \"" << json_escape(sweep.scenario) << "\",\n"
           << "    \"replicates\": " << sweep.replicates << ",\n"
           << "    \"faults\": \"" << json_escape(sweep.faults) << "\",\n"
           << "    \"policy\": \"" << json_escape(sweep.policy) << "\"\n"
           << "  }\n";
      break;
    case JobKind::Fleet:
      body << "  \"fleet\": {\n"
           << "    \"name\": \"" << json_escape(fleet.name) << "\",\n"
           << "    \"devices\": " << fleet.devices << ",\n"
           << "    \"shard_size\": " << fleet.shard_size << "\n"
           << "  }\n";
      break;
  }
  body << "}\n";
  os << body.str();
}

}  // namespace dvs::serve
