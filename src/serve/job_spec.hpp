// serve::JobSpec — the versioned request API of the dvs_sim daemon
// (`dvs-job-v1`).  One JSON document subsumes the run/sweep/fleet
// parameterization the CLI subcommands expose as flags, so a job file is a
// complete, replayable statement of work: drop it in the queue today or
// next year and the same bytes come out.
//
// Shape (parsed with common/json; unknown keys are rejected so a typo'd
// knob fails loudly instead of silently running the default):
//
//   {
//     "schema": "dvs-job-v1",
//     "id": "nightly-city",            // optional; defaults to the file stem
//     "kind": "run" | "sweep" | "fleet",
//     "seed": 7,                       // optional seed override
//     "jobs": 4,                       // optional worker threads (0 = daemon's)
//     "checkpoint_every": 8,           // flush cadence in completed units
//     "sweep": {"scenario": "quick", "replicates": 3,
//               "faults": "spike10x", "policy": ""},
//     "fleet": {"name": "fleet_smoke", "devices": 2000, "shard_size": 64},
//     "run":   {"media": "mp3", "sequence": "ACEFBD", "clip": "football",
//               "seconds": 0, "session": false, "cycles": 4,
//               "detector": "change-point", "policy": "paper",
//               "dpm": "tismdp", "dpm_delay": 0.5, "delay": 0,
//               "cv2": 1.0, "faults": ""}
//   }
//
// Only the section matching `kind` may be present.  Every field of the
// active section is optional with the documented default; validation
// resolves names (scenario, fleet, detector, dpm, faults, governor) at
// parse time so a bad job lands in failed/ before any work starts.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "common/json.hpp"
#include "core/detectors.hpp"

namespace dvs::core {
struct ScenarioSpec;
}
namespace dvs::fleet {
struct FleetSpec;
}

namespace dvs::serve {

/// Schema identifier stamped on (and required of) every job document.
inline constexpr const char* kJobSchema = "dvs-job-v1";

enum class JobKind { Run, Sweep, Fleet };

std::string to_string(JobKind kind);

/// Serve-side detector resolution: the CLI's vocabulary ("ideal",
/// "change-point"/"cp", "ema"/"exp-average", "max", "sliding-window"), but
/// throwing std::invalid_argument instead of exiting — a bad job must land
/// in failed/, not take the daemon down.
core::DetectorKind resolve_detector(const std::string& name);

struct RunJob {
  std::string media = "mp3";  ///< "mp3" | "mpeg"
  std::string sequence = "ACEFBD";
  std::string clip = "football";
  double seconds = 0.0;  ///< > 0 truncates the MPEG clip / session knob
  bool session = false;
  int cycles = 4;
  std::string detector = "change-point";
  std::string policy;  ///< empty = engine default ("paper")
  std::string dpm = "none";
  double dpm_delay = 0.5;
  double delay = 0.0;  ///< 0 = per-media default
  double cv2 = 1.0;
  std::string faults;  ///< comma-separated fault::FaultSpec names
};

struct SweepJob {
  std::string scenario;
  int replicates = 0;  ///< 0 = scenario default
  std::string faults;  ///< non-empty replaces the scenario's fault axis
  std::string policy;  ///< non-empty replaces the scenario's policy axis
};

struct FleetJob {
  std::string name;
  std::size_t devices = 0;     ///< 0 = the spec's population size
  std::size_t shard_size = 0;  ///< 0 = FleetOptions default
};

struct JobSpec {
  std::string id;
  JobKind kind = JobKind::Run;
  std::uint64_t seed = 0;
  bool seed_set = false;
  int jobs = 0;  ///< worker threads for this job; 0 = daemon default
  /// Checkpoint flush cadence in completed units (sweep points / fleet
  /// shards): progress is durable every N units.  1 = every unit.
  std::size_t checkpoint_every = 1;

  RunJob run;
  SweepJob sweep;
  FleetJob fleet;

  /// Parses + validates a dvs-job-v1 document.  `fallback_id` names the
  /// job when the document has no "id" (the daemon passes the file stem).
  /// Throws std::invalid_argument on schema violations and unresolvable
  /// names, json::ParseError on malformed JSON.
  static JobSpec parse(const json::Value& doc, const std::string& fallback_id);
  static JobSpec parse_text(const std::string& text,
                            const std::string& fallback_id);
  static JobSpec parse_file(const std::string& path);

  /// Re-validates the resolved names (also called by parse).  Throws
  /// std::invalid_argument naming the offending field.
  void validate() const;

  /// The resolved scenario / fleet registry entries (null when the job is
  /// not of that kind or the name is unknown).
  [[nodiscard]] const core::ScenarioSpec* spec_scenario() const;
  [[nodiscard]] const dvs::fleet::FleetSpec* spec_fleet() const;

  /// Writes the job back out as a dvs-job-v1 document (only the active
  /// section, only non-default fields omitted = false: everything explicit
  /// so round trips are self-describing).
  void write_json(std::ostream& os) const;
};

}  // namespace dvs::serve
