#include "serve/status.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/json.hpp"

namespace dvs::serve {
namespace fs = std::filesystem;
namespace {

std::string fmt17(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

std::string sketch_text(const obs::QuantileSketch& s) {
  if (s.empty()) return {};
  std::ostringstream os;
  s.write_text(os);
  return os.str();
}

obs::QuantileSketch sketch_from_text(const std::string& text) {
  if (text.empty()) return obs::QuantileSketch{};
  std::istringstream is(text);
  return obs::QuantileSketch::read_text(is);
}

/// Writes `text` to `path + ".tmp"` then renames over `path`.
void replace_file_atomic(const std::string& path, const std::string& text) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::trunc);
    if (!os) throw std::runtime_error("status: cannot open " + tmp);
    os << text;
    os.flush();
    if (!os) throw std::runtime_error("status: write failed: " + tmp);
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    throw std::runtime_error("status: rename to " + path + ": " +
                             ec.message());
  }
}

}  // namespace

void write_status_atomic(const ServeStatus& status, const std::string& path) {
  std::ostringstream os;
  os << "{\n  \"schema\": \"" << kStatusSchema << "\",\n"
     << "  \"pid\": " << status.pid << ",\n"
     << "  \"state\": \"" << status.state << "\",\n"
     << "  \"started\": " << fmt17(status.started_unix) << ",\n"
     << "  \"updated\": " << fmt17(status.updated_unix) << ",\n"
     << "  \"uptime_s\": " << fmt17(status.uptime_s) << ",\n"
     << "  \"last_seq\": " << status.last_seq << ",\n"
     << "  \"jobs_done\": " << status.jobs_done << ",\n"
     << "  \"jobs_failed\": " << status.jobs_failed << ",\n"
     << "  \"queue_depth\": " << status.queue_depth << ",\n"
     << "  \"cache\": {\n"
     << "    \"threshold_table\": {\"hits\": " << status.table_cache.hits
     << ", \"misses\": " << status.table_cache.misses
     << ", \"entries\": " << status.table_cache.entries << "},\n"
     << "    \"tismdp_solve\": {\"hits\": " << status.solve_cache.hits
     << ", \"misses\": " << status.solve_cache.misses
     << ", \"entries\": " << status.solve_cache.entries << "}\n"
     << "  },\n  \"jobs\": [";
  for (std::size_t i = 0; i < status.jobs.size(); ++i) {
    const JobStatus& j = status.jobs[i];
    os << (i == 0 ? "\n" : ",\n") << "    {\"id\": \"" << escape(j.id)
       << "\", \"kind\": \"" << j.kind << "\", \"state\": \"" << j.state
       << "\", \"units_done\": " << j.units_done
       << ", \"units_total\": " << j.units_total
       << ", \"elapsed_s\": " << fmt17(j.elapsed_s);
    if (j.eta_s >= 0.0) os << ", \"eta_s\": " << fmt17(j.eta_s);
    os << "}";
  }
  os << (status.jobs.empty() ? "" : "\n  ") << "]\n}\n";
  replace_file_atomic(path, os.str());
}

ServeStatus load_status(const std::string& path) {
  const json::ValuePtr doc = json::parse_file(path);
  if (doc->string_or("schema", "") != kStatusSchema) {
    throw std::runtime_error("status " + path + ": schema is not \"" +
                             std::string(kStatusSchema) + "\"");
  }
  ServeStatus s;
  s.pid = static_cast<int>(doc->number_or("pid", 0));
  s.state = doc->string_or("state", "");
  s.started_unix = doc->number_or("started", 0.0);
  s.updated_unix = doc->number_or("updated", 0.0);
  s.uptime_s = doc->number_or("uptime_s", 0.0);
  s.last_seq = static_cast<std::uint64_t>(doc->number_or("last_seq", 0));
  s.jobs_done = static_cast<std::size_t>(doc->number_or("jobs_done", 0));
  s.jobs_failed = static_cast<std::size_t>(doc->number_or("jobs_failed", 0));
  s.queue_depth = static_cast<std::size_t>(doc->number_or("queue_depth", 0));
  if (const json::Value* cache = doc->find("cache"); cache != nullptr) {
    if (const json::Value* t = cache->find("threshold_table"); t != nullptr) {
      s.table_cache.hits = static_cast<std::uint64_t>(t->number_or("hits", 0));
      s.table_cache.misses =
          static_cast<std::uint64_t>(t->number_or("misses", 0));
      s.table_cache.entries =
          static_cast<std::size_t>(t->number_or("entries", 0));
    }
    if (const json::Value* t = cache->find("tismdp_solve"); t != nullptr) {
      s.solve_cache.hits = static_cast<std::uint64_t>(t->number_or("hits", 0));
      s.solve_cache.misses =
          static_cast<std::uint64_t>(t->number_or("misses", 0));
      s.solve_cache.entries =
          static_cast<std::size_t>(t->number_or("entries", 0));
    }
  }
  if (const json::Value* jobs = doc->find("jobs"); jobs != nullptr) {
    for (const json::ValuePtr& jv : jobs->as_array()) {
      JobStatus j;
      j.id = jv->string_or("id", "");
      j.kind = jv->string_or("kind", "");
      j.state = jv->string_or("state", "");
      j.units_done = static_cast<std::size_t>(jv->number_or("units_done", 0));
      j.units_total = static_cast<std::size_t>(jv->number_or("units_total", 0));
      j.elapsed_s = jv->number_or("elapsed_s", 0.0);
      j.eta_s = jv->number_or("eta_s", -1.0);
      s.jobs.push_back(std::move(j));
    }
  }
  return s;
}

void write_job_summary(const JobSummary& summary, const std::string& path) {
  std::ofstream os(path, std::ios::trunc);
  if (!os) throw std::runtime_error("job_summary: cannot open " + path);
  os << "{\n  \"schema\": \"" << kJobSummarySchema << "\",\n"
     << "  \"job\": \"" << escape(summary.job_id) << "\",\n"
     << "  \"kind\": \"" << summary.kind << "\",\n"
     << "  \"units_total\": " << summary.units_total << ",\n"
     << "  \"executed\": " << summary.executed << ",\n"
     << "  \"restored\": " << summary.restored << ",\n"
     << "  \"frames_decoded\": " << summary.frames_decoded << ",\n"
     << "  \"frames_dropped\": " << summary.frames_dropped << ",\n"
     << "  \"energy_j\": " << fmt17(summary.energy_j) << ",\n"
     << "  \"elapsed_s\": " << fmt17(summary.elapsed_s) << ",\n"
     << "  \"frame_delay_sum_s\": " << fmt17(summary.frame_delay_sum_s)
     << ",\n"
     << "  \"frame_delay_sketch\": \""
     << escape(sketch_text(summary.frame_delay_sketch)) << "\",\n"
     << "  \"device_delay_sum_s\": " << fmt17(summary.device_delay_sum_s)
     << ",\n"
     << "  \"device_delay_sketch\": \""
     << escape(sketch_text(summary.device_delay_sketch)) << "\"\n}\n";
  os.flush();
  if (!os) throw std::runtime_error("job_summary: write failed: " + path);
}

JobSummary load_job_summary(const std::string& path) {
  const json::ValuePtr doc = json::parse_file(path);
  if (doc->string_or("schema", "") != kJobSummarySchema) {
    throw std::runtime_error("job summary " + path + ": schema is not \"" +
                             std::string(kJobSummarySchema) + "\"");
  }
  JobSummary s;
  s.job_id = doc->string_or("job", "");
  s.kind = doc->string_or("kind", "");
  s.units_total = static_cast<std::size_t>(doc->number_or("units_total", 0));
  s.executed = static_cast<std::size_t>(doc->number_or("executed", 0));
  s.restored = static_cast<std::size_t>(doc->number_or("restored", 0));
  s.frames_decoded =
      static_cast<std::uint64_t>(doc->number_or("frames_decoded", 0));
  s.frames_dropped =
      static_cast<std::uint64_t>(doc->number_or("frames_dropped", 0));
  s.energy_j = doc->number_or("energy_j", 0.0);
  s.elapsed_s = doc->number_or("elapsed_s", 0.0);
  s.frame_delay_sum_s = doc->number_or("frame_delay_sum_s", 0.0);
  s.frame_delay_sketch =
      sketch_from_text(doc->string_or("frame_delay_sketch", ""));
  s.device_delay_sum_s = doc->number_or("device_delay_sum_s", 0.0);
  s.device_delay_sketch =
      sketch_from_text(doc->string_or("device_delay_sketch", ""));
  return s;
}

obs::MetricsRegistry collect_daemon_metrics(const std::string& root) {
  obs::MetricsRegistry reg;
  // Families exist from the first scrape, even with nothing completed yet;
  // delay shapes match the engine's frames.delay_s histogram.
  reg.counter("serve.jobs_done") = 0;
  reg.counter("serve.jobs_failed") = 0;
  reg.counter("serve.frames_decoded") = 0;
  reg.counter("serve.frames_dropped") = 0;
  reg.counter("serve.units_executed") = 0;
  reg.counter("serve.units_restored") = 0;
  reg.gauge("serve.energy_j") = 0.0;
  obs::HistogramMetric& frame_delay =
      reg.histogram("serve.frame_delay_s", 0.0, 2.0, 200);
  obs::HistogramMetric& device_delay =
      reg.histogram("serve.device_delay_s", 0.0, 2.0, 200);

  std::error_code ec;
  std::vector<std::string> stems;
  for (const auto& entry : fs::directory_iterator(root + "/done", ec)) {
    if (!entry.is_regular_file()) continue;
    const fs::path p = entry.path();
    if (p.extension() != ".json" || p.filename().string().front() == '.') {
      continue;
    }
    stems.push_back(p.stem().string());
  }
  std::sort(stems.begin(), stems.end());  // pinned fold order by job stem

  for (const std::string& stem : stems) {
    ++reg.counter("serve.jobs_done");
    const std::string summary_path =
        root + "/done/" + stem + ".out/job_summary.json";
    if (!fs::exists(summary_path, ec)) continue;
    const JobSummary s = load_job_summary(summary_path);
    reg.counter("serve.frames_decoded") += s.frames_decoded;
    reg.counter("serve.frames_dropped") += s.frames_dropped;
    reg.counter("serve.units_executed") += s.executed;
    reg.counter("serve.units_restored") += s.restored;
    reg.gauge("serve.energy_j") += s.energy_j;
    frame_delay.absorb_sketch(s.frame_delay_sketch, s.frame_delay_sum_s);
    device_delay.absorb_sketch(s.device_delay_sketch, s.device_delay_sum_s);
  }

  for (const auto& entry : fs::directory_iterator(root + "/failed", ec)) {
    if (!entry.is_regular_file()) continue;
    const fs::path p = entry.path();
    if (p.extension() != ".json" || p.filename().string().front() == '.') {
      continue;
    }
    ++reg.counter("serve.jobs_failed");
  }
  return reg;
}

}  // namespace dvs::serve
