// Daemon status snapshot (`dvs-serve-status-v1`), per-job summary
// artifact (`dvs-job-summary-v1`), and the cross-job metrics fold behind
// `<root>/metrics.om`.
//
// `<root>/status.json` is the daemon's observable state: pid/uptime,
// queue depth, per-job state + progress (units done/total, elapsed, ETA —
// updated per completed fold-unit, i.e. between checkpoint flushes too),
// and the warmth of the process-wide threshold-table / TISMDP caches.
// Every write goes to `status.json.tmp` and renames over the target, so a
// reader never sees a half-written document no matter when the daemon
// dies (the checkpoint discipline, applied to the snapshot).
//
// `done/<id>.out/job_summary.json` is the durable per-job rollup the
// daemon leaves behind once a job finishes (checkpoints are deleted on
// success, so this file is what survives): counters, energy, and the
// job's delay QuantileSketch in pinned dvs-sketch-v1 text.  It carries
// the job id — the trace-context key that links a `metrics.om` line back
// to the job's checkpoint records, heartbeat, and flight dumps.
//
// `collect_daemon_metrics` folds those summaries over done/ in sorted
// file-stem order (the fleet-fold discipline), so `metrics.om` is
// byte-identical no matter in which order jobs completed or how many
// daemon restarts happened along the way.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "detect/table_cache.hpp"
#include "dpm/solve_cache.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/telemetry/quantile_sketch.hpp"

namespace dvs::serve {

inline constexpr const char* kStatusSchema = "dvs-serve-status-v1";
inline constexpr const char* kJobSummarySchema = "dvs-job-summary-v1";

/// One job's row in the status snapshot.
struct JobStatus {
  std::string id;
  std::string kind;   ///< run|sweep|fleet ("" when the spec failed to parse)
  std::string state;  ///< queued|running|done|failed
  std::size_t units_done = 0;
  std::size_t units_total = 0;
  double elapsed_s = 0.0;
  double eta_s = -1.0;  ///< < 0 = unknown (no units finished yet)
};

struct ServeStatus {
  int pid = 0;
  std::string state;  ///< "running" | "stopped"
  double started_unix = 0.0;
  double updated_unix = 0.0;
  double uptime_s = 0.0;
  std::uint64_t last_seq = 0;  ///< last event-log sequence number
  std::size_t jobs_done = 0;
  std::size_t jobs_failed = 0;
  std::size_t queue_depth = 0;
  detect::TableCacheStats table_cache;
  dpm::SolveCacheStats solve_cache;
  std::vector<JobStatus> jobs;  ///< running first, then queued (claim order)
};

/// Writes the snapshot to `path + ".tmp"` and renames it over `path`.
/// Throws std::runtime_error on I/O failure.
void write_status_atomic(const ServeStatus& status, const std::string& path);

/// Loads a status snapshot; throws std::runtime_error when the file is
/// missing/unreadable or the schema does not match.
ServeStatus load_status(const std::string& path);

/// The per-job rollup written to `<output_dir>/job_summary.json`.
struct JobSummary {
  std::string job_id;
  std::string kind;  ///< run|sweep|fleet
  std::size_t units_total = 0;
  std::size_t executed = 0;
  std::size_t restored = 0;
  std::uint64_t frames_decoded = 0;
  std::uint64_t frames_dropped = 0;
  double energy_j = 0.0;
  double elapsed_s = 0.0;
  /// Per-frame delay distribution (run/sweep jobs; empty for fleet).
  obs::QuantileSketch frame_delay_sketch;
  double frame_delay_sum_s = 0.0;
  /// Per-device mean-delay distribution (fleet jobs; empty otherwise).
  obs::QuantileSketch device_delay_sketch;
  double device_delay_sum_s = 0.0;
};

/// Throws std::runtime_error on I/O failure.
void write_job_summary(const JobSummary& summary, const std::string& path);

/// Throws std::runtime_error when missing/unreadable or on schema mismatch.
JobSummary load_job_summary(const std::string& path);

/// Folds every `done/<stem>.out/job_summary.json` under `root` (sorted
/// stem order — deterministic in the set of completed jobs alone) plus the
/// failed/ count into one registry: serve.jobs_done / serve.jobs_failed /
/// serve.frames_decoded / serve.frames_dropped / serve.units_executed /
/// serve.units_restored counters, a serve.energy_j gauge, and
/// serve.frame_delay_s / serve.device_delay_s summaries (created even when
/// empty so the metrics.om family set is stable from the first scrape).
obs::MetricsRegistry collect_daemon_metrics(const std::string& root);

}  // namespace dvs::serve
