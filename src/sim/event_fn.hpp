// Move-only callback with inline storage for the simulation kernel.
//
// std::function keeps only ~2 words of inline storage, so the engine's
// event lambdas — which capture `this` plus a handful of doubles — heap-
// allocate on every schedule.  At ~6 events per decoded frame that
// allocation is a measurable slice of the hot loop.  EventFn keeps 56
// bytes inline (every kernel callback in this codebase fits) and falls
// back to the heap only for larger captures, so behavior is unchanged and
// the fast path allocation-free.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace dvs::sim {

class EventFn {
 public:
  EventFn() = default;

  template <typename F>
    requires(!std::is_same_v<std::decay_t<F>, EventFn> &&
             std::is_invocable_r_v<void, std::decay_t<F>&>)
  EventFn(F&& f) {  // NOLINT(google-explicit-constructor): callable adaptor
    using Fn = std::decay_t<F>;
    if constexpr (fits_inline<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      vt_ = vtable_inline<Fn>();
    } else {
      *reinterpret_cast<void**>(buf_) = new Fn(std::forward<F>(f));
      vt_ = vtable_heap<Fn>();
    }
  }

  EventFn(EventFn&& other) noexcept { move_from(other); }

  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;

  ~EventFn() { reset(); }

  /// True when a callable is held (mirrors std::function's bool test).
  explicit operator bool() const { return vt_ != nullptr; }

  void operator()() { vt_->invoke(buf_); }

 private:
  static constexpr std::size_t kInlineSize = 56;
  static constexpr std::size_t kInlineAlign = alignof(std::max_align_t);

  template <typename Fn>
  static constexpr bool fits_inline =
      sizeof(Fn) <= kInlineSize && alignof(Fn) <= kInlineAlign &&
      std::is_nothrow_move_constructible_v<Fn>;

  // All operations take the storage buffer; the vtable knows whether the
  // callable lives in it or behind a pointer stored in it.
  struct VTable {
    void (*invoke)(void* buf);
    void (*relocate)(void* dst_buf, void* src_buf);  ///< move into dst, end src
    void (*destroy)(void* buf);
  };

  template <typename Fn>
  static const VTable* vtable_inline() {
    static constexpr VTable vt{
        [](void* buf) { (*std::launder(reinterpret_cast<Fn*>(buf)))(); },
        [](void* dst, void* src) {
          Fn* s = std::launder(reinterpret_cast<Fn*>(src));
          ::new (dst) Fn(std::move(*s));
          s->~Fn();
        },
        [](void* buf) { std::launder(reinterpret_cast<Fn*>(buf))->~Fn(); }};
    return &vt;
  }

  template <typename Fn>
  static const VTable* vtable_heap() {
    static constexpr VTable vt{
        [](void* buf) { (**reinterpret_cast<Fn**>(buf))(); },
        [](void* dst, void* src) {
          *reinterpret_cast<void**>(dst) = *reinterpret_cast<void**>(src);
        },
        [](void* buf) { delete *reinterpret_cast<Fn**>(buf); }};
    return &vt;
  }

  void move_from(EventFn& other) noexcept {
    if (other.vt_ != nullptr) {
      vt_ = other.vt_;
      vt_->relocate(buf_, other.buf_);
      other.vt_ = nullptr;
    }
  }

  void reset() noexcept {
    if (vt_ != nullptr) {
      vt_->destroy(buf_);
      vt_ = nullptr;
    }
  }

  alignas(kInlineAlign) unsigned char buf_[kInlineSize];
  const VTable* vt_ = nullptr;
};

}  // namespace dvs::sim
