#include "sim/simulator.hpp"

#include <algorithm>
#include <utility>

namespace dvs::sim {

namespace {
// Below this many tombstones compaction is not worth the heap rebuild.
constexpr std::size_t kCompactionFloor = 64;
// Typical engine sessions keep tens of events in flight; pre-sizing to the
// compaction floor makes the steady state reallocation-free.
constexpr std::size_t kInitialCapacity = kCompactionFloor;
}  // namespace

Simulator::Simulator() {
  heap_.reserve(kInitialCapacity);
  slots_.reserve(kInitialCapacity);
}

std::uint32_t Simulator::claim_slot() {
  if (free_head_ != kNoSlot) {
    const std::uint32_t slot = free_head_;
    free_head_ = slots_[slot].next_free;
    return slot;
  }
  DVS_CHECK_MSG(slots_.size() < kNoSlot, "event slot pool exhausted");
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void Simulator::release_slot(std::uint32_t slot) {
  Slot& s = slots_[slot];
  ++s.gen;  // invalidates every outstanding handle/heap entry for the slot
  s.next_free = free_head_;
  free_head_ = slot;
  --live_;
}

EventId Simulator::schedule_impl(double at, Callback fn) {
  DVS_CHECK_MSG(at >= now_.value(), "cannot schedule into the past");
  DVS_CHECK_MSG(static_cast<bool>(fn), "null event callback");
  const std::uint32_t slot = claim_slot();
  Slot& s = slots_[slot];
  s.fn = std::move(fn);
  ++live_;
  heap_.push_back(Scheduled{at, next_seq_++, slot, s.gen});
  std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
  ++stats_.scheduled;
  stats_.max_heap_size = std::max(stats_.max_heap_size, heap_.size());
  return pack(slot, s.gen);
}

EventId Simulator::schedule_at(Seconds at, Callback fn) {
  return schedule_impl(at.value(), std::move(fn));
}

EventId Simulator::schedule_in(Seconds delay, Callback fn) {
  DVS_CHECK_MSG(delay.value() >= 0.0, "negative delay");
  return schedule_impl(now_.value() + delay.value(), std::move(fn));
}

bool Simulator::cancel(EventId id) {
  const std::uint32_t slot = slot_of(id);
  if (slot >= slots_.size() || slots_[slot].gen != gen_of(id)) return false;
  slots_[slot].fn = Callback{};  // drop captures eagerly
  release_slot(slot);
  ++tombstones_;
  ++stats_.cancelled;
  maybe_compact();
  return true;
}

void Simulator::maybe_compact() {
  // Lazy compaction: rebuild only when tombstones dominate, so the
  // amortized cost per cancel stays O(log n) while the heap stays within a
  // constant factor of the live event count.
  if (tombstones_ < kCompactionFloor || tombstones_ <= live_) return;
  std::erase_if(heap_, [this](const Scheduled& s) { return !live_entry(s); });
  std::make_heap(heap_.begin(), heap_.end(), std::greater<>{});
  stats_.tombstones_purged += tombstones_;
  tombstones_ = 0;
  ++stats_.compactions;
}

bool Simulator::pending(EventId id) const {
  const std::uint32_t slot = slot_of(id);
  return slot < slots_.size() && slots_[slot].gen == gen_of(id);
}

void Simulator::pop_heap_top() {
  std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
  heap_.pop_back();
}

void Simulator::skip_tombstones() {
  while (!heap_.empty() && !live_entry(heap_.front())) {
    pop_heap_top();
    DVS_CHECK(tombstones_ > 0);
    --tombstones_;
    ++stats_.tombstones_purged;
  }
}

void Simulator::execute_next() {
  // Precondition: heap has a live head.
  const Scheduled top = heap_.front();
  pop_heap_top();
  Slot& s = slots_[top.slot];
  DVS_CHECK(s.gen == top.gen);
  Callback fn = std::move(s.fn);
  release_slot(top.slot);  // before fn() so the callback can re-schedule
  now_ = Seconds{top.at};
  ++stats_.executed;
  fn();
}

bool Simulator::step() {
  skip_tombstones();
  if (heap_.empty()) return false;
  execute_next();
  return true;
}

void Simulator::run() {
  stop_requested_ = false;
  while (!stop_requested_ && step()) {
  }
}

void Simulator::run_until(Seconds horizon) {
  DVS_CHECK_MSG(horizon.value() >= now_.value(), "horizon is in the past");
  stop_requested_ = false;
  while (!stop_requested_) {
    skip_tombstones();
    if (heap_.empty() || heap_.front().at > horizon.value()) break;
    execute_next();
  }
  if (!stop_requested_ && now_ < horizon) now_ = horizon;
}

}  // namespace dvs::sim
