#include "sim/simulator.hpp"

#include <utility>

namespace dvs::sim {

EventId Simulator::schedule_impl(double at, Callback fn) {
  DVS_CHECK_MSG(at >= now_.value(), "cannot schedule into the past");
  DVS_CHECK_MSG(static_cast<bool>(fn), "null event callback");
  const std::uint64_t id = next_id_++;
  heap_.push(Scheduled{at, next_seq_++, id});
  callbacks_.emplace(id, std::move(fn));
  return EventId{id};
}

EventId Simulator::schedule_at(Seconds at, Callback fn) {
  return schedule_impl(at.value(), std::move(fn));
}

EventId Simulator::schedule_in(Seconds delay, Callback fn) {
  DVS_CHECK_MSG(delay.value() >= 0.0, "negative delay");
  return schedule_impl(now_.value() + delay.value(), std::move(fn));
}

bool Simulator::cancel(EventId id) {
  return callbacks_.erase(id.value) > 0;
}

bool Simulator::pending(EventId id) const {
  return callbacks_.contains(id.value);
}

std::size_t Simulator::pending_count() const { return callbacks_.size(); }

void Simulator::execute_next() {
  // Precondition: heap has a live head.
  const Scheduled top = heap_.top();
  heap_.pop();
  auto it = callbacks_.find(top.id);
  DVS_CHECK(it != callbacks_.end());
  Callback fn = std::move(it->second);
  callbacks_.erase(it);
  now_ = Seconds{top.at};
  ++executed_;
  fn();
}

bool Simulator::step() {
  // Skip tombstones of cancelled events.
  while (!heap_.empty() && !callbacks_.contains(heap_.top().id)) heap_.pop();
  if (heap_.empty()) return false;
  execute_next();
  return true;
}

void Simulator::run() {
  stop_requested_ = false;
  while (!stop_requested_ && step()) {
  }
}

void Simulator::run_until(Seconds horizon) {
  DVS_CHECK_MSG(horizon.value() >= now_.value(), "horizon is in the past");
  stop_requested_ = false;
  while (!stop_requested_) {
    while (!heap_.empty() && !callbacks_.contains(heap_.top().id)) heap_.pop();
    if (heap_.empty() || heap_.top().at > horizon.value()) break;
    execute_next();
  }
  if (!stop_requested_ && now_ < horizon) now_ = horizon;
}

}  // namespace dvs::sim
