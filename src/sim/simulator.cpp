#include "sim/simulator.hpp"

#include <algorithm>
#include <utility>

namespace dvs::sim {

namespace {
// Below this many tombstones compaction is not worth the heap rebuild.
constexpr std::size_t kCompactionFloor = 64;
}  // namespace

EventId Simulator::schedule_impl(double at, Callback fn) {
  DVS_CHECK_MSG(at >= now_.value(), "cannot schedule into the past");
  DVS_CHECK_MSG(static_cast<bool>(fn), "null event callback");
  const std::uint64_t id = next_id_++;
  heap_.push_back(Scheduled{at, next_seq_++, id});
  std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
  callbacks_.emplace(id, std::move(fn));
  ++stats_.scheduled;
  stats_.max_heap_size = std::max(stats_.max_heap_size, heap_.size());
  return EventId{id};
}

EventId Simulator::schedule_at(Seconds at, Callback fn) {
  return schedule_impl(at.value(), std::move(fn));
}

EventId Simulator::schedule_in(Seconds delay, Callback fn) {
  DVS_CHECK_MSG(delay.value() >= 0.0, "negative delay");
  return schedule_impl(now_.value() + delay.value(), std::move(fn));
}

bool Simulator::cancel(EventId id) {
  if (callbacks_.erase(id.value) == 0) return false;
  ++tombstones_;
  ++stats_.cancelled;
  maybe_compact();
  return true;
}

void Simulator::maybe_compact() {
  // Lazy compaction: rebuild only when tombstones dominate, so the
  // amortized cost per cancel stays O(log n) while the heap stays within a
  // constant factor of the live event count.
  if (tombstones_ < kCompactionFloor || tombstones_ <= callbacks_.size()) return;
  std::erase_if(heap_, [this](const Scheduled& s) {
    return !callbacks_.contains(s.id);
  });
  std::make_heap(heap_.begin(), heap_.end(), std::greater<>{});
  stats_.tombstones_purged += tombstones_;
  tombstones_ = 0;
  ++stats_.compactions;
}

bool Simulator::pending(EventId id) const {
  return callbacks_.contains(id.value);
}

std::size_t Simulator::pending_count() const { return callbacks_.size(); }

void Simulator::pop_heap_top() {
  std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
  heap_.pop_back();
}

void Simulator::skip_tombstones() {
  while (!heap_.empty() && !callbacks_.contains(heap_.front().id)) {
    pop_heap_top();
    DVS_CHECK(tombstones_ > 0);
    --tombstones_;
    ++stats_.tombstones_purged;
  }
}

void Simulator::execute_next() {
  // Precondition: heap has a live head.
  const Scheduled top = heap_.front();
  pop_heap_top();
  auto it = callbacks_.find(top.id);
  DVS_CHECK(it != callbacks_.end());
  Callback fn = std::move(it->second);
  callbacks_.erase(it);
  now_ = Seconds{top.at};
  ++stats_.executed;
  fn();
}

bool Simulator::step() {
  skip_tombstones();
  if (heap_.empty()) return false;
  execute_next();
  return true;
}

void Simulator::run() {
  stop_requested_ = false;
  while (!stop_requested_ && step()) {
  }
}

void Simulator::run_until(Seconds horizon) {
  DVS_CHECK_MSG(horizon.value() >= now_.value(), "horizon is in the past");
  stop_requested_ = false;
  while (!stop_requested_) {
    skip_tombstones();
    if (heap_.empty() || heap_.front().at > horizon.value()) break;
    execute_next();
  }
  if (!stop_requested_ && now_ < horizon) now_ = horizon;
}

}  // namespace dvs::sim
