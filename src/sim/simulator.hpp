// Discrete-event simulation kernel.
//
// Everything in the reproduction — frame arrivals, decode completions, power
// state transitions, DPM timeouts — runs as events on this kernel.  Events
// fire in timestamp order; ties break in scheduling order so runs are fully
// deterministic.  Events are cancellable (a DPM policy cancels its pending
// sleep transition when a request arrives).
//
// Storage is allocation-lean: callbacks live in a generation-checked slot
// pool (recycled LIFO, so steady state touches the same few cache lines),
// an EventId packs (slot, generation) so stale handles are rejected in
// O(1), and the callback type keeps typical captures inline (see
// event_fn.hpp).  Cancelled events stay in the heap as tombstones until
// popped — but the heap compacts lazily whenever tombstones outnumber live
// events, so a cancel-heavy workload (a DPM policy cancelling a pending
// sleep on every arrival) keeps the heap within a constant factor of the
// live event count instead of growing without bound.
#pragma once

#include <cstdint>
#include <vector>

#include "common/check.hpp"
#include "common/units.hpp"
#include "sim/event_fn.hpp"

namespace dvs::sim {

/// Opaque handle to a scheduled event; valid until the event fires or is
/// cancelled.  Packs (slot, generation) so reuse of storage never aliases
/// a stale handle.
struct EventId {
  std::uint64_t value = 0;
  [[nodiscard]] bool valid() const { return value != 0; }
  friend bool operator==(EventId a, EventId b) { return a.value == b.value; }
};

/// Kernel-level instrumentation counters (obs::MetricsRegistry feeds on
/// these; tests assert the compaction bound through them).
struct SimulatorStats {
  std::uint64_t scheduled = 0;
  std::uint64_t executed = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t tombstones_purged = 0;  ///< skipped on pop or compacted away
  std::uint64_t compactions = 0;
  std::size_t max_heap_size = 0;  ///< high-water mark incl. tombstones
};

/// Event-driven simulator with a monotonically advancing clock.
class Simulator {
 public:
  using Callback = EventFn;

  Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulation time.  Starts at 0.
  [[nodiscard]] Seconds now() const { return now_; }

  /// Schedules `fn` to run at absolute time `at` (must be >= now()).
  EventId schedule_at(Seconds at, Callback fn);

  /// Schedules `fn` to run `delay` from now (delay must be >= 0).
  EventId schedule_in(Seconds delay, Callback fn);

  /// Cancels a pending event.  Returns true if the event was pending (and is
  /// now guaranteed not to fire); false if it already fired, was already
  /// cancelled, or the id is invalid.
  bool cancel(EventId id);

  /// True if an event with this id is still pending.
  [[nodiscard]] bool pending(EventId id) const;

  /// Number of events waiting to fire.
  [[nodiscard]] std::size_t pending_count() const { return live_; }

  /// Runs a single event.  Returns false if the queue is empty.
  bool step();

  /// Runs until the queue drains or `stop()` is called.
  void run();

  /// Runs events with timestamp <= horizon, then sets the clock to exactly
  /// `horizon` (even if no event lands on it).  Stops early on stop().
  void run_until(Seconds horizon);

  /// Requests that run()/run_until() return after the current event.
  void stop() { stop_requested_ = true; }

  [[nodiscard]] bool stop_requested() const { return stop_requested_; }

  /// Total number of events executed so far (for microbenchmarks and tests).
  [[nodiscard]] std::uint64_t executed_count() const { return stats_.executed; }

  /// Kernel counters for observability.
  [[nodiscard]] const SimulatorStats& stats() const { return stats_; }

  /// Heap entries including tombstones; bounded by the lazy compaction at
  /// < max(2 * pending_count(), compaction floor) + 1.
  [[nodiscard]] std::size_t heap_size() const { return heap_.size(); }

 private:
  struct Scheduled {
    double at;
    std::uint64_t seq;   // FIFO among equal timestamps
    std::uint32_t slot;
    std::uint32_t gen;
    // Ordering for a min-heap via std::greater.
    friend bool operator>(const Scheduled& a, const Scheduled& b) {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  /// Pool slot: the callback of the occupying event plus the generation
  /// that validates EventIds and heap entries against slot reuse.  The
  /// generation bumps on every release (fire or cancel), so a heap entry
  /// or handle whose generation mismatches is dead.
  struct Slot {
    Callback fn;
    std::uint32_t gen = 0;
    std::uint32_t next_free = kNoSlot;
  };

  static constexpr std::uint32_t kNoSlot = 0xffffffffu;

  static EventId pack(std::uint32_t slot, std::uint32_t gen) {
    return EventId{(static_cast<std::uint64_t>(gen) << 32) |
                   (static_cast<std::uint64_t>(slot) + 1)};
  }
  static std::uint32_t slot_of(EventId id) {
    return static_cast<std::uint32_t>(id.value & 0xffffffffu) - 1;
  }
  static std::uint32_t gen_of(EventId id) {
    return static_cast<std::uint32_t>(id.value >> 32);
  }

  /// True when the heap entry still refers to the live occupant of its slot.
  [[nodiscard]] bool live_entry(const Scheduled& s) const {
    return slots_[s.slot].gen == s.gen;
  }

  EventId schedule_impl(double at, Callback fn);
  std::uint32_t claim_slot();
  void release_slot(std::uint32_t slot);
  void execute_next();
  void pop_heap_top();
  void skip_tombstones();
  void maybe_compact();

  Seconds now_{0.0};
  std::uint64_t next_seq_ = 0;
  bool stop_requested_ = false;
  // Min-heap over (at, seq) maintained with std::push_heap/pop_heap so the
  // storage is reachable for compaction.
  std::vector<Scheduled> heap_;
  std::size_t tombstones_ = 0;  ///< heap entries whose event was cancelled
  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNoSlot;
  std::size_t live_ = 0;  ///< slots currently holding a pending event
  SimulatorStats stats_;
};

}  // namespace dvs::sim
