// Discrete-event simulation kernel.
//
// Everything in the reproduction — frame arrivals, decode completions, power
// state transitions, DPM timeouts — runs as events on this kernel.  Events
// fire in timestamp order; ties break in scheduling order so runs are fully
// deterministic.  Events are cancellable (a DPM policy cancels its pending
// sleep transition when a request arrives).
//
// Cancelled events stay in the heap as tombstones until popped — but the
// heap compacts lazily whenever tombstones outnumber live callbacks, so a
// cancel-heavy workload (a DPM policy cancelling a pending sleep on every
// arrival) keeps the heap within a constant factor of the live event count
// instead of growing without bound.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/check.hpp"
#include "common/units.hpp"

namespace dvs::sim {

/// Opaque handle to a scheduled event; valid until the event fires or is
/// cancelled.
struct EventId {
  std::uint64_t value = 0;
  [[nodiscard]] bool valid() const { return value != 0; }
  friend bool operator==(EventId a, EventId b) { return a.value == b.value; }
};

/// Kernel-level instrumentation counters (obs::MetricsRegistry feeds on
/// these; tests assert the compaction bound through them).
struct SimulatorStats {
  std::uint64_t scheduled = 0;
  std::uint64_t executed = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t tombstones_purged = 0;  ///< skipped on pop or compacted away
  std::uint64_t compactions = 0;
  std::size_t max_heap_size = 0;  ///< high-water mark incl. tombstones
};

/// Event-driven simulator with a monotonically advancing clock.
class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulation time.  Starts at 0.
  [[nodiscard]] Seconds now() const { return now_; }

  /// Schedules `fn` to run at absolute time `at` (must be >= now()).
  EventId schedule_at(Seconds at, Callback fn);

  /// Schedules `fn` to run `delay` from now (delay must be >= 0).
  EventId schedule_in(Seconds delay, Callback fn);

  /// Cancels a pending event.  Returns true if the event was pending (and is
  /// now guaranteed not to fire); false if it already fired, was already
  /// cancelled, or the id is invalid.
  bool cancel(EventId id);

  /// True if an event with this id is still pending.
  [[nodiscard]] bool pending(EventId id) const;

  /// Number of events waiting to fire.
  [[nodiscard]] std::size_t pending_count() const;

  /// Runs a single event.  Returns false if the queue is empty.
  bool step();

  /// Runs until the queue drains or `stop()` is called.
  void run();

  /// Runs events with timestamp <= horizon, then sets the clock to exactly
  /// `horizon` (even if no event lands on it).  Stops early on stop().
  void run_until(Seconds horizon);

  /// Requests that run()/run_until() return after the current event.
  void stop() { stop_requested_ = true; }

  [[nodiscard]] bool stop_requested() const { return stop_requested_; }

  /// Total number of events executed so far (for microbenchmarks and tests).
  [[nodiscard]] std::uint64_t executed_count() const { return stats_.executed; }

  /// Kernel counters for observability.
  [[nodiscard]] const SimulatorStats& stats() const { return stats_; }

  /// Heap entries including tombstones; bounded by the lazy compaction at
  /// < max(2 * pending_count(), compaction floor) + 1.
  [[nodiscard]] std::size_t heap_size() const { return heap_.size(); }

 private:
  struct Scheduled {
    double at;
    std::uint64_t seq;   // FIFO among equal timestamps
    std::uint64_t id;
    // Ordering for a min-heap via std::greater.
    friend bool operator>(const Scheduled& a, const Scheduled& b) {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  EventId schedule_impl(double at, Callback fn);
  void execute_next();
  void pop_heap_top();
  void skip_tombstones();
  void maybe_compact();

  Seconds now_{0.0};
  std::uint64_t next_id_ = 1;
  std::uint64_t next_seq_ = 0;
  bool stop_requested_ = false;
  // Min-heap over (at, seq) maintained with std::push_heap/pop_heap so the
  // storage is reachable for compaction.
  std::vector<Scheduled> heap_;
  std::size_t tombstones_ = 0;  ///< heap entries whose callback was cancelled
  // Callbacks for live events; cancelled events stay in the heap as
  // tombstones (absent from this map) and are skipped when popped.
  std::unordered_map<std::uint64_t, Callback> callbacks_;
  SimulatorStats stats_;
};

}  // namespace dvs::sim
