#include "workload/arrival.hpp"

#include <cmath>
#include <limits>
#include <utility>

namespace dvs::workload {

RateSchedule::RateSchedule(std::vector<Segment> segments)
    : segments_(std::move(segments)) {
  for (std::size_t i = 0; i < segments_.size(); ++i) {
    DVS_CHECK_MSG(segments_[i].rate.value() > 0.0, "RateSchedule: rate must be > 0");
    if (i > 0) {
      DVS_CHECK_MSG(segments_[i].start >= segments_[i - 1].start,
                    "RateSchedule: starts must be non-decreasing");
    }
  }
}

void RateSchedule::append(Seconds start, Hertz rate) {
  DVS_CHECK_MSG(rate.value() > 0.0, "RateSchedule: rate must be > 0");
  if (!segments_.empty()) {
    DVS_CHECK_MSG(start >= segments_.back().start,
                  "RateSchedule: starts must be non-decreasing");
  }
  segments_.push_back({start, rate});
}

Hertz RateSchedule::rate_at(Seconds t) const {
  DVS_CHECK_MSG(!segments_.empty(), "RateSchedule: empty schedule");
  DVS_CHECK_MSG(t >= segments_.front().start, "RateSchedule: t precedes schedule");
  // Schedules are short (one segment per clip); linear scan is fine and
  // avoids subtle off-by-one with equal starts.
  Hertz r = segments_.front().rate;
  for (const auto& s : segments_) {
    if (s.start <= t) {
      r = s.rate;
    } else {
      break;
    }
  }
  return r;
}

Seconds RateSchedule::segment_end(Seconds t) const {
  DVS_CHECK_MSG(!segments_.empty(), "RateSchedule: empty schedule");
  for (const auto& s : segments_) {
    if (s.start > t) return s.start;
  }
  return Seconds{std::numeric_limits<double>::infinity()};
}

ArrivalProcess::ArrivalProcess(RateSchedule schedule, double jitter_sigma)
    : schedule_(std::move(schedule)), jitter_sigma_(jitter_sigma) {
  DVS_CHECK_MSG(!schedule_.empty(), "ArrivalProcess: empty schedule");
  DVS_CHECK_MSG(jitter_sigma_ >= 0.0 && jitter_sigma_ < 1.0,
                "ArrivalProcess: jitter sigma out of range");
}

Seconds ArrivalProcess::next_after(Seconds t, Rng& rng) const {
  Seconds cur = t;
  for (;;) {
    const Hertz r = schedule_.rate_at(cur);
    double gap = rng.exponential(r.value());
    if (jitter_sigma_ > 0.0) {
      // Unit-mean lognormal multiplicative jitter (network delay variation).
      gap *= std::exp(rng.normal(-0.5 * jitter_sigma_ * jitter_sigma_, jitter_sigma_));
    }
    const Seconds candidate = cur + Seconds{gap};
    const Seconds seg_end = schedule_.segment_end(cur);
    if (candidate <= seg_end) return candidate;
    // The gap crosses into a segment with a different rate; restart the draw
    // from the boundary (valid by memorylessness of the exponential).
    cur = seg_end;
  }
}

}  // namespace dvs::workload
