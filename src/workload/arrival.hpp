// Frame arrival process.
//
// "The requests to the multimedia application ... are in form of audio or
// video frame arrivals through the WLAN ... frame interarrival times in the
// active state for both applications can be approximated with an
// exponential distribution" (Section 2.2, Figure 6).  Arrivals here are a
// Poisson process whose rate is piecewise-constant over time (it changes at
// clip boundaries and with network conditions), optionally perturbed by a
// small lognormal network-delay jitter so the empirical distribution fits
// an exponential with a few percent average CDF error — exactly the
// imperfection Figure 6 reports (8%).
#pragma once

#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"

namespace dvs::workload {

/// Piecewise-constant rate schedule: segment i applies from `start[i]` until
/// `start[i+1]` (the last segment extends to infinity).
class RateSchedule {
 public:
  struct Segment {
    Seconds start;
    Hertz rate;
  };

  RateSchedule() = default;
  explicit RateSchedule(std::vector<Segment> segments);

  /// Appends a segment; starts must be non-decreasing and rates positive.
  void append(Seconds start, Hertz rate);

  [[nodiscard]] bool empty() const { return segments_.empty(); }
  [[nodiscard]] std::size_t size() const { return segments_.size(); }
  [[nodiscard]] const std::vector<Segment>& segments() const { return segments_; }

  /// Rate in force at time t (throws if t precedes the first segment).
  [[nodiscard]] Hertz rate_at(Seconds t) const;

  /// End of the segment containing t (infinity for the last segment).
  [[nodiscard]] Seconds segment_end(Seconds t) const;

 private:
  std::vector<Segment> segments_;
};

/// Poisson arrival generator over a RateSchedule with optional jitter.
class ArrivalProcess {
 public:
  /// jitter_sigma: lognormal sigma applied multiplicatively to each
  /// interarrival gap (0 = exact Poisson).
  ArrivalProcess(RateSchedule schedule, double jitter_sigma = 0.0);

  /// Next arrival strictly after `t`.  Uses thinning-free segment-by-segment
  /// generation: the exponential gap is drawn at the current segment's rate
  /// and re-drawn past segment boundaries (memorylessness makes this exact
  /// for the piecewise-constant rate).
  [[nodiscard]] Seconds next_after(Seconds t, Rng& rng) const;

  [[nodiscard]] const RateSchedule& schedule() const { return schedule_; }

 private:
  RateSchedule schedule_;
  double jitter_sigma_;
};

}  // namespace dvs::workload
