#include "workload/clips.hpp"

#include <array>
#include <stdexcept>

namespace dvs::workload {
namespace {

const std::array<Mp3Clip, 6>& clips() {
  // Durations: 100+110+105+120+108+110 = 653 s (paper: "six audio clips
  // totaling 653 seconds").
  static const std::array<Mp3Clip, 6> table = {{
      {'A', 16.0, 16.0, hertz(115.0), seconds(100.0)},
      {'B', 32.0, 16.0, hertz(105.0), seconds(110.0)},
      {'C', 64.0, 22.05, hertz(95.0), seconds(105.0)},
      {'D', 64.0, 44.1, hertz(86.0), seconds(120.0)},
      {'E', 128.0, 44.1, hertz(78.0), seconds(108.0)},
      {'F', 128.0, 48.0, hertz(72.0), seconds(110.0)},
  }};
  return table;
}

}  // namespace

std::span<const Mp3Clip> mp3_clip_table() { return clips(); }

const Mp3Clip& mp3_clip(char label) {
  if (label < 'A' || label > 'F') {
    throw std::out_of_range(std::string("mp3_clip: no clip '") + label + "'");
  }
  return clips()[static_cast<std::size_t>(label - 'A')];
}

std::vector<Mp3Clip> mp3_sequence(const std::string& labels) {
  std::vector<Mp3Clip> seq;
  seq.reserve(labels.size());
  for (char c : labels) seq.push_back(mp3_clip(c));
  return seq;
}

const MpegClip& football_clip() {
  static const MpegClip clip{"Football", seconds(875.0), hertz(25.0), hertz(44.0),
                             0.10};
  return clip;
}

const MpegClip& terminator2_clip() {
  static const MpegClip clip{"Terminator2", seconds(1200.0), hertz(25.0),
                             hertz(52.0), 0.04};
  return clip;
}

}  // namespace dvs::workload
