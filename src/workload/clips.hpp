// Clip corpus: the six MP3 audio streams of Table 2 and the two MPEG video
// clips of Table 4 (Football, Terminator2).
//
// Frame arrival rates follow the codec: an MP3 frame carries 1152 PCM
// samples, so the real-time frame rate is sample_rate / 1152 (13.9 fr/s at
// 16 kHz up to 41.7 fr/s at 48 kHz — the paper reports 16-44 fr/s across
// its sequences).  MPEG clips play at their native frame rate with the
// paper's 9-32 fr/s arrival variation coming from the network.
//
// Decode rates at the top frequency step are Table 2's "Dec. Rate" column
// (the exact cell values are corrupted in the scanned text; the
// reconstruction keeps the documented property that decode rate falls with
// bit rate and sample rate, and that every clip decodes comfortably faster
// than real time at the top step).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "workload/media.hpp"

namespace dvs::workload {

/// One row of Table 2.
struct Mp3Clip {
  char label;                ///< 'A' ... 'F'
  double bit_rate_kbps;
  double sample_rate_khz;
  Hertz decode_rate_at_max;  ///< mean decode rate at the top frequency step
  Seconds duration;          ///< play time used in the Table 3 sequences

  /// Real-time frame arrival rate: sample_rate / 1152 samples per frame.
  [[nodiscard]] Hertz arrival_rate() const {
    return hertz(sample_rate_khz * 1000.0 / 1152.0);
  }
  [[nodiscard]] double frame_count() const {
    return arrival_rate().value() * duration.value();
  }
};

/// The six clips of Table 2 (durations sum to the paper's 653 s).
std::span<const Mp3Clip> mp3_clip_table();

/// Clip by label; throws std::out_of_range for labels outside A-F.
const Mp3Clip& mp3_clip(char label);

/// Builds the clip sequence for a Table 3 experiment, e.g. "ACEFBD".
std::vector<Mp3Clip> mp3_sequence(const std::string& labels);

/// One MPEG video clip (Table 4 workloads).
struct MpegClip {
  std::string name;
  Seconds duration;
  Hertz nominal_frame_rate;   ///< native playback rate
  Hertz decode_rate_at_max;   ///< mean decode rate at the top frequency step
  double motion_variability;  ///< extra lognormal sigma for high-motion content
};

/// Football: 875 s of high-motion sport (large frame-to-frame variance).
const MpegClip& football_clip();

/// Terminator2: 1200 s feature-film excerpt.
const MpegClip& terminator2_clip();

}  // namespace dvs::workload
