#include "workload/decoder_model.hpp"

#include <utility>

namespace dvs::workload {

DecoderModel::DecoderModel(std::string name, MediaType type, Hertz rate_at_max,
                           double mem_fraction, MegaHertz max_frequency)
    : name_(std::move(name)), type_(type), f_max_(max_frequency) {
  DVS_CHECK_MSG(rate_at_max.value() > 0.0, name_ + ": non-positive decode rate");
  DVS_CHECK_MSG(mem_fraction >= 0.0 && mem_fraction < 1.0,
                name_ + ": mem_fraction must be in [0, 1)");
  DVS_CHECK_MSG(max_frequency.value() > 0.0, name_ + ": non-positive max frequency");
  const double t_max = 1.0 / rate_at_max.value();  // mean decode time at f_max
  mem_stall_ = Seconds{mem_fraction * t_max};
  // W mega-cycles at f MHz take W/f seconds.
  cpu_mcycles_ = (1.0 - mem_fraction) * t_max * max_frequency.value();
}

DecoderModel DecoderModel::mp3(Hertz rate_at_max, MegaHertz max_frequency) {
  return DecoderModel{"mp3-decoder", MediaType::Mp3Audio, rate_at_max, 0.45,
                      max_frequency};
}

DecoderModel DecoderModel::mpeg(Hertz rate_at_max, MegaHertz max_frequency) {
  return DecoderModel{"mpeg-decoder", MediaType::MpegVideo, rate_at_max, 0.08,
                      max_frequency};
}

Seconds DecoderModel::decode_time(MegaHertz f, double work) const {
  DVS_CHECK_MSG(f.value() > 0.0, name_ + ": non-positive frequency");
  DVS_CHECK_MSG(work > 0.0, name_ + ": non-positive work");
  return Seconds{work * (cpu_mcycles_ / f.value() + mem_stall_.value())};
}

Hertz DecoderModel::mean_decode_rate(MegaHertz f) const {
  return rate(decode_time(f));
}

double DecoderModel::performance_ratio(MegaHertz f) const {
  return decode_time(f_max_).value() / decode_time(f).value();
}

PiecewiseLinear DecoderModel::performance_curve(const hw::Sa1100& cpu) const {
  std::vector<PiecewiseLinear::Point> pts;
  pts.reserve(cpu.num_steps());
  for (const auto& step : cpu.steps()) {
    pts.emplace_back(step.frequency.value(), performance_ratio(step.frequency));
  }
  return PiecewiseLinear{std::move(pts)};
}

PiecewiseLinear DecoderModel::rate_curve(const hw::Sa1100& cpu) const {
  std::vector<PiecewiseLinear::Point> pts;
  pts.reserve(cpu.num_steps());
  for (const auto& step : cpu.steps()) {
    pts.emplace_back(step.frequency.value(),
                     mean_decode_rate(step.frequency).value());
  }
  return PiecewiseLinear{std::move(pts)};
}

Seconds DecoderModel::normalize_to_max(Seconds observed, MegaHertz f) const {
  return observed * performance_ratio(f);
}

}  // namespace dvs::workload
