// Frame-decode timing model.
//
// Decoding splits into a CPU-bound part that scales with clock frequency
// and a memory-stall part that does not: t(f) = W_cpu / f + T_mem.  The
// paper's Figures 4 and 5 are exactly this effect — "MP3 audio was decoded
// using slower SRAM ... performance improvements at high processor
// frequencies are memory-bound, and speedup is not linear.  MPEG video
// decode ran on much faster SDRAM and thus its performance curve is almost
// linear."
//
// A model is parameterized by the decode rate it achieves at the top
// frequency step and by the memory-bound fraction beta (share of the decode
// time spent stalled on memory when running at the top frequency).
#pragma once

#include <string>

#include "common/check.hpp"
#include "common/piecewise_linear.hpp"
#include "common/units.hpp"
#include "hw/sa1100.hpp"
#include "workload/media.hpp"

namespace dvs::workload {

class DecoderModel {
 public:
  /// rate_at_max: mean decode rate at `max_frequency` for work = 1.0.
  /// mem_fraction: beta in [0, 1); 0 = perfectly CPU-bound.
  DecoderModel(std::string name, MediaType type, Hertz rate_at_max,
               double mem_fraction, MegaHertz max_frequency);

  /// MP3 on the SmartBadge's slow SRAM: strongly memory-bound (beta 0.45).
  static DecoderModel mp3(Hertz rate_at_max, MegaHertz max_frequency);

  /// MPEG on fast SDRAM: nearly CPU-bound (beta 0.08).
  static DecoderModel mpeg(Hertz rate_at_max, MegaHertz max_frequency);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] MediaType type() const { return type_; }

  /// Time to decode a frame with the given work multiplier at frequency f.
  [[nodiscard]] Seconds decode_time(MegaHertz f, double work = 1.0) const;

  /// Mean decode rate at frequency f (work = 1.0).
  [[nodiscard]] Hertz mean_decode_rate(MegaHertz f) const;

  /// Performance ratio rate(f) / rate(f_max) in (0, 1].
  [[nodiscard]] double performance_ratio(MegaHertz f) const;

  /// The Figure 4/5 performance curve sampled at the CPU's frequency steps:
  /// knots (frequency MHz, performance ratio).  This is the curve the
  /// frequency-setting policy inverts ("piece-wise linear approximation
  /// based on the application frequency-performance tradeoff curve").
  [[nodiscard]] PiecewiseLinear performance_curve(const hw::Sa1100& cpu) const;

  /// Same, but with absolute decode rates as y values.
  [[nodiscard]] PiecewiseLinear rate_curve(const hw::Sa1100& cpu) const;

  /// Normalizes a decode time observed at frequency f to the equivalent
  /// decode time at the top frequency: t_max = t_obs * performance_ratio(f).
  /// The service-rate detector runs on these normalized samples so its
  /// estimate is independent of the frequency history.
  [[nodiscard]] Seconds normalize_to_max(Seconds observed, MegaHertz f) const;

  [[nodiscard]] double cpu_megacycles() const { return cpu_mcycles_; }
  [[nodiscard]] Seconds memory_stall() const { return mem_stall_; }
  [[nodiscard]] MegaHertz max_frequency() const { return f_max_; }

 private:
  std::string name_;
  MediaType type_;
  MegaHertz f_max_;
  double cpu_mcycles_;  ///< W_cpu: cycles (in millions) per mean frame.
  Seconds mem_stall_;   ///< T_mem: frequency-independent seconds per mean frame.
};

}  // namespace dvs::workload
