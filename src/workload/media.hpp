// Basic media-stream vocabulary shared by the workload generators, the
// queue, and the full-system simulation.
#pragma once

#include <cstdint>
#include <string_view>

#include "common/units.hpp"

namespace dvs::workload {

enum class MediaType { Mp3Audio, MpegVideo };

constexpr std::string_view to_string(MediaType t) {
  switch (t) {
    case MediaType::Mp3Audio: return "mp3-audio";
    case MediaType::MpegVideo: return "mpeg-video";
  }
  return "?";
}

/// One frame as it travels from the WLAN into the frame buffer and through
/// the decoder.
struct Frame {
  std::uint64_t id = 0;
  MediaType type = MediaType::Mp3Audio;
  Seconds arrival{0.0};
  /// Decode-work multiplier relative to the clip's mean frame (1.0 = mean).
  /// MPEG I-frames are ~3x a B-frame; MP3 frames are nearly uniform.
  double work = 1.0;
};

}  // namespace dvs::workload
