#include "workload/trace.hpp"

#include <algorithm>
#include <utility>

#include "common/check.hpp"
#include "workload/work_model.hpp"

namespace dvs::workload {

FrameTrace::FrameTrace(MediaType type, std::vector<TraceFrame> frames,
                       std::vector<RateTruth> truth, Seconds duration)
    : type_(type),
      frames_(std::move(frames)),
      truth_(std::move(truth)),
      duration_(duration) {
  DVS_CHECK_MSG(!truth_.empty(), "FrameTrace: missing ground truth");
  for (std::size_t i = 1; i < frames_.size(); ++i) {
    DVS_CHECK_MSG(frames_[i].arrival >= frames_[i - 1].arrival,
                  "FrameTrace: arrivals must be non-decreasing");
  }
  for (std::size_t i = 1; i < truth_.size(); ++i) {
    DVS_CHECK_MSG(truth_[i].time >= truth_[i - 1].time,
                  "FrameTrace: truth segments must be non-decreasing");
  }
}

namespace {

template <typename Get>
Hertz truth_lookup(std::span<const RateTruth> truth, Seconds t, Get get) {
  Hertz r = get(truth.front());
  for (const auto& seg : truth) {
    if (seg.time <= t) {
      r = get(seg);
    } else {
      break;
    }
  }
  return r;
}

}  // namespace

Hertz FrameTrace::true_arrival_rate(Seconds t) const {
  return truth_lookup(truth_, t, [](const RateTruth& s) { return s.arrival_rate; });
}

Hertz FrameTrace::true_service_rate_at_max(Seconds t) const {
  return truth_lookup(truth_, t,
                      [](const RateTruth& s) { return s.service_rate_at_max; });
}

FrameTrace FrameTrace::shifted(Seconds offset) const {
  std::vector<TraceFrame> frames = frames_;
  for (auto& f : frames) f.arrival += offset;
  std::vector<RateTruth> truth = truth_;
  for (auto& s : truth) s.time += offset;
  return FrameTrace{type_, std::move(frames), std::move(truth), duration_};
}

FrameTrace FrameTrace::rate_scaled(double factor) const {
  DVS_CHECK_MSG(factor > 0.0, "FrameTrace: rate scale must be > 0");
  std::vector<TraceFrame> frames = frames_;
  for (auto& f : frames) f.arrival = seconds(f.arrival.value() / factor);
  std::vector<RateTruth> truth = truth_;
  for (auto& s : truth) {
    s.time = seconds(s.time.value() / factor);
    s.arrival_rate = hertz(s.arrival_rate.value() * factor);
  }
  return FrameTrace{type_, std::move(frames), std::move(truth),
                    seconds(duration_.value() / factor)};
}

DecoderModel reference_mp3_decoder(MegaHertz max_frequency) {
  return DecoderModel::mp3(hertz(kMp3ReferenceRate), max_frequency);
}

DecoderModel reference_mpeg_decoder(MegaHertz max_frequency) {
  return DecoderModel::mpeg(hertz(kMpegReferenceRate), max_frequency);
}

FrameTrace build_mp3_trace(std::span<const Mp3Clip> sequence,
                           const DecoderModel& decoder, Rng& rng,
                           const TraceOptions& opts) {
  DVS_CHECK_MSG(!sequence.empty(), "build_mp3_trace: empty sequence");
  DVS_CHECK_MSG(decoder.type() == MediaType::Mp3Audio,
                "build_mp3_trace: decoder is not an MP3 decoder");

  const double ref_rate = decoder.mean_decode_rate(decoder.max_frequency()).value();

  std::vector<TraceFrame> frames;
  std::vector<RateTruth> truth;
  Mp3Work jitter{opts.mp3_work_sigma};

  Seconds clip_start{0.0};
  std::uint64_t id = 0;
  for (const auto& clip : sequence) {
    const Seconds clip_end = clip_start + clip.duration;
    // Work multiplier that makes the reference decoder hit this clip's
    // Table 2 decode rate at the top step (for the clip's mean frame).
    const double clip_work = ref_rate / clip.decode_rate_at_max.value();
    truth.push_back({clip_start, clip.arrival_rate(), clip.decode_rate_at_max});

    RateSchedule sched;
    sched.append(clip_start, clip.arrival_rate());
    ArrivalProcess arrivals{std::move(sched), opts.arrival_jitter_sigma};

    Seconds t = clip_start;
    for (;;) {
      t = arrivals.next_after(t, rng);
      if (t >= clip_end) break;
      frames.push_back({id++, t, clip_work * jitter.next(rng)});
    }
    clip_start = clip_end;
  }
  return FrameTrace{MediaType::Mp3Audio, std::move(frames), std::move(truth),
                    clip_start};
}

FrameTrace build_mpeg_trace(const MpegClip& clip, const DecoderModel& decoder,
                            Rng& rng, const MpegArrivalModel& net,
                            const TraceOptions& opts) {
  DVS_CHECK_MSG(decoder.type() == MediaType::MpegVideo,
                "build_mpeg_trace: decoder is not an MPEG decoder");
  DVS_CHECK_MSG(net.rate_hi >= net.rate_lo && net.rate_lo.value() > 0.0,
                "build_mpeg_trace: bad arrival-rate range");
  DVS_CHECK_MSG(net.network_epoch.value() > 0.0,
                "build_mpeg_trace: network epoch must be > 0");

  const double ref_rate = decoder.mean_decode_rate(decoder.max_frequency()).value();
  const double clip_work = ref_rate / clip.decode_rate_at_max.value();

  // Network epochs: the WLAN delivery rate re-draws every epoch.
  RateSchedule sched;
  std::vector<RateTruth> truth;
  for (Seconds t{0.0}; t < clip.duration; t += net.network_epoch) {
    const Hertz r =
        hertz(rng.uniform(net.rate_lo.value(), net.rate_hi.value()));
    sched.append(t, r);
    truth.push_back({t, r, clip.decode_rate_at_max});
  }
  ArrivalProcess arrivals{std::move(sched), opts.arrival_jitter_sigma};

  MpegWork gop{MpegWork::Weights{},
               std::min(0.99, opts.mpeg_content_sigma + clip.motion_variability)};

  std::vector<TraceFrame> frames;
  std::uint64_t id = 0;
  Seconds t{0.0};
  for (;;) {
    t = arrivals.next_after(t, rng);
    if (t >= clip.duration) break;
    frames.push_back({id++, t, clip_work * gop.next(rng)});
  }
  return FrameTrace{MediaType::MpegVideo, std::move(frames), std::move(truth),
                    clip.duration};
}

}  // namespace dvs::workload
