// Frame traces: pre-generated workloads with ground truth attached.
//
// Tables 3 and 4 compare four detection algorithms *on the same inputs*
// (ideal detection "assumes knowledge of the future").  A FrameTrace is the
// mechanism: it is generated once per experiment seed and fed to every
// algorithm, and it carries the true generating rates so the ideal detector
// can read the future and so tests can score detection latency.
//
// Clip-to-clip difficulty is expressed through the per-frame work
// multiplier: the decoder hardware model is fixed per media type (one MP3
// decoder, one MPEG decoder), and a clip whose Table 2 decode rate is R
// gets multiplier reference_rate / R on top of its frame-level jitter.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "workload/arrival.hpp"
#include "workload/clips.hpp"
#include "workload/decoder_model.hpp"
#include "workload/media.hpp"

namespace dvs::workload {

/// One generated frame with its ground truth.
struct TraceFrame {
  std::uint64_t id = 0;
  Seconds arrival{0.0};
  double work = 1.0;  ///< decode-work multiplier vs the decoder model's mean
};

/// Ground-truth rate segment: in force from `time` until the next entry.
struct RateTruth {
  Seconds time;
  Hertz arrival_rate;
  /// Mean decode rate at the top frequency step for frames of this segment.
  Hertz service_rate_at_max;
};

/// An immutable generated workload.
class FrameTrace {
 public:
  FrameTrace(MediaType type, std::vector<TraceFrame> frames,
             std::vector<RateTruth> truth, Seconds duration);

  [[nodiscard]] MediaType type() const { return type_; }
  [[nodiscard]] std::span<const TraceFrame> frames() const { return frames_; }
  [[nodiscard]] std::size_t size() const { return frames_.size(); }
  [[nodiscard]] Seconds duration() const { return duration_; }
  [[nodiscard]] std::span<const RateTruth> truth() const { return truth_; }

  /// Ground-truth rates in force at time t.
  [[nodiscard]] Hertz true_arrival_rate(Seconds t) const;
  [[nodiscard]] Hertz true_service_rate_at_max(Seconds t) const;

  /// Shifts every timestamp by `offset` (used when splicing traces into a
  /// longer session).
  [[nodiscard]] FrameTrace shifted(Seconds offset) const;

  /// Speeds up (factor > 1) or slows down (factor < 1) delivery of the
  /// whole trace: arrival timestamps, truth segment boundaries, and the
  /// duration divide by `factor`; true arrival rates multiply by it.  The
  /// per-frame work and decode rates are untouched — this is the same
  /// content arriving over a faster or slower network, the per-device rate
  /// jitter primitive used by fleet simulation.
  [[nodiscard]] FrameTrace rate_scaled(double factor) const;

 private:
  MediaType type_;
  std::vector<TraceFrame> frames_;
  std::vector<RateTruth> truth_;
  Seconds duration_;
};

/// Default reference decode rates (work multiplier 1.0) at the top step.
inline constexpr double kMp3ReferenceRate = 100.0;   // frames/s
inline constexpr double kMpegReferenceRate = 48.0;   // frames/s

/// Reference decoders for the SmartBadge's top frequency (221.25 MHz).
DecoderModel reference_mp3_decoder(MegaHertz max_frequency);
DecoderModel reference_mpeg_decoder(MegaHertz max_frequency);

/// Options controlling trace generation.
struct TraceOptions {
  double arrival_jitter_sigma = 0.35;  ///< network-delay jitter (Fig. 6 ~8% CDF error)
  double mp3_work_sigma = 0.05;        ///< per-frame MP3 work jitter
  double mpeg_content_sigma = 0.12;    ///< per-frame MPEG lognormal noise
};

/// Generates a trace for a sequence of MP3 clips played back-to-back.
FrameTrace build_mp3_trace(std::span<const Mp3Clip> sequence,
                           const DecoderModel& decoder, Rng& rng,
                           const TraceOptions& opts = {});

/// Generates a trace for one MPEG clip.  The arrival rate re-draws uniformly
/// in [rate_lo, rate_hi] every `network_epoch` to model the paper's 9-32
/// fr/s WLAN variation.
struct MpegArrivalModel {
  Hertz rate_lo{9.0};
  Hertz rate_hi{32.0};
  Seconds network_epoch{60.0};
};
FrameTrace build_mpeg_trace(const MpegClip& clip, const DecoderModel& decoder,
                            Rng& rng, const MpegArrivalModel& net = {},
                            const TraceOptions& opts = {});

}  // namespace dvs::workload
