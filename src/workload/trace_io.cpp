#include "workload/trace_io.hpp"

#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace dvs::workload {
namespace {

constexpr const char* kMagic = "dvs-trace v1";

std::string type_tag(MediaType t) { return std::string(to_string(t)); }

MediaType parse_type(const std::string& tag) {
  if (tag == to_string(MediaType::Mp3Audio)) return MediaType::Mp3Audio;
  if (tag == to_string(MediaType::MpegVideo)) return MediaType::MpegVideo;
  throw std::runtime_error("load_trace: unknown media type '" + tag + "'");
}

[[noreturn]] void malformed(const std::string& what) {
  throw std::runtime_error("load_trace: malformed input: " + what);
}

}  // namespace

void save_trace(const FrameTrace& trace, std::ostream& out) {
  out << kMagic << '\n';
  out << "type " << type_tag(trace.type()) << '\n';
  out << std::setprecision(17);
  out << "duration " << trace.duration().value() << '\n';
  for (const RateTruth& seg : trace.truth()) {
    out << "truth " << seg.time.value() << ' ' << seg.arrival_rate.value() << ' '
        << seg.service_rate_at_max.value() << '\n';
  }
  for (const TraceFrame& f : trace.frames()) {
    out << "frame " << f.id << ' ' << f.arrival.value() << ' ' << f.work << '\n';
  }
  if (!out) throw std::runtime_error("save_trace: write failed");
}

void save_trace(const FrameTrace& trace, const std::string& path) {
  std::ofstream out{path};
  if (!out) throw std::runtime_error("save_trace: cannot open " + path);
  save_trace(trace, out);
}

FrameTrace load_trace(std::istream& in) {
  std::string line;
  if (!std::getline(in, line) || line != kMagic) malformed("missing magic header");

  MediaType type = MediaType::Mp3Audio;
  bool have_type = false;
  double duration = -1.0;
  std::vector<RateTruth> truth;
  std::vector<TraceFrame> frames;

  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream ls{line};
    std::string key;
    ls >> key;
    if (key == "type") {
      std::string tag;
      ls >> tag;
      type = parse_type(tag);
      have_type = true;
    } else if (key == "duration") {
      ls >> duration;
    } else if (key == "truth") {
      double t = 0.0;
      double arr = 0.0;
      double svc = 0.0;
      ls >> t >> arr >> svc;
      if (!ls) malformed("bad truth line: " + line);
      truth.push_back({Seconds{t}, Hertz{arr}, Hertz{svc}});
    } else if (key == "frame") {
      TraceFrame f;
      double arrival = 0.0;
      ls >> f.id >> arrival >> f.work;
      if (!ls) malformed("bad frame line: " + line);
      f.arrival = Seconds{arrival};
      frames.push_back(f);
    } else {
      malformed("unknown key '" + key + "'");
    }
  }
  if (!have_type) malformed("missing type");
  if (duration < 0.0) malformed("missing duration");
  if (truth.empty()) malformed("missing truth segments");
  return FrameTrace{type, std::move(frames), std::move(truth), Seconds{duration}};
}

FrameTrace load_trace(const std::string& path) {
  std::ifstream in{path};
  if (!in) throw std::runtime_error("load_trace: cannot open " + path);
  return load_trace(in);
}

}  // namespace dvs::workload
