// FrameTrace serialization: record a generated workload to a file and
// replay it later.
//
// The format is a line-oriented text file, versioned and self-describing,
// so traces can be shared between experiments, diffed, and regenerated
// bit-for-bit across machines:
//
//   dvs-trace v1
//   type mp3-audio|mpeg-video
//   duration <seconds>
//   truth <time> <arrival_rate> <service_rate_at_max>      (one per segment)
//   frame <id> <arrival> <work>                            (one per frame)
#pragma once

#include <iosfwd>
#include <string>

#include "workload/trace.hpp"

namespace dvs::workload {

/// Writes a trace; throws std::runtime_error on I/O failure.
void save_trace(const FrameTrace& trace, std::ostream& out);
void save_trace(const FrameTrace& trace, const std::string& path);

/// Reads a trace; throws std::runtime_error on malformed input or I/O
/// failure.  Round-trips exactly: load(save(t)) == t field-for-field at
/// full double precision.
FrameTrace load_trace(std::istream& in);
FrameTrace load_trace(const std::string& path);

}  // namespace dvs::workload
