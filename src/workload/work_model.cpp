#include "workload/work_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace dvs::workload {

Mp3Work::Mp3Work(double sigma) : sigma_(sigma) {
  DVS_CHECK_MSG(sigma >= 0.0 && sigma < 0.3, "Mp3Work: sigma out of sane range");
}

double Mp3Work::next(Rng& rng) {
  // Truncate at +/- 3 sigma; keeps the multiplier positive and the mean 1.
  const double raw = rng.normal(1.0, sigma_);
  return std::clamp(raw, 1.0 - 3.0 * sigma_, 1.0 + 3.0 * sigma_);
}

MpegWork::MpegWork(Weights w, double content_sigma)
    : weights_(w), content_sigma_(content_sigma) {
  DVS_CHECK_MSG(w.i > 0 && w.p > 0 && w.b > 0, "MpegWork: weights must be > 0");
  DVS_CHECK_MSG(content_sigma >= 0.0 && content_sigma < 1.0,
                "MpegWork: content sigma out of range");
  double sum = 0.0;
  for (char t : kGop) {
    sum += t == 'I' ? w.i : (t == 'P' ? w.p : w.b);
  }
  mean_ = sum / static_cast<double>(kGop.size());
}

char MpegWork::frame_type_at(std::size_t i) const { return kGop[i % kGop.size()]; }

double MpegWork::cv2() const {
  // GOP pattern: discrete distribution over the normalized weights.
  double sum_sq = 0.0;
  for (char t : kGop) {
    const double w =
        (t == 'I' ? weights_.i : (t == 'P' ? weights_.p : weights_.b)) / mean_;
    sum_sq += w * w;
  }
  const double cv2_gop = sum_sq / static_cast<double>(kGop.size()) - 1.0;
  // Unit-mean lognormal noise: cv2 = exp(sigma^2) - 1.
  const double cv2_noise = std::exp(content_sigma_ * content_sigma_) - 1.0;
  return (1.0 + cv2_gop) * (1.0 + cv2_noise) - 1.0;
}

double MpegWork::next(Rng& rng) {
  const char type = kGop[pos_];
  pos_ = (pos_ + 1) % kGop.size();
  const double base =
      (type == 'I' ? weights_.i : (type == 'P' ? weights_.p : weights_.b)) / mean_;
  // Lognormal with unit mean: exp(N(-s^2/2, s)).
  const double noise =
      content_sigma_ > 0.0
          ? std::exp(rng.normal(-0.5 * content_sigma_ * content_sigma_, content_sigma_))
          : 1.0;
  return base * noise;
}

}  // namespace dvs::workload
