// Per-frame decode-work variability.
//
// "There was very little variation on frame-by-frame basis in decoding rate
// within a given audio clip" (MP3), while "for MPEG video there is a large
// variation in decoding rates on frame-by-frame basis" — a factor of three
// in cycles across frame types [Bavier et al. 1998].  Both behaviours are
// modelled here as a stream of work multipliers with mean 1.0.
#pragma once

#include <array>
#include <memory>
#include <string>

#include "common/rng.hpp"

namespace dvs::workload {

/// Interface: stream of per-frame decode-work multipliers, mean ~1.0.
class WorkModel {
 public:
  virtual ~WorkModel() = default;
  /// Multiplier for the next frame (> 0).
  virtual double next(Rng& rng) = 0;
  [[nodiscard]] virtual std::string name() const = 0;
  /// Resets any internal position (e.g. GOP phase).
  virtual void reset() = 0;
  /// Squared coefficient of variation of the multiplier stream — the cv2
  /// the M/G/1 (Pollaczek-Khinchine) frequency policy consumes.
  [[nodiscard]] virtual double cv2() const = 0;
};

/// Constant work: every frame costs the clip mean (used by analytic tests).
class ConstantWork final : public WorkModel {
 public:
  double next(Rng&) override { return 1.0; }
  [[nodiscard]] std::string name() const override { return "constant"; }
  void reset() override {}
  [[nodiscard]] double cv2() const override { return 0.0; }
};

/// MP3: tight normal jitter around the mean, truncated to stay positive.
class Mp3Work final : public WorkModel {
 public:
  explicit Mp3Work(double sigma = 0.05);
  double next(Rng& rng) override;
  [[nodiscard]] std::string name() const override { return "mp3-work"; }
  void reset() override {}
  /// ~sigma^2 (the +/-3 sigma truncation shaves a negligible amount).
  [[nodiscard]] double cv2() const override { return sigma_ * sigma_; }

 private:
  double sigma_;
};

/// MPEG: a repeating GOP (group of pictures) of I/P/B frame types with
/// type-dependent mean work plus lognormal content noise.  The default GOP
/// is the common IBBPBBPBBPBB pattern; weights give a ~3.5x span between an
/// I frame and a B frame, matching the variance reported in the paper's
/// references [15, 16].
class MpegWork final : public WorkModel {
 public:
  struct Weights {
    double i = 2.2;
    double p = 1.1;
    double b = 0.62;
  };

  MpegWork() : MpegWork(Weights{}, 0.12) {}
  explicit MpegWork(Weights w, double content_sigma = 0.12);

  double next(Rng& rng) override;
  [[nodiscard]] std::string name() const override { return "mpeg-work"; }
  void reset() override { pos_ = 0; }

  /// The frame type at GOP position i (for tests and trace labelling).
  [[nodiscard]] char frame_type_at(std::size_t i) const;
  [[nodiscard]] std::size_t gop_length() const { return kGop.size(); }

  /// Exact analytic cv2: GOP pattern variance composed with the lognormal
  /// content noise, (1 + cv2_gop)(1 + cv2_noise) - 1.
  [[nodiscard]] double cv2() const override;

 private:
  static constexpr std::array<char, 12> kGop = {'I', 'B', 'B', 'P', 'B', 'B',
                                                'P', 'B', 'B', 'P', 'B', 'B'};
  Weights weights_;
  double content_sigma_;
  double mean_;  ///< mean of the weighted GOP, used to normalize to 1.0
  std::size_t pos_ = 0;
};

}  // namespace dvs::workload
