#!/usr/bin/env python3
"""End-to-end smoke test for the dvs_sim CLI observability surface.

Runs the binary (path in argv[1]) on a change-point + TISMDP workload with
--metrics-json - and --chrome-trace, then checks that:
  * stdout is a single valid JSON document (human report goes to stderr),
  * counters report a sane run (frames decoded, detector active),
  * the Chrome trace is valid JSON with monotonically non-decreasing
    timestamps and contains governor, detector, and DPM activity.
"""

import json
import subprocess
import sys
import tempfile
import os


def fail(msg):
    print("FAIL:", msg, file=sys.stderr)
    sys.exit(1)


def main():
    if len(sys.argv) != 2:
        fail("usage: cli_smoke_test.py <path-to-dvs-sim>")
    binary = sys.argv[1]

    with tempfile.TemporaryDirectory() as tmp:
        chrome = os.path.join(tmp, "trace.json")
        cmd = [
            binary,
            "--media", "mp3",
            "--sequence", "AC",
            "--seconds", "30",
            "--detector", "change-point",
            "--dpm", "tismdp",
            "--metrics-json", "-",
            "--chrome-trace", chrome,
        ]
        proc = subprocess.run(cmd, capture_output=True, text=True, timeout=600)
        if proc.returncode != 0:
            fail(f"exit code {proc.returncode}\nstderr:\n{proc.stderr}")

        # stdout must be pure JSON (the human report went to stderr).
        try:
            metrics = json.loads(proc.stdout)
        except json.JSONDecodeError as e:
            fail(f"stdout is not valid JSON: {e}\nstdout:\n{proc.stdout[:2000]}")
        for section in ("counters", "gauges", "histograms"):
            if section not in metrics:
                fail(f"metrics JSON missing section {section!r}")

        counters = metrics["counters"]
        if counters.get("frames_decoded", 0) <= 0:
            fail(f"frames_decoded not positive: {counters}")
        if counters.get("frames_arrived", 0) < counters["frames_decoded"]:
            fail("more frames decoded than arrived")
        if counters.get("detector.decisions", 0) <= 0:
            fail("change-point detector never evaluated a decision")
        if counters.get("trace.events_recorded", 0) <= 0:
            fail("trace recorder saw no events despite an attached sink")
        if metrics["gauges"].get("energy_j", 0.0) <= 0.0:
            fail("energy gauge not positive")
        if "frames.delay_s" not in metrics["histograms"]:
            fail("frame-delay histogram missing")
        if "mean frame delay" not in proc.stderr:
            fail("human-readable report did not go to stderr")

        # Chrome trace: valid JSON, monotone timestamps, expected content.
        with open(chrome) as f:
            trace = json.load(f)
        events = trace if isinstance(trace, list) else trace["traceEvents"]
        if not events:
            fail("chrome trace is empty")
        ts = [e["ts"] for e in events]
        if any(b < a for a, b in zip(ts, ts[1:])):
            fail("chrome trace timestamps are not monotonically non-decreasing")
        names = {e["name"] for e in events}
        for needed in ("freq_commit", "cpu_mhz", "decode", "idle_enter",
                       "wakeup"):
            if needed not in names:
                fail(f"chrome trace missing expected event name {needed!r}; "
                     f"saw {sorted(names)}")
        if not any(n.startswith("sleep:") for n in names):
            fail("chrome trace has no DPM sleep commands")
        if not any(n.startswith("rate_") for n in names):
            fail("chrome trace has no detector rate activity")

    # Scenario registry: --list-scenarios enumerates the built-in sweeps.
    proc = subprocess.run([binary, "--list-scenarios"],
                          capture_output=True, text=True, timeout=60)
    if proc.returncode != 0:
        fail(f"--list-scenarios exit code {proc.returncode}\n{proc.stderr}")
    for name in ("table3", "table5", "quick"):
        if name not in proc.stdout:
            fail(f"--list-scenarios output missing {name!r}:\n{proc.stdout}")

    # A small sweep through the scenario runner, parallel, with CSV export
    # and metrics emission.
    with tempfile.TemporaryDirectory() as tmp:
        csv_base = os.path.join(tmp, "quick")
        cmd = [
            binary,
            "--scenario", "quick",
            "--jobs", "2",
            "--metrics-json", "-",
            "--sweep-csv", csv_base,
        ]
        proc = subprocess.run(cmd, capture_output=True, text=True, timeout=600)
        if proc.returncode != 0:
            fail(f"--scenario quick exit code {proc.returncode}\n{proc.stderr}")
        try:
            sweep_metrics = json.loads(proc.stdout)
        except json.JSONDecodeError as e:
            fail(f"sweep metrics JSON invalid: {e}\n{proc.stdout[:2000]}")
        if sweep_metrics["counters"].get("sweep.points", 0) <= 0:
            fail(f"sweep.points counter missing: {sweep_metrics['counters']}")
        if "Change Point" not in proc.stderr:
            fail(f"sweep cell table did not list the detector:\n{proc.stderr}")
        for suffix in ("_cells.csv", "_points.csv"):
            path = csv_base + suffix
            if not os.path.exists(path):
                fail(f"--sweep-csv did not write {path}")
            with open(path) as f:
                lines = [l for l in f.read().splitlines() if l]
            if len(lines) < 2:
                fail(f"{path} has no data rows")

    # Unknown scenario names must fail loudly, not run something else.
    proc = subprocess.run([binary, "--scenario", "no-such"],
                          capture_output=True, text=True, timeout=60)
    if proc.returncode == 0:
        fail("--scenario no-such unexpectedly succeeded")

    # Fault registry: --list-faults enumerates the built-in fault specs.
    proc = subprocess.run([binary, "--list-faults"],
                          capture_output=True, text=True, timeout=60)
    if proc.returncode != 0:
        fail(f"--list-faults exit code {proc.returncode}\n{proc.stderr}")
    for name in ("none", "spike10x", "wakeup-flaky", "chaos"):
        if name not in proc.stdout:
            fail(f"--list-faults output missing {name!r}:\n{proc.stdout}")

    # Faulted sweep: the fault axis replaces the scenario's, the cell table
    # grows a Faults column, and the points CSV carries degradation columns.
    with tempfile.TemporaryDirectory() as tmp:
        csv_base = os.path.join(tmp, "faulted")
        cmd = [
            binary,
            "--scenario", "quick",
            "--faults", "spike10x",
            "--jobs", "2",
            "--metrics-json", "-",
            "--sweep-csv", csv_base,
        ]
        proc = subprocess.run(cmd, capture_output=True, text=True, timeout=600)
        if proc.returncode != 0:
            fail(f"faulted sweep exit code {proc.returncode}\n{proc.stderr}")
        fault_metrics = json.loads(proc.stdout)
        if fault_metrics["counters"].get("sweep.recoveries", 0) <= 0:
            fail(f"spike10x sweep reported no watchdog recoveries: "
                 f"{fault_metrics['counters']}")
        if "spike10x" not in proc.stderr:
            fail(f"sweep cell table did not show the fault column:\n"
                 f"{proc.stderr}")
        with open(csv_base + "_points.csv") as f:
            header = f.readline().strip().split(",")
        for col in ("faults", "faults_injected", "escalations", "recoveries",
                    "time_degraded_s"):
            if col not in header:
                fail(f"points CSV missing column {col!r}: {header}")

    # Single-run fault injection: perturbations + watchdog on one trace.
    proc = subprocess.run(
        [binary, "--media", "mp3", "--sequence", "A",
         "--detector", "change-point", "--faults", "spike10x"],
        capture_output=True, text=True, timeout=600)
    if proc.returncode != 0:
        fail(f"single-run --faults exit code {proc.returncode}\n{proc.stderr}")
    if "watchdog" not in proc.stdout:
        fail(f"single-run fault report missing watchdog line:\n{proc.stdout}")

    # Unknown fault names must fail loudly.
    proc = subprocess.run([binary, "--scenario", "quick",
                           "--faults", "no-such-fault"],
                          capture_output=True, text=True, timeout=60)
    if proc.returncode == 0:
        fail("--faults no-such-fault unexpectedly succeeded")

    # ---- subcommand spellings (`dvs_sim run|sweep|list`) -------------------

    # `list scenarios` / `list faults` match the legacy listing flags.
    proc = subprocess.run([binary, "list", "scenarios"],
                          capture_output=True, text=True, timeout=60)
    if proc.returncode != 0:
        fail(f"`list scenarios` exit code {proc.returncode}\n{proc.stderr}")
    for name in ("table3", "table5", "quick"):
        if name not in proc.stdout:
            fail(f"`list scenarios` output missing {name!r}:\n{proc.stdout}")
    proc = subprocess.run([binary, "list", "faults"],
                          capture_output=True, text=True, timeout=60)
    if proc.returncode != 0:
        fail(f"`list faults` exit code {proc.returncode}\n{proc.stderr}")
    for name in ("none", "spike10x", "wakeup-flaky", "chaos"):
        if name not in proc.stdout:
            fail(f"`list faults` output missing {name!r}:\n{proc.stdout}")
    # Bare `list` prints both tables.
    proc = subprocess.run([binary, "list"],
                          capture_output=True, text=True, timeout=60)
    if proc.returncode != 0 or "table3" not in proc.stdout \
            or "spike10x" not in proc.stdout:
        fail(f"bare `list` did not print both tables:\n{proc.stdout}")

    # `run` matches the legacy flag-only single run bit for bit on stdout.
    run_cmd = ["--media", "mp3", "--sequence", "A", "--seconds", "30",
               "--detector", "change-point", "--dpm", "tismdp",
               "--metrics-json", "-"]
    new = subprocess.run([binary, "run"] + run_cmd,
                         capture_output=True, text=True, timeout=600)
    old = subprocess.run([binary] + run_cmd,
                         capture_output=True, text=True, timeout=600)
    if new.returncode != 0:
        fail(f"`run` exit code {new.returncode}\n{new.stderr}")
    if old.returncode != 0:
        fail(f"legacy flag-only run exit code {old.returncode}\n{old.stderr}")
    def drop_wall(text):
        doc = json.loads(text)
        doc["gauges"] = {k: v for k, v in doc["gauges"].items()
                         if not k.startswith("wall.")}
        return doc
    if drop_wall(new.stdout) != drop_wall(old.stdout):
        fail("`dvs_sim run` and legacy flag spelling disagree on metrics JSON")
    if "deprecated" not in old.stderr:
        fail("legacy flag-only invocation did not print a deprecation note")
    if "deprecated" in new.stderr:
        fail("`dvs_sim run` wrongly printed the deprecation note")

    # `sweep <name>` takes the scenario as a positional operand and produces
    # the same CSVs as the legacy --scenario spelling.
    with tempfile.TemporaryDirectory() as tmp:
        new_base = os.path.join(tmp, "new")
        old_base = os.path.join(tmp, "old")
        proc = subprocess.run(
            [binary, "sweep", "quick", "--jobs", "2", "--sweep-csv", new_base],
            capture_output=True, text=True, timeout=600)
        if proc.returncode != 0:
            fail(f"`sweep quick` exit code {proc.returncode}\n{proc.stderr}")
        proc = subprocess.run(
            [binary, "--scenario", "quick", "--jobs", "2",
             "--sweep-csv", old_base],
            capture_output=True, text=True, timeout=600)
        if proc.returncode != 0:
            fail(f"legacy --scenario exit code {proc.returncode}\n{proc.stderr}")
        for suffix in ("_cells.csv", "_points.csv"):
            with open(new_base + suffix) as f:
                new_csv = f.read()
            with open(old_base + suffix) as f:
                old_csv = f.read()
            if new_csv != old_csv:
                fail(f"`sweep quick` and --scenario quick disagree on {suffix}")

    # Bad subcommand surface: unknown commands and a missing scenario fail.
    proc = subprocess.run([binary, "frobnicate"],
                          capture_output=True, text=True, timeout=60)
    if proc.returncode == 0:
        fail("unknown subcommand unexpectedly succeeded")
    proc = subprocess.run([binary, "sweep"],
                          capture_output=True, text=True, timeout=60)
    if proc.returncode == 0:
        fail("`sweep` with no scenario unexpectedly succeeded")
    proc = subprocess.run([binary, "sweep", "no-such"],
                          capture_output=True, text=True, timeout=60)
    if proc.returncode == 0:
        fail("`sweep no-such` unexpectedly succeeded")

    print("OK: frames_decoded =", counters["frames_decoded"],
          "| trace events =", len(events))


if __name__ == "__main__":
    main()
