#!/usr/bin/env python3
"""End-to-end smoke test for the dvs_sim CLI observability surface.

Runs the binary (path in argv[1]) on a change-point + TISMDP workload with
--metrics-json - and --chrome-trace, then checks that:
  * stdout is a single valid JSON document (human report goes to stderr),
  * counters report a sane run (frames decoded, detector active),
  * the Chrome trace is valid JSON with monotonically non-decreasing
    timestamps and contains governor, detector, and DPM activity.
"""

import json
import subprocess
import sys
import tempfile
import os


def fail(msg):
    print("FAIL:", msg, file=sys.stderr)
    sys.exit(1)


def main():
    if len(sys.argv) != 2:
        fail("usage: cli_smoke_test.py <path-to-dvs-sim>")
    binary = sys.argv[1]

    with tempfile.TemporaryDirectory() as tmp:
        chrome = os.path.join(tmp, "trace.json")
        cmd = [
            binary, "run",
            "--media", "mp3",
            "--sequence", "AC",
            "--seconds", "30",
            "--detector", "change-point",
            "--dpm", "tismdp",
            "--metrics-json", "-",
            "--chrome-trace", chrome,
        ]
        proc = subprocess.run(cmd, capture_output=True, text=True, timeout=600)
        if proc.returncode != 0:
            fail(f"exit code {proc.returncode}\nstderr:\n{proc.stderr}")

        # stdout must be pure JSON (the human report went to stderr).
        try:
            metrics = json.loads(proc.stdout)
        except json.JSONDecodeError as e:
            fail(f"stdout is not valid JSON: {e}\nstdout:\n{proc.stdout[:2000]}")
        for section in ("counters", "gauges", "histograms"):
            if section not in metrics:
                fail(f"metrics JSON missing section {section!r}")

        counters = metrics["counters"]
        if counters.get("frames_decoded", 0) <= 0:
            fail(f"frames_decoded not positive: {counters}")
        if counters.get("frames_arrived", 0) < counters["frames_decoded"]:
            fail("more frames decoded than arrived")
        if counters.get("detector.decisions", 0) <= 0:
            fail("change-point detector never evaluated a decision")
        if counters.get("trace.events_recorded", 0) <= 0:
            fail("trace recorder saw no events despite an attached sink")
        if metrics["gauges"].get("energy_j", 0.0) <= 0.0:
            fail("energy gauge not positive")
        if "frames.delay_s" not in metrics["histograms"]:
            fail("frame-delay histogram missing")
        if "mean frame delay" not in proc.stderr:
            fail("human-readable report did not go to stderr")

        # Chrome trace: valid JSON, monotone timestamps, expected content.
        with open(chrome) as f:
            trace = json.load(f)
        events = trace if isinstance(trace, list) else trace["traceEvents"]
        if not events:
            fail("chrome trace is empty")
        ts = [e["ts"] for e in events]
        if any(b < a for a, b in zip(ts, ts[1:])):
            fail("chrome trace timestamps are not monotonically non-decreasing")
        names = {e["name"] for e in events}
        for needed in ("freq_commit", "cpu_mhz", "decode", "idle_enter",
                       "wakeup"):
            if needed not in names:
                fail(f"chrome trace missing expected event name {needed!r}; "
                     f"saw {sorted(names)}")
        if not any(n.startswith("sleep:") for n in names):
            fail("chrome trace has no DPM sleep commands")
        if not any(n.startswith("rate_") for n in names):
            fail("chrome trace has no detector rate activity")

    # A small sweep through the scenario runner, parallel, with CSV export
    # and metrics emission.
    with tempfile.TemporaryDirectory() as tmp:
        csv_base = os.path.join(tmp, "quick")
        cmd = [
            binary, "sweep", "quick",
            "--jobs", "2",
            "--metrics-json", "-",
            "--sweep-csv", csv_base,
        ]
        proc = subprocess.run(cmd, capture_output=True, text=True, timeout=600)
        if proc.returncode != 0:
            fail(f"`sweep quick` exit code {proc.returncode}\n{proc.stderr}")
        try:
            sweep_metrics = json.loads(proc.stdout)
        except json.JSONDecodeError as e:
            fail(f"sweep metrics JSON invalid: {e}\n{proc.stdout[:2000]}")
        if sweep_metrics["counters"].get("sweep.points", 0) <= 0:
            fail(f"sweep.points counter missing: {sweep_metrics['counters']}")
        if "Change Point" not in proc.stderr:
            fail(f"sweep cell table did not list the detector:\n{proc.stderr}")
        for suffix in ("_cells.csv", "_points.csv"):
            path = csv_base + suffix
            if not os.path.exists(path):
                fail(f"--sweep-csv did not write {path}")
            with open(path) as f:
                lines = [l for l in f.read().splitlines() if l]
            if len(lines) < 2:
                fail(f"{path} has no data rows")

    # Faulted sweep: the fault axis replaces the scenario's, the cell table
    # grows a Faults column, and the points CSV carries degradation columns.
    with tempfile.TemporaryDirectory() as tmp:
        csv_base = os.path.join(tmp, "faulted")
        cmd = [
            binary, "sweep", "quick",
            "--faults", "spike10x",
            "--jobs", "2",
            "--metrics-json", "-",
            "--sweep-csv", csv_base,
        ]
        proc = subprocess.run(cmd, capture_output=True, text=True, timeout=600)
        if proc.returncode != 0:
            fail(f"faulted sweep exit code {proc.returncode}\n{proc.stderr}")
        fault_metrics = json.loads(proc.stdout)
        if fault_metrics["counters"].get("sweep.recoveries", 0) <= 0:
            fail(f"spike10x sweep reported no watchdog recoveries: "
                 f"{fault_metrics['counters']}")
        if "spike10x" not in proc.stderr:
            fail(f"sweep cell table did not show the fault column:\n"
                 f"{proc.stderr}")
        with open(csv_base + "_points.csv") as f:
            header = f.readline().strip().split(",")
        for col in ("faults", "faults_injected", "escalations", "recoveries",
                    "time_degraded_s"):
            if col not in header:
                fail(f"points CSV missing column {col!r}: {header}")

    # Single-run fault injection: perturbations + watchdog on one trace.
    proc = subprocess.run(
        [binary, "run", "--media", "mp3", "--sequence", "A",
         "--detector", "change-point", "--faults", "spike10x"],
        capture_output=True, text=True, timeout=600)
    if proc.returncode != 0:
        fail(f"single-run --faults exit code {proc.returncode}\n{proc.stderr}")
    if "watchdog" not in proc.stdout:
        fail(f"single-run fault report missing watchdog line:\n{proc.stdout}")

    # Unknown fault names must fail loudly.
    proc = subprocess.run([binary, "sweep", "quick",
                           "--faults", "no-such-fault"],
                          capture_output=True, text=True, timeout=60)
    if proc.returncode == 0:
        fail("--faults no-such-fault unexpectedly succeeded")

    # ---- subcommand surface (`dvs_sim run|sweep|fleet|serve|report|list`) --

    # `list scenarios` / `list faults` enumerate the registries.
    proc = subprocess.run([binary, "list", "scenarios"],
                          capture_output=True, text=True, timeout=60)
    if proc.returncode != 0:
        fail(f"`list scenarios` exit code {proc.returncode}\n{proc.stderr}")
    for name in ("table3", "table5", "quick"):
        if name not in proc.stdout:
            fail(f"`list scenarios` output missing {name!r}:\n{proc.stdout}")
    proc = subprocess.run([binary, "list", "faults"],
                          capture_output=True, text=True, timeout=60)
    if proc.returncode != 0:
        fail(f"`list faults` exit code {proc.returncode}\n{proc.stderr}")
    for name in ("none", "spike10x", "wakeup-flaky", "chaos"):
        if name not in proc.stdout:
            fail(f"`list faults` output missing {name!r}:\n{proc.stdout}")
    # Bare `list` prints both tables.
    proc = subprocess.run([binary, "list"],
                          capture_output=True, text=True, timeout=60)
    if proc.returncode != 0 or "table3" not in proc.stdout \
            or "spike10x" not in proc.stdout:
        fail(f"bare `list` did not print both tables:\n{proc.stdout}")

    # Bad subcommand surface: unknown commands are a usage error (exit 2)
    # whose message names the real subcommands — the legacy flag-only
    # spelling is gone and must not silently run anything.
    for bad in (["frobnicate"],
                ["--media", "mp3", "--sequence", "A"],
                ["--scenario", "quick"]):
        proc = subprocess.run([binary] + bad,
                              capture_output=True, text=True, timeout=60)
        if proc.returncode != 2:
            fail(f"unknown invocation {bad} should exit 2, "
                 f"got {proc.returncode}")
        err = proc.stderr
        for word in ("run", "sweep", "fleet", "serve", "report", "list"):
            if word not in err:
                fail(f"usage error for {bad} does not name {word!r}:\n{err}")
    proc = subprocess.run([binary, "sweep"],
                          capture_output=True, text=True, timeout=60)
    if proc.returncode == 0:
        fail("`sweep` with no scenario unexpectedly succeeded")
    proc = subprocess.run([binary, "sweep", "no-such"],
                          capture_output=True, text=True, timeout=60)
    if proc.returncode == 0:
        fail("`sweep no-such` unexpectedly succeeded")

    # `list schemas` names every versioned artifact schema.
    proc = subprocess.run([binary, "list", "schemas"],
                          capture_output=True, text=True, timeout=60)
    if proc.returncode != 0:
        fail(f"`list schemas` exit code {proc.returncode}\n{proc.stderr}")
    for schema in ("dvs-job-v1", "dvs-checkpoint-v1", "dvs-metrics-v1",
                   "dvs-ledger-v1", "dvs-sketch-v1", "dvs-events-v1",
                   "dvs-serve-status-v1", "dvs-job-summary-v1"):
        if schema not in proc.stdout:
            fail(f"`list schemas` output missing {schema!r}:\n{proc.stdout}")

    # ---- serve: file-drop job queue, drain mode ----------------------------

    # A valid job travels queue/ -> done/ with artifacts; a malformed one
    # lands in failed/ with an error note.
    with tempfile.TemporaryDirectory() as tmp:
        queue = os.path.join(tmp, "queue")
        os.makedirs(queue)
        with open(os.path.join(queue, "ok.json"), "w") as f:
            json.dump({"schema": "dvs-job-v1", "kind": "run",
                       "run": {"media": "mp3", "sequence": "A",
                               "detector": "max"}}, f)
        with open(os.path.join(queue, "broken.json"), "w") as f:
            f.write("{not json")
        proc = subprocess.run([binary, "serve", tmp, "--drain"],
                              capture_output=True, text=True, timeout=600)
        if proc.returncode != 0:
            fail(f"`serve --drain` exit code {proc.returncode}\n{proc.stderr}")
        if not os.path.exists(os.path.join(tmp, "done", "ok.json")):
            fail("serve did not move the valid job to done/")
        run_csv = os.path.join(tmp, "done", "ok.out", "run.csv")
        if not os.path.exists(run_csv):
            fail("serve did not write run.csv for the completed job")
        with open(run_csv) as f:
            if len([l for l in f.read().splitlines() if l]) != 2:
                fail("serve run.csv is not header + one data row")
        if not os.path.exists(os.path.join(tmp, "failed", "broken.json")):
            fail("serve did not move the malformed job to failed/")
        if not os.path.exists(os.path.join(tmp, "failed",
                                           "broken.error.txt")):
            fail("serve did not leave an error note for the failed job")

        # Telemetry plane: the drained daemon leaves a readable status
        # snapshot, event log, and metrics scrape behind.
        proc = subprocess.run([binary, "status", tmp, "--json"],
                              capture_output=True, text=True, timeout=60)
        if proc.returncode != 0:
            fail(f"`status --json` exit {proc.returncode}\n{proc.stderr}")
        status = json.loads(proc.stdout)
        if status.get("schema") != "dvs-serve-status-v1":
            fail(f"status.json schema is {status.get('schema')!r}")
        if status.get("state") != "stopped":
            fail(f"drained daemon status not 'stopped': {status}")
        proc = subprocess.run([binary, "status", tmp],
                              capture_output=True, text=True, timeout=60)
        if proc.returncode != 0 or "daemon: stopped" not in proc.stdout:
            fail(f"human `status` missing daemon line:\n{proc.stdout}")
        proc = subprocess.run([binary, "tail", tmp, "--no-follow"],
                              capture_output=True, text=True, timeout=60)
        if proc.returncode != 0:
            fail(f"`tail --no-follow` exit {proc.returncode}\n{proc.stderr}")
        for event in ("daemon_start", "job_finished", "job_failed",
                      "daemon_stop"):
            if event not in proc.stdout:
                fail(f"`tail` output missing {event!r}:\n{proc.stdout}")
        if not os.path.exists(os.path.join(tmp, "metrics.om")):
            fail("serve did not write metrics.om")
        summary = os.path.join(tmp, "done", "ok.out", "job_summary.json")
        if not os.path.exists(summary):
            fail("serve did not write job_summary.json for the done job")

    # serve usage errors: missing root and unknown flags exit 2.
    proc = subprocess.run([binary, "serve"],
                          capture_output=True, text=True, timeout=60)
    if proc.returncode != 2:
        fail(f"bare `serve` should exit 2, got {proc.returncode}")

    # ---- observability surface: ledger, flight recorder, report ------------

    # S2: with --metrics-json - every other textual output must stay off
    # stdout — prose, saved-trace notes, and the ledger all go elsewhere.
    with tempfile.TemporaryDirectory() as tmp:
        ledger_path = os.path.join(tmp, "run.ledger.json")
        proc = subprocess.run(
            [binary, "run", "--media", "mp3", "--sequence", "A",
             "--seconds", "20", "--detector", "change-point",
             "--metrics-json", "-", "--ledger-json", ledger_path],
            capture_output=True, text=True, timeout=600)
        if proc.returncode != 0:
            fail(f"run with stdout metrics exit {proc.returncode}\n"
                 f"{proc.stderr}")
        try:
            json.loads(proc.stdout)
        except json.JSONDecodeError as e:
            fail(f"--ledger-json note polluted stdout JSON: {e}\n"
                 f"{proc.stdout[:2000]}")
        if "ledger json ->" not in proc.stderr:
            fail("ledger-written note missing from stderr")

        # --save-trace short-circuits the run; its note must follow the
        # metrics stream off stdout too.
        saved = os.path.join(tmp, "saved.trace")
        proc = subprocess.run(
            [binary, "run", "--media", "mp3", "--sequence", "A",
             "--metrics-json", "-", "--save-trace", saved],
            capture_output=True, text=True, timeout=600)
        if proc.returncode != 0:
            fail(f"--save-trace exit {proc.returncode}\n{proc.stderr}")
        if proc.stdout.strip():
            fail(f"--save-trace wrote prose onto the JSON stdout stream:\n"
                 f"{proc.stdout[:500]}")
        if "wrote" not in proc.stderr:
            fail("saved-trace note missing from stderr")

    # Two JSON documents cannot share stdout: that is a usage error.
    proc = subprocess.run(
        [binary, "run", "--media", "mp3", "--sequence", "A",
         "--metrics-json", "-", "--ledger-json", "-"],
        capture_output=True, text=True, timeout=60)
    if proc.returncode != 2:
        fail(f"--metrics-json - --ledger-json - should exit 2, "
             f"got {proc.returncode}")

    # Full artifact run -> `report` renders every section.
    with tempfile.TemporaryDirectory() as tmp:
        ledger_path = os.path.join(tmp, "run.ledger.json")
        metrics_path = os.path.join(tmp, "run.metrics.json")
        jsonl_path = os.path.join(tmp, "run.trace.jsonl")
        flight_path = os.path.join(tmp, "run.flight.txt")
        proc = subprocess.run(
            [binary, "run", "--media", "mp3", "--sequence", "AC",
             "--seconds", "30", "--detector", "change-point",
             "--dpm", "tismdp", "--ledger-json", ledger_path,
             "--metrics-json", metrics_path, "--trace-jsonl", jsonl_path,
             "--flight-dump", flight_path],
            capture_output=True, text=True, timeout=600)
        if proc.returncode != 0:
            fail(f"artifact run exit {proc.returncode}\n{proc.stderr}")

        # The ledger reconciles with the metrics totals (the C++ suite pins
        # 1e-9; this guards the serialized artifacts end to end).
        with open(ledger_path) as f:
            ledger = json.load(f)
        if ledger.get("schema") != "dvs-ledger-v1":
            fail(f"ledger schema wrong: {ledger.get('schema')!r}")
        with open(metrics_path) as f:
            run_metrics = json.load(f)
        total_e = ledger["totals"]["energy_j"]
        gauge_e = run_metrics["gauges"]["energy_j"]
        if abs(total_e - gauge_e) > 1e-6 * max(abs(total_e), abs(gauge_e)):
            fail(f"ledger energy {total_e} != metrics gauge {gauge_e}")
        if sum(row["energy_j"] for row in ledger["energy"]) <= 0.0:
            fail("ledger has no positive energy rows")

        proc = subprocess.run(
            [binary, "report", "--ledger-json", ledger_path,
             "--metrics-json", metrics_path, "--trace-jsonl", jsonl_path],
            capture_output=True, text=True, timeout=120)
        if proc.returncode != 0:
            fail(f"report exit {proc.returncode}\n{proc.stderr}")
        for section in ("== attribution ledger", "== metrics",
                        "== decision timeline", "by cause",
                        "delay percentiles"):
            if section not in proc.stdout:
                fail(f"report output missing {section!r}:\n"
                     f"{proc.stdout[:3000]}")

        # A clean run must not auto-dump the flight recorder.
        if os.path.exists(flight_path):
            fail("flight recorder dumped on a healthy run")

    # Fault scenario: the watchdog/fault trigger auto-dumps the flight
    # recorder, and the dump replays through `report`.
    with tempfile.TemporaryDirectory() as tmp:
        flight_path = os.path.join(tmp, "fault.flight.txt")
        proc = subprocess.run(
            [binary, "run", "--media", "mp3", "--sequence", "A",
             "--detector", "change-point", "--faults", "spike10x",
             "--flight-dump", flight_path],
            capture_output=True, text=True, timeout=600)
        if proc.returncode != 0:
            fail(f"faulted run exit {proc.returncode}\n{proc.stderr}")
        if not os.path.exists(flight_path):
            fail("fault run did not auto-dump the flight recorder")
        with open(flight_path) as f:
            head = f.read(4096)
        if not head.startswith("# dvs-flight-recorder-v1"):
            fail(f"flight dump header wrong:\n{head[:200]}")
        if "watchdog-escalate" not in head and "fault-injected" not in head:
            fail(f"flight dump reason not an anomaly:\n{head[:200]}")

        proc = subprocess.run(
            [binary, "report", "--flight-dump", flight_path],
            capture_output=True, text=True, timeout=120)
        if proc.returncode != 0:
            fail(f"report --flight-dump exit {proc.returncode}\n{proc.stderr}")
        if "== flight recorder" not in proc.stdout:
            fail(f"flight report missing section:\n{proc.stdout[:2000]}")
        if "== decision timeline" not in proc.stdout:
            fail("flight report produced no timeline")

    # Corrupt inputs fail loudly with exit 1, not a crash or silence.
    with tempfile.TemporaryDirectory() as tmp:
        bad = os.path.join(tmp, "bad.json")
        with open(bad, "w") as f:
            f.write("{\"schema\": \"dvs-ledger-v1\", \"totals\": ")
        proc = subprocess.run([binary, "report", "--ledger-json", bad],
                              capture_output=True, text=True, timeout=60)
        if proc.returncode != 1:
            fail(f"report on corrupt JSON should exit 1, "
                 f"got {proc.returncode}")
    # `report` with no inputs is a usage error.
    proc = subprocess.run([binary, "report"],
                          capture_output=True, text=True, timeout=60)
    if proc.returncode != 2:
        fail(f"bare `report` should exit 2, got {proc.returncode}")

    # Sweep heartbeat: one JSONL object per point, progress reaches total.
    with tempfile.TemporaryDirectory() as tmp:
        hb = os.path.join(tmp, "hb.jsonl")
        proc = subprocess.run(
            [binary, "sweep", "quick", "--jobs", "2", "--heartbeat", hb],
            capture_output=True, text=True, timeout=600)
        if proc.returncode != 0:
            fail(f"sweep --heartbeat exit {proc.returncode}\n{proc.stderr}")
        with open(hb) as f:
            beats = [json.loads(l) for l in f.read().splitlines() if l]
        if not beats:
            fail("heartbeat file is empty")
        if beats[-1]["done"] != beats[-1]["total"]:
            fail(f"final heartbeat incomplete: {beats[-1]}")
        if [b["done"] for b in beats] != list(range(1, len(beats) + 1)):
            fail("heartbeat done counts are not 1..N")

    # ---- streaming telemetry: snapshots, OpenMetrics, self-profile ---------

    lint = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        os.pardir, "scripts", "check_openmetrics.py")

    with tempfile.TemporaryDirectory() as tmp:
        tel = os.path.join(tmp, "run.telemetry.jsonl")
        om = os.path.join(tmp, "run.om.txt")
        prof = os.path.join(tmp, "run.profile.txt")
        proc = subprocess.run(
            [binary, "run", "--media", "mp3", "--sequence", "AC",
             "--seconds", "30", "--detector", "change-point",
             "--dpm", "tismdp", "--metrics-json", "-",
             "--telemetry-jsonl", tel, "--telemetry-every", "0.5",
             "--metrics-openmetrics", om, "--self-profile", prof],
            capture_output=True, text=True, timeout=600)
        if proc.returncode != 0:
            fail(f"telemetry run exit {proc.returncode}\n{proc.stderr}")
        json.loads(proc.stdout)  # stdout stayed pure JSON

        # Snapshot JSONL: self-contained lines on the sim-time cadence,
        # monotone t, sketch-backed frame-delay quantiles present.
        with open(tel) as f:
            snaps = [json.loads(l) for l in f.read().splitlines() if l]
        if len(snaps) < 10:
            fail(f"expected a snapshot every 0.5 sim-s, got {len(snaps)}")
        ts = [s["t"] for s in snaps]
        if any(b <= a for a, b in zip(ts, ts[1:])):
            fail("telemetry snapshot times are not strictly increasing")
        for s in snaps:
            if s.get("source") != "engine":
                fail(f"unexpected snapshot source: {s.get('source')!r}")
            if "cpu_mhz" not in s.get("live", {}):
                fail(f"snapshot missing live cpu_mhz: {s}")
        last = snaps[-1]
        q = last.get("quantiles", {}).get("frames.delay_s")
        if not q or not (q["p50"] <= q["p90"] <= q["p99"]):
            fail(f"final snapshot lacks ordered delay quantiles: {q}")

        # OpenMetrics exposition passes the linter, dvs_ prefix required.
        proc = subprocess.run(
            [sys.executable, lint, "--require-prefix", "dvs_", om],
            capture_output=True, text=True, timeout=60)
        if proc.returncode != 0:
            fail(f"check_openmetrics rejected the exporter output:\n"
                 f"{proc.stderr}")

        # Self-profile: collapsed stacks rooted at the engine span.
        with open(prof) as f:
            stacks = [l for l in f.read().splitlines()
                      if l and not l.startswith("#")]
        if not stacks:
            fail("self-profile has no stack lines")
        for line in stacks:
            stack, _, value = line.rpartition(" ")
            if not stack.startswith("engine") or not value.isdigit():
                fail(f"bad collapsed-stack line: {line!r}")

        # `report` renders both new sections from the artifacts.
        proc = subprocess.run(
            [binary, "report", "--telemetry-jsonl", tel,
             "--self-profile", prof],
            capture_output=True, text=True, timeout=120)
        if proc.returncode != 0:
            fail(f"telemetry report exit {proc.returncode}\n{proc.stderr}")
        for section in ("== telemetry snapshots", "== self-profile",
                        "delay p50"):
            if section not in proc.stdout:
                fail(f"report missing {section!r}:\n{proc.stdout[:3000]}")

    # OpenMetrics on stdout: pure exposition, lintable, report on stderr.
    proc = subprocess.run(
        [binary, "run", "--media", "mp3", "--sequence", "A",
         "--seconds", "20", "--detector", "change-point",
         "--metrics-openmetrics", "-"],
        capture_output=True, text=True, timeout=600)
    if proc.returncode != 0:
        fail(f"--metrics-openmetrics - exit {proc.returncode}\n{proc.stderr}")
    lint_proc = subprocess.run(
        [sys.executable, lint, "--require-prefix", "dvs_", "-"],
        input=proc.stdout, capture_output=True, text=True, timeout=60)
    if lint_proc.returncode != 0:
        fail(f"stdout OpenMetrics failed the linter:\n{lint_proc.stderr}")
    if "mean frame delay" not in proc.stderr:
        fail("human report did not move to stderr for OpenMetrics stdout")

    # Two documents cannot share stdout; a JSONL stream cannot go there.
    proc = subprocess.run(
        [binary, "run", "--media", "mp3", "--sequence", "A",
         "--metrics-json", "-", "--metrics-openmetrics", "-"],
        capture_output=True, text=True, timeout=60)
    if proc.returncode != 2:
        fail(f"two stdout documents should exit 2, got {proc.returncode}")
    proc = subprocess.run(
        [binary, "run", "--media", "mp3", "--sequence", "A",
         "--telemetry-jsonl", "-"],
        capture_output=True, text=True, timeout=60)
    if proc.returncode != 2:
        fail(f"--telemetry-jsonl - should exit 2, got {proc.returncode}")

    # Sweep telemetry: one snapshot per finished point, wall-clock t.
    with tempfile.TemporaryDirectory() as tmp:
        tel = os.path.join(tmp, "sweep.telemetry.jsonl")
        csv_base = os.path.join(tmp, "quick")
        proc = subprocess.run(
            [binary, "sweep", "quick", "--jobs", "2",
             "--telemetry-jsonl", tel, "--sweep-csv", csv_base],
            capture_output=True, text=True, timeout=600)
        if proc.returncode != 0:
            fail(f"sweep telemetry exit {proc.returncode}\n{proc.stderr}")
        with open(tel) as f:
            snaps = [json.loads(l) for l in f.read().splitlines() if l]
        if not snaps or any(s.get("source") != "sweep" for s in snaps):
            fail(f"sweep snapshots missing or mis-sourced ({len(snaps)})")
        if snaps[-1]["live"].get("done") != snaps[-1]["live"].get("total"):
            fail(f"final sweep snapshot incomplete: {snaps[-1]}")
        # The cells CSV carries the merged-sketch delay percentiles.
        with open(csv_base + "_cells.csv") as f:
            header = f.readline().strip().split(",")
        for col in ("delay_p50", "delay_p90", "delay_p99"):
            if col not in header:
                fail(f"cells CSV missing column {col!r}: {header}")

    # ---- governor policies: `list policies` and --policy round-trips -------

    # `list policies` enumerates the factory registry.
    proc = subprocess.run([binary, "list", "policies"],
                          capture_output=True, text=True, timeout=60)
    if proc.returncode != 0:
        fail(f"`list policies` exit {proc.returncode}\n{proc.stderr}")
    for name in ("paper", "max", "qdpm"):
        if name not in proc.stdout:
            fail(f"`list policies` output missing {name!r}:\n{proc.stdout}")

    # run --policy selects the governor: pinned-max must burn more CPU
    # energy than the paper's adaptive governor on the same light trace.
    def run_energy(policy):
        proc = subprocess.run(
            [binary, "run", "--media", "mp3", "--sequence", "A",
             "--detector", "change-point", "--policy", policy,
             "--metrics-json", "-"],
            capture_output=True, text=True, timeout=600)
        if proc.returncode != 0:
            fail(f"run --policy {policy} exit {proc.returncode}\n{proc.stderr}")
        return json.loads(proc.stdout)["gauges"]["energy_j"]

    if run_energy("max") <= run_energy("paper"):
        fail("run --policy max did not cost more energy than paper")

    # sweep --policy replaces the scenario's policy axis; the cells CSV
    # carries the policy column and the oracle's competitive_ratio column.
    with tempfile.TemporaryDirectory() as tmp:
        csv_base = os.path.join(tmp, "pol")
        proc = subprocess.run(
            [binary, "sweep", "quick", "--jobs", "2", "--policy", "qdpm",
             "--sweep-csv", csv_base],
            capture_output=True, text=True, timeout=600)
        if proc.returncode != 0:
            fail(f"sweep --policy exit {proc.returncode}\n{proc.stderr}")
        import csv as csv_mod
        with open(csv_base + "_cells.csv") as f:
            rows = list(csv_mod.DictReader(f))
        if not rows:
            fail("policy sweep produced no cells")
        if any(r["policy"] != "qdpm" for r in rows):
            fail(f"--policy qdpm did not replace the policy axis: "
                 f"{[r['policy'] for r in rows]}")
        if "competitive_ratio" not in rows[0]:
            fail(f"cells CSV missing competitive_ratio: {list(rows[0])}")

    # Unknown policies fail loudly on both run and sweep.
    for args in (["run", "--media", "mp3", "--policy", "no-such"],
                 ["sweep", "quick", "--policy", "no-such"]):
        proc = subprocess.run([binary] + args,
                              capture_output=True, text=True, timeout=60)
        if proc.returncode == 0:
            fail(f"--policy no-such unexpectedly succeeded for {args[0]}")
        if "paper" not in proc.stderr:
            fail(f"unknown-policy error did not list known policies:\n"
                 f"{proc.stderr}")

    # `list metrics` enumerates the registry with OpenMetrics names.
    proc = subprocess.run([binary, "list", "metrics"],
                          capture_output=True, text=True, timeout=600)
    if proc.returncode != 0:
        fail(f"`list metrics` exit {proc.returncode}\n{proc.stderr}")
    for needle in ("frames_decoded", "dvs_frames_decoded_total",
                   "frames.delay_s", "quantile="):
        if needle not in proc.stdout:
            fail(f"`list metrics` output missing {needle!r}:\n"
                 f"{proc.stdout[:2000]}")

    # ---- fleet populations: `fleet` subcommand + `list fleets` -------------

    # `list fleets` enumerates the built-in fleet specs.
    proc = subprocess.run([binary, "list", "fleets"],
                          capture_output=True, text=True, timeout=60)
    if proc.returncode != 0:
        fail(f"`list fleets` exit {proc.returncode}\n{proc.stderr}")
    for name in ("fleet_smoke", "fleet_city"):
        if name not in proc.stdout:
            fail(f"`list fleets` output missing {name!r}:\n{proc.stdout}")

    # A small fleet run: summary table, CSV artifact, heartbeat JSONL, and
    # the jobs=1 vs jobs=3 CSVs byte-identical (the determinism contract).
    with tempfile.TemporaryDirectory() as tmp:
        def run_fleet(jobs, base):
            hb = base + ".heartbeat.jsonl"
            proc = subprocess.run(
                [binary, "fleet", "fleet_smoke", "--devices", "300",
                 "--jobs", str(jobs), "--shard-size", "64",
                 "--fleet-csv", base, "--heartbeat", hb],
                capture_output=True, text=True, timeout=600)
            if proc.returncode != 0:
                fail(f"fleet jobs={jobs} exit {proc.returncode}\n"
                     f"{proc.stderr}")
            return proc, base + "_fleet.csv", hb

        proc, csv1, hb1 = run_fleet(1, os.path.join(tmp, "j1"))
        for needle in ("devices", "fleet total", "Workload", "p99"):
            if needle not in proc.stdout:
                fail(f"fleet summary missing {needle!r}:\n{proc.stdout}")

        # Heartbeat: valid JSONL, monotone progress ending at the total.
        with open(hb1) as f:
            beats = [json.loads(l) for l in f.read().splitlines() if l]
        if not beats:
            fail("fleet heartbeat file is empty")
        dones = [b["done"] for b in beats]
        if dones != sorted(dones) or dones[-1] != beats[-1]["total"] != 300:
            fail(f"fleet heartbeat progress wrong: {dones}")

        _, csv3, _ = run_fleet(3, os.path.join(tmp, "j3"))
        with open(csv1, "rb") as f:
            bytes1 = f.read()
        with open(csv3, "rb") as f:
            bytes3 = f.read()
        if not bytes1 or bytes1 != bytes3:
            fail("fleet CSV differs between --jobs 1 and --jobs 3")
        header = bytes1.decode().splitlines()[0].split(",")
        for col in ("workload", "policy", "energy_j", "delay_p99_s"):
            if col not in header:
                fail(f"fleet CSV missing column {col!r}: {header}")

    # Unknown fleet names fail loudly.
    proc = subprocess.run([binary, "fleet", "no-such-fleet"],
                          capture_output=True, text=True, timeout=60)
    if proc.returncode == 0:
        fail("`fleet no-such-fleet` unexpectedly succeeded")
    # Bare `fleet` is a usage error.
    proc = subprocess.run([binary, "fleet"],
                          capture_output=True, text=True, timeout=60)
    if proc.returncode != 2:
        fail(f"bare `fleet` should exit 2, got {proc.returncode}")

    print("OK: frames_decoded =", counters["frames_decoded"],
          "| trace events =", len(events))


if __name__ == "__main__":
    main()
