// Regression test: CSV output must be locale-proof.  A process-global
// locale with ',' as the decimal separator used to turn 3.14 into "3,14"
// and silently shift every downstream column.
#include <gtest/gtest.h>

#include <fstream>
#include <locale>
#include <sstream>
#include <string>

#include "common/csv.hpp"

namespace dvs {
namespace {

/// A numpunct facet that formats like de_DE: ',' decimal point, '.' for
/// thousands.  Installing a named locale would depend on what the image
/// ships; a custom facet does not.
class CommaDecimal : public std::numpunct<char> {
 protected:
  char do_decimal_point() const override { return ','; }
  char do_thousands_sep() const override { return '.'; }
  std::string do_grouping() const override { return "\3"; }
};

class CsvLocaleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_ = std::locale::global(
        std::locale(std::locale::classic(), new CommaDecimal));
  }
  void TearDown() override { std::locale::global(saved_); }

 private:
  std::locale saved_{std::locale::classic()};
};

TEST_F(CsvLocaleTest, HostileGlobalLocaleReallyIsHostile) {
  // Sanity: without the fix, default-constructed streams now misformat.
  std::ostringstream os;
  os << 1234.5;
  EXPECT_EQ(os.str(), "1.234,5");
}

TEST_F(CsvLocaleTest, ToCellUsesClassicLocaleRegardlessOfGlobal) {
  EXPECT_EQ(CsvWriter::to_cell(3.14), "3.14");
  EXPECT_EQ(CsvWriter::to_cell(1234567), "1234567");
  EXPECT_EQ(CsvWriter::to_cell(-0.5), "-0.5");
}

TEST_F(CsvLocaleTest, WrittenFileHasDotDecimalsAndNoGrouping) {
  const std::string path = ::testing::TempDir() + "csv_locale_test.csv";
  {
    CsvWriter csv{path};
    csv.write_header({"name", "value"});
    csv.row("pi", 3.14159);
    csv.write_row(std::vector<double>{1234.5, 0.25});
  }
  std::ifstream in{path};
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();
  EXPECT_EQ(text, "name,value\npi,3.14159\n1234.5,0.25\n");
  // In particular: no comma-as-decimal-point cell splits.
  EXPECT_EQ(text.find("3,14"), std::string::npos);
  EXPECT_EQ(text.find("1.234"), std::string::npos);
}

}  // namespace
}  // namespace dvs
