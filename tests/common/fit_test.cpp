#include "common/fit.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"

namespace dvs {
namespace {

TEST(Fit, ExponentialRecoversRate) {
  Rng rng{3};
  std::vector<double> sample;
  const double rate = 32.0;
  sample.reserve(50000);
  for (int i = 0; i < 50000; ++i) sample.push_back(rng.exponential(rate));
  const ExponentialFit fit = fit_exponential(sample);
  EXPECT_NEAR(fit.rate, rate, 0.5);
  EXPECT_NEAR(fit.mean, 1.0 / rate, 5e-4);
  // A true exponential sample fits itself with tiny CDF error.
  EXPECT_LT(fit.avg_cdf_error, 0.01);
  EXPECT_LT(fit.ks_statistic, 0.02);
  EXPECT_EQ(fit.n, 50000u);
}

TEST(Fit, JitteredExponentialHasModerateError) {
  // This mirrors Figure 6: real WLAN interarrivals are nearly exponential
  // but jittered; the paper reports ~8% average fitting error.
  Rng rng{4};
  std::vector<double> sample;
  const double rate = 25.0;
  for (int i = 0; i < 20000; ++i) {
    const double jitter = rng.lognormal(-0.5 * 0.6 * 0.6, 0.6);
    sample.push_back(rng.exponential(rate) * jitter);
  }
  const ExponentialFit fit = fit_exponential(sample);
  EXPECT_GT(fit.avg_cdf_error, 0.01);
  EXPECT_LT(fit.avg_cdf_error, 0.20);
}

TEST(Fit, ExponentialRejectsBadInput) {
  EXPECT_THROW((void)(fit_exponential({})), std::invalid_argument);
  std::vector<double> with_zero{1.0, 0.0};
  EXPECT_THROW((void)(fit_exponential(with_zero)), std::invalid_argument);
  std::vector<double> with_negative{1.0, -2.0};
  EXPECT_THROW((void)(fit_exponential(with_negative)), std::invalid_argument);
}

TEST(Fit, ExponentialCdfShape) {
  EXPECT_DOUBLE_EQ(exponential_cdf(2.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(exponential_cdf(2.0, -1.0), 0.0);
  EXPECT_NEAR(exponential_cdf(2.0, 0.5), 1.0 - std::exp(-1.0), 1e-12);
  EXPECT_NEAR(exponential_cdf(2.0, 100.0), 1.0, 1e-12);
}

TEST(Fit, ParetoRecoversShape) {
  Rng rng{5};
  std::vector<double> sample;
  for (int i = 0; i < 50000; ++i) sample.push_back(rng.pareto(1.8, 8.0));
  const ParetoFit fit = fit_pareto(sample);
  EXPECT_NEAR(fit.shape, 1.8, 0.05);
  EXPECT_NEAR(fit.scale, 8.0, 0.05);
  EXPECT_LT(fit.avg_cdf_error, 0.01);
}

TEST(Fit, ParetoCdfShape) {
  EXPECT_DOUBLE_EQ(pareto_cdf(2.0, 1.0, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(pareto_cdf(2.0, 1.0, 1.0), 0.0);
  EXPECT_NEAR(pareto_cdf(2.0, 1.0, 2.0), 0.75, 1e-12);
}

TEST(Fit, ParetoDegenerateSample) {
  std::vector<double> constant{3.0, 3.0, 3.0, 3.0};
  const ParetoFit fit = fit_pareto(constant);
  EXPECT_DOUBLE_EQ(fit.scale, 3.0);
  EXPECT_GT(fit.shape, 1e6);  // near-step CDF
}

TEST(Fit, EmpiricalCdfIsSortedAndMidpointed) {
  std::vector<double> sample{3.0, 1.0, 2.0, 4.0};
  const EmpiricalCdf e = empirical_cdf(sample);
  ASSERT_EQ(e.xs.size(), 4u);
  EXPECT_TRUE(std::is_sorted(e.xs.begin(), e.xs.end()));
  EXPECT_DOUBLE_EQ(e.ps[0], 0.125);
  EXPECT_DOUBLE_EQ(e.ps[3], 0.875);
}

TEST(Fit, ExponentialBeatsParetoOnExponentialData) {
  Rng rng{6};
  std::vector<double> sample;
  for (int i = 0; i < 20000; ++i) sample.push_back(rng.exponential(10.0));
  EXPECT_LT(fit_exponential(sample).avg_cdf_error,
            fit_pareto(sample).avg_cdf_error);
}

TEST(Fit, ParetoBeatsExponentialOnParetoData) {
  Rng rng{7};
  std::vector<double> sample;
  for (int i = 0; i < 20000; ++i) sample.push_back(rng.pareto(1.8, 5.0));
  EXPECT_LT(fit_pareto(sample).avg_cdf_error,
            fit_exponential(sample).avg_cdf_error);
}

}  // namespace
}  // namespace dvs
