// The minimal JSON reader backing `dvs_sim report` — exercised against the
// shapes this repo's writers emit plus the malformed-input edges.
#include "common/json.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

namespace dvs::json {
namespace {

TEST(Json, ParsesScalarsAndNesting) {
  const ValuePtr v = parse(
      R"({"a": 1.5, "b": "text", "c": true, "d": null, "e": [1, 2, 3],)"
      R"( "f": {"nested": -2e3}})");
  EXPECT_DOUBLE_EQ(v->at("a").as_number(), 1.5);
  EXPECT_EQ(v->at("b").as_string(), "text");
  EXPECT_TRUE(v->at("c").as_bool());
  EXPECT_TRUE(v->at("d").is_null());
  ASSERT_EQ(v->at("e").as_array().size(), 3u);
  EXPECT_DOUBLE_EQ(v->at("e").as_array()[2]->as_number(), 3.0);
  EXPECT_DOUBLE_EQ(v->at("f").at("nested").as_number(), -2000.0);
}

TEST(Json, StringEscapes) {
  const ValuePtr v = parse(R"({"s": "a\"b\\c\nd\teA"})");
  EXPECT_EQ(v->at("s").as_string(), "a\"b\\c\nd\teA");
}

TEST(Json, RoundTripsSeventeenDigitDoubles) {
  // The writers emit %.17g; the reader must give back the identical bits.
  const double x = 420.08444157537798;
  char buf[64];
  std::snprintf(buf, sizeof buf, "[%.17g]", x);
  const ValuePtr v = parse(buf);
  EXPECT_EQ(v->as_array()[0]->as_number(), x);
}

TEST(Json, HelperAccessors) {
  const ValuePtr v = parse(R"({"n": 2, "s": "x"})");
  EXPECT_DOUBLE_EQ(v->number_or("n", -1.0), 2.0);
  EXPECT_DOUBLE_EQ(v->number_or("missing", -1.0), -1.0);
  EXPECT_EQ(v->string_or("s", "d"), "x");
  EXPECT_EQ(v->string_or("missing", "d"), "d");
  EXPECT_EQ(v->find("missing"), nullptr);
  EXPECT_THROW(v->at("missing"), ParseError);
  EXPECT_THROW(v->at("n").as_string(), ParseError);
}

TEST(Json, RejectsMalformedDocuments) {
  EXPECT_THROW(parse(""), ParseError);
  EXPECT_THROW(parse("{"), ParseError);
  EXPECT_THROW(parse("{\"a\":}"), ParseError);
  EXPECT_THROW(parse("[1,]"), ParseError);
  EXPECT_THROW(parse("{} trailing"), ParseError);
  EXPECT_THROW(parse("tru"), ParseError);
  EXPECT_THROW(parse("\"unterminated"), ParseError);
  EXPECT_THROW(parse("1.e5"), ParseError);
}

TEST(Json, ParseFileReportsPathOnFailure) {
  EXPECT_THROW(parse_file("/nonexistent/nope.json"), ParseError);
  const std::string path = ::testing::TempDir() + "json_test_doc.json";
  {
    std::ofstream os(path);
    os << R"({"k": [true, false]})";
  }
  const ValuePtr v = parse_file(path);
  EXPECT_FALSE(v->at("k").as_array()[1]->as_bool());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dvs::json
