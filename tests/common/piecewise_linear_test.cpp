#include "common/piecewise_linear.hpp"

#include <gtest/gtest.h>

namespace dvs {
namespace {

PiecewiseLinear make_curve() {
  return PiecewiseLinear{{0.0, 0.0}, {1.0, 10.0}, {3.0, 20.0}};
}

TEST(PiecewiseLinear, InterpolatesWithinSegments) {
  const PiecewiseLinear f = make_curve();
  EXPECT_DOUBLE_EQ(f(0.0), 0.0);
  EXPECT_DOUBLE_EQ(f(0.5), 5.0);
  EXPECT_DOUBLE_EQ(f(1.0), 10.0);
  EXPECT_DOUBLE_EQ(f(2.0), 15.0);
  EXPECT_DOUBLE_EQ(f(3.0), 20.0);
}

TEST(PiecewiseLinear, ClampsOutOfRange) {
  const PiecewiseLinear f = make_curve();
  EXPECT_DOUBLE_EQ(f(-5.0), 0.0);
  EXPECT_DOUBLE_EQ(f(99.0), 20.0);
}

TEST(PiecewiseLinear, RejectsBadKnots) {
  EXPECT_THROW((void)(PiecewiseLinear({{0.0, 1.0}})), std::invalid_argument);
  EXPECT_THROW((void)(PiecewiseLinear({{1.0, 0.0}, {1.0, 1.0}})), std::invalid_argument);
  EXPECT_THROW((void)(PiecewiseLinear({{2.0, 0.0}, {1.0, 1.0}})), std::invalid_argument);
}

TEST(PiecewiseLinear, InverseRoundTrips) {
  const PiecewiseLinear f = make_curve();
  for (double x : {0.0, 0.3, 0.9, 1.5, 2.7, 3.0}) {
    EXPECT_NEAR(f.inverse(f(x)), x, 1e-12);
  }
}

TEST(PiecewiseLinear, InverseOfDecreasingCurve) {
  const PiecewiseLinear f{{0.0, 10.0}, {1.0, 4.0}, {2.0, 0.0}};
  EXPECT_FALSE(f.increasing());
  EXPECT_TRUE(f.strictly_monotone());
  EXPECT_NEAR(f.inverse(7.0), 0.5, 1e-12);
  EXPECT_NEAR(f.inverse(2.0), 1.5, 1e-12);
  // Clamps.
  EXPECT_DOUBLE_EQ(f.inverse(11.0), 0.0);
  EXPECT_DOUBLE_EQ(f.inverse(-1.0), 2.0);
}

TEST(PiecewiseLinear, InverseClampsAtEnds) {
  const PiecewiseLinear f = make_curve();
  EXPECT_DOUBLE_EQ(f.inverse(-3.0), 0.0);
  EXPECT_DOUBLE_EQ(f.inverse(25.0), 3.0);
}

TEST(PiecewiseLinear, NonMonotoneInverseThrows) {
  const PiecewiseLinear f{{0.0, 0.0}, {1.0, 5.0}, {2.0, 3.0}};
  EXPECT_FALSE(f.strictly_monotone());
  EXPECT_THROW((void)(f.inverse(4.0)), std::logic_error);
}

TEST(PiecewiseLinear, FlatSegmentIsNotStrictlyMonotone) {
  const PiecewiseLinear f{{0.0, 1.0}, {1.0, 1.0}, {2.0, 2.0}};
  EXPECT_FALSE(f.strictly_monotone());
}

TEST(PiecewiseLinear, ScaledY) {
  const PiecewiseLinear f = make_curve();
  const PiecewiseLinear g = f.scaled_y(0.5);
  EXPECT_DOUBLE_EQ(g(2.0), 7.5);
  EXPECT_DOUBLE_EQ(g.x_min(), f.x_min());
}

TEST(PiecewiseLinear, Accessors) {
  const PiecewiseLinear f = make_curve();
  EXPECT_EQ(f.size(), 3u);
  EXPECT_DOUBLE_EQ(f.x_min(), 0.0);
  EXPECT_DOUBLE_EQ(f.x_max(), 3.0);
  EXPECT_DOUBLE_EQ(f.y_at_x_min(), 0.0);
  EXPECT_DOUBLE_EQ(f.y_at_x_max(), 20.0);
  EXPECT_TRUE(f.increasing());
}

}  // namespace
}  // namespace dvs
