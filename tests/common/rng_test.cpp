#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <set>
#include <vector>

#include "common/stats.hpp"

namespace dvs {
namespace {

TEST(Rng, DeterministicGivenSeed) {
  Rng a{123};
  Rng b{123};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a{1};
  Rng b{2};
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng{7};
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng{7};
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(3.0, 5.0);
    EXPECT_GE(u, 3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIndexCoversRangeWithoutBias) {
  Rng rng{11};
  std::array<int, 7> counts{};
  const int n = 70000;
  for (int i = 0; i < n; ++i) counts[rng.uniform_index(7)]++;
  for (int c : counts) {
    EXPECT_NEAR(c, n / 7, n / 7 * 0.1);
  }
  EXPECT_THROW((void)(rng.uniform_index(0)), std::domain_error);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng{13};
  RunningStats stats;
  const double rate = 38.3;
  for (int i = 0; i < 200000; ++i) stats.add(rng.exponential(rate));
  EXPECT_NEAR(stats.mean(), 1.0 / rate, 0.02 / rate);
  // Exponential: stddev == mean.
  EXPECT_NEAR(stats.stddev(), 1.0 / rate, 0.05 / rate);
  EXPECT_THROW((void)(rng.exponential(0.0)), std::domain_error);
}

TEST(Rng, ParetoRespectsScaleAndMean) {
  Rng rng{17};
  RunningStats stats;
  const double shape = 2.5;
  const double scale = 4.0;
  for (int i = 0; i < 200000; ++i) {
    const double x = rng.pareto(shape, scale);
    EXPECT_GE(x, scale);
    stats.add(x);
  }
  // E[X] = a*m/(a-1).
  EXPECT_NEAR(stats.mean(), shape * scale / (shape - 1.0), 0.1);
  EXPECT_THROW((void)(rng.pareto(0.0, 1.0)), std::domain_error);
  EXPECT_THROW((void)(rng.pareto(1.0, 0.0)), std::domain_error);
}

TEST(Rng, NormalMoments) {
  Rng rng{19};
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.add(rng.normal(5.0, 2.0));
  EXPECT_NEAR(stats.mean(), 5.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.05);
  EXPECT_THROW((void)(rng.normal(0.0, -1.0)), std::domain_error);
}

TEST(Rng, LognormalUnitMeanConstruction) {
  Rng rng{23};
  RunningStats stats;
  const double sigma = 0.3;
  // exp(N(-s^2/2, s)) has mean 1.
  for (int i = 0; i < 200000; ++i) {
    stats.add(rng.lognormal(-0.5 * sigma * sigma, sigma));
  }
  EXPECT_NEAR(stats.mean(), 1.0, 0.02);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng{29};
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent{31};
  Rng child = parent.split();
  // Child differs from the parent's continued stream.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.next_u64() == child.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng{37};
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  shuffle(v, rng);
  std::multiset<int> a(v.begin(), v.end());
  std::multiset<int> b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace dvs
