#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace dvs {
namespace {

TEST(RunningStats, BasicMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, EmptyThrows) {
  RunningStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_THROW((void)(s.mean()), std::logic_error);
  EXPECT_THROW((void)(s.min()), std::logic_error);
  EXPECT_THROW((void)(s.max()), std::logic_error);
  s.add(1.0);
  EXPECT_THROW((void)(s.variance()), std::logic_error);  // needs >= 2
}

TEST(RunningStats, MergeMatchesSequential) {
  Rng rng{5};
  RunningStats whole;
  RunningStats a;
  RunningStats b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(3.0, 2.0);
    whole.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-8);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(RunningStats, MergeWithEmptySides) {
  RunningStats a;
  RunningStats b;
  b.add(2.0);
  a.merge(b);  // empty <- nonempty
  EXPECT_EQ(a.count(), 1u);
  RunningStats c;
  a.merge(c);  // nonempty <- empty
  EXPECT_EQ(a.count(), 1u);
}

TEST(Histogram, CountsAndBounds) {
  Histogram h{0.0, 10.0, 10};
  h.add(-1.0);
  h.add(0.0);
  h.add(5.5);
  h.add(9.999);
  h.add(10.0);
  h.add(42.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(5), 1u);
  EXPECT_EQ(h.bin_count(9), 1u);
  EXPECT_EQ(h.total_count(), 6u);
}

TEST(Histogram, InvalidConstruction) {
  EXPECT_THROW((void)(Histogram(1.0, 1.0, 10)), std::invalid_argument);
  EXPECT_THROW((void)(Histogram(2.0, 1.0, 10)), std::invalid_argument);
  EXPECT_THROW((void)(Histogram(0.0, 1.0, 0)), std::invalid_argument);
}

TEST(Histogram, QuantileOfUniformMass) {
  Histogram h{0.0, 100.0, 100};
  for (int i = 0; i < 100; ++i) h.add(i + 0.5);
  EXPECT_NEAR(h.quantile(0.5), 50.0, 1.0);
  EXPECT_NEAR(h.quantile(0.995), 99.5, 1.0);
  EXPECT_NEAR(h.quantile(0.0), 0.0, 1.0);
  EXPECT_THROW((void)(h.quantile(1.5)), std::domain_error);
}

TEST(Histogram, QuantileAgainstNormalSample) {
  Rng rng{77};
  Histogram h{-5.0, 5.0, 500};
  for (int i = 0; i < 200000; ++i) h.add(rng.normal());
  EXPECT_NEAR(h.quantile(0.5), 0.0, 0.03);
  EXPECT_NEAR(h.quantile(0.975), 1.96, 0.05);
  EXPECT_NEAR(h.quantile(0.995), 2.576, 0.08);
}

TEST(Histogram, ResetClears) {
  Histogram h{0.0, 1.0, 4};
  h.add(0.5);
  h.reset();
  EXPECT_EQ(h.total_count(), 0u);
  EXPECT_THROW((void)(h.quantile(0.5)), std::logic_error);
}

TEST(SampleQuantiles, ExactSmallSample) {
  SampleQuantiles q;
  for (double x : {3.0, 1.0, 2.0, 4.0, 5.0}) q.add(x);
  EXPECT_DOUBLE_EQ(q.median(), 3.0);
  EXPECT_DOUBLE_EQ(q.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(q.quantile(1.0), 5.0);
  EXPECT_DOUBLE_EQ(q.quantile(0.25), 2.0);
}

TEST(SampleQuantiles, AddAfterQueryResorts) {
  SampleQuantiles q;
  q.add(1.0);
  q.add(3.0);
  EXPECT_DOUBLE_EQ(q.median(), 2.0);
  q.add(100.0);
  EXPECT_DOUBLE_EQ(q.median(), 3.0);
}

TEST(TimeWeightedStats, WeightsByDuration) {
  TimeWeightedStats tw;
  tw.add(1.0, 3.0);
  tw.add(5.0, 1.0);
  EXPECT_DOUBLE_EQ(tw.total_time(), 4.0);
  EXPECT_DOUBLE_EQ(tw.mean(), 2.0);
  EXPECT_DOUBLE_EQ(tw.min(), 1.0);
  EXPECT_DOUBLE_EQ(tw.max(), 5.0);
}

TEST(TimeWeightedStats, ZeroDurationIgnoredNegativeThrows) {
  TimeWeightedStats tw;
  tw.add(99.0, 0.0);
  EXPECT_THROW((void)(tw.mean()), std::logic_error);
  EXPECT_THROW((void)(tw.add(1.0, -1.0)), std::domain_error);
}

}  // namespace
}  // namespace dvs
