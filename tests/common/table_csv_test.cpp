#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/csv.hpp"
#include "common/table.hpp"

namespace dvs {
namespace {

TEST(TextTable, RendersHeaderAndRows) {
  TextTable t{"Table X"};
  t.set_header({"Algo", "Energy", "Delay"});
  t.add_row({"Ideal", "1.20", "0.10"});
  t.add_row({"Max", "2.40", "0.02"});
  const std::string s = t.str();
  EXPECT_NE(s.find("Table X"), std::string::npos);
  EXPECT_NE(s.find("Algo"), std::string::npos);
  EXPECT_NE(s.find("Ideal"), std::string::npos);
  EXPECT_NE(s.find("2.40"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(TextTable, PadsShortRows) {
  TextTable t;
  t.set_header({"a", "b", "c"});
  t.add_row({"x"});
  EXPECT_NO_THROW(t.str());
}

TEST(TextTable, ColumnsAlign) {
  TextTable t;
  t.set_header({"name", "v"});
  t.add_row({"longer-name", "1"});
  const std::string s = t.str();
  // Every rendered line between rules has the same length.
  std::istringstream in(s);
  std::string line;
  std::size_t len = 0;
  while (std::getline(in, line)) {
    if (len == 0) len = line.size();
    EXPECT_EQ(line.size(), len);
  }
}

TEST(TextTable, NumFormatsPrecision) {
  EXPECT_EQ(TextTable::num(1.23456, 2), "1.23");
  EXPECT_EQ(TextTable::num(1.0, 0), "1");
}

TEST(Csv, WritesEscapedCells) {
  const std::string path = testing::TempDir() + "/dvs_csv_test.csv";
  {
    CsvWriter w{path};
    w.write_row(std::vector<std::string>{"a", "b,c", "d\"e"});
    w.write_row(std::vector<double>{1.5, 2.0});
  }
  std::ifstream in{path};
  std::string line1;
  std::string line2;
  std::getline(in, line1);
  std::getline(in, line2);
  EXPECT_EQ(line1, "a,\"b,c\",\"d\"\"e\"");
  EXPECT_EQ(line2, "1.5,2");
  std::remove(path.c_str());
}

TEST(Csv, ThrowsOnUnwritablePath) {
  EXPECT_THROW((void)(CsvWriter{"/nonexistent-dir/x.csv"}), std::runtime_error);
}

TEST(Csv, VariadicRowMatchesNumericFormatting) {
  const std::string path = testing::TempDir() + "/dvs_csv_row_test.csv";
  {
    CsvWriter w{path};
    // Mixed row: strings pass through, numbers format exactly like
    // write_row(vector<double>) — stream defaults, 6 significant digits.
    w.row("x", 1.5, 42, 0.123456789);
    w.write_row(std::vector<double>{1.5, 0.123456789});
  }
  std::ifstream in{path};
  std::string line1;
  std::string line2;
  std::getline(in, line1);
  std::getline(in, line2);
  EXPECT_EQ(line1, "x,1.5,42,0.123457");
  EXPECT_EQ(line2, "1.5,0.123457");
  std::remove(path.c_str());
}

TEST(Csv, PathHonorsEnvironmentDirectory) {
  unsetenv("DVS_CSV_DIR");
  EXPECT_EQ(csv_path("foo"), "foo.csv");
  setenv("DVS_CSV_DIR", "/tmp/artifacts", 1);
  EXPECT_EQ(csv_path("foo"), "/tmp/artifacts/foo.csv");
  unsetenv("DVS_CSV_DIR");
}

// Golden check for the Figure 3 artifact: downstream plotting scripts key
// on these exact column names, so the header is part of the repo's
// interface and must not drift when benches move between CSV helpers.
TEST(Csv, Fig3HeaderIsStable) {
  const std::string path = testing::TempDir() + "/dvs_fig3_golden.csv";
  {
    CsvWriter w{path};
    w.write_header({"freq_mhz", "volt", "power_mw", "energy_per_cycle_ratio"});
    w.write_row(std::vector<double>{221.25, 1.65, 400.0, 1.0});
  }
  std::ifstream in{path};
  std::string header;
  std::string row;
  std::getline(in, header);
  std::getline(in, row);
  EXPECT_EQ(header, "freq_mhz,volt,power_mw,energy_per_cycle_ratio");
  EXPECT_EQ(row, "221.25,1.65,400,1");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dvs
