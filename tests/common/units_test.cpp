#include "common/units.hpp"

#include <gtest/gtest.h>

namespace dvs {
namespace {

TEST(Units, ArithmeticStaysInUnit) {
  const Seconds a = seconds(2.0);
  const Seconds b = seconds(0.5);
  EXPECT_DOUBLE_EQ((a + b).value(), 2.5);
  EXPECT_DOUBLE_EQ((a - b).value(), 1.5);
  EXPECT_DOUBLE_EQ((a * 3.0).value(), 6.0);
  EXPECT_DOUBLE_EQ((3.0 * a).value(), 6.0);
  EXPECT_DOUBLE_EQ((a / 4.0).value(), 0.5);
  EXPECT_DOUBLE_EQ(a / b, 4.0);  // like-unit ratio is dimensionless
  EXPECT_DOUBLE_EQ((-a).value(), -2.0);
}

TEST(Units, CompoundAssignment) {
  Seconds t = seconds(1.0);
  t += seconds(2.0);
  EXPECT_DOUBLE_EQ(t.value(), 3.0);
  t -= seconds(0.5);
  EXPECT_DOUBLE_EQ(t.value(), 2.5);
  t *= 2.0;
  EXPECT_DOUBLE_EQ(t.value(), 5.0);
  t /= 5.0;
  EXPECT_DOUBLE_EQ(t.value(), 1.0);
}

TEST(Units, Comparisons) {
  EXPECT_LT(seconds(1.0), seconds(2.0));
  EXPECT_GE(megahertz(221.2), megahertz(221.2));
  EXPECT_EQ(milliwatts(400.0), milliwatts(400.0));
  EXPECT_NE(volts(1.5), volts(1.65));
}

TEST(Units, FactoryScaling) {
  EXPECT_DOUBLE_EQ(milliseconds(100.0).value(), 0.1);
  EXPECT_DOUBLE_EQ(microseconds(150.0).value(), 150e-6);
  EXPECT_DOUBLE_EQ(watts(3.49).value(), 3490.0);
  EXPECT_DOUBLE_EQ(kilojoules(1.5).value(), 1500.0);
}

TEST(Units, EnergyIsPowerTimesTime) {
  // 400 mW for 10 s = 4 J.
  EXPECT_DOUBLE_EQ(energy(milliwatts(400.0), seconds(10.0)).value(), 4.0);
  // Zero time, zero energy.
  EXPECT_DOUBLE_EQ(energy(watts(3.49), seconds(0.0)).value(), 0.0);
}

TEST(Units, RatePeriodRoundTrip) {
  const Hertz r = hertz(38.3);
  EXPECT_NEAR(rate(period(r)).value(), 38.3, 1e-12);
  EXPECT_THROW((void)(period(hertz(0.0))), std::domain_error);
  EXPECT_THROW((void)(period(hertz(-1.0))), std::domain_error);
  EXPECT_THROW((void)(rate(seconds(0.0))), std::domain_error);
}

TEST(Units, EventsIn) {
  EXPECT_DOUBLE_EQ(events_in(hertz(25.0), seconds(4.0)), 100.0);
}

TEST(Units, ToStringIncludesUnit) {
  EXPECT_NE(to_string(seconds(1.5)).find("s"), std::string::npos);
  EXPECT_NE(to_string(megahertz(59.0)).find("MHz"), std::string::npos);
  EXPECT_NE(to_string(volts(0.86)).find("V"), std::string::npos);
  EXPECT_NE(to_string(milliwatts(400.0)).find("mW"), std::string::npos);
}

}  // namespace
}  // namespace dvs
