// Concurrent first use of the process-wide asset caches (threshold tables,
// TISMDP solves): every thread gets the same shared instance and the
// expensive computation runs exactly once.  Runs under TSan in CI with the
// rest of the SweepThreadSafety suite.
#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "detect/table_cache.hpp"
#include "dpm/cost_model.hpp"
#include "dpm/solve_cache.hpp"
#include "hw/smartbadge.hpp"

namespace dvs::core {
namespace {

TEST(SweepThreadSafety, ConcurrentTableFirstUseCharacterizesOnce) {
  detect::clear_threshold_table_cache();
  detect::ChangePointConfig cfg;
  cfg.mc_windows = 400;

  std::vector<std::shared_ptr<const detect::ThresholdTable>> results(8);
  std::vector<std::thread> threads;
  threads.reserve(results.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    threads.emplace_back(
        [&, i] { results[i] = detect::shared_threshold_table(cfg); });
  }
  for (std::thread& t : threads) t.join();

  for (const auto& r : results) {
    ASSERT_NE(r, nullptr);
    EXPECT_EQ(r.get(), results.front().get());
  }
  const detect::TableCacheStats stats = detect::threshold_table_cache_stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.hits, results.size() - 1);
}

TEST(SweepThreadSafety, ConcurrentSolveFirstUseSolvesOnce) {
  dpm::clear_tismdp_solve_cache();
  const hw::SmartBadge badge;
  const dpm::DpmCostModel costs = dpm::smartbadge_cost_model(badge);
  const dpm::IdleDistributionPtr idle =
      std::make_shared<dpm::ParetoIdle>(2.2, Seconds{0.5});

  std::vector<std::shared_ptr<const dpm::TismdpMixSolution>> results(8);
  std::vector<std::thread> threads;
  threads.reserve(results.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    threads.emplace_back([&, i] {
      results[i] = dpm::cached_tismdp_mix(costs, idle, Seconds{0.5});
    });
  }
  for (std::thread& t : threads) t.join();

  for (const auto& r : results) {
    ASSERT_NE(r, nullptr);
    EXPECT_EQ(r.get(), results.front().get());
  }
  const dpm::SolveCacheStats stats = dpm::tismdp_solve_cache_stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.hits, results.size() - 1);
}

TEST(SweepThreadSafety, DistinctConfigsCharacterizeInParallelWithoutRaces) {
  detect::clear_threshold_table_cache();
  std::vector<std::shared_ptr<const detect::ThresholdTable>> results(4);
  std::vector<std::thread> threads;
  threads.reserve(results.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    threads.emplace_back([&, i] {
      detect::ChangePointConfig cfg;
      cfg.mc_windows = 300 + 50 * i;  // four distinct cache keys
      results[i] = detect::shared_threshold_table(cfg);
    });
  }
  for (std::thread& t : threads) t.join();

  for (std::size_t i = 0; i < results.size(); ++i) {
    for (std::size_t j = i + 1; j < results.size(); ++j) {
      EXPECT_NE(results[i].get(), results[j].get());
    }
  }
  EXPECT_EQ(detect::threshold_table_cache_stats().entries, results.size());
}

}  // namespace
}  // namespace dvs::core
