#include "core/engine.hpp"

#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "workload/clips.hpp"
#include "workload/trace.hpp"

namespace dvs::core {
namespace {

const hw::Sa1100& cpu() {
  static const hw::Sa1100 instance;
  return instance;
}

workload::FrameTrace short_mp3_trace(std::uint64_t seed = 11,
                                     const std::string& labels = "A") {
  const auto dec = workload::reference_mp3_decoder(cpu().max_frequency());
  Rng rng{seed};
  return workload::build_mp3_trace(workload::mp3_sequence(labels), dec, rng);
}

DetectorFactoryConfig& shared_detectors() {
  static DetectorFactoryConfig cfg = [] {
    DetectorFactoryConfig c;
    c.change_point.mc_windows = 1500;
    c.prepare();
    return c;
  }();
  return cfg;
}

Metrics run_kind(const workload::FrameTrace& trace, DetectorKind kind,
                 dpm::DpmPolicyPtr dpm = nullptr) {
  RunOptions opts;
  opts.detector = kind;
  opts.detector_cfg = &shared_detectors();
  opts.dpm_policy = std::move(dpm);
  const auto dec = trace.type() == workload::MediaType::Mp3Audio
                       ? workload::reference_mp3_decoder(cpu().max_frequency())
                       : workload::reference_mpeg_decoder(cpu().max_frequency());
  return run_single_trace(trace, dec, opts);
}

TEST(Engine, DecodesEveryFrame) {
  const auto trace = short_mp3_trace();
  const Metrics m = run_kind(trace, DetectorKind::Max);
  EXPECT_EQ(m.frames_arrived, trace.size());
  EXPECT_EQ(m.frames_decoded, trace.size());
  EXPECT_EQ(m.frames_dropped, 0u);
  EXPECT_GE(m.duration, trace.duration());
}

TEST(Engine, EnergyIsPositiveAndAdditive) {
  const auto trace = short_mp3_trace();
  const Metrics m = run_kind(trace, DetectorKind::Max);
  Joules sum{0.0};
  for (const auto& e : m.component_energy) {
    EXPECT_GE(e.value(), 0.0);
    sum += e;
  }
  EXPECT_NEAR(m.total_energy.value(), sum.value(), 1e-9);
  EXPECT_GT(m.average_power.value(), 0.0);
  // Sanity: average power below the all-active total (components duty-cycle).
  EXPECT_LT(m.average_power.value(),
            hw::smartbadge_total_power(hw::PowerState::Active).value());
}

TEST(Engine, MaxGovernorNeverSwitches) {
  const Metrics m = run_kind(short_mp3_trace(), DetectorKind::Max);
  EXPECT_EQ(m.cpu_switches, 0);
  EXPECT_NEAR(m.mean_cpu_frequency.value(), cpu().max_frequency().value(), 1e-6);
}

TEST(Engine, AdaptiveGovernorLowersFrequencyAndEnergy) {
  const auto trace = short_mp3_trace();
  const Metrics max = run_kind(trace, DetectorKind::Max);
  const Metrics ideal = run_kind(trace, DetectorKind::Ideal);
  EXPECT_LT(ideal.mean_cpu_frequency, max.mean_cpu_frequency);
  EXPECT_LT(ideal.total_energy, max.total_energy);
  EXPECT_GT(ideal.cpu_switches, 0);
}

TEST(Engine, DelayStaysNearTargetUnderIdealDetection) {
  const auto trace = short_mp3_trace(13, "AF");
  const Metrics m = run_kind(trace, DetectorKind::Ideal);
  // Mean total delay must be positive and not exceed the 0.1 s target by
  // much (M/D/1-ish service makes it typically lower).
  EXPECT_GT(m.mean_frame_delay.value(), 0.0);
  EXPECT_LT(m.mean_frame_delay.value(), 0.15);
}

TEST(Engine, DpmSleepsAcrossSessionGaps) {
  // Two clips separated by a long idle gap.
  const auto dec = workload::reference_mp3_decoder(cpu().max_frequency());
  Rng rng{17};
  auto t1 = workload::build_mp3_trace(workload::mp3_sequence("A"), dec, rng);
  auto t2 = workload::build_mp3_trace(workload::mp3_sequence("B"), dec, rng)
                .shifted(seconds(400.0));
  std::vector<PlaybackItem> items;
  items.push_back({t1, dec, default_nominal_arrival(t1.type()),
                   default_nominal_service(t1.type()), seconds(100.0)});
  items.push_back({t2, dec, default_nominal_arrival(t2.type()),
                   default_nominal_service(t2.type()), seconds(510.0)});

  RunOptions with_dpm;
  with_dpm.detector = DetectorKind::Max;
  with_dpm.detector_cfg = &shared_detectors();
  with_dpm.dpm_policy =
      std::make_shared<dpm::FixedTimeoutPolicy>(seconds(2.0), seconds(60.0));
  const Metrics slept = run_items(items, with_dpm);

  RunOptions no_dpm = with_dpm;
  no_dpm.dpm_policy = nullptr;
  const Metrics idled = run_items(items, no_dpm);

  EXPECT_GT(slept.dpm_sleeps, 0);
  EXPECT_GT(slept.dpm_wakeups, 0);
  EXPECT_LT(slept.total_energy, idled.total_energy);
  // All frames still decoded despite the wakeup latency.
  EXPECT_EQ(slept.frames_decoded, t1.size() + t2.size());
  EXPECT_GT(slept.dpm_total_wakeup_delay.value(), 0.0);
}

TEST(Engine, VideoKeepsDisplayLit) {
  const auto dec = workload::reference_mpeg_decoder(cpu().max_frequency());
  Rng rng{19};
  workload::MpegClip clip = workload::football_clip();
  clip.duration = seconds(60.0);
  const auto trace = workload::build_mpeg_trace(clip, dec, rng);
  const Metrics m = run_kind(trace, DetectorKind::Max);
  // Display active ~the whole hour: ~1 W * 60 s = 60 J.
  const double display_j =
      m.component_energy[static_cast<std::size_t>(hw::BadgeComponentId::Display)]
          .value();
  EXPECT_GT(display_j, 50.0);
  // An audio run of the same length keeps the display idle (~0.3 W).
  const auto audio = short_mp3_trace();
  const Metrics ma = run_kind(audio, DetectorKind::Max);
  const double audio_display_rate =
      ma.component_energy[static_cast<std::size_t>(hw::BadgeComponentId::Display)]
          .value() /
      ma.duration.value();
  EXPECT_NEAR(audio_display_rate, 0.3, 0.02);
}

TEST(Engine, RunIsSingleShot) {
  const auto trace = short_mp3_trace();
  const auto dec = workload::reference_mp3_decoder(cpu().max_frequency());
  std::vector<PlaybackItem> items;
  items.push_back({trace, dec, default_nominal_arrival(trace.type()),
                   default_nominal_service(trace.type()), trace.duration()});
  EngineConfig cfg;
  cfg.detector = DetectorKind::Max;
  Engine engine{cfg, std::move(items)};
  engine.run();
  EXPECT_THROW((void)(engine.run()), std::logic_error);
}

TEST(Engine, RejectsEmptyAndOverlappingItems) {
  EngineConfig cfg;
  EXPECT_THROW((void)(Engine(cfg, {})), std::logic_error);

  const auto dec = workload::reference_mp3_decoder(cpu().max_frequency());
  const auto t1 = short_mp3_trace();
  std::vector<PlaybackItem> overlapping;
  overlapping.push_back({t1, dec, hertz(38.0), hertz(100.0), t1.duration()});
  overlapping.push_back({t1, dec, hertz(38.0), hertz(100.0), t1.duration()});
  EXPECT_THROW((void)(Engine(cfg, std::move(overlapping))), std::logic_error);
}

TEST(Engine, BoundedBufferDropsUnderSaturation) {
  // Arrivals far beyond the decoder's top speed with a small buffer.
  const auto dec = workload::reference_mp3_decoder(cpu().max_frequency());
  std::vector<workload::TraceFrame> frames;
  for (int i = 0; i < 3000; ++i) {
    // 300 fr/s arrivals vs ~77 fr/s decode at max (work 1.3).
    frames.push_back({static_cast<std::uint64_t>(i), seconds(i / 300.0), 1.3});
  }
  std::vector<workload::RateTruth> truth{{seconds(0.0), hertz(300.0), hertz(77.0)}};
  workload::FrameTrace trace{workload::MediaType::Mp3Audio, std::move(frames),
                             std::move(truth), seconds(10.0)};
  std::vector<PlaybackItem> items;
  items.push_back({trace, dec, hertz(300.0), hertz(77.0), seconds(10.0)});
  EngineConfig cfg;
  cfg.detector = DetectorKind::Max;
  cfg.buffer_capacity = 32;
  Engine engine{cfg, std::move(items)};
  const Metrics m = engine.run();
  EXPECT_GT(m.frames_dropped, 0u);
  EXPECT_LT(m.frames_decoded, m.frames_arrived);
  EXPECT_LE(m.mean_buffered_frames, 32.0 + 1e-9);
}

TEST(Engine, PowerTraceSamplesWholeRun) {
  const auto trace = short_mp3_trace();
  RunOptions opts;
  opts.detector = DetectorKind::Max;
  opts.detector_cfg = &shared_detectors();
  opts.power_sample_period = seconds(1.0);
  const auto dec = workload::reference_mp3_decoder(cpu().max_frequency());
  const Metrics m = run_single_trace(trace, dec, opts);
  // ~one sample per second over the 100 s clip A.
  EXPECT_NEAR(static_cast<double>(m.power_trace.size()),
              trace.duration().value(), 3.0);
  for (const auto& [t, p] : m.power_trace) {
    EXPECT_GE(t, 0.0);
    EXPECT_LE(t, m.duration.value());
    EXPECT_GT(p, 0.0);
    EXPECT_LE(p, hw::smartbadge_total_power(hw::PowerState::Active).value());
  }
  // Timestamps are strictly increasing.
  for (std::size_t i = 1; i < m.power_trace.size(); ++i) {
    EXPECT_GT(m.power_trace[i].first, m.power_trace[i - 1].first);
  }
  // And the time-average of the samples is consistent with the measured
  // average power (coarse: the sampler aliases short bursts).
  RunningStats ps;
  for (const auto& [t, p] : m.power_trace) ps.add(p);
  EXPECT_NEAR(ps.mean(), m.average_power.value(), m.average_power.value() * 0.15);
}

TEST(Engine, DeterministicAcrossRuns) {
  const auto trace = short_mp3_trace();
  const Metrics a = run_kind(trace, DetectorKind::ChangePoint);
  const Metrics b = run_kind(trace, DetectorKind::ChangePoint);
  EXPECT_DOUBLE_EQ(a.total_energy.value(), b.total_energy.value());
  EXPECT_DOUBLE_EQ(a.mean_frame_delay.value(), b.mean_frame_delay.value());
  EXPECT_EQ(a.cpu_switches, b.cpu_switches);
}

}  // namespace
}  // namespace dvs::core
