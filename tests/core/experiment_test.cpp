#include "core/experiment.hpp"

#include <gtest/gtest.h>

namespace dvs::core {
namespace {

TEST(Detectors, Names) {
  EXPECT_EQ(to_string(DetectorKind::Ideal), "Ideal");
  EXPECT_EQ(to_string(DetectorKind::ChangePoint), "Change Point");
  EXPECT_EQ(to_string(DetectorKind::ExpAverage), "Exp. Ave.");
  EXPECT_EQ(to_string(DetectorKind::Max), "Max");
}

TEST(Detectors, FactoryBuildsEachKind) {
  DetectorFactoryConfig cfg;
  cfg.change_point.mc_windows = 500;
  auto truth = [](Seconds) { return hertz(10.0); };
  EXPECT_NE(make_detector(DetectorKind::Ideal, cfg, truth), nullptr);
  EXPECT_NE(make_detector(DetectorKind::ExpAverage, cfg, nullptr), nullptr);
  EXPECT_NE(make_detector(DetectorKind::SlidingWindow, cfg, nullptr), nullptr);
  EXPECT_EQ(make_detector(DetectorKind::Max, cfg, nullptr), nullptr);
  // Ideal requires a truth source.
  EXPECT_THROW((void)(make_detector(DetectorKind::Ideal, cfg, nullptr)), std::logic_error);
  // Change-point never mutates the shared config: an unprepared one gets a
  // private table, a prepared one is reused across every call.
  EXPECT_EQ(cfg.thresholds, nullptr);
  EXPECT_NE(make_detector(DetectorKind::ChangePoint, cfg, nullptr), nullptr);
  EXPECT_EQ(cfg.thresholds, nullptr);  // caller's config untouched
  cfg.prepare();
  ASSERT_TRUE(cfg.prepared());
  const auto* cached = cfg.thresholds.get();
  EXPECT_NE(make_detector(DetectorKind::ChangePoint, cfg, nullptr), nullptr);
  EXPECT_EQ(cfg.thresholds.get(), cached);  // reused, not rebuilt
  cfg.prepare();
  EXPECT_EQ(cfg.thresholds.get(), cached);  // idempotent
}

TEST(Detectors, NominalDefaultsPerMedia) {
  EXPECT_NEAR(default_nominal_arrival(workload::MediaType::Mp3Audio).value(),
              38.3, 1e-9);
  EXPECT_NEAR(default_nominal_arrival(workload::MediaType::MpegVideo).value(),
              25.0, 1e-9);
  EXPECT_NEAR(default_nominal_service(workload::MediaType::Mp3Audio).value(),
              workload::kMp3ReferenceRate, 1e-9);
  EXPECT_NEAR(default_nominal_service(workload::MediaType::MpegVideo).value(),
              workload::kMpegReferenceRate, 1e-9);
}

TEST(Session, BuildsAlternatingItemsWithGaps) {
  const hw::Sa1100 cpu;
  SessionConfig cfg;
  cfg.cycles = 3;
  cfg.mpeg_segment = seconds(50.0);
  cfg.seed = 5;
  const Session session = build_session(cfg, cpu);
  ASSERT_EQ(session.items.size(), 6u);  // audio+video per cycle
  // Types alternate.
  EXPECT_EQ(session.items[0].trace.type(), workload::MediaType::Mp3Audio);
  EXPECT_EQ(session.items[1].trace.type(), workload::MediaType::MpegVideo);
  // Items are time-ordered with gaps.
  for (std::size_t i = 1; i < session.items.size(); ++i) {
    EXPECT_GE(session.items[i].trace.frames().front().arrival,
              session.items[i - 1].end);
  }
  EXPECT_GT(session.idle_time.value(), 0.0);
  EXPECT_NEAR(session.duration.value(),
              session.media_time.value() + session.idle_time.value(), 1e-6);
  EXPECT_NE(session.idle_model, nullptr);
}

TEST(Session, DeterministicPerSeed) {
  const hw::Sa1100 cpu;
  SessionConfig cfg;
  cfg.cycles = 2;
  cfg.seed = 9;
  const Session a = build_session(cfg, cpu);
  const Session b = build_session(cfg, cpu);
  EXPECT_DOUBLE_EQ(a.duration.value(), b.duration.value());
  ASSERT_EQ(a.items.size(), b.items.size());
  EXPECT_EQ(a.items[0].trace.size(), b.items[0].trace.size());
}

TEST(Session, RunsEndToEndUnderCombinedManagement) {
  const hw::Sa1100 cpu;
  SessionConfig scfg;
  scfg.cycles = 1;
  scfg.mpeg_segment = seconds(30.0);
  scfg.seed = 31;
  Session session = build_session(scfg, cpu);

  hw::SmartBadge badge;
  const dpm::DpmCostModel costs = dpm::smartbadge_cost_model(badge);

  DetectorFactoryConfig dcfg;
  dcfg.change_point.mc_windows = 1000;
  RunOptions opts;
  opts.detector = DetectorKind::ChangePoint;
  opts.detector_cfg = &dcfg;
  opts.dpm_policy =
      std::make_shared<dpm::TismdpPolicy>(costs, session.idle_model, seconds(0.3));
  const Metrics m = run_items(session.items, opts);
  EXPECT_GT(m.frames_decoded, 0u);
  EXPECT_EQ(m.frames_decoded, m.frames_arrived);
  EXPECT_GT(m.total_energy.value(), 0.0);
}

TEST(Session, InvalidConfigRejected) {
  const hw::Sa1100 cpu;
  SessionConfig cfg;
  cfg.cycles = 0;
  EXPECT_THROW((void)(build_session(cfg, cpu)), std::logic_error);
  cfg.cycles = 1;
  cfg.mp3_labels = "";
  EXPECT_THROW((void)(build_session(cfg, cpu)), std::logic_error);
}

}  // namespace
}  // namespace dvs::core
