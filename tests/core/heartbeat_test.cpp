// Sweep heartbeat telemetry: one well-formed JSONL object per finished
// point, monotone done counts, and no effect on results.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "core/sweep.hpp"

namespace dvs::core {
namespace {

ScenarioSpec tiny_spec() {
  ScenarioSpec s;
  s.name = "tiny-hb";
  s.workloads = {WorkloadSpec::mp3("A")};
  s.detectors = {DetectorKind::ChangePoint, DetectorKind::Max};
  s.replicates = 2;
  s.base_seed = 7;
  s.detector_cfg.change_point.mc_windows = 400;
  return s;
}

TEST(SweepHeartbeat, OneValidLinePerPointWithMonotoneProgress) {
  const std::string path = ::testing::TempDir() + "sweep_heartbeat.jsonl";
  std::remove(path.c_str());
  const ScenarioSpec spec = tiny_spec();

  SweepOptions opts;
  opts.jobs = 2;
  opts.heartbeat_path = path;
  const SweepResult res = SweepRunner{opts}.run(spec);

  std::ifstream in(path);
  ASSERT_TRUE(in);
  std::string line;
  std::vector<json::ValuePtr> beats;
  while (std::getline(in, line)) {
    ASSERT_FALSE(line.empty());
    beats.push_back(json::parse(line));  // throws -> test failure
  }
  ASSERT_EQ(beats.size(), res.points.size());

  double prev_mean = 0.0;
  for (std::size_t i = 0; i < beats.size(); ++i) {
    const json::Value& b = *beats[i];
    EXPECT_EQ(b.at("scenario").as_string(), spec.name);
    EXPECT_DOUBLE_EQ(b.at("done").as_number(), static_cast<double>(i + 1));
    EXPECT_DOUBLE_EQ(b.at("total").as_number(),
                     static_cast<double>(res.points.size()));
    EXPECT_GE(b.at("elapsed_s").as_number(), 0.0);
    EXPECT_GE(b.at("eta_s").as_number(), 0.0);
    EXPECT_GT(b.at("energy_kj").as_number(), 0.0);
    prev_mean = b.at("running_mean_energy_kj").as_number();
    EXPECT_GT(prev_mean, 0.0);
  }
  // The final running mean is the mean over all points.
  double sum = 0.0;
  for (const PointResult& p : res.points) sum += p.metrics.energy_kj();
  EXPECT_NEAR(prev_mean, sum / static_cast<double>(res.points.size()), 1e-9);

  // The heartbeat is telemetry only: a silent rerun produces identical
  // result bytes.
  SweepOptions quiet;
  quiet.jobs = 1;
  const SweepResult again = SweepRunner{quiet}.run(spec);
  ASSERT_EQ(again.points.size(), res.points.size());
  for (std::size_t i = 0; i < res.points.size(); ++i) {
    EXPECT_DOUBLE_EQ(again.points[i].metrics.total_energy.value(),
                     res.points[i].metrics.total_energy.value());
  }
  std::remove(path.c_str());
}

TEST(SweepHeartbeat, EveryRecordIsFlushedToDiskAsItIsWritten) {
  // Pins the per-record flush in the heartbeat writer.  An external monitor
  // tailing the file must see each record as soon as the point finishes, not
  // whenever the stream buffer happens to fill.  on_point fires just before
  // write_heartbeat under the same lock, so at jobs=1 the k-th callback must
  // find exactly k-1 complete, parseable lines already on disk.  If the
  // std::flush after each record is ever dropped, the early callbacks see an
  // empty file and this fails.
  const std::string path = ::testing::TempDir() + "sweep_heartbeat_flush.jsonl";
  std::remove(path.c_str());
  const ScenarioSpec spec = tiny_spec();

  SweepOptions opts;
  opts.jobs = 1;
  opts.heartbeat_path = path;
  std::size_t calls = 0;
  opts.on_point = [&](const PointResult&) {
    ++calls;
    std::ifstream in(path);
    ASSERT_TRUE(in);
    std::string line;
    std::size_t lines = 0;
    while (std::getline(in, line)) {
      ASSERT_FALSE(line.empty());
      ASSERT_EQ(line.back(), '}');  // complete record, not a torn write
      json::parse(line);            // throws -> test failure
      ++lines;
    }
    EXPECT_EQ(lines, calls - 1);
  };
  const SweepResult res = SweepRunner{opts}.run(spec);
  EXPECT_EQ(calls, res.points.size());
  std::remove(path.c_str());
}

TEST(SweepHeartbeat, StderrSpellingRuns) {
  ScenarioSpec spec = tiny_spec();
  spec.replicates = 1;
  SweepOptions opts;
  opts.heartbeat_path = "-";
  ::testing::internal::CaptureStderr();
  SweepRunner{opts}.run(spec);
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("\"done\":1"), std::string::npos);
}

}  // namespace
}  // namespace dvs::core
