// The attribution ledger's core contract: per-key sums equal the Metrics
// totals to 1e-9 relative, on single runs (DVS, DPM, faults, watchdog) and
// across the table3/table4 scenario sweeps under jobs=1 and jobs=8 — with
// the sweep CSVs byte-identical to the ledger-free baseline.  Plus the S1
// abort contract: a sink throwing mid-run still leaves finalized trace
// output and a flight-recorder dump.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <string>

#include "core/experiment.hpp"
#include "core/sweep.hpp"
#include "dpm/policy.hpp"
#include "obs/attribution.hpp"
#include "obs/sinks.hpp"
#include "obs/trace_recorder.hpp"
#include "workload/clips.hpp"
#include "workload/trace.hpp"

namespace dvs::core {
namespace {

const hw::Sa1100& cpu() {
  static const hw::Sa1100 instance;
  return instance;
}

workload::FrameTrace short_mp3_trace(std::uint64_t seed = 11,
                                     const std::string& labels = "A") {
  const auto dec = workload::reference_mp3_decoder(cpu().max_frequency());
  Rng rng{seed};
  return workload::build_mp3_trace(workload::mp3_sequence(labels), dec, rng);
}

DetectorFactoryConfig& shared_detectors() {
  static DetectorFactoryConfig cfg = [] {
    DetectorFactoryConfig c;
    c.change_point.mc_windows = 1500;
    c.prepare();
    return c;
  }();
  return cfg;
}

/// |a - b| <= tol * max(|a|, |b|) — the ISSUE's 1e-9 relative contract.
void expect_rel_eq(double a, double b, double tol = 1e-9) {
  const double scale = std::max(std::abs(a), std::abs(b));
  EXPECT_LE(std::abs(a - b), tol * std::max(scale, 1e-300))
      << "a=" << a << " b=" << b;
}

void check_reconciles(const obs::AttributionLedger& ledger, const Metrics& m) {
  expect_rel_eq(ledger.total_energy_j(), m.total_energy.value());
  // Delay total vs mean * count (the RunningStats mean is sum/n, so the
  // product reconstructs the sum to a few ulp).
  expect_rel_eq(ledger.total_delay_s(),
                m.mean_frame_delay.value() *
                    static_cast<double>(m.frames_decoded));
  EXPECT_EQ(ledger.total_frames(), m.frames_decoded);
  // Per-entry sums equal the grand totals exactly as doubles accumulate;
  // keep the same relative budget.
  double entry_sum = 0.0;
  for (const obs::EnergyEntry& e : ledger.energy_entries()) {
    entry_sum += e.energy_j;
  }
  expect_rel_eq(entry_sum, ledger.total_energy_j());
}

TEST(LedgerReconciliation, PureDvsRun) {
  obs::AttributionLedger ledger;
  RunOptions opts;
  // Change-point detector over a multi-clip trace: the clip switches are
  // rate changes it must declare, so DetectorChange carries energy.
  opts.detector = DetectorKind::ChangePoint;
  opts.detector_cfg = &shared_detectors();
  opts.ledger = &ledger;
  const auto trace = short_mp3_trace(11, "ACE");
  const auto dec = workload::reference_mp3_decoder(cpu().max_frequency());
  const Metrics m = run_single_trace(trace, dec, opts);
  check_reconciles(ledger, m);
  EXPECT_FALSE(ledger.empty());
  const auto by_cause = ledger.energy_by_cause();
  EXPECT_GT(by_cause[static_cast<std::size_t>(obs::Cause::DetectorChange)],
            0.0);
}

TEST(LedgerReconciliation, DpmSessionChargesSleepAndWakeup) {
  obs::AttributionLedger ledger;
  SessionConfig scfg;
  scfg.cycles = 2;
  scfg.mpeg_segment = seconds(20.0);
  Session session = build_session(scfg, cpu());

  RunOptions opts;
  opts.detector = DetectorKind::ChangePoint;
  opts.ledger = &ledger;
  const dpm::DpmCostModel costs = dpm::smartbadge_cost_model(hw::SmartBadge{});
  DpmSpec spec;
  spec.kind = DpmKind::Timeout;
  opts.dpm_policy = make_dpm_policy(spec, costs, session.idle_model);
  const Metrics m = run_items(session.items, opts);
  check_reconciles(ledger, m);
  ASSERT_GT(m.dpm_sleeps, 0);
  const auto by_cause = ledger.energy_by_cause();
  EXPECT_GT(by_cause[static_cast<std::size_t>(obs::Cause::DpmSleep)], 0.0);
  EXPECT_GT(by_cause[static_cast<std::size_t>(obs::Cause::DpmWakeup)], 0.0);
}

TEST(LedgerReconciliation, FaultAndWatchdogCausesAppear) {
  obs::AttributionLedger ledger;
  RunOptions opts;
  opts.detector = DetectorKind::ExpAverage;
  opts.ledger = &ledger;
  opts.hw_faults.freq_fail_prob = 0.4;
  opts.watchdog.enabled = true;
  opts.watchdog.violation_threshold = 1;
  const auto trace = short_mp3_trace(21);
  const auto dec = workload::reference_mp3_decoder(cpu().max_frequency());
  const Metrics m = run_single_trace(trace, dec, opts);
  check_reconciles(ledger, m);
  ASSERT_GT(m.faults_injected, 0u);
  const auto by_cause = ledger.energy_by_cause();
  EXPECT_GT(by_cause[static_cast<std::size_t>(obs::Cause::Fault)], 0.0);
}

// ---- sweep-level reconciliation (table3 / table4, jobs 1 vs 8) -----------

struct SweepLedgers {
  std::mutex m;
  std::map<std::size_t, std::unique_ptr<obs::AttributionLedger>> by_point;
};

SweepResult run_with_ledgers(const ScenarioSpec& spec, int jobs,
                             SweepLedgers& ledgers) {
  SweepOptions sopts;
  sopts.jobs = jobs;
  sopts.configure_run = [&ledgers](const RunPoint& p, RunOptions& opts) {
    auto ledger = std::make_unique<obs::AttributionLedger>();
    opts.ledger = ledger.get();
    std::lock_guard<std::mutex> lk(ledgers.m);
    ledgers.by_point[p.index] = std::move(ledger);
  };
  return SweepRunner{sopts}.run(spec);
}

std::string csv_bytes(const SweepResult& res, bool cells) {
  const std::string path = ::testing::TempDir() + "ledger_sweep_csv.tmp";
  {
    CsvWriter csv{path};
    if (cells) {
      res.write_cells_csv(csv);
    } else {
      res.write_points_csv(csv);
    }
  }
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  std::remove(path.c_str());
  return os.str();
}

void check_scenario_reconciles(const char* scenario_name) {
  const ScenarioSpec* found = find_scenario(scenario_name);
  ASSERT_NE(found, nullptr);
  ScenarioSpec spec = *found;
  // Trim replicates so both scenarios x {serial, parallel, baseline} stay
  // in test-suite budget; the reconciliation math is per point and does not
  // care how many replicates surround it.
  spec.replicates = 2;

  SweepLedgers serial, parallel;
  const SweepResult r1 = run_with_ledgers(spec, 1, serial);
  const SweepResult r8 = run_with_ledgers(spec, 8, parallel);
  ASSERT_EQ(r1.points.size(), r8.points.size());
  ASSERT_EQ(serial.by_point.size(), r1.points.size());
  ASSERT_EQ(parallel.by_point.size(), r8.points.size());

  for (const PointResult& pr : r1.points) {
    check_reconciles(*serial.by_point.at(pr.point.index), pr.metrics);
  }
  for (const PointResult& pr : r8.points) {
    check_reconciles(*parallel.by_point.at(pr.point.index), pr.metrics);
  }

  // Ledgers themselves are deterministic across jobs: identical JSON bytes.
  for (const auto& [index, ledger] : serial.by_point) {
    std::ostringstream a, b;
    ledger->write_json(a);
    parallel.by_point.at(index)->write_json(b);
    EXPECT_EQ(a.str(), b.str()) << spec.name << " point " << index;
  }

  // Attaching ledgers must not perturb the results: CSVs byte-identical to
  // a ledger-free serial baseline.
  SweepOptions plain;
  plain.jobs = 1;
  const SweepResult base = SweepRunner{plain}.run(spec);
  EXPECT_EQ(csv_bytes(base, true), csv_bytes(r1, true));
  EXPECT_EQ(csv_bytes(base, false), csv_bytes(r1, false));
  EXPECT_EQ(csv_bytes(r1, true), csv_bytes(r8, true));
  EXPECT_EQ(csv_bytes(r1, false), csv_bytes(r8, false));
}

TEST(LedgerReconciliation, Table3SweepJobs1Vs8) {
  check_scenario_reconciles("table3");
}

TEST(LedgerReconciliation, Table4SweepJobs1Vs8) {
  check_scenario_reconciles("table4");
}

// ---- S1: aborted runs leave well-formed artifacts ------------------------

/// Throws on the Nth event it sees — simulates a sink dying mid-run.
class ThrowingSink final : public obs::TraceSink {
 public:
  explicit ThrowingSink(std::uint64_t after) : after_(after) {}
  void on_event(const obs::Event&) override {
    if (++seen_ >= after_) throw std::runtime_error("sink died");
  }

 private:
  std::uint64_t after_;
  std::uint64_t seen_ = 0;
};

TEST(AbortedRun, SinksAreFinalizedAndFlightRecorderDumps) {
  const std::string dump_path = ::testing::TempDir() + "abort_flight.txt";
  std::remove(dump_path.c_str());

  std::ostringstream jsonl_os, chrome_os;
  obs::TraceRecorder recorder;
  recorder.add_sink(std::make_unique<obs::JsonlSink>(jsonl_os));
  recorder.add_sink(std::make_unique<obs::ChromeTraceSink>(chrome_os));
  recorder.add_sink(std::make_unique<ThrowingSink>(500));

  RunOptions opts;
  opts.detector = DetectorKind::Max;
  opts.trace = &recorder;
  opts.flight_dump_path = dump_path;
  const auto trace = short_mp3_trace();
  const auto dec = workload::reference_mp3_decoder(cpu().max_frequency());
  EXPECT_THROW(run_single_trace(trace, dec, opts), std::runtime_error);

  // JSONL: every line written so far is a complete object.
  std::istringstream lines(jsonl_os.str());
  std::string line;
  std::size_t n = 0;
  while (std::getline(lines, line)) {
    ++n;
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
  }
  EXPECT_GT(n, 0u);

  // Chrome trace: the exception path flushed the sink, closing the array.
  const std::string chrome = chrome_os.str();
  ASSERT_FALSE(chrome.empty());
  const auto last = chrome.find_last_not_of(" \n\r\t");
  EXPECT_EQ(chrome[last], ']');

  // Flight recorder: the auto-dump fired with the exception reason and
  // parses back.
  std::ifstream dump_in(dump_path);
  ASSERT_TRUE(dump_in) << "no flight dump at " << dump_path;
  const obs::FlightDump dump = obs::parse_flight_dump(dump_in);
  EXPECT_EQ(dump.reason, "exception");
  EXPECT_GT(dump.records.size(), 0u);
  std::remove(dump_path.c_str());
}

}  // namespace
}  // namespace dvs::core
