// Regression tests for overload accounting: frames the bounded buffer
// drops at the tail must not leak into the governor's arrival-rate
// estimate or into per-frame metric denominators.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/engine.hpp"
#include "workload/trace.hpp"

namespace dvs::core {
namespace {

const hw::Sa1100& cpu() {
  static const hw::Sa1100 c;
  return c;
}

/// 300 fr/s offered against ~77 fr/s decode at max: deep overload.
workload::FrameTrace saturating_trace() {
  std::vector<workload::TraceFrame> frames;
  for (int i = 0; i < 3000; ++i) {
    frames.push_back({static_cast<std::uint64_t>(i), seconds(i / 300.0), 1.3});
  }
  std::vector<workload::RateTruth> truth{
      {seconds(0.0), hertz(300.0), hertz(77.0)}};
  return workload::FrameTrace{workload::MediaType::Mp3Audio, std::move(frames),
                              std::move(truth), seconds(10.0)};
}

Metrics run_saturated(Engine& engine) { return engine.run(); }

TEST(OverloadAccounting, ArrivalEstimateTracksAdmittedNotOfferedRate) {
  const auto dec = workload::reference_mp3_decoder(cpu().max_frequency());
  const workload::FrameTrace trace = saturating_trace();
  std::vector<PlaybackItem> items;
  items.push_back({trace, dec, hertz(300.0), hertz(77.0), seconds(10.0)});

  EngineConfig cfg;
  cfg.detector = DetectorKind::ChangePoint;
  cfg.detectors.change_point.mc_windows = 300;
  cfg.detectors.prepare();
  cfg.buffer_capacity = 32;
  Engine engine{cfg, std::move(items)};
  const Metrics m = run_saturated(engine);

  ASSERT_GT(m.frames_dropped, 0u);
  EXPECT_EQ(m.frames_admitted, m.frames_arrived - m.frames_dropped);

  // The governor only ever saw admitted frames, and a full buffer admits at
  // the drain rate (~77 fr/s).  Before the fix the estimator converged on
  // the 300 fr/s offered rate instead.
  const policy::Governor* gov =
      engine.governor(workload::MediaType::Mp3Audio);
  ASSERT_NE(gov, nullptr);
  const double lambda_hat = gov->arrival_estimate().value();
  EXPECT_GT(lambda_hat, 0.0);
  EXPECT_LT(lambda_hat, 150.0);  // far from the offered 300 fr/s

  const double admitted_rate =
      static_cast<double>(m.frames_admitted) / m.duration.value();
  EXPECT_NEAR(lambda_hat, admitted_rate, 0.5 * admitted_rate);
}

TEST(OverloadAccounting, PerFrameMetricsAverageOverDecodedFramesOnly) {
  const auto dec = workload::reference_mp3_decoder(cpu().max_frequency());
  const workload::FrameTrace trace = saturating_trace();
  std::vector<PlaybackItem> items;
  items.push_back({trace, dec, hertz(300.0), hertz(77.0), seconds(10.0)});

  EngineConfig cfg;
  cfg.detector = DetectorKind::Max;
  cfg.buffer_capacity = 32;
  Engine engine{cfg, std::move(items)};
  const Metrics m = run_saturated(engine);

  ASSERT_GT(m.frames_dropped, 0u);
  ASSERT_GT(m.frames_decoded, 0u);
  // Energy per decoded frame is finite and consistent with its own
  // definition: dropped frames are not in the denominator.
  const double epf = m.energy_per_decoded_frame();
  EXPECT_TRUE(std::isfinite(epf));
  EXPECT_GT(epf, 0.0);
  EXPECT_DOUBLE_EQ(
      epf, m.total_energy.value() / static_cast<double>(m.frames_decoded));
  // Mean delay is a real per-decoded-frame average, not diluted or inflated
  // by frames that never entered the buffer.
  EXPECT_GT(m.mean_frame_delay.value(), 0.0);
  EXPECT_LE(m.mean_frame_delay.value(), m.max_frame_delay.value());
  // A 32-slot buffer drained at >= ~77 fr/s bounds sojourn under a second;
  // counting dropped frames as zero-delay decodes would crater this mean.
  EXPECT_LT(m.max_frame_delay.value(), 2.0);
}

TEST(OverloadAccounting, UnboundedBufferStillCountsEveryArrival) {
  const auto dec = workload::reference_mp3_decoder(cpu().max_frequency());
  const workload::FrameTrace trace = saturating_trace();
  std::vector<PlaybackItem> items;
  items.push_back({trace, dec, hertz(300.0), hertz(77.0), seconds(10.0)});

  EngineConfig cfg;
  cfg.detector = DetectorKind::Max;
  cfg.buffer_capacity = 0;  // unbounded
  Engine engine{cfg, std::move(items)};
  const Metrics m = run_saturated(engine);
  EXPECT_EQ(m.frames_dropped, 0u);
  EXPECT_EQ(m.frames_admitted, m.frames_arrived);
}

}  // namespace
}  // namespace dvs::core
