// End-to-end checks on the policy axis + offline-optimal oracle: the
// competitive ratio is a true lower-bound ratio (>= 1 for target-honoring
// policies) and, like every other sweep output, byte-identical at any
// --jobs level including the serial oracle precompute.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "common/csv.hpp"
#include "core/sweep.hpp"

namespace dvs::core {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

// A reduced policy_shootout: one short MP3 clip, all three builtin
// policies, oracle on.  Small Monte-Carlo window count keeps the
// change-point characterization fast.
ScenarioSpec shootout_spec() {
  ScenarioSpec s;
  s.name = "shootout_mini";
  s.workloads = {WorkloadSpec::mp3("A")};
  s.policies = {"paper", "qdpm", "max"};
  s.detectors = {DetectorKind::ChangePoint};
  s.replicates = 2;
  s.base_seed = 9090;
  s.oracle = true;
  s.detector_cfg.change_point.mc_windows = 400;
  return s;
}

TEST(PolicyShootout, GridHasOneCellPerPolicy) {
  const ScenarioSpec spec = shootout_spec();
  EXPECT_EQ(spec.num_cells(), 3U);
  EXPECT_EQ(spec.num_points(), 6U);
  const SweepResult res = SweepRunner{}.run(spec);
  ASSERT_EQ(res.cells.size(), 3U);
  EXPECT_EQ(res.cells[0].point.policy, "paper");
  EXPECT_EQ(res.cells[1].point.policy, "qdpm");
  EXPECT_EQ(res.cells[2].point.policy, "max");
}

TEST(PolicyShootout, CompetitiveRatioIsALowerBoundRatio) {
  const SweepResult res = SweepRunner{}.run(shootout_spec());
  // The oracle's discrete schedule is a realizable lower bound on CPU
  // energy for any policy that honors the delay target, so every ratio
  // lands at (numerically: within an epsilon of) 1 or above.
  for (const PointResult& p : res.points) {
    EXPECT_GE(p.competitive_ratio, 1.0 - 0.02)
        << p.point.policy << " rep " << p.point.replicate;
  }
  // Pinned-max burns strictly more CPU energy than the adaptive paper
  // governor on a light audio clip, and both ratios are finite.
  const double paper = res.cells[0].competitive_ratio.mean;
  const double max = res.cells[2].competitive_ratio.mean;
  EXPECT_GT(paper, 0.98);
  EXPECT_GT(max, paper);
}

TEST(PolicyShootout, OracleColumnIsZeroWhenDisabled) {
  ScenarioSpec spec = shootout_spec();
  spec.oracle = false;
  spec.policies = {"paper"};
  spec.replicates = 1;
  const SweepResult res = SweepRunner{}.run(spec);
  for (const PointResult& p : res.points) {
    EXPECT_DOUBLE_EQ(p.competitive_ratio, 0.0);
  }
}

TEST(PolicyShootout, CsvBytesAreIdenticalAcrossJobs) {
  const ScenarioSpec spec = shootout_spec();
  SweepOptions serial;
  serial.jobs = 1;
  SweepOptions parallel;
  parallel.jobs = 8;
  serial.collect_quantiles = true;
  parallel.collect_quantiles = true;
  const SweepResult a = SweepRunner{serial}.run(spec);
  const SweepResult b = SweepRunner{parallel}.run(spec);

  const std::string base = ::testing::TempDir() + "shootout_";
  const auto dump = [&base](const std::string& tag, const SweepResult& res) {
    CsvWriter cells(base + tag + "_cells.csv");
    res.write_cells_csv(cells);
    CsvWriter points(base + tag + "_points.csv");
    res.write_points_csv(points);
  };
  dump("j1", a);
  dump("j8", b);
  EXPECT_EQ(slurp(base + "j1_cells.csv"), slurp(base + "j8_cells.csv"));
  EXPECT_EQ(slurp(base + "j1_points.csv"), slurp(base + "j8_points.csv"));
}

}  // namespace
}  // namespace dvs::core
