// RunOptions <-> EngineConfig round-trip: every field a caller can set must
// reach the engine (this is the drift that once silently dropped
// buffer_capacity and wlan_rx_time), plus behavioral checks that the two
// previously-dropped fields actually change simulation results.
#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "core/sweep.hpp"
#include "fault/fault_spec.hpp"
#include "hw/cpu_catalog.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/trace_recorder.hpp"
#include "workload/clips.hpp"

namespace dvs::core {
namespace {

TEST(RunOptionsRoundTrip, EveryFieldReachesTheEngineConfig) {
  RunOptions opts;
  opts.detector = DetectorKind::ExpAverage;
  opts.policy = "qdpm";
  opts.target_delay = seconds(0.123);
  opts.service_cv2 = 0.7;
  opts.dpm_policy = nullptr;
  opts.seed = 987;
  DetectorFactoryConfig cfg;
  cfg.ema_gain = 0.5;
  cfg.sliding_window = 77;
  opts.detector_cfg = &cfg;
  opts.dpm_arm_delay = seconds(0.9);
  opts.session_gap_threshold = seconds(3.3);
  opts.wlan_rx_time = seconds(0.005);
  opts.buffer_capacity = 17;
  opts.power_sample_period = seconds(2.5);
  opts.watchdog.enabled = true;
  opts.watchdog.violation_threshold = 5;
  opts.watchdog.initial_backoff = seconds(3.5);
  opts.hw_faults.freq_fail_prob = 0.25;
  opts.hw_faults.wakeup_fail_prob = 0.1;
  opts.hw_faults.rail_stuck_at = seconds(12.0);
  const hw::Sa1100 crusoe = hw::crusoe_like();
  opts.cpu = &crusoe;
  obs::TraceRecorder trace;
  obs::MetricsRegistry metrics;
  obs::AttributionLedger ledger;
  opts.trace = &trace;
  opts.metrics = &metrics;
  opts.ledger = &ledger;
  opts.flight_recorder = false;
  opts.flight_capacity = 128;
  opts.flight_dump_path = "/tmp/fr.txt";
  obs::TelemetrySnapshotter telemetry;
  obs::SpanProfiler profiler;
  opts.telemetry = &telemetry;
  opts.telemetry_every = seconds(0.25);
  opts.profiler = &profiler;

  const EngineConfig ec = to_engine_config(opts);
  EXPECT_EQ(ec.detector, DetectorKind::ExpAverage);
  EXPECT_EQ(ec.policy, "qdpm");
  EXPECT_DOUBLE_EQ(ec.target_delay.value(), 0.123);
  EXPECT_DOUBLE_EQ(ec.service_cv2, 0.7);
  EXPECT_EQ(ec.dpm_policy, nullptr);
  EXPECT_EQ(ec.seed, 987u);
  EXPECT_DOUBLE_EQ(ec.detectors.ema_gain, 0.5);
  EXPECT_EQ(ec.detectors.sliding_window, 77u);
  EXPECT_DOUBLE_EQ(ec.dpm_arm_delay.value(), 0.9);
  EXPECT_DOUBLE_EQ(ec.session_gap_threshold.value(), 3.3);
  EXPECT_DOUBLE_EQ(ec.wlan_rx_time.value(), 0.005);
  EXPECT_EQ(ec.buffer_capacity, 17u);
  EXPECT_DOUBLE_EQ(ec.power_sample_period.value(), 2.5);
  EXPECT_TRUE(ec.watchdog.enabled);
  EXPECT_EQ(ec.watchdog.violation_threshold, 5);
  EXPECT_DOUBLE_EQ(ec.watchdog.initial_backoff.value(), 3.5);
  EXPECT_DOUBLE_EQ(ec.hw_faults.freq_fail_prob, 0.25);
  EXPECT_DOUBLE_EQ(ec.hw_faults.wakeup_fail_prob, 0.1);
  EXPECT_DOUBLE_EQ(ec.hw_faults.rail_stuck_at.value(), 12.0);
  EXPECT_DOUBLE_EQ(ec.cpu.max_frequency().value(),
                   crusoe.max_frequency().value());
  EXPECT_EQ(ec.trace, &trace);
  EXPECT_EQ(ec.metrics, &metrics);
  EXPECT_EQ(ec.ledger, &ledger);
  EXPECT_FALSE(ec.flight_recorder);
  EXPECT_EQ(ec.flight_capacity, 128u);
  EXPECT_EQ(ec.flight_dump_path, "/tmp/fr.txt");
  EXPECT_EQ(ec.telemetry, &telemetry);
  EXPECT_DOUBLE_EQ(ec.telemetry_every.value(), 0.25);
  EXPECT_EQ(ec.profiler, &profiler);
}

TEST(RunOptionsRoundTrip, DefaultsMatchEngineDefaults) {
  const EngineConfig ec = to_engine_config(RunOptions{});
  const EngineConfig def;
  EXPECT_EQ(ec.detector, def.detector);
  EXPECT_EQ(ec.policy, def.policy);
  EXPECT_DOUBLE_EQ(ec.target_delay.value(), def.target_delay.value());
  EXPECT_DOUBLE_EQ(ec.service_cv2, def.service_cv2);
  EXPECT_DOUBLE_EQ(ec.wlan_rx_time.value(), def.wlan_rx_time.value());
  EXPECT_DOUBLE_EQ(ec.session_gap_threshold.value(),
                   def.session_gap_threshold.value());
  EXPECT_DOUBLE_EQ(ec.dpm_arm_delay.value(), def.dpm_arm_delay.value());
  EXPECT_EQ(ec.buffer_capacity, def.buffer_capacity);
  EXPECT_DOUBLE_EQ(ec.cpu.max_frequency().value(),
                   def.cpu.max_frequency().value());
}

TEST(RunAssembly, ResolvesEveryKnobIntoRunOptions) {
  // The single construction path shared by cmd_run, the sweep pool, the
  // fleet shards, and serve jobs: every RunAssembly knob must land in the
  // assembled options, and shared assets must be wired by pointer.
  const CpuAsset cpu = build_cpu_asset("crusoe");
  const dpm::IdleDistributionPtr idle = default_idle_distribution();
  DetectorFactoryConfig detector_cfg;
  detector_cfg.ema_gain = 0.42;

  RunAssembly a;
  a.detector = DetectorKind::ExpAverage;
  a.policy = "qdpm";
  a.delay_target = seconds(0.321);
  a.service_cv2 = 1.9;
  a.dpm.kind = DpmKind::Tismdp;
  a.dpm.max_delay = seconds(0.4);
  a.engine_seed = 1234;
  const fault::FaultSpec spiky = fault::find_fault("spike10x") != nullptr
                                     ? *fault::find_fault("spike10x")
                                     : fault::FaultSpec{};
  a.faults = &spiky;

  const RunOptions opts = assemble_run_options(a, cpu, idle, detector_cfg);
  EXPECT_EQ(opts.detector, DetectorKind::ExpAverage);
  EXPECT_EQ(opts.policy, "qdpm");
  EXPECT_DOUBLE_EQ(opts.target_delay.value(), 0.321);
  EXPECT_DOUBLE_EQ(opts.service_cv2, 1.9);
  EXPECT_NE(opts.dpm_policy, nullptr);  // Tismdp resolved to a live policy
  EXPECT_EQ(opts.seed, 1234u);
  EXPECT_EQ(opts.detector_cfg, &detector_cfg);  // shared asset, by pointer
  EXPECT_EQ(opts.cpu, &cpu.cpu);
  EXPECT_EQ(opts.watchdog.enabled, spiky.watchdog.enabled);
  EXPECT_DOUBLE_EQ(opts.hw_faults.freq_fail_prob, spiky.hw.freq_fail_prob);

  // And the resulting options must round-trip into the engine config —
  // composing the drift protection above with the assembly layer.
  const EngineConfig ec = to_engine_config(opts);
  EXPECT_EQ(ec.policy, "qdpm");
  EXPECT_DOUBLE_EQ(ec.detectors.ema_gain, 0.42);
  EXPECT_DOUBLE_EQ(ec.cpu.max_frequency().value(),
                   cpu.cpu.max_frequency().value());
}

TEST(RunAssembly, NullFaultsLeavesWatchdogDisarmed) {
  const CpuAsset cpu = build_cpu_asset("sa1100");
  const dpm::IdleDistributionPtr idle = default_idle_distribution();
  const DetectorFactoryConfig detector_cfg;
  const RunOptions opts =
      assemble_run_options(RunAssembly{}, cpu, idle, detector_cfg);
  EXPECT_FALSE(opts.watchdog.enabled);
  EXPECT_EQ(opts.dpm_policy, nullptr);  // DpmKind::None
}

// A short MP3 run under the Max detector (no detection noise) so the two
// behavioral checks are cheap and deterministic.
Metrics short_run(const RunOptions& opts) {
  const hw::Sa1100 cpu;
  const workload::DecoderModel dec =
      workload::reference_mp3_decoder(cpu.max_frequency());
  Rng rng{2026};
  const workload::FrameTrace trace =
      workload::build_mp3_trace(workload::mp3_sequence("A"), dec, rng);
  return run_single_trace(trace, dec, opts);
}

TEST(RunOptionsBehavior, BoundedBufferDropsFramesUnboundedDoesNot) {
  RunOptions opts;
  opts.detector = DetectorKind::Max;
  const Metrics unbounded = short_run(opts);
  EXPECT_EQ(unbounded.frames_dropped, 0u);

  opts.buffer_capacity = 1;  // pathologically tight: arrivals must drop
  const Metrics bounded = short_run(opts);
  EXPECT_GT(bounded.frames_dropped, 0u);
  EXPECT_LT(bounded.frames_decoded, unbounded.frames_decoded);
}

TEST(RunOptionsBehavior, WlanRxTimeChangesRadioEnergy) {
  RunOptions opts;
  opts.detector = DetectorKind::Max;
  opts.wlan_rx_time = seconds(0.001);
  const Metrics small = short_run(opts);

  opts.wlan_rx_time = seconds(0.02);
  const Metrics large = short_run(opts);

  // A 20x longer active burst per received frame must cost more energy.
  EXPECT_GT(large.total_energy.value(), small.total_energy.value());
}

}  // namespace
}  // namespace dvs::core
