#include "core/scenario.hpp"

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "hw/smartbadge.hpp"

namespace dvs::core {
namespace {

TEST(MixSeed, DeterministicAndSensitiveToBothInputs) {
  EXPECT_EQ(mix_seed(1, 2), mix_seed(1, 2));
  EXPECT_NE(mix_seed(1, 2), mix_seed(1, 3));
  EXPECT_NE(mix_seed(1, 2), mix_seed(2, 2));
  EXPECT_NE(mix_seed(0, 0), 0u);
}

TEST(WorkloadSpec, NamesEncodeTheAxisValue) {
  EXPECT_EQ(WorkloadSpec::mp3("ACEFBD").name(), "mp3:ACEFBD");
  EXPECT_EQ(WorkloadSpec::mpeg("football").name(), "mpeg:football");
  EXPECT_EQ(WorkloadSpec::mpeg("football", seconds(45.0)).name(),
            "mpeg:football@45s");
  SessionConfig scfg;
  scfg.cycles = 8;
  scfg.mpeg_segment = seconds(45.0);
  EXPECT_EQ(WorkloadSpec::usage_session(scfg).name(), "session:8x45s");
}

TEST(WorkloadSpec, DefaultDelayTargetsFollowThePaper) {
  EXPECT_DOUBLE_EQ(WorkloadSpec::mp3("A").default_delay_target().value(), 0.15);
  EXPECT_DOUBLE_EQ(WorkloadSpec::mpeg("football").default_delay_target().value(),
                   0.1);
  EXPECT_DOUBLE_EQ(
      WorkloadSpec::usage_session({}).default_delay_target().value(), 0.1);
}

TEST(DpmSpec, NamesEncodeParameters) {
  EXPECT_EQ(DpmSpec{}.name(), "none");
  DpmSpec t;
  t.kind = DpmKind::Timeout;
  EXPECT_EQ(t.name(), "timeout(2s,30s)");
  DpmSpec ti;
  ti.kind = DpmKind::Tismdp;
  ti.max_delay = seconds(0.5);
  EXPECT_EQ(ti.name(), "tismdp(0.5s)");
}

TEST(DpmSpec, KindStringsRoundTrip) {
  for (DpmKind k : {DpmKind::None, DpmKind::Timeout, DpmKind::Renewal,
                    DpmKind::Tismdp, DpmKind::SolverTismdp, DpmKind::Adaptive,
                    DpmKind::Oracle}) {
    const auto parsed = dpm_kind_from_string(to_string(k));
    ASSERT_TRUE(parsed.has_value()) << to_string(k);
    EXPECT_EQ(*parsed, k);
  }
  EXPECT_FALSE(dpm_kind_from_string("bogus").has_value());
}

TEST(ScenarioSpec, ExpandCountsAndOrder) {
  ScenarioSpec s;
  s.workloads = {WorkloadSpec::mp3("A"), WorkloadSpec::mp3("B")};
  s.detectors = {DetectorKind::ChangePoint, DetectorKind::Max};
  s.replicates = 3;
  s.base_seed = 11;

  EXPECT_EQ(s.num_cells(), 4u);
  EXPECT_EQ(s.num_points(), 12u);
  const std::vector<RunPoint> pts = s.expand();
  ASSERT_EQ(pts.size(), 12u);

  for (std::size_t i = 0; i < pts.size(); ++i) {
    EXPECT_EQ(pts[i].index, i);
    // Replicates of one cell are adjacent (cell ids are contiguous).
    EXPECT_EQ(pts[i].cell, i / 3);
    EXPECT_EQ(pts[i].replicate, static_cast<int>(i % 3));
  }
  // Detector varies inside a workload: first 6 points are workload A.
  EXPECT_EQ(pts[0].workload.mp3_labels, "A");
  EXPECT_EQ(pts[0].detector, DetectorKind::ChangePoint);
  EXPECT_EQ(pts[3].detector, DetectorKind::Max);
  EXPECT_EQ(pts[6].workload.mp3_labels, "B");
}

TEST(ScenarioSpec, TraceSeedSharedAcrossDetectorsUniqueEngineSeeds) {
  ScenarioSpec s;
  s.workloads = {WorkloadSpec::mp3("A")};
  s.detectors = {DetectorKind::Ideal, DetectorKind::ChangePoint,
                 DetectorKind::Max};
  s.replicates = 2;
  s.base_seed = 42;
  const std::vector<RunPoint> pts = s.expand();
  ASSERT_EQ(pts.size(), 6u);

  // The paper compares detectors "on the same inputs": within a replicate,
  // all detectors see the same trace seed; across replicates it differs.
  for (const RunPoint& p : pts) {
    const RunPoint& ref = pts[static_cast<std::size_t>(p.replicate)];
    EXPECT_EQ(p.trace_seed, ref.trace_seed) << p.label();
  }
  EXPECT_NE(pts[0].trace_seed, pts[1].trace_seed);

  // Engine seeds are an independent substream, unique per point.
  std::unordered_set<std::uint64_t> engine_seeds;
  for (const RunPoint& p : pts) {
    EXPECT_TRUE(engine_seeds.insert(p.engine_seed).second) << p.label();
    EXPECT_NE(p.engine_seed, p.trace_seed);
  }
}

TEST(ScenarioSpec, ZeroDelayTargetResolvesToMediaDefault) {
  ScenarioSpec s;
  s.workloads = {WorkloadSpec::mp3("A"), WorkloadSpec::mpeg("football")};
  const std::vector<RunPoint> pts = s.expand();
  ASSERT_EQ(pts.size(), 2u);
  EXPECT_DOUBLE_EQ(pts[0].delay_target.value(), 0.15);
  EXPECT_DOUBLE_EQ(pts[1].delay_target.value(), 0.1);
}

TEST(ScenarioSpec, ExpandRejectsEmptyAxes) {
  ScenarioSpec s;  // no workloads
  EXPECT_THROW((void)s.expand(), std::logic_error);
  s.workloads = {WorkloadSpec::mp3("A")};
  s.replicates = 0;
  EXPECT_THROW((void)s.expand(), std::logic_error);
}

TEST(CpuByName, ResolvesCatalogEntriesAndRejectsUnknown) {
  EXPECT_GT(cpu_by_name("sa1100").max_frequency().value(), 0.0);
  EXPECT_GT(cpu_by_name("crusoe").max_frequency().value(), 0.0);
  EXPECT_GT(cpu_by_name("frequency-only").max_frequency().value(), 0.0);
  EXPECT_THROW((void)cpu_by_name("z80"), std::invalid_argument);
}

TEST(BuiltinScenarios, AllExpandAndHaveUniqueNames) {
  std::set<std::string> names;
  for (const ScenarioSpec& s : builtin_scenarios()) {
    EXPECT_TRUE(names.insert(s.name).second) << s.name;
    const std::vector<RunPoint> pts = s.expand();
    EXPECT_EQ(pts.size(), s.num_points()) << s.name;
    EXPECT_GT(pts.size(), 0u) << s.name;
  }
  EXPECT_NE(find_scenario("table3"), nullptr);
  EXPECT_NE(find_scenario("table5"), nullptr);
  EXPECT_NE(find_scenario("quick"), nullptr);
  EXPECT_EQ(find_scenario("no-such-scenario"), nullptr);
}

TEST(BuiltinScenarios, Table5CellsEnumerateTheFourConfigurations) {
  const ScenarioSpec* s = find_scenario("table5");
  ASSERT_NE(s, nullptr);
  const std::vector<RunPoint> pts = s->expand();
  ASSERT_EQ(pts.size(), 4u);
  // None, DVS, DPM, Both — the order bench_table5 prints.
  EXPECT_EQ(pts[0].detector, DetectorKind::Max);
  EXPECT_EQ(pts[0].dpm.kind, DpmKind::None);
  EXPECT_EQ(pts[1].detector, DetectorKind::ChangePoint);
  EXPECT_EQ(pts[1].dpm.kind, DpmKind::None);
  EXPECT_EQ(pts[2].detector, DetectorKind::Max);
  EXPECT_EQ(pts[2].dpm.kind, DpmKind::Tismdp);
  EXPECT_EQ(pts[3].detector, DetectorKind::ChangePoint);
  EXPECT_EQ(pts[3].dpm.kind, DpmKind::Tismdp);
}

TEST(MakeDpmPolicy, InstantiatesEachKindFresh) {
  const hw::SmartBadge badge;
  const dpm::DpmCostModel costs = dpm::smartbadge_cost_model(badge);
  const auto idle = std::make_shared<dpm::ParetoIdle>(1.8, seconds(8.0));

  DpmSpec none;
  EXPECT_EQ(make_dpm_policy(none, costs, idle), nullptr);
  for (DpmKind k : {DpmKind::Timeout, DpmKind::Renewal, DpmKind::Tismdp,
                    DpmKind::SolverTismdp, DpmKind::Adaptive, DpmKind::Oracle}) {
    DpmSpec spec;
    spec.kind = k;
    const auto a = make_dpm_policy(spec, costs, idle);
    const auto b = make_dpm_policy(spec, costs, idle);
    ASSERT_NE(a, nullptr) << to_string(k);
    // Policies are stateful; every call must mint a fresh instance.
    EXPECT_NE(a.get(), b.get()) << to_string(k);
  }
}

}  // namespace
}  // namespace dvs::core
