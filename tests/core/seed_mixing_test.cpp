// Edge cases for the seed-mixing function behind every derived RNG stream:
// zero seeds must not produce degenerate streams, and nearby (seed, index)
// pairs must not collide.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/rng.hpp"
#include "core/scenario.hpp"

namespace dvs::core {
namespace {

TEST(MixSeed, ZeroInputsStillYieldLiveStreams) {
  // SplitMix-style finalization: the all-zero input is not a fixed point.
  EXPECT_NE(mix_seed(0, 0), 0u);
  EXPECT_NE(mix_seed(0, 1), 0u);
  EXPECT_NE(mix_seed(0, 0), mix_seed(0, 1));
  // And an Rng seeded from it produces non-constant output.
  Rng rng{mix_seed(0, 0)};
  const double a = rng.uniform(0.0, 1.0);
  const double b = rng.uniform(0.0, 1.0);
  EXPECT_NE(a, b);
}

TEST(MixSeed, SmallIndexGridHasNoCollisions) {
  // The scenario expander derives per-point streams as mix_seed(base, k)
  // for small structured k (row << 1, (index << 1) | 1, fault_idx + 1).
  // Those k values are dense near zero, so collisions there would silently
  // correlate replicates.
  std::set<std::uint64_t> seen;
  for (std::uint64_t base = 0; base < 8; ++base) {
    for (std::uint64_t k = 0; k < 4096; ++k) {
      seen.insert(mix_seed(base, k));
    }
  }
  EXPECT_EQ(seen.size(), 8u * 4096u);
}

TEST(MixSeed, OrderMatters) {
  EXPECT_NE(mix_seed(1, 2), mix_seed(2, 1));
}

TEST(MixSeed, ChainedSubstreamsStayDistinct) {
  // The fault layer chains: fault_seed = mix_seed(trace_seed, f + 1) where
  // trace_seed = mix_seed(base, row << 1).  Chained outputs must not land
  // on each other or on their parents.
  std::set<std::uint64_t> seen;
  std::size_t n = 0;
  for (std::uint64_t row = 0; row < 64; ++row) {
    const std::uint64_t trace_seed = mix_seed(7, row << 1);
    seen.insert(trace_seed);
    ++n;
    for (std::uint64_t f = 0; f < 8; ++f) {
      seen.insert(mix_seed(trace_seed, f + 1));
      ++n;
    }
  }
  EXPECT_EQ(seen.size(), n);
}

TEST(MixSeed, ExpandedScenarioPointsGetDistinctStreams) {
  // End to end through expand(): every point's engine seed is unique, and
  // trace seeds are shared exactly by design (across detectors/dpm within
  // a row) — never across replicates.
  ScenarioSpec spec;
  spec.name = "seed-edges";
  spec.base_seed = 0;  // the degenerate base
  spec.workloads = {WorkloadSpec::mp3("A"), WorkloadSpec::mp3("B")};
  spec.detectors = {DetectorKind::ChangePoint, DetectorKind::Max};
  spec.replicates = 3;
  const std::vector<RunPoint> points = spec.expand();

  std::set<std::uint64_t> engine_seeds;
  for (const RunPoint& p : points) {
    EXPECT_NE(p.engine_seed, 0u);
    EXPECT_NE(p.trace_seed, 0u);
    EXPECT_NE(p.engine_seed, p.trace_seed);
    engine_seeds.insert(p.engine_seed);
  }
  EXPECT_EQ(engine_seeds.size(), points.size());

  for (const RunPoint& a : points) {
    for (const RunPoint& b : points) {
      const bool same_row = a.workload_idx == b.workload_idx &&
                            a.cpu_idx == b.cpu_idx &&
                            a.replicate == b.replicate;
      if (same_row) {
        EXPECT_EQ(a.trace_seed, b.trace_seed);
      } else {
        EXPECT_NE(a.trace_seed, b.trace_seed);
      }
    }
  }
}

}  // namespace
}  // namespace dvs::core
