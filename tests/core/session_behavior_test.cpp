// Behavioural tests of the engine across media switches and session
// boundaries — the seams between the DVS governor, the DPM manager and the
// playback state machine.
#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "workload/clips.hpp"
#include "workload/trace.hpp"

namespace dvs::core {
namespace {

const hw::Sa1100& cpu() {
  static const hw::Sa1100 instance;
  return instance;
}

DetectorFactoryConfig& shared_detectors() {
  static DetectorFactoryConfig cfg = [] {
    DetectorFactoryConfig c;
    c.change_point.mc_windows = 1000;
    c.prepare();
    return c;
  }();
  return cfg;
}

std::vector<PlaybackItem> mixed_media_items(std::uint64_t seed) {
  std::vector<PlaybackItem> items;
  const auto mp3 = workload::reference_mp3_decoder(cpu().max_frequency());
  const auto mpeg = workload::reference_mpeg_decoder(cpu().max_frequency());
  Rng rng{seed};
  auto audio = workload::build_mp3_trace(workload::mp3_sequence("A"), mp3, rng);
  workload::MpegClip clip = workload::football_clip();
  clip.duration = seconds(50.0);
  auto video = workload::build_mpeg_trace(clip, mpeg, rng).shifted(seconds(160.0));
  items.push_back({std::move(audio), mp3,
                   default_nominal_arrival(workload::MediaType::Mp3Audio),
                   default_nominal_service(workload::MediaType::Mp3Audio),
                   seconds(100.0)});
  items.push_back({std::move(video), mpeg,
                   default_nominal_arrival(workload::MediaType::MpegVideo),
                   default_nominal_service(workload::MediaType::MpegVideo),
                   seconds(210.0)});
  return items;
}

TEST(SessionBehavior, MediaSwitchDecodesEverything) {
  auto items = mixed_media_items(61);
  const std::uint64_t total = items[0].trace.size() + items[1].trace.size();
  RunOptions opts;
  opts.detector = DetectorKind::ChangePoint;
  opts.detector_cfg = &shared_detectors();
  const Metrics m = run_items(std::move(items), opts);
  EXPECT_EQ(m.frames_decoded, total);
  EXPECT_LT(m.mean_frame_delay.value(), 0.5);
}

TEST(SessionBehavior, DisplayOnlyBurnsDuringVideo) {
  auto items = mixed_media_items(62);
  RunOptions opts;
  opts.detector = DetectorKind::Max;
  opts.detector_cfg = &shared_detectors();
  const Metrics m = run_items(std::move(items), opts);
  const double display_j =
      m.component_energy[static_cast<std::size_t>(hw::BadgeComponentId::Display)]
          .value();
  // Video span is 50 s at 1 W = 50 J; audio + gaps run at display-idle
  // 0.3 W.  Anything near all-active display would be ~210 J.
  EXPECT_GT(display_j, 50.0);
  EXPECT_LT(display_j, 120.0);
}

TEST(SessionBehavior, MaxDetectorIgnoresMediaSwitches) {
  auto items = mixed_media_items(63);
  RunOptions opts;
  opts.detector = DetectorKind::Max;
  opts.detector_cfg = &shared_detectors();
  const Metrics m = run_items(std::move(items), opts);
  EXPECT_EQ(m.cpu_switches, 0);
  EXPECT_NEAR(m.mean_cpu_frequency.value(), cpu().max_frequency().value(), 1e-6);
}

TEST(SessionBehavior, AdaptiveGovernorsRetuneAcrossTheSwitch) {
  auto items = mixed_media_items(64);
  RunOptions opts;
  opts.detector = DetectorKind::ChangePoint;
  opts.detector_cfg = &shared_detectors();
  const Metrics m = run_items(std::move(items), opts);
  // Clip A decodes at 115 fr/s vs 14 fr/s arrivals -> deep DVS; video at
  // up to 32 fr/s arrivals vs 44 fr/s decode -> near-top steps.  The mean
  // must land strictly between the extremes, proving both regimes ran.
  EXPECT_GT(m.mean_cpu_frequency.value(), cpu().min_frequency().value() + 5.0);
  EXPECT_LT(m.mean_cpu_frequency.value(), cpu().max_frequency().value() - 5.0);
  EXPECT_GT(m.cpu_switches, 2);
}

TEST(SessionBehavior, ArrivalDetectorNotPoisonedByTheGap) {
  // The 60 s inter-item gap must not feed the arrival detector (gating):
  // if it did, the estimate would crater and the first video frames would
  // see a massively under-provisioned CPU.  Compare the video-phase delay
  // against a video-only run: they must be in the same ballpark.
  auto items = mixed_media_items(65);
  RunOptions opts;
  opts.detector = DetectorKind::ChangePoint;
  opts.detector_cfg = &shared_detectors();
  const Metrics mixed = run_items(std::move(items), opts);

  const auto mpeg = workload::reference_mpeg_decoder(cpu().max_frequency());
  Rng rng{66};
  workload::MpegClip clip = workload::football_clip();
  clip.duration = seconds(50.0);
  const auto video_only = workload::build_mpeg_trace(clip, mpeg, rng);
  const Metrics solo = run_single_trace(video_only, mpeg, opts);

  EXPECT_LT(mixed.max_frame_delay.value(),
            std::max(1.0, 4.0 * solo.max_frame_delay.value()));
}

}  // namespace
}  // namespace dvs::core
