// Determinism of the sweep substrate against the process-wide asset caches:
// a cold-cache run, a warm-cache run, and a parallel warm run must produce
// byte-identical CSV artifacts.  Results may never depend on whether a
// threshold table or TISMDP solve came from the cache.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "common/csv.hpp"
#include "core/scenario.hpp"
#include "core/sweep.hpp"
#include "detect/table_cache.hpp"
#include "dpm/solve_cache.hpp"

namespace dvs::core {
namespace {

ScenarioSpec cached_spec() {
  ScenarioSpec s;
  s.name = "cache-determinism";
  s.workloads = {WorkloadSpec::mp3("A")};
  s.detectors = {DetectorKind::ChangePoint};
  DpmSpec tismdp;
  tismdp.kind = DpmKind::Tismdp;
  tismdp.max_delay = Seconds{0.5};
  s.dpm = {DpmSpec{}, tismdp};  // exercises the solve cache too
  s.replicates = 2;
  s.base_seed = 23;
  s.detector_cfg.change_point.mc_windows = 400;
  return s;
}

std::string run_and_dump_csvs(const ScenarioSpec& spec, int jobs,
                              const std::string& tag) {
  SweepOptions opts;
  opts.jobs = jobs;
  const SweepResult res = SweepRunner{opts}.run(spec);

  const std::string base = testing::TempDir() + "sweep_cache_" + tag;
  {
    CsvWriter cells{base + "_cells.csv"};
    res.write_cells_csv(cells);
    CsvWriter points{base + "_points.csv"};
    res.write_points_csv(points);
  }
  std::ostringstream bytes;
  for (const char* suffix : {"_cells.csv", "_points.csv"}) {
    std::ifstream in{base + suffix, std::ios::binary};
    bytes << in.rdbuf() << '\0';
  }
  return bytes.str();
}

TEST(SweepRunner, CachedAndUncachedRunsProduceIdenticalCsvBytes) {
  const ScenarioSpec spec = cached_spec();

  detect::clear_threshold_table_cache();
  dpm::clear_tismdp_solve_cache();
  const std::string cold = run_and_dump_csvs(spec, 1, "cold");

  // Second run hits the populated caches for every table and solve.
  EXPECT_GT(detect::threshold_table_cache_stats().entries, 0u);
  const std::string warm = run_and_dump_csvs(spec, 1, "warm");
  EXPECT_GT(detect::threshold_table_cache_stats().hits, 0u);
  EXPECT_EQ(cold, warm);
}

TEST(SweepRunner, ParallelJobsProduceIdenticalCsvBytesWithCacheEnabled) {
  const ScenarioSpec spec = cached_spec();

  detect::clear_threshold_table_cache();
  dpm::clear_tismdp_solve_cache();
  const std::string serial = run_and_dump_csvs(spec, 1, "serial");
  const std::string parallel = run_and_dump_csvs(spec, 4, "parallel");
  EXPECT_EQ(serial, parallel);
}

}  // namespace
}  // namespace dvs::core
